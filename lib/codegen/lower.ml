open Ifko_hil

type array_param = {
  a_name : string;
  a_reg : Reg.t;
  a_elem : Instr.fsize;
  a_output : bool;
  a_noprefetch : bool;
  a_mayalias : bool;
}

type compiled = {
  func : Cfg.func;
  loopnest : Loopnest.t option;
  arrays : array_param list;
  ret_ty : Ast.ty option;
  source : Ast.kernel;
}

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type env = {
  func : Cfg.func;
  vars : (string, Reg.t) Hashtbl.t;
  types : Typecheck.env;
  mutable cur_label : string;
  mutable cur_instrs : Instr.t list; (* reversed *)
  mutable cur_open : bool;
  mutable loopnest : Loopnest.t option;
}

let emit env i = env.cur_instrs <- i :: env.cur_instrs

(* Close the current block with [term] and leave no block open. *)
let finish env term =
  if env.cur_open then begin
    let b = Block.make env.cur_label ~instrs:(List.rev env.cur_instrs) ~term in
    env.func.Cfg.blocks <- env.func.Cfg.blocks @ [ b ];
    env.cur_instrs <- [];
    env.cur_open <- false
  end

let start env label =
  if env.cur_open then finish env (Block.Jmp label);
  env.cur_label <- label;
  env.cur_instrs <- [];
  env.cur_open <- true

let var_reg env x =
  match Hashtbl.find_opt env.vars x with
  | Some r -> r
  | None -> fail "lower: variable %S has no register" x

let var_ty env x = Typecheck.lookup env.types x

let fp_precision env e =
  let rec go = function
    | Ast.Var x -> (
      match var_ty env x with Ast.Fp p -> Some p | _ -> None)
    | Ast.Load (p, _) -> (
      match var_ty env p with Ast.Ptr prec -> Some prec | _ -> None)
    | Ast.Binop (_, a, b) -> ( match go a with Some p -> Some p | None -> go b)
    | Ast.Abs e | Ast.Sqrt e | Ast.Neg e -> go e
    | Ast.Int_lit _ | Ast.Fp_lit _ -> None
  in
  go e

let fsize_of_prec = function Ast.Single -> Instr.S | Ast.Double -> Instr.D

let elem_bytes env p =
  match var_ty env p with
  | Ast.Ptr prec -> Ast.fp_bytes prec
  | ty -> fail "lower: %S is not a pointer (%s)" p (Ast.string_of_ty ty)

(* Lower an integer expression; literals stay immediates. *)
let rec int_operand env e =
  match e with
  | Ast.Int_lit k -> Instr.Oimm k
  | e -> Instr.Oreg (int_expr env e)

and int_expr env e =
  match e with
  | Ast.Int_lit k ->
    let r = Cfg.fresh_reg env.func Reg.Gpr in
    emit env (Instr.Ildi (r, k));
    r
  | Ast.Var x -> var_reg env x
  | Ast.Binop (op, a, b) ->
    let ra = int_expr env a in
    let ob = int_operand env b in
    let d = Cfg.fresh_reg env.func Reg.Gpr in
    let iop =
      match op with
      | Ast.Add -> Instr.Iadd
      | Ast.Sub -> Instr.Isub
      | Ast.Mul -> Instr.Imul
      | Ast.Div -> fail "lower: integer division is not supported"
    in
    emit env (Instr.Iop (iop, d, ra, ob));
    d
  | Ast.Neg e ->
    let r = int_expr env e in
    let z = Cfg.fresh_reg env.func Reg.Gpr in
    emit env (Instr.Ildi (z, 0));
    let d = Cfg.fresh_reg env.func Reg.Gpr in
    emit env (Instr.Iop (Instr.Isub, d, z, Instr.Oreg r));
    d
  | Ast.Abs _ -> fail "lower: integer ABS is not supported"
  | Ast.Sqrt _ -> fail "lower: integer SQRT is not supported"
  | Ast.Fp_lit _ | Ast.Load _ -> fail "lower: floating expression in integer context"

and fp_expr env sz e =
  match e with
  | Ast.Fp_lit c ->
    let r = Cfg.fresh_reg env.func Reg.Xmm in
    emit env (Instr.Fldi (sz, r, c));
    r
  | Ast.Int_lit k ->
    let r = Cfg.fresh_reg env.func Reg.Xmm in
    emit env (Instr.Fldi (sz, r, float_of_int k));
    r
  | Ast.Var x -> var_reg env x
  | Ast.Load (p, k) ->
    let base = var_reg env p in
    let r = Cfg.fresh_reg env.func Reg.Xmm in
    emit env (Instr.Fld (sz, r, Instr.mk_mem ~disp:(k * elem_bytes env p) base));
    r
  | Ast.Binop (op, a, b) ->
    let ra = fp_expr env sz a in
    let rb = fp_expr env sz b in
    let d = Cfg.fresh_reg env.func Reg.Xmm in
    let fop =
      match op with
      | Ast.Add -> Instr.Fadd
      | Ast.Sub -> Instr.Fsub
      | Ast.Mul -> Instr.Fmul
      | Ast.Div -> Instr.Fdiv
    in
    emit env (Instr.Fop (sz, fop, d, ra, rb));
    d
  | Ast.Abs e ->
    let r = fp_expr env sz e in
    let d = Cfg.fresh_reg env.func Reg.Xmm in
    emit env (Instr.Fabs (sz, d, r));
    d
  | Ast.Sqrt e ->
    let r = fp_expr env sz e in
    let d = Cfg.fresh_reg env.func Reg.Xmm in
    emit env (Instr.Fsqrt (sz, d, r));
    d
  | Ast.Neg e ->
    let r = fp_expr env sz e in
    let d = Cfg.fresh_reg env.func Reg.Xmm in
    emit env (Instr.Fneg (sz, d, r));
    d

(* Destination-driven lowering of the top-level operator: [dot += x*y]
   becomes a single [Fadd dot, dot, t] so accumulator patterns are
   directly visible to the vectorizer and accumulator expansion. *)
let cmp_of = function
  | Ast.Lt -> Instr.Lt
  | Ast.Le -> Instr.Le
  | Ast.Gt -> Instr.Gt
  | Ast.Ge -> Instr.Ge
  | Ast.Eq -> Instr.Eq
  | Ast.Ne -> Instr.Ne

let assign_into env x e =
  let dst = var_reg env x in
  match var_ty env x with
  | Ast.Int -> (
    match e with
    | Ast.Int_lit k -> emit env (Instr.Ildi (dst, k))
    | Ast.Binop (op, a, b) ->
      let ra = int_expr env a in
      let ob = int_operand env b in
      let iop =
        match op with
        | Ast.Add -> Instr.Iadd
        | Ast.Sub -> Instr.Isub
        | Ast.Mul -> Instr.Imul
        | Ast.Div -> fail "lower: integer division is not supported"
      in
      emit env (Instr.Iop (iop, dst, ra, ob))
    | e ->
      let r = int_expr env e in
      if not (Reg.equal r dst) then emit env (Instr.Imov (dst, r)))
  | Ast.Fp prec -> (
    let sz = fsize_of_prec prec in
    match e with
    | Ast.Fp_lit c -> emit env (Instr.Fldi (sz, dst, c))
    | Ast.Int_lit k -> emit env (Instr.Fldi (sz, dst, float_of_int k))
    | Ast.Load (p, k) ->
      let base = var_reg env p in
      emit env (Instr.Fld (sz, dst, Instr.mk_mem ~disp:(k * elem_bytes env p) base))
    | Ast.Binop (op, a, b) ->
      let ra = fp_expr env sz a in
      let rb = fp_expr env sz b in
      let fop =
        match op with
        | Ast.Add -> Instr.Fadd
        | Ast.Sub -> Instr.Fsub
        | Ast.Mul -> Instr.Fmul
        | Ast.Div -> Instr.Fdiv
      in
      emit env (Instr.Fop (sz, fop, dst, ra, rb))
    | Ast.Abs e ->
      let r = fp_expr env sz e in
      emit env (Instr.Fabs (sz, dst, r))
    | Ast.Sqrt e ->
      let r = fp_expr env sz e in
      emit env (Instr.Fsqrt (sz, dst, r))
    | Ast.Neg e ->
      let r = fp_expr env sz e in
      emit env (Instr.Fneg (sz, dst, r))
    | Ast.Var _ as e ->
      let r = fp_expr env sz e in
      if not (Reg.equal r dst) then emit env (Instr.Fmov (sz, dst, r)))
  | Ast.Ptr _ -> fail "lower: assignment to pointer %S" x

let rec stmt env s =
  match s with
  | Ast.Assign (x, e) -> assign_into env x e
  | Ast.Assign_op (op, x, e) -> assign_into env x (Ast.Binop (op, Ast.Var x, e))
  | Ast.Store (p, k, e) ->
    let prec = match var_ty env p with Ast.Ptr prec -> prec | _ -> assert false in
    let sz = fsize_of_prec prec in
    let r = fp_expr env sz e in
    let base = var_reg env p in
    emit env (Instr.Fst (sz, Instr.mk_mem ~disp:(k * elem_bytes env p) base, r))
  | Ast.Ptr_inc (p, k) ->
    let base = var_reg env p in
    emit env (Instr.Iop (Instr.Iadd, base, base, Instr.Oimm (k * elem_bytes env p)))
  | Ast.Ptr_inc_var (p, v) ->
    (* p += v elements: a single LEA with the element size as scale *)
    let base = var_reg env p in
    let inc = var_reg env v in
    emit env (Instr.Lea (base, Instr.mk_mem ~index:inc ~scale:(elem_bytes env p) base))
  | Ast.Label l ->
    start env l (* closes the running block with a jump to [l] *)
  | Ast.Goto l ->
    finish env (Block.Jmp l);
    start env (Cfg.fresh_label env.func "dead")
  | Ast.If_goto (op, a, b, l) ->
    let cmp = cmp_of op in
    let fallthrough = Cfg.fresh_label env.func "next" in
    (match (fp_precision env a, fp_precision env b) with
    | None, None ->
      let ra = int_expr env a in
      let ob = int_operand env b in
      finish env (Block.Br { cmp; lhs = ra; rhs = ob; ifso = l; ifnot = fallthrough; dec = 0 })
    | pa, pb ->
      let prec = match pa with Some p -> p | None -> Option.get pb in
      let sz = fsize_of_prec prec in
      let ra = fp_expr env sz a in
      let rb = fp_expr env sz b in
      finish env (Block.Fbr { fsize = sz; cmp; lhs = ra; rhs = rb; ifso = l; ifnot = fallthrough }));
    start env fallthrough
  | Ast.If_then (op, a, b, then_body, else_body) ->
    (* a standard diamond; either branch may be empty *)
    let then_l = Cfg.fresh_label env.func "then" in
    let else_l = Cfg.fresh_label env.func "else" in
    let join_l = Cfg.fresh_label env.func "join" in
    let cmp = cmp_of op in
    (match (fp_precision env a, fp_precision env b) with
    | None, None ->
      let ra = int_expr env a in
      let ob = int_operand env b in
      finish env
        (Block.Br { cmp; lhs = ra; rhs = ob; ifso = then_l; ifnot = else_l; dec = 0 })
    | pa, pb ->
      let prec = match pa with Some p -> p | None -> Option.get pb in
      let sz = fsize_of_prec prec in
      let ra = fp_expr env sz a in
      let rb = fp_expr env sz b in
      finish env
        (Block.Fbr { fsize = sz; cmp; lhs = ra; rhs = rb; ifso = then_l; ifnot = else_l }));
    start env then_l;
    List.iter (stmt env) then_body;
    finish env (Block.Jmp join_l);
    start env else_l;
    List.iter (stmt env) else_body;
    finish env (Block.Jmp join_l);
    start env join_l
  | Ast.Return None ->
    finish env (Block.Ret None);
    start env (Cfg.fresh_label env.func "dead")
  | Ast.Return (Some e) ->
    let r =
      match fp_precision env e with
      | None -> int_expr env e
      | Some prec -> fp_expr env (fsize_of_prec prec) e
    in
    finish env (Block.Ret (Some r));
    start env (Cfg.fresh_label env.func "dead")
  | Ast.Loop lp -> lower_loop env lp

and lower_loop env lp =
  let f = env.func in
  let preheader = Cfg.fresh_label f "preheader" in
  let header = Cfg.fresh_label f "header" in
  let body0 = Cfg.fresh_label f "body" in
  let latch = Cfg.fresh_label f "latch" in
  let mid = Cfg.fresh_label f "mid" in
  let exit = Cfg.fresh_label f "exit" in
  start env preheader;
  (* trip = (to - from) for ascending loops, (from - to) for descending *)
  let cnt = Cfg.fresh_reg f Reg.Gpr in
  let lo = int_expr env lp.Ast.loop_from in
  let hi = int_operand env lp.Ast.loop_to in
  (if lp.Ast.loop_step = 1 then
     match hi with
     | Instr.Oreg rhi -> emit env (Instr.Iop (Instr.Isub, cnt, rhi, Instr.Oreg lo))
     | Instr.Oimm k ->
       emit env (Instr.Ildi (cnt, k));
       emit env (Instr.Iop (Instr.Isub, cnt, cnt, Instr.Oreg lo))
   else emit env (Instr.Iop (Instr.Isub, cnt, lo, hi)));
  let index = var_reg env lp.Ast.loop_var in
  emit env (Instr.Imov (index, lo));
  finish env (Block.Jmp header);
  (* header *)
  start env header;
  finish env
    (Block.Br { cmp = Instr.Lt; lhs = cnt; rhs = Instr.Oimm 1; ifso = mid; ifnot = body0; dec = 0 });
  (* body *)
  start env body0;
  List.iter (stmt env) lp.Ast.loop_body;
  finish env (Block.Jmp latch);
  start env latch;
  emit env (Instr.Iop (Instr.Iadd, index, index, Instr.Oimm lp.Ast.loop_step));
  emit env (Instr.Iop (Instr.Isub, cnt, cnt, Instr.Oimm 1));
  finish env (Block.Jmp header);
  start env mid;
  finish env (Block.Jmp exit);
  start env exit;
  if lp.Ast.loop_opt then begin
    if env.loopnest <> None then fail "lower: more than one OPTLOOP";
    let ln =
      Loopnest.
        {
          preheader;
          header;
          latch;
          mid;
          exit;
          cleanup = None;
          cnt;
          index = Some index;
          step = lp.Ast.loop_step;
          per_iter = 1;
          vectorized = None;
          unrolled = 1;
          lc_fused = false;
          speculate = lp.Ast.loop_speculate;
          template = [];
        }
    in
    env.loopnest <- Some ln
  end

let lower (checked : Typecheck.checked) =
  let k = checked.Typecheck.kernel in
  let func = Cfg.create ~name:k.Ast.k_name ~params:[] in
  let vars = Hashtbl.create 16 in
  (* Parameters come first so their registers are stable for callers. *)
  let params =
    List.map
      (fun p ->
        let cls = match p.Ast.p_ty with Ast.Fp _ -> Reg.Xmm | _ -> Reg.Gpr in
        let r = Cfg.fresh_reg func cls in
        Hashtbl.replace vars p.Ast.p_name r;
        (p.Ast.p_name, r))
      k.Ast.k_params
  in
  let func = { func with Cfg.params = params } in
  (* Locals and loop indices. *)
  List.iter
    (fun (x, ty) ->
      if not (Hashtbl.mem vars x) then
        let cls = match ty with Ast.Fp _ -> Reg.Xmm | _ -> Reg.Gpr in
        Hashtbl.replace vars x (Cfg.fresh_reg func cls))
    checked.Typecheck.env;
  let env =
    {
      func;
      vars;
      types = checked.Typecheck.env;
      cur_label = "entry";
      cur_instrs = [];
      cur_open = true;
      loopnest = None;
    }
  in
  (* Local initializers. *)
  List.iter
    (fun d ->
      match d.Ast.d_init with
      | None -> ()
      | Some c ->
        List.iter
          (fun x ->
            let r = var_reg env x in
            match d.Ast.d_ty with
            | Ast.Int -> emit env (Instr.Ildi (r, int_of_float c))
            | Ast.Fp prec -> emit env (Instr.Fldi (fsize_of_prec prec, r, c))
            | Ast.Ptr _ -> assert false)
          d.Ast.d_names)
    k.Ast.k_locals;
  List.iter (stmt env) k.Ast.k_body;
  (* A void kernel may fall off the end. *)
  if env.cur_open then
    if k.Ast.k_ret = None then finish env (Block.Ret None)
    else finish env (Block.Jmp env.cur_label) (* self-loop on dead tail *)
  ;
  (* Save the pristine scalar loop of the OPTLOOP for later cleanup
     materialization.  This is done after the whole body is lowered so
     blocks that sit textually outside the loop but belong to its
     natural loop (iamax's NEWMAX pattern) are captured too.  Records
     are fresh; the (immutable) instruction lists are shared. *)
  (match env.loopnest with
  | None -> ()
  | Some ln ->
    let body_labels = Loopnest.body_labels func ln in
    let template_labels = (ln.Loopnest.header :: body_labels) @ [ ln.Loopnest.latch ] in
    ln.Loopnest.template <-
      List.filter_map
        (fun l ->
          Option.map
            (fun b -> Block.make b.Block.label ~instrs:b.Block.instrs ~term:b.Block.term)
            (Cfg.find_block func l))
        template_labels);
  let arrays =
    List.filter_map
      (fun p ->
        match p.Ast.p_ty with
        | Ast.Ptr prec ->
          Some
            {
              a_name = p.Ast.p_name;
              a_reg = List.assoc p.Ast.p_name params;
              a_elem = fsize_of_prec prec;
              a_output = List.mem Ast.Output p.Ast.p_flags;
              a_noprefetch = List.mem Ast.No_prefetch p.Ast.p_flags;
              a_mayalias = List.mem Ast.May_alias p.Ast.p_flags;
            }
        | _ -> None)
      k.Ast.k_params
  in
  { func; loopnest = env.loopnest; arrays; ret_ty = k.Ast.k_ret; source = k }
