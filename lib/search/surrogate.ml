open Ifko_transform
module Rng = Ifko_util.Rng

(* Fixed knobs.  The batch width is a constant, NOT derived from the
   worker count: the proposal sequence must be bit-identical at any
   --jobs, and 8 keeps a typical domain pool saturated without
   over-committing probes to one model generation. *)
let default_batch = 8
let default_rounds = 16
let default_patience = 2

(* ---- the model: distance-weighted k-NN regression over the
   axis-encoded, per-axis-normalized parameter vectors ---- *)

let sq x = x *. x

let dist2 a b =
  let acc = ref 0.0 in
  Array.iteri (fun i ai -> acc := !acc +. sq (ai -. b.(i))) a;
  !acc

(* Prediction at [x] from the [k] nearest observations: the mean is
   inverse-distance weighted; the spread combines the neighbors'
   weighted variance with the distance to the nearest one, so the
   uncertainty grows away from sampled regions even where the
   neighborhood agrees. *)
let predict ~obs x =
  let k = min 5 (List.length obs) in
  let by_dist =
    List.sort
      (fun (da, _) (db, _) -> compare (da : float) db)
      (List.map (fun (v, y) -> (dist2 x v, y)) obs)
  in
  let rec take n = function z :: r when n > 0 -> z :: take (n - 1) r | _ -> [] in
  let near = take k by_dist in
  let wsum = ref 0.0 and mean = ref 0.0 in
  List.iter
    (fun (d, y) ->
      let w = 1.0 /. (1e-6 +. d) in
      wsum := !wsum +. w;
      mean := !mean +. (w *. y))
    near;
  let mu = if !wsum > 0.0 then !mean /. !wsum else 0.0 in
  let var = ref 0.0 in
  List.iter (fun (d, y) -> var := !var +. (1.0 /. (1e-6 +. d) *. sq (y -. mu))) near;
  let var = if !wsum > 0.0 then !var /. !wsum else 0.0 in
  let d_near = match near with (d, _) :: _ -> d | [] -> 1.0 in
  let scale = List.fold_left (fun acc (_, y) -> Float.max acc (Float.abs y)) 1.0 near in
  let sigma = sqrt var +. (0.1 *. scale *. sqrt d_near) in
  (mu, sigma)

(* Standard normal cdf via the tanh approximation (no erf in stdlib);
   accurate to ~1e-3, far below the model's own noise. *)
let norm_cdf z =
  0.5 *. (1.0 +. tanh (0.7978845608028654 *. (z +. (0.044715 *. z *. z *. z))))

let norm_pdf z = exp (-0.5 *. z *. z) /. 2.5066282746310002

(* Expected improvement over the incumbent. *)
let ei ~best (mu, sigma) =
  if sigma <= 0.0 then Float.max 0.0 (mu -. best)
  else begin
    let z = (mu -. best) /. sigma in
    ((mu -. best) *. norm_cdf z) +. (sigma *. norm_pdf z)
  end

(* ---- the strategy ---- *)

let strategy ?(extensions = false) ?(warm = []) ?(batch = default_batch)
    ?(rounds = default_rounds) ?(patience = default_patience) ~seed ~cfg ~report ~init
    ~init_perf () =
  let axes = Space.axes ~extensions ~cfg ~report () in
  let live = List.filter (fun ax -> not ax.Space.ax_pruned) axes in
  let encode p =
    Array.of_list
      (List.map
         (fun ax ->
           let v = ax.Space.ax_get p in
           let span = ax.Space.ax_max -. ax.Space.ax_min in
           if span > 0.0 then (v -. ax.Space.ax_min) /. span else 0.0)
         live)
  in
  let rng = Rng.create seed in
  (* Observations for the model (Illegal/Test_failed probes come in as
     -inf; clamp to 0 so one refused point cannot poison every mean),
     plus exact incumbent tracking on the true values. *)
  let obs = ref [ (encode init, Float.max 0.0 init_perf) ] in
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen (Params.canonical init) ();
  let cur = ref init in
  let cur_perf = ref init_perf in
  let warm_base = ref init_perf in
  let round = ref 0 in
  let stall = ref 0 in
  let warm_pending = ref (warm <> []) in
  let random_point () =
    List.fold_left
      (fun p ax ->
        let vals = ax.Space.ax_values in
        ax.Space.ax_set p (List.nth vals (Rng.int rng (List.length vals))))
      init live
  in
  let candidates () =
    (* One-axis neighbors of the incumbent, in axis order... *)
    let neighbors =
      List.concat_map
        (fun ax ->
          let here = ax.Space.ax_get !cur in
          List.filter_map
            (fun v -> if v = here then None else Some (ax.Space.ax_set !cur v))
            ax.Space.ax_values)
        live
    in
    (* ...the SV x UR x AE cross around it (the known interactions —
       vectorization moves the profitable unroll range wholesale, so
       the cross must reach across the SV toggle, not just along the
       incumbent's side of it)... *)
    let cross =
      List.concat_map
        (fun sv ->
          List.concat_map
            (fun u ->
              List.map
                (fun ae -> { !cur with Params.sv; unroll = u; ae })
                (Space.ae_candidates report))
            (Space.unroll_candidates report))
        (Space.sv_candidates report)
    in
    (* ...and uniform random exploration (the only Rng consumer, and
       only ever called from propose, so the stream is a pure function
       of the seed and the observation history). *)
    let explore = List.init (3 * batch) (fun _ -> random_point ()) in
    let fresh = Hashtbl.create 64 in
    List.filter
      (fun p ->
        let c = Params.canonical p in
        if Hashtbl.mem seen c || Hashtbl.mem fresh c then false
        else begin
          Hashtbl.replace fresh c ();
          true
        end)
      (neighbors @ cross @ explore)
  in
  let propose () =
    if !warm_pending then begin
      warm_pending := false;
      warm
    end
    else if !round >= rounds || !stall >= patience then []
    else begin
      incr round;
      let scored =
        List.map (fun p -> (ei ~best:!cur_perf (predict ~obs:!obs (encode p)), p))
          (candidates ())
      in
      (* Best acquisition first; float ties (and there are many, at the
         EI floor) break on the canonical string, never on list
         position luck. *)
      let ranked =
        List.sort
          (fun ((ea : float), pa) (eb, pb) ->
            match compare eb ea with
            | 0 -> compare (Params.canonical pa) (Params.canonical pb)
            | c -> c)
          scored
      in
      let rec take n = function z :: r when n > 0 -> z :: take (n - 1) r | _ -> [] in
      List.map snd (take batch ranked)
    end
  in
  let observe vals =
    let before = !cur_perf in
    List.iter
      (fun (p, v) ->
        Hashtbl.replace seen (Params.canonical p) ();
        obs := (encode p, Float.max 0.0 v) :: !obs;
        if v > !cur_perf then begin
          cur := p;
          cur_perf := v
        end)
      vals;
    if !round = 0 then warm_base := !cur_perf
    else if !cur_perf > before then stall := 0
    else incr stall
  in
  {
    Strategy.name = "surrogate";
    propose;
    observe;
    best = (fun () -> (!cur, !cur_perf));
    contributions =
      (fun () ->
        let ratio a b = if a > 0.0 then b /. a else 1.0 in
        (if warm = [] then [] else [ ("WARM", ratio init_perf !warm_base) ])
        @ [ ("MODEL", ratio !warm_base !cur_perf) ]);
  }
