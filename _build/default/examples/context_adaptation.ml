(* Context adaptation (the paper's Section 3.3 / Figure 4 story).

     dune exec examples/context_adaptation.exe

   The same kernel tuned for two usage contexts — operands streaming
   from memory vs. operands resident in L2 — ends up with visibly
   different parameters: prefetch dominates out of cache, while
   in-cache the computational transformations (accumulator expansion,
   unrolling) take over and non-temporal writes become a bad idea. *)

open Ifko.Blas

let () =
  let cfg = Ifko.Config.p4e in
  List.iter
    (fun (id, flops) ->
      Printf.printf "== %s on %s ==\n%!" (Defs.name id) cfg.Ifko.Config.name;
      let compiled = Hil_sources.compile id in
      let spec = Workload.timer_spec id ~seed:11 in
      let test func =
        List.for_all
          (fun n ->
            let env = Workload.make_env id ~seed:12 n in
            let expect = Workload.expectation id ~seed:12 n in
            Ifko.Verify.check
              ~tol:(Workload.tolerance id ~n)
              ~ret_fsize:id.Defs.prec func env expect
            = Ok ())
          [ 1; 65; 200 ]
      in
      List.iter
        (fun (context, n) ->
          let tuned = Ifko.tune ~cfg ~context ~spec ~n ~flops_per_n:flops ~test compiled in
          Printf.printf "  %-12s N=%-6d  %8.1f MFLOPS   params %s\n%!"
            (Ifko.Timer.context_name context)
            n tuned.Ifko.Driver.ifko_mflops
            (Ifko.Params.to_string tuned.Ifko.Driver.best_params);
          let pf_gain =
            List.fold_left
              (fun acc (d, r) -> if d = "PF DST" || d = "PF INS" || d = "PF2" then acc *. r else acc)
              1.0 tuned.Ifko.Driver.contributions
          in
          let comp_gain =
            List.fold_left
              (fun acc (d, r) -> if d = "UR" || d = "AE" || d = "UR*AE" then acc *. r else acc)
              1.0 tuned.Ifko.Driver.contributions
          in
          Printf.printf "               prefetch tuning %+5.1f%%, computation tuning %+5.1f%%\n%!"
            ((pf_gain -. 1.0) *. 100.0)
            ((comp_gain -. 1.0) *. 100.0))
        [ (Ifko.Timer.Out_of_cache, 80000); (Ifko.Timer.In_l2, 1024) ])
    [ ({ Defs.routine = Defs.Asum; prec = Instr.S }, 2.0);
      ({ Defs.routine = Defs.Dot; prec = Instr.D }, 2.0);
      ({ Defs.routine = Defs.Scal; prec = Instr.D }, 1.0);
    ]
