lib/baselines/compiler_model.ml: Ifko_analysis Ifko_codegen Ifko_machine Ifko_sim Ifko_transform Instr List
