lib/util/rng.mli:
