(** Small numeric helpers for timing results and report tables. *)

val min_float_list : float list -> float
(** Minimum of a non-empty list.  The paper's methodology takes the
    minimum of six repeated wall timings; raises [Invalid_argument] on
    the empty list. *)

val mean : float list -> float
(** Arithmetic mean of a non-empty list. *)

val geomean : float list -> float
(** Geometric mean of a non-empty list of positive values. *)

val mflops : flops:float -> cycles:float -> ghz:float -> float
(** [mflops ~flops ~cycles ~ghz] converts a cycle count measured on a
    machine clocked at [ghz] into MFLOPS, the unit used throughout the
    paper's evaluation. *)

val percent_of : best:float -> float -> float
(** [percent_of ~best v] is [100 * v / best]; the figures report every
    tuning method as a percentage of the best observed performance. *)

val round1 : float -> float
(** Round to one decimal digit (for table printing). *)
