open Ifko_codegen

type scalar_class = Reduction | Invariant | Temp

type t = {
  vectorizable : bool;
  reason : string;
  precision : Instr.fsize option;
  classes : (Reg.t * scalar_class) list;
  max_unroll : int;
}

let not_vectorizable reason =
  { vectorizable = false; reason; precision = None; classes = []; max_unroll = 128 }

let analyze (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> not_vectorizable "no loop marked for tuning"
  | Some ln -> (
    let f = compiled.Lower.func in
    match Loopnest.body_labels f ln with
    | [] -> not_vectorizable "empty loop body"
    | _ :: _ :: _ -> not_vectorizable "loop body contains control flow"
    | [ body_label ] ->
      let body = Cfg.find_block_exn f body_label in
      if body.Block.term <> Block.Jmp ln.Loopnest.latch then
        not_vectorizable "loop body contains control flow"
      else begin
        let moving = Ptrinfo.analyze compiled in
        let stride_of base =
          List.find_opt (fun m -> Reg.equal m.Ptrinfo.array.Lower.a_reg base) moving
        in
        let accums = Accuminfo.analyze compiled in
        let precision = ref None and failure = ref None in
        let fail reason = if !failure = None then failure := Some reason in
        let note_prec sz =
          match !precision with
          | None -> precision := Some sz
          | Some sz' -> if sz <> sz' then fail "mixed precisions in loop body"
        in
        let check_mem what (m : Instr.mem) sz =
          if m.Instr.disp <> 0 || m.Instr.index <> None then
            fail (what ^ ": non-trivial addressing")
          else
            match stride_of m.Instr.base with
            | None -> fail (what ^ ": base is not a moving array pointer")
            | Some mv ->
              if mv.Ptrinfo.stride <> Instr.fsize_bytes sz then
                fail (what ^ ": array stride is not one ascending element")
        in
        List.iter
          (fun i ->
            match i with
            | Instr.Fld (sz, _, m) ->
              note_prec sz;
              check_mem "load" m sz
            | Instr.Fst (sz, m, _) | Instr.Fstnt (sz, m, _) ->
              note_prec sz;
              check_mem "store" m sz
            | Instr.Fop (sz, op, _, _, _) | Instr.Fopm (sz, op, _, _, _) -> (
              note_prec sz;
              match op with
              | Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv | Instr.Fmax | Instr.Fmin
                -> ())
            | Instr.Fabs (sz, _, _) | Instr.Fsqrt (sz, _, _) -> note_prec sz
            | Instr.Fmov (sz, _, _) | Instr.Fldi (sz, _, _) -> note_prec sz
            | Instr.Iop (Instr.Iadd, d, s, Instr.Oimm _) when Reg.equal d s -> (
              (* pointer bump; must belong to a moving array *)
              match stride_of d with
              | Some _ -> ()
              | None -> fail "integer arithmetic in loop body")
            | Instr.Fneg _ -> fail "negation is not vectorized"
            | Instr.Vld _ | Instr.Vst _ | Instr.Vstnt _ | Instr.Vmov _ | Instr.Vbcast _
            | Instr.Vldi _ | Instr.Vop _ | Instr.Vopm _ | Instr.Vabs _ | Instr.Vsqrt _
            | Instr.Vcmp _ | Instr.Vmovmsk _ | Instr.Vextract _ | Instr.Vreduce _ ->
              fail "loop already contains vector instructions"
            | Instr.Touch _ -> fail "block-fetch touches are not vectorized"
            | Instr.Prefetch _ | Instr.Nop -> ()
            | Instr.Ild _ | Instr.Ist _ | Instr.Imov _ | Instr.Ildi _ | Instr.Iop _
            | Instr.Lea _ -> fail "integer arithmetic in loop body")
          body.Block.instrs;
        match !failure with
        | Some reason -> not_vectorizable reason
        | None -> (
          (* Classify every Xmm register the body mentions. *)
          let live = Liveness.compute f in
          let live_in = Liveness.live_in live body_label in
          let mentioned = ref Reg.Set.empty in
          List.iter
            (fun i ->
              List.iter
                (fun r -> if r.Reg.cls = Reg.Xmm then mentioned := Reg.Set.add r !mentioned)
                (Instr.defs i @ Instr.uses i))
            body.Block.instrs;
          let is_accum r = List.exists (fun a -> Reg.equal a.Accuminfo.reg r) accums in
          let defined_in_body r =
            List.exists
              (fun i -> List.exists (Reg.equal r) (Instr.defs i))
              body.Block.instrs
          in
          let classes, bad =
            Reg.Set.fold
              (fun r (acc, bad) ->
                if is_accum r then ((r, Reduction) :: acc, bad)
                else if not (defined_in_body r) then ((r, Invariant) :: acc, bad)
                else if not (Reg.Set.mem r live_in) then ((r, Temp) :: acc, bad)
                else (acc, true))
              !mentioned ([], false)
          in
          match (bad, !precision) with
          | true, _ -> not_vectorizable "loop-carried scalar is not an add-reduction"
          | _, None -> not_vectorizable "no floating-point work in loop body"
          | false, Some _ ->
            {
              vectorizable = true;
              reason = "";
              precision = !precision;
              classes;
              max_unroll = 128;
            })
      end)
