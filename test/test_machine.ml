(* Machine-model tests: cache behaviour, memory-system timing
   mechanisms (latency, bandwidth, MSHR limit, prefetch, non-temporal
   stores, bus turnaround, writeback accounting). *)
open Ifko_machine

let small_level = { Config.size = 1024; line = 64; assoc = 2; latency = 3 }

let test_cache_hit_miss () =
  let c = Cache.create small_level in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.insert c ~addr:0 ~write:false : int option);
  Alcotest.(check bool) "hit after insert" true (Cache.access c ~addr:32 ~write:false);
  Alcotest.(check bool) "distinct line misses" false (Cache.access c ~addr:64 ~write:false);
  let h, m = Cache.stats c in
  Alcotest.(check (pair int int)) "stats" (1, 2) (h, m)

let test_cache_lru_eviction () =
  let c = Cache.create small_level in
  (* 1024/64/2 = 8 sets; set 0 holds lines 0 and 512 etc. *)
  ignore (Cache.insert c ~addr:0 ~write:true : int option);
  ignore (Cache.insert c ~addr:512 ~write:false : int option);
  ignore (Cache.access c ~addr:0 ~write:false : bool);
  (* touch 0 so 512 is LRU *)
  (match Cache.insert c ~addr:1024 ~write:false with
  | Some _ -> Alcotest.fail "victim 512 was clean"
  | None -> ());
  Alcotest.(check bool) "0 still present" true (Cache.probe c ~addr:0);
  Alcotest.(check bool) "512 evicted" false (Cache.probe c ~addr:512);
  (* now evict the dirty line 0 *)
  ignore (Cache.access c ~addr:1024 ~write:false : bool);
  (match Cache.insert c ~addr:1536 ~write:false with
  | Some 0 -> ()
  | Some a -> Alcotest.failf "wrong dirty victim %d" a
  | None -> Alcotest.fail "expected dirty eviction of line 0")

let test_cache_invalidate_flush () =
  let c = Cache.create small_level in
  ignore (Cache.insert c ~addr:0 ~write:true : int option);
  Alcotest.(check bool) "invalidate reports dirty" true (Cache.invalidate c ~addr:0);
  Alcotest.(check bool) "gone" false (Cache.probe c ~addr:0);
  ignore (Cache.insert c ~addr:64 ~write:true : int option);
  Alcotest.(check int) "one dirty line" 1 (Cache.dirty_lines c);
  Cache.flush c;
  Alcotest.(check int) "flush clears dirty" 0 (Cache.dirty_lines c);
  Alcotest.(check bool) "flush empties" false (Cache.probe c ~addr:64)

(* Geometry validation: every shift/mask in Cache relies on
   power-of-two line sizes and set counts, so ill-formed levels must be
   rejected at Config load instead of silently mis-indexing. *)
let test_cache_geometry_validation () =
  let rejects name lvl =
    match Cache.create lvl with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  rejects "non-pow2 line" { Config.size = 1536; line = 48; assoc = 2; latency = 1 };
  rejects "non-pow2 sets" { Config.size = 1536; line = 64; assoc = 2; latency = 1 };
  rejects "assoc 0" { Config.size = 1024; line = 64; assoc = 0; latency = 1 };
  rejects "negative latency" { Config.size = 1024; line = 64; assoc = 2; latency = -1 };
  rejects "size below one set" { Config.size = 64; line = 64; assoc = 2; latency = 1 };
  (* the boundary cases that must be accepted *)
  ignore (Cache.create { Config.size = 128; line = 64; assoc = 2; latency = 1 } : Cache.t);
  ignore (Cache.create { Config.size = 16; line = 16; assoc = 1; latency = 0 } : Cache.t)

let test_memsys_geometry_validation () =
  (* L1 lines must tile L2 lines for the inclusive fill paths *)
  let cfg =
    { Config.p4e with
      Config.l1 = { Config.size = 16384; line = 128; assoc = 4; latency = 1 };
      l2 = { Config.size = 1048576; line = 64; assoc = 8; latency = 18 }
    }
  in
  (match Memsys.create cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "l2 line < l1 line accepted");
  match Memsys.create { cfg with Config.l1 = { cfg.Config.l1 with Config.line = 48 } } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-pow2 L1 line accepted"

let fresh_ms cfg =
  let ms = Memsys.create cfg in
  Memsys.reset ms ~flush:true;
  ms

let test_load_latencies () =
  let cfg = Config.p4e in
  let ms = fresh_ms cfg in
  let t1 = Memsys.load ms ~addr:4096 ~now:0.0 in
  Alcotest.(check bool) "cold load pays full memory latency" true
    (t1 >= float_of_int cfg.Config.mem_latency);
  (* after the fill settles, the same line is an L1 hit *)
  let t2 = Memsys.load ms ~addr:4096 ~now:(t1 +. 1.0) in
  Alcotest.(check (float 1e-9)) "L1 hit latency"
    (t1 +. 1.0 +. float_of_int cfg.Config.l1.Config.latency)
    t2

let test_bandwidth_bound () =
  let cfg = Config.p4e in
  let ms = fresh_ms cfg in
  (* stream 64 KiB of demand loads issued as fast as possible *)
  let bytes = 65536 in
  let finish = ref 0.0 in
  let now = ref 0.0 in
  for i = 0 to (bytes / 8) - 1 do
    finish := Float.max !finish (Memsys.load ms ~addr:(4096 + (i * 8)) ~now:!now);
    now := !now +. 0.5
  done;
  let min_cycles = float_of_int bytes /. cfg.Config.bus_bytes_per_cycle in
  Alcotest.(check bool) "cannot beat the bus" true (!finish >= min_cycles)

let test_prefetch_hides_latency () =
  let cfg = Config.p4e in
  let run ~pf =
    let ms = fresh_ms cfg in
    let now = ref 0.0 and finish = ref 0.0 in
    for i = 0 to 4095 do
      let addr = 4096 + (i * 8) in
      if pf then Memsys.prefetch ms ~kind:Instr.Nta ~addr:(addr + 2048) ~now:!now;
      let c = Memsys.load ms ~addr ~now:!now in
      finish := Float.max !finish c;
      (* consumer paced by data arrival, like a ROB-limited core *)
      now := Float.max (!now +. 2.0) (c -. 200.0)
    done;
    !finish
  in
  let without = run ~pf:false and with_pf = run ~pf:true in
  Alcotest.(check bool)
    (Printf.sprintf "prefetch helps (%.0f vs %.0f)" with_pf without)
    true (with_pf < without)

let test_nt_store_penalty_when_cached () =
  let cfg = Config.opteron in
  let ms = fresh_ms cfg in
  (* load brings the line into cache; an NT store to it must pay *)
  let _ = Memsys.load ms ~addr:4096 ~now:0.0 in
  let before = Memsys.bus_backlog ms ~now:10000.0 in
  Memsys.nt_store ms ~addr:4096 ~bytes:8 ~now:10000.0;
  let cached_cost = Memsys.bus_backlog ms ~now:10000.0 -. before in
  let ms2 = fresh_ms cfg in
  Memsys.nt_store ms2 ~addr:4096 ~bytes:8 ~now:10000.0;
  let cold_cost = Memsys.bus_backlog ms2 ~now:10000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "penalty %.1f > streaming %.1f" cached_cost cold_cost)
    true (cached_cost > cold_cost)

let test_bus_turnaround () =
  let cfg = Config.p4e in
  (* alternating read/write claims cost more bus time than batched *)
  let alternating =
    let ms = fresh_ms cfg in
    for i = 0 to 31 do
      let _ = Memsys.load ms ~addr:(4096 + (i * 128)) ~now:0.0 in
      Memsys.nt_store ms ~addr:(65536 + (i * 128)) ~bytes:64 ~now:0.0
    done;
    Memsys.bus_backlog ms ~now:0.0
  in
  let batched =
    let ms = fresh_ms cfg in
    for i = 0 to 31 do
      ignore (Memsys.load ms ~addr:(4096 + (i * 128)) ~now:0.0 : float)
    done;
    for i = 0 to 31 do
      Memsys.nt_store ms ~addr:(65536 + (i * 128)) ~bytes:64 ~now:0.0
    done;
    Memsys.bus_backlog ms ~now:0.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "alternating %.0f > batched %.0f" alternating batched)
    true (alternating > batched +. (30.0 *. cfg.Config.bus_turnaround))

let test_hw_prefetcher_covers_stream () =
  (* stream one line per step with a data-paced consumer; the stream
     prefetcher must make it significantly faster than with the
     prefetcher disabled, and full-latency misses must become rare *)
  let run cfg =
    let ms = fresh_ms cfg in
    let lines = 256 in
    let full_misses = ref 0 in
    let now = ref 0.0 in
    for i = 0 to lines - 1 do
      let addr = 4096 + (i * 64) in
      let c = Memsys.load ms ~addr ~now:!now in
      if c -. !now >= float_of_int cfg.Config.mem_latency then incr full_misses;
      now := Float.max (!now +. 20.0) c
    done;
    (!now, !full_misses)
  in
  let cfg = Config.opteron in
  let with_pf, full_misses = run cfg in
  let without_pf, _ = run { cfg with Config.hw_prefetch_ahead = 0 } in
  Alcotest.(check bool)
    (Printf.sprintf "prefetcher speeds the stream (%.0f vs %.0f)" with_pf without_pf)
    true
    (with_pf < 0.8 *. without_pf);
  Alcotest.(check bool)
    (Printf.sprintf "few full-latency misses (%d/256)" full_misses)
    true (full_misses < 128)

let test_wc_batching () =
  (* consecutive NT stores within one line gather in the WC buffer and
     claim the bus once, when the buffer switches lines *)
  let cfg = Config.p4e in
  let ms = fresh_ms cfg in
  for i = 0 to 7 do
    Memsys.nt_store ms ~addr:(4096 + (i * 8)) ~bytes:8 ~now:0.0
  done;
  Alcotest.(check (float 1e-9)) "still buffered" 0.0 (Memsys.bus_backlog ms ~now:0.0);
  Memsys.nt_store ms ~addr:8192 ~bytes:8 ~now:0.0;
  let after_switch = Memsys.bus_backlog ms ~now:0.0 in
  Alcotest.(check bool) "line flushed on switch" true
    (after_switch >= 64.0 /. cfg.Config.bus_bytes_per_cycle)

let test_touch_is_demand_priority () =
  (* a Touch completes like a demand load (full priority), while a
     software prefetch of the same line lands later (lazy latency) *)
  let cfg = Config.p4e in
  let ms1 = fresh_ms cfg in
  let demand = Memsys.load ms1 ~addr:4096 ~now:0.0 in
  let ms2 = fresh_ms cfg in
  Memsys.prefetch ms2 ~kind:Instr.Nta ~addr:4096 ~now:0.0;
  let via_pf = Memsys.load ms2 ~addr:4096 ~now:1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "prefetched arrival %.0f later than demand %.0f" via_pf demand)
    true (via_pf > demand)

let test_warm_l2 () =
  let cfg = Config.p4e in
  let ms = fresh_ms cfg in
  Memsys.warm_l2 ms ~addr:4096;
  let t = Memsys.load ms ~addr:4096 ~now:0.0 in
  Alcotest.(check bool) "L2-warm load is fast" true
    (t <= float_of_int (cfg.Config.l2.Config.latency + 1))

let test_pending_writeback_cost () =
  let cfg = Config.p4e in
  let ms = fresh_ms cfg in
  Alcotest.(check (float 1e-9)) "clean = 0" 0.0 (Memsys.pending_writeback_cost ms);
  (* dirty a line via a store to a warm line *)
  Memsys.warm_all ms ~addr:4096;
  Memsys.store ms ~addr:4096 ~now:0.0;
  Alcotest.(check bool) "dirty lines cost" true (Memsys.pending_writeback_cost ms > 0.0)

let test_elems_per_line () =
  Alcotest.(check int) "P4E doubles" 16 (Config.elems_per_line Config.p4e Instr.D);
  Alcotest.(check int) "P4E singles" 32 (Config.elems_per_line Config.p4e Instr.S);
  Alcotest.(check int) "Opteron doubles" 8 (Config.elems_per_line Config.opteron Instr.D)

(* The MRU way filter and the touched-way log are acceleration state:
   a reused cache must behave exactly like a fresh one after flush, and
   the filter must never survive a flush (a stale hint is re-validated,
   but the contract is that flush clears it outright). *)
let test_cache_flush_clears_acceleration () =
  let lvl = { Config.size = 1024; line = 64; assoc = 2; latency = 1 } in
  let reused = Cache.create lvl in
  (* churn: fill beyond capacity, flush, refill *)
  for i = 0 to 63 do
    ignore (Cache.insert reused ~addr:(i * 64) ~write:(i land 1 = 0) : int option)
  done;
  Cache.flush reused;
  Alcotest.(check int) "flush leaves nothing dirty" 0 (Cache.dirty_lines reused);
  for i = 0 to 63 do
    Alcotest.(check bool) "flush empties every line" false
      (Cache.probe reused ~addr:(i * 64))
  done;
  Cache.reset_stats reused;
  (* a fresh twin must now agree access-for-access, including the
     eviction sequence (scan order depends on cleared LRU/MRU state) *)
  let fresh = Cache.create lvl in
  for i = 0 to 127 do
    let addr = (i * 192) land 8191 in
    let w = i land 3 = 0 in
    Alcotest.(check bool) "access parity" (Cache.access fresh ~addr ~write:w)
      (Cache.access reused ~addr ~write:w);
    match (Cache.insert fresh ~addr ~write:w, Cache.insert reused ~addr ~write:w) with
    | Some a, Some b -> Alcotest.(check int) "same victim" a b
    | None, None -> ()
    | _ -> Alcotest.fail "divergent eviction"
  done;
  Alcotest.(check (pair int int)) "same stats" (Cache.stats fresh) (Cache.stats reused)

(* ---- machine arena pooling ----

   The pool's contract is deliberately loose — [release] does not clean
   and [acquire] may return an instance holding arbitrary prior state —
   so these tests drive the exact caller protocol (reset or restore
   before first use) and check bit-identity against fresh construction. *)

(* A deterministic mixed workload: strided loads/stores/prefetches over
   a few arrays, returning a trace (sum of completion times) plus the
   profile counters — any divergence in cache/bus/MSHR state shows up
   in one of them. *)
let drive ms =
  let now = ref 0.0 and acc = ref 0.0 in
  for i = 0 to 799 do
    let addr = 4096 + (i * 24 mod 16384) in
    (match i land 3 with
    | 0 | 1 -> acc := !acc +. Memsys.load ms ~addr ~now:!now
    | 2 -> Memsys.store ms ~addr:(32768 + (i * 64 mod 8192)) ~now:!now
    | _ -> Memsys.prefetch ms ~kind:Instr.T0 ~addr:(addr + 4096) ~now:!now);
    now := !now +. 1.5
  done;
  let p = Memsys.profile ms in
  ( !acc +. Memsys.pending_writeback_cost ms +. Memsys.drain_time ms ~now:!now,
    ((p.Memsys.l1_hits, p.Memsys.l1_misses), (p.Memsys.l2_hits, p.Memsys.l2_misses)) )

let fresh_trace cfg =
  let ms = Memsys.create cfg in
  Memsys.reset ms ~flush:true;
  drive ms

let test_arena_reuse_interleaved () =
  Arena.clear ();
  let want_p4e = fresh_trace Config.p4e in
  let want_opt = fresh_trace Config.opteron in
  (* interleave the two geometries so each release/acquire pair hands
     back an instance dirtied by the previous round *)
  for round = 1 to 4 do
    List.iter
      (fun (cfg, want) ->
        let ms = Arena.acquire cfg in
        Memsys.reset ms ~flush:true;
        let got = drive ms in
        Alcotest.(check (pair (float 0.0) (pair (pair int int) (pair int int))))
          (Printf.sprintf "round %d %s identical to fresh" round cfg.Config.name)
          want got;
        Arena.release ms)
      [ (Config.p4e, want_p4e); (Config.opteron, want_opt) ]
  done;
  let s = Arena.stats () in
  Alcotest.(check int) "acquires" 8 s.Arena.acquires;
  Alcotest.(check int) "one instance created per geometry" 2 s.Arena.creates

(* A run that traps mid-flight releases a half-driven machine back to
   the pool; the next borrower's reset must erase every trace of it. *)
let test_arena_reset_after_trap () =
  Arena.clear ();
  let want = fresh_trace Config.p4e in
  (match
     Arena.with_machine Config.p4e (fun ms ->
         Memsys.reset ms ~flush:true;
         for i = 0 to 99 do
           ignore (Memsys.load ms ~addr:(i * 64) ~now:(float_of_int i) : float)
         done;
         failwith "trap")
   with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected the trap to propagate");
  let ms = Arena.acquire Config.p4e in
  Memsys.reset ms ~flush:true;
  Alcotest.(check (pair (float 0.0) (pair (pair int int) (pair int int))))
    "post-trap borrower identical to fresh" want (drive ms);
  Arena.release ms;
  Alcotest.(check int) "the trapped instance was pooled" 1 (Arena.stats ()).Arena.creates

(* Restore targets may hold arbitrary prior contents of the same
   geometry (the pool hands them out that way): a snapshot applied over
   a dirty instance must continue exactly like one applied to a fresh
   instance. *)
let test_restore_into_used_instance () =
  let cfg = Config.p4e in
  let warm = Memsys.create cfg in
  Memsys.reset warm ~flush:true;
  ignore (drive warm);
  let snap = Memsys.snapshot warm in
  let cont ms = drive ms in
  let into_fresh =
    let ms = Memsys.create cfg in
    Memsys.restore ms snap;
    cont ms
  in
  let into_used =
    let ms = Memsys.create cfg in
    Memsys.reset ms ~flush:true;
    (* different touched set and clock state than the snapshot *)
    for i = 0 to 499 do
      ignore (Memsys.load ms ~addr:(65536 + (i * 72 mod 32768)) ~now:(float_of_int i))
    done;
    Memsys.restore ms snap;
    cont ms
  in
  Alcotest.(check (pair (float 0.0) (pair (pair int int) (pair int int))))
    "restore over dirty state continues identically" into_fresh into_used

let suite =
  [ Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache geometry validation" `Quick test_cache_geometry_validation;
    Alcotest.test_case "memsys geometry validation" `Quick test_memsys_geometry_validation;
    Alcotest.test_case "flush clears acceleration state" `Quick
      test_cache_flush_clears_acceleration;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache invalidate/flush" `Quick test_cache_invalidate_flush;
    Alcotest.test_case "load latencies" `Quick test_load_latencies;
    Alcotest.test_case "bandwidth bound" `Quick test_bandwidth_bound;
    Alcotest.test_case "prefetch hides latency" `Quick test_prefetch_hides_latency;
    Alcotest.test_case "nt store penalty" `Quick test_nt_store_penalty_when_cached;
    Alcotest.test_case "bus turnaround" `Quick test_bus_turnaround;
    Alcotest.test_case "hw prefetcher" `Quick test_hw_prefetcher_covers_stream;
    Alcotest.test_case "WC batching" `Quick test_wc_batching;
    Alcotest.test_case "touch vs prefetch priority" `Quick test_touch_is_demand_priority;
    Alcotest.test_case "warm L2" `Quick test_warm_l2;
    Alcotest.test_case "pending writebacks" `Quick test_pending_writeback_cost;
    Alcotest.test_case "elems per line" `Quick test_elems_per_line;
    Alcotest.test_case "arena reuse across interleaved geometries" `Quick
      test_arena_reuse_interleaved;
    Alcotest.test_case "arena reset after trap" `Quick test_arena_reset_after_trap;
    Alcotest.test_case "restore into used instance" `Quick test_restore_into_used_instance;
  ]
