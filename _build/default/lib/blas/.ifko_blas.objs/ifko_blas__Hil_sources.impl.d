lib/blas/hil_sources.ml: Defs Ifko_codegen Ifko_hil Instr Printf String
