(** Generic workload builder and tester for arbitrary user kernels.

    The CLI and the serve daemon both need timers and testers for
    kernels they have never seen before; this module derives them from
    the kernel's signature exactly the same way everywhere, so the
    content-addressed store keys (which digest the seeded workload)
    agree between `ifko tune`, `ifko sim` and `ifko serve`. *)

val spec : ?seed:int -> Ifko_codegen.Lower.compiled -> Ifko_sim.Timer.spec
(** Workload from the kernel's parameters: every [ptr] parameter binds
    to a fresh random vector of length N (seeded by [seed], default 0),
    every int parameter to N, every fp parameter to 0.77 — matching the
    library's BLAS workloads. *)

val test :
  Ifko_codegen.Lower.compiled -> Ifko_sim.Timer.spec -> Cfg.func -> bool
(** Differential tester against the untransformed lowering at sizes
    {0, 1, 7, 130}: returns and all array outputs must agree to 1e-4
    relative tolerance; a trap fails the candidate.  Partial
    application compiles the reference side once per kernel. *)
