(* Unit and property tests for Ifko_util. *)
open Ifko_util

let test_ids () =
  let g = Ids.create () in
  Alcotest.(check int) "first" 0 (Ids.next g);
  Alcotest.(check int) "second" 1 (Ids.next g);
  Alcotest.(check int) "peek does not advance" 2 (Ids.peek g);
  Alcotest.(check int) "peek stable" 2 (Ids.peek g);
  Ids.reserve g 10;
  Alcotest.(check int) "reserve raises floor" 10 (Ids.next g);
  Ids.reserve g 5;
  Alcotest.(check int) "reserve never lowers" 11 (Ids.next g);
  let g2 = Ids.create ~start:42 () in
  Alcotest.(check int) "custom start" 42 (Ids.next g2)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done;
  let c = Rng.create 8 in
  Alcotest.(check bool) "different seed differs" true (Rng.int64 a <> Rng.int64 c)

let test_rng_split () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int64 a) in
  let ys = List.init 20 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams are independent" true (xs <> ys)

let prop_rng_int_range =
  QCheck.Test.make ~name:"Rng.int within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Rng.create seed in
      let v = Rng.int g bound in
      v >= 0 && v < bound)

let prop_rng_uniform_range =
  QCheck.Test.make ~name:"Rng.uniform in [0,1)" ~count:500 QCheck.small_int (fun seed ->
      let g = Rng.create seed in
      let v = Rng.uniform g in
      v >= 0.0 && v < 1.0)

let prop_sign_float =
  QCheck.Test.make ~name:"Rng.sign_float both signs and bounded" ~count:200
    QCheck.small_int
    (fun seed ->
      let g = Rng.create seed in
      let vs = List.init 200 (fun _ -> Rng.sign_float g 1.0) in
      List.for_all (fun v -> Float.abs v < 1.0) vs
      && List.exists (fun v -> v < 0.0) vs
      && List.exists (fun v -> v > 0.0) vs)

let test_stats () =
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_float_list [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-6)) "mflops" 1000.0
    (Stats.mflops ~flops:1000.0 ~cycles:1000.0 ~ghz:1.0);
  Alcotest.(check (float 1e-9)) "percent" 50.0 (Stats.percent_of ~best:10.0 5.0);
  (* failed timings report neg_infinity; percent_of must not divide by
     them or leak NaN into the figures *)
  Alcotest.(check (float 1e-9)) "percent of failed best" 0.0
    (Stats.percent_of ~best:neg_infinity 5.0);
  Alcotest.(check (float 1e-9)) "percent of failed value" 0.0
    (Stats.percent_of ~best:10.0 neg_infinity);
  Alcotest.(check (float 1e-9)) "percent all failed" 0.0
    (Stats.percent_of ~best:neg_infinity neg_infinity);
  Alcotest.(check (float 1e-9)) "percent of zero best" 0.0 (Stats.percent_of ~best:0.0 5.0);
  Alcotest.(check (float 1e-9)) "round1" 1.2 (Stats.round1 1.24);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.min_float_list: empty")
    (fun () -> ignore (Stats.min_float_list [] : float))

(* naive substring test, used across the suites *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table () =
  let t = Table.create ~title:"T" [ "a"; "bb" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "title present" true (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "contains cell" true (contains s "22");
  Alcotest.(check bool) "has separators" true (contains s "+--")

let test_table_mismatch () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "bad row" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_bar () =
  Alcotest.(check string) "empty" "          " (Table.bar ~width:10 ~frac:0.0);
  Alcotest.(check string) "full" "##########" (Table.bar ~width:10 ~frac:1.0);
  Alcotest.(check string) "clamped" "##########" (Table.bar ~width:10 ~frac:3.0);
  Alcotest.(check string) "half" "#####     " (Table.bar ~width:10 ~frac:0.5)

let suite =
  [ Alcotest.test_case "ids" `Quick test_ids;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split" `Quick test_rng_split;
    QCheck_alcotest.to_alcotest prop_rng_int_range;
    QCheck_alcotest.to_alcotest prop_rng_uniform_range;
    QCheck_alcotest.to_alcotest prop_sign_float;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table render" `Quick test_table;
    Alcotest.test_case "table mismatch" `Quick test_table_mismatch;
    Alcotest.test_case "bar" `Quick test_bar;
  ]
