lib/sim/exec.mli: Cfg Env Ifko_machine Instr
