lib/transform/edit.ml: Block List
