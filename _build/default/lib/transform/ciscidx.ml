(** CISC two-array indexing — the other technique the paper's loss
    analysis names: "FKO presently does not exploit the opportunity to
    use x86 CISC indexing to index both arrays using a register, which
    avoids an additional pointer increment at the end of the loop"
    (this is why ifko was a hair slower on out-of-cache Opteron scopy).

    Implemented as a post-unroll rewrite: all moving arrays are
    addressed [ptr + idx] off one shared index register, the pointers
    stay fixed until the loop exits, and only the index is bumped.
    Used by ATLAS's hand-tuned kernels; exposed to FKO itself as an
    extension via {!Params.t.cisc} (off by default, as published). *)

open Ifko_codegen
open Ifko_analysis

(* Rewrite the straight-line main body so that all moving arrays are
   addressed as [ptr + idx] off a single index register which is the
   only thing incremented; the pointers themselves stay fixed until the
   loop exits (where they are materialized for the cleanup loop). *)
let apply (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> ()
  | Some ln -> (
    let f = compiled.Lower.func in
    let moving = Ptrinfo.analyze compiled in
    match (Loopnest.body_labels f ln, moving) with
    | [ body_label ], (_ :: _ :: _ as movers)
      when List.for_all
             (fun (m : Ptrinfo.moving) -> m.Ptrinfo.stride = (List.hd movers).Ptrinfo.stride)
             movers -> (
      let body = Cfg.find_block_exn f body_label in
      match body.Block.term with
      | Block.Br _ | Block.Jmp _ ->
        let stride = (List.hd movers).Ptrinfo.stride in
        let regs = List.map (fun m -> m.Ptrinfo.array.Lower.a_reg) movers in
        let is_mover r = List.exists (Reg.equal r) regs in
        let idx = Cfg.fresh_reg f Reg.Gpr in
        let rewrite_mem (m : Instr.mem) =
          if is_mover m.Instr.base && m.Instr.index = None then
            { m with Instr.index = Some idx; scale = 1 }
          else m
        in
        let rewrite instr =
          match instr with
          | Instr.Iop (Instr.Iadd, d, s, Instr.Oimm k)
            when Reg.equal d s && is_mover d && k = stride ->
            None (* pointer bump replaced by the shared index update *)
          | Instr.Fld (sz, d, m) -> Some (Instr.Fld (sz, d, rewrite_mem m))
          | Instr.Fst (sz, m, s) -> Some (Instr.Fst (sz, rewrite_mem m, s))
          | Instr.Fstnt (sz, m, s) -> Some (Instr.Fstnt (sz, rewrite_mem m, s))
          | Instr.Fopm (sz, op, d, a, m) -> Some (Instr.Fopm (sz, op, d, a, rewrite_mem m))
          | Instr.Vld (sz, d, m) -> Some (Instr.Vld (sz, d, rewrite_mem m))
          | Instr.Vst (sz, m, s) -> Some (Instr.Vst (sz, rewrite_mem m, s))
          | Instr.Vstnt (sz, m, s) -> Some (Instr.Vstnt (sz, rewrite_mem m, s))
          | Instr.Vopm (sz, op, d, a, m) -> Some (Instr.Vopm (sz, op, d, a, rewrite_mem m))
          | Instr.Prefetch (k, m) -> Some (Instr.Prefetch (k, rewrite_mem m))
          | i -> Some i
        in
        body.Block.instrs <-
          List.filter_map rewrite body.Block.instrs
          @ [ Instr.Iop (Instr.Iadd, idx, idx, Instr.Oimm stride) ];
        (* Initialize the index and materialize final pointer values for
           the cleanup loop. *)
        let preheader = Cfg.find_block_exn f ln.Loopnest.preheader in
        Edit.append_instrs preheader [ Instr.Ildi (idx, 0) ];
        let mid = Cfg.find_block_exn f ln.Loopnest.mid in
        Edit.prepend_instrs mid
          (List.map (fun r -> Instr.Iop (Instr.Iadd, r, r, Instr.Oreg idx)) regs)
      | Block.Fbr _ | Block.Ret _ -> ())
    | _ -> ())
