(** Tiny block-editing helpers shared by the transformations. *)

let append_instrs (b : Block.t) instrs = b.Block.instrs <- b.Block.instrs @ instrs
let prepend_instrs (b : Block.t) instrs = b.Block.instrs <- instrs @ b.Block.instrs

(** Map every instruction of block [b] through [f], dropping [None]s. *)
let filter_map_instrs (b : Block.t) f = b.Block.instrs <- List.filter_map f b.Block.instrs
