(* Domain-pool tests: order preservation, pool reuse, the sequential
   jobs=1 path, and deterministic (lowest-index) exception surfacing. *)

let collatz_steps n =
  let rec go n acc = if n <= 1 then acc else go (if n mod 2 = 0 then n / 2 else (3 * n) + 1) (acc + 1) in
  go n 0

let test_map_preserves_order () =
  let xs = List.init 200 (fun i -> i + 1) in
  let expected = List.map collatz_steps xs in
  Alcotest.(check (list int)) "jobs=4 equals sequential" expected
    (Ifko_par.Par.map ~jobs:4 collatz_steps xs);
  Alcotest.(check (list int)) "jobs=1 equals sequential" expected
    (Ifko_par.Par.map ~jobs:1 collatz_steps xs)

let test_pool_reuse () =
  Ifko_par.Par.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check int) "clamped jobs" 3 (Ifko_par.Par.Pool.jobs pool);
      Alcotest.(check (list int)) "first batch" [ 2; 4; 6 ]
        (Ifko_par.Par.Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]);
      Alcotest.(check (list string)) "second batch, different type" [ "1"; "2" ]
        (Ifko_par.Par.Pool.map pool string_of_int [ 1; 2 ]);
      Alcotest.(check (list int)) "empty batch" []
        (Ifko_par.Par.Pool.map pool (fun x -> x) []))

let test_run_indexed () =
  Ifko_par.Par.Pool.with_pool ~jobs:4 (fun pool ->
      let squares = Ifko_par.Par.Pool.run pool 17 (fun i -> i * i) in
      Alcotest.(check int) "length" 17 (Array.length squares);
      Array.iteri (fun i v -> Alcotest.(check int) "slot" (i * i) v) squares)

let test_lowest_index_exception () =
  List.iter
    (fun jobs ->
      match
        Ifko_par.Par.map ~jobs
          (fun i -> if i mod 2 = 1 then failwith (string_of_int i) else i)
          (List.init 20 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "lowest failing index surfaces (jobs=%d)" jobs)
          "1" msg)
    [ 1; 4 ]

let test_pool_survives_failed_batch () =
  Ifko_par.Par.Pool.with_pool ~jobs:4 (fun pool ->
      (match Ifko_par.Par.Pool.map pool (fun _ -> failwith "boom") [ 1; 2; 3 ] with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure _ -> ());
      Alcotest.(check (list int)) "pool still works" [ 10; 20 ]
        (Ifko_par.Par.Pool.map pool (fun x -> 10 * x) [ 1; 2 ]))

let test_available_jobs () =
  Alcotest.(check bool) "at least one domain" true (Ifko_par.Par.available_jobs () >= 1)

let suite =
  [ Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "run is input-indexed" `Quick test_run_indexed;
    Alcotest.test_case "lowest-index exception" `Quick test_lowest_index_exception;
    Alcotest.test_case "pool survives failed batch" `Quick test_pool_survives_failed_batch;
    Alcotest.test_case "available jobs" `Quick test_available_jobs;
  ]
