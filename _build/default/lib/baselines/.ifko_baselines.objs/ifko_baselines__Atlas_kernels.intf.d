lib/baselines/atlas_kernels.mli: Cfg Ifko_blas Ifko_machine Instr
