type outcome =
  | Timed of { mflops : float; cycles : float }
  | Test_failed
  | Illegal

(* ---------------------------------------------------------------- *)
(* Minimal JSON for the journal: flat objects of string / number /
   bool fields.  Self-contained so the store adds no dependency. *)

module Json = struct
  type value = S of string | N of float | B of bool

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* %.17g round-trips every finite double, so reloaded MFLOPS compare
     bit-identically with freshly computed ones. *)
  let number f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let render fields =
    let buf = Buffer.create 128 in
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        match v with
        | S s ->
          Buffer.add_char buf '"';
          escape buf s;
          Buffer.add_char buf '"'
        | N f -> Buffer.add_string buf (number f)
        | B b -> Buffer.add_string buf (if b then "true" else "false"))
      fields;
    Buffer.add_char buf '}';
    Buffer.contents buf

  exception Bad

  (* Parser for exactly the shape [render] produces (plus whitespace).
     Any deviation raises [Bad]; the loader maps that to "corrupt". *)
  let parse line =
    let n = String.length line in
    let pos = ref 0 in
    let peek () = if !pos >= n then raise Bad else line.[!pos] in
    let next () =
      let c = peek () in
      incr pos;
      c
    in
    let skip_ws () =
      while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c = if next () <> c then raise Bad in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 32 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let hex = Bytes.create 4 in
            for i = 0 to 3 do
              Bytes.set hex i (next ())
            done;
            let code = int_of_string ("0x" ^ Bytes.to_string hex) in
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else raise Bad (* the writer only escapes control chars *)
          | _ -> raise Bad);
          go ()
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> S (parse_string ())
      | 't' ->
        if n - !pos >= 4 && String.sub line !pos 4 = "true" then (pos := !pos + 4; B true)
        else raise Bad
      | 'f' ->
        if n - !pos >= 5 && String.sub line !pos 5 = "false" then (pos := !pos + 5; B false)
        else raise Bad
      | _ ->
        let start = !pos in
        while
          !pos < n
          && match line.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false
        do
          incr pos
        done;
        if !pos = start then raise Bad;
        (try N (float_of_string (String.sub line start (!pos - start)))
         with _ -> raise Bad)
    in
    skip_ws ();
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = '}' then (ignore (next ()); [])
    else begin
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | _ -> raise Bad
      in
      members ();
      skip_ws ();
      if !pos <> n then raise Bad;
      List.rev !fields
    end
end

(* ---------------------------------------------------------------- *)

type entry = { outcome : outcome; params : string; prov : string }

type t = {
  store_path : string;
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable oc : out_channel option;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable corrupt_count : int;
  mutable header_seed : int option;
}

let schema_version = 1

let header_line ~seed =
  Json.render
    ([ ("ifko_store", Json.N (float_of_int schema_version)) ]
    @ match seed with None -> [] | Some s -> [ ("seed", Json.N (float_of_int s)) ])

let entry_line key e =
  let outcome_fields =
    match e.outcome with
    | Timed { mflops; cycles } ->
      [ ("o", Json.S "timed"); ("mflops", Json.N mflops); ("cycles", Json.N cycles) ]
    | Test_failed -> [ ("o", Json.S "test_failed") ]
    | Illegal -> [ ("o", Json.S "illegal") ]
  in
  Json.render
    ((("k", Json.S key) :: outcome_fields)
    @ [ ("params", Json.S e.params); ("prov", Json.S e.prov) ])

let parse_entry fields =
  let str k = match List.assoc_opt k fields with Some (Json.S s) -> Some s | _ -> None in
  let num k = match List.assoc_opt k fields with Some (Json.N f) -> Some f | _ -> None in
  match str "k" with
  | None -> None
  | Some key ->
    let params = Option.value ~default:"" (str "params") in
    let prov = Option.value ~default:"" (str "prov") in
    (match str "o" with
    | Some "timed" ->
      (match (num "mflops", num "cycles") with
      | Some mflops, Some cycles ->
        Some (key, { outcome = Timed { mflops; cycles }; params; prov })
      | _ -> None)
    | Some "test_failed" -> Some (key, { outcome = Test_failed; params; prov })
    | Some "illegal" -> Some (key, { outcome = Illegal; params; prov })
    | _ -> None)

(* Load every parseable record; count (but survive) anything else —
   in particular the torn trailing line a crash mid-append leaves. *)
let load_lines t path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then begin
            match Json.parse line with
            | exception Json.Bad -> t.corrupt_count <- t.corrupt_count + 1
            | fields ->
              (match List.assoc_opt "ifko_store" fields with
              | Some (Json.N _) ->
                (match List.assoc_opt "seed" fields with
                | Some (Json.N s) when t.header_seed = None ->
                  t.header_seed <- Some (int_of_float s)
                | _ -> ())
              | _ ->
                (match parse_entry fields with
                | Some (key, e) -> Hashtbl.replace t.table key e
                | None -> t.corrupt_count <- t.corrupt_count + 1))
          end
        done
      with End_of_file -> ())

(* A crash mid-append can leave a torn line with no trailing newline;
   appending straight after it would glue the next record onto the torn
   one.  Start a fresh line whenever the journal does not end in \n. *)
let ends_in_newline path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let ok =
    len = 0
    ||
    (seek_in ic (len - 1);
     input_char ic = '\n')
  in
  close_in_noerr ic;
  ok

let append_channel t =
  match t.oc with
  | Some oc -> oc
  | None ->
    let needs_nl = Sys.file_exists t.store_path && not (ends_in_newline t.store_path) in
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.store_path in
    if needs_nl then output_char oc '\n';
    t.oc <- Some oc;
    oc

let open_ ?seed path =
  let t =
    {
      store_path = path;
      mutex = Mutex.create ();
      table = Hashtbl.create 256;
      oc = None;
      hit_count = 0;
      miss_count = 0;
      corrupt_count = 0;
      header_seed = None;
    }
  in
  let existed = Sys.file_exists path in
  if existed then load_lines t path;
  if (not existed) || (t.header_seed = None && Hashtbl.length t.table = 0) then begin
    let oc = append_channel t in
    output_string oc (header_line ~seed ^ "\n");
    flush oc;
    t.header_seed <- seed
  end;
  t

let close t =
  Mutex.lock t.mutex;
  (match t.oc with
  | Some oc ->
    flush oc;
    close_out_noerr oc;
    t.oc <- None
  | None -> ());
  Mutex.unlock t.mutex

let path t = t.store_path
let seed t = t.header_seed

let find t ~key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.table key in
  (match r with
  | Some _ -> t.hit_count <- t.hit_count + 1
  | None -> t.miss_count <- t.miss_count + 1);
  Mutex.unlock t.mutex;
  Option.map (fun e -> e.outcome) r

let add t ~key ~params ~prov outcome =
  let e = { outcome; params; prov } in
  Mutex.lock t.mutex;
  Hashtbl.replace t.table key e;
  let oc = append_channel t in
  output_string oc (entry_line key e ^ "\n");
  flush oc;
  Mutex.unlock t.mutex

let cached ?store ~key ~params ~prov f =
  match store with
  | None -> f ()
  | Some t ->
    (match find t ~key with
    | Some o -> o
    | None ->
      let o = f () in
      add t ~key ~params ~prov o;
      o)

let hits t = t.hit_count
let misses t = t.miss_count
let entries t = Hashtbl.length t.table
let corrupt t = t.corrupt_count

let compact t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      (match t.oc with
      | Some oc ->
        flush oc;
        close_out_noerr oc;
        t.oc <- None
      | None -> ());
      let tmp = t.store_path ^ ".compact.tmp" in
      let oc = open_out_bin tmp in
      output_string oc (header_line ~seed:t.header_seed ^ "\n");
      let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table []) in
      List.iter
        (fun k -> output_string oc (entry_line k (Hashtbl.find t.table k) ^ "\n"))
        keys;
      close_out oc;
      Sys.rename tmp t.store_path)

(* ---------------------------------------------------------------- *)
(* Keys: hex MD5 of length-prefixed fields (no boundary aliasing). *)

let digest fields =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (string_of_int (String.length f));
      Buffer.add_char buf ':';
      Buffer.add_string buf f)
    fields;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let probe_key ~kernel ~machine ~context ~n ~seed ~check ~params =
  digest
    [ "probe"; kernel; machine; context; string_of_int n; string_of_int seed;
      (if check then "check" else "nocheck"); params ]

let timing_key ~kind ~func ~machine ~context ~n ~seed =
  digest [ "timing"; kind; func; machine; context; string_of_int n; string_of_int seed ]

(* ---------------------------------------------------------------- *)

let stat_string p =
  if not (Sys.file_exists p) then Printf.sprintf "%s: no store\n" p
  else begin
    let t = open_ p in
    close t;
    let timed = ref 0 and failed = ref 0 and illegal = ref 0 in
    Hashtbl.iter
      (fun _ e ->
        match e.outcome with
        | Timed _ -> incr timed
        | Test_failed -> incr failed
        | Illegal -> incr illegal)
      t.table;
    let size =
      let ic = open_in_bin p in
      let n = in_channel_length ic in
      close_in_noerr ic;
      n
    in
    Printf.sprintf
      "%s: %d entries (%d timed, %d test-failed, %d illegal), %d corrupt line%s \
       skipped, %d bytes%s\n"
      p (entries t) !timed !failed !illegal (corrupt t)
      (if corrupt t = 1 then "" else "s")
      size
      (match seed t with
      | Some s -> Printf.sprintf ", seed %d" s
      | None -> "")
  end

let clear p = if Sys.file_exists p then Sys.remove p
