(** Description of the tunable loop nest, carried from lowering through
    the transformation pipeline.

    Lowering emits the [OPTLOOP] in a canonical count-down form:

    {v
    preheader: cnt = trip ; i = from         ; trip = HIL iterations
    header:    if cnt < per_iter goto mid
    body...:   one main-loop iteration (may contain control flow)
    latch:     i += step ; cnt -= per_iter ; goto header
    mid:       (epilogue insertion point)    ; reductions land here
    cleanup:   optional pristine scalar loop consuming the remainder
    exit:      code after the loop
    v}

    [per_iter] is the number of HIL iterations one pass through the
    main body consumes; SIMD vectorization multiplies it by the vector
    length and unrolling by the unroll factor.  The first transform
    that makes [per_iter > 1] materializes the cleanup loop by cloning
    [template], the pristine scalar loop saved at lowering time (the
    clone reuses the same registers — the cleanup continues exactly
    where the main loop stopped). *)

type t = {
  mutable preheader : string;
  mutable header : string;
  mutable latch : string;
  mutable mid : string;
  mutable exit : string;
  mutable cleanup : (string * string) option;
      (** cleanup (header, latch) labels once materialized *)
  cnt : Reg.t;  (** count-down register: HIL iterations remaining *)
  index : Reg.t option;  (** the HIL loop index, if any *)
  step : int;  (** HIL index step, [+1] or [-1] *)
  mutable per_iter : int;
  mutable vectorized : Instr.fsize option;
  mutable unrolled : int;
  mutable lc_fused : bool;  (** loop-control optimization applied *)
  speculate : bool;  (** SPECULATE mark-up on the source loop *)
  mutable template : Block.t list;
      (** pristine copy of [header; body...; latch] in scalar form *)
}

(** Labels of the blocks forming one main-loop iteration: the natural
    loop of the back edge [latch -> header], minus header and latch
    themselves.  Computed on demand so transformations that restructure
    the body stay consistent. *)
let body_labels (f : Cfg.func) (ln : t) =
  let preds = Cfg.predecessors f in
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop ln.header ();
  let rec walk label =
    if not (Hashtbl.mem in_loop label) then begin
      Hashtbl.replace in_loop label ();
      List.iter walk (Option.value ~default:[] (Hashtbl.find_opt preds label))
    end
  in
  walk ln.latch;
  List.filter_map
    (fun b ->
      let l = b.Block.label in
      if Hashtbl.mem in_loop l && l <> ln.header && l <> ln.latch then Some l else None)
    f.Cfg.blocks

(** Clone [blocks] with fresh labels (internal branch targets are
    remapped; external targets are preserved).  Registers are shared
    with the original on purpose — see the module comment. *)
let clone_blocks (f : Cfg.func) ~suffix blocks =
  let mapping =
    List.map (fun b -> (b.Block.label, Cfg.fresh_label f (b.Block.label ^ suffix))) blocks
  in
  let rename l = Option.value ~default:l (List.assoc_opt l mapping) in
  let clones =
    List.map
      (fun b ->
        Block.make (rename b.Block.label)
          ~instrs:b.Block.instrs
          ~term:(Block.map_term_labels rename b.Block.term))
      blocks
  in
  (clones, mapping)

(** [materialize_cleanup f ln] clones the scalar template between [mid]
    and [exit] so that any remainder of the trip count is consumed one
    HIL iteration at a time.  Idempotent. *)
let materialize_cleanup (f : Cfg.func) (ln : t) =
  match ln.cleanup with
  | Some _ -> ()
  | None ->
    let clones, mapping = clone_blocks f ~suffix:"_c" ln.template in
    let rename l = Option.value ~default:l (List.assoc_opt l mapping) in
    let cheader = rename ln.header and clatch = rename ln.latch in
    (* The template's header exits to [mid]; the cleanup's must exit to
       [exit] and its internal edges stay within the clones. *)
    List.iter
      (fun b ->
        b.Block.term <-
          Block.map_term_labels (fun l -> if l = ln.mid then ln.exit else l) b.Block.term)
      clones;
    (* Splice after [mid] and retarget mid's jump to the cleanup. *)
    Cfg.insert_after f ~after:ln.mid clones;
    let mid_block = Cfg.find_block_exn f ln.mid in
    mid_block.Block.term <- Block.Jmp cheader;
    ln.cleanup <- Some (cheader, clatch)

(** Rewrite the main-loop header guard and latch decrement after
    [per_iter] changed. *)
let refresh_loop_control (f : Cfg.func) (ln : t) =
  let header = Cfg.find_block_exn f ln.header in
  (match header.Block.term with
  | Block.Br b -> header.Block.term <- Block.Br { b with rhs = Instr.Oimm ln.per_iter }
  | _ -> invalid_arg "Loopnest.refresh_loop_control: header does not test the counter");
  let latch = Cfg.find_block_exn f ln.latch in
  let is_index r = match ln.index with Some i -> Reg.equal r i | None -> false in
  latch.Block.instrs <-
    List.map
      (fun i ->
        match i with
        | Instr.Iop (Instr.Isub, d, s, Instr.Oimm _)
          when Reg.equal d ln.cnt && Reg.equal s ln.cnt ->
          Instr.Iop (Instr.Isub, d, s, Instr.Oimm ln.per_iter)
        | Instr.Iop (Instr.Iadd, d, s, Instr.Oimm _) when is_index d && is_index s ->
          Instr.Iop (Instr.Iadd, d, s, Instr.Oimm (ln.per_iter * ln.step))
        | i -> i)
      latch.Block.instrs
