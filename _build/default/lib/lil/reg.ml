(** Registers of the LIL (low-level intermediate language).

    LIL models a 32-bit-x86-like ISA: a small file of general-purpose
    registers and eight 16-byte SIMD registers ([Xmm]) shared between
    scalar and vector floating point, exactly the situation the paper
    highlights ("relatively important when the ISA has only eight
    registers, but the underlying hardware may have more than a
    hundred").  Before register allocation all registers are virtual
    ([phys = false], unbounded ids); allocation rewrites them to
    physical ids. *)

type cls = Gpr | Xmm

type t = { id : int; cls : cls; phys : bool }

(** Number of allocatable physical registers per class.  Two GPRs are
    reserved (stack pointer and frame/spill pointer), leaving six. *)
let allocatable = function Gpr -> 6 | Xmm -> 8

(** The reserved frame-pointer register used to address spill slots. *)
let frame_ptr = { id = 6; cls = Gpr; phys = true }

(** The reserved stack-pointer register (never allocated). *)
let stack_ptr = { id = 7; cls = Gpr; phys = true }

let virt cls id = { id; cls; phys = false }
let phys cls id = { id; cls; phys = true }
let equal a b = a.id = b.id && a.cls = b.cls && a.phys = b.phys
let compare = compare

let gpr_names = [| "eax"; "ecx"; "edx"; "ebx"; "esi"; "edi"; "ebp"; "esp" |]

let to_string r =
  match (r.cls, r.phys) with
  | Gpr, true when r.id >= 0 && r.id < 8 -> gpr_names.(r.id)
  | Xmm, true -> Printf.sprintf "xmm%d" r.id
  | Gpr, true -> Printf.sprintf "gpr%d" r.id
  | Gpr, false -> Printf.sprintf "g%d" r.id
  | Xmm, false -> Printf.sprintf "x%d" r.id

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
