(** Native-compiler models.

    The paper compares against gcc and Intel's icc (plus icc with
    profile feedback).  These baselines are {e policy models}: each is
    a fixed, non-empirical choice of transformation parameters run
    through the same backend and timed on the same simulator, encoding
    the documented behaviour of the real compilers on these kernels:

    - gcc 3.x performs no automatic vectorization and no software
      prefetching; [-funroll-all-loops] unrolls moderately;
    - icc 8.0 vectorizes canonical ascending loops (the paper had to
      rewrite ATLAS's loop forms before icc would vectorize them — our
      model, like icc, refuses descending and control-flow loops via
      the same {!Ifko_analysis.Vecinfo} conservatism), unrolls lightly
      and inserts software prefetch at a fixed model-driven distance;
    - icc+prof additionally applies profile feedback: more unrolling,
      and non-temporal stores whenever the profile shows a streaming
      loop too long for cache retention to matter — {e blindly}, which
      is exactly what the paper blames for its Opteron swap/axpy
      regressions. *)

type t = {
  name : string;
  sv : bool;  (** attempts SIMD vectorization *)
  unroll : int;
  ae : int;
  lc : bool;
  prefetch : (Instr.pf_kind * int) option;  (** fixed policy, all arrays *)
  wnt_when_streaming : bool;  (** profile-guided non-temporal stores *)
}

let gcc =
  {
    name = "gcc";
    sv = false;
    unroll = 4;
    ae = 0;
    lc = true;
    prefetch = None;
    wnt_when_streaming = false;
  }

let icc =
  {
    name = "icc";
    sv = true;
    unroll = 2;
    ae = 0;
    lc = true;
    prefetch = Some (Instr.Nta, 512);
    wnt_when_streaming = false;
  }

let icc_prof = { icc with name = "icc+prof"; unroll = 4; wnt_when_streaming = true }

let all = [ gcc; icc; icc_prof ]

(** [params t ~cfg ~context report] is the fixed parameter point the
    modelled compiler would choose for a kernel with this analysis
    report. *)
let params t ~cfg ~context (report : Ifko_analysis.Report.t) =
  ignore cfg;
  let streaming = context = Ifko_sim.Timer.Out_of_cache in
  {
    Ifko_transform.Params.sv = t.sv && report.Ifko_analysis.Report.vectorizable;
    unroll = t.unroll;
    lc = t.lc;
    ae = t.ae;
    prefetch =
      (match t.prefetch with
      | None -> []
      | Some (kind, dist) ->
        List.map
          (fun (m : Ifko_analysis.Ptrinfo.moving) ->
            ( m.Ifko_analysis.Ptrinfo.array.Ifko_codegen.Lower.a_name,
              { Ifko_transform.Params.pf_ins = Some kind; pf_dist = dist } ))
          report.Ifko_analysis.Report.prefetch_arrays);
    wnt =
      t.wnt_when_streaming && streaming
      && report.Ifko_analysis.Report.output_arrays <> [];
    bf = 0;
    cisc = false;
  }

(** Compile a lowered kernel the way this compiler model would. *)
let compile t ~cfg ~context compiled =
  let report = Ifko_analysis.Report.analyze compiled in
  let p = params t ~cfg ~context report in
  let c =
    Ifko_transform.Pipeline.apply
      ~line_bytes:cfg.Ifko_machine.Config.prefetchable_line compiled p
  in
  c.Ifko_codegen.Lower.func
