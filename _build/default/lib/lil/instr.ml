(** LIL instructions.

    The instruction set is a compact model of 32-bit x86 + SSE2/3DNow!:
    scalar and 16-byte-vector floating point in either precision,
    integer/pointer arithmetic, CISC memory-operand arithmetic
    ([Fopm]), software prefetch in its several flavours, and
    non-temporal stores.  It is rich enough to express everything the
    paper's FKO emits, including the hand-tuned ATLAS idioms
    (two-array CISC indexing, vectorized iamax via compare masks,
    block fetch). *)

(** Scalar/vector element precision: [S]ingle (4 bytes) or [D]ouble
    (8 bytes). *)
type fsize = S | D

let fsize_bytes = function S -> 4 | D -> 8

(** Lanes in a 16-byte vector register for each precision. *)
let lanes = function S -> 4 | D -> 2

type fop = Fadd | Fsub | Fmul | Fdiv | Fmax | Fmin

type iop = Iadd | Isub | Imul | Iand | Ior | Ishl | Ishr

type cmp = Lt | Le | Gt | Ge | Eq | Ne

(** Software prefetch flavours, as surveyed by the paper's search:
    [Nta] = SSE [prefetchnta]; [T0]/[T1] = temporal prefetch into the
    cache of level X+1; [W] = 3DNow! [prefetchw] (prefetch for
    write). *)
type pf_kind = Nta | T0 | T1 | W

(** An x86-style memory operand [disp + base + index*scale]. *)
type mem = { base : Reg.t; index : Reg.t option; scale : int; disp : int }

let mk_mem ?index ?(scale = 1) ?(disp = 0) base = { base; index; scale; disp }

type operand = Oreg of Reg.t | Oimm of int

type t =
  | Ild of Reg.t * mem  (** integer (pointer-width) load *)
  | Ist of mem * Reg.t  (** integer store *)
  | Imov of Reg.t * Reg.t
  | Ildi of Reg.t * int  (** load integer immediate *)
  | Iop of iop * Reg.t * Reg.t * operand  (** [dst = src1 op src2] *)
  | Lea of Reg.t * mem  (** address arithmetic without memory access *)
  | Fld of fsize * Reg.t * mem  (** scalar FP load *)
  | Fst of fsize * mem * Reg.t  (** scalar FP store *)
  | Fstnt of fsize * mem * Reg.t  (** scalar non-temporal store *)
  | Fmov of fsize * Reg.t * Reg.t
  | Fldi of fsize * Reg.t * float  (** materialize an FP constant *)
  | Fop of fsize * fop * Reg.t * Reg.t * Reg.t  (** [dst = a op b] *)
  | Fopm of fsize * fop * Reg.t * Reg.t * mem
      (** [dst = a op \[mem\]]: the CISC reg-mem arithmetic form the
          peephole pass produces (x86 is not a true load/store ISA) *)
  | Fabs of fsize * Reg.t * Reg.t
  | Fsqrt of fsize * Reg.t * Reg.t
  | Fneg of fsize * Reg.t * Reg.t
  | Vld of fsize * Reg.t * mem  (** aligned 16-byte vector load *)
  | Vst of fsize * mem * Reg.t
  | Vstnt of fsize * mem * Reg.t  (** [movntps/movntpd] *)
  | Vmov of fsize * Reg.t * Reg.t
  | Vbcast of fsize * Reg.t * Reg.t  (** broadcast scalar to all lanes *)
  | Vldi of fsize * Reg.t * float  (** broadcast an FP constant *)
  | Vop of fsize * fop * Reg.t * Reg.t * Reg.t
  | Vopm of fsize * fop * Reg.t * Reg.t * mem
  | Vabs of fsize * Reg.t * Reg.t
  | Vsqrt of fsize * Reg.t * Reg.t
  | Vcmp of fsize * cmp * Reg.t * Reg.t * Reg.t
      (** lanewise compare producing an all-ones/all-zeros mask *)
  | Vmovmsk of fsize * Reg.t * Reg.t  (** GPR <- sign bits of lanes *)
  | Vextract of fsize * Reg.t * Reg.t * int  (** scalar <- lane [i] *)
  | Vreduce of fsize * fop * Reg.t * Reg.t
      (** horizontal reduction of all lanes into a scalar register *)
  | Touch of fsize * mem
      (** a demand load whose data is discarded — the building block of
          AMD's block-fetch technique (unlike [Prefetch] it is a real
          load: never dropped, full priority at the memory controller) *)
  | Prefetch of pf_kind * mem
  | Nop

(** [defs i] is the list of registers written by [i]. *)
let defs = function
  | Ild (r, _)
  | Imov (r, _)
  | Ildi (r, _)
  | Iop (_, r, _, _)
  | Lea (r, _)
  | Fld (_, r, _)
  | Fmov (_, r, _)
  | Fldi (_, r, _)
  | Fop (_, _, r, _, _)
  | Fopm (_, _, r, _, _)
  | Fabs (_, r, _)
  | Fsqrt (_, r, _)
  | Fneg (_, r, _)
  | Vld (_, r, _)
  | Vmov (_, r, _)
  | Vbcast (_, r, _)
  | Vldi (_, r, _)
  | Vop (_, _, r, _, _)
  | Vopm (_, _, r, _, _)
  | Vabs (_, r, _)
  | Vsqrt (_, r, _)
  | Vcmp (_, _, r, _, _)
  | Vmovmsk (_, r, _)
  | Vextract (_, r, _, _)
  | Vreduce (_, _, r, _) -> [ r ]
  | Ist _ | Fst _ | Fstnt _ | Vst _ | Vstnt _ | Touch _ | Prefetch _ | Nop -> []

let mem_uses m =
  match m.index with None -> [ m.base ] | Some idx -> [ m.base; idx ]

let operand_uses = function Oreg r -> [ r ] | Oimm _ -> []

(** [uses i] is the list of registers read by [i] (with multiplicity
    collapsed). *)
let uses = function
  | Ild (_, m) -> mem_uses m
  | Ist (m, r) -> r :: mem_uses m
  | Imov (_, s) -> [ s ]
  | Ildi _ -> []
  | Iop (_, _, a, b) -> a :: operand_uses b
  | Lea (_, m) -> mem_uses m
  | Fld (_, _, m) -> mem_uses m
  | Fst (_, m, r) | Fstnt (_, m, r) -> r :: mem_uses m
  | Fmov (_, _, s) -> [ s ]
  | Fldi _ -> []
  | Fop (_, _, _, a, b) -> [ a; b ]
  | Fopm (_, _, _, a, m) -> a :: mem_uses m
  | Fabs (_, _, s) | Fsqrt (_, _, s) | Fneg (_, _, s) -> [ s ]
  | Vld (_, _, m) -> mem_uses m
  | Vst (_, m, r) | Vstnt (_, m, r) -> r :: mem_uses m
  | Vmov (_, _, s) | Vbcast (_, _, s) -> [ s ]
  | Vldi _ -> []
  | Vop (_, _, _, a, b) -> [ a; b ]
  | Vopm (_, _, _, a, m) -> a :: mem_uses m
  | Vabs (_, _, s) | Vsqrt (_, _, s) -> [ s ]
  | Vcmp (_, _, _, a, b) -> [ a; b ]
  | Vmovmsk (_, _, s) -> [ s ]
  | Vextract (_, _, s, _) -> [ s ]
  | Vreduce (_, _, _, s) -> [ s ]
  | Touch (_, m) -> mem_uses m
  | Prefetch (_, m) -> mem_uses m
  | Nop -> []

(** [is_store i] holds for instructions writing memory. *)
let is_store = function
  | Ist _ | Fst _ | Fstnt _ | Vst _ | Vstnt _ -> true
  | _ -> false

(** [is_load i] holds for instructions reading memory (prefetches are
    hints, not loads). *)
let is_load = function
  | Ild _ | Fld _ | Vld _ | Fopm _ | Vopm _ | Touch _ -> true
  | _ -> false

let map_mem f m =
  let base = f m.base in
  let index = Option.map f m.index in
  { m with base; index }

(** [map_regs f i] renames every register of [i] through [f]. *)
let map_regs f = function
  | Ild (r, m) -> Ild (f r, map_mem f m)
  | Ist (m, r) -> Ist (map_mem f m, f r)
  | Imov (d, s) -> Imov (f d, f s)
  | Ildi (d, i) -> Ildi (f d, i)
  | Iop (op, d, a, b) ->
    Iop (op, f d, f a, match b with Oreg r -> Oreg (f r) | Oimm i -> Oimm i)
  | Lea (d, m) -> Lea (f d, map_mem f m)
  | Fld (sz, d, m) -> Fld (sz, f d, map_mem f m)
  | Fst (sz, m, s) -> Fst (sz, map_mem f m, f s)
  | Fstnt (sz, m, s) -> Fstnt (sz, map_mem f m, f s)
  | Fmov (sz, d, s) -> Fmov (sz, f d, f s)
  | Fldi (sz, d, c) -> Fldi (sz, f d, c)
  | Fop (sz, op, d, a, b) -> Fop (sz, op, f d, f a, f b)
  | Fopm (sz, op, d, a, m) -> Fopm (sz, op, f d, f a, map_mem f m)
  | Fabs (sz, d, s) -> Fabs (sz, f d, f s)
  | Fsqrt (sz, d, s) -> Fsqrt (sz, f d, f s)
  | Fneg (sz, d, s) -> Fneg (sz, f d, f s)
  | Vld (sz, d, m) -> Vld (sz, f d, map_mem f m)
  | Vst (sz, m, s) -> Vst (sz, map_mem f m, f s)
  | Vstnt (sz, m, s) -> Vstnt (sz, map_mem f m, f s)
  | Vmov (sz, d, s) -> Vmov (sz, f d, f s)
  | Vbcast (sz, d, s) -> Vbcast (sz, f d, f s)
  | Vldi (sz, d, c) -> Vldi (sz, f d, c)
  | Vop (sz, op, d, a, b) -> Vop (sz, op, f d, f a, f b)
  | Vopm (sz, op, d, a, m) -> Vopm (sz, op, f d, f a, map_mem f m)
  | Vabs (sz, d, s) -> Vabs (sz, f d, f s)
  | Vsqrt (sz, d, s) -> Vsqrt (sz, f d, f s)
  | Vcmp (sz, c, d, a, b) -> Vcmp (sz, c, f d, f a, f b)
  | Vmovmsk (sz, d, s) -> Vmovmsk (sz, f d, f s)
  | Vextract (sz, d, s, i) -> Vextract (sz, f d, f s, i)
  | Vreduce (sz, op, d, s) -> Vreduce (sz, op, f d, f s)
  | Touch (sz, m) -> Touch (sz, map_mem f m)
  | Prefetch (k, m) -> Prefetch (k, map_mem f m)
  | Nop -> Nop

(** [map_regs_uses_only f i] renames only the registers [i] reads
    (sources and memory-operand components), leaving destinations
    untouched — what forward copy propagation needs. *)
let map_regs_uses_only f = function
  | Ild (d, m) -> Ild (d, map_mem f m)
  | Ist (m, r) -> Ist (map_mem f m, f r)
  | Imov (d, s) -> Imov (d, f s)
  | Ildi (d, i) -> Ildi (d, i)
  | Iop (op, d, a, b) ->
    Iop (op, d, f a, match b with Oreg r -> Oreg (f r) | Oimm i -> Oimm i)
  | Lea (d, m) -> Lea (d, map_mem f m)
  | Fld (sz, d, m) -> Fld (sz, d, map_mem f m)
  | Fst (sz, m, s) -> Fst (sz, map_mem f m, f s)
  | Fstnt (sz, m, s) -> Fstnt (sz, map_mem f m, f s)
  | Fmov (sz, d, s) -> Fmov (sz, d, f s)
  | Fldi (sz, d, c) -> Fldi (sz, d, c)
  | Fop (sz, op, d, a, b) -> Fop (sz, op, d, f a, f b)
  | Fopm (sz, op, d, a, m) -> Fopm (sz, op, d, f a, map_mem f m)
  | Fabs (sz, d, s) -> Fabs (sz, d, f s)
  | Fsqrt (sz, d, s) -> Fsqrt (sz, d, f s)
  | Fneg (sz, d, s) -> Fneg (sz, d, f s)
  | Vld (sz, d, m) -> Vld (sz, d, map_mem f m)
  | Vst (sz, m, s) -> Vst (sz, map_mem f m, f s)
  | Vstnt (sz, m, s) -> Vstnt (sz, map_mem f m, f s)
  | Vmov (sz, d, s) -> Vmov (sz, d, f s)
  | Vbcast (sz, d, s) -> Vbcast (sz, d, f s)
  | Vldi (sz, d, c) -> Vldi (sz, d, c)
  | Vop (sz, op, d, a, b) -> Vop (sz, op, d, f a, f b)
  | Vopm (sz, op, d, a, m) -> Vopm (sz, op, d, f a, map_mem f m)
  | Vabs (sz, d, s) -> Vabs (sz, d, f s)
  | Vsqrt (sz, d, s) -> Vsqrt (sz, d, f s)
  | Vcmp (sz, c, d, a, b) -> Vcmp (sz, c, d, f a, f b)
  | Vmovmsk (sz, d, s) -> Vmovmsk (sz, d, f s)
  | Vextract (sz, d, s, i) -> Vextract (sz, d, f s, i)
  | Vreduce (sz, op, d, s) -> Vreduce (sz, op, d, f s)
  | Touch (sz, m) -> Touch (sz, map_mem f m)
  | Prefetch (k, m) -> Prefetch (k, map_mem f m)
  | Nop -> Nop

let string_of_fop = function
  | Fadd -> "add"
  | Fsub -> "sub"
  | Fmul -> "mul"
  | Fdiv -> "div"
  | Fmax -> "max"
  | Fmin -> "min"

let string_of_iop = function
  | Iadd -> "add"
  | Isub -> "sub"
  | Imul -> "imul"
  | Iand -> "and"
  | Ior -> "or"
  | Ishl -> "shl"
  | Ishr -> "shr"

let string_of_cmp = function
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"

let string_of_pf_kind = function
  | Nta -> "prefetchnta"
  | T0 -> "prefetcht0"
  | T1 -> "prefetcht1"
  | W -> "prefetchw"

let suffix = function S -> "s" | D -> "d"

let string_of_mem m =
  let buf = Buffer.create 16 in
  Buffer.add_char buf '[';
  Buffer.add_string buf (Reg.to_string m.base);
  (match m.index with
  | Some idx ->
    Buffer.add_string buf (" + " ^ Reg.to_string idx);
    if m.scale <> 1 then Buffer.add_string buf (Printf.sprintf "*%d" m.scale)
  | None -> ());
  if m.disp <> 0 then Buffer.add_string buf (Printf.sprintf " %+d" m.disp);
  Buffer.add_char buf ']';
  Buffer.contents buf

let string_of_operand = function
  | Oreg r -> Reg.to_string r
  | Oimm i -> string_of_int i

let to_string instr =
  let r = Reg.to_string in
  let m = string_of_mem in
  match instr with
  | Ild (d, mm) -> Printf.sprintf "mov    %s, %s" (r d) (m mm)
  | Ist (mm, s) -> Printf.sprintf "mov    %s, %s" (m mm) (r s)
  | Imov (d, s) -> Printf.sprintf "mov    %s, %s" (r d) (r s)
  | Ildi (d, i) -> Printf.sprintf "mov    %s, %d" (r d) i
  | Iop (op, d, a, b) ->
    Printf.sprintf "%-6s %s, %s, %s" (string_of_iop op) (r d) (r a) (string_of_operand b)
  | Lea (d, mm) -> Printf.sprintf "lea    %s, %s" (r d) (m mm)
  | Fld (sz, d, mm) -> Printf.sprintf "movs%s  %s, %s" (suffix sz) (r d) (m mm)
  | Fst (sz, mm, s) -> Printf.sprintf "movs%s  %s, %s" (suffix sz) (m mm) (r s)
  | Fstnt (sz, mm, s) -> Printf.sprintf "movnts%s %s, %s" (suffix sz) (m mm) (r s)
  | Fmov (sz, d, s) -> Printf.sprintf "movs%s  %s, %s" (suffix sz) (r d) (r s)
  | Fldi (sz, d, c) -> Printf.sprintf "movs%s  %s, =%g" (suffix sz) (r d) c
  | Fop (sz, op, d, a, b) ->
    Printf.sprintf "%ss%s  %s, %s, %s" (string_of_fop op) (suffix sz) (r d) (r a) (r b)
  | Fopm (sz, op, d, a, mm) ->
    Printf.sprintf "%ss%s  %s, %s, %s" (string_of_fop op) (suffix sz) (r d) (r a) (m mm)
  | Fabs (sz, d, s) -> Printf.sprintf "abss%s  %s, %s" (suffix sz) (r d) (r s)
  | Fsqrt (sz, d, s) -> Printf.sprintf "sqrts%s %s, %s" (suffix sz) (r d) (r s)
  | Fneg (sz, d, s) -> Printf.sprintf "negs%s  %s, %s" (suffix sz) (r d) (r s)
  | Vld (sz, d, mm) -> Printf.sprintf "movap%s %s, %s" (suffix sz) (r d) (m mm)
  | Vst (sz, mm, s) -> Printf.sprintf "movap%s %s, %s" (suffix sz) (m mm) (r s)
  | Vstnt (sz, mm, s) -> Printf.sprintf "movntp%s %s, %s" (suffix sz) (m mm) (r s)
  | Vmov (sz, d, s) -> Printf.sprintf "movap%s %s, %s" (suffix sz) (r d) (r s)
  | Vbcast (sz, d, s) -> Printf.sprintf "bcstp%s %s, %s" (suffix sz) (r d) (r s)
  | Vldi (sz, d, c) -> Printf.sprintf "movap%s %s, =%g(all)" (suffix sz) (r d) c
  | Vop (sz, op, d, a, b) ->
    Printf.sprintf "%sp%s  %s, %s, %s" (string_of_fop op) (suffix sz) (r d) (r a) (r b)
  | Vopm (sz, op, d, a, mm) ->
    Printf.sprintf "%sp%s  %s, %s, %s" (string_of_fop op) (suffix sz) (r d) (r a) (m mm)
  | Vabs (sz, d, s) -> Printf.sprintf "absp%s  %s, %s" (suffix sz) (r d) (r s)
  | Vsqrt (sz, d, s) -> Printf.sprintf "sqrtp%s %s, %s" (suffix sz) (r d) (r s)
  | Vcmp (sz, c, d, a, b) ->
    Printf.sprintf "cmp%sp%s %s, %s, %s" (string_of_cmp c) (suffix sz) (r d) (r a) (r b)
  | Vmovmsk (sz, d, s) -> Printf.sprintf "movmskp%s %s, %s" (suffix sz) (r d) (r s)
  | Vextract (sz, d, s, i) -> Printf.sprintf "extrp%s %s, %s[%d]" (suffix sz) (r d) (r s) i
  | Vreduce (sz, op, d, s) ->
    Printf.sprintf "h%sp%s %s, %s" (string_of_fop op) (suffix sz) (r d) (r s)
  | Touch (sz, mm) -> Printf.sprintf "touch%s %s" (suffix sz) (m mm)
  | Prefetch (k, mm) -> Printf.sprintf "%s %s" (string_of_pf_kind k) (m mm)
  | Nop -> "nop"
