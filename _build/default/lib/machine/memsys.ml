type fill = {
  mutable arrival : float;
  mutable fill_l1 : bool;
  mutable fill_l2 : bool;
  mutable want_write : bool;
  mutable l1_addr : int;  (** which L1 line within the (possibly wider) L2 line *)
  mutable observed : bool;  (** the stream prefetcher has seen this line *)
  is_pf : bool;  (** brought in by a prefetch, not a demand miss *)
}

type stream = { mutable expect : int; mutable dir : int }

type t = {
  cfg : Config.t;
  l1 : Cache.t;
  l2 : Cache.t;
  mutable bus_free : float;
  mshr : float Queue.t;  (** completion times of in-flight demand misses *)
  inflight : (int, fill) Hashtbl.t;  (** keyed by L2-line base address *)
  streams : stream array;
  mutable next_stream : int;
  mutable sw_pf_issued : int;
  mutable sw_pf_dropped : int;
  mutable hw_pf_issued : int;
  mutable nt_lines : int;
  mutable claims : float;  (* total bus cycles claimed *)
  mutable pf_inflight : int;  (* prefetched lines not yet settled *)
  fifo : (int * bool) Queue.t;  (* inflight lines in arrival order, with is_pf *)
  mutable clock : float;  (* consumption frontier: max issue/completion time seen *)
  mutable last_dir_write : bool;  (* direction of the last bus transfer *)
  mutable wc_line : int;  (* write-combining buffer: current NT line *)
  mutable wc_bytes : float;  (* bytes pending in the WC buffer *)
}

let create (cfg : Config.t) =
  {
    cfg;
    l1 = Cache.create cfg.Config.l1;
    l2 = Cache.create cfg.Config.l2;
    bus_free = 0.0;
    mshr = Queue.create ();
    inflight = Hashtbl.create 64;
    streams =
      Array.init cfg.Config.hw_prefetch_streams (fun _ -> { expect = -1; dir = 1 });
    next_stream = 0;
    sw_pf_issued = 0;
    sw_pf_dropped = 0;
    hw_pf_issued = 0;
    nt_lines = 0;
    claims = 0.0;
    pf_inflight = 0;
    fifo = Queue.create ();
    clock = 0.0;
    last_dir_write = false;
    wc_line = -1;
    wc_bytes = 0.0;
  }

let reset t ~flush =
  t.bus_free <- 0.0;
  Queue.clear t.mshr;
  Hashtbl.reset t.inflight;
  Array.iter (fun s -> s.expect <- -1) t.streams;
  t.sw_pf_issued <- 0;
  t.sw_pf_dropped <- 0;
  t.hw_pf_issued <- 0;
  t.nt_lines <- 0;
  t.claims <- 0.0;
  t.pf_inflight <- 0;
  Queue.clear t.fifo;
  t.clock <- 0.0;
  t.last_dir_write <- false;
  t.wc_line <- -1;
  t.wc_bytes <- 0.0;
  Cache.reset_stats t.l1;
  Cache.reset_stats t.l2;
  if flush then begin
    Cache.flush t.l1;
    Cache.flush t.l2
  end

let l2_line t addr = addr - (addr mod Cache.line_bytes t.l2)
let page_of addr = addr / 4096
let occupancy t = float_of_int (Cache.line_bytes t.l2) /. t.cfg.Config.bus_bytes_per_cycle

(* Claim the bus for [extra] line-transfers' worth of traffic starting
   no earlier than [now]; returns the transfer start. *)
let turnaround t ~write =
  if t.last_dir_write <> write then begin
    t.last_dir_write <- write;
    t.bus_free <- t.bus_free +. t.cfg.Config.bus_turnaround;
    t.claims <- t.claims +. t.cfg.Config.bus_turnaround
  end

(* Claim the bus for [extra] read-line transfers starting no earlier
   than [now]; returns the transfer start. *)
let claim_bus t now extra =
  turnaround t ~write:false;
  let start = Float.max now t.bus_free in
  t.claims <- t.claims +. (occupancy t *. extra);
  t.bus_free <- start +. (occupancy t *. extra);
  start

(* Write-direction traffic (writebacks, non-temporal stores). *)
let claim_bytes t now bytes =
  turnaround t ~write:true;
  let start = Float.max now t.bus_free in
  t.claims <- t.claims +. (bytes /. t.cfg.Config.bus_bytes_per_cycle);
  t.bus_free <- start +. (bytes /. t.cfg.Config.bus_bytes_per_cycle)

(* Dirty eviction out of L2 goes to memory over the bus (with the
   configured burst-overhead factor). *)
let l2_evicted t now = function
  | Some _ ->
    claim_bytes t now
      (float_of_int (Cache.line_bytes t.l2) *. t.cfg.Config.wb_extra)
  | None -> ()

(* Dirty eviction out of L1 lands in L2 when the line is still there
   (no bus traffic); otherwise it must go to memory. *)
let l1_evicted t now = function
  | Some addr ->
    if Cache.probe t.l2 ~addr then
      l2_evicted t now (Cache.insert t.l2 ~addr ~write:true)
    else
      claim_bytes t now
        (float_of_int (Cache.line_bytes t.l1) *. t.cfg.Config.wb_extra)
  | None -> ()

(* Schedule a line fetch from memory; returns its arrival time.  If the
   line is already in flight, returns (and augments) the existing
   fill. *)
let schedule_fetch t ~now ~fill_l1 ~fill_l2 ~l1_addr addr =
  let line = l2_line t addr in
  match Hashtbl.find_opt t.inflight line with
  | Some f ->
    f.fill_l1 <- f.fill_l1 || fill_l1;
    f.fill_l2 <- f.fill_l2 || fill_l2;
    if fill_l1 then f.l1_addr <- l1_addr;
    f.arrival
  | None ->
    let start = claim_bus t now 1.0 in
    (* prefetches lose memory-controller arbitration to demand reads *)
    let arrival =
      start
      +. (float_of_int t.cfg.Config.mem_latency *. t.cfg.Config.pf_latency_factor)
    in
    Hashtbl.replace t.inflight line
      { arrival; fill_l1; fill_l2; want_write = false; l1_addr; observed = false;
        is_pf = true };
    t.pf_inflight <- t.pf_inflight + 1;
    Queue.push (line, true) t.fifo;
    arrival

(* Move an arrived fill into the caches. *)
let settle t now line (f : fill) =
  Hashtbl.remove t.inflight line;
  if f.is_pf then t.pf_inflight <- t.pf_inflight - 1;
  if f.fill_l2 then l2_evicted t now (Cache.insert t.l2 ~addr:line ~write:false);
  if f.fill_l1 then begin
    (* the transfer brought a whole (possibly wider) memory line;
       install every L1-sized piece of it *)
    let l1_bytes = Cache.line_bytes t.l1 in
    let pieces = max 1 (Cache.line_bytes t.l2 / l1_bytes) in
    for k = 0 to pieces - 1 do
      let piece = line + (k * l1_bytes) in
      let write = f.want_write && piece = f.l1_addr - (f.l1_addr mod l1_bytes) in
      l1_evicted t now (Cache.insert t.l1 ~addr:piece ~write)
    done
  end
  else if f.want_write then
    ignore (Cache.insert t.l2 ~addr:line ~write:true : int option)

(* Hardware stream prefetcher: trains on L2 demand misses, runs a few
   lines ahead, never crosses a 4 KiB page. *)
let hw_prefetch t ~now addr =
  let cfg = t.cfg in
  if cfg.Config.hw_prefetch_ahead > 0 then begin
    let line_sz = Cache.line_bytes t.l2 in
    let line = l2_line t addr in
    let matched = ref false in
    Array.iter
      (fun s ->
        if (not !matched) && s.expect = line then begin
          matched := true;
          s.expect <- line + (s.dir * line_sz);
          for k = 1 to cfg.Config.hw_prefetch_ahead do
            let target = line + (s.dir * k * line_sz) in
            if page_of target = page_of line && not (Cache.probe t.l2 ~addr:target) then begin
              t.hw_pf_issued <- t.hw_pf_issued + 1;
              ignore
                (schedule_fetch t ~now ~fill_l1:false ~fill_l2:true ~l1_addr:target target
                  : float)
            end
          done
        end)
      t.streams;
    if not !matched then begin
      let s = t.streams.(t.next_stream) in
      t.next_stream <- (t.next_stream + 1) mod Array.length t.streams;
      s.expect <- line + line_sz;
      s.dir <- 1
    end
  end

(* Take an MSHR slot for a demand miss requested at [now]; returns the
   effective request time (delayed when all slots are busy). *)
let mshr_admit t now =
  let rec drain () =
    match Queue.peek_opt t.mshr with
    | Some c when c <= now ->
      ignore (Queue.pop t.mshr : float);
      drain ()
    | _ -> ()
  in
  drain ();
  if Queue.length t.mshr < t.cfg.Config.mshrs then now else Float.max now (Queue.pop t.mshr)

let demand_fetch t ~now ~write addr =
  hw_prefetch t ~now addr;
  let t0 = mshr_admit t now in
  let start = claim_bus t t0 1.0 in
  let arrival = start +. float_of_int t.cfg.Config.mem_latency in
  Queue.push arrival t.mshr;
  let line = l2_line t addr in
  Hashtbl.replace t.inflight line
    { arrival; fill_l1 = true; fill_l2 = true; want_write = write; l1_addr = addr;
      observed = true; is_pf = false };
  Queue.push (line, false) t.fifo;
  arrival

(* Advance the consumption frontier and settle every fill it passed:
   a line is architecturally in the cache once its arrival time is
   behind the furthest completion the core has seen. *)
let tick t time =
  if time > t.clock then t.clock <- time;
  let rec sweep () =
    match Queue.peek_opt t.fifo with
    | Some (line, _) -> (
      match Hashtbl.find_opt t.inflight line with
      | None ->
        ignore (Queue.pop t.fifo : int * bool);
        sweep ()
      | Some f when f.arrival <= t.clock ->
        ignore (Queue.pop t.fifo : int * bool);
        settle t t.clock line f;
        sweep ()
      | Some _ -> ())
    | None -> ()
  in
  sweep ()

(* The stream prefetcher also observes the first touch of a line it
   (or a software prefetch) brought in, so coverage is continuous
   rather than retraining every few lines. *)
let observe t ~now (f : fill) line =
  if not f.observed then begin
    f.observed <- true;
    hw_prefetch t ~now line
  end

let load t ~addr ~now =
  let cfg = t.cfg in
  let l1_lat = float_of_int cfg.Config.l1.Config.latency in
  let line = l2_line t addr in
  tick t now;
  match Hashtbl.find_opt t.inflight line with
  | Some f when f.arrival > now ->
    (* hit under fill: ride the outstanding fetch *)
    f.fill_l1 <- true;
    f.l1_addr <- addr;
    observe t ~now f line;
    tick t f.arrival;
    Float.max (now +. l1_lat) f.arrival
  | Some f ->
    f.fill_l1 <- true;
    f.l1_addr <- addr;
    observe t ~now f line;
    settle t now line f;
    now +. l1_lat
  | None ->
    if Cache.access t.l1 ~addr ~write:false then now +. l1_lat
    else if Cache.access t.l2 ~addr ~write:false then begin
      l1_evicted t now (Cache.insert t.l1 ~addr ~write:false);
      now +. float_of_int cfg.Config.l2.Config.latency
    end
    else begin
      let arrival = demand_fetch t ~now ~write:false addr in
      tick t arrival;
      arrival
    end

let store t ~addr ~now =
  let line = l2_line t addr in
  tick t now;
  match Hashtbl.find_opt t.inflight line with
  | Some f when f.arrival > now ->
    f.want_write <- true;
    f.fill_l1 <- true;
    f.l1_addr <- addr;
    observe t ~now f line
  | Some f ->
    f.want_write <- true;
    f.fill_l1 <- true;
    f.l1_addr <- addr;
    observe t ~now f line;
    settle t now line f
  | None ->
    if Cache.access t.l1 ~addr ~write:true then ()
    else if Cache.access t.l2 ~addr ~write:false then
      l1_evicted t now (Cache.insert t.l1 ~addr ~write:true)
    else
      (* read-for-ownership: fetch the line, but do not stall *)
      ignore (demand_fetch t ~now ~write:true addr : float)

(* Flush the write-combining buffer: its contents cross the bus as one
   write burst. *)
let wc_flush t now =
  if t.wc_bytes > 0.0 then begin
    claim_bytes t now t.wc_bytes;
    t.wc_bytes <- 0.0
  end;
  t.wc_line <- -1

let nt_store t ~addr ~bytes ~now =
  let cfg = t.cfg in
  tick t now;
  (* non-temporal stores gather in a write-combining buffer and go out
     in full-line bursts — this is what keeps them off the bus's
     read/write turnaround path *)
  let line = l2_line t addr in
  if line <> t.wc_line then begin
    wc_flush t now;
    t.wc_line <- line;
    t.nt_lines <- t.nt_lines + 1
  end;
  t.wc_bytes <- t.wc_bytes +. float_of_int bytes;
  (* coherence: a cached copy forces the streaming store through the
     coherence protocol — a dirty copy must be flushed first, and the
     round trip costs extra on some machines (this is where blind
     non-temporal stores lose on the Opteron-like model).  The cached
     copy stays usable for timing purposes: it now matches memory. *)
  let in_l1 = Cache.probe t.l1 ~addr and in_l2 = Cache.probe t.l2 ~addr in
  if in_l1 || in_l2 then begin
    let dirty1 = if in_l1 then Cache.access t.l1 ~addr ~write:false else false in
    ignore dirty1;
    let stores_per_line = float_of_int (Cache.line_bytes t.l1 / max 1 bytes) in
    let pen = cfg.Config.wnt_read_penalty /. stores_per_line in
    t.bus_free <- Float.max now t.bus_free +. pen;
    t.claims <- t.claims +. pen
  end

let bus_backlog t ~now = Float.max 0.0 (t.bus_free -. now)

let prefetch t ~kind ~addr ~now =
  let cfg = t.cfg in
  tick t now;
  if t.pf_inflight >= cfg.Config.pf_queue then
    t.sw_pf_dropped <- t.sw_pf_dropped + 1
  else begin
    let fill_l1, fill_l2 =
      match kind with
      | Instr.T0 -> (true, true)
      | Instr.T1 -> (false, true)
      | Instr.Nta | Instr.W -> (true, false)
    in
    if not (Cache.probe t.l1 ~addr) then
      if Cache.probe t.l2 ~addr then begin
        if fill_l1 then
          (* L2-resident: promote to L1 without bus traffic *)
          l1_evicted t now (Cache.insert t.l1 ~addr ~write:false)
      end
      else begin
        t.sw_pf_issued <- t.sw_pf_issued + 1;
        ignore (schedule_fetch t ~now ~fill_l1 ~fill_l2 ~l1_addr:addr addr : float)
      end
  end

let warm_l2 t ~addr = ignore (Cache.insert t.l2 ~addr ~write:false : int option)

let warm_all t ~addr =
  ignore (Cache.insert t.l2 ~addr ~write:false : int option);
  ignore (Cache.insert t.l1 ~addr ~write:false : int option)

let drain_time t ~now =
  wc_flush t now;
  Float.max now t.bus_free

(* Cost (in bus cycles) of eventually writing back every dirty line the
   run left in the hierarchy.  The out-of-cache timers charge this: for
   working sets beyond L2 these writebacks happen inside the timed
   window anyway, and charging them uniformly gives the steady-state
   slope the extrapolation needs. *)
let pending_writeback_cost t =
  let l1b = Cache.dirty_lines t.l1 * Cache.line_bytes t.l1 in
  let l2b = Cache.dirty_lines t.l2 * Cache.line_bytes t.l2 in
  float_of_int (l1b + l2b) *. t.cfg.Config.wb_extra /. t.cfg.Config.bus_bytes_per_cycle

let stats t =
  let h1, m1 = Cache.stats t.l1 and h2, m2 = Cache.stats t.l2 in
  Printf.sprintf
    "L1 %d hit / %d miss; L2 %d hit / %d miss; swpf %d issued / %d dropped; hwpf %d; nt %d; bus %.0f"
    h1 m1 h2 m2 t.sw_pf_issued t.sw_pf_dropped t.hw_pf_issued t.nt_lines t.claims
