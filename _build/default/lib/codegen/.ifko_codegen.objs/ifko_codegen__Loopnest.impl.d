lib/codegen/loopnest.ml: Block Cfg Hashtbl Instr List Option Reg
