#!/bin/sh
# Serve smoke: boot the tuning daemon on a Unix socket, run a cold
# tune, assert the warm lookup is answered from the result cache, pull
# the JSON stats, and shut down gracefully.  Every step is
# timeout-bounded so a wedged daemon fails the gate instead of
# hanging it.  Run from the repository root after `dune build`.
set -eu

IFKO="${IFKO:-dune exec --no-build bin/ifko_cli.exe --}"
TMP="${TMPDIR:-/tmp}/ifko_serve_smoke.$$"
SOCK="$TMP/daemon.sock"
KERNEL=examples/kernels/ddot.hil
mkdir -p "$TMP"
trap 'kill $DAEMON_PID 2>/dev/null || true; rm -rf "$TMP"' EXIT

timeout 300 $IFKO serve --socket "$SOCK" --store-dir "$TMP/store" --shards 4 -j 2 &
DAEMON_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ $i -gt 300 ]; then
    echo "serve_smoke: daemon never bound $SOCK" >&2
    exit 1
  fi
  sleep 0.1
done

timeout 240 $IFKO query tune "$KERNEL" --socket "$SOCK" -n 2000 | tee "$TMP/tune.out"
grep -q "computed" "$TMP/tune.out"

timeout 60 $IFKO query lookup "$KERNEL" --socket "$SOCK" -n 2000 | tee "$TMP/lookup.out"
grep -q "cache hit" "$TMP/lookup.out"

timeout 60 $IFKO query stat --socket "$SOCK" | tee "$TMP/stat.out"
grep -q '"server"' "$TMP/stat.out"
grep -q '"per_shard"' "$TMP/stat.out"

timeout 60 $IFKO query shutdown --socket "$SOCK"
wait $DAEMON_PID
echo "serve_smoke: ok"
