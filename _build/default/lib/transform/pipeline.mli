(** The FKO optimization pipeline.

    Applies the fundamental transformations in their fixed order
    (SV, UR, LC, AE, PF, WNT — paper Section 2.2.3), then iterates the
    repeatable block (copy propagation, peephole, dead code, control
    flow cleanup) to a fixed point, allocates registers, and runs a
    final cleanup.  The input [compiled] kernel is never mutated; each
    call works on a fresh copy so the search can probe many parameter
    points from one lowering. *)

val snapshot : Ifko_codegen.Lower.compiled -> Ifko_codegen.Lower.compiled
(** Deep-copy a compiled kernel (blocks and loop-nest bookkeeping). *)

val repeatable : ?protect:string list -> Cfg.func -> int
(** Iterate the repeatable-transformation block until nothing changes;
    returns the number of iterations taken (at least 1). *)

val apply :
  ?skip_regalloc:bool ->
  line_bytes:int ->
  Ifko_codegen.Lower.compiled ->
  Params.t ->
  Ifko_codegen.Lower.compiled
(** [apply ~line_bytes compiled params] produces a fresh, fully
    transformed and register-allocated copy.  [skip_regalloc] leaves
    the result in virtual-register form (used by tests and the [-S]
    CLI mode before allocation).  The result validates under
    {!Validate.check_physical} (or {!Validate.check} when allocation
    is skipped). *)
