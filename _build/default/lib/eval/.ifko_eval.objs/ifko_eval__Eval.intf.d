lib/eval/eval.mli: Ifko_blas Ifko_machine Ifko_search Ifko_sim
