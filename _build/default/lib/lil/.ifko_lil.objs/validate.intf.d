lib/lil/validate.mli: Cfg
