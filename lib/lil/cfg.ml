(** LIL functions as control-flow graphs.

    A function is an ordered list of basic blocks; the first block is
    the entry.  Ordering matters only for printing — control transfer
    is always explicit in terminators (no fall-through), which keeps
    the unrolling and branch-chaining transformations simple. *)

type func = {
  fname : string;
  mutable params : (string * Reg.t) list;
      (** kernel parameters bound to registers at entry (virtual until
          register allocation rewrites them) *)
  mutable blocks : Block.t list;
  reg_ids : Ifko_util.Ids.t;  (** fresh virtual-register ids *)
  label_ids : Ifko_util.Ids.t;  (** fresh label suffixes *)
  mutable frame_slots : int;
      (** number of 16-byte spill slots addressed off {!Reg.frame_ptr} *)
}

let create ~name ~params =
  {
    fname = name;
    params;
    blocks = [];
    reg_ids = Ifko_util.Ids.create ~start:0 ();
    label_ids = Ifko_util.Ids.create ~start:0 ();
    frame_slots = 0;
  }

let fresh_reg f cls = Reg.virt cls (Ifko_util.Ids.next f.reg_ids)

let fresh_label f stem = Printf.sprintf "%s_%d" stem (Ifko_util.Ids.next f.label_ids)

(** [alloc_slot f] reserves a fresh 16-byte spill slot and returns its
    byte displacement off the frame pointer. *)
let alloc_slot f =
  let slot = f.frame_slots in
  f.frame_slots <- slot + 1;
  slot * 16

let find_block f label = List.find_opt (fun b -> b.Block.label = label) f.blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Cfg.find_block_exn: no block %S" label)

let entry f =
  match f.blocks with
  | [] -> invalid_arg "Cfg.entry: empty function"
  | b :: _ -> b

(** [insert_after f ~after blocks] splices [blocks] into the block list
    right after the block labelled [after]. *)
let insert_after f ~after blocks =
  let rec go = function
    | [] -> invalid_arg (Printf.sprintf "Cfg.insert_after: no block %S" after)
    | b :: rest when b.Block.label = after -> b :: (blocks @ rest)
    | b :: rest -> b :: go rest
  in
  f.blocks <- go f.blocks

let remove_block f label =
  f.blocks <- List.filter (fun b -> b.Block.label <> label) f.blocks

(** [predecessors f] is an association from label to the labels of
    blocks branching to it. *)
let predecessors f =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun succ ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt tbl succ) in
          Hashtbl.replace tbl succ (b.Block.label :: cur))
        (Block.successors b.Block.term))
    f.blocks;
  tbl

(** Iterate instructions of every block (analysis convenience). *)
let iter_instrs f g = List.iter (fun b -> List.iter g b.Block.instrs) f.blocks

(** All registers mentioned anywhere in the function. *)
let all_regs f =
  let acc = ref Reg.Set.empty in
  let add r = acc := Reg.Set.add r !acc in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          List.iter add (Instr.defs i);
          List.iter add (Instr.uses i))
        b.Block.instrs;
      List.iter add (Block.term_uses b.Block.term);
      List.iter add (Block.term_defs b.Block.term))
    f.blocks;
  List.iter (fun (_, r) -> add r) f.params;
  !acc

(** Deep-copy a function (blocks are mutable). *)
let copy f =
  {
    f with
    blocks =
      List.map
        (fun b -> Block.{ label = b.label; instrs = b.instrs; term = b.term })
        f.blocks;
    reg_ids = Ifko_util.Ids.create ~start:(Ifko_util.Ids.peek f.reg_ids) ();
    label_ids = Ifko_util.Ids.create ~start:(Ifko_util.Ids.peek f.label_ids) ();
  }

let to_string f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s)  ; frame=%d slots\n" f.fname
       (String.concat ", "
          (List.map (fun (n, r) -> Printf.sprintf "%s=%s" n (Reg.to_string r)) f.params))
       f.frame_slots);
  List.iter
    (fun b ->
      Buffer.add_string buf (b.Block.label ^ ":\n");
      List.iter
        (fun i -> Buffer.add_string buf ("        " ^ Instr.to_string i ^ "\n"))
        b.Block.instrs;
      Buffer.add_string buf ("        " ^ Block.term_to_string b.Block.term ^ "\n"))
    f.blocks;
  Buffer.contents buf

(** [fingerprint f] is a short stable content digest (hex MD5) of the
    function's printed form.  Fuzz reproducers record it so a corpus
    file can be recognized as stale when the lowering of its kernel
    changes (the replay still runs; the fingerprint is provenance, not
    a key). *)
let fingerprint f = Digest.to_hex (Digest.string (to_string f))
