test/test_baselines.ml: Alcotest Block Cfg Config Defs Hil_sources Ifko_analysis Ifko_baselines Ifko_blas Ifko_codegen Ifko_machine Ifko_sim Ifko_transform Instr List Printf Validate Workload
