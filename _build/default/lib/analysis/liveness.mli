(** Backward live-register dataflow over a LIL function.

    Used by dead-code elimination, register allocation and the
    legality checks of the fundamental transformations. *)

type t

val compute : Cfg.func -> t
(** Run the worklist analysis to a fixed point. *)

val live_in : t -> string -> Reg.Set.t
(** Registers live on entry to the named block. *)

val live_out : t -> string -> Reg.Set.t
(** Registers live on exit from the named block (union of successors'
    [live_in]). *)

val live_before_each : t -> Block.t -> (Instr.t * Reg.Set.t) list
(** [live_before_each t b] pairs every instruction of [b] with the set
    of registers live {e after} it executes, in block order.  The
    terminator's uses are included at the end of the block. *)
