(** Per-block liveness, as an instance of the generic {!Dataflow}
    engine: a backward may-analysis over register sets. *)

type t = {
  live_in : (string, Reg.Set.t) Hashtbl.t;
  live_out : (string, Reg.Set.t) Hashtbl.t;
}

let get tbl label = Option.value ~default:Reg.Set.empty (Hashtbl.find_opt tbl label)

(* use/def summary of a whole block: [uses] are registers read before
   any write inside the block; [defs] are all registers written. *)
let block_summary (b : Block.t) =
  let uses = ref Reg.Set.empty and defs = ref Reg.Set.empty in
  let use r = if not (Reg.Set.mem r !defs) then uses := Reg.Set.add r !uses in
  let def r = defs := Reg.Set.add r !defs in
  List.iter
    (fun i ->
      List.iter use (Instr.uses i);
      List.iter def (Instr.defs i))
    b.Block.instrs;
  List.iter use (Block.term_uses b.Block.term);
  List.iter def (Block.term_defs b.Block.term);
  (!uses, !defs)

module Engine = Dataflow.Make (Dataflow.Reg_set_domain)

let compute (f : Cfg.func) =
  let summaries = Hashtbl.create 16 in
  List.iter
    (fun b -> Hashtbl.replace summaries b.Block.label (block_summary b))
    f.Cfg.blocks;
  let transfer (b : Block.t) out =
    let uses, defs = Hashtbl.find summaries b.Block.label in
    Reg.Set.union uses (Reg.Set.diff out defs)
  in
  let r = Engine.run ~direction:Dataflow.Backward ~transfer f in
  { live_in = r.Engine.at_entry; live_out = r.Engine.at_exit }

let live_in t label = get t.live_in label
let live_out t label = get t.live_out label

let live_before_each t (b : Block.t) =
  (* Walk backward accumulating liveness, then reverse. *)
  let after_term = live_out t b.Block.label in
  let at_term =
    Reg.Set.union
      (Reg.Set.of_list (Block.term_uses b.Block.term))
      (Reg.Set.diff after_term (Reg.Set.of_list (Block.term_defs b.Block.term)))
  in
  let rec go live acc = function
    | [] -> acc
    | i :: before ->
      let live' =
        Reg.Set.union
          (Reg.Set.of_list (Instr.uses i))
          (Reg.Set.diff live (Reg.Set.of_list (Instr.defs i)))
      in
      go live' ((i, live) :: acc) before
  in
  go at_term [] (List.rev b.Block.instrs)
