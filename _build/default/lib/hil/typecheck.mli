(** Semantic analysis of parsed HIL kernels.

    Checking establishes the invariants the backend relies on:
    every identifier is declared exactly once, expressions are well
    typed, labels resolve, at most one loop carries the [OPTLOOP]
    mark-up (and contains no nested loop), and pointer arithmetic is
    restricted to literal increments.  Pointer [+=]/[-=] statements are
    normalized into {!Ast.stmt.Ptr_inc} during checking. *)

type env = (string * Ast.ty) list
(** Variable typing environment: parameters, locals, and loop indices
    (auto-declared as [int] when not listed under [VARS]). *)

type checked = {
  kernel : Ast.kernel;  (** the normalized kernel *)
  env : env;
  labels : string list;  (** every label defined in the body *)
}

exception Error of string
(** Raised with a human-readable message on any semantic violation. *)

val check : Ast.kernel -> checked
(** Check and normalize a kernel.  @raise Error on violations. *)

val lookup : env -> string -> Ast.ty
(** [lookup env x] returns the type of [x].  @raise Error if unbound. *)

val expr_type : env -> Ast.expr -> Ast.ty
(** Type of a checked expression ([Int] or [Fp _]).
    @raise Error on ill-typed expressions. *)
