lib/analysis/accuminfo.mli: Ifko_codegen Instr Reg
