(** Basic blocks and terminators. *)

(** Block terminators.

    [Br] is a conditional branch on an integer comparison; when
    [dec > 0] the branch additionally performs [lhs <- lhs - dec]
    before comparing — this models the fused count-down-and-branch
    loop control (x86 [sub]/[jcc] macro-fusion, or [dec/jnz]) that the
    LC transformation produces, which the machine model charges as a
    single micro-operation.  [Fbr] branches on a scalar FP
    comparison. *)
type term =
  | Jmp of string
  | Br of {
      cmp : Instr.cmp;
      lhs : Reg.t;
      rhs : Instr.operand;
      ifso : string;
      ifnot : string;
      dec : int;
    }
  | Fbr of {
      fsize : Instr.fsize;
      cmp : Instr.cmp;
      lhs : Reg.t;
      rhs : Reg.t;
      ifso : string;
      ifnot : string;
    }
  | Ret of Reg.t option

type t = { label : string; mutable instrs : Instr.t list; mutable term : term }

let make ?(instrs = []) ~term label = { label; instrs; term }

(** [successors t] lists the labels a terminator may transfer to. *)
let successors = function
  | Jmp l -> [ l ]
  | Br { ifso; ifnot; _ } -> [ ifso; ifnot ]
  | Fbr { ifso; ifnot; _ } -> [ ifso; ifnot ]
  | Ret _ -> []

(** Registers read by a terminator. *)
let term_uses = function
  | Jmp _ -> []
  | Br { lhs; rhs; _ } -> lhs :: Instr.operand_uses rhs
  | Fbr { lhs; rhs; _ } -> [ lhs; rhs ]
  | Ret (Some r) -> [ r ]
  | Ret None -> []

(** Registers written by a terminator (the fused-decrement branch
    updates its counter). *)
let term_defs = function
  | Br { lhs; dec; _ } when dec > 0 -> [ lhs ]
  | Jmp _ | Br _ | Fbr _ | Ret _ -> []

let map_term_regs f = function
  | Jmp l -> Jmp l
  | Br b ->
    Br
      {
        b with
        lhs = f b.lhs;
        rhs = (match b.rhs with Instr.Oreg r -> Instr.Oreg (f r) | imm -> imm);
      }
  | Fbr b -> Fbr { b with lhs = f b.lhs; rhs = f b.rhs }
  | Ret r -> Ret (Option.map f r)

(** Retarget the labels of a terminator through [f]. *)
let map_term_labels f = function
  | Jmp l -> Jmp (f l)
  | Br b -> Br { b with ifso = f b.ifso; ifnot = f b.ifnot }
  | Fbr b -> Fbr { b with ifso = f b.ifso; ifnot = f b.ifnot }
  | Ret r -> Ret r

let term_to_string = function
  | Jmp l -> Printf.sprintf "jmp    %s" l
  | Br { cmp; lhs; rhs; ifso; ifnot; dec } ->
    let prefix = if dec > 0 then Printf.sprintf "dec%d&" dec else "" in
    Printf.sprintf "%sj%s    %s, %s -> %s else %s" prefix (Instr.string_of_cmp cmp)
      (Reg.to_string lhs) (Instr.string_of_operand rhs) ifso ifnot
  | Fbr { fsize; cmp; lhs; rhs; ifso; ifnot } ->
    Printf.sprintf "jf%s%s  %s, %s -> %s else %s" (Instr.string_of_cmp cmp)
      (Instr.suffix fsize) (Reg.to_string lhs) (Reg.to_string rhs) ifso ifnot
  | Ret None -> "ret"
  | Ret (Some r) -> Printf.sprintf "ret    %s" (Reg.to_string r)
