(** Blocking client for the `ifko serve` protocol.

    One request at a time per connection; every call is a full round
    trip.  Protocol- and server-level failures come back as
    [Error msg]; transport failures (refused connection, broken pipe)
    raise the underlying [Unix.Unix_error].  Not thread-safe — use one
    client per thread (the daemon multiplexes them fine). *)

type t

val connect : Server.listen -> t
(** @raise Unix.Unix_error if the daemon is not there. *)

val close : t -> unit
(** Idempotent. *)

val with_client : Server.listen -> (t -> 'a) -> 'a
(** [connect], run, [close] (also on exceptions). *)

val tune : t -> Proto.tune_args -> (Proto.tune_reply, string) result
(** Full empirical tune; [reply.hit] tells whether the daemon answered
    from its result cache.  Bit-identical to a local sequential
    {!Ifko_search.Driver.tune} of the same request. *)

val lookup : t -> Proto.tune_args -> (Proto.tune_reply option, string) result
(** Result-cache query; [Ok None] on a miss.  Never computes. *)

val stat : t -> ((string * Proto.Json.value) list, string) result
(** The daemon's statistics object: ["store"] ({!Shard_store.stat_fields})
    and ["server"] (request counters, uptime, pool geometry). *)

val compact : t -> (unit, string) result
(** Apply the daemon's eviction bounds and compact every shard. *)

val shutdown : t -> (unit, string) result
(** Graceful stop; the daemon acknowledges before exiting. *)
