(** A probe store sharded across N journal files by key prefix.

    Each shard is an ordinary {!Ifko_store.Store.t} (its own journal,
    its own internal mutex), picked by the first byte of the hex-digest
    key modulo the shard count — MD5 keys spread uniformly, so shards
    stay balanced and concurrent writers to different keys rarely touch
    the same journal.  A [store.meta] file in the directory persists the
    shard count; re-opening follows the directory's geometry regardless
    of the [?shards] argument, so keys keep hashing to the journal that
    holds them.

    On top of the shards sits a single-flight table: concurrent
    {!cached} misses on the same key coalesce into one computation
    whose outcome all callers share.

    In [replica] mode several daemon processes share one directory:
    every journal write is a single complete [O_APPEND] line (see
    {!Ifko_store.Store}), and a lookup miss triggers an incremental
    re-read of the shard's journal tail before the miss is conceded.
    Compaction/eviction in a replica group must be serialized through
    one designated writer — see DESIGN.md §13. *)

module Store = Ifko_store.Store

type t

val open_ :
  ?seed:int -> ?shards:int -> ?replica:bool -> ?clock:(unit -> float) ->
  string -> t
(** [open_ dir] creates [dir] if needed.  [shards] (default 8, clamped
    to 1..256) only matters when the directory is new; an existing
    [store.meta] wins.  [clock] stamps new entries for age-bounded
    eviction (default: the constant 0, which keeps journals
    byte-deterministic and marks entries "arbitrarily old").
    @raise Invalid_argument if [dir] exists and is not a directory. *)

val close : t -> unit
val dir : t -> string
val shard_count : t -> int

val find : t -> key:string -> Store.outcome option
val find_entry : t -> key:string -> (Store.outcome * string * string) option
(** Outcome, params, provenance.  Both count one hit or miss, and in
    replica mode retry after refreshing the key's shard. *)

val add : t -> key:string -> params:string -> prov:string -> Store.outcome -> unit

val fold_entries :
  t ->
  init:'a ->
  f:('a -> key:string -> params:string -> prov:string -> Store.outcome -> 'a) ->
  'a
(** Read-only fold over every live entry: shards in index order, each
    shard in sorted-key order ({!Store.fold_entries}) — deterministic
    for a given entry set.  Used by the daemon's warm-start donor
    scan. *)

val cached :
  t -> key:string -> params:string -> prov:string ->
  (unit -> Store.outcome) -> Store.outcome
(** Memoize through the store with single-flight semantics: a hit (or a
    completed concurrent flight) returns the stored outcome; the first
    misser runs [f], journals the outcome, and wakes every waiter.  If
    the leader raises, the exception propagates to it alone and one
    waiter takes over the computation. *)

val hits : t -> int
val misses : t -> int
val joins : t -> int
(** Calls answered by joining another caller's in-flight computation. *)

val entries : t -> int

val refresh : t -> unit
(** Replica mode only (no-op otherwise): fold in lines other processes
    appended to every shard since it was last read. *)

val compact : t -> unit
(** Rewrite every shard's journal to one line per live key. *)

val evict : ?max_bytes:int -> ?max_age:float -> now:float -> t -> int
(** Apply {!Store.evict} shard by shard; [max_bytes] is a whole-store
    budget split evenly across shards.  Returns entries dropped. *)

type ckpt_stat = {
  ck_machine : string;  (** from the [ckpt-<machine>] directory name *)
  ck_snapshots : int;  (** persisted [<key>.ckpt] warm-state blobs *)
  ck_transients : int;  (** lines in [transients.jsonl] *)
}
(** Persisted warm-state checkpoints the serve daemon keeps next to the
    shards — the state a restart reloads instead of re-warming. *)

type stat = {
  sh_dir : string;
  sh_shards : Store.stat list;  (** in shard order *)
  sh_entries : int;
  sh_bytes : int;
  sh_corrupt : int;
  sh_torn : int;
  sh_hits : int;
  sh_misses : int;
  sh_joins : int;
  sh_ckpts : ckpt_stat list;  (** sorted by machine name *)
}

val stat : t -> stat

val stat_fields : stat -> (string * Store.Json.value) list
(** Flat summary fields plus a ["per_shard"] array of per-shard
    {!Store.stat_fields} objects and a ["ckpt_dirs"] array of persisted
    checkpoint summaries — same always-present-fields convention as
    [Diag.to_json]. *)

val stat_json : stat -> string

val stat_of_dir : string -> stat option
(** Offline statistics for a shard directory (opens, reads, closes);
    [None] if [dir] has no valid [store.meta]. *)
