type t = {
  line : int;
  sets : int;
  assoc : int;
  tags : int array;  (** -1 = invalid; indexed [set * assoc + way] *)
  dirty : bool array;
  lru : int array;  (** higher = more recently used *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create (lvl : Config.cache_level) =
  let sets = max 1 (lvl.Config.size / (lvl.Config.line * lvl.Config.assoc)) in
  let ways = sets * lvl.Config.assoc in
  {
    line = lvl.Config.line;
    sets;
    assoc = lvl.Config.assoc;
    tags = Array.make ways (-1);
    dirty = Array.make ways false;
    lru = Array.make ways 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let line_bytes t = t.line
let set_of t addr = addr / t.line mod t.sets
let tag_of t addr = addr / t.line

let find_way t addr =
  let base = set_of t addr * t.assoc and tag = tag_of t addr in
  let rec go w =
    if w >= t.assoc then None
    else if t.tags.(base + w) = tag then Some (base + w)
    else go (w + 1)
  in
  go 0

let touch t idx =
  t.clock <- t.clock + 1;
  t.lru.(idx) <- t.clock

let access t ~addr ~write =
  match find_way t addr with
  | Some idx ->
    t.hits <- t.hits + 1;
    if write then t.dirty.(idx) <- true;
    touch t idx;
    true
  | None ->
    t.misses <- t.misses + 1;
    false

let probe t ~addr = find_way t addr <> None

let victim_way t addr =
  let base = set_of t addr * t.assoc in
  let best = ref base in
  for w = 1 to t.assoc - 1 do
    if t.tags.(base + w) = -1 then (if t.tags.(!best) <> -1 then best := base + w)
    else if t.tags.(!best) <> -1 && t.lru.(base + w) < t.lru.(!best) then best := base + w
  done;
  !best

let insert t ~addr ~write =
  match find_way t addr with
  | Some idx ->
    if write then t.dirty.(idx) <- true;
    touch t idx;
    None
  | None ->
    let idx = victim_way t addr in
    let evicted =
      if t.tags.(idx) <> -1 && t.dirty.(idx) then Some (t.tags.(idx) * t.line) else None
    in
    t.tags.(idx) <- tag_of t addr;
    t.dirty.(idx) <- write;
    touch t idx;
    evicted

let invalidate t ~addr =
  match find_way t addr with
  | Some idx ->
    let was_dirty = t.dirty.(idx) in
    t.tags.(idx) <- -1;
    t.dirty.(idx) <- false;
    was_dirty
  | None -> false

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false

let stats t = (t.hits, t.misses)

let dirty_lines t =
  let n = ref 0 in
  Array.iteri (fun i d -> if d && t.tags.(i) <> -1 then incr n) t.dirty;
  !n

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
