(** The optimization space the iterative search explores.

    The analysis phase (together with any user mark-up) establishes the
    space: vectorizability gates SV, detected accumulators gate AE, the
    prefetch-target arrays each get an (instruction, distance) pair,
    and the machine's line size anchors the distance grid.

    The space exists in two forms.  The raw {e grids} below are the
    machine-independent value lists every consumer shares — the search
    strategies prune them per kernel/machine through the candidate
    functions, while the fuzzer's {!Ifko_fuzz.Sample} widens them with
    invalid-adjacent boundary values the pipeline must reject cleanly.
    {!axes} then packages the pruned space as data: one {!axis} record
    per tunable dimension, with its domain, legality-pruned flag and
    numeric encode/decode — what the surrogate searcher builds feature
    vectors from. *)

open Ifko_machine

(* ---- raw value grids (one definition of the space) ---- *)

(** Unroll factors worth probing, before the per-kernel legality and
    max-unroll gating. *)
let unroll_grid = [ 1; 2; 3; 4; 5; 8; 12; 16; 24; 32; 64; 128 ]

(** Accumulator counts ([0] = off), before the has-accumulators gate. *)
let ae_grid = [ 0; 2; 3; 4; 5; 6; 8 ]

(** Prefetch-distance grid in line-size multiples (paper Table 3). *)
let pf_dist_ks = [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 14; 16; 20; 24; 30; 32 ]

(** Prefetch instruction flavours, before the per-machine gate. *)
let pf_kind_grid = [ Instr.Nta; Instr.T0; Instr.T1; Instr.W ]

(** Block-fetch block sizes ([0] = off) under the extended search. *)
let bf_grid = [ 0; 2048; 4096; 8192 ]

(* ---- per-kernel / per-machine candidate lists ---- *)

(** Candidate unroll factors, bounded by the reported maximum safe
    unrolling and pruned entirely when the legality oracle would refuse
    the transform anyway (probing refused points wastes simulator
    time — the pipeline compiles them unchanged). *)
let unroll_candidates (report : Ifko_analysis.Report.t) =
  if report.Ifko_analysis.Report.legal_unroll <> Ok () then [ 1 ]
  else List.filter (fun u -> u <= report.Ifko_analysis.Report.max_unroll) unroll_grid

(** Candidate accumulator counts ([0] = off); pointless without any
    accumulator. *)
let ae_candidates (report : Ifko_analysis.Report.t) =
  if report.Ifko_analysis.Report.accumulators = [] then [ 0 ] else ae_grid

(** Prefetch instruction flavours available on the machine ([W] is the
    3DNow! prefetch, absent on the P4E-like machine). *)
let pf_ins_candidates (cfg : Config.t) =
  let base = [ None; Some Instr.Nta; Some Instr.T0; Some Instr.T1 ] in
  if cfg.Config.name = "Opteron" then base @ [ Some Instr.W ] else base

(** Prefetch distance grid in bytes: multiples of the prefetchable line
    size up to 2 KiB and a few beyond, as in the paper's Table 3. *)
let pf_dist_candidates (cfg : Config.t) =
  let line = cfg.Config.prefetchable_line in
  List.sort_uniq compare
    (List.filter_map
       (fun k ->
         let d = k * line in
         if d <= 4096 then Some d else None)
       pf_dist_ks)

let wnt_candidates (report : Ifko_analysis.Report.t) =
  if
    report.Ifko_analysis.Report.output_arrays = []
    || report.Ifko_analysis.Report.legal_wnt <> Ok ()
  then [ false ]
  else [ false; true ]

let sv_candidates (report : Ifko_analysis.Report.t) =
  if
    report.Ifko_analysis.Report.vectorizable
    && report.Ifko_analysis.Report.legal_sv = Ok ()
  then [ true; false ]
  else [ false ]

(* ---- extension dimensions (paper future work; see Params) ---- *)

(** Block-fetch block sizes tried when the extended search is enabled. *)
let bf_candidates ~extensions (report : Ifko_analysis.Report.t) =
  if extensions && report.Ifko_analysis.Report.prefetch_arrays <> [] then bf_grid
  else [ 0 ]

(** CISC two-array indexing on/off under the extended search. *)
let cisc_candidates ~extensions (report : Ifko_analysis.Report.t) =
  if extensions && List.length report.Ifko_analysis.Report.prefetch_arrays >= 2 then
    [ false; true ]
  else [ false ]

(* ---- point surgery shared by the strategies ---- *)

module Params = Ifko_transform.Params

let set_pf_dist (p : Params.t) name dist =
  {
    p with
    Params.prefetch =
      List.map
        (fun (a, (s : Params.pf_param)) ->
          if a = name then (a, { s with Params.pf_dist = dist }) else (a, s))
        p.Params.prefetch;
  }

let set_pf_ins (p : Params.t) name ins =
  {
    p with
    Params.prefetch =
      List.map
        (fun (a, (s : Params.pf_param)) ->
          if a = name then (a, { s with Params.pf_ins = ins }) else (a, s))
        p.Params.prefetch;
  }

(* ---- the space as data ---- *)

(** Numeric encoding of the prefetch-instruction dimension (an ordinal
    feature: none < weakest < ... < strongest locality hint). *)
let pf_ins_code = function
  | None -> 0
  | Some Instr.Nta -> 1
  | Some Instr.T0 -> 2
  | Some Instr.T1 -> 3
  | Some Instr.W -> 4

let pf_ins_of_code = function
  | 1 -> Some Instr.Nta
  | 2 -> Some Instr.T0
  | 3 -> Some Instr.T1
  | 4 -> Some Instr.W
  | _ -> None

type axis = {
  ax_name : string;
      (** ["SV"], ["UR"], ["AE"], ["WNT"], ["BF"], ["CISC"],
          ["PF_INS:<array>"] or ["PF_DST:<array>"] *)
  ax_values : float list;  (** encoded legal candidates, in search order *)
  ax_min : float;
  ax_max : float;
  ax_pruned : bool;
      (** the legality oracles / analysis collapsed this axis to its
          sole default value — nothing to search *)
  ax_get : Params.t -> float;
  ax_set : Params.t -> float -> Params.t;
}

(** Every tunable dimension of this (kernel, machine) pair as data:
    domains, pruned flags and numeric encode/decode.  Strategies that
    need the space as a vector (the surrogate model, the warm-start
    fingerprints) and the per-axis sweeps of the linesearch both
    derive from this one definition. *)
let axes ?(extensions = false) ~(cfg : Config.t) ~(report : Ifko_analysis.Report.t) () =
  let axis name values get set =
    {
      ax_name = name;
      ax_values = values;
      ax_min = List.fold_left Float.min infinity values;
      ax_max = List.fold_left Float.max neg_infinity values;
      ax_pruned = List.length (List.sort_uniq compare values) <= 1;
      ax_get = get;
      ax_set = set;
    }
  in
  let of_ints l = List.map float_of_int l in
  let of_bools l = List.map (fun b -> if b then 1.0 else 0.0) l in
  let as_bool v = v >= 0.5 in
  let scalar =
    [ axis "SV"
        (of_bools (sv_candidates report))
        (fun p -> if p.Params.sv then 1.0 else 0.0)
        (fun p v -> { p with Params.sv = as_bool v });
      axis "WNT"
        (of_bools (wnt_candidates report))
        (fun p -> if p.Params.wnt then 1.0 else 0.0)
        (fun p v -> { p with Params.wnt = as_bool v });
      axis "UR"
        (of_ints (unroll_candidates report))
        (fun p -> float_of_int p.Params.unroll)
        (fun p v -> { p with Params.unroll = int_of_float v });
      axis "AE"
        (of_ints (ae_candidates report))
        (fun p -> float_of_int p.Params.ae)
        (fun p v -> { p with Params.ae = int_of_float v });
      axis "BF"
        (of_ints (bf_candidates ~extensions report))
        (fun p -> float_of_int p.Params.bf)
        (fun p v -> { p with Params.bf = int_of_float v });
      axis "CISC"
        (of_bools (cisc_candidates ~extensions report))
        (fun p -> if p.Params.cisc then 1.0 else 0.0)
        (fun p v -> { p with Params.cisc = as_bool v });
    ]
  in
  let per_array =
    List.concat_map
      (fun (m : Ifko_analysis.Ptrinfo.moving) ->
        let name = m.Ifko_analysis.Ptrinfo.array.Ifko_codegen.Lower.a_name in
        let get_pf p = List.assoc_opt name p.Params.prefetch in
        [ axis ("PF_INS:" ^ name)
            (of_ints (List.map pf_ins_code (pf_ins_candidates cfg)))
            (fun p ->
              match get_pf p with
              | Some s -> float_of_int (pf_ins_code s.Params.pf_ins)
              | None -> 0.0)
            (fun p v -> set_pf_ins p name (pf_ins_of_code (int_of_float v)));
          axis ("PF_DST:" ^ name)
            (of_ints (pf_dist_candidates cfg))
            (fun p ->
              match get_pf p with
              | Some s -> float_of_int s.Params.pf_dist
              | None -> 0.0)
            (fun p v -> set_pf_dist p name (int_of_float v));
        ])
      report.Ifko_analysis.Report.prefetch_arrays
  in
  scalar @ per_array
