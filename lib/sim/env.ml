type array_info = { addr : int; len : int; fsize : Instr.fsize }

type binding =
  | Int_arg of int
  | Fp_arg of Instr.fsize * float
  | Array_arg of array_info

type t = {
  memory : Bytes.t;
  stack : int;
  mutable cursor : int;
  mutable array_count : int;
  table : (string, binding) Hashtbl.t;
}

let stack_bytes = 4096

(* Size-keyed pool of zeroed backing buffers.  Building an environment
   used to allocate (and fault in) a fresh multi-hundred-KB Bytes.t per
   measurement; recycling them through a pool turns that into a memset.
   Invariant: every pooled buffer is all-zero — [release] scrubs the
   whole buffer, not just [0, cursor), because the simulator only
   bounds-checks accesses against the buffer length, so a stray
   (kernel-authored) access past the allocation cursor must read the
   same bytes a fresh buffer holds.  Thread-safe: timer measurements
   run concurrently on the probe pool. *)
let pool_mutex = Mutex.create ()
let buf_pools : (int, Bytes.t list ref) Hashtbl.t = Hashtbl.create 7
let max_pooled_buffers = 32

let take_buffer mem_bytes =
  Mutex.lock pool_mutex;
  let buf =
    match Hashtbl.find_opt buf_pools mem_bytes with
    | Some ({ contents = b :: rest } as cell) ->
      cell := rest;
      Some b
    | _ -> None
  in
  Mutex.unlock pool_mutex;
  match buf with Some b -> b | None -> Bytes.make mem_bytes '\000'

let create ?(mem_bytes = 4 * 1024 * 1024) () =
  {
    memory = take_buffer mem_bytes;
    stack = 64;
    cursor = 64 + stack_bytes;
    array_count = 0;
    table = Hashtbl.create 8;
  }

let release t =
  let len = Bytes.length t.memory in
  Bytes.fill t.memory 0 len '\000';
  Hashtbl.reset t.table;
  Mutex.lock pool_mutex;
  (match Hashtbl.find_opt buf_pools len with
  | Some cell -> if List.length !cell < max_pooled_buffers then cell := t.memory :: !cell
  | None -> Hashtbl.add buf_pools len (ref [ t.memory ]));
  Mutex.unlock pool_mutex

let mem t = t.memory
let stack_base t = t.stack
let bind_int t name v = Hashtbl.replace t.table name (Int_arg v)
let bind_fp t name fsize v = Hashtbl.replace t.table name (Fp_arg (fsize, v))

let round_up v align = (v + align - 1) / align * align

let alloc_array t name fsize len =
  (* page-align, then stagger successive arrays by three cache lines so
     they never share L1 sets element-for-element *)
  let base = round_up t.cursor 4096 + (t.array_count * 192) in
  let bytes = len * Instr.fsize_bytes fsize in
  if base + bytes + 64 > Bytes.length t.memory then
    invalid_arg "Env.alloc_array: out of simulated memory";
  t.cursor <- base + bytes;
  t.array_count <- t.array_count + 1;
  Hashtbl.replace t.table name (Array_arg { addr = base; len; fsize })

let binding t name = Hashtbl.find t.table name
let bindings t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []

let array_exn t name =
  match Hashtbl.find_opt t.table name with
  | Some (Array_arg a) -> a
  | _ -> invalid_arg (Printf.sprintf "Env: %S is not a bound array" name)

let set_elem t name i v =
  let a = array_exn t name in
  if i < 0 || i >= a.len then invalid_arg "Env.set_elem: index out of bounds";
  match a.fsize with
  | Instr.D -> Bytes.set_int64_le t.memory (a.addr + (8 * i)) (Int64.bits_of_float v)
  | Instr.S -> Bytes.set_int32_le t.memory (a.addr + (4 * i)) (Int32.bits_of_float v)

let get_elem t name i =
  let a = array_exn t name in
  if i < 0 || i >= a.len then invalid_arg "Env.get_elem: index out of bounds";
  match a.fsize with
  | Instr.D -> Int64.float_of_bits (Bytes.get_int64_le t.memory (a.addr + (8 * i)))
  | Instr.S -> Int32.float_of_bits (Bytes.get_int32_le t.memory (a.addr + (4 * i)))

(* One binding lookup for the whole array, then straight-line stores —
   timer paths rebuild environments constantly, so the per-element
   [set_elem] lookup was pure overhead.  Writes the exact bytes
   [set_elem] writes. *)
let fill t name f =
  let a = array_exn t name in
  match a.fsize with
  | Instr.D ->
    for i = 0 to a.len - 1 do
      Bytes.set_int64_le t.memory (a.addr + (8 * i)) (Int64.bits_of_float (f i))
    done
  | Instr.S ->
    for i = 0 to a.len - 1 do
      Bytes.set_int32_le t.memory (a.addr + (4 * i)) (Int32.bits_of_float (f i))
    done

let to_array t name =
  let a = array_exn t name in
  Array.init a.len (get_elem t name)

(* Phase controls for the sampled timer: one env built for the whole
   warm-up + detailed-window range serves both phases.  [set_counts]
   rebinds every integer argument — in every timer spec the integer
   arguments are exactly the element counts (BLAS binds "N"; generic
   kernels bind each int parameter to the problem size) — and
   [advance] slides every array forward past the elements the warm-up
   consumed, so the window run continues the same address streams. *)
let set_counts t n =
  Hashtbl.filter_map_inplace
    (fun _ b -> match b with Int_arg _ -> Some (Int_arg n) | b -> Some b)
    t.table

let advance t ~elems =
  Hashtbl.filter_map_inplace
    (fun name b ->
      match b with
      | Array_arg a ->
        if elems < 0 || elems >= a.len then
          invalid_arg
            (Printf.sprintf "Env.advance: %d elements exceeds array %S (%d)" elems
               name a.len);
        Some
          (Array_arg
             {
               addr = a.addr + (elems * Instr.fsize_bytes a.fsize);
               len = a.len - elems;
               fsize = a.fsize;
             })
      | b -> Some b)
    t.table

(* Pristine-image masters.  A timer spec's [make_env] draws its fill
   values from a stateful RNG shared across arrays, so re-filling pages
   lazily (or per-array) would reorder the draws and change the data.
   Instead the timers build the spec's env once, [capture] its pristine
   image — every byte written so far lives in [0, cursor) — and
   [materialize] later copies that image into a pooled zeroed buffer of
   the same size.  Bytes beyond the cursor are zero in both the fresh
   and the materialized env, so the two are indistinguishable to the
   simulator, at the cost of one blit instead of re-running the fills
   (and, for BLAS, re-consuming the vector memo). *)
type master = {
  m_image : Bytes.t;
  m_bindings : (string * binding) list;
  m_cursor : int;
  m_array_count : int;
  m_mem_bytes : int;
}

let capture t =
  {
    m_image = Bytes.sub t.memory 0 t.cursor;
    m_bindings = bindings t;
    m_cursor = t.cursor;
    m_array_count = t.array_count;
    m_mem_bytes = Bytes.length t.memory;
  }

let materialize m =
  let t = create ~mem_bytes:m.m_mem_bytes () in
  Bytes.blit m.m_image 0 t.memory 0 (Bytes.length m.m_image);
  List.iter (fun (k, v) -> Hashtbl.replace t.table k v) m.m_bindings;
  t.cursor <- m.m_cursor;
  t.array_count <- m.m_array_count;
  t

let iter_array_lines t ~line f =
  Hashtbl.iter
    (fun _ b ->
      match b with
      | Array_arg a ->
        let first = a.addr / line and last = (a.addr + (a.len * Instr.fsize_bytes a.fsize) - 1) / line in
        for l = first to last do
          f (l * line)
        done
      | Int_arg _ | Fp_arg _ -> ())
    t.table
