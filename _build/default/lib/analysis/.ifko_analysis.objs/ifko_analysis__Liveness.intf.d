lib/analysis/liveness.mli: Block Cfg Instr Reg
