open Ifko_transform
module Store = Ifko_store.Store
module Json = Store.Json

type donor = {
  d_kernel : string;
  d_feat : (string * float) list;
  d_params : Params.t;
  d_mflops : float;
}

let feat_json feat = Json.O (List.map (fun (k, v) -> (k, Json.N v)) feat)

let feat_of_json = function
  | Json.O kvs ->
    Some (List.filter_map (function k, Json.N v -> Some (k, v) | _ -> None) kvs)
  | _ -> None

(* A tune-level journal entry becomes a donor only if it carries the
   full learned payload: a parseable winning point, the kernel name and
   the analysis fingerprint.  Entries journaled before the fingerprint
   existed (or corrupted ones) simply yield [None] — the natural
   invalidation rule: no fingerprint, no warm start. *)
let donor_of_entry ~params ~prov (outcome : Store.outcome) =
  match outcome with
  | Store.Timed { mflops; _ } when Store.is_tune_prov prov -> (
    match Json.parse params with
    | exception Json.Bad -> None
    | fields -> (
      match
        ( Json.str fields "best",
          Json.str fields "kernel",
          Option.bind (List.assoc_opt "feat" fields) feat_of_json )
      with
      | Some best, Some kernel, Some feat -> (
        match Params.of_canonical best with
        | exception Failure _ -> None
        | p -> Some { d_kernel = kernel; d_feat = feat; d_params = p; d_mflops = mflops })
      | _ -> None))
  | Store.Timed _ | Store.Test_failed | Store.Illegal -> None

let donors_of_store st =
  List.rev
    (Store.fold_entries st ~init:[] ~f:(fun acc ~key:_ ~params ~prov outcome ->
         match donor_of_entry ~params ~prov outcome with
         | Some d -> d :: acc
         | None -> acc))

(* Scale-free squared distance over the union of feature names: each
   dimension's difference is normalized by its own magnitude, so
   max_unroll (~128) cannot drown out a legality bit, and vectors from
   different fingerprint versions still compare over the names they
   share (absent names read as 0). *)
let distance a b =
  let names = List.sort_uniq compare (List.map fst a @ List.map fst b) in
  List.fold_left
    (fun acc k ->
      let va = Option.value (List.assoc_opt k a) ~default:0.0 in
      let vb = Option.value (List.assoc_opt k b) ~default:0.0 in
      let d = (va -. vb) /. (1.0 +. Float.abs va +. Float.abs vb) in
      acc +. (d *. d))
    0.0 names

(* Re-express a donor's winning point in the target kernel's space:
   prefetch settings remap positionally onto the target's arrays (the
   donor's array names mean nothing here), distances snap to the target
   machine's grid, and every axis the target's legality oracles pruned
   falls back to the target default — an adapted seed is always a point
   the pipeline will accept. *)
let adapt ?(extensions = false) ~cfg ~report ~init (d : donor) =
  let p = d.d_params in
  let mem v cands fallback = if List.mem v cands then v else fallback in
  let pf_dists = Space.pf_dist_candidates cfg in
  let pf_inss = Space.pf_ins_candidates cfg in
  let nearest_dist v =
    match pf_dists with
    | [] -> 0
    | d0 :: rest ->
      List.fold_left (fun best c -> if abs (c - v) < abs (best - v) then c else best)
        d0 rest
  in
  let donor_pf = List.map snd p.Params.prefetch in
  let prefetch =
    List.mapi
      (fun i (name, (dflt : Params.pf_param)) ->
        match List.nth_opt donor_pf i with
        | Some (s : Params.pf_param) ->
          let pf_ins =
            if List.mem s.Params.pf_ins pf_inss then s.Params.pf_ins
            else dflt.Params.pf_ins
          in
          let pf_dist =
            if pf_ins = None then 0 else nearest_dist s.Params.pf_dist
          in
          (name, { Params.pf_ins; pf_dist })
        | None -> (name, dflt))
      init.Params.prefetch
  in
  {
    init with
    Params.sv = mem p.Params.sv (Space.sv_candidates report) init.Params.sv;
    unroll = mem p.Params.unroll (Space.unroll_candidates report) init.Params.unroll;
    ae = mem p.Params.ae (Space.ae_candidates report) init.Params.ae;
    wnt = mem p.Params.wnt (Space.wnt_candidates report) init.Params.wnt;
    bf = mem p.Params.bf (Space.bf_candidates ~extensions report) init.Params.bf;
    cisc = mem p.Params.cisc (Space.cisc_candidates ~extensions report) init.Params.cisc;
    prefetch;
  }

let seeds ?(extensions = false) ?(k = 2) ~cfg ~report ~init ~feat donors =
  let ranked =
    List.sort
      (fun ((da : float), a) (db, b) ->
        match compare da db with
        | 0 -> (
          match compare a.d_kernel b.d_kernel with
          | 0 -> compare (Params.canonical a.d_params) (Params.canonical b.d_params)
          | c -> c)
        | c -> c)
      (List.map (fun d -> (distance feat d.d_feat, d)) donors)
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (_, d) ->
      let p = adapt ~extensions ~cfg ~report ~init d in
      let c = Params.canonical p in
      if Hashtbl.mem seen c then None
      else begin
        Hashtbl.replace seen c ();
        Some p
      end)
    (take k ranked)
