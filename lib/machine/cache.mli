(** Set-associative cache with true-LRU replacement and write-back /
    write-allocate policy.

    Lookups never allocate: the surrounding {!Memsys} decides when a
    line is actually installed (demand fills arrive only after the
    memory latency has elapsed, so installation is explicit), and what
    each event costs. *)

type t

val create : Config.cache_level -> t
val line_bytes : t -> int

val line_base : t -> int -> int
(** [line_base t addr] is the base address of the line containing
    [addr] (a shift/mask when the line size is a power of two). *)

val access : t -> addr:int -> write:bool -> bool
(** [access t ~addr ~write] is [true] on a hit (updating LRU and the
    dirty bit).  On a miss nothing changes except the statistics. *)

val probe : t -> addr:int -> bool
(** Non-destructive presence test (no LRU update, no statistics). *)

val insert : t -> addr:int -> write:bool -> int option
(** Install the line containing [addr] (marking it dirty when [write]).
    Returns the byte address of a dirty line that had to be evicted, if
    any.  Installing a present line just updates LRU/dirty. *)

val invalidate : t -> addr:int -> bool
(** Drop the line if present; returns whether it was dirty. *)

val flush : t -> unit
(** Empty the cache (the timers' out-of-cache context). *)

val dirty_lines : t -> int
(** Number of valid dirty lines currently held. *)

val stats : t -> int * int
(** [(hits, misses)] accumulated by {!access}. *)

val reset_stats : t -> unit
