(** Per-pass validation for the transformation pipeline.

    The paper's search only works because every candidate kernel is
    verified before it is timed; a transform bug otherwise either
    crashes the search point (wasting budget) or — far worse — yields a
    wrong-but-valid kernel the line search happily "tunes".  This
    module localizes such bugs to the exact pass that introduced them,
    two ways:

    - {b lint}: after each pass the {!Ifko_analysis.Lint} suite runs;
      any error-severity diagnostic fails the pass.
    - {b translation validation}: the kernel is executed (functionally,
      no timing model) on a small deterministic random workload before
      the pipeline starts, and re-executed after each pass; any output
      divergence beyond the FP-reassociation tolerance fails the pass.

    Both failures raise {!Pass_failed} carrying the pass name. *)

open Ifko_codegen

(** Captured observable behavior of one kernel run: the return value
    and the full contents of every array parameter. *)
type outputs = {
  ret : Ifko_sim.Exec.ret_val option;
  arrays : (string * float array) list;
}

type t = {
  envs : (unit -> Ifko_sim.Env.t) list;
      (** deterministic workload builders: calling one twice must
          produce identical initial environments *)
  ret_fsize : Instr.fsize;
  tol : float;  (** relative tolerance for FP output comparison *)
  line_bytes : int;  (** prefetchable-cache line size, for IFK007 *)
}

type failure =
  | Lint of Ifko_analysis.Diag.t list  (** error-severity diagnostics *)
  | Semantics of string  (** translation-validation divergence *)

exception Pass_failed of { pass : string; failure : failure }

let failure_to_string = function
  | Lint diags -> Ifko_analysis.Diag.list_to_string diags
  | Semantics msg -> msg

let describe = function
  | Pass_failed { pass; failure } ->
    Some (Printf.sprintf "pass %s broke the kernel:\n%s" pass (failure_to_string failure))
  | _ -> None

let of_envs ?(tol = 1e-4) ~line_bytes ~ret_fsize envs = { envs; ret_fsize; tol; line_bytes }

(** [generic ~line_bytes compiled] builds a workload from the kernel's
    own signature: every int parameter bound to the problem size, every
    fp scalar to 0.77, every pointer to a seeded random vector — the
    same convention as the library's BLAS workloads. *)
let generic ?(sizes = [ 5; 34 ]) ?tol ~line_bytes (compiled : Lower.compiled) =
  let ret_fsize =
    match compiled.Lower.arrays with a :: _ -> a.Lower.a_elem | [] -> Instr.D
  in
  let make n () =
    let bytes =
      max (1 lsl 20) ((List.length compiled.Lower.arrays * n * 8) + (1 lsl 16))
    in
    let env = Ifko_sim.Env.create ~mem_bytes:bytes () in
    let rng = Ifko_util.Rng.create (n + 17) in
    List.iter
      (fun (p : Ifko_hil.Ast.param) ->
        let name = p.Ifko_hil.Ast.p_name in
        match p.Ifko_hil.Ast.p_ty with
        | Ifko_hil.Ast.Int -> Ifko_sim.Env.bind_int env name n
        | Ifko_hil.Ast.Fp fp ->
          let sz =
            match fp with Ifko_hil.Ast.Single -> Instr.S | Ifko_hil.Ast.Double -> Instr.D
          in
          Ifko_sim.Env.bind_fp env name sz 0.77
        | Ifko_hil.Ast.Ptr fp ->
          let sz =
            match fp with Ifko_hil.Ast.Single -> Instr.S | Ifko_hil.Ast.Double -> Instr.D
          in
          Ifko_sim.Env.alloc_array env name sz n;
          Ifko_sim.Env.fill env name (fun _ -> Ifko_util.Rng.sign_float rng 1.0))
      compiled.Lower.source.Ifko_hil.Ast.k_params;
    env
  in
  of_envs ?tol ~line_bytes ~ret_fsize (List.map make sizes)

(** [capture t ~pass compiled] runs the kernel on every workload and
    records its observable outputs.  A trap is attributed to [pass]. *)
let capture t ~pass (compiled : Lower.compiled) =
  let cf = Ifko_sim.Exec.compile compiled.Lower.func in
  List.map
    (fun make ->
      let env = make () in
      match Ifko_sim.Exec.exec ~ret_fsize:t.ret_fsize cf env with
      | exception Ifko_sim.Exec.Trap msg ->
        raise (Pass_failed { pass; failure = Semantics (Printf.sprintf "trap: %s" msg) })
      | r ->
        {
          ret = r.Ifko_sim.Exec.ret;
          arrays =
            List.map
              (fun (a : Lower.array_param) ->
                (a.Lower.a_name, Ifko_sim.Env.to_array env a.Lower.a_name))
              compiled.Lower.arrays;
        })
    t.envs

let diff_outputs t ~workload (reference : outputs) (got : outputs) =
  let close = Ifko_sim.Verify.close ~tol:t.tol in
  let problem = ref None in
  let note fmt =
    Printf.ksprintf (fun msg -> if !problem = None then problem := Some msg) fmt
  in
  (match (reference.ret, got.ret) with
  | None, None -> ()
  | Some (Ifko_sim.Exec.Rint a), Some (Ifko_sim.Exec.Rint b) ->
    if a <> b then note "workload %d: return %d, expected %d" workload b a
  | Some (Ifko_sim.Exec.Rfp a), Some (Ifko_sim.Exec.Rfp b) ->
    if not (close a b) then note "workload %d: return %.17g, expected %.17g" workload b a
  | _ -> note "workload %d: return-value kind changed" workload);
  List.iter2
    (fun (name, ref_a) (_, got_a) ->
      if Array.length ref_a <> Array.length got_a then
        note "workload %d: array %s changed length" workload name
      else
        Array.iteri
          (fun i r ->
            if !problem = None && not (close r got_a.(i)) then
              note "workload %d: %s[%d] = %.17g, expected %.17g" workload name i got_a.(i) r)
          ref_a)
    reference.arrays got.arrays;
  !problem

(** [verify t ~pass ~reference compiled] runs the lint suite and the
    translation validation against [reference] (the outputs captured
    before the pipeline started), raising {!Pass_failed} naming [pass]
    on the first invariant it broke. *)
let verify t ~pass ~reference (compiled : Lower.compiled) =
  let diags =
    Ifko_analysis.Lint.check ~pass ~line_bytes:t.line_bytes compiled
  in
  (match Ifko_analysis.Diag.errors diags with
  | [] -> ()
  | errs -> raise (Pass_failed { pass; failure = Lint errs }));
  let got = capture t ~pass compiled in
  List.iteri
    (fun i (r, g) ->
      match diff_outputs t ~workload:i r g with
      | None -> ()
      | Some msg -> raise (Pass_failed { pass; failure = Semantics msg }))
    (List.combine reference got)
