type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  mutable aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title headers =
  let n = List.length headers in
  let aligns = Array.make (max n 1) Right in
  if n > 0 then aligns.(0) <- Left;
  { title; headers; aligns; rows = [] }

let set_align t i a = t.aligns.(i) <- a

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad t.aligns.(i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  hline ();
  emit_cells t.headers;
  hline ();
  List.iter (function Cells c -> emit_cells c | Sep -> hline ()) rows;
  hline ();
  Buffer.contents buf

let cell_f1 x = Printf.sprintf "%.1f" x
let cell_pct x = Printf.sprintf "%.1f%%" x

let bar ~width ~frac =
  let frac = Float.max 0.0 (Float.min 1.0 frac) in
  let n = int_of_float (Float.round (frac *. float_of_int width)) in
  String.make n '#' ^ String.make (width - n) ' '
