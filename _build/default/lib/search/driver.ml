open Ifko_machine

type tuned = {
  report : Ifko_analysis.Report.t;
  default_params : Ifko_transform.Params.t;
  best_params : Ifko_transform.Params.t;
  fko_mflops : float;
  ifko_mflops : float;
  best_func : Cfg.func;
  contributions : (string * float) list;
  evaluations : int;
}

let compile_point ~cfg compiled params =
  let c =
    Ifko_transform.Pipeline.apply ~line_bytes:cfg.Config.prefetchable_line compiled params
  in
  c.Ifko_codegen.Lower.func

let tune ?(extensions = false) ~cfg ~context ~spec ~n ~flops_per_n ~test compiled =
  let report = Ifko_analysis.Report.analyze compiled in
  let default_params =
    Ifko_transform.Params.default ~line_bytes:cfg.Config.prefetchable_line report
  in
  let probe params =
    match compile_point ~cfg compiled params with
    | exception _ -> neg_infinity (* an illegal point is just skipped *)
    | func ->
      if not (test func) then neg_infinity
      else
        let cycles = Ifko_sim.Timer.measure ~cfg ~context ~spec ~n func in
        Ifko_sim.Timer.mflops ~cfg ~flops_per_n ~n ~cycles
  in
  let result = Linesearch.run ~extensions ~cfg ~report ~init:default_params probe in
  {
    report;
    default_params;
    best_params = result.Linesearch.best;
    fko_mflops = result.Linesearch.start_perf;
    ifko_mflops = result.Linesearch.best_perf;
    best_func = compile_point ~cfg compiled result.Linesearch.best;
    contributions = result.Linesearch.contributions;
    evaluations = result.Linesearch.evaluations;
  }
