lib/transform/simd.mli: Ifko_codegen
