lib/transform/copyprop.ml: Block Cfg Hashtbl Instr List Reg
