open Ifko_codegen
open Ifko_analysis

(* Is [reg] one of the moving array pointers? *)
let moving_stride moving reg =
  List.find_map
    (fun (m : Ptrinfo.moving) ->
      if Reg.equal m.Ptrinfo.array.Lower.a_reg reg then Some m.Ptrinfo.stride else None)
    moving

let bump_of moving i =
  match i with
  | Instr.Iop (Instr.Iadd, d, s, Instr.Oimm k) when Reg.equal d s -> (
    match moving_stride moving d with Some _ -> Some (d, k) | None -> None)
  | _ -> None

(* Unroll a straight-line body: concatenate [n_u] copies, folding
   pointer bumps into displacements; emit one bump per pointer at the
   end.  [index] (the HIL loop index) is rewritten to a per-copy
   adjusted temporary when the body reads it. *)
let unroll_straightline f (ln : Loopnest.t) moving body n_u =
  let uses_index r i = List.exists (Reg.equal r) (Instr.uses i) in
  let index_used =
    match ln.Loopnest.index with
    | None -> false
    | Some idx -> List.exists (uses_index idx) body.Block.instrs
  in
  let offsets : (int, Reg.t * int) Hashtbl.t = Hashtbl.create 4 in
  let offset_of (r : Reg.t) =
    match Hashtbl.find_opt offsets r.Reg.id with Some (_, d) -> d | None -> 0
  in
  let shift_mem (m : Instr.mem) =
    let d = offset_of m.Instr.base in
    if d = 0 then m else { m with Instr.disp = m.Instr.disp + d }
  in
  let out = ref [] in
  let emit i = out := i :: !out in
  for copy = 0 to n_u - 1 do
    (* Per-copy index adjustment, only when the body reads the index. *)
    let subst =
      match (ln.Loopnest.index, index_used, copy) with
      | Some idx, true, c when c > 0 ->
        let t = Cfg.fresh_reg f Reg.Gpr in
        emit (Instr.Iop (Instr.Iadd, t, idx, Instr.Oimm (c * ln.Loopnest.step)));
        fun r -> if Reg.equal r idx then t else r
      | _ -> fun r -> r
    in
    List.iter
      (fun i ->
        match bump_of moving i with
        | Some (p, k) -> Hashtbl.replace offsets p.Reg.id (p, offset_of p + k)
        | None ->
          let i = Instr.map_regs subst i in
          let i =
            match i with
            | Instr.Ild (d, m) -> Instr.Ild (d, shift_mem m)
            | Instr.Ist (m, s) -> Instr.Ist (shift_mem m, s)
            | Instr.Lea (d, m) -> Instr.Lea (d, shift_mem m)
            | Instr.Fld (sz, d, m) -> Instr.Fld (sz, d, shift_mem m)
            | Instr.Fst (sz, m, s) -> Instr.Fst (sz, shift_mem m, s)
            | Instr.Fstnt (sz, m, s) -> Instr.Fstnt (sz, shift_mem m, s)
            | Instr.Fopm (sz, op, d, a, m) -> Instr.Fopm (sz, op, d, a, shift_mem m)
            | Instr.Vld (sz, d, m) -> Instr.Vld (sz, d, shift_mem m)
            | Instr.Vst (sz, m, s) -> Instr.Vst (sz, shift_mem m, s)
            | Instr.Vstnt (sz, m, s) -> Instr.Vstnt (sz, shift_mem m, s)
            | Instr.Vopm (sz, op, d, a, m) -> Instr.Vopm (sz, op, d, a, shift_mem m)
            | Instr.Prefetch (k, m) -> Instr.Prefetch (k, shift_mem m)
            | i -> i
          in
          emit i)
      body.Block.instrs
  done;
  (* Single pointer update per array at the end of the unrolled body;
     [offsets] already accumulated the bumps of every copy. *)
  let bumps =
    Hashtbl.fold (fun _ (reg, total) acc -> (reg, total) :: acc) offsets []
    |> List.sort (fun (a, _) (b, _) -> compare a.Reg.id b.Reg.id)
  in
  List.iter
    (fun ((reg : Reg.t), total) -> emit (Instr.Iop (Instr.Iadd, reg, reg, Instr.Oimm total)))
    bumps;
  body.Block.instrs <- List.rev !out

(* Generic unrolling by block duplication for bodies with internal
   control flow.  Copy [c]'s edges to the latch are redirected to copy
   [c+1]'s entry; per-copy pointer bumps are retained. *)
let unroll_blocks f (ln : Loopnest.t) n_u =
  let body_labels = Loopnest.body_labels f ln in
  let blocks = List.filter_map (Cfg.find_block f) body_labels in
  let entry_label =
    let header = Cfg.find_block_exn f ln.Loopnest.header in
    match header.Block.term with
    | Block.Br { ifnot; _ } -> ifnot
    | _ -> invalid_arg "Unroll: malformed loop header"
  in
  let index_used_by b r =
    List.exists (fun i -> List.exists (Reg.equal r) (Instr.uses i)) b.Block.instrs
    || List.exists (Reg.equal r) (Block.term_uses b.Block.term)
  in
  (* Build copies last-to-first so each copy can point at the next. *)
  let next_entry = ref ln.Loopnest.latch in
  let copies = ref [] in
  for copy = n_u - 1 downto 1 do
    let clones, mapping = Loopnest.clone_blocks f ~suffix:(Printf.sprintf "_u%d" copy) blocks in
    let centry = List.assoc entry_label mapping in
    (* Redirect latch edges to the next copy (or the real latch). *)
    let target = !next_entry in
    List.iter
      (fun b ->
        b.Block.term <-
          Block.map_term_labels
            (fun l -> if l = ln.Loopnest.latch then target else l)
            b.Block.term)
      clones;
    (* Per-copy index adjustment when the body reads the index. *)
    (match ln.Loopnest.index with
    | Some idx when List.exists (fun b -> index_used_by b idx) blocks ->
      let t = Cfg.fresh_reg f Reg.Gpr in
      let subst r = if Reg.equal r idx then t else r in
      List.iter
        (fun b ->
          b.Block.instrs <- List.map (Instr.map_regs subst) b.Block.instrs;
          b.Block.term <- Block.map_term_regs subst b.Block.term)
        clones;
      let first = List.find (fun b -> b.Block.label = centry) clones in
      Edit.prepend_instrs first
        [ Instr.Iop (Instr.Iadd, t, idx, Instr.Oimm (copy * ln.Loopnest.step)) ]
    | _ -> ());
    copies := clones @ !copies;
    next_entry := centry
  done;
  (* Copy 0 is the original body: its latch edges go to copy 1. *)
  if n_u > 1 then begin
    let target = !next_entry in
    List.iter
      (fun b ->
        b.Block.term <-
          Block.map_term_labels
            (fun l -> if l = ln.Loopnest.latch then target else l)
            b.Block.term)
      blocks
  end;
  (match List.rev body_labels with
  | last :: _ -> Cfg.insert_after f ~after:last !copies
  | [] -> invalid_arg "Unroll: loop has no body blocks")

let apply (compiled : Lower.compiled) n_u =
  match compiled.Lower.loopnest with
  | None -> Ok ()
  | Some _ when n_u <= 1 -> Ok ()
  | Some ln -> (
    (* the oracle refuses when the loop bookkeeping is stale or the
       syntactic strides contradict the inferred congruence — the
       conditions under which bump folding would corrupt addresses *)
    match Legality.unroll (Legality.analyze compiled) with
    | Error d -> Error d
    | Ok () ->
      let f = compiled.Lower.func in
      Loopnest.materialize_cleanup f ln;
      let moving = Ptrinfo.analyze compiled in
      (match Loopnest.body_labels f ln with
      | [ body_label ]
        when (Cfg.find_block_exn f body_label).Block.term = Block.Jmp ln.Loopnest.latch ->
        unroll_straightline f ln moving (Cfg.find_block_exn f body_label) n_u
      | _ -> unroll_blocks f ln n_u);
      ln.Loopnest.per_iter <- ln.Loopnest.per_iter * n_u;
      ln.Loopnest.unrolled <- n_u;
      Loopnest.refresh_loop_control f ln;
      Ok ())
