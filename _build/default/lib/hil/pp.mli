(** Pretty-printer for HIL kernels.

    [Pp.kernel_to_string k] renders a kernel in the concrete syntax
    accepted by {!Parser.parse_kernel}; parsing the output yields a
    kernel equal to the input (a property the test suite checks). *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val kernel_to_string : Ast.kernel -> string
