(** The evaluation harness: reruns the paper's experiments.

    One {!study} gathers, for a machine/context pair, every tuning
    method's performance on all fourteen kernels — exactly the data
    behind the paper's Figures 2-4 — plus the searched parameters
    (Table 3) and the per-transformation speedup decomposition
    (Figure 7).  The figure/table renderers in {!Figures} consume
    studies. *)

type method_id = Gcc_ref | Icc_ref | Icc_prof | Atlas | Fko | Ifko

val method_name : method_id -> string
val methods : method_id list

type kernel_result = {
  kernel : Ifko_blas.Defs.kernel_id;
  display_name : string;  (** ATLAS winner's [*] suffix applies here *)
  mflops : (method_id * float) list;
  atlas_candidate : string;  (** which hand-tuned implementation won *)
  tuned : Ifko_search.Driver.tuned;  (** the full ifko search result *)
  verified : bool;  (** every method's kernel passed the tester *)
}

type study = {
  cfg : Ifko_machine.Config.t;
  context : Ifko_sim.Timer.context;
  n : int;
  seed : int;
  results : kernel_result list;
}

val run_study :
  ?kernels:Ifko_blas.Defs.kernel_id list ->
  ?progress:(string -> unit) ->
  ?store:Ifko_store.Store.t ->
  ?jobs:int ->
  cfg:Ifko_machine.Config.t ->
  context:Ifko_sim.Timer.context ->
  n:int ->
  seed:int ->
  unit ->
  study
(** Tune and time everything.  [progress] receives one line per kernel
    (the studies take tens of seconds; the bench uses this to narrate).
    [store] journals every probe and baseline timing persistently, so a
    rerun of the same study is answered from disk; [jobs] parallelizes
    the ifko search's probe evaluation (see {!Ifko_search.Driver.tune}
    — results are bit-identical for any [jobs]). *)

val best_mflops : kernel_result -> float
(** The best performance any method achieved on this kernel (the 100%
    reference of the relative figures). *)

val percent : kernel_result -> method_id -> float
(** A method's performance as a percentage of the best. *)

val average_percent : study -> method_id -> float
(** The figures' AVG column. *)

val vector_average_percent : study -> method_id -> float
(** The figures' VAVG column: the average over operations where SIMD
    vectorization was successfully applied (i.e. excluding iamax). *)
