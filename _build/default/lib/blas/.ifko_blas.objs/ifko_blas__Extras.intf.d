lib/blas/extras.mli: Ifko_codegen Ifko_sim Instr
