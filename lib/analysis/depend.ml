(** Affine dependence analysis for the tunable loop nest.

    On top of {!Absint}'s interval-with-stride values this module
    recovers, for every memory access in the loop, an {e affine index
    expression} [byte offset = stride * iter + disp] relative to the
    base of one array parameter, then runs the classical GCD and
    Banerjee tests on every pair of references that could conflict,
    producing distance/direction vectors (the loop nest is one loop
    deep, so each vector has a single entry).

    Aliasing follows the HIL contract: distinct pointer parameters
    never overlap (the Fortran rule) unless one of them carries the
    [MAYALIAS] mark-up, in which case nothing can be proven and every
    pair involving it is reported {!Unknown} — the fail-closed
    verdict {!Legality} turns into a transform rejection. *)

open Ifko_codegen

type affine = { stride : int; disp : int }
(** byte offset from the array base at loop entry: [stride*iter + disp] *)

type access = {
  array : Lower.array_param option;  (** [None]: not provably any array *)
  block : string;
  instr : int;
  store : bool;
  width : int;  (** bytes touched *)
  faulting : bool;  (** software prefetches never fault *)
  pairable : bool;  (** prefetch/touch data is discarded: no dependence *)
  guarded : bool;  (** on a conditional path: may not run every iteration *)
  affine : affine option;
}

type dir = Lt | Eq | Gt | Star

type relation =
  | Independent
  | Dependent of { distance : int option; dir : dir }
  | Unknown of string

type pair = { src : access; dst : access; relation : relation }

type t = {
  has_loop : bool;  (** a fresh, analyzable loop nest was found *)
  stale : bool;  (** a loop nest was marked but its labels are stale *)
  trips : int option;  (** constant trip count, when provable *)
  accesses : access list;
  pairs : pair list;
      (** every evaluated pair: same array or may-aliased arrays, at
          least one side a store, in lexical order *)
  nonaffine : access list;  (** faulting accesses with no affine form *)
}

let dir_to_string = function Lt -> "<" | Eq -> "=" | Gt -> ">" | Star -> "*"

let relation_to_string = function
  | Independent -> "independent"
  | Dependent { distance = Some k; dir } ->
    Printf.sprintf "distance %d (%s)" k (dir_to_string dir)
  | Dependent { distance = None; dir } ->
    Printf.sprintf "distance unknown (%s)" (dir_to_string dir)
  | Unknown why -> Printf.sprintf "unknown (%s)" why

let access_name (a : access) =
  Printf.sprintf "%s %s at %s:%d"
    (if a.store then "store" else "load")
    (match a.array with Some p -> p.Lower.a_name | None -> "?")
    a.block a.instr

(* ---------- loop-body control flow ---------- *)

(** The loop body is acyclic once the back edge into the header is
    removed; reachability over that DAG answers both "does this block
    run every iteration" and "can this definition affect that block's
    entry state". *)
let loop_dag (blocks : Block.t list) =
  let by_label = Hashtbl.create 8 in
  List.iter (fun (b : Block.t) -> Hashtbl.replace by_label b.Block.label b) blocks;
  let header = match blocks with b :: _ -> b.Block.label | [] -> "" in
  let succs l =
    match Hashtbl.find_opt by_label l with
    | None -> []
    | Some b ->
      List.filter
        (fun s -> s <> header && Hashtbl.mem by_label s)
        (Block.successors b.Block.term)
  in
  (* non-empty path [src -> dst] avoiding [avoiding] *)
  let reaches ?avoiding src dst =
    let seen = Hashtbl.create 8 in
    let rec go l =
      if avoiding = Some l then false
      else if l = dst then true
      else if Hashtbl.mem seen l then false
      else begin
        Hashtbl.replace seen l ();
        List.exists go (succs l)
      end
    in
    List.exists go (succs src)
  in
  let latch =
    match List.rev blocks with b :: _ -> b.Block.label | [] -> ""
  in
  let always l =
    l = header || l = latch || not (reaches header latch ~avoiding:l)
  in
  (reaches, always)

(* ---------- per-iteration register deltas ---------- *)

(** [deltas ~always blocks] classifies every GPR the loop touches:
    [Some k] if its only in-loop definitions are unconditional
    self-increments summing to [k] per iteration (the basic induction
    variables: pointers, the index, the trip counter), [None] if any
    other — or any conditionally executed — definition reaches it. *)
let deltas ~always (blocks : Block.t list) =
  let tbl : (int, int option) Hashtbl.t = Hashtbl.create 16 in
  let bump (r : Reg.t) k =
    match Hashtbl.find_opt tbl r.Reg.id with
    | Some None -> ()
    | Some (Some d) -> Hashtbl.replace tbl r.Reg.id (Some (d + k))
    | None -> Hashtbl.replace tbl r.Reg.id (Some k)
  in
  let poison (r : Reg.t) = Hashtbl.replace tbl r.Reg.id None in
  List.iter
    (fun (b : Block.t) ->
      let bump = if always b.Block.label then bump else fun r _ -> poison r in
      List.iter
        (fun i ->
          match i with
          | Instr.Iop (Instr.Iadd, d, s, Instr.Oimm k) when Reg.equal d s -> bump d k
          | Instr.Iop (Instr.Isub, d, s, Instr.Oimm k) when Reg.equal d s -> bump d (-k)
          | i -> List.iter (fun r -> if r.Reg.cls = Reg.Gpr then poison r) (Instr.defs i))
        b.Block.instrs;
      match b.Block.term with
      | Block.Br { lhs; dec; _ } when dec > 0 -> bump lhs (-dec)
      | _ -> ())
    blocks;
  fun (r : Reg.t) ->
    match Hashtbl.find_opt tbl r.Reg.id with
    | Some d -> d  (* None = poisoned *)
    | None -> Some 0  (* never defined in the loop: invariant *)

(** Loop blocks in which [r] is (re)defined. *)
let def_blocks (blocks : Block.t list) (r : Reg.t) =
  List.filter_map
    (fun b ->
      let in_instrs =
        List.exists (fun i -> List.exists (Reg.equal r) (Instr.defs i)) b.Block.instrs
      in
      let in_term = List.exists (Reg.equal r) (Block.term_defs b.Block.term) in
      if in_instrs || in_term then Some b.Block.label else None)
    blocks

(* ---------- intra-iteration symbolic evaluation ---------- *)

(** A linear form over block-entry register values plus a constant. *)
type lin = { parts : (Reg.t * int) list; const : int }

let lin_of_reg r = { parts = [ (r, 1) ]; const = 0 }
let lin_const k = { parts = []; const = k }

let lin_add a b =
  let parts =
    List.fold_left
      (fun acc (r, c) ->
        let rec merge = function
          | [] -> [ (r, c) ]
          | ((r', c') as hd) :: tl ->
            if Reg.equal r r' then
              if c + c' = 0 then tl else (r', c + c') :: tl
            else hd :: merge tl
        in
        merge acc)
      a.parts b.parts
  in
  { parts; const = a.const + b.const }

let lin_scale k l =
  if k = 0 then lin_const 0
  else { parts = List.map (fun (r, c) -> (r, k * c)) l.parts; const = k * l.const }

let lin_neg l = lin_scale (-1) l

(* ---------- access collection ---------- *)

let mem_of = function
  | Instr.Ild (_, m) | Instr.Fld (_, _, m) | Instr.Vld (_, _, m)
  | Instr.Fopm (_, _, _, _, m) | Instr.Vopm (_, _, _, _, m)
  | Instr.Ist (m, _) | Instr.Fst (_, m, _) | Instr.Fstnt (_, m, _)
  | Instr.Vst (_, m, _) | Instr.Vstnt (_, m, _)
  | Instr.Lea (_, m) -> Some m
  | Instr.Touch (_, m) | Instr.Prefetch (_, m) -> Some m
  | _ -> None

let access_shape = function
  | Instr.Ild _ -> Some (false, 4, true, true)
  | Instr.Ist _ -> Some (true, 4, true, true)
  | Instr.Fld (sz, _, _) | Instr.Fopm (sz, _, _, _, _) ->
    Some (false, Instr.fsize_bytes sz, true, true)
  | Instr.Fst (sz, _, _) | Instr.Fstnt (sz, _, _) ->
    Some (true, Instr.fsize_bytes sz, true, true)
  | Instr.Vld _ | Instr.Vopm _ -> Some (false, 16, true, true)
  | Instr.Vst _ | Instr.Vstnt _ -> Some (true, 16, true, true)
  | Instr.Touch (sz, _) ->
    (* a real load, but its data is discarded: bounds matter,
       dependence does not *)
    Some (false, Instr.fsize_bytes sz, true, false)
  | Instr.Prefetch _ -> Some (false, 1, false, false)
  | _ -> None

(* ---------- the analysis ---------- *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let empty ~stale =
  { has_loop = false; stale; trips = None; accesses = []; pairs = []; nonaffine = [] }

let may_alias (a : Lower.array_param) (b : Lower.array_param) =
  a.Lower.a_mayalias || b.Lower.a_mayalias

(** The dependence-test window: two accesses with strides [s1]/[s2],
    first-iteration displacements [d1]/[d2] and widths [w1]/[w2]
    conflict at iterations [(i, j)] iff
    [s2*j - s1*i + (d2 - d1)] lies in the open interval [(-w2, w1)]
    — i.e. the value [v = s2*j - s1*i] falls in
    [(d1 - d2 - w2, d1 - d2 + w1)]. *)
let relation_of ~trips ~self (a1 : access) f1 (a2 : access) f2 =
  let s1 = f1.stride and d1 = f1.disp and w1 = a1.width in
  let s2 = f2.stride and d2 = f2.disp and w2 = a2.width in
  let vlo = d1 - d2 - w2 and vhi = d1 - d2 + w1 in
  (* candidate v strictly inside (vlo, vhi) *)
  let candidates = List.init (max 0 (vhi - vlo - 1)) (fun k -> vlo + 1 + k) in
  if s1 = s2 then begin
    let s = s1 in
    if s = 0 then
      if vlo < 0 && 0 < vhi then Dependent { distance = None; dir = Star }
      else Independent
    else begin
      let within_trips k =
        match trips with Some u -> abs k <= u - 1 | None -> true
      in
      let ks =
        List.filter_map
          (fun v -> if v mod s = 0 && within_trips (v / s) then Some (v / s) else None)
          candidates
      in
      (* an access does not depend on itself within one iteration *)
      let ks = if self then List.filter (fun k -> k <> 0) ks else ks in
      match List.sort_uniq compare ks with
      | [] -> Independent
      | [ 0 ] -> Dependent { distance = Some 0; dir = Eq }
      | [ k ] -> Dependent { distance = Some k; dir = (if k > 0 then Lt else Gt) }
      | ks ->
        let dir =
          if List.for_all (fun k -> k > 0) ks then Lt
          else if List.for_all (fun k -> k < 0) ks then Gt
          else Star
        in
        Dependent { distance = None; dir }
    end
  end
  else begin
    (* GCD test: v = s2*j - s1*i is always a multiple of gcd(s1, s2);
       Banerjee bounds: v is confined to the box i, j in [0, U). *)
    let g = gcd s1 s2 in
    let bound coeff =
      (* range of coeff * k over k in [0, U): (min, max) as options,
         [None] = unbounded on that side *)
      match trips with
      | Some u ->
        let a = 0 and b = coeff * (u - 1) in
        (Some (min a b), Some (max a b))
      | None ->
        if coeff > 0 then (Some 0, None)
        else if coeff < 0 then (None, Some 0)
        else (Some 0, Some 0)
    in
    let lo_j, hi_j = bound s2 in
    let lo_i, hi_i = bound (-s1) in
    let lo_v =
      match (lo_j, lo_i) with Some a, Some b -> Some (a + b) | _ -> None
    in
    let hi_v =
      match (hi_j, hi_i) with Some a, Some b -> Some (a + b) | _ -> None
    in
    let feasible v =
      (g = 0 && v = 0 || g <> 0 && v mod g = 0)
      && (match lo_v with Some l -> v >= l | None -> true)
      && match hi_v with Some h -> v <= h | None -> true
    in
    if List.exists feasible candidates then Dependent { distance = None; dir = Star }
    else Independent
  end

let analyze (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> empty ~stale:false
  | Some ln -> (
    match Ptrinfo.loop_blocks compiled with
    | [] -> empty ~stale:true
    | blocks ->
      let f = compiled.Lower.func in
      let reaches, always = loop_dag blocks in
      let delta = deltas ~always blocks in
      let absint = Absint.analyze f in
      let header = ln.Loopnest.header in
      let array_of_reg r =
        List.find_opt (fun (a : Lower.array_param) -> Reg.equal a.Lower.a_reg r)
          compiled.Lower.arrays
      in
      (* Constant trip count: the counter starts at a compile-time
         constant and is consumed [per_iter] at a time. *)
      let trips =
        match Absint.at_exit absint ln.Loopnest.preheader ln.Loopnest.cnt with
        | Absint.Val
            { anchor = Absint.Abs; lo = Absint.Fin a; hi = Absint.Fin b; _ }
          when a = b && ln.Loopnest.per_iter > 0 ->
          Some (max 0 (a / ln.Loopnest.per_iter))
        | _ -> None
      in
      (* Resolve a linear form at an access in block [blabel] to an
         affine (array, stride, disp) description, fail-closed. *)
      let resolve blabel (l : lin) =
        let exception No of string in
        try
          let anchor = ref None and stride = ref 0 and disp = ref l.const in
          List.iter
            (fun ((r : Reg.t), c) ->
              (* the block-entry value of [r] must equal its
                 iteration-entry value: no definition of [r] in a loop
                 block that can flow into this block's entry (defs in
                 this block itself are consumed by the walk) *)
              let allowed l' = l' = blabel || not (reaches l' blabel) in
              if not (List.for_all allowed (def_blocks blocks r)) then
                raise (No "register changes earlier in the iteration");
              let d =
                match delta r with
                | Some d -> d
                | None -> raise (No "no per-iteration stride")
              in
              (match Absint.at_entry absint header r with
              | Absint.Val { anchor = a; lo; hi; _ } ->
                let entry0 =
                  if d >= 0 then
                    match lo with
                    | Absint.Fin v -> v
                    | _ -> raise (No "loop-entry value not provable")
                  else
                    match hi with
                    | Absint.Fin v -> v
                    | _ -> raise (No "loop-entry value not provable")
                in
                (match a with
                | Absint.Abs -> disp := !disp + (c * entry0)
                | Absint.Sym p ->
                  if c <> 1 then raise (No "non-unit pointer coefficient")
                  else begin
                    match !anchor with
                    | Some _ -> raise (No "two symbolic bases")
                    | None ->
                      anchor := Some p;
                      disp := !disp + entry0
                  end)
              | Absint.Top -> raise (No "unanalyzable register"));
              stride := !stride + (c * d))
            l.parts;
          match !anchor with
          | None -> (None, None)
          | Some p -> (
            match array_of_reg p with
            | Some a -> (Some a, Some { stride = !stride; disp = !disp })
            | None -> (None, None))
        with No _ -> (None, None)
      in
      (* Walk each loop block, tracking linear forms for the registers
         it redefines; collect every memory access. *)
      let accesses = ref [] in
      List.iter
        (fun (b : Block.t) ->
          let env : (int, lin option) Hashtbl.t = Hashtbl.create 8 in
          let get (r : Reg.t) =
            if r.Reg.cls <> Reg.Gpr then None
            else
              match Hashtbl.find_opt env r.Reg.id with
              | Some v -> v
              | None -> Some (lin_of_reg r)
          in
          let set (r : Reg.t) v = Hashtbl.replace env r.Reg.id v in
          List.iteri
            (fun idx i ->
              (* record the access against the pre-instruction state *)
              (match (mem_of i, access_shape i) with
              | Some m, Some (store, width, faulting, pairable) ->
                let addr =
                  let base = get m.Instr.base in
                  let index =
                    match m.Instr.index with
                    | None -> Some (lin_const 0)
                    | Some idx -> Option.map (lin_scale m.Instr.scale) (get idx)
                  in
                  match (base, index) with
                  | Some b', Some i' -> Some (lin_add (lin_add b' i') (lin_const m.Instr.disp))
                  | _ -> None
                in
                let array, affine =
                  match addr with
                  | None -> (None, None)
                  | Some l -> resolve b.Block.label l
                in
                accesses :=
                  { array; block = b.Block.label; instr = idx; store; width; faulting;
                    pairable; guarded = not (always b.Block.label); affine }
                  :: !accesses
              | _ -> ());
              (* then apply the instruction's effect on the GPR state *)
              match i with
              | Instr.Ildi (d, k) -> set d (Some (lin_const k))
              | Instr.Imov (d, s) -> set d (get s)
              | Instr.Iop (op, d, a, bop) ->
                let va = get a in
                let vb =
                  match bop with
                  | Instr.Oimm k -> Some (lin_const k)
                  | Instr.Oreg r -> get r
                in
                let v =
                  match (op, va, vb) with
                  | Instr.Iadd, Some x, Some y -> Some (lin_add x y)
                  | Instr.Isub, Some x, Some y -> Some (lin_add x (lin_neg y))
                  | Instr.Imul, Some x, Some { parts = []; const = k } ->
                    Some (lin_scale k x)
                  | Instr.Imul, Some { parts = []; const = k }, Some y ->
                    Some (lin_scale k y)
                  | Instr.Ishl, Some x, Some { parts = []; const = k }
                    when k >= 0 && k < 30 -> Some (lin_scale (1 lsl k) x)
                  | _ -> None
                in
                set d v
              | Instr.Lea (d, m) ->
                let v =
                  let base = get m.Instr.base in
                  let index =
                    match m.Instr.index with
                    | None -> Some (lin_const 0)
                    | Some idx -> Option.map (lin_scale m.Instr.scale) (get idx)
                  in
                  match (base, index) with
                  | Some b', Some i' -> Some (lin_add (lin_add b' i') (lin_const m.Instr.disp))
                  | _ -> None
                in
                set d v
              | i ->
                List.iter
                  (fun (r : Reg.t) -> if r.Reg.cls = Reg.Gpr then set r None)
                  (Instr.defs i))
            b.Block.instrs)
        blocks;
      let accesses = List.rev !accesses in
      (* Pair evaluation, in lexical order. *)
      let block_rank =
        let tbl = Hashtbl.create 8 in
        List.iteri (fun i (b : Block.t) -> Hashtbl.replace tbl b.Block.label i) blocks;
        fun l -> Option.value ~default:0 (Hashtbl.find_opt tbl l)
      in
      let pos a = (block_rank a.block, a.instr) in
      let pairs = ref [] in
      let eval ?(self = false) src dst =
        let relation =
          match (src.array, dst.array) with
          | Some pa, Some pb when pa.Lower.a_name = pb.Lower.a_name -> (
            match (src.affine, dst.affine) with
            | Some f1, Some f2 -> relation_of ~trips ~self src f1 dst f2
            | _ -> Unknown "non-affine access")
          | Some pa, Some pb ->
            if may_alias pa pb then
              Unknown
                (Printf.sprintf "%s and %s carry the MAYALIAS mark-up" pa.Lower.a_name
                   pb.Lower.a_name)
            else Independent
          | _ -> Unknown "access not attributable to an array"
        in
        (* Distinct arrays proven disjoint carry no dependence: keep
           the pair list to conflicts and possible conflicts. *)
        let interesting =
          match relation with
          | Independent -> (
            match (src.array, dst.array) with
            | Some pa, Some pb -> pa.Lower.a_name = pb.Lower.a_name
            | _ -> true)
          | Dependent _ | Unknown _ -> true
        in
        if interesting then pairs := { src; dst; relation } :: !pairs
      in
      let rec all_pairs = function
        | [] -> ()
        | a :: rest ->
          (* self-pair: a store conflicting with itself across
             iterations (|stride| < width) *)
          if a.store && a.pairable then eval ~self:true a a;
          List.iter
            (fun b ->
              if (a.store || b.store) && a.pairable && b.pairable then
                if pos a <= pos b then eval a b else eval b a)
            rest;
          all_pairs rest
      in
      all_pairs accesses;
      {
        has_loop = true;
        stale = false;
        trips;
        accesses;
        pairs = List.rev !pairs;
        nonaffine = List.filter (fun a -> a.faulting && a.affine = None) accesses;
      })

(* ---------- verdict helpers ---------- *)

(** Pairs that carry a dependence across iterations, or that cannot be
    proven independent — the fail-closed obstruction set. *)
let blocking t =
  List.filter
    (fun p ->
      match p.relation with
      | Independent | Dependent { distance = Some 0; _ } -> false
      | Dependent _ | Unknown _ -> true)
    t.pairs

(** Did the analysis prove every pair of references either independent
    or loop-independent (distance 0)? *)
let all_independent t = blocking t = []

(** Cross-check {!Ptrinfo}'s syntactic per-iteration strides against
    the congruence {!Absint} infers at the loop header.  A pointer
    whose abstract value is re-anchored away from its own parameter, or
    whose syntactic stride is not a multiple of the inferred stride
    congruence, indicates one of the two analyses is being fooled —
    transforms that trust either must refuse (IFK014). *)
let stride_contradictions (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> []
  | Some ln -> (
    match Ptrinfo.loop_blocks compiled with
    | [] -> []
    | _ ->
      let ai = Absint.analyze compiled.Lower.func in
      let header = ln.Loopnest.header in
      List.filter_map
        (fun (m : Ptrinfo.moving) ->
          let r = m.Ptrinfo.array.Lower.a_reg in
          let name = m.Ptrinfo.array.Lower.a_name in
          match Absint.at_entry ai header r with
          | Absint.Top -> None (* no information is not a contradiction *)
          | Absint.Val { anchor = Absint.Sym p; stride = s'; _ } ->
            if not (Reg.equal p r) then
              Some
                ( m,
                  Printf.sprintf "pointer %s is re-anchored at %s inside the loop" name
                    (Reg.to_string p) )
            else if s' > 0 && m.Ptrinfo.stride mod s' <> 0 then
              Some
                ( m,
                  Printf.sprintf
                    "syntactic stride %d contradicts the inferred congruence %d" m.Ptrinfo.stride
                    s' )
            else None
          | Absint.Val { anchor = Absint.Abs; _ } ->
            Some (m, Printf.sprintf "pointer %s lost its parameter anchor" name))
        (Ptrinfo.analyze compiled))

let to_string t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if not t.has_loop then add "no analyzable loop%s\n" (if t.stale then " (stale loop nest)" else "")
  else begin
    add "accesses: %d (%d non-affine)\n" (List.length t.accesses) (List.length t.nonaffine);
    (match t.trips with Some u -> add "constant trip count: %d\n" u | None -> ());
    List.iter
      (fun a ->
        add "  %s: %s\n" (access_name a)
          (match a.affine with
          | Some { stride; disp } -> Printf.sprintf "%+d*i%+d, %dB" stride disp a.width
          | None -> "non-affine"))
      t.accesses;
    List.iter
      (fun p ->
        add "  %s -> %s: %s\n" (access_name p.src) (access_name p.dst)
          (relation_to_string p.relation))
      t.pairs
  end;
  Buffer.contents buf
