(* Blocking client for the serve protocol.  One request at a time per
   connection (the daemon answers in order anyway); ids are generated
   as "c<pid>-<n>" so several clients sharing a log stay tellable
   apart.  Protocol-level failures surface as [Error msg], transport
   failures as the Unix exceptions they are. *)

module Json = Ifko_store.Store.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
  mutable closed : bool;
}

let connect addr =
  let domain, sockaddr =
    match addr with
    | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception e ->
    (try Unix.close fd with _ -> ());
    raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 0;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with _ -> ());
    try Unix.close t.fd with _ -> ()
  end

let fresh_id t =
  t.next_id <- t.next_id + 1;
  Printf.sprintf "c%d-%d" (Unix.getpid ()) t.next_id

(* One round trip.  A reply with a mismatched id is a protocol error:
   this client never pipelines, so the next line must answer us. *)
let roundtrip t request =
  if t.closed then Error "client closed"
  else begin
    let req_id = fresh_id t in
    output_string t.oc (Proto.render_request { Proto.req_id; request } ^ "\n");
    flush t.oc;
    match input_line t.ic with
    | exception End_of_file -> Error "connection closed by daemon"
    | line -> (
      match Proto.parse_response line with
      | Error msg -> Error (Printf.sprintf "bad response: %s" msg)
      | Ok { Proto.resp_id; reply } ->
        if resp_id <> req_id && resp_id <> "" then
          Error
            (Printf.sprintf "response id %S does not match request id %S" resp_id
               req_id)
        else Ok reply)
  end

let ( let* ) = Result.bind

let tune t args =
  let* reply = roundtrip t (Proto.Tune args) in
  match reply with
  | Proto.Tuned (_, r) -> Ok r
  | Proto.Failed msg -> Error msg
  | _ -> Error "unexpected reply to tune"

let lookup t args =
  let* reply = roundtrip t (Proto.Lookup args) in
  match reply with
  | Proto.Tuned (_, r) -> Ok (Some r)
  | Proto.Miss -> Ok None
  | Proto.Failed msg -> Error msg
  | _ -> Error "unexpected reply to lookup"

let stat t =
  let* reply = roundtrip t Proto.Stat in
  match reply with
  | Proto.Stats fields -> Ok fields
  | Proto.Failed msg -> Error msg
  | _ -> Error "unexpected reply to stat"

let compact t =
  let* reply = roundtrip t Proto.Compact in
  match reply with
  | Proto.Done _ -> Ok ()
  | Proto.Failed msg -> Error msg
  | _ -> Error "unexpected reply to compact"

let shutdown t =
  let* reply = roundtrip t Proto.Shutdown in
  match reply with
  | Proto.Done _ -> Ok ()
  | Proto.Failed msg -> Error msg
  | _ -> Error "unexpected reply to shutdown"

let with_client addr f =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
