(** Hand-written lexer for the HIL concrete syntax. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | KERNEL
  | RETURNS
  | VARS
  | BEGIN
  | END
  | LOOP
  | OPTLOOP
  | LOOP_BODY
  | LOOP_END
  | IF
  | THEN
  | ELSE
  | ENDIF
  | GOTO
  | RETURN
  | ABS
  | SQRT
  | TINT  (** type keyword [int] *)
  | TSINGLE
  | TDOUBLE
  | TPTR
  | OUTPUT
  | NOPREFETCH
  | MAYALIAS
  | SPECULATE
      (** loop mark-up licensing speculative (compare-mask) vectorization *)
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | COMMA
  | SEMI
  | COLON
  | EQ  (** [=] *)
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CMP of Ast.cmpop
  | EOF

exception Error of string * int
(** [Error (message, line)] is raised on malformed input. *)

val tokenize : string -> (token * int) list
(** [tokenize source] lexes the whole [source], returning tokens paired
    with their 1-based line numbers and ending with [EOF].  Comments run
    from [#] or [//] to end of line. *)

val describe : token -> string
(** Human-readable token name for error messages. *)
