lib/util/stats.mli:
