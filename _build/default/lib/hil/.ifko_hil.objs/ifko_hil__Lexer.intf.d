lib/hil/lexer.mli: Ast
