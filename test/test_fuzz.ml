(* Differential-fuzzing tests.

   The subsystem's own guarantees: determinism from the seed, validity
   by construction of generated kernels, a clean sweep on the real
   pipeline, end-to-end bug catching under fault injection (find,
   shrink, persist, replay), shrinker idempotence, the oracle's
   tolerance boundaries, and replay of every checked-in reproducer. *)
open Ifko_fuzz
module Rng = Ifko_util.Rng
module Lower = Ifko_codegen.Lower
module Params = Ifko_transform.Params
module Pp = Ifko_hil.Pp

let cfg = Ifko_machine.Config.p4e
let compile = Fuzz.compile

(* The injected bug used throughout: right after the named pass, the
   first floating-point add in the kernel silently becomes a subtract —
   the model of a miscompilation that per-pass validation and the
   differential oracle must both catch. *)
let flip_first_fadd (c : Lower.compiled) =
  let flipped = ref false in
  List.iter
    (fun (b : Block.t) ->
      b.Block.instrs <-
        List.map
          (fun i ->
            match i with
            | Instr.Fop (fs, Instr.Fadd, d, a, b') when not !flipped ->
              flipped := true;
              Instr.Fop (fs, Instr.Fsub, d, a, b')
            | _ -> i)
          b.Block.instrs)
    c.Lower.func.Cfg.blocks

let inject = ("UR", flip_first_fadd)

(* ---------- generator ---------- *)

let gen_batch seed n =
  let master = Rng.create seed in
  List.init n (fun i ->
      Gen.kernel (Rng.split master) ~name:(Printf.sprintf "fz%d" i) ~max_size:5)

let test_gen_deterministic () =
  let a = gen_batch 7 25 and b = gen_batch 7 25 in
  List.iter2
    (fun x y ->
      Alcotest.(check string) "same seed, same kernel" (Pp.kernel_to_string x)
        (Pp.kernel_to_string y))
    a b;
  let c = gen_batch 8 25 in
  Alcotest.(check bool) "different seed differs" true
    (List.exists2 (fun x y -> Pp.kernel_to_string x <> Pp.kernel_to_string y) a c)

let test_gen_valid () =
  List.iter
    (fun k ->
      match compile k with
      | _ -> ()
      | exception e ->
        Alcotest.failf "generated kernel failed to lower: %s\n%s" (Printexc.to_string e)
          (Pp.kernel_to_string k))
    (gen_batch 123 150)

(* ---------- the clean sweep ---------- *)

let test_clean_sweep () =
  let stats = Fuzz.run ~cfg ~seed:42 ~count:30 () in
  Alcotest.(check int) "kernels" 30 stats.Fuzz.kernels;
  Alcotest.(check int) "no generator failures" 0 stats.Fuzz.gen_failed;
  Alcotest.(check int) "no bugs in the real pipeline" 0 (List.length stats.Fuzz.bugs);
  Alcotest.(check string) "summary line"
    (Fuzz.stats_to_string stats)
    (Printf.sprintf
       "fuzz: kernels=30 points=%d agree=%d rejected=%d gen-failed=0 cross-checked=0 \
        bugs=0"
       stats.Fuzz.points stats.Fuzz.agree stats.Fuzz.rejected)

(* With cross-checking on, kernels whose references Depend proves
   independent are held to bit-exact array agreement — and the real
   pipeline passes at that tighter bar. *)
let test_cross_check_sweep () =
  let stats = Fuzz.run ~cross_check:true ~cfg ~seed:42 ~count:30 () in
  Alcotest.(check int) "no bugs at the bit-exact bar" 0 (List.length stats.Fuzz.bugs);
  Alcotest.(check bool) "some points were cross-checked" true
    (stats.Fuzz.cross_checked > 0)

let test_run_deterministic () =
  let log1 = Buffer.create 64 and log2 = Buffer.create 64 in
  let s1 = Fuzz.run ~log:(Buffer.add_string log1) ~cfg ~seed:11 ~count:15 () in
  let s2 = Fuzz.run ~log:(Buffer.add_string log2) ~cfg ~seed:11 ~count:15 () in
  Alcotest.(check string) "same stats" (Fuzz.stats_to_string s1) (Fuzz.stats_to_string s2);
  Alcotest.(check string) "same log" (Buffer.contents log1) (Buffer.contents log2)

(* ---------- fault injection end to end ---------- *)

let with_temp_corpus f =
  let dir = Filename.temp_file "ifko_fuzz_corpus" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let injected_run dir =
  Fuzz.run ~corpus:dir ~inject ~cfg ~seed:2718 ~count:25 ()

let test_injection_caught () =
  with_temp_corpus (fun dir ->
      let stats = injected_run dir in
      Alcotest.(check bool) "injected bug found" true (stats.Fuzz.bugs <> []);
      Alcotest.(check bool) "reproducers written" true (stats.Fuzz.written <> []);
      (* Every written reproducer parses back and still triggers the
         injected bug, and its shrunk point keeps the injection's
         precondition (UR only runs with unroll > 1). *)
      List.iter
        (fun path ->
          let case = Corpus.read path in
          Alcotest.(check bool) "shrunk point still unrolls" true
            (case.Corpus.params.Params.unroll > 1);
          match
            Oracle.check ~inject ~cfg ~seed:2718 (compile case.Corpus.kernel)
              case.Corpus.params
          with
          | Oracle.Mismatch _ -> ()
          | Oracle.Agree | Oracle.Rejected _ ->
            Alcotest.failf "%s no longer reproduces under injection" path)
        stats.Fuzz.written;
      (* Replayed against the real pipeline (bug "fixed"), every
         reproducer passes — the corpus is a regression suite, not a
         museum of permanently failing inputs. *)
      List.iter
        (fun (path, r) ->
          match r with
          | Ok () -> ()
          | Error e -> Alcotest.failf "replay %s against fixed pipeline: %s" path e)
        (Fuzz.replay_dir ~cfg dir))

let test_shrink_idempotent () =
  with_temp_corpus (fun dir ->
      let stats = injected_run dir in
      let case, _ =
        match stats.Fuzz.bugs with b :: _ -> b | [] -> Alcotest.fail "no bug found"
      in
      let fails k p =
        match compile k with
        | exception _ -> false
        | c -> (
          match Oracle.check ~inject ~cfg ~seed:2718 c p with
          | Oracle.Mismatch _ -> true
          | Oracle.Agree | Oracle.Rejected _ -> false)
      in
      let k', p' = Shrink.minimize ~fails case.Corpus.kernel case.Corpus.params in
      Alcotest.(check string) "kernel at fixpoint"
        (Pp.kernel_to_string case.Corpus.kernel)
        (Pp.kernel_to_string k');
      Alcotest.(check string) "params at fixpoint"
        (Params.canonical case.Corpus.params)
        (Params.canonical p'))

(* ---------- oracle tolerances ---------- *)

let test_ulp_boundaries () =
  let module V = Ifko_sim.Verify in
  Alcotest.(check bool) "exact: equal" true (V.exact_fp 1.5 1.5);
  Alcotest.(check bool) "exact: NaN==NaN" true (V.exact_fp Float.nan Float.nan);
  Alcotest.(check bool) "exact: signed zeros equal (IEEE compare)" true
    (V.exact_fp 0.0 (-0.0));
  Alcotest.(check bool) "ulp: zero distance" true (V.close_ulp ~ulps:0L 1.0 1.0);
  Alcotest.(check int64) "ulp: adjacent doubles" 1L
    (V.ulp_diff 1.0 (Float.succ 1.0));
  Alcotest.(check int64) "ulp: across zero" 2L
    (V.ulp_diff (Float.succ 0.0) (Float.pred 0.0));
  Alcotest.(check int64) "ulp: signed zeros coincide" 0L (V.ulp_diff 0.0 (-0.0));
  Alcotest.(check bool) "ulp: one NaN is infinitely far" false
    (V.close_ulp ~ulps:(Int64.shift_left 1L 60) 1.0 Float.nan);
  (* Single-precision distances are measured on the f32 grid: the
     smallest f32 step around 1.0 is 2^-23, thousands of f64 ulps. *)
  let next32 = Int32.float_of_bits (Int32.add (Int32.bits_of_float 1.0) 1l) in
  Alcotest.(check int64) "ulp: adjacent singles (S grid)" 1L
    (V.ulp_diff ~fsize:Instr.S 1.0 next32);
  Alcotest.(check bool) "ulp: adjacent singles far apart on D grid" true
    (Int64.compare (V.ulp_diff ~fsize:Instr.D 1.0 next32) 1000L > 0);
  Alcotest.(check bool) "reduction: tolerance absorbs tiny drift" true
    (V.close_reduction ~fsize:Instr.D 1.0 (Float.succ 1.0));
  Alcotest.(check bool) "reduction: near-zero floor" true
    (V.close_reduction ~fsize:Instr.D ~abs_floor:1e-6 1e-9 (-1e-9));
  Alcotest.(check bool) "reduction: gross error rejected" false
    (V.close_reduction ~fsize:Instr.D 1.0 1.5)

(* ---------- encodings ---------- *)

let test_canonical_roundtrip () =
  let master = Rng.create 77 in
  List.iter
    (fun k ->
      let compiled = compile k in
      let report = Ifko_analysis.Report.analyze compiled in
      let p = Sample.point (Rng.split master) ~line_bytes:128 ~report in
      Alcotest.(check string) "canonical . of_canonical = id" (Params.canonical p)
        (Params.canonical (Params.of_canonical (Params.canonical p))))
    (gen_batch 77 40)

let test_corpus_roundtrip () =
  let master = Rng.create 99 in
  List.iter
    (fun k ->
      let compiled = compile k in
      let report = Ifko_analysis.Report.analyze compiled in
      let p = Sample.point (Rng.split master) ~line_bytes:128 ~report in
      let case =
        { Corpus.kernel = k; params = p; meta = [ ("seed", "99"); ("note", "rt") ] }
      in
      let case' = Corpus.of_string (Corpus.to_string case) in
      Alcotest.(check string) "kernel" (Pp.kernel_to_string k)
        (Pp.kernel_to_string case'.Corpus.kernel);
      Alcotest.(check string) "params" (Params.canonical p)
        (Params.canonical case'.Corpus.params);
      Alcotest.(check (list (pair string string))) "meta" case.Corpus.meta
        case'.Corpus.meta;
      Alcotest.(check string) "content-addressed name stable" (Corpus.file_name case)
        (Corpus.file_name case'))
    (gen_batch 99 10);
  (* Multi-line meta values (per-pass diagnostics) must not corrupt the
     kernel source that follows the comment block. *)
  let k = List.hd (gen_batch 99 1) in
  let case =
    {
      Corpus.kernel = k;
      params = Params.of_canonical "sv=0;ur=1;lc=0;ae=0;wnt=0;bf=0;cisc=0;pf=";
      meta = [ ("detail", "line one\nline two") ];
    }
  in
  let case' = Corpus.of_string (Corpus.to_string case) in
  Alcotest.(check (list (pair string string))) "newlines flattened"
    [ ("detail", "line one line two") ] case'.Corpus.meta

(* ---------- the checked-in corpus ---------- *)

(* The reproducers double as an arena regression suite: timing each
   through borrowed machines — with the pools warm from the other
   geometry's traffic — must be bit-identical to a cold-pool replay. *)
let test_corpus_pooled_replay () =
  Ifko_machine.Arena.clear ();
  let time mcfg case =
    let compiled = compile case.Corpus.kernel in
    let func = Ifko_search.Driver.compile_point ~cfg:mcfg compiled case.Corpus.params in
    let cf = Ifko_sim.Exec.compile func in
    let spec = Ifko_search.Generic.spec ~seed:5 compiled in
    (Ifko_sim.Timer.measure_ext ~cfg:mcfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:600
       cf)
      .Ifko_sim.Timer.m_cycles
  in
  let replay cases =
    List.map
      (fun c -> (time Ifko_machine.Config.p4e c, time Ifko_machine.Config.opteron c))
      cases
  in
  let dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus" in
  let cases = List.map Corpus.read (Corpus.files ~dir) in
  Alcotest.(check bool) "corpus is non-empty" true (cases <> []);
  let cold = replay cases in
  (* second replay: every acquire recycles an instance the first one
     left in an arbitrary dirty state *)
  let warm = replay cases in
  List.iter2
    (fun c w ->
      Alcotest.(check (pair (float 0.0) (float 0.0))) "pooled replay bit-identical" c w)
    cold warm;
  let s = Ifko_machine.Arena.stats () in
  Alcotest.(check bool) "the pool was exercised" true
    (s.Ifko_machine.Arena.acquires > s.Ifko_machine.Arena.creates)

let replay_cases =
  List.map
    (fun path ->
      Alcotest.test_case (Filename.basename path) `Quick (fun () ->
          match Fuzz.replay ~cfg path with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" path e))
    (Corpus.files ~dir:"corpus")

let suite =
  [ Alcotest.test_case "generator deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "generated kernels lower" `Quick test_gen_valid;
    Alcotest.test_case "clean sweep on real pipeline" `Quick test_clean_sweep;
    Alcotest.test_case "cross-check sweep (bit-exact arrays)" `Quick test_cross_check_sweep;
    Alcotest.test_case "fuzz run deterministic" `Quick test_run_deterministic;
    Alcotest.test_case "injected bug caught+shrunk+written" `Quick test_injection_caught;
    Alcotest.test_case "shrinker idempotent" `Quick test_shrink_idempotent;
    Alcotest.test_case "oracle ULP boundaries" `Quick test_ulp_boundaries;
    Alcotest.test_case "canonical params roundtrip" `Quick test_canonical_roundtrip;
    Alcotest.test_case "corpus file roundtrip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus replay through pooled arenas" `Quick
      test_corpus_pooled_replay ]
  @ replay_cases
