type fill = {
  mutable arrival : float;
  mutable fill_l1 : bool;
  mutable fill_l2 : bool;
  mutable want_write : bool;
  mutable l1_addr : int;  (** which L1 line within the (possibly wider) L2 line *)
  mutable observed : bool;  (** the stream prefetcher has seen this line *)
  is_pf : bool;  (** brought in by a prefetch, not a demand miss *)
}

type stream = { mutable expect : int; mutable dir : int }

(* The four hot clocks live in one float array rather than mutable
   float fields: float fields of a mixed record box on every write,
   and these are written on every simulated memory operation. *)
let f_bus = 0 (* bus_free: earliest time the bus is idle *)
and f_claims = 1 (* total bus cycles claimed *)
and f_clock = 2 (* consumption frontier: max issue/completion seen *)
and f_wc = 3 (* bytes pending in the WC buffer *)
and f_now = 4 (* unboxed-call channel: the caller's clock *)
and f_ret = 5 (* unboxed-call channel: the completion time *)

type t = {
  cfg : Config.t;
  l1 : Cache.t;
  l2 : Cache.t;
  l1_lat : float;  (** [l1.latency], pre-converted for the hot path *)
  l2_lat : float;
  mem_lat : float;  (** [mem_latency] as a float *)
  mem_lat_pf : float;  (** [mem_latency *. pf_latency_factor] *)
  occ : float;  (** bus occupancy of one L2-line transfer, in cycles *)
  fl : float array;  (** [f_bus]/[f_claims]/[f_clock]/[f_wc] *)
  mshr : float array;
      (** ring of completion times of in-flight demand misses;
          power-of-two capacity (>= the configured slot count) so the
          ring arithmetic is a mask, not a division *)
  mutable mshr_head : int;
  mutable mshr_len : int;
  (* In-flight fills, keyed by L2-line base address: an open-addressed
     table with linear probing.  A generic [Hashtbl] costs a [caml_hash]
     C call per lookup, and the all-miss phase of an out-of-cache run
     looks the line up two or three times per memory instruction. *)
  mutable if_keys : int array;  (* -1 empty, -2 tombstone *)
  mutable if_vals : fill array;
  mutable if_n : int;  (* live entries *)
  mutable if_used : int;  (* live entries + tombstones *)
  if_shift : int;  (* log2 of the L2 line size (0 for odd sizes) *)
  streams : stream array;
  mutable next_stream : int;
  mutable sw_pf_issued : int;
  mutable sw_pf_dropped : int;
  mutable hw_pf_issued : int;
  mutable nt_lines : int;
  mutable pf_inflight : int;  (* prefetched lines not yet settled *)
  mutable fifo : int array;  (* ring: inflight lines in arrival order *)
  mutable fifo_head : int;
  mutable fifo_len : int;
  (* Cached [if_find] result for the fifo head: during a streaming
     phase every memory operation sweeps past the head to check whether
     its fill has arrived, and the cached pair answers that in one
     compare instead of a table probe.  [head_line = -1] means
     "recompute"; the cache is dropped whenever the head could change
     (pop) or its fill could be removed/replaced (remove/insert of the
     same line), so it is a pure acceleration and never changes
     behavior. *)
  mutable head_line : int;
  mutable head_fill : fill;
  (* The whole fifo/head state folded into one float so [tick] is a
     single compare: [infinity] when nothing is in flight, the head
     fill's arrival when the head cache is valid, [neg_infinity] when
     the head must be recomputed (forces one sweep, which restores the
     invariant).  Sweeping exactly when [clock >= next_event] is
     equivalent to the three-part guard it replaces. *)
  mutable next_event : float;
  mutable last_dir_write : bool;  (* direction of the last bus transfer *)
  mutable wc_line : int;  (* write-combining buffer: current NT line *)
  (* Fast-path coverage and cycle-attribution counters (the bench's
     --profile report).  Always on: two int bumps per memory operation
     are noise next to the work they count. *)
  mutable n_loads : int;
  mutable n_stores : int;
  mutable fast_loads : int;  (* loads served by the open-coded fast path *)
  mutable fast_stores : int;
  mutable n_demand : int;  (* demand misses reaching the memory bus *)
  mutable demand_cycles : float;  (* latency cycles those misses cost *)
}

(* Same max as the timing model's: times are finite and non-negative,
   so this agrees with [Float.max] while staying inlinable. *)
let[@inline] fmax (a : float) (b : float) = if a >= b then a else b

(* Ring-buffer helpers.  [Queue] allocates a cell per push (and a
   [Some] per [peek_opt]); the all-miss phase of an out-of-cache run
   pushes one fifo entry and one MSHR slot per missed line, so both
   live in flat reusable buffers instead.  The fifo capacity is kept a
   power of two; the MSHR ring never exceeds the configured slot
   count. *)
let[@inline] fifo_push t v =
  let cap = Array.length t.fifo in
  if t.fifo_len = cap then begin
    let buf = Array.make (2 * cap) 0 in
    for i = 0 to t.fifo_len - 1 do
      buf.(i) <- t.fifo.((t.fifo_head + i) land (cap - 1))
    done;
    t.fifo <- buf;
    t.fifo_head <- 0
  end;
  let mask = Array.length t.fifo - 1 in
  t.fifo.((t.fifo_head + t.fifo_len) land mask) <- v;
  t.fifo_len <- t.fifo_len + 1;
  if t.fifo_len = 1 then t.next_event <- neg_infinity

let[@inline] fifo_pop t =
  t.fifo_head <- (t.fifo_head + 1) land (Array.length t.fifo - 1);
  t.fifo_len <- t.fifo_len - 1;
  t.head_line <- -1;
  t.next_event <- neg_infinity

let[@inline] mshr_push t v =
  let mask = Array.length t.mshr - 1 in
  t.mshr.((t.mshr_head + t.mshr_len) land mask) <- v;
  t.mshr_len <- t.mshr_len + 1

let[@inline] mshr_pop t =
  let v = t.mshr.(t.mshr_head) in
  t.mshr_head <- (t.mshr_head + 1) land (Array.length t.mshr - 1);
  t.mshr_len <- t.mshr_len - 1;
  v

(* Sentinel for "no fill in flight": lets the hot lookups avoid
   allocating an option.  Never mutated — callers compare against it
   (physically) before touching any field. *)
let no_fill =
  { arrival = 0.0; fill_l1 = false; fill_l2 = false; want_write = false;
    l1_addr = -1; observed = true; is_pf = false }

(* The in-flight table.  Keys are L2-line bases, so [line asr if_shift]
   is dense and sequential for streaming kernels — taken modulo a
   power-of-two capacity it spreads perfectly without any mixing.
   Callers only insert after a failed lookup (a line is in flight at
   most once), which keeps the probe logic trivial. *)

let[@inline] if_home t line = (line asr t.if_shift) land (Array.length t.if_keys - 1)

let if_probe_chain t line i =
  let mask = Array.length t.if_keys - 1 in
  let rec go i =
    let k = Array.unsafe_get t.if_keys i in
    if k = line then Array.unsafe_get t.if_vals i
    else if k = -1 then no_fill
    else go ((i + 1) land mask)
  in
  go ((i + 1) land mask)

(* The home slot answers almost every lookup (line bases hash densely
   and the table stays sparse), so that probe is inlined at the call
   sites — [load_io]/[store_io] do one per access whenever anything is
   in flight — and only collision chains pay a call. *)
let[@inline] if_find t line =
  let i = if_home t line in
  let k = Array.unsafe_get t.if_keys i in
  if k = line then Array.unsafe_get t.if_vals i
  else if k = -1 then no_fill
  else if_probe_chain t line i

let if_grow t =
  let keys = t.if_keys and vals = t.if_vals in
  t.if_keys <- Array.make (2 * Array.length keys) (-1);
  t.if_vals <- Array.make (2 * Array.length vals) no_fill;
  t.if_used <- t.if_n;
  let mask = Array.length t.if_keys - 1 in
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let rec place j =
          if t.if_keys.(j) = -1 then begin
            t.if_keys.(j) <- k;
            t.if_vals.(j) <- vals.(i)
          end
          else place ((j + 1) land mask)
        in
        place (if_home t k)
      end)
    keys

let if_insert t line f =
  if line = t.head_line then begin
    t.head_line <- -1;
    t.next_event <- neg_infinity
  end;
  if 2 * t.if_used >= Array.length t.if_keys then if_grow t;
  let mask = Array.length t.if_keys - 1 in
  let rec go i =
    let k = Array.unsafe_get t.if_keys i in
    if k = -1 || k = -2 then begin
      if k = -1 then t.if_used <- t.if_used + 1;
      t.if_keys.(i) <- line;
      t.if_vals.(i) <- f;
      t.if_n <- t.if_n + 1
    end
    else go ((i + 1) land mask)
  in
  go (if_home t line)

let if_remove t line =
  if line = t.head_line then begin
    t.head_line <- -1;
    t.next_event <- neg_infinity
  end;
  let mask = Array.length t.if_keys - 1 in
  let rec go i =
    let k = Array.unsafe_get t.if_keys i in
    if k = line then begin
      t.if_vals.(i) <- no_fill;
      t.if_n <- t.if_n - 1;
      if t.if_keys.((i + 1) land mask) = -1 then begin
        (* No probe chain continues past this slot, so it can revert to
           empty rather than a tombstone — and so can any tombstone run
           ending here.  Streaming fills march through the table in
           home order leaving a tombstone trail; this cleanup keeps
           lookups at one probe and the table from growing. *)
        let rec erase j =
          t.if_keys.(j) <- -1;
          t.if_used <- t.if_used - 1;
          let p = (j - 1) land mask in
          if t.if_keys.(p) = -2 then erase p
        in
        erase i
      end
      else t.if_keys.(i) <- -2
    end
    else if k <> -1 then go ((i + 1) land mask)
  in
  go (if_home t line)

let create (cfg : Config.t) =
  if cfg.Config.l2.Config.line < cfg.Config.l1.Config.line then
    invalid_arg
      (Printf.sprintf "Memsys: L2 line (%d) smaller than L1 line (%d)"
         cfg.Config.l2.Config.line cfg.Config.l1.Config.line);
  let pow2_at_least n =
    let rec go k = if k >= n then k else go (2 * k) in
    go 1
  in
  let l2_line_f = float_of_int cfg.Config.l2.Config.line in
  {
    cfg;
    l1 = Cache.create cfg.Config.l1;
    l2 = Cache.create cfg.Config.l2;
    l1_lat = float_of_int cfg.Config.l1.Config.latency;
    l2_lat = float_of_int cfg.Config.l2.Config.latency;
    mem_lat = float_of_int cfg.Config.mem_latency;
    mem_lat_pf = float_of_int cfg.Config.mem_latency *. cfg.Config.pf_latency_factor;
    occ = l2_line_f /. cfg.Config.bus_bytes_per_cycle;
    fl = Array.make 6 0.0;
    mshr = Array.make (pow2_at_least (max 1 cfg.Config.mshrs)) 0.0;
    mshr_head = 0;
    mshr_len = 0;
    if_keys = Array.make 256 (-1);
    if_vals = Array.make 256 no_fill;
    if_n = 0;
    if_used = 0;
    if_shift =
      (let line = cfg.Config.l2.Config.line in
       let rec go k = if 1 lsl k >= line then k else go (k + 1) in
       if line > 1 then go 0 else 0);
    streams =
      Array.init cfg.Config.hw_prefetch_streams (fun _ -> { expect = -1; dir = 1 });
    next_stream = 0;
    sw_pf_issued = 0;
    sw_pf_dropped = 0;
    hw_pf_issued = 0;
    nt_lines = 0;
    pf_inflight = 0;
    fifo = Array.make 64 0;
    fifo_head = 0;
    fifo_len = 0;
    head_line = -1;
    head_fill = no_fill;
    next_event = infinity;
    last_dir_write = false;
    wc_line = -1;
    n_loads = 0;
    n_stores = 0;
    fast_loads = 0;
    fast_stores = 0;
    n_demand = 0;
    demand_cycles = 0.0;
  }

let config t = t.cfg

let reset t ~flush =
  Array.fill t.fl 0 6 0.0;
  t.mshr_head <- 0;
  t.mshr_len <- 0;
  (* [if_used] counts live entries plus tombstones, so zero means every
     slot is already empty — the common case when the previous run
     drained — and the fills can be skipped. *)
  if t.if_used > 0 then begin
    Array.fill t.if_keys 0 (Array.length t.if_keys) (-1);
    Array.fill t.if_vals 0 (Array.length t.if_vals) no_fill
  end;
  t.if_n <- 0;
  t.if_used <- 0;
  Array.iter (fun s -> s.expect <- -1) t.streams;
  t.sw_pf_issued <- 0;
  t.sw_pf_dropped <- 0;
  t.hw_pf_issued <- 0;
  t.nt_lines <- 0;
  t.pf_inflight <- 0;
  t.fifo_head <- 0;
  t.fifo_len <- 0;
  t.head_line <- -1;
  t.head_fill <- no_fill;
  t.next_event <- infinity;
  t.last_dir_write <- false;
  t.wc_line <- -1;
  t.n_loads <- 0;
  t.n_stores <- 0;
  t.fast_loads <- 0;
  t.fast_stores <- 0;
  t.n_demand <- 0;
  t.demand_cycles <- 0.0;
  Cache.reset_stats t.l1;
  Cache.reset_stats t.l2;
  (* Acceleration state never survives a reset, flushed or not: the
     MRU way filters are rebuilt from scratch so a reused instance is
     bit-identical (including internal scan order) to a fresh one. *)
  Cache.clear_mru t.l1;
  Cache.clear_mru t.l2;
  if flush then begin
    Cache.flush t.l1;
    Cache.flush t.l2
  end

let[@inline] l2_line t addr = Cache.line_base t.l2 addr

(* Addresses are non-negative (bounds-checked before any traffic), so
   the shift agrees with division by the page size. *)
let[@inline] page_of addr = addr lsr 12

(* Claim the bus for [extra] line-transfers' worth of traffic starting
   no earlier than [now]; returns the transfer start. *)
let turnaround t ~write =
  if t.last_dir_write <> write then begin
    t.last_dir_write <- write;
    t.fl.(f_bus) <- t.fl.(f_bus) +. t.cfg.Config.bus_turnaround;
    t.fl.(f_claims) <- t.fl.(f_claims) +. t.cfg.Config.bus_turnaround
  end

(* Claim the bus for [extra] read-line transfers starting no earlier
   than [now]; returns the transfer start. *)
let claim_bus t now extra =
  turnaround t ~write:false;
  let start = fmax now t.fl.(f_bus) in
  t.fl.(f_claims) <- t.fl.(f_claims) +. (t.occ *. extra);
  t.fl.(f_bus) <- start +. (t.occ *. extra);
  start

(* Write-direction traffic (writebacks, non-temporal stores). *)
let claim_bytes t now bytes =
  turnaround t ~write:true;
  let start = fmax now t.fl.(f_bus) in
  t.fl.(f_claims) <- t.fl.(f_claims) +. (bytes /. t.cfg.Config.bus_bytes_per_cycle);
  t.fl.(f_bus) <- start +. (bytes /. t.cfg.Config.bus_bytes_per_cycle)

(* Dirty eviction out of L2 goes to memory over the bus (with the
   configured burst-overhead factor). *)
let l2_evicted t now = function
  | Some _ ->
    claim_bytes t now
      (float_of_int (Cache.line_bytes t.l2) *. t.cfg.Config.wb_extra)
  | None -> ()

(* Dirty eviction out of L1 lands in L2 when the line is still there
   (no bus traffic); otherwise it must go to memory. *)
let l1_evicted t now = function
  | Some addr ->
    if Cache.probe t.l2 ~addr then
      l2_evicted t now (Cache.insert t.l2 ~addr ~write:true)
    else
      claim_bytes t now
        (float_of_int (Cache.line_bytes t.l1) *. t.cfg.Config.wb_extra)
  | None -> ()

(* Issue a prefetch line fetch from memory.  The caller has already
   established the line is not in flight (both prefetch paths look the
   fill up first, because augmenting an existing fill is the common
   streaming case and needs none of the bus work below). *)
let schedule_issue t ~now ~fill_l1 ~fill_l2 ~l1_addr line =
  let start = claim_bus t now 1.0 in
  (* prefetches lose memory-controller arbitration to demand reads *)
  let arrival = start +. t.mem_lat_pf in
  if_insert t line
    { arrival; fill_l1; fill_l2; want_write = false; l1_addr; observed = false;
      is_pf = true };
  t.pf_inflight <- t.pf_inflight + 1;
  fifo_push t line

(* Move an arrived fill into the caches. *)
let settle t now line (f : fill) =
  if_remove t line;
  if f.is_pf then t.pf_inflight <- t.pf_inflight - 1;
  (* a line in flight is never in L2 (see [hw_prefetch]), so both L2
     installs below skip the present-line probe *)
  if f.fill_l2 then l2_evicted t now (Cache.insert_new t.l2 ~addr:line ~write:false);
  if f.fill_l1 then begin
    (* the transfer brought a whole (possibly wider) memory line;
       install every L1-sized piece of it *)
    let l1_bytes = Cache.line_bytes t.l1 in
    let pieces = max 1 (Cache.line_bytes t.l2 / l1_bytes) in
    for k = 0 to pieces - 1 do
      let piece = line + (k * l1_bytes) in
      let write = f.want_write && piece = Cache.line_base t.l1 f.l1_addr in
      l1_evicted t now (Cache.insert t.l1 ~addr:piece ~write)
    done
  end
  else if f.want_write then
    ignore (Cache.insert_new t.l2 ~addr:line ~write:true : int option)

(* Hardware stream prefetcher: trains on L2 demand misses, runs a few
   lines ahead, never crosses a 4 KiB page. *)
let hw_prefetch t ~now addr =
  let cfg = t.cfg in
  if cfg.Config.hw_prefetch_ahead > 0 then begin
    let line_sz = Cache.line_bytes t.l2 in
    let line = l2_line t addr in
    let ns = Array.length t.streams in
    (* first stream expecting this line, if any (no closure: this runs
       on every demand miss and first touch of a prefetched line) *)
    let rec find k =
      if k >= ns then -1 else if t.streams.(k).expect = line then k else find (k + 1)
    in
    let m = find 0 in
    if m >= 0 then begin
      let s = t.streams.(m) in
      s.expect <- line + (s.dir * line_sz);
      for k = 1 to cfg.Config.hw_prefetch_ahead do
        (* [target] is L2-line aligned, so it is its own table key *)
        let target = line + (s.dir * k * line_sz) in
        if page_of target = page_of line then begin
          let f = if_find t target in
          if f != no_fill then begin
            (* Already in flight — the steady-state case: every ahead
               line but the newest was issued by an earlier miss.  A
               line in flight is never in L2 (fills enter the table
               only after missing L2, and L2 only gains lines via
               [settle], which removes them from the table first), so
               the L2 probe this replaces always failed here and the
               old path always counted and augmented the fill. *)
            t.hw_pf_issued <- t.hw_pf_issued + 1;
            f.fill_l2 <- true
          end
          else if not (Cache.probe t.l2 ~addr:target) then begin
            t.hw_pf_issued <- t.hw_pf_issued + 1;
            schedule_issue t ~now ~fill_l1:false ~fill_l2:true ~l1_addr:target target
          end
        end
      done
    end
    else begin
      let s = t.streams.(t.next_stream) in
      t.next_stream <- (t.next_stream + 1) mod ns;
      s.expect <- line + line_sz;
      s.dir <- 1
    end
  end

(* Take an MSHR slot for a demand miss requested at [now]; returns the
   effective request time (delayed when all slots are busy). *)
let mshr_admit t now =
  while t.mshr_len > 0 && t.mshr.(t.mshr_head) <= now do
    ignore (mshr_pop t : float)
  done;
  if t.mshr_len < t.cfg.Config.mshrs then now else fmax now (mshr_pop t)

let demand_fetch t ~now ~write addr =
  hw_prefetch t ~now addr;
  let t0 = mshr_admit t now in
  let start = claim_bus t t0 1.0 in
  let arrival = start +. t.mem_lat in
  t.n_demand <- t.n_demand + 1;
  t.demand_cycles <- t.demand_cycles +. (arrival -. now);
  mshr_push t arrival;
  let line = l2_line t addr in
  if_insert t line
    { arrival; fill_l1 = true; fill_l2 = true; want_write = write; l1_addr = addr;
      observed = true; is_pf = false };
  fifo_push t line;
  arrival

(* Advance the consumption frontier and settle every fill it passed:
   a line is architecturally in the cache once its arrival time is
   behind the furthest completion the core has seen. *)
let rec sweep t =
  if t.fifo_len = 0 then t.next_event <- infinity
  else begin
    let line = Array.unsafe_get t.fifo t.fifo_head in
    let f = if line = t.head_line then t.head_fill else if_find t line in
    if f == no_fill then begin
      (* stale entry: the fill already settled via a hit-under-fill *)
      fifo_pop t;
      sweep t
    end
    else if f.arrival <= t.fl.(f_clock) then begin
      fifo_pop t;
      settle t t.fl.(f_clock) line f;
      sweep t
    end
    else begin
      (* the usual streaming case: the head has not arrived yet — cache
         its fill so the next sweep is one compare, not a table probe,
         and the next [tick] is one compare against [next_event] *)
      t.head_line <- line;
      t.head_fill <- f;
      t.next_event <- f.arrival
    end
  end

let[@inline] tick t time =
  if time > t.fl.(f_clock) then t.fl.(f_clock) <- time;
  (* [next_event] folds the whole guard: [infinity] when nothing is in
     flight (cache-resident phases), the head arrival when the head
     cache is valid (streaming steady state — sweep only once it
     actually arrives), [neg_infinity] when the head must be
     recomputed. *)
  if Array.unsafe_get t.fl f_clock >= t.next_event then sweep t

(* The stream prefetcher also observes the first touch of a line it
   (or a software prefetch) brought in, so coverage is continuous
   rather than retraining every few lines. *)
let observe t ~now (f : fill) line =
  if not f.observed then begin
    f.observed <- true;
    hw_prefetch t ~now line
  end

(* The hot calling convention: the caller's clock comes in through
   [fl.(f_now)] and the completion time goes out through [fl.(f_ret)].
   Passing them as float argument/return would box both on every
   simulated memory instruction (the labelled wrappers below do
   exactly that, for callers off the hot path). *)
(* The open-coded steady-state fast path.  Guard:
   - [fifo_len = 0]: nothing is in flight (every live fill holds a fifo
     entry, so this implies [if_n = 0]) — the general path's inflight
     lookup and sweep would both be no-ops;
   - bus free in the past: no transfer extends beyond [now], so no
     deferred bus state could interact with this access (L1 hits never
     touch the bus anyway — the guard keeps the invariant trivially
     audit-able and costs one compare);
   - the set's MRU way holds the line: [Cache.hit_mru] then performs
     the identical hit-counter/dirty/LRU updates the general path
     would.
   Under the guard the general path reduces to: advance the
   consumption frontier, count the L1 hit, return [now + l1_lat] —
   which is exactly what the straight-line code below does.  Any
   failure falls through with *no* state changed. *)

let load_io t addr =
  let now = Array.unsafe_get t.fl f_now in
  t.n_loads <- t.n_loads + 1;
  if
    t.fifo_len = 0
    && Array.unsafe_get t.fl f_bus <= now
    && Cache.hit_mru t.l1 addr ~write:false
  then begin
    t.fast_loads <- t.fast_loads + 1;
    if now > Array.unsafe_get t.fl f_clock then Array.unsafe_set t.fl f_clock now;
    Array.unsafe_set t.fl f_ret (now +. t.l1_lat)
  end
  else if
    (* Second-tier fast path: L1 hit while fills are in flight.  Guard:
       no event is due ([now < next_event] — [next_event] is above the
       clock or [neg_infinity], so the general path's [tick] would not
       sweep), and the line is not in flight (so the general path would
       take its plain L1 branch, whose updates [hit_mru] reproduces
       exactly).  This is the streaming steady state: prefetches are
       outstanding but the demanded line already arrived. *)
    now < t.next_event
    && (t.if_n = 0 || if_find t (l2_line t addr) == no_fill)
    && Cache.hit_mru t.l1 addr ~write:false
  then begin
    t.fast_loads <- t.fast_loads + 1;
    if now > Array.unsafe_get t.fl f_clock then Array.unsafe_set t.fl f_clock now;
    Array.unsafe_set t.fl f_ret (now +. t.l1_lat)
  end
  else begin
    let l1_lat = t.l1_lat in
    let line = l2_line t addr in
    tick t now;
    (* hashing the line is pointless when nothing is in flight, which is
       every access of a cache-resident phase *)
    let f = if t.if_n = 0 then no_fill else if_find t line in
    if f != no_fill then begin
      f.fill_l1 <- true;
      f.l1_addr <- addr;
      observe t ~now f line;
      if f.arrival > now then begin
        (* hit under fill: ride the outstanding fetch *)
        tick t f.arrival;
        t.fl.(f_ret) <- fmax (now +. l1_lat) f.arrival
      end
      else begin
        settle t now line f;
        t.fl.(f_ret) <- now +. l1_lat
      end
    end
    else if Cache.access t.l1 ~addr ~write:false then t.fl.(f_ret) <- now +. l1_lat
    else if Cache.access t.l2 ~addr ~write:false then begin
      l1_evicted t now (Cache.insert t.l1 ~addr ~write:false);
      t.fl.(f_ret) <- now +. t.l2_lat
    end
    else begin
      let arrival = demand_fetch t ~now ~write:false addr in
      tick t arrival;
      t.fl.(f_ret) <- arrival
    end
  end

let load t ~addr ~now =
  t.fl.(f_now) <- now;
  load_io t addr;
  t.fl.(f_ret)

let store_io t addr =
  let now = Array.unsafe_get t.fl f_now in
  t.n_stores <- t.n_stores + 1;
  if
    t.fifo_len = 0
    && Array.unsafe_get t.fl f_bus <= now
    && Cache.hit_mru t.l1 addr ~write:true
  then begin
    (* same reduction as the load fast path; stores return no time *)
    t.fast_stores <- t.fast_stores + 1;
    if now > Array.unsafe_get t.fl f_clock then Array.unsafe_set t.fl f_clock now
  end
  else if
    (* second-tier fast path; see [load_io] *)
    now < t.next_event
    && (t.if_n = 0 || if_find t (l2_line t addr) == no_fill)
    && Cache.hit_mru t.l1 addr ~write:true
  then begin
    t.fast_stores <- t.fast_stores + 1;
    if now > Array.unsafe_get t.fl f_clock then Array.unsafe_set t.fl f_clock now
  end
  else begin
    let line = l2_line t addr in
    tick t now;
    let f = if t.if_n = 0 then no_fill else if_find t line in
    if f != no_fill then begin
      f.want_write <- true;
      f.fill_l1 <- true;
      f.l1_addr <- addr;
      observe t ~now f line;
      if f.arrival <= now then settle t now line f
    end
    else if Cache.access t.l1 ~addr ~write:true then ()
    else if Cache.access t.l2 ~addr ~write:false then
      l1_evicted t now (Cache.insert t.l1 ~addr ~write:true)
    else
      (* read-for-ownership: fetch the line, but do not stall *)
      ignore (demand_fetch t ~now ~write:true addr : float)
  end

let store t ~addr ~now =
  t.fl.(f_now) <- now;
  store_io t addr

let io t = t.fl
let io_now = f_now
let io_ret = f_ret

(* Flush the write-combining buffer: its contents cross the bus as one
   write burst. *)
let wc_flush t now =
  if t.fl.(f_wc) > 0.0 then begin
    claim_bytes t now t.fl.(f_wc);
    t.fl.(f_wc) <- 0.0
  end;
  t.wc_line <- -1

let nt_store_io t ~bytes addr =
  let now = Array.unsafe_get t.fl f_now in
  let cfg = t.cfg in
  tick t now;
  (* non-temporal stores gather in a write-combining buffer and go out
     in full-line bursts — this is what keeps them off the bus's
     read/write turnaround path *)
  let line = l2_line t addr in
  if line <> t.wc_line then begin
    wc_flush t now;
    t.wc_line <- line;
    t.nt_lines <- t.nt_lines + 1
  end;
  t.fl.(f_wc) <- t.fl.(f_wc) +. float_of_int bytes;
  (* coherence: a cached copy forces the streaming store through the
     coherence protocol — a dirty copy must be flushed first, and the
     round trip costs extra on some machines (this is where blind
     non-temporal stores lose on the Opteron-like model).  The cached
     copy stays usable for timing purposes: it now matches memory. *)
  let in_l1 = Cache.probe t.l1 ~addr and in_l2 = Cache.probe t.l2 ~addr in
  if in_l1 || in_l2 then begin
    let dirty1 = if in_l1 then Cache.access t.l1 ~addr ~write:false else false in
    ignore dirty1;
    let stores_per_line = float_of_int (Cache.line_bytes t.l1 / max 1 bytes) in
    let pen = cfg.Config.wnt_read_penalty /. stores_per_line in
    t.fl.(f_bus) <- fmax now t.fl.(f_bus) +. pen;
    t.fl.(f_claims) <- t.fl.(f_claims) +. pen
  end

let nt_store t ~addr ~bytes ~now =
  t.fl.(f_now) <- now;
  nt_store_io t ~bytes addr

let bus_backlog t ~now = fmax 0.0 (t.fl.(f_bus) -. now)

let prefetch_io t ~kind addr =
  let now = Array.unsafe_get t.fl f_now in
  let cfg = t.cfg in
  tick t now;
  if t.pf_inflight >= cfg.Config.pf_queue then
    t.sw_pf_dropped <- t.sw_pf_dropped + 1
  else begin
    let fill_l1, fill_l2 =
      match kind with
      | Instr.T0 -> (true, true)
      | Instr.T1 -> (false, true)
      | Instr.Nta | Instr.W -> (true, false)
    in
    if not (Cache.probe t.l1 ~addr) then begin
      let line = l2_line t addr in
      let f = if_find t line in
      if f != no_fill then begin
        (* In flight ⇒ not in L2 (see [hw_prefetch]), so the old path
           always counted this prefetch and augmented the fill. *)
        t.sw_pf_issued <- t.sw_pf_issued + 1;
        f.fill_l1 <- f.fill_l1 || fill_l1;
        f.fill_l2 <- f.fill_l2 || fill_l2;
        if fill_l1 then f.l1_addr <- addr
      end
      else if Cache.probe t.l2 ~addr then begin
        if fill_l1 then
          (* L2-resident: promote to L1 without bus traffic *)
          l1_evicted t now (Cache.insert t.l1 ~addr ~write:false)
      end
      else begin
        t.sw_pf_issued <- t.sw_pf_issued + 1;
        schedule_issue t ~now ~fill_l1 ~fill_l2 ~l1_addr:addr line
      end
    end
  end

let prefetch t ~kind ~addr ~now =
  t.fl.(f_now) <- now;
  prefetch_io t ~kind addr

let warm_l2 t ~addr = ignore (Cache.insert t.l2 ~addr ~write:false : int option)

let warm_all t ~addr =
  ignore (Cache.insert t.l2 ~addr ~write:false : int option);
  ignore (Cache.insert t.l1 ~addr ~write:false : int option)

let drain_time t ~now =
  wc_flush t now;
  fmax now t.fl.(f_bus)

(* Cost (in bus cycles) of eventually writing back every dirty line the
   run left in the hierarchy.  The out-of-cache timers charge this: for
   working sets beyond L2 these writebacks happen inside the timed
   window anyway, and charging them uniformly gives the steady-state
   slope the extrapolation needs. *)
let pending_writeback_cost t =
  let l1b = Cache.dirty_lines t.l1 * Cache.line_bytes t.l1 in
  let l2b = Cache.dirty_lines t.l2 * Cache.line_bytes t.l2 in
  float_of_int (l1b + l2b) *. t.cfg.Config.wb_extra /. t.cfg.Config.bus_bytes_per_cycle

let stats t =
  let h1, m1 = Cache.stats t.l1 and h2, m2 = Cache.stats t.l2 in
  Printf.sprintf
    "L1 %d hit / %d miss; L2 %d hit / %d miss; swpf %d issued / %d dropped; hwpf %d; nt %d; bus %.0f"
    h1 m1 h2 m2 t.sw_pf_issued t.sw_pf_dropped t.hw_pf_issued t.nt_lines t.fl.(f_claims)

type profile = {
  loads : int;
  stores : int;
  fast_loads : int;
  fast_stores : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  demand_misses : int;
  demand_cycles : float;
  bus_cycles : float;
  sw_pf_issued : int;
  sw_pf_dropped : int;
  hw_pf_issued : int;
}

let profile t =
  let l1_hits, l1_misses = Cache.stats t.l1 in
  let l2_hits, l2_misses = Cache.stats t.l2 in
  {
    loads = t.n_loads;
    stores = t.n_stores;
    fast_loads = t.fast_loads;
    fast_stores = t.fast_stores;
    l1_hits;
    l1_misses;
    l2_hits;
    l2_misses;
    demand_misses = t.n_demand;
    demand_cycles = t.demand_cycles;
    bus_cycles = t.fl.(f_claims);
    sw_pf_issued = t.sw_pf_issued;
    sw_pf_dropped = t.sw_pf_dropped;
    hw_pf_issued = t.hw_pf_issued;
  }

(* Deep copy of the full mutable state, for the timers' warm-state
   checkpointing (see Ckpt in lib/sim).  Fills are copied record by
   record in both directions: a snapshot must not alias fills the live
   run will keep mutating, and a restore must not hand the run fills
   owned by the snapshot.  Empty/tombstone slots are forced back to the
   physical [no_fill] sentinel on restore — a marshalled-and-reread
   snapshot holds a structural copy of the sentinel, and the in-flight
   lookups compare physically. *)
type snapshot = {
  ms_l1 : Cache.snapshot;
  ms_l2 : Cache.snapshot;
  ms_fl : float array;
  ms_mshr : float array;
  ms_mshr_head : int;
  ms_mshr_len : int;
  ms_if_keys : int array;
  ms_if_vals : fill array;
  ms_if_n : int;
  ms_if_used : int;
  ms_streams : (int * int) array;  (* (expect, dir) per stream *)
  ms_next_stream : int;
  ms_sw_pf_issued : int;
  ms_sw_pf_dropped : int;
  ms_hw_pf_issued : int;
  ms_nt_lines : int;
  ms_pf_inflight : int;
  ms_fifo : int array;
  ms_fifo_head : int;
  ms_fifo_len : int;
  ms_last_dir_write : bool;
  ms_wc_line : int;
  ms_n_loads : int;
  ms_n_stores : int;
  ms_fast_loads : int;
  ms_fast_stores : int;
  ms_n_demand : int;
  ms_demand_cycles : float;
}

let copy_fill f =
  if f == no_fill then no_fill
  else
    {
      arrival = f.arrival;
      fill_l1 = f.fill_l1;
      fill_l2 = f.fill_l2;
      want_write = f.want_write;
      l1_addr = f.l1_addr;
      observed = f.observed;
      is_pf = f.is_pf;
    }

let snapshot t =
  {
    ms_l1 = Cache.snapshot t.l1;
    ms_l2 = Cache.snapshot t.l2;
    ms_fl = Array.sub t.fl 0 6;
    ms_mshr = Array.copy t.mshr;
    ms_mshr_head = t.mshr_head;
    ms_mshr_len = t.mshr_len;
    ms_if_keys = Array.copy t.if_keys;
    ms_if_vals = Array.map copy_fill t.if_vals;
    ms_if_n = t.if_n;
    ms_if_used = t.if_used;
    ms_streams = Array.map (fun s -> (s.expect, s.dir)) t.streams;
    ms_next_stream = t.next_stream;
    ms_sw_pf_issued = t.sw_pf_issued;
    ms_sw_pf_dropped = t.sw_pf_dropped;
    ms_hw_pf_issued = t.hw_pf_issued;
    ms_nt_lines = t.nt_lines;
    ms_pf_inflight = t.pf_inflight;
    ms_fifo = Array.copy t.fifo;
    ms_fifo_head = t.fifo_head;
    ms_fifo_len = t.fifo_len;
    ms_last_dir_write = t.last_dir_write;
    ms_wc_line = t.wc_line;
    ms_n_loads = t.n_loads;
    ms_n_stores = t.n_stores;
    ms_fast_loads = t.fast_loads;
    ms_fast_stores = t.fast_stores;
    ms_n_demand = t.n_demand;
    ms_demand_cycles = t.demand_cycles;
  }

(* Translate every absolute timestamp so the consumption frontier
   becomes 0.  The timing model only ever compares or differences
   times, so a uniform translation leaves every future decision — bus
   stalls, fill arrivals, MSHR retirement — exactly as it would have
   unfolded; it simply re-expresses the state in the clock base of a
   fresh [Exec] run, whose issue clocks start at 0.  The sampled timer
   uses this to continue a warmed-up run as if it were one long
   simulation.  Completed-but-unswept events go negative, which the
   model treats the same as 0 (all consumers are [fmax]-style). *)
let rebase t =
  let d = t.fl.(f_clock) in
  if d <> 0.0 then begin
    t.fl.(f_clock) <- 0.0;
    t.fl.(f_bus) <- t.fl.(f_bus) -. d;
    let mask = Array.length t.mshr - 1 in
    for i = 0 to t.mshr_len - 1 do
      let j = (t.mshr_head + i) land mask in
      t.mshr.(j) <- t.mshr.(j) -. d
    done;
    Array.iteri
      (fun i k ->
        if k >= 0 then begin
          let f = t.if_vals.(i) in
          f.arrival <- f.arrival -. d
        end)
      t.if_keys;
    (* Same recompute sentinels as [restore]: pure acceleration state. *)
    t.head_line <- -1;
    t.head_fill <- no_fill;
    t.next_event <- (if t.fifo_len = 0 then infinity else neg_infinity)
  end

let restore t s =
  (* Structural-shape guards; Cache.restore validates cache geometry.
     Semantic compatibility (same latencies, bus width, ...) is the
     caller's contract — Ckpt keys snapshots by a digest of the whole
     machine config. *)
  Cache.restore t.l1 s.ms_l1;
  Cache.restore t.l2 s.ms_l2;
  if Array.length s.ms_mshr <> Array.length t.mshr then
    invalid_arg "Memsys.restore: MSHR ring capacity mismatch";
  if Array.length s.ms_streams <> Array.length t.streams then
    invalid_arg "Memsys.restore: prefetch stream count mismatch";
  Array.blit s.ms_fl 0 t.fl 0 6;
  Array.blit s.ms_mshr 0 t.mshr 0 (Array.length t.mshr);
  t.mshr_head <- s.ms_mshr_head;
  t.mshr_len <- s.ms_mshr_len;
  t.if_keys <- Array.copy s.ms_if_keys;
  t.if_vals <-
    Array.mapi
      (fun i f -> if s.ms_if_keys.(i) < 0 then no_fill else copy_fill f)
      s.ms_if_vals;
  t.if_n <- s.ms_if_n;
  t.if_used <- s.ms_if_used;
  Array.iteri
    (fun i st ->
      let expect, dir = s.ms_streams.(i) in
      st.expect <- expect;
      st.dir <- dir)
    t.streams;
  t.next_stream <- s.ms_next_stream;
  t.sw_pf_issued <- s.ms_sw_pf_issued;
  t.sw_pf_dropped <- s.ms_sw_pf_dropped;
  t.hw_pf_issued <- s.ms_hw_pf_issued;
  t.nt_lines <- s.ms_nt_lines;
  t.pf_inflight <- s.ms_pf_inflight;
  t.fifo <- Array.copy s.ms_fifo;
  t.fifo_head <- s.ms_fifo_head;
  t.fifo_len <- s.ms_fifo_len;
  (* Acceleration caches restart at their recompute sentinels, exactly
     as [reset] leaves them: the first sweep rebuilds the head cache,
     so this is pure acceleration state and never changes behavior. *)
  t.head_line <- -1;
  t.head_fill <- no_fill;
  t.next_event <- (if s.ms_fifo_len = 0 then infinity else neg_infinity);
  t.last_dir_write <- s.ms_last_dir_write;
  t.wc_line <- s.ms_wc_line;
  t.n_loads <- s.ms_n_loads;
  t.n_stores <- s.ms_n_stores;
  t.fast_loads <- s.ms_fast_loads;
  t.fast_stores <- s.ms_fast_stores;
  t.n_demand <- s.ms_n_demand;
  t.demand_cycles <- s.ms_demand_cycles
