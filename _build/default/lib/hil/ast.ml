(** Abstract syntax of HIL, the kernel input language of FKO.

    HIL is kept close to ANSI C in form (assignments, loops, gotos) but
    follows Fortran-77 usage rules: output arrays may not alias unless
    annotated, and all information the backend would otherwise need deep
    front-end analysis for is supplied as mark-up (which loop to tune
    empirically, which arrays are known to be cache-resident, ...). *)

(** Floating-point precision of a scalar or of an array's elements. *)
type fptype = Single | Double

(** Types of HIL values: loop indices and integer results are [Int];
    pointers ([Ptr]) designate the contiguous vectors the Level 1 BLAS
    operate on. *)
type ty = Int | Fp of fptype | Ptr of fptype

(** Mark-up flags attached to pointer parameters.

    - [Output]: the kernel stores through this pointer (candidate for
      non-temporal writes).
    - [No_prefetch]: the user asserts the array is already cache-resident,
      removing it from the prefetch search space.
    - [May_alias]: suppresses the default Fortran-style no-alias rule. *)
type flag = Output | No_prefetch | May_alias

type binop = Add | Sub | Mul | Div

(** Comparison operators usable in [If_goto] conditions. *)
type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int_lit of int
  | Fp_lit of float
  | Var of string  (** scalar variable or loop index *)
  | Load of string * int  (** [Load (p, k)] is [p\[k\]], [k] a literal *)
  | Binop of binop * expr * expr
  | Abs of expr
  | Sqrt of expr
  | Neg of expr

type stmt =
  | Assign of string * expr  (** [s = e] *)
  | Assign_op of binop * string * expr  (** [s += e], [s *= e], ... *)
  | Store of string * int * expr  (** [p\[k\] = e] *)
  | Ptr_inc of string * int  (** [p += k] (elements) *)
  | Ptr_inc_var of string * string
      (** [p += inc] with a runtime integer stride (elements) — the
          strided-vector case of the BLAS API.  Strided loops are legal
          but fall outside the vectorizer/prefetcher fast path. *)
  | Loop of loop
  | If_goto of cmpop * expr * expr * string  (** [IF (a < b) GOTO l] *)
  | If_then of cmpop * expr * expr * stmt list * stmt list
      (** scoped conditional [IF (a < b) THEN ... ELSE ... ENDIF] — a
          later addition; the paper notes "our HIL does not yet support
          scoped ifs" *)
  | Goto of string
  | Label of string
  | Return of expr option

(** A counted loop [LOOP i = from, to\[, step\]].  The index runs from
    [from] while it has not reached [to], stepping by [step] ([+1] or
    [-1]).  [opt = true] marks the loop for empirical tuning
    ([OPTLOOP] in the concrete syntax): FKO requires a loop to be
    flagged as important before it is iteratively tuned. *)
and loop = {
  loop_var : string;
  loop_from : expr;
  loop_to : expr;
  loop_step : int;
  loop_body : stmt list;
  loop_opt : bool;
  loop_speculate : bool;
      (** [SPECULATE] mark-up: the user asserts that conditional
          updates in this loop may be evaluated speculatively, enabling
          the compare-mask vectorization of max-with-index reductions
          (the paper's suggested way to let the compiler vectorize
          iamax "in a narrow way" via user mark-up) *)
}

type param = { p_name : string; p_ty : ty; p_flags : flag list }

(** A local declaration [x, y : double = init]. *)
type decl = { d_names : string list; d_ty : ty; d_init : float option }

type kernel = {
  k_name : string;
  k_params : param list;
  k_locals : decl list;
  k_ret : ty option;
  k_body : stmt list;
}

(** [fp_bytes p] is the element size in bytes of precision [p]. *)
let fp_bytes = function Single -> 4 | Double -> 8

(** [veclen p] is the number of elements of precision [p] in a 16-byte
    SIMD vector (4 for single, 2 for double), as in the paper. *)
let veclen = function Single -> 4 | Double -> 2

let string_of_fptype = function Single -> "single" | Double -> "double"

let string_of_ty = function
  | Int -> "int"
  | Fp p -> string_of_fptype p
  | Ptr p -> "ptr " ^ string_of_fptype p

let string_of_binop = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let string_of_cmpop = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

(** [negate_cmp c] is the comparison testing the opposite outcome. *)
let negate_cmp = function
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Eq -> Ne
  | Ne -> Eq
