type t = { mutable counter : int }

let create ?(start = 0) () = { counter = start }

let next g =
  let id = g.counter in
  g.counter <- id + 1;
  id

let peek g = g.counter
let reserve g n = if g.counter < n then g.counter <- n
