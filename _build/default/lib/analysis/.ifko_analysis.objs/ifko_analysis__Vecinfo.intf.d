lib/analysis/vecinfo.mli: Ifko_codegen Instr Reg
