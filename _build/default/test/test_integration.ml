(* End-to-end integration: a miniature study through the evaluation
   harness, figure rendering, and the headline claims. *)
open Ifko_blas

let mini_study =
  lazy
    (Ifko_eval.Eval.run_study
       ~kernels:
         [ { Defs.routine = Defs.Asum; prec = Instr.D };
           { Defs.routine = Defs.Copy; prec = Instr.D };
           { Defs.routine = Defs.Iamax; prec = Instr.S };
         ]
       ~cfg:Ifko_machine.Config.p4e ~context:Ifko_sim.Timer.Out_of_cache ~n:80000 ~seed:77 ())

let test_study_verified () =
  let study = Lazy.force mini_study in
  List.iter
    (fun (r : Ifko_eval.Eval.kernel_result) ->
      Alcotest.(check bool) (r.Ifko_eval.Eval.display_name ^ " verified") true
        r.Ifko_eval.Eval.verified)
    study.Ifko_eval.Eval.results

let test_every_method_positive () =
  let study = Lazy.force mini_study in
  List.iter
    (fun (r : Ifko_eval.Eval.kernel_result) ->
      List.iter
        (fun (_, v) -> Alcotest.(check bool) "positive MFLOPS" true (v > 0.0))
        r.Ifko_eval.Eval.mflops)
    study.Ifko_eval.Eval.results

let test_ifko_beats_fko () =
  let study = Lazy.force mini_study in
  List.iter
    (fun (r : Ifko_eval.Eval.kernel_result) ->
      Alcotest.(check bool)
        (r.Ifko_eval.Eval.display_name ^ ": search never loses to defaults")
        true
        (List.assoc Ifko_eval.Eval.Ifko r.Ifko_eval.Eval.mflops
        >= List.assoc Ifko_eval.Eval.Fko r.Ifko_eval.Eval.mflops -. 1e-9))
    study.Ifko_eval.Eval.results

let test_atlas_wins_iamax () =
  let study = Lazy.force mini_study in
  let iamax =
    List.find
      (fun (r : Ifko_eval.Eval.kernel_result) -> r.Ifko_eval.Eval.kernel.Defs.routine = Defs.Iamax)
      study.Ifko_eval.Eval.results
  in
  Alcotest.(check bool) "hand-tuned assembly wins iamax" true
    (List.assoc Ifko_eval.Eval.Atlas iamax.Ifko_eval.Eval.mflops
    > List.assoc Ifko_eval.Eval.Ifko iamax.Ifko_eval.Eval.mflops);
  Alcotest.(check string) "starred" "isamax*" iamax.Ifko_eval.Eval.display_name

let test_percentages () =
  let study = Lazy.force mini_study in
  let r = List.hd study.Ifko_eval.Eval.results in
  let best = Ifko_eval.Eval.best_mflops r in
  Alcotest.(check bool) "best is max" true
    (List.for_all (fun (_, v) -> v <= best) r.Ifko_eval.Eval.mflops);
  Alcotest.(check bool) "percent bounded" true
    (List.for_all
       (fun m ->
         let p = Ifko_eval.Eval.percent r m in
         p > 0.0 && p <= 100.0 +. 1e-9)
       Ifko_eval.Eval.methods);
  Alcotest.(check bool) "someone is at 100%" true
    (List.exists (fun m -> Ifko_eval.Eval.percent r m > 99.99) Ifko_eval.Eval.methods)

let test_figure_renderers () =
  let study = Lazy.force mini_study in
  let fig = Ifko_eval.Figures.relative_figure ~title:"t" study in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("figure mentions " ^ needle) true (Test_util.contains fig needle))
    [ "AVG"; "VAVG"; "ifko"; "ATLAS"; "isamax*" ];
  let t3 = Ifko_eval.Figures.table3 [ ("test", study) ] in
  Alcotest.(check bool) "table3 mentions UR:AE" true (Test_util.contains t3 "UR:AE");
  let f7 = Ifko_eval.Figures.fig7 [ ("test", study) ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("fig7 mentions " ^ needle) true (Test_util.contains f7 needle))
    [ "PF DST"; "WNT"; "Average contribution" ];
  Alcotest.(check bool) "table1 renders" true
    (Test_util.contains (Ifko_eval.Figures.table1 ()) "sum += fabs(x[i])");
  Alcotest.(check bool) "table2 renders" true
    (Test_util.contains (Ifko_eval.Figures.table2 ()) "P4E")

let test_fko_defaults_all_kernels_both_machines () =
  (* the statically-tuned FKO point must be buildable and correct for
     every kernel on both machine configurations *)
  List.iter
    (fun cfg ->
      List.iter
        (fun id ->
          let compiled = Hil_sources.compile id in
          let d =
            Ifko_transform.Params.default
              ~line_bytes:cfg.Ifko_machine.Config.prefetchable_line
              (Ifko_analysis.Report.analyze compiled)
          in
          let f = Ifko_search.Driver.compile_point ~cfg compiled d in
          let env = Workload.make_env id ~seed:55 200 in
          let expect = Workload.expectation id ~seed:55 200 in
          match
            Ifko_sim.Verify.check ~tol:(Workload.tolerance id ~n:200) ~ret_fsize:id.Defs.prec
              f env expect
          with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s on %s: %s" (Defs.name id) cfg.Ifko_machine.Config.name e)
        Defs.all)
    Ifko_machine.Config.all

let suite =
  [ Alcotest.test_case "study verified" `Slow test_study_verified;
    Alcotest.test_case "all methods run" `Slow test_every_method_positive;
    Alcotest.test_case "ifko >= FKO" `Slow test_ifko_beats_fko;
    Alcotest.test_case "ATLAS wins iamax" `Slow test_atlas_wins_iamax;
    Alcotest.test_case "percent arithmetic" `Slow test_percentages;
    Alcotest.test_case "figure renderers" `Slow test_figure_renderers;
    Alcotest.test_case "FKO defaults everywhere" `Slow test_fko_defaults_all_kernels_both_machines;
  ]
