open Ifko_transform

type probe = Params.t -> float

type result = {
  best : Params.t;
  best_perf : float;
  start_perf : float;
  contributions : (string * float) list;
  evaluations : int;
}

type batch_map = (Params.t -> float) -> Params.t list -> float list

type state = {
  probe : probe;
  map_batch : batch_map;
  cache : (Params.t, float) Hashtbl.t;
  mutable evals : int;
  mutable cur : Params.t;
  mutable cur_perf : float;
}

(* Explicit left-to-right map, so the sequential path has a defined
   probe order to be bit-identical with. *)
let seq_map f xs = List.rev (List.rev_map f xs)

(* Try every candidate produced by [variants]; keep the best.

   Candidates are independent of each other (each probe sees only its
   own parameter point, never [cur]), so the batch's not-yet-memoized
   points can be evaluated together through [map_batch] — concurrently,
   when the driver supplies a domain pool.  The winner is then selected
   by a sequential left-to-right fold with a strict [>], exactly as the
   original one-at-a-time loop did: the first candidate wins ties, so
   the search trajectory does not depend on the parallelism degree. *)
let sweep st variants =
  let batched = Hashtbl.create 8 in
  let rec fresh_of = function
    | [] -> []
    | p :: rest ->
      if Hashtbl.mem st.cache p || Hashtbl.mem batched p then fresh_of rest
      else begin
        Hashtbl.replace batched p ();
        p :: fresh_of rest
      end
  in
  let fresh = fresh_of variants in
  let vals = st.map_batch st.probe fresh in
  List.iter2 (fun p v -> Hashtbl.replace st.cache p v) fresh vals;
  st.evals <- st.evals + List.length fresh;
  List.iter
    (fun p ->
      let v = Hashtbl.find st.cache p in
      if v > st.cur_perf then begin
        st.cur <- p;
        st.cur_perf <- v
      end)
    variants

let set_pf_dist (p : Params.t) name dist =
  {
    p with
    Params.prefetch =
      List.map
        (fun (a, (s : Params.pf_param)) ->
          if a = name then (a, { s with Params.pf_dist = dist }) else (a, s))
        p.Params.prefetch;
  }

let set_pf_ins (p : Params.t) name ins =
  {
    p with
    Params.prefetch =
      List.map
        (fun (a, (s : Params.pf_param)) ->
          if a = name then (a, { s with Params.pf_ins = ins }) else (a, s))
        p.Params.prefetch;
  }

let run ?(extensions = false) ?(map_batch = seq_map) ~cfg ~report ~init probe =
  let st =
    { probe; map_batch; cache = Hashtbl.create 64; evals = 0; cur = init;
      cur_perf = probe init }
  in
  st.evals <- 1;
  Hashtbl.replace st.cache init st.cur_perf;
  let start_perf = st.cur_perf in
  let contributions = ref [] in
  let tuned name f =
    let before = st.cur_perf in
    f ();
    let ratio = if before > 0.0 then st.cur_perf /. before else 1.0 in
    contributions := (name, ratio) :: !contributions
  in
  let arrays = List.map fst init.Params.prefetch in
  (* SV: confirm the default choice (cheap: two points). *)
  tuned "SV" (fun () ->
      sweep st
        (List.map (fun sv -> { st.cur with Params.sv = sv }) (Space.sv_candidates report)));
  (* WNT *)
  tuned "WNT" (fun () ->
      sweep st
        (List.map (fun wnt -> { st.cur with Params.wnt = wnt }) (Space.wnt_candidates report)));
  (* Prefetch distance, one array at a time (including "no prefetch"
     via the instruction dimension below). *)
  tuned "PF DST" (fun () ->
      List.iter
        (fun name ->
          sweep st (List.map (set_pf_dist st.cur name) (Space.pf_dist_candidates cfg)))
        arrays);
  (* Prefetch instruction flavour per array. *)
  tuned "PF INS" (fun () ->
      List.iter
        (fun name ->
          sweep st (List.map (set_pf_ins st.cur name) (Space.pf_ins_candidates cfg)))
        arrays);
  (* Unrolling. *)
  tuned "UR" (fun () ->
      sweep st
        (List.map (fun u -> { st.cur with Params.unroll = u }) (Space.unroll_candidates report)));
  (* Accumulator expansion. *)
  tuned "AE" (fun () ->
      sweep st
        (List.map (fun ae -> { st.cur with Params.ae = ae }) (Space.ae_candidates report)));
  (* Extension dimensions (paper future work), when enabled. *)
  if extensions then begin
    tuned "BF" (fun () ->
        sweep st
          (List.map
             (fun bf -> { st.cur with Params.bf = bf })
             (Space.bf_candidates ~extensions report)));
    tuned "CISC" (fun () ->
        sweep st
          (List.map
             (fun cisc -> { st.cur with Params.cisc })
             (Space.cisc_candidates ~extensions report)))
  end;
  (* Restricted 2-D refinement over the known UR x AE interaction. *)
  tuned "UR*AE" (fun () ->
      let u0 = st.cur.Params.unroll in
      let urs =
        List.sort_uniq compare
          (List.filter (fun u -> u >= 1 && u <= report.Ifko_analysis.Report.max_unroll)
             [ u0 / 2; u0; u0 * 2 ])
      in
      let aes = List.filter (fun a -> a = 0 || a >= 2) (Space.ae_candidates report) in
      sweep st
        (List.concat_map
           (fun u -> List.map (fun ae -> { st.cur with Params.unroll = u; Params.ae = ae }) aes)
           urs));
  (* Re-polish the prefetch pair after the computational shape settled
     (a second, shorter pass — the "defacto expert system / search
     hybrid" the paper describes): UR and AE change how many issue
     slots prefetch costs, so both the instruction (including "none")
     and the distance are revisited. *)
  tuned "PF2" (fun () ->
      List.iter
        (fun name ->
          sweep st (List.map (set_pf_ins st.cur name) (Space.pf_ins_candidates cfg));
          sweep st (List.map (set_pf_dist st.cur name) (Space.pf_dist_candidates cfg)))
        arrays);
  {
    best = st.cur;
    best_perf = st.cur_perf;
    start_perf;
    contributions = List.rev !contributions;
    evaluations = st.evals;
  }
