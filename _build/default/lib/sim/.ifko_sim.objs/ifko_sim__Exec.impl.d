lib/sim/exec.ml: Array Block Bytes Cfg Config Env Float Hashtbl Ifko_machine Instr Int32 Int64 List Memsys Option Printf Reg
