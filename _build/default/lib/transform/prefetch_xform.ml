(** Software prefetch insertion (PF).

    For each selected array, inserts prefetches of the chosen flavour
    at the chosen byte distance ahead of the current position.  One
    prefetch request is emitted per cache line the unrolled body
    consumes (each x86 prefetch fetches a single line), and the
    requests are spread evenly through the body: many machines drop
    prefetches issued while the bus is busy, so their placement is the
    one scheduling decision that still matters on out-of-order x86
    (paper, Section 2.2.3). *)

open Ifko_codegen
open Ifko_analysis

(* Insert [extra] instructions into [instrs] at evenly spaced points. *)
let spread instrs extra =
  match extra with
  | [] -> instrs
  | _ ->
    let n = List.length instrs and k = List.length extra in
    if n = 0 then extra
    else begin
      let gap = max 1 (n / k) in
      let rec go i pending remaining =
        match (pending, remaining) with
        | [], _ -> remaining
        | _, [] -> pending
        | p :: ps, r :: rs ->
          if i mod gap = 0 then p :: go (i + 1) ps (r :: rs) else r :: go (i + 1) pending rs
      in
      go 1 extra instrs
    end

let apply (compiled : Lower.compiled) ~line_bytes (settings : (string * Params.pf_param) list) =
  match compiled.Lower.loopnest with
  | None -> ()
  | Some ln ->
    let f = compiled.Lower.func in
    let moving = Ptrinfo.analyze compiled in
    let entry_label =
      match (Cfg.find_block_exn f ln.Loopnest.header).Block.term with
      | Block.Br { ifnot; _ } -> ifnot
      | _ -> invalid_arg "Prefetch_xform: malformed loop header"
    in
    let body = Cfg.find_block_exn f entry_label in
    let prefetches =
      List.concat_map
        (fun (name, (p : Params.pf_param)) ->
          match p.Params.pf_ins with
          | None -> []
          | Some kind -> (
            match
              List.find_opt
                (fun (m : Ptrinfo.moving) -> m.Ptrinfo.array.Lower.a_name = name)
                moving
            with
            | None -> []
            | Some m when m.Ptrinfo.stride = 0 -> []
            | Some m ->
              let stride = m.Ptrinfo.stride in
              let reg = m.Ptrinfo.array.Lower.a_reg in
              let lines = max 1 ((abs stride + line_bytes - 1) / line_bytes) in
              List.init lines (fun j ->
                  let ahead = p.Params.pf_dist + (j * line_bytes) in
                  let disp = if stride >= 0 then ahead else -ahead in
                  Instr.Prefetch (kind, Instr.mk_mem ~disp reg))))
        settings
    in
    body.Block.instrs <- spread body.Block.instrs prefetches
