(** Register allocation.

    An iterated linear scan: live intervals are built from global
    liveness over the laid-out blocks, allocated greedily to the
    architectural file (6 general-purpose registers — two of the
    x86-like eight are reserved for the stack and frame pointers — and
    8 XMM registers), and when demand exceeds supply the least
    valuable conflicting interval is spilled to a 16-byte frame slot
    and the scan re-runs on the rewritten code.

    The small register file is a deliberate model choice: it is what
    limits how far unrolling and accumulator expansion pay off, exactly
    as on the paper's x86 targets. *)

exception Failure of string

val run : Cfg.func -> unit
(** Allocate in place: every register in the function (including
    [params]) becomes physical, spill code is inserted, and
    [frame_slots] is updated.  @raise Failure if a register needed in a
    fused branch cannot be kept in a register (never happens on code
    the pipeline produces). *)
