open Ifko_codegen

type accum = { reg : Reg.t; fsize : Instr.fsize; adds : int }

(* Does [i] mention [r] in any role other than the full accumulating
   add [r <- r + b]? *)
let foreign_mention r i =
  match i with
  | Instr.Fop (_, Instr.Fadd, d, a, b) when Reg.equal d r && Reg.equal a r ->
    Reg.equal b r (* r + r doubles the value: not a pure accumulation *)
  | Instr.Fopm (_, Instr.Fadd, d, a, _) when Reg.equal d r && Reg.equal a r -> false
  | Instr.Vop (_, Instr.Fadd, d, a, b) when Reg.equal d r && Reg.equal a r ->
    Reg.equal b r
  | Instr.Vopm (_, Instr.Fadd, d, a, _) when Reg.equal d r && Reg.equal a r -> false
  | i ->
    List.exists (Reg.equal r) (Instr.defs i) || List.exists (Reg.equal r) (Instr.uses i)

let accumulating_add r i =
  match i with
  | Instr.Fop (sz, Instr.Fadd, d, a, b) when Reg.equal d r && Reg.equal a r && not (Reg.equal b r)
    -> Some sz
  | Instr.Fopm (sz, Instr.Fadd, d, a, _) when Reg.equal d r && Reg.equal a r -> Some sz
  | Instr.Vop (sz, Instr.Fadd, d, a, b) when Reg.equal d r && Reg.equal a r && not (Reg.equal b r)
    -> Some sz
  | Instr.Vopm (sz, Instr.Fadd, d, a, _) when Reg.equal d r && Reg.equal a r -> Some sz
  | _ -> None

let analyze (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> []
  | Some ln ->
    let f = compiled.Lower.func in
    let labels = (ln.Loopnest.header :: Loopnest.body_labels f ln) @ [ ln.Loopnest.latch ] in
    let blocks = List.filter_map (Cfg.find_block f) labels in
    (* Candidates: every Xmm register that is the target of an
       accumulating add somewhere in the loop. *)
    let candidates = ref Reg.Set.empty in
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            List.iter
              (fun d ->
                if d.Reg.cls = Reg.Xmm && accumulating_add d i <> None then
                  candidates := Reg.Set.add d !candidates)
              (Instr.defs i))
          b.Block.instrs)
      blocks;
    Reg.Set.fold
      (fun r acc ->
        let ok = ref true and adds = ref 0 and fsize = ref None in
        List.iter
          (fun b ->
            List.iter
              (fun i ->
                match accumulating_add r i with
                | Some sz ->
                  incr adds;
                  (match !fsize with
                  | None -> fsize := Some sz
                  | Some sz' -> if sz <> sz' then ok := false)
                | None -> if foreign_mention r i then ok := false)
              b.Block.instrs;
            if
              List.exists (Reg.equal r) (Block.term_uses b.Block.term)
              || List.exists (Reg.equal r) (Block.term_defs b.Block.term)
            then ok := false)
          blocks;
        match (!ok, !fsize) with
        | true, Some fsize -> { reg = r; fsize; adds = !adds } :: acc
        | _ -> acc)
      !candidates []
