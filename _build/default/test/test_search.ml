(* Search tests: the modified line search on synthetic objectives, its
   memoization, and the end-to-end driver on a real kernel. *)
open Ifko_blas
open Ifko_transform

let report_for id = Ifko_analysis.Report.analyze (Hil_sources.compile id)

let test_space_gates () =
  let dot = report_for { Defs.routine = Defs.Dot; prec = Instr.D } in
  let iamax = report_for { Defs.routine = Defs.Iamax; prec = Instr.D } in
  Alcotest.(check (list bool)) "dot can disable SV" [ true; false ]
    (Ifko_search.Space.sv_candidates dot);
  Alcotest.(check (list bool)) "iamax never vectorizes" [ false ]
    (Ifko_search.Space.sv_candidates iamax);
  Alcotest.(check (list int)) "no accumulators, no AE" [ 0 ]
    (Ifko_search.Space.ae_candidates (report_for { Defs.routine = Defs.Copy; prec = Instr.D }));
  Alcotest.(check bool) "W prefetch only on Opteron" true
    (List.mem (Some Instr.W) (Ifko_search.Space.pf_ins_candidates Ifko_machine.Config.opteron)
    && not (List.mem (Some Instr.W) (Ifko_search.Space.pf_ins_candidates Ifko_machine.Config.p4e)));
  Alcotest.(check (list bool)) "no outputs, no WNT" [ false ]
    (Ifko_search.Space.wnt_candidates dot)

(* Synthetic objective: reward a specific parameter combination; the
   search must find it from the default starting point. *)
let test_linesearch_finds_optimum () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let report = report_for id in
  let cfg = Ifko_machine.Config.p4e in
  let init = Params.default ~line_bytes:128 report in
  let evals = ref 0 in
  let probe (p : Params.t) =
    incr evals;
    let score = ref 100.0 in
    if p.Params.unroll = 8 then score := !score +. 50.0;
    if p.Params.ae = 3 then score := !score +. 25.0;
    (match List.assoc_opt "X" p.Params.prefetch with
    | Some { Params.pf_ins = ins; pf_dist = dist } ->
      if ins = Some Instr.T0 then score := !score +. 40.0;
      if dist = 1280 then score := !score +. 40.0
    | None -> ());
    if not p.Params.wnt then score := !score +. 5.0;
    !score
  in
  let r = Ifko_search.Linesearch.run ~cfg ~report ~init probe in
  Alcotest.(check int) "finds UR" 8 r.Ifko_search.Linesearch.best.Params.unroll;
  Alcotest.(check int) "finds AE" 3 r.Ifko_search.Linesearch.best.Params.ae;
  (match List.assoc "X" r.Ifko_search.Linesearch.best.Params.prefetch with
  | { Params.pf_ins = Some Instr.T0; pf_dist = 1280 } -> ()
  | _ -> Alcotest.fail "prefetch optimum missed");
  Alcotest.(check (float 1e-9)) "best score" 260.0 r.Ifko_search.Linesearch.best_perf;
  Alcotest.(check int) "eval accounting" !evals r.Ifko_search.Linesearch.evaluations

let test_linesearch_memoizes () =
  let id = { Defs.routine = Defs.Asum; prec = Instr.S } in
  let report = report_for id in
  let init = Params.default ~line_bytes:128 report in
  let seen = Hashtbl.create 64 in
  let dup = ref 0 in
  let probe p =
    if Hashtbl.mem seen p then incr dup else Hashtbl.replace seen p ();
    1.0
  in
  let r = Ifko_search.Linesearch.run ~cfg:Ifko_machine.Config.p4e ~report ~init probe in
  Alcotest.(check int) "no duplicate probes" 0 !dup;
  Alcotest.(check bool) "a real search happened" true (r.Ifko_search.Linesearch.evaluations > 20)

let test_linesearch_contributions_multiply () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let report = report_for id in
  let init = Params.default ~line_bytes:128 report in
  let probe (p : Params.t) =
    1.0 +. (0.1 *. float_of_int p.Params.unroll) +. if p.Params.wnt then -0.5 else 0.0
  in
  let r = Ifko_search.Linesearch.run ~cfg:Ifko_machine.Config.p4e ~report ~init probe in
  let product =
    List.fold_left (fun acc (_, ratio) -> acc *. ratio) 1.0
      r.Ifko_search.Linesearch.contributions
  in
  Alcotest.(check (float 1e-6)) "contributions compose to the total"
    (r.Ifko_search.Linesearch.best_perf /. r.Ifko_search.Linesearch.start_perf)
    product

let test_driver_improves_and_verifies () =
  let id = { Defs.routine = Defs.Asum; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let cfg = Ifko_machine.Config.p4e in
  let spec = Workload.timer_spec id ~seed:13 in
  let rejected = ref 0 in
  let test func =
    let env = Workload.make_env id ~seed:17 77 in
    let expect = Workload.expectation id ~seed:17 77 in
    let ok =
      Ifko_sim.Verify.check ~tol:(Workload.tolerance id ~n:77) ~ret_fsize:id.Defs.prec func
        env expect
      = Ok ()
    in
    if not ok then incr rejected;
    ok
  in
  let tuned =
    Ifko_search.Driver.tune ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000
      ~flops_per_n:2.0 ~test compiled
  in
  Alcotest.(check int) "no candidate computed wrong answers" 0 !rejected;
  Alcotest.(check bool) "search never loses to the default" true
    (tuned.Ifko_search.Driver.ifko_mflops >= tuned.Ifko_search.Driver.fko_mflops);
  Alcotest.(check bool) "asum gains from tuning on P4E" true
    (tuned.Ifko_search.Driver.ifko_mflops > 1.2 *. tuned.Ifko_search.Driver.fko_mflops);
  Validate.check_physical tuned.Ifko_search.Driver.best_func

let test_driver_rejects_wrong_answers () =
  (* a tester that rejects everything forces the search to keep the
     default point *)
  let id = { Defs.routine = Defs.Scal; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let spec = Workload.timer_spec id ~seed:13 in
  let tuned =
    Ifko_search.Driver.tune ~cfg:Ifko_machine.Config.p4e ~context:Ifko_sim.Timer.Out_of_cache
      ~spec ~n:80000 ~flops_per_n:1.0
      ~test:(fun _ -> false)
      compiled
  in
  Alcotest.(check bool) "nothing accepted" true
    (tuned.Ifko_search.Driver.ifko_mflops = neg_infinity
    || tuned.Ifko_search.Driver.ifko_mflops = tuned.Ifko_search.Driver.fko_mflops)

let suite =
  [ Alcotest.test_case "space gating" `Quick test_space_gates;
    Alcotest.test_case "linesearch finds optimum" `Quick test_linesearch_finds_optimum;
    Alcotest.test_case "linesearch memoizes" `Quick test_linesearch_memoizes;
    Alcotest.test_case "contributions multiply" `Quick test_linesearch_contributions_multiply;
    Alcotest.test_case "driver improves and verifies" `Slow test_driver_improves_and_verifies;
    Alcotest.test_case "driver rejects wrong answers" `Quick test_driver_rejects_wrong_answers;
  ]
