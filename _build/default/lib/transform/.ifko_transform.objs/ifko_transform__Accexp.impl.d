lib/transform/accexp.ml: Accuminfo Array Block Cfg Edit Ifko_analysis Ifko_codegen Instr List Loopnest Lower Reg
