(** The analysis report FKO communicates back to the search.

    Unlike a normal compiler, a compiler inside an iterative search
    must export what it learned about the kernel, because this defines
    the optimization space to be explored: whether the marked loop can
    be SIMD-vectorized, the maximum safe unrolling, which scalars are
    accumulator-expansion targets, and which arrays are prefetch
    candidates (with their access mix). *)

type t = {
  kernel_name : string;
  has_opt_loop : bool;
  vectorizable : bool;
  vec_reason : string;  (** diagnostic when not vectorizable *)
  precision : Instr.fsize option;  (** element precision of the loop *)
  max_unroll : int;
  accumulators : Accuminfo.accum list;
  prefetch_arrays : Ptrinfo.moving list;
  output_arrays : string list;  (** candidates for non-temporal writes *)
  gpr_pressure : int;
      (** peak simultaneously-live GPRs in the lowered kernel (per-block
          maximum from {!Lint.pressure}) *)
  xmm_pressure : int;  (** likewise for XMM registers *)
  dependence : Depend.t;
      (** the affine dependence analysis the legality verdicts rest on *)
  legal_sv : (unit, string) result;
      (** {!Legality.vectorize} verdict: [Error reason] points the
          search away from SV points the pipeline would refuse anyway *)
  legal_unroll : (unit, string) result;  (** {!Legality.unroll} verdict *)
  legal_wnt : (unit, string) result;  (** {!Legality.ntwrite} verdict *)
}

val analyze : Ifko_codegen.Lower.compiled -> t
(** Run all loop analyses on a freshly lowered kernel. *)

val features : t -> (string * float) list
(** The kernel's analysis fingerprint: a fixed, named, ordered numeric
    summary (op mix, stride classes, reduction/accumulator count,
    legality verdicts, pressures, dependence shape).  The warm-start
    seeder matches kernels by Euclidean distance over these vectors;
    the names make store entries self-describing and let future
    sessions extend the vector without invalidating old entries that
    share a prefix. *)

val to_string : t -> string
(** Render the report in the textual form the [ifko] CLI prints. *)
