open Ifko_machine

type tuned = {
  report : Ifko_analysis.Report.t;
  default_params : Ifko_transform.Params.t;
  best_params : Ifko_transform.Params.t;
  fko_mflops : float;
  ifko_mflops : float;
  best_func : Cfg.func;
  contributions : (string * float) list;
  evaluations : int;
}

let compile_point ?check ~cfg compiled params =
  let c =
    Ifko_transform.Pipeline.apply ?check ~line_bytes:cfg.Config.prefetchable_line compiled
      params
  in
  c.Ifko_codegen.Lower.func

(* Small deterministic workloads for per-pass translation validation:
   a remainder-heavy size and one spanning several unrolled bodies. *)
let check_sizes = [ 5; 34 ]

let tune ?(extensions = false) ?(check_each_pass = false) ~cfg ~context ~spec ~n
    ~flops_per_n ~test compiled =
  let report = Ifko_analysis.Report.analyze compiled in
  let default_params =
    Ifko_transform.Params.default ~line_bytes:cfg.Config.prefetchable_line report
  in
  let check =
    if not check_each_pass then None
    else
      Some
        (Ifko_transform.Passcheck.of_envs ~line_bytes:cfg.Config.prefetchable_line
           ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize
           (List.map (fun n () -> spec.Ifko_sim.Timer.make_env n) check_sizes))
  in
  let probe params =
    match compile_point ?check ~cfg compiled params with
    | exception (Ifko_transform.Passcheck.Pass_failed _ as broken) ->
      raise broken (* fail fast: a transform miscompiled this point *)
    | exception _ -> neg_infinity (* an illegal point is just skipped *)
    | func ->
      if not (test func) then neg_infinity
      else
        let cycles = Ifko_sim.Timer.measure ~cfg ~context ~spec ~n func in
        Ifko_sim.Timer.mflops ~cfg ~flops_per_n ~n ~cycles
  in
  let result = Linesearch.run ~extensions ~cfg ~report ~init:default_params probe in
  {
    report;
    default_params;
    best_params = result.Linesearch.best;
    fko_mflops = result.Linesearch.start_perf;
    ifko_mflops = result.Linesearch.best_perf;
    best_func = compile_point ~cfg compiled result.Linesearch.best;
    contributions = result.Linesearch.contributions;
    evaluations = result.Linesearch.evaluations;
  }
