lib/blas/ref_impl.mli: Instr
