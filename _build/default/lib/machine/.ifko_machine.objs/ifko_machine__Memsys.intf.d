lib/machine/memsys.mli: Config Instr
