(** The FKO optimization pipeline.

    Applies the fundamental transformations in their fixed order
    (SV, UR, LC, AE, PF, WNT — paper Section 2.2.3), then iterates the
    repeatable block (copy propagation, peephole, dead code, control
    flow cleanup) to a fixed point, allocates registers, and runs a
    final cleanup.  The input [compiled] kernel is never mutated; each
    call works on a fresh copy so the search can probe many parameter
    points from one lowering. *)

val snapshot : Ifko_codegen.Lower.compiled -> Ifko_codegen.Lower.compiled
(** Deep-copy a compiled kernel (blocks and loop-nest bookkeeping). *)

val max_repeat : int
(** Round budget of the repeatable block (a diagnostic is emitted when
    the fixpoint is not reached within it). *)

val repeatable : ?on_pass:(string -> unit) -> ?protect:string list -> Cfg.func -> int
(** Iterate the repeatable-transformation block until nothing changes;
    returns the number of iterations taken (at least 1).  [on_pass] is
    called with a pass name (e.g. ["deadcode (round 2)"]) after every
    sub-pass that changed the function — the per-pass checking hook.
    If {!max_repeat} rounds do not reach the fixpoint, an [IFK009]
    diagnostic is printed to stderr. *)

val apply :
  ?skip_regalloc:bool ->
  ?check:Passcheck.t ->
  ?inject:string * (Ifko_codegen.Lower.compiled -> unit) ->
  ?on_skip:(Ifko_analysis.Diag.t -> unit) ->
  line_bytes:int ->
  Ifko_codegen.Lower.compiled ->
  Params.t ->
  Ifko_codegen.Lower.compiled
(** [apply ~line_bytes compiled params] produces a fresh, fully
    transformed and register-allocated copy.  [skip_regalloc] leaves
    the result in virtual-register form (used by tests and the [-S]
    CLI mode before allocation).  The result validates under
    {!Validate.check_physical} (or {!Validate.check} when allocation
    is skipped).

    [check] enables per-pass checking: after each fundamental
    transform, each repeatable sub-pass that fired, and each
    post-allocation step, the {!Ifko_analysis.Lint} suite and
    {!Passcheck} translation validation run, raising
    {!Passcheck.Pass_failed} naming the first offending pass.

    [inject] is test-only fault injection: [(pass, break)] applies
    [break] right after the named pass so tests can assert that the
    checker localizes a deliberately broken transform.

    [on_skip] receives the {!Ifko_analysis.Legality} rejection
    diagnostic (IFK012) whenever a requested transform refused its
    parameters; the point still compiles, without that transform. *)
