lib/baselines/atlas_search.ml: Atlas_kernels Cfg Config Defs Ifko_blas Ifko_machine Ifko_sim Instr List Workload
