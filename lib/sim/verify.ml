type expectation = {
  arrays : (string * float array) list;
  ret : Exec.ret_val option;
}

let close ?(tol = 1e-5) a b =
  let diff = Float.abs (a -. b) in
  diff <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* Map an IEEE double onto a monotone signed integer line, so that the
   distance between two finite floats counts the representable values
   between them. *)
let ord64 x =
  let b = Int64.bits_of_float x in
  if Int64.compare b 0L < 0 then Int64.sub Int64.min_int b else b

let ord32 x =
  let b = Int64.of_int32 (Int32.bits_of_float x) in
  if Int64.compare b 0L < 0 then Int64.sub (Int64.of_int32 Int32.min_int) b else b

let ulp_diff ?(fsize = Instr.D) a b =
  if Float.is_nan a || Float.is_nan b then
    if Float.is_nan a && Float.is_nan b then 0L else Int64.max_int
  else
    let ord = match fsize with Instr.D -> ord64 | Instr.S -> ord32 in
    let d = Int64.sub (ord a) (ord b) in
    if Int64.compare d 0L < 0 then Int64.neg d else d

let close_ulp ?fsize ?(ulps = 4L) a b = Int64.compare (ulp_diff ?fsize a b) ulps <= 0

let exact_fp a b = Float.equal a b || (Float.is_nan a && Float.is_nan b)

let close_reduction ?fsize ?(ulps = 4096L) ?(abs_floor = 1e-6) a b =
  exact_fp a b || close_ulp ?fsize ~ulps a b || Float.abs (a -. b) <= abs_floor

let check_compiled ?(tol = 1e-5) ~ret_fsize cf env expectation =
  match Exec.exec ~ret_fsize cf env with
  | exception Exec.Trap msg -> Error (Printf.sprintf "trap: %s" msg)
  | result -> (
    let mismatch = ref None in
    let note msg = if !mismatch = None then mismatch := Some msg in
    List.iter
      (fun (name, expected) ->
        let got = Env.to_array env name in
        if Array.length got <> Array.length expected then
          note (Printf.sprintf "array %s: length %d, expected %d" name (Array.length got)
                  (Array.length expected))
        else
          Array.iteri
            (fun i e ->
              if !mismatch = None && not (close ~tol e got.(i)) then
                note (Printf.sprintf "array %s[%d]: got %.17g, expected %.17g" name i got.(i) e))
            expected)
      expectation.arrays;
    (match (expectation.ret, result.Exec.ret) with
    | None, _ -> ()
    | Some (Exec.Rint e), Some (Exec.Rint g) ->
      if e <> g then note (Printf.sprintf "return: got %d, expected %d" g e)
    | Some (Exec.Rfp e), Some (Exec.Rfp g) ->
      if not (close ~tol e g) then note (Printf.sprintf "return: got %.17g, expected %.17g" g e)
    | Some _, Some _ -> note "return: kind mismatch"
    | Some _, None -> note "return: kernel returned nothing");
    match !mismatch with None -> Ok () | Some msg -> Error msg)

let check ?tol ~ret_fsize func env expectation =
  check_compiled ?tol ~ret_fsize (Exec.compile func) env expectation
