lib/blas/defs.ml: Instr List
