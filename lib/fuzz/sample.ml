open Ifko_transform
module Rng = Ifko_util.Rng
module Space = Ifko_search.Space

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

(* The fuzzer samples the same raw value grids the search strategies
   walk ({!Ifko_search.Space}), widened with invalid-adjacent boundary
   values the pipeline must reject (or normalize) cleanly: unroll 0 and
   off-grid 17, accumulator count 1 (the "on but pointless" boundary),
   prefetch distances 0, 1 and a page-crossing 1 MiB.  Search-grid
   changes thus propagate to fuzz coverage automatically, while the
   boundary widening stays the fuzzer's own. *)
let point rng ~line_bytes ~(report : Ifko_analysis.Report.t) =
  let unrolls =
    (* big factors explode generated-kernel size for little extra
       coverage; keep the grid's small half, duplicated low values bias
       toward the interesting 1..4 range *)
    [ 0; 17; 1; 2; 4 ] @ List.filter (fun u -> u <= 16) Space.unroll_grid
  in
  let aes = [ 0; 0; 1 ] @ Space.ae_grid in
  let dists =
    (0 :: 1 :: (1 lsl 20)
    :: List.filter_map
         (fun k ->
           let d = k * line_bytes in
           if d <= 4096 then Some d else None)
         Space.pf_dist_ks)
  in
  let prefetch =
    List.filter_map
      (fun (m : Ifko_analysis.Ptrinfo.moving) ->
        let name = m.Ifko_analysis.Ptrinfo.array.Ifko_codegen.Lower.a_name in
        match Rng.int rng 4 with
        | 0 -> None
        | 1 ->
          Some
            ( name,
              { Params.pf_ins = Some (pick rng Space.pf_kind_grid);
                pf_dist = 2 * line_bytes } )
        | _ ->
          Some
            ( name,
              { Params.pf_ins = Some (pick rng Space.pf_kind_grid);
                pf_dist = pick rng dists } ))
      report.Ifko_analysis.Report.prefetch_arrays
  in
  {
    Params.sv =
      (if report.Ifko_analysis.Report.vectorizable then Rng.int rng 10 < 6
       else Rng.int rng 10 < 2);
    unroll = pick rng unrolls;
    lc = Rng.int rng 2 = 0;
    ae = pick rng aes;
    wnt = Rng.int rng 10 < 3;
    bf = pick rng ([ 0; 0; 0 ] @ Space.bf_grid);
    cisc = Rng.int rng 8 = 0;
    prefetch;
  }
