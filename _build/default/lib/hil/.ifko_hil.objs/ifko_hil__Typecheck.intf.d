lib/hil/typecheck.mli: Ast
