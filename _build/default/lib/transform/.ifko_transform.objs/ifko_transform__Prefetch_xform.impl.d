lib/transform/prefetch_xform.ml: Block Cfg Ifko_analysis Ifko_codegen Instr List Loopnest Lower Params Ptrinfo
