lib/machine/memsys.ml: Array Cache Config Float Hashtbl Instr Printf Queue
