open Ifko_analysis

exception Failure of string

type interval = {
  reg : Reg.t;
  mutable istart : int;
  mutable iend : int;
  mutable weight : int;  (** number of uses+defs; cheap spill = low weight *)
  mutable pinned : bool;  (** written by a fused branch: must stay in a register *)
}

(* Build live intervals over the linearized function. *)
let build_intervals (f : Cfg.func) =
  let live = Liveness.compute f in
  let tbl : (Reg.t, interval) Hashtbl.t = Hashtbl.create 32 in
  let touch pos r =
    match Hashtbl.find_opt tbl r with
    | Some iv ->
      if pos < iv.istart then iv.istart <- pos;
      if pos > iv.iend then iv.iend <- pos
    | None -> Hashtbl.replace tbl r { reg = r; istart = pos; iend = pos; weight = 0; pinned = false }
  in
  let weigh r =
    match Hashtbl.find_opt tbl r with Some iv -> iv.weight <- iv.weight + 1 | None -> ()
  in
  (* Parameters are defined at entry. *)
  List.iter (fun (_, r) -> touch 0 r) f.Cfg.params;
  let pos = ref 0 in
  List.iter
    (fun b ->
      incr pos;
      Reg.Set.iter (touch !pos) (Liveness.live_in live b.Block.label);
      List.iter
        (fun (i, live_after) ->
          incr pos;
          List.iter (touch !pos) (Instr.defs i);
          List.iter (touch !pos) (Instr.uses i);
          List.iter weigh (Instr.defs i);
          List.iter weigh (Instr.uses i);
          Reg.Set.iter (touch !pos) live_after)
        (Liveness.live_before_each live b);
      incr pos;
      List.iter (touch !pos) (Block.term_uses b.Block.term);
      List.iter (touch !pos) (Block.term_defs b.Block.term);
      List.iter weigh (Block.term_uses b.Block.term);
      Reg.Set.iter (touch !pos) (Liveness.live_out live b.Block.label);
      (match b.Block.term with
      | Block.Br { lhs; dec; _ } when dec > 0 -> (
        match Hashtbl.find_opt tbl lhs with
        | Some iv -> iv.pinned <- true
        | None -> ())
      | _ -> ()))
    f.Cfg.blocks;
  Hashtbl.fold (fun _ iv acc -> iv :: acc) tbl []

(* One linear-scan pass.  Returns either a complete assignment or the
   set of virtual registers to spill.  [spillable] excludes registers
   whose spilling cannot make progress (pinned counters, the reload
   temporaries of earlier rounds, minimal def-use ranges). *)
let scan ~spillable intervals =
  let sorted = List.sort (fun a b -> compare (a.istart, a.reg) (b.istart, b.reg)) intervals in
  let pool = function Reg.Gpr -> List.init 6 Fun.id | Reg.Xmm -> List.init 8 Fun.id in
  let free = Hashtbl.create 2 in
  Hashtbl.replace free Reg.Gpr (pool Reg.Gpr);
  Hashtbl.replace free Reg.Xmm (pool Reg.Xmm);
  let active : (Reg.cls, (interval * int) list) Hashtbl.t = Hashtbl.create 2 in
  Hashtbl.replace active Reg.Gpr [];
  Hashtbl.replace active Reg.Xmm [];
  let assignment : (Reg.t, int) Hashtbl.t = Hashtbl.create 32 in
  let spills = ref [] in
  List.iter
    (fun iv ->
      let cls = iv.reg.Reg.cls in
      (* Expire finished intervals. *)
      let still_active, done_ =
        List.partition (fun (a, _) -> a.iend >= iv.istart) (Hashtbl.find active cls)
      in
      Hashtbl.replace active cls still_active;
      Hashtbl.replace free cls
        (List.map snd done_ @ Hashtbl.find free cls);
      match Hashtbl.find free cls with
      | id :: rest ->
        Hashtbl.replace free cls rest;
        Hashtbl.replace assignment iv.reg id;
        Hashtbl.replace active cls ((iv, id) :: still_active)
      | [] ->
        (* Poletto's heuristic: spill the eligible candidate whose
           interval ends furthest away (ties: fewest uses).  Spilling a
           short-lived value cannot reduce pressure, so such intervals
           are never victims. *)
        let eligible (a, _) = (not a.pinned) && spillable a.reg && a.iend - a.istart > 3 in
        let candidates = List.filter eligible ((iv, -1) :: still_active) in
        (match
           List.sort (fun (a, _) (b, _) -> compare (-a.iend, a.weight) (-b.iend, b.weight))
             candidates
         with
        | [] -> raise (Failure "register pressure cannot be relieved by spilling")
        | (victim, vid) :: _ ->
          spills := victim.reg :: !spills;
          if vid >= 0 then begin
            (* hand the victim's register to the current interval *)
            Hashtbl.remove assignment victim.reg;
            Hashtbl.replace assignment iv.reg vid;
            Hashtbl.replace active cls
              ((iv, vid) :: List.filter (fun (a, _) -> a != victim) still_active)
          end))
    sorted;
  if !spills = [] then `Assigned assignment else `Spill !spills

(* Rewrite every touch of the spilled registers through fresh
   temporaries around loads/stores to a dedicated frame slot. *)
let insert_spill_code (f : Cfg.func) spilled =
  let slot_of : (Reg.t, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace slot_of r (Cfg.alloc_slot f)) spilled;
  let slot_mem disp = Instr.mk_mem ~disp Reg.frame_ptr in
  let load cls t disp =
    match cls with
    | Reg.Gpr -> Instr.Ild (t, slot_mem disp)
    | Reg.Xmm -> Instr.Vld (Instr.D, t, slot_mem disp)
  in
  let store cls disp t =
    match cls with
    | Reg.Gpr -> Instr.Ist (slot_mem disp, t)
    | Reg.Xmm -> Instr.Vst (Instr.D, slot_mem disp, t)
  in
  let is_spilled r = Hashtbl.mem slot_of r in
  (* Parameters that were spilled must be saved to their slot at entry,
     while their register is still live. *)
  let entry = Cfg.entry f in
  let param_saves =
    List.filter_map
      (fun (_, r) ->
        match Hashtbl.find_opt slot_of r with
        | Some disp -> Some (store r.Reg.cls disp r)
        | None -> None)
      f.Cfg.params
  in
  entry.Block.instrs <- param_saves @ entry.Block.instrs;
  List.iter
    (fun b ->
      let out = ref [] in
      let emit i = out := i :: !out in
      List.iter
        (fun i ->
          (* Skip the entry saves we just inserted. *)
          if List.memq i param_saves then emit i
          else begin
            let used = List.filter is_spilled (Instr.uses i) in
            let defined = List.filter is_spilled (Instr.defs i) in
            let mapping = Hashtbl.create 4 in
            List.iter
              (fun r ->
                if not (Hashtbl.mem mapping r) then begin
                  let t = Cfg.fresh_reg f r.Reg.cls in
                  Hashtbl.replace mapping r t;
                  emit (load r.Reg.cls t (Hashtbl.find slot_of r))
                end)
              used;
            List.iter
              (fun r ->
                if not (Hashtbl.mem mapping r) then
                  Hashtbl.replace mapping r (Cfg.fresh_reg f r.Reg.cls))
              defined;
            let subst r = Option.value ~default:r (Hashtbl.find_opt mapping r) in
            emit (Instr.map_regs subst i);
            List.iter
              (fun r -> emit (store r.Reg.cls (Hashtbl.find slot_of r) (Hashtbl.find mapping r)))
              defined
          end)
        b.Block.instrs;
      (* Terminator uses. *)
      let term_used = List.filter is_spilled (Block.term_uses b.Block.term) in
      let mapping = Hashtbl.create 2 in
      List.iter
        (fun r ->
          if not (Hashtbl.mem mapping r) then begin
            let t = Cfg.fresh_reg f r.Reg.cls in
            Hashtbl.replace mapping r t;
            emit (load r.Reg.cls t (Hashtbl.find slot_of r))
          end)
        term_used;
      if Hashtbl.length mapping > 0 then
        b.Block.term <-
          Block.map_term_regs
            (fun r -> Option.value ~default:r (Hashtbl.find_opt mapping r))
            b.Block.term;
      b.Block.instrs <- List.rev !out)
    f.Cfg.blocks

let apply_assignment (f : Cfg.func) assignment =
  let subst (r : Reg.t) =
    if r.Reg.phys then r
    else
      match Hashtbl.find_opt assignment r with
      | Some id -> Reg.phys r.Reg.cls id
      | None -> (
        (* Never-live register (e.g. unused parameter): any register of
           its class will do; pick one deterministically. *)
        match r.Reg.cls with
        | Reg.Gpr -> Reg.phys Reg.Gpr (r.Reg.id mod 6)
        | Reg.Xmm -> Reg.phys Reg.Xmm (r.Reg.id mod 8))
  in
  List.iter
    (fun b ->
      b.Block.instrs <- List.map (Instr.map_regs subst) b.Block.instrs;
      b.Block.term <- Block.map_term_regs subst b.Block.term)
    f.Cfg.blocks;
  subst

let run (f : Cfg.func) =
  (* Registers created by spill rewriting (ids at or above the floor)
     must never become victims themselves. *)
  let temp_floor = ref max_int in
  let spillable (r : Reg.t) = r.Reg.phys = false && r.Reg.id < !temp_floor in
  let rec attempt round =
    if round > 32 then raise (Failure "spilling did not converge");
    match scan ~spillable (build_intervals f) with
    | `Assigned assignment ->
      let subst = apply_assignment f assignment in
      f.Cfg.params <- List.map (fun (n, r) -> (n, subst r)) f.Cfg.params
    | `Spill spills ->
      temp_floor := min !temp_floor (Ifko_util.Ids.peek f.Cfg.reg_ids);
      insert_spill_code f spills;
      attempt (round + 1)
  in
  attempt 0
