let available_jobs () = Domain.recommended_domain_count ()

module Pool = struct
  type task = unit -> unit

  type t = {
    jobs : int;
    mutex : Mutex.t;
    work : Condition.t;  (** workers wait here for tasks (or shutdown) *)
    finished : Condition.t;  (** the submitter waits here for the batch *)
    queue : task Queue.t;
    mutable pending : int;  (** tasks of the current batch not yet completed *)
    mutable stop : bool;
    mutable workers : unit Domain.t array;
  }

  let rec worker pool =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* shutdown *)
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.mutex;
      worker pool
    end

  let create ~jobs =
    let jobs = max 1 (min jobs 64) in
    let pool =
      {
        jobs;
        mutex = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        queue = Queue.create ();
        pending = 0;
        stop = false;
        workers = [||];
      }
    in
    if jobs > 1 then
      pool.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
    pool

  let jobs t = t.jobs

  (* Tasks never raise: each writes an Ok/Error slot, and the submitter
     re-raises the lowest-index Error once the batch has settled, so
     failure behaviour does not depend on scheduling. *)
  let run t n f =
    if n <= 0 then [||]
    else if t.jobs <= 1 || n = 1 then begin
      let results = Array.make n (f 0) in
      for i = 1 to n - 1 do
        results.(i) <- f i
      done;
      results
    end
    else begin
      let slots = Array.make n None in
      Mutex.lock t.mutex;
      t.pending <- t.pending + n;
      for i = 0 to n - 1 do
        Queue.add (fun () -> slots.(i) <- Some (try Ok (f i) with e -> Error e)) t.queue
      done;
      Condition.broadcast t.work;
      while t.pending > 0 do
        Condition.wait t.finished t.mutex
      done;
      Mutex.unlock t.mutex;
      for i = 0 to n - 1 do
        match slots.(i) with Some (Error e) -> raise e | _ -> ()
      done;
      Array.init n (fun i ->
          match slots.(i) with Some (Ok v) -> v | _ -> assert false)
    end

  let map t f xs =
    let arr = Array.of_list xs in
    Array.to_list (run t (Array.length arr) (fun i -> f arr.(i)))

  let shutdown t =
    if t.workers <> [||] then begin
      Mutex.lock t.mutex;
      t.stop <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.workers;
      t.workers <- [||]
    end

  let with_pool ~jobs f =
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let map ~jobs f xs = Pool.with_pool ~jobs (fun p -> Pool.map p f xs)
