lib/sim/env.ml: Array Bytes Hashtbl Instr Int32 Int64 Printf
