(* Reference implementation and workload tests. *)
open Ifko_blas

let test_names () =
  Alcotest.(check string) "sdot" "sdot"
    (Defs.name { Defs.routine = Defs.Dot; prec = Instr.S });
  Alcotest.(check string) "idamax" "idamax"
    (Defs.name { Defs.routine = Defs.Iamax; prec = Instr.D });
  Alcotest.(check int) "fourteen kernels" 14 (List.length Defs.all)

let test_ref_dot () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (float 1e-12)) "dot" 32.0 (Ref_impl.dot Instr.D ~x ~y)

let test_ref_axpy () =
  let x = [| 1.0; 2.0 |] and y = [| 10.0; 20.0 |] in
  Ref_impl.axpy Instr.D ~alpha:2.0 ~x ~y;
  Alcotest.(check (float 1e-12)) "y0" 12.0 y.(0);
  Alcotest.(check (float 1e-12)) "y1" 24.0 y.(1)

let test_ref_swap_scal_copy () =
  let x = [| 1.0; 2.0 |] and y = [| 3.0; 4.0 |] in
  Ref_impl.swap ~x ~y;
  Alcotest.(check (float 0.0)) "swap x" 3.0 x.(0);
  Alcotest.(check (float 0.0)) "swap y" 1.0 y.(0);
  Ref_impl.scal Instr.D ~alpha:0.5 ~x;
  Alcotest.(check (float 0.0)) "scal" 1.5 x.(0);
  let z = Array.make 2 0.0 in
  Ref_impl.copy ~x ~y:z;
  Alcotest.(check (float 0.0)) "copy" 1.5 z.(0)

let test_ref_asum () =
  Alcotest.(check (float 1e-12)) "asum" 6.0 (Ref_impl.asum Instr.D ~x:[| 1.0; -2.0; 3.0 |])

let test_ref_iamax () =
  Alcotest.(check int) "simple" 1 (Ref_impl.iamax ~x:[| 1.0; -5.0; 3.0 |]);
  Alcotest.(check int) "first of equal maxima" 1 (Ref_impl.iamax ~x:[| 1.0; 5.0; -5.0 |]);
  Alcotest.(check int) "all zeros picks index 0" 0 (Ref_impl.iamax ~x:[| 0.0; 0.0 |]);
  Alcotest.(check int) "empty" 0 (Ref_impl.iamax ~x:[||])

let test_single_rounding_in_ref () =
  let x = Array.make 3 0.1 and y = Array.make 3 0.1 in
  let s = Ref_impl.dot Instr.S ~x ~y in
  Alcotest.(check (float 0.0)) "rounded per op" s
    (Int32.float_of_bits (Int32.bits_of_float s))

let test_workload_determinism () =
  let e1 = Workload.make_env { Defs.routine = Defs.Dot; prec = Instr.D } ~seed:5 100 in
  let e2 = Workload.make_env { Defs.routine = Defs.Dot; prec = Instr.D } ~seed:5 100 in
  Alcotest.(check bool) "same data" true
    (Ifko_sim.Env.to_array e1 "X" = Ifko_sim.Env.to_array e2 "X");
  let e3 = Workload.make_env { Defs.routine = Defs.Dot; prec = Instr.D } ~seed:6 100 in
  Alcotest.(check bool) "different seed" true
    (Ifko_sim.Env.to_array e1 "X" <> Ifko_sim.Env.to_array e3 "X")

let test_workload_bindings () =
  let id = { Defs.routine = Defs.Axpy; prec = Instr.S } in
  let env = Workload.make_env id ~seed:5 10 in
  (match Ifko_sim.Env.binding env "N" with
  | Ifko_sim.Env.Int_arg 10 -> ()
  | _ -> Alcotest.fail "N binding");
  (match Ifko_sim.Env.binding env "alpha" with
  | Ifko_sim.Env.Fp_arg (Instr.S, a) -> Alcotest.(check (float 0.0)) "alpha" Workload.alpha a
  | _ -> Alcotest.fail "alpha binding");
  match Ifko_sim.Env.binding env "Y" with
  | Ifko_sim.Env.Array_arg a -> Alcotest.(check int) "len" 10 a.Ifko_sim.Env.len
  | _ -> Alcotest.fail "Y binding"

let prop_expectation_matches_ref =
  QCheck.Test.make ~name:"expectation agrees with a recomputation" ~count:30
    QCheck.(pair (int_range 0 64) (int_range 0 1000))
    (fun (n, seed) ->
      let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
      let e = Workload.expectation id ~seed n in
      let x = Array.init n (fun i -> (List.assoc "X" e.Ifko_sim.Verify.arrays).(i)) in
      let y = Array.init n (fun i -> (List.assoc "Y" e.Ifko_sim.Verify.arrays).(i)) in
      match e.Ifko_sim.Verify.ret with
      | Some (Ifko_sim.Exec.Rfp d) -> Float.abs (d -. Ref_impl.dot Instr.D ~x ~y) < 1e-9
      | _ -> false)

let test_hil_sources_compile () =
  List.iter
    (fun id ->
      let c = Hil_sources.compile id in
      Alcotest.(check bool)
        (Defs.name id ^ " lowers with a loop")
        true
        (c.Ifko_codegen.Lower.loopnest <> None))
    Defs.all

let suite =
  [ Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "ref dot" `Quick test_ref_dot;
    Alcotest.test_case "ref axpy" `Quick test_ref_axpy;
    Alcotest.test_case "ref swap/scal/copy" `Quick test_ref_swap_scal_copy;
    Alcotest.test_case "ref asum" `Quick test_ref_asum;
    Alcotest.test_case "ref iamax" `Quick test_ref_iamax;
    Alcotest.test_case "single rounding" `Quick test_single_rounding_in_ref;
    Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
    Alcotest.test_case "workload bindings" `Quick test_workload_bindings;
    QCheck_alcotest.to_alcotest prop_expectation_matches_ref;
    Alcotest.test_case "HIL sources compile" `Quick test_hil_sources_compile;
  ]
