(** Block fetch (BF) — the paper's named future-work transformation.

    "The only other routine where ifko is significantly slower is in
    P4E/dcopy, where the hand-tuned assembly uses a technique called
    block fetch.  This technique can be performed generally and safely
    in a compiler, and we are planning to add it to FKO."
    (paper, Section 3.3; the technique is AMD's, reference [14].)

    The transformation restructures the main loop into blocks: before
    running the computation over a block's worth of elements, one load
    per cache line touches every input array's portion of the block,
    batching all bus reads together.  Combined with non-temporal writes
    this separates read and write bursts on the bus, amortizing its
    direction-turnaround penalty — which is exactly why the hand-tuned
    [dcopy*] wins on the P4E-like machine.

    Applied after UR/LC/AE and before prefetch insertion.  The original
    loop is kept as the remainder path, so correctness never depends on
    the block size dividing the trip count.  Off by default: FKO as
    published does not have it (enable with {!Params.t.bf}). *)

open Ifko_codegen
open Ifko_analysis

let fetch_line_bytes = 64

(* The transformation needs a straight-line main body over unit-stride
   arrays — the same shape the vectorizer accepts. *)
let apply (compiled : Lower.compiled) block_bytes =
  match compiled.Lower.loopnest with
  | None -> ()
  | Some _ when block_bytes <= 0 -> ()
  | Some ln -> (
    let f = compiled.Lower.func in
    let moving = Ptrinfo.analyze compiled in
    let elem =
      match compiled.Lower.arrays with
      | a :: _ -> Instr.fsize_bytes a.Lower.a_elem
      | [] -> 8
    in
    let per_iter = ln.Loopnest.per_iter in
    let block_elems = block_bytes / elem / per_iter * per_iter in
    match Loopnest.body_labels f ln with
    | [ body_label ]
      when block_elems >= per_iter
           && moving <> []
           && (Cfg.find_block_exn f body_label).Block.term = Block.Jmp ln.Loopnest.latch ->
      let body = Cfg.find_block_exn f body_label in
      (* one fetch touch per line of every array that is read *)
      let fetch_instrs =
        List.concat_map
          (fun (m : Ptrinfo.moving) ->
            if m.Ptrinfo.loads = 0 || m.Ptrinfo.stride = 0 then []
            else begin
              let reg = m.Ptrinfo.array.Lower.a_reg in
              let sz = m.Ptrinfo.array.Lower.a_elem in
              let bytes = block_elems * Instr.fsize_bytes sz in
              List.init
                ((bytes + fetch_line_bytes - 1) / fetch_line_bytes)
                (fun k -> Instr.Touch (sz, Instr.mk_mem ~disp:(k * fetch_line_bytes) reg))
            end)
          moving
      in
      if fetch_instrs = [] then ()
      else begin
        let bfh = Cfg.fresh_label f "bf_head" in
        let bfetch = Cfg.fresh_label f "bf_fetch" in
        let bbody = Cfg.fresh_label f "bf_body" in
        let blk = Cfg.fresh_reg f Reg.Gpr in
        let cnt = ln.Loopnest.cnt in
        (* the block's inner loop is a clone of the main body with its
           own latch comparing the countdown against the block target *)
        let latch_block = Cfg.find_block_exn f ln.Loopnest.latch in
        let inner_latch_instrs =
          List.filter
            (fun i ->
              match i with
              | Instr.Iop (Instr.Isub, d, s, Instr.Oimm _)
                when Reg.equal d cnt && Reg.equal s cnt -> false
              | _ -> true)
            latch_block.Block.instrs
        in
        let inner_body =
          Block.make bbody
            ~instrs:(body.Block.instrs @ inner_latch_instrs)
            ~term:
              (Block.Br
                 { cmp = Instr.Gt; lhs = cnt; rhs = Instr.Oreg blk; ifso = bbody;
                   ifnot = bfh; dec = per_iter })
        in
        let fetch_block =
          Block.make bfetch
            ~instrs:(fetch_instrs @ [ Instr.Iop (Instr.Isub, blk, cnt, Instr.Oimm block_elems) ])
            ~term:(Block.Jmp bbody)
        in
        let head_block =
          Block.make bfh
            ~term:
              (Block.Br
                 { cmp = Instr.Lt; lhs = cnt; rhs = Instr.Oimm block_elems;
                   ifso = ln.Loopnest.header; ifnot = bfetch; dec = 0 })
        in
        (* route the preheader through the block loop; the original loop
           (and its cleanup) handles the tail *)
        let preheader = Cfg.find_block_exn f ln.Loopnest.preheader in
        preheader.Block.term <-
          Block.map_term_labels
            (fun l -> if l = ln.Loopnest.header then bfh else l)
            preheader.Block.term;
        Cfg.insert_after f ~after:ln.Loopnest.preheader [ head_block; fetch_block; inner_body ]
      end
    | _ -> ())
