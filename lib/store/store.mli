(** Persistent, content-addressed store of empirical tuning results.

    Every probed point of the search costs a full FKO invocation plus a
    verification run and a simulated timing — the expensive part of the
    whole framework.  This store makes those results durable: the key
    is a digest of everything the outcome depends on (the lowered LIL
    kernel, the machine configuration, the timing context, the problem
    size, the workload seed and the parameter point), the value is the
    probe outcome with provenance.

    On disk the store is an append-only JSON-lines journal: one header
    line recording the schema version and workload seed, then one
    self-contained record per probed point.  Appends are a single
    buffered write + flush under a mutex, so worker domains can share
    one handle; a crash mid-write leaves at most one torn trailing
    line, which the loader tolerates (corrupt or truncated lines are
    counted and skipped, never fatal).  [compact] rewrites the journal
    with one record per key (last wins) via a temp file + atomic
    rename. *)

(** Outcome of one probe, as journaled. *)
type outcome =
  | Timed of { mflops : float; cycles : float }
      (** compiled, verified, timed; [mflops] is derived from [cycles]
          but both are stored so either view reloads exactly *)
  | Test_failed  (** compiled but computed wrong answers *)
  | Illegal  (** the pipeline rejected the parameter point *)

type t
(** An open store: the in-memory index plus the append channel. *)

val open_ : ?seed:int -> string -> t
(** [open_ ?seed path] loads the journal at [path] (creating it, with a
    header recording [seed], if absent).  Corrupt lines are skipped and
    counted, so a journal truncated by a crash loads fine. *)

val close : t -> unit
(** Flush and close the append channel.  Further [add]s reopen it. *)

val path : t -> string

val seed : t -> int option
(** The workload seed recorded in the journal header, if any. *)

val find : t -> key:string -> outcome option
(** Thread-safe lookup; maintains the {!hits}/{!misses} counters. *)

val add : t -> key:string -> params:string -> prov:string -> outcome -> unit
(** Thread-safe insert + journal append (one flushed line).  [params]
    and [prov] are human-readable provenance (the parameter point and
    "kernel\@machine/context/N"); they do not affect lookup. *)

val cached : ?store:t -> key:string -> params:string -> prov:string ->
  (unit -> outcome) -> outcome
(** [cached ?store ~key ... f] is [f ()] memoized through the store;
    with [?store] absent it is just [f ()]. *)

val hits : t -> int
(** [find]s answered from the store since [open_]. *)

val misses : t -> int
(** [find]s that missed since [open_]. *)

val entries : t -> int
(** Distinct keys currently held. *)

val corrupt : t -> int
(** Journal lines skipped as corrupt/truncated during [open_]. *)

val compact : t -> unit
(** Rewrite the journal as header + one line per key, atomically
    (temp file in the same directory, then rename). *)

(** {2 Keys}

    Keys are hex MD5 digests of a canonical encoding of the inputs.
    Content addressing gives invalidation for free: editing the kernel
    changes its lowered LIL, hence the digest, hence the key. *)

val digest : string list -> string
(** Digest of a list of fields (length-prefixed, so field boundaries
    cannot alias). *)

val probe_key :
  kernel:string ->
  machine:string ->
  context:string ->
  n:int ->
  seed:int ->
  check:bool ->
  params:string ->
  string
(** Key of one search probe.  [kernel] is the lowered-LIL rendering of
    the untransformed function (plus array metadata), [params] the
    canonical parameter-point encoding ({!Ifko_transform.Params.canonical}),
    [check] whether per-pass validation was on (it changes how broken
    points surface). *)

val timing_key :
  kind:string ->
  func:string ->
  machine:string ->
  context:string ->
  n:int ->
  seed:int ->
  string
(** Key of a raw timing of an already-built function ([func] is its
    LIL rendering) — used to journal the ATLAS-search and
    compiler-model baseline timings. [kind] namespaces the caller. *)

(** {2 Maintenance (on a path, without a live handle)} *)

val stat_string : string -> string
(** Human-readable summary of the journal at a path: entry and outcome
    counts, corrupt lines, header seed, file size. *)

val clear : string -> unit
(** Delete the journal file if it exists. *)
