type outcome =
  | Timed of { mflops : float; cycles : float }
  | Test_failed
  | Illegal

(* ---------------------------------------------------------------- *)
(* Minimal JSON for the journal and the serve protocol.  The writer
   side of journal records only ever emits flat objects of string /
   number / bool fields; the parser accepts full nesting so protocol
   responses (e.g. shard-store statistics) can embed objects and
   arrays.  Self-contained so the store adds no dependency. *)

module Json = struct
  type value =
    | S of string
    | N of float
    | B of bool
    | Null
    | O of (string * value) list
    | A of value list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* %.17g round-trips every finite double, so reloaded MFLOPS compare
     bit-identically with freshly computed ones. *)
  let number f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let rec add_value buf = function
    | S s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | N f -> Buffer.add_string buf (number f)
    | B b -> Buffer.add_string buf (if b then "true" else "false")
    | Null -> Buffer.add_string buf "null"
    | O fields -> add_object buf fields
    | A items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_value buf v)
        items;
      Buffer.add_char buf ']'

  and add_object buf fields =
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        add_value buf v)
      fields;
    Buffer.add_char buf '}'

  let render fields =
    let buf = Buffer.create 128 in
    add_object buf fields;
    Buffer.contents buf

  let render_value v =
    let buf = Buffer.create 128 in
    add_value buf v;
    Buffer.contents buf

  exception Bad

  (* One-line parser for the subset [render]/[render_value] produce
     (plus whitespace).  Any deviation raises [Bad]; the journal loader
     maps that to "corrupt", the protocol maps it to an error reply. *)
  let parse_value_at line pos =
    let n = String.length line in
    let peek () = if !pos >= n then raise Bad else line.[!pos] in
    let next () =
      let c = peek () in
      incr pos;
      c
    in
    let skip_ws () =
      while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c = if next () <> c then raise Bad in
    let literal word =
      let l = String.length word in
      if n - !pos >= l && String.sub line !pos l = word then pos := !pos + l else raise Bad
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 32 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let hex = Bytes.create 4 in
            for i = 0 to 3 do
              Bytes.set hex i (next ())
            done;
            let code = try int_of_string ("0x" ^ Bytes.to_string hex) with _ -> raise Bad in
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else raise Bad (* the writer only escapes control chars *)
          | _ -> raise Bad);
          go ()
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> S (parse_string ())
      | 't' -> literal "true"; B true
      | 'f' -> literal "false"; B false
      | 'n' -> literal "null"; Null
      | '{' -> O (parse_object ())
      | '[' ->
        ignore (next ());
        skip_ws ();
        if peek () = ']' then (ignore (next ()); A [])
        else begin
          let items = ref [] in
          let rec elements () =
            items := parse_value () :: !items;
            skip_ws ();
            match next () with
            | ',' -> elements ()
            | ']' -> ()
            | _ -> raise Bad
          in
          elements ();
          A (List.rev !items)
        end
      | _ ->
        let start = !pos in
        while
          !pos < n
          && match line.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false
        do
          incr pos
        done;
        if !pos = start then raise Bad;
        (try N (float_of_string (String.sub line start (!pos - start)))
         with _ -> raise Bad)
    and parse_object () =
      skip_ws ();
      expect '{';
      skip_ws ();
      if peek () = '}' then (ignore (next ()); [])
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match next () with
          | ',' -> members ()
          | '}' -> ()
          | _ -> raise Bad
        in
        members ();
        List.rev !fields
      end
    in
    parse_value ()

  let parse line =
    let pos = ref 0 in
    let v = match parse_value_at line pos with O fields -> fields | _ -> raise Bad in
    let n = String.length line in
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
      incr pos
    done;
    if !pos <> n then raise Bad;
    v

  let str fields k = match List.assoc_opt k fields with Some (S s) -> Some s | _ -> None
  let num fields k = match List.assoc_opt k fields with Some (N f) -> Some f | _ -> None
  let bool fields k = match List.assoc_opt k fields with Some (B b) -> Some b | _ -> None
end

(* ---------------------------------------------------------------- *)

(* [e_ts] is the wall-clock insertion time from the store's [clock]
   (0. under the default clock, in which case it is not journaled, so
   offline journals stay byte-deterministic); [e_seq] is the in-memory
   load/insert order, the tie-breaker that makes eviction ordering
   total. *)
type entry = { outcome : outcome; params : string; prov : string; e_ts : float; e_seq : int }

type t = {
  store_path : string;
  clock : unit -> float;
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable oc : out_channel option;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable corrupt_count : int;  (** unparseable complete lines *)
  mutable torn_count : int;  (** unparseable, newline-less trailing line *)
  mutable loaded_bytes : int;  (** journal prefix already folded into [table] *)
  mutable next_seq : int;
  mutable header_seed : int option;
  mutable saw_header : bool;  (** a header line (even seedless) was loaded *)
}

let schema_version = 1

let header_line ~seed =
  Json.render
    ([ ("ifko_store", Json.N (float_of_int schema_version)) ]
    @ match seed with None -> [] | Some s -> [ ("seed", Json.N (float_of_int s)) ])

let entry_line key e =
  let outcome_fields =
    match e.outcome with
    | Timed { mflops; cycles } ->
      [ ("o", Json.S "timed"); ("mflops", Json.N mflops); ("cycles", Json.N cycles) ]
    | Test_failed -> [ ("o", Json.S "test_failed") ]
    | Illegal -> [ ("o", Json.S "illegal") ]
  in
  Json.render
    ((("k", Json.S key) :: outcome_fields)
    @ [ ("params", Json.S e.params); ("prov", Json.S e.prov) ]
    @ if e.e_ts > 0.0 then [ ("ts", Json.N e.e_ts) ] else [])

let parse_entry ~seq fields =
  let str k = Json.str fields k in
  let num k = Json.num fields k in
  match str "k" with
  | None -> None
  | Some key ->
    let params = Option.value ~default:"" (str "params") in
    let prov = Option.value ~default:"" (str "prov") in
    let e_ts = Option.value ~default:0.0 (num "ts") in
    let mk outcome = Some (key, { outcome; params; prov; e_ts; e_seq = seq }) in
    (match str "o" with
    | Some "timed" ->
      (match (num "mflops", num "cycles") with
      | Some mflops, Some cycles -> mk (Timed { mflops; cycles })
      | _ -> None)
    | Some "test_failed" -> mk Test_failed
    | Some "illegal" -> mk Illegal
    | _ -> None)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Fold journal text from [from] into the table.  Complete lines that
   do not parse are counted corrupt.  The trailing newline-less
   fragment — what a crash (or, under replicas, a concurrent writer)
   mid-append leaves — is handled per [torn]: [`Count] records it as
   torn and consumes it, [`Leave] leaves it unconsumed so a later
   {!refresh} can pick up the completed line.  Returns the number of
   bytes consumed. *)
let fold_lines t ~torn s from =
  let n = String.length s in
  let pos = ref from in
  let consumed = ref from in
  let take line =
    if String.trim line <> "" then begin
      match Json.parse line with
      | exception Json.Bad -> t.corrupt_count <- t.corrupt_count + 1
      | fields ->
        (match List.assoc_opt "ifko_store" fields with
        | Some (Json.N _) ->
          t.saw_header <- true;
          (match List.assoc_opt "seed" fields with
          | Some (Json.N s) when t.header_seed = None ->
            t.header_seed <- Some (int_of_float s)
          | _ -> ())
        | _ ->
          let seq = t.next_seq in
          t.next_seq <- t.next_seq + 1;
          (match parse_entry ~seq fields with
          | Some (key, e) -> Hashtbl.replace t.table key e
          | None -> t.corrupt_count <- t.corrupt_count + 1))
    end
  in
  while !pos < n do
    match String.index_from_opt s !pos '\n' with
    | Some nl ->
      take (String.sub s !pos (nl - !pos));
      pos := nl + 1;
      consumed := !pos
    | None ->
      (* newline-less tail *)
      let tail = String.sub s !pos (n - !pos) in
      (match torn with
      | `Count ->
        if String.trim tail <> "" then begin
          match Json.parse tail with
          | exception Json.Bad -> t.torn_count <- t.torn_count + 1
          | _ -> take tail (* complete record, the crash only ate the newline *)
        end;
        consumed := n
      | `Leave -> ());
      pos := n
  done;
  !consumed - from

let load_journal t =
  let s = read_file t.store_path in
  let consumed = fold_lines t ~torn:`Count s 0 in
  t.loaded_bytes <- consumed

(* A crash mid-append can leave a torn line with no trailing newline;
   appending straight after it would glue the next record onto the torn
   one.  Start a fresh line whenever the journal does not end in \n. *)
let ends_in_newline path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let ok =
    len = 0
    ||
    (seek_in ic (len - 1);
     input_char ic = '\n')
  in
  close_in_noerr ic;
  ok

let append_channel t =
  match t.oc with
  | Some oc -> oc
  | None ->
    let needs_nl = Sys.file_exists t.store_path && not (ends_in_newline t.store_path) in
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.store_path in
    if needs_nl then output_char oc '\n';
    t.oc <- Some oc;
    oc

let open_ ?seed ?(clock = fun () -> 0.0) path =
  let t =
    {
      store_path = path;
      clock;
      mutex = Mutex.create ();
      table = Hashtbl.create 256;
      oc = None;
      hit_count = 0;
      miss_count = 0;
      corrupt_count = 0;
      torn_count = 0;
      loaded_bytes = 0;
      next_seq = 0;
      header_seed = None;
      saw_header = false;
    }
  in
  let existed = Sys.file_exists path in
  if existed then load_journal t;
  if (not existed) || (not t.saw_header && Hashtbl.length t.table = 0) then begin
    let oc = append_channel t in
    output_string oc (header_line ~seed ^ "\n");
    flush oc;
    t.header_seed <- seed;
    t.saw_header <- true
  end;
  t

let close t =
  Mutex.lock t.mutex;
  (match t.oc with
  | Some oc ->
    flush oc;
    close_out_noerr oc;
    t.oc <- None
  | None -> ());
  Mutex.unlock t.mutex

let path t = t.store_path
let seed t = t.header_seed

let find t ~key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.table key in
  (match r with
  | Some _ -> t.hit_count <- t.hit_count + 1
  | None -> t.miss_count <- t.miss_count + 1);
  Mutex.unlock t.mutex;
  Option.map (fun e -> e.outcome) r

let find_entry t ~key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.table key in
  Mutex.unlock t.mutex;
  Option.map (fun e -> (e.outcome, e.params, e.prov)) r

(* Tune-level entries (whole-search results journaled by the driver and
   the serve daemon) are distinguished from per-probe entries purely by
   their provenance prefix — the journal format is unchanged. *)
let is_tune_prov prov = String.length prov >= 5 && String.sub prov 0 5 = "tune "

(* Snapshot under the mutex, fold outside it, so [f] is free to use the
   store itself (journaling a derived entry, say) without deadlocking.
   Sorted-key order makes the fold deterministic regardless of append
   order — warm-start donor selection depends on that. *)
let fold_entries t ~init ~f =
  Mutex.lock t.mutex;
  let snap = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.table [] in
  Mutex.unlock t.mutex;
  let snap = List.sort (fun (a, _) (b, _) -> compare a b) snap in
  List.fold_left
    (fun acc (key, e) -> f acc ~key ~params:e.params ~prov:e.prov e.outcome)
    init snap

let iter_tunes t ~f =
  fold_entries t ~init:() ~f:(fun () ~key ~params ~prov outcome ->
      match outcome with
      | Timed tm when is_tune_prov prov ->
        f ~key ~params ~prov ~mflops:tm.mflops
      | Timed _ | Test_failed | Illegal -> ())

let add t ~key ~params ~prov outcome =
  Mutex.lock t.mutex;
  let e = { outcome; params; prov; e_ts = t.clock (); e_seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  Hashtbl.replace t.table key e;
  let oc = append_channel t in
  (* one write of one complete line: under O_APPEND this is what makes
     several replica processes able to share a journal *)
  output_string oc (entry_line key e ^ "\n");
  flush oc;
  Mutex.unlock t.mutex

let cached ?store ~key ~params ~prov f =
  match store with
  | None -> f ()
  | Some t ->
    (match find t ~key with
    | Some o -> o
    | None ->
      let o = f () in
      add t ~key ~params ~prov o;
      o)

(* Pick up records appended by other processes sharing the journal
   (replica mode): parse any complete lines past the already-loaded
   prefix.  A newline-less tail is left alone — it is another writer's
   append in flight, not corruption — and re-examined next time.  A
   file that shrank was compacted underneath us: reload it whole. *)
let refresh t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not (Sys.file_exists t.store_path) then ()
      else begin
        let s = read_file t.store_path in
        let len = String.length s in
        if len < t.loaded_bytes then begin
          Hashtbl.reset t.table;
          t.loaded_bytes <- 0
        end;
        if len > t.loaded_bytes then
          t.loaded_bytes <-
            t.loaded_bytes + fold_lines t ~torn:`Leave s t.loaded_bytes
      end)

let hits t = t.hit_count
let misses t = t.miss_count
let entries t = Hashtbl.length t.table
let corrupt t = t.corrupt_count + t.torn_count
let torn t = t.torn_count

let file_bytes path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in_noerr ic;
    n
  end

let bytes t = file_bytes t.store_path

let compact_locked t =
  (match t.oc with
  | Some oc ->
    flush oc;
    close_out_noerr oc;
    t.oc <- None
  | None -> ());
  let tmp = t.store_path ^ ".compact.tmp" in
  let oc = open_out_bin tmp in
  output_string oc (header_line ~seed:t.header_seed ^ "\n");
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table []) in
  List.iter
    (fun k -> output_string oc (entry_line k (Hashtbl.find t.table k) ^ "\n"))
    keys;
  close_out oc;
  Sys.rename tmp t.store_path;
  t.loaded_bytes <- file_bytes t.store_path

let compact t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> compact_locked t)

let evict ?max_bytes ?max_age ~now t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let removed = ref 0 in
      let remove k =
        Hashtbl.remove t.table k;
        incr removed
      in
      (* Age bound: entries journaled without a timestamp (e_ts = 0,
         e.g. by offline tooling under the default clock) have unknown
         age and are treated as arbitrarily old. *)
      (match max_age with
      | None -> ()
      | Some age ->
        let dead =
          Hashtbl.fold
            (fun k e acc -> if e.e_ts < now -. age then k :: acc else acc)
            t.table []
        in
        List.iter remove dead);
      (* Size bound on the *compacted* journal: oldest (ts, then load
         order) entries go first until the live set fits. *)
      (match max_bytes with
      | None -> ()
      | Some budget ->
        let header = String.length (header_line ~seed:t.header_seed) + 1 in
        let live = ref header in
        let all =
          Hashtbl.fold
            (fun k e acc ->
              let len = String.length (entry_line k e) + 1 in
              live := !live + len;
              (e.e_ts, e.e_seq, k, len) :: acc)
            t.table []
        in
        if !live > budget then begin
          let oldest_first = List.sort compare all in
          List.iter
            (fun (_, _, k, len) ->
              if !live > budget then begin
                remove k;
                live := !live - len
              end)
            oldest_first
        end);
      if !removed > 0 then compact_locked t;
      !removed)

(* ---------------------------------------------------------------- *)
(* Keys: hex MD5 of length-prefixed fields (no boundary aliasing). *)

let digest fields =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (string_of_int (String.length f));
      Buffer.add_char buf ':';
      Buffer.add_string buf f)
    fields;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* [fidelity] is appended only when present, so every key minted before
   the fidelity axis existed is unchanged (the digest is length-prefixed
   per field, so appending a field can never alias an old key either). *)
let probe_key ~kernel ~machine ~context ~n ~seed ~check ?fidelity ~params () =
  let base =
    [ "probe"; kernel; machine; context; string_of_int n; string_of_int seed;
      (if check then "check" else "nocheck"); params ]
  in
  digest (match fidelity with None -> base | Some f -> base @ [ "fidelity:" ^ f ])

let timing_key ~kind ~func ~machine ~context ~n ~seed =
  digest [ "timing"; kind; func; machine; context; string_of_int n; string_of_int seed ]

(* [strategy] is appended only when present, so every key minted before
   the strategy axis existed is unchanged (same convention as
   [probe_key]'s fidelity field). *)
let tune_key ?strategy ~kernel ~machine ~context ~n ~seed ~check ~flops_per_n () =
  let base =
    [ "tune"; kernel; machine; context; string_of_int n; string_of_int seed;
      (if check then "check" else "nocheck"); Printf.sprintf "%.17g" flops_per_n ]
  in
  digest (match strategy with None -> base | Some s -> base @ [ "strategy:" ^ s ])

(* ---------------------------------------------------------------- *)

type stat = {
  st_path : string;
  st_entries : int;
  st_tunes : int;
  st_probes : int;
  st_timed : int;
  st_failed : int;
  st_illegal : int;
  st_corrupt : int;
  st_torn : int;
  st_bytes : int;
  st_seed : int option;
  st_hits : int;
  st_misses : int;
}

let stat t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let timed = ref 0 and failed = ref 0 and illegal = ref 0 in
      let tunes = ref 0 in
      Hashtbl.iter
        (fun _ e ->
          if is_tune_prov e.prov then incr tunes;
          match e.outcome with
          | Timed _ -> incr timed
          | Test_failed -> incr failed
          | Illegal -> incr illegal)
        t.table;
      {
        st_path = t.store_path;
        st_entries = Hashtbl.length t.table;
        st_tunes = !tunes;
        st_probes = Hashtbl.length t.table - !tunes;
        st_timed = !timed;
        st_failed = !failed;
        st_illegal = !illegal;
        st_corrupt = t.corrupt_count;
        st_torn = t.torn_count;
        st_bytes = file_bytes t.store_path;
        st_seed = t.header_seed;
        st_hits = t.hit_count;
        st_misses = t.miss_count;
      })

(* Follows the [Diag.to_json] conventions: one flat object, every field
   always present, [null] for absent values. *)
let stat_fields s =
  [ ("path", Json.S s.st_path);
    ("entries", Json.N (float_of_int s.st_entries));
    ("tune_entries", Json.N (float_of_int s.st_tunes));
    ("probe_entries", Json.N (float_of_int s.st_probes));
    ("timed", Json.N (float_of_int s.st_timed));
    ("test_failed", Json.N (float_of_int s.st_failed));
    ("illegal", Json.N (float_of_int s.st_illegal));
    ("corrupt_lines", Json.N (float_of_int s.st_corrupt));
    ("torn_lines", Json.N (float_of_int s.st_torn));
    ("bytes", Json.N (float_of_int s.st_bytes));
    ("seed", match s.st_seed with Some v -> Json.N (float_of_int v) | None -> Json.Null);
    ("hits", Json.N (float_of_int s.st_hits));
    ("misses", Json.N (float_of_int s.st_misses));
  ]

let stat_json s = Json.render (stat_fields s)

let stat_to_string s =
  Printf.sprintf
    "%s: %d entries (%d probes + %d tunes; %d timed, %d test-failed, %d illegal), %d \
     corrupt + %d torn line%s skipped, %d bytes%s\n"
    s.st_path s.st_entries s.st_probes s.st_tunes s.st_timed s.st_failed s.st_illegal
    s.st_corrupt s.st_torn
    (if s.st_corrupt + s.st_torn = 1 then "" else "s")
    s.st_bytes
    (match s.st_seed with
    | Some v -> Printf.sprintf ", seed %d" v
    | None -> "")

let stat_string p =
  if not (Sys.file_exists p) then Printf.sprintf "%s: no store\n" p
  else begin
    let t = open_ p in
    close t;
    stat_to_string (stat t)
  end

let clear p = if Sys.file_exists p then Sys.remove p
