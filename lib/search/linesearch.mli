(** The modified line search (paper Section 2.3).

    A pure line search splits the N-dimensional optimization space into
    N separate 1-D searches from a knowledgeable starting point (FKO's
    defaults).  Our modification, as in the paper, relaxes the strict
    1-D structure where transformations are known to interact: a
    restricted 2-D refinement is run over (UR, AE) — unrolling changes
    how many adds there are to rotate accumulators over — and the
    prefetch instruction/distance pair is re-polished per array after
    both 1-D passes.

    Dimensions are tuned in the order the paper reports contributions:
    WNT, prefetch distance, prefetch instruction, UR, AE (SV is
    confirmed first).  Every probe's performance is memoized, and the
    per-dimension improvement is recorded to regenerate Figure 7.

    [extensions] additionally searches the paper's future-work
    transformations (block fetch, CISC two-array indexing); off by
    default so the reproduction matches FKO as published. *)

type probe = Ifko_transform.Params.t -> float
(** Performance of one parameter point (higher is better); the driver
    wires compilation, testing and timing into this. *)

type batch_map = (Ifko_transform.Params.t -> float) -> Ifko_transform.Params.t list -> float list
(** How to evaluate one sweep's worth of fresh candidates.  The default
    is a sequential left-to-right map; the driver substitutes a domain
    pool's order-preserving map to parallelize.  Candidates within a
    batch are mutually independent, and the winner is always selected
    by a sequential first-wins fold over the returned values, so any
    order-preserving [batch_map] yields bit-identical search results. *)

type result = {
  best : Ifko_transform.Params.t;
  best_perf : float;
  start_perf : float;  (** performance of the starting (default) point *)
  contributions : (string * float) list;
      (** per-dimension speedup factor, in tuned order: e.g.
          [("PF DST", 1.26)] means distance tuning alone bought 26% *)
  evaluations : int;  (** distinct parameter points compiled and timed *)
}

val strategy :
  ?extensions:bool ->
  ?warm:Ifko_transform.Params.t list ->
  cfg:Ifko_machine.Config.t ->
  report:Ifko_analysis.Report.t ->
  init:Ifko_transform.Params.t ->
  init_perf:float ->
  unit ->
  Strategy.t
(** The line search behind the {!Strategy} interface.  With [?warm]
    empty (the default) its probe sequence is bit-identical to the
    pre-strategy sweep; warm points are probed first as an extra
    opening batch and can only advance the incumbent. *)

val run :
  ?extensions:bool ->
  ?map_batch:batch_map ->
  cfg:Ifko_machine.Config.t ->
  report:Ifko_analysis.Report.t ->
  init:Ifko_transform.Params.t ->
  probe ->
  result
(** Convenience wrapper: {!Strategy.run} with the linesearch strategy,
    projected onto the historical result record. *)
