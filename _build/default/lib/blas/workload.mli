(** Workload generation for the BLAS timers and testers.

    Vectors are filled with deterministic pseudo-random values in
    [(-1, 1)] (both signs, so [asum]/[iamax] exercise the sign logic);
    [alpha] is a non-trivial scalar.  All generation is seeded, making
    every benchmark and test reproducible. *)

val alpha : float

val make_env : Defs.kernel_id -> seed:int -> int -> Ifko_sim.Env.t
(** [make_env id ~seed n] builds the simulation environment for a run
    of problem size [n]. *)

val timer_spec : Defs.kernel_id -> seed:int -> Ifko_sim.Timer.spec
(** Environment builder plus return-precision, as the timer needs. *)

val expectation : Defs.kernel_id -> seed:int -> int -> Ifko_sim.Verify.expectation
(** Expected outputs for [make_env id ~seed n], computed by
    {!Ref_impl} from the same pseudo-random inputs. *)

val tolerance : Defs.kernel_id -> n:int -> float
(** Comparison tolerance scaled for precision and problem size (longer
    reductions accumulate more reassociation difference). *)
