(* Tests for the paper's future-work extensions implemented in FKO:
   block fetch (BF) and CISC two-array indexing, plus the extended
   search that exercises them. *)
open Ifko_blas
open Ifko_transform

let verify id params =
  let c = Pipeline.apply ~line_bytes:128 (Hil_sources.compile id) params in
  Validate.check_physical c.Ifko_codegen.Lower.func;
  List.iter
    (fun n ->
      let env = Workload.make_env id ~seed:61 n in
      let expect = Workload.expectation id ~seed:61 n in
      let tol = Workload.tolerance id ~n in
      match
        Ifko_sim.Verify.check ~tol ~ret_fsize:id.Defs.prec c.Ifko_codegen.Lower.func env
          expect
      with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s %s n=%d: %s" (Defs.name id) (Params.to_string params) n e)
    (* block boundaries: 512 doubles/1024 singles per 4 KiB block *)
    [ 0; 1; 7; 511; 512; 513; 1024; 1500; 3000 ];
  c

let default_for id =
  Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze (Hil_sources.compile id))

let count_instrs pred (f : Cfg.func) =
  List.fold_left
    (fun acc b -> acc + List.length (List.filter pred b.Block.instrs))
    0 f.Cfg.blocks

let test_bf_correct_many_kernels () =
  List.iter
    (fun routine ->
      List.iter
        (fun prec ->
          let id = { Defs.routine; prec } in
          let d = default_for id in
          ignore (verify id { d with Params.bf = 4096; prefetch = [] });
          ignore (verify id { d with Params.bf = 2048; wnt = true }))
        [ Instr.S; Instr.D ])
    [ Defs.Copy; Defs.Scal; Defs.Dot; Defs.Asum; Defs.Axpy; Defs.Swap ]

let test_bf_structure () =
  let id = { Defs.routine = Defs.Copy; prec = Instr.D } in
  let d = default_for id in
  let c = verify id { d with Params.bf = 4096; prefetch = [] } in
  let f = c.Ifko_codegen.Lower.func in
  (* one touch per 64-byte line of the read array's 4 KiB block *)
  Alcotest.(check int) "64 fetch touches" 64
    (count_instrs (function Instr.Touch _ -> true | _ -> false) f);
  (* dot reads two arrays: twice as many touches *)
  let cd =
    verify { Defs.routine = Defs.Dot; prec = Instr.D }
      { (default_for { Defs.routine = Defs.Dot; prec = Instr.D }) with
        Params.bf = 4096;
        prefetch = []
      }
  in
  Alcotest.(check int) "two arrays, 128 touches" 128
    (count_instrs (function Instr.Touch _ -> true | _ -> false) cd.Ifko_codegen.Lower.func)

let test_bf_noop_on_control_flow () =
  let id = { Defs.routine = Defs.Iamax; prec = Instr.S } in
  let d = default_for id in
  let c = verify id { d with Params.bf = 4096; prefetch = [] } in
  Alcotest.(check int) "iamax gets no fetch blocks" 0
    (count_instrs (function Instr.Touch _ -> true | _ -> false) c.Ifko_codegen.Lower.func)

let test_bf_beats_prefetch_for_copy_on_p4e () =
  (* the whole point of the extension: with BF, FKO closes the gap to
     the hand-tuned block-fetch dcopy* on the P4E-like machine *)
  let cfg = Ifko_machine.Config.p4e in
  let id = { Defs.routine = Defs.Copy; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let d = default_for id in
  let spec = Workload.timer_spec id ~seed:61 in
  let time p =
    let f = Ifko_search.Driver.compile_point ~cfg compiled p in
    let cycles =
      Ifko_sim.Timer.measure ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000 f
    in
    Ifko_sim.Timer.mflops ~cfg ~flops_per_n:1.0 ~n:80000 ~cycles
  in
  let with_bf = time { d with Params.bf = 8192; wnt = true; prefetch = [] } in
  let with_pf =
    time
      { d with
        Params.prefetch =
          List.map
            (fun (a, (s : Params.pf_param)) -> (a, { s with Params.pf_dist = 1536 }))
            d.Params.prefetch
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "block fetch %.0f > prefetch %.0f MFLOPS" with_bf with_pf)
    true (with_bf > 1.2 *. with_pf)

let test_cisc_correct () =
  List.iter
    (fun routine ->
      let id = { Defs.routine; prec = Instr.D } in
      let d = default_for id in
      ignore (verify id { d with Params.cisc = true });
      ignore (verify id { d with Params.cisc = true; sv = false; unroll = 3 }))
    [ Defs.Copy; Defs.Swap; Defs.Axpy; Defs.Dot ]

let test_cisc_structure () =
  let id = { Defs.routine = Defs.Copy; prec = Instr.D } in
  let d = default_for id in
  let c =
    Pipeline.apply ~line_bytes:128 ~skip_regalloc:true (Hil_sources.compile id)
      { d with Params.cisc = true; prefetch = [] }
  in
  let indexed = ref 0 in
  Cfg.iter_instrs c.Ifko_codegen.Lower.func (fun i ->
      match i with
      | Instr.Vld (_, _, m) | Instr.Vst (_, m, _) ->
        if m.Instr.index <> None then incr indexed
      | _ -> ());
  Alcotest.(check bool) "vector accesses go through the shared index" true (!indexed > 0)

let test_cisc_single_array_noop () =
  (* nothing to share with one array; must be a no-op, still correct *)
  let id = { Defs.routine = Defs.Asum; prec = Instr.D } in
  let d = default_for id in
  ignore (verify id { d with Params.cisc = true })

let test_extended_search_uses_bf () =
  let cfg = Ifko_machine.Config.p4e in
  let id = { Defs.routine = Defs.Copy; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let spec = Workload.timer_spec id ~seed:61 in
  let test _ = true in
  let published =
    Ifko_search.Driver.tune ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000
      ~flops_per_n:1.0 ~test compiled
  in
  let extended =
    Ifko_search.Driver.tune ~extensions:true ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec
      ~n:80000 ~flops_per_n:1.0 ~test compiled
  in
  Alcotest.(check bool) "published search never selects BF" true
    (published.Ifko_search.Driver.best_params.Params.bf = 0);
  Alcotest.(check bool) "extended search selects BF for copy" true
    (extended.Ifko_search.Driver.best_params.Params.bf > 0);
  Alcotest.(check bool)
    (Printf.sprintf "extended %.0f beats published %.0f" extended.Ifko_search.Driver.ifko_mflops
       published.Ifko_search.Driver.ifko_mflops)
    true
    (extended.Ifko_search.Driver.ifko_mflops > published.Ifko_search.Driver.ifko_mflops)

let test_speculative_iamax_correct () =
  List.iter
    (fun prec ->
      let id = { Defs.routine = Defs.Iamax; prec } in
      let c0 = Hil_sources.compile_speculative id in
      let report = Ifko_analysis.Report.analyze c0 in
      let d =
        { (Params.default ~line_bytes:128 report) with Params.sv = true; prefetch = [] }
      in
      let c = Pipeline.apply ~line_bytes:128 c0 d in
      Validate.check_physical c.Ifko_codegen.Lower.func;
      (* vector instructions present: the mark-up licensed them *)
      let has_vcmp = ref false in
      Cfg.iter_instrs c.Ifko_codegen.Lower.func (fun i ->
          match i with Instr.Vcmp _ -> has_vcmp := true | _ -> ());
      Alcotest.(check bool) "compare-mask emitted" true !has_vcmp;
      List.iter
        (fun n ->
          let env = Workload.make_env id ~seed:71 n in
          let expect = Workload.expectation id ~seed:71 n in
          match
            Ifko_sim.Verify.check ~tol:(Workload.tolerance id ~n) ~ret_fsize:prec
              c.Ifko_codegen.Lower.func env expect
          with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s n=%d: %s" (Defs.name id) n e)
        [ 0; 1; 7; 15; 16; 17; 100; 1000 ])
    [ Instr.S; Instr.D ]

let test_speculative_first_index_ties () =
  (* equal maxima: the first index must win, exactly as the scalar
     semantics demand — the re-scan preserves this *)
  let id = { Defs.routine = Defs.Iamax; prec = Instr.D } in
  let c0 = Hil_sources.compile_speculative id in
  let d = Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze c0) in
  let c = Pipeline.apply ~line_bytes:128 c0 { d with Params.sv = true; prefetch = [] } in
  let env = Ifko_sim.Env.create () in
  let n = 64 in
  Ifko_sim.Env.bind_int env "N" n;
  Ifko_sim.Env.alloc_array env "X" Instr.D n;
  (* the maximum magnitude 9.0 appears at indices 17 and 49 *)
  Ifko_sim.Env.fill env "X" (fun i -> if i = 17 then -9.0 else if i = 49 then 9.0 else 1.0);
  (match (Ifko_sim.Exec.run c.Ifko_codegen.Lower.func env).Ifko_sim.Exec.ret with
  | Some (Ifko_sim.Exec.Rint i) -> Alcotest.(check int) "first of ties" 17 i
  | _ -> Alcotest.fail "no result")

let test_speculative_faster_than_scalar () =
  let cfg = Ifko_machine.Config.p4e in
  let id = { Defs.routine = Defs.Iamax; prec = Instr.S } in
  let spec = Workload.timer_spec id ~seed:71 in
  let time c =
    Ifko_sim.Timer.measure ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000
      c.Ifko_codegen.Lower.func
  in
  let d =
    Params.default ~line_bytes:128
      (Ifko_analysis.Report.analyze (Hil_sources.compile_speculative id))
  in
  let vec =
    Pipeline.apply ~line_bytes:128 (Hil_sources.compile_speculative id)
      { d with Params.sv = true; prefetch = [] }
  in
  let scalar =
    Pipeline.apply ~line_bytes:128 (Hil_sources.compile id)
      { d with Params.unroll = 8; prefetch = [] }
  in
  Alcotest.(check bool) "speculative vectorization pays" true (time vec < 0.7 *. time scalar)

let test_speculate_markup_required () =
  (* without the mark-up, FKO must keep refusing to vectorize iamax *)
  let id = { Defs.routine = Defs.Iamax; prec = Instr.S } in
  let c0 = Hil_sources.compile_straightforward id in
  let d = Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze c0) in
  let c = Pipeline.apply ~line_bytes:128 c0 { d with Params.sv = true; prefetch = [] } in
  let has_vec = ref false in
  Cfg.iter_instrs c.Ifko_codegen.Lower.func (fun i ->
      match i with Instr.Vld _ | Instr.Vcmp _ -> has_vec := true | _ -> ());
  Alcotest.(check bool) "no vectorization without mark-up" false !has_vec

let test_params_to_string_extensions () =
  let d = default_for { Defs.routine = Defs.Copy; prec = Instr.D } in
  let s = Params.to_string { d with Params.bf = 4096; cisc = true } in
  Alcotest.(check bool) "mentions bf" true (Test_util.contains s "bf=4096");
  Alcotest.(check bool) "mentions cisc" true (Test_util.contains s "cisc");
  Alcotest.(check bool) "defaults silent" false
    (Test_util.contains (Params.to_string d) "bf=")

let suite =
  [ Alcotest.test_case "BF correct everywhere" `Slow test_bf_correct_many_kernels;
    Alcotest.test_case "BF structure" `Quick test_bf_structure;
    Alcotest.test_case "BF no-op on control flow" `Quick test_bf_noop_on_control_flow;
    Alcotest.test_case "BF beats prefetch for copy" `Quick test_bf_beats_prefetch_for_copy_on_p4e;
    Alcotest.test_case "CISC indexing correct" `Quick test_cisc_correct;
    Alcotest.test_case "CISC structure" `Quick test_cisc_structure;
    Alcotest.test_case "CISC single-array no-op" `Quick test_cisc_single_array_noop;
    Alcotest.test_case "extended search uses BF" `Slow test_extended_search_uses_bf;
    Alcotest.test_case "params printing" `Quick test_params_to_string_extensions;
    Alcotest.test_case "speculative iamax correct" `Quick test_speculative_iamax_correct;
    Alcotest.test_case "speculative first-index ties" `Quick test_speculative_first_index_ties;
    Alcotest.test_case "speculative pays off" `Quick test_speculative_faster_than_scalar;
    Alcotest.test_case "markup required" `Quick test_speculate_markup_required;
  ]
