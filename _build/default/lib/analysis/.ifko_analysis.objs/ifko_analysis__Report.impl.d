lib/analysis/report.ml: Accuminfo Buffer Ifko_codegen Ifko_hil Instr List Lower Printf Ptrinfo String Vecinfo
