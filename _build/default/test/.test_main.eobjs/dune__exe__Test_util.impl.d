test/test_util.ml: Alcotest Float Ids Ifko_util List QCheck QCheck_alcotest Rng Stats String Table
