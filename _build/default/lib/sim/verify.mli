(** The tester of the iterative framework.

    For each candidate transformation point, the compiled kernel is
    executed (without timing) and compared against expected results —
    "unnecessary in theory, but useful in practice" (paper,
    Section 2.1).  Floating-point comparison uses a relative tolerance
    scaled by problem size, because vectorization and accumulator
    expansion legitimately reassociate reductions. *)

type expectation = {
  arrays : (string * float array) list;  (** expected final array contents *)
  ret : Exec.ret_val option;  (** expected return value *)
}

val close : ?tol:float -> float -> float -> bool
(** Relative/absolute closeness test used for array elements. *)

val check :
  ?tol:float ->
  ret_fsize:Instr.fsize ->
  Cfg.func ->
  Env.t ->
  expectation ->
  (unit, string) Stdlib.result
(** Run the kernel on [env] and compare against [expectation]; the
    error string pinpoints the first mismatch. *)
