(* The Level 1 BLAS beyond the paper's surveyed seven: Givens rotation,
   Euclidean norm (exercising the SQRT operator), and runtime-strided
   dot/axpy (the BLAS incX/incY case, exercising variable pointer
   increments).

     dune exec examples/extended_blas.exe
*)

open Ifko_blas

let () =
  let cfg = Ifko.Config.p4e in
  List.iter
    (fun (id : Extras.kernel_id) ->
      let compiled = Extras.compile id in
      let report = Ifko.analyze compiled in
      let spec = Extras.timer_spec id ~seed:5 in
      let test func =
        List.for_all
          (fun n ->
            let env = Extras.make_env id ~seed:6 n in
            let expect = Extras.expectation id ~seed:6 n in
            Ifko.Verify.check
              ~tol:(Extras.tolerance id ~n)
              ~ret_fsize:id.Extras.prec func env expect
            = Ok ())
          [ 1; 65; 200 ]
      in
      let tuned =
        Ifko.tune ~cfg ~context:Ifko.Timer.Out_of_cache ~spec ~n:80000
          ~flops_per_n:(Extras.flops_per_n id.Extras.routine) ~test compiled
      in
      Printf.printf "%-10s %s  FKO %7.1f -> ifko %7.1f MFLOPS (%.2fx)  %s\n%!"
        (Extras.name id)
        (if report.Ifko.Report.vectorizable then "[SIMD]" else "[scal]")
        tuned.Ifko.Driver.fko_mflops tuned.Ifko.Driver.ifko_mflops
        (tuned.Ifko.Driver.ifko_mflops /. tuned.Ifko.Driver.fko_mflops)
        (Ifko.Params.to_string tuned.Ifko.Driver.best_params))
    (List.filter (fun (k : Extras.kernel_id) -> k.Extras.prec = Instr.D) Extras.all);
  print_newline ();
  (* strided usage is about correctness, not speed: show a strided call *)
  let id = { Extras.routine = Extras.Dot_strided; prec = Instr.D } in
  let c = Extras.compile id in
  let env = Extras.make_env id ~seed:7 ~incx:2 ~incy:3 1000 in
  (match (Ifko.Exec.run ~ret_fsize:Instr.D c.Ifko.Lower.func env).Ifko.Exec.ret with
  | Some (Ifko.Exec.Rfp v) ->
    Printf.printf "ddot with incx=2 incy=3 over 1000 elements = %.6f (checked by the tests)\n" v
  | _ -> ())
