type t = {
  line : int;
  sets : int;
  assoc : int;
  line_shift : int;  (** log2 line (geometry is validated to powers of two) *)
  set_mask : int;  (** sets - 1 *)
  tags : int array;  (** -1 = invalid; indexed [set * assoc + way] *)
  dirty : bool array;
  lru : int array;  (** higher = more recently used *)
  mru : int array;
      (** per-set most-recently-used way — a pure acceleration hint.
          [mru.(set)] is the way of the last hit or install in [set];
          validity is re-checked against [tags] on every use, so a
          stale hint can only cost a scan, never change behavior. *)
  touched : int array;
      (** way indices made valid since the last flush, so [flush] can
          invalidate exactly those instead of filling every way of a
          large cache (the timers reset per repetition, and a rep
          usually touches a small fraction of L2).  [-1] in [n_touched]
          means the log overflowed (possible only through repeated
          invalidate/insert churn) and [flush] falls back to the full
          fill. *)
  mutable n_touched : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  if n > 0 then go 0 else -1

(* Geometry is rejected up front rather than silently falling back to
   division forms: a non-power-of-two line or set count used to take a
   slower mis-matched path (and [log2_exact] returning -1 could
   mis-index if a new call site forgot the fallback).  Every shift and
   mask below now relies on this. *)
let validate (lvl : Config.cache_level) =
  let pow2 n = n > 0 && n land (n - 1) = 0 in
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if lvl.Config.assoc < 1 then fail "Cache: assoc %d < 1" lvl.Config.assoc;
  if lvl.Config.latency < 0 then fail "Cache: negative latency %d" lvl.Config.latency;
  if not (pow2 lvl.Config.line) then
    fail "Cache: line size %d is not a power of two" lvl.Config.line;
  let span = lvl.Config.line * lvl.Config.assoc in
  if lvl.Config.size < span then
    fail "Cache: size %d smaller than one set (line %d x assoc %d)" lvl.Config.size
      lvl.Config.line lvl.Config.assoc;
  let sets = lvl.Config.size / span in
  if (not (pow2 sets)) || sets * span <> lvl.Config.size then
    fail "Cache: size %d / (line %d x assoc %d) is not a power-of-two set count"
      lvl.Config.size lvl.Config.line lvl.Config.assoc

let create (lvl : Config.cache_level) =
  validate lvl;
  let sets = lvl.Config.size / (lvl.Config.line * lvl.Config.assoc) in
  let ways = sets * lvl.Config.assoc in
  {
    line = lvl.Config.line;
    sets;
    assoc = lvl.Config.assoc;
    line_shift = log2_exact lvl.Config.line;
    set_mask = sets - 1;
    tags = Array.make ways (-1);
    dirty = Array.make ways false;
    lru = Array.make ways 0;
    mru = Array.make sets 0;
    touched = Array.make (2 * ways) 0;
    n_touched = 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let line_bytes t = t.line

(* Addresses are non-negative (the simulator bounds-checks before any
   cache traffic), so shift/mask agree with the division forms on
   every address that reaches us. *)
let[@inline] tag_of t addr = addr asr t.line_shift
let[@inline] set_of t addr = tag_of t addr land t.set_mask
let[@inline] line_base t addr = addr land lnot (t.line - 1)

(* Returns the way index, or -1 on a miss.  An int sentinel rather
   than an option: this runs once or twice per simulated memory
   instruction, and a [Some] per lookup is allocation the hot loop
   can't afford.  The set's MRU way is tried before the scan — for
   streaming access patterns nearly every hit lands there. *)
let find_way t addr =
  let tag = tag_of t addr in
  let base = (tag land t.set_mask) * t.assoc in
  let idx = base + Array.unsafe_get t.mru (tag land t.set_mask) in
  if Array.unsafe_get t.tags idx = tag then idx
  else
    let rec go w =
      if w >= t.assoc then -1
      else if Array.unsafe_get t.tags (base + w) = tag then base + w
      else go (w + 1)
    in
    go 0

let[@inline] touch t idx =
  t.clock <- t.clock + 1;
  Array.unsafe_set t.lru idx t.clock

(* One-compare steady-state hit: check only the set's MRU way and, on a
   match, perform exactly the updates [access] performs on a hit
   (hit counter, dirty bit, LRU touch).  Returns false without touching
   anything when the MRU way does not hold the line — the caller falls
   back to the general path, which redoes the full lookup.  This is the
   entry point for {!Memsys}'s open-coded fast path. *)
let[@inline] hit_mru t addr ~write =
  let tag = addr asr t.line_shift in
  let set = tag land t.set_mask in
  let idx = (set * t.assoc) + Array.unsafe_get t.mru set in
  if Array.unsafe_get t.tags idx = tag then begin
    t.hits <- t.hits + 1;
    if write then Array.unsafe_set t.dirty idx true;
    t.clock <- t.clock + 1;
    Array.unsafe_set t.lru idx t.clock;
    true
  end
  else false

let access t ~addr ~write =
  let tag = addr asr t.line_shift in
  let set = tag land t.set_mask in
  let base = set * t.assoc in
  let idx =
    let m = base + Array.unsafe_get t.mru set in
    if Array.unsafe_get t.tags m = tag then m
    else
      let rec go w =
        if w >= t.assoc then -1
        else if Array.unsafe_get t.tags (base + w) = tag then base + w
        else go (w + 1)
      in
      go 0
  in
  if idx >= 0 then begin
    t.hits <- t.hits + 1;
    if write then Array.unsafe_set t.dirty idx true;
    touch t idx;
    Array.unsafe_set t.mru set (idx - base);
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let probe t ~addr = find_way t addr >= 0

let victim_way t addr =
  let base = set_of t addr * t.assoc in
  let best = ref base in
  (* The first invalid way always wins and nothing can displace it, so
     the scan stops as soon as one is found. *)
  if t.tags.(base) <> -1 then begin
    let w = ref 1 in
    while !w < t.assoc do
      let i = base + !w in
      if t.tags.(i) = -1 then begin
        best := i;
        w := t.assoc
      end
      else if t.lru.(i) < t.lru.(!best) then best := i;
      incr w
    done
  end;
  !best

let insert t ~addr ~write =
  let set = set_of t addr in
  let base = set * t.assoc in
  let idx = find_way t addr in
  if idx >= 0 then begin
    if write then t.dirty.(idx) <- true;
    touch t idx;
    t.mru.(set) <- idx - base;
    None
  end
  else begin
    let idx = victim_way t addr in
    let evicted =
      if t.tags.(idx) <> -1 && t.dirty.(idx) then Some (t.tags.(idx) * t.line) else None
    in
    (* log the way turning valid so flush can undo exactly this *)
    if t.tags.(idx) = -1 && t.n_touched >= 0 then
      if t.n_touched = Array.length t.touched then t.n_touched <- -1
      else begin
        t.touched.(t.n_touched) <- idx;
        t.n_touched <- t.n_touched + 1
      end;
    t.tags.(idx) <- tag_of t addr;
    t.dirty.(idx) <- write;
    touch t idx;
    t.mru.(set) <- idx - base;
    evicted
  end

(* [insert] for a line the caller has proven absent (e.g. it was just
   removed from the in-flight table, and in-flight lines are never
   cached): skips the present-line probe and goes straight to victim
   selection.  Identical state updates to [insert]'s miss branch. *)
let insert_new t ~addr ~write =
  let set = set_of t addr in
  let base = set * t.assoc in
  let idx = victim_way t addr in
  let evicted =
    if t.tags.(idx) <> -1 && t.dirty.(idx) then Some (t.tags.(idx) * t.line) else None
  in
  if t.tags.(idx) = -1 && t.n_touched >= 0 then
    if t.n_touched = Array.length t.touched then t.n_touched <- -1
    else begin
      t.touched.(t.n_touched) <- idx;
      t.n_touched <- t.n_touched + 1
    end;
  t.tags.(idx) <- tag_of t addr;
  t.dirty.(idx) <- write;
  touch t idx;
  t.mru.(set) <- idx - base;
  evicted

let invalidate t ~addr =
  let idx = find_way t addr in
  if idx >= 0 then begin
    let was_dirty = t.dirty.(idx) in
    t.tags.(idx) <- -1;
    t.dirty.(idx) <- false;
    was_dirty
  end
  else false

let clear_mru t = Array.fill t.mru 0 (Array.length t.mru) 0

(* Every valid way was logged in [touched] when it turned valid (all
   lines are invalid right after a flush, and [insert] is the only
   place a tag is written), so invalidating the logged ways is
   observably identical to the full fill — untouched ways are already
   invalid and clean, and stale LRU stamps on invalid ways were never
   consulted by the full-fill version either. *)
let flush t =
  if t.n_touched < 0 then begin
    Array.fill t.tags 0 (Array.length t.tags) (-1);
    Array.fill t.dirty 0 (Array.length t.dirty) false
  end
  else
    for i = 0 to t.n_touched - 1 do
      let idx = t.touched.(i) in
      t.tags.(idx) <- -1;
      t.dirty.(idx) <- false
    done;
  t.n_touched <- 0;
  clear_mru t

(* Snapshots exist for the timers' warm-state checkpointing: the state
   right after the warm-up loop is captured once and put back for every
   later probe of the same (kernel, context, N), which is observably
   identical to re-running the warm-up.

   Two representations.  [Dense] copies every array — always correct,
   O(ways) to capture and restore.  [Sparse] records only the ways the
   touched-way log proves valid: after a flush every way is invalid and
   clean, [insert] is the only place a tag is written and it logs the
   -1 -> valid transition, so the log covers every valid way (possibly
   with duplicates from invalidate/insert churn — benign, the values
   recorded are the arrays' current contents either way).  LRU stamps
   of invalid ways are never consulted ([victim_way] stops at the first
   invalid way) and dirty implies valid, so replaying flush + the
   logged entries over any same-geometry cache reproduces every
   observable behavior, including a later [flush]'s exact work (the log
   itself is part of the snapshot) and the [stats] counters.  The MRU
   hints are copied exactly so the one-compare fast path keeps the same
   coverage, which keeps the profile counters bit-identical too.

   Sparse capture/restore is O(touched + sets), which is what lets the
   sampled timer restore a warm state per measurement without paying a
   megabyte of blits; the dense form remains for overflowed logs and
   near-full caches (where the blit is cheaper than the loop). *)
type dense = {
  s_tags : int array;
  s_dirty : bool array;
  s_lru : int array;
  s_touched : int array;
}

type sparse = {
  p_idx : int array;  (* way indices, in touched-log order *)
  p_tags : int array;
  p_dirty : bool array;
  p_lru : int array;
}

type repr = Dense of dense | Sparse of sparse

type snapshot = {
  s_line : int;
  s_sets : int;
  s_assoc : int;
  s_repr : repr;
  s_mru : int array;
  s_n_touched : int;
  s_clock : int;
  s_hits : int;
  s_misses : int;
}

let snapshot t =
  let nways = Array.length t.tags in
  let repr =
    if t.n_touched < 0 || 4 * t.n_touched > nways then
      Dense
        {
          s_tags = Array.copy t.tags;
          s_dirty = Array.copy t.dirty;
          s_lru = Array.copy t.lru;
          s_touched = Array.sub t.touched 0 (max 0 t.n_touched);
        }
    else begin
      let n = t.n_touched in
      let idx = Array.sub t.touched 0 n in
      Sparse
        {
          p_idx = idx;
          p_tags = Array.map (fun i -> t.tags.(i)) idx;
          p_dirty = Array.map (fun i -> t.dirty.(i)) idx;
          p_lru = Array.map (fun i -> t.lru.(i)) idx;
        }
    end
  in
  {
    s_line = t.line;
    s_sets = t.sets;
    s_assoc = t.assoc;
    s_repr = repr;
    s_mru = Array.copy t.mru;
    s_n_touched = t.n_touched;
    s_clock = t.clock;
    s_hits = t.hits;
    s_misses = t.misses;
  }

let restore t s =
  if s.s_line <> t.line || s.s_sets <> t.sets || s.s_assoc <> t.assoc then
    invalid_arg
      (Printf.sprintf
         "Cache.restore: geometry mismatch (snapshot %d/%d/%d vs cache %d/%d/%d)"
         s.s_line s.s_sets s.s_assoc t.line t.sets t.assoc);
  (match s.s_repr with
  | Dense d ->
    Array.blit d.s_tags 0 t.tags 0 (Array.length t.tags);
    Array.blit d.s_dirty 0 t.dirty 0 (Array.length t.dirty);
    Array.blit d.s_lru 0 t.lru 0 (Array.length t.lru);
    Array.blit d.s_touched 0 t.touched 0 (Array.length d.s_touched)
  | Sparse p ->
    (* invalidate whatever the target currently holds (O(its touched
       state)), then lay down exactly the snapshot's valid ways *)
    flush t;
    let n = Array.length p.p_idx in
    for i = 0 to n - 1 do
      let idx = p.p_idx.(i) in
      t.tags.(idx) <- p.p_tags.(i);
      t.dirty.(idx) <- p.p_dirty.(i);
      t.lru.(idx) <- p.p_lru.(i);
      t.touched.(i) <- idx
    done);
  Array.blit s.s_mru 0 t.mru 0 (Array.length t.mru);
  t.n_touched <- s.s_n_touched;
  t.clock <- s.s_clock;
  t.hits <- s.s_hits;
  t.misses <- s.s_misses

let stats t = (t.hits, t.misses)

let dirty_lines t =
  let n = ref 0 in
  Array.iteri (fun i d -> if d && t.tags.(i) <> -1 then incr n) t.dirty;
  !n

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
