(** The tester of the iterative framework.

    For each candidate transformation point, the compiled kernel is
    executed (without timing) and compared against expected results —
    "unnecessary in theory, but useful in practice" (paper,
    Section 2.1).  Floating-point comparison uses a relative tolerance
    scaled by problem size, because vectorization and accumulator
    expansion legitimately reassociate reductions. *)

type expectation = {
  arrays : (string * float array) list;  (** expected final array contents *)
  ret : Exec.ret_val option;  (** expected return value *)
}

val close : ?tol:float -> float -> float -> bool
(** Relative/absolute closeness test used for array elements. *)

val ulp_diff : ?fsize:Instr.fsize -> float -> float -> int64
(** Distance between two floats in units in the last place of the given
    precision (default double): the number of representable values of
    that precision separating them, sign-aware across zero.  Two NaNs
    are at distance [0]; NaN against a number is [Int64.max_int].
    Single-precision inputs must already be exactly representable in
    single (the simulator's arrays guarantee this). *)

val close_ulp : ?fsize:Instr.fsize -> ?ulps:int64 -> float -> float -> bool
(** [close_ulp ~fsize ~ulps a b] is [ulp_diff a b <= ulps]
    (default 4 ulps). *)

val exact_fp : float -> float -> bool
(** IEEE equality with NaN == NaN: the comparison the differential
    fuzzer uses for outputs no legal transformation may perturb
    (copies, swaps, element-wise maps evaluated in source order). *)

val close_reduction : ?fsize:Instr.fsize -> ?ulps:int64 -> ?abs_floor:float ->
  float -> float -> bool
(** ULP-tolerant comparison for reduction results, whose rounding
    legitimately moves when vectorization or accumulator expansion
    reassociates the sum: within [ulps] (default 4096) of each other in
    the given precision, or — for near-zero results of cancelling sums,
    where relative/ULP distance is meaningless — within [abs_floor]
    (default 1e-6) absolutely. *)

val check :
  ?tol:float ->
  ret_fsize:Instr.fsize ->
  Cfg.func ->
  Env.t ->
  expectation ->
  (unit, string) Stdlib.result
(** Run the kernel on [env] and compare against [expectation]; the
    error string pinpoints the first mismatch. *)

val check_compiled :
  ?tol:float ->
  ret_fsize:Instr.fsize ->
  Exec.compiled ->
  Env.t ->
  expectation ->
  (unit, string) Stdlib.result
(** {!check} for already-compiled code — testers that probe one
    candidate at several sizes compile once and call this. *)
