test/test_hil.ml: Alcotest Ast Format Ifko_blas Ifko_hil Instr Lexer List Parser Pp Printf Typecheck
