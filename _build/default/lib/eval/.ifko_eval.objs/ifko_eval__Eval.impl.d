lib/eval/eval.ml: Config Defs Float Hil_sources Ifko_baselines Ifko_blas Ifko_machine Ifko_search Ifko_sim Ifko_util List Printf Workload
