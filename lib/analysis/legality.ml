(** The fail-closed legality oracle for the transform pipeline.

    Each query answers "may this transform run on this kernel as it
    stands right now?" from {!Depend}'s dependence verdicts instead of
    the transforms' historical syntactic guards.  The contract is
    fail-closed: anything the analysis cannot prove is illegal, and
    every rejection carries a {!Diag} (code IFK012) naming the pass
    and the obstruction, so both `ifko lint` and the search log can
    explain why a point was never materialized.

    A transform must consult the oracle on its {e input} — legality of
    unrolling after vectorization is a property of the vectorized
    code — so the queries re-analyze rather than cache across
    passes. *)

open Ifko_codegen

type t = { depend : Depend.t; compiled : Lower.compiled }

let analyze (compiled : Lower.compiled) =
  { depend = Depend.analyze compiled; compiled }

let depend t = t.depend

let reject pass fmt = Diag.warning ~pass "IFK012" fmt

let describe (p : Depend.pair) =
  Printf.sprintf "%s vs %s: %s"
    (Depend.access_name p.Depend.src)
    (Depend.access_name p.Depend.dst)
    (Depend.relation_to_string p.Depend.relation)

(** SIMD vectorization executes [lanes] iterations at once: every pair
    of references must be proven independent or loop-independent
    (distance 0).  A carried dependence, an unproven pair (MAYALIAS,
    non-affine) or an unanalyzable loop refuses. *)
let vectorize t =
  let d = t.depend in
  if not d.Depend.has_loop then
    Error
      (reject "SV" "loop nest %s: vectorization legality cannot be established"
         (if d.Depend.stale then "labels are stale" else "not analyzable"))
  else
    match Depend.blocking d with
    | [] -> Ok ()
    | p :: _ -> Error (reject "SV" "dependence blocks vectorization: %s" (describe p))

let fresh_and_consistent pass t =
  match t.compiled.Lower.loopnest with
  | None -> Ok () (* nothing to transform: the pass no-ops *)
  | Some _ ->
    if t.depend.Depend.stale then
      Error
        (reject pass "loop-nest labels are stale; the transform cannot locate the loop")
    else (
      match Depend.stride_contradictions t.compiled with
      | [] -> Ok ()
      | (m, why) :: _ ->
        Error (reject pass "array %s: %s" m.Ptrinfo.array.Lower.a_name why))

(** Unrolling folds pointer bumps into displacements: the loop nest
    must be locatable and the syntactic strides trustworthy. *)
let unroll t = fresh_and_consistent "UR" t

(** Accumulator expansion re-associates a reduction over a ring of
    registers; it relies on the same loop bookkeeping. *)
let accexp t = fresh_and_consistent "AE" t

(** Non-temporal stores are only sound as pure streaming stores: every
    store in the loop must be a proven affine reference, and no output
    array may carry the MAYALIAS mark-up (an aliased reader could
    observe the weaker ordering). *)
let ntwrite t =
  let d = t.depend in
  let outputs =
    List.filter (fun (a : Lower.array_param) -> a.Lower.a_output) t.compiled.Lower.arrays
  in
  if outputs = [] then Ok () (* nothing to rewrite: the pass no-ops *)
  else if not d.Depend.has_loop then
    Error
      (reject "WNT" "loop nest %s: streaming stores cannot be proven"
         (if d.Depend.stale then "labels are stale" else "not analyzable"))
  else (
    match
      List.find_opt (fun (a : Lower.array_param) -> a.Lower.a_mayalias) outputs
    with
    | Some a ->
      Error
        (reject "WNT" "output array %s carries MAYALIAS; refusing non-temporal stores"
           a.Lower.a_name)
    | None -> (
      match
        List.find_opt
          (fun (a : Depend.access) -> a.Depend.store && a.Depend.affine = None)
          d.Depend.accesses
      with
      | Some a ->
        Error
          (reject "WNT" "%s is not a proven streaming store" (Depend.access_name a))
      | None -> Ok ()))
