let () =
  (* inf/nan serialization *)
  let p = "/tmp/t_store.jsonl" in
  (try Sys.remove p with _ -> ());
  let s = Ifko_store.Store.open_ ~seed:1 p in
  Ifko_store.Store.add s ~key:"k1" ~params:"p" ~prov:"x"
    (Ifko_store.Store.Timed { mflops = infinity; cycles = nan });
  Ifko_store.Store.close s;
  let s2 = Ifko_store.Store.open_ p in
  Printf.printf "entries=%d corrupt=%d\n" (Ifko_store.Store.entries s2) (Ifko_store.Store.corrupt s2);
  Ifko_store.Store.close s2;
  (* repeated open of seedless empty journal *)
  let q = "/tmp/t_store2.jsonl" in
  (try Sys.remove q with _ -> ());
  let a = Ifko_store.Store.open_ q in Ifko_store.Store.close a;
  let a = Ifko_store.Store.open_ q in Ifko_store.Store.close a;
  let a = Ifko_store.Store.open_ q in Ifko_store.Store.close a;
  let ic = open_in q in
  let lines = ref 0 in
  (try while true do ignore (input_line ic); incr lines done with End_of_file -> ());
  close_in ic;
  Printf.printf "seedless journal lines after 3 opens: %d\n" !lines
