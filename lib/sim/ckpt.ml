(* Content-addressed cache of post-warm-up memory-system snapshots.

   An in-L2 timed run spends a warm-up loop installing the working set
   in L2 before the kernel executes.  That state depends only on the
   (kernel, machine, context, N) tuple — never on the transform
   parameters being probed — so one tune re-derives the same state at
   every probe point.  This module captures it once (Memsys.snapshot)
   and blits it back for every later probe, which is observably
   identical to re-running the warm-up.

   Keys are digests like the probe store's: the kernel fingerprint (so
   a kernel edit changes the key), the machine name, the timing
   context, and N.  Each entry carries the snapshot plus one float of
   creator-measured metadata (today's warm loops all return 0; the
   slot keeps room for warm-up-time measurements).  Anything that
   depends on the *code* being timed must never ride with an entry —
   one tune's probe points share a snapshot while running different
   code — so per-(state, candidate) scalars live in the separate
   session-only transient memo.  The machine's full parameter rendering
   (Config.geometry) is kept separately as a directory-level guard:
   snapshots can optionally persist under [dir], and a [store.meta]
   file records the schema version plus the geometry digest.  On open,
   any mismatch — version bump, cache-geometry change, or a stale or
   hand-edited meta — wipes the persisted snapshots and forces fresh
   warm-ups rather than ever reusing a wrong snapshot. *)

module Store = Ifko_store.Store
module Config = Ifko_machine.Config
module Memsys = Ifko_machine.Memsys

(* schema 2: Cache snapshots gained the sparse representation, which
   changes the Marshal layout of persisted .ckpt files *)
let schema = 2
let meta_file = "store.meta"
let transient_file = "transients.jsonl"

type t = {
  dir : string option;
  machine : string;
  geometry : string;  (* digest of Config.geometry *)
  tbl : (string, Memsys.snapshot * float) Hashtbl.t;
  transients : (string, float) Hashtbl.t;
      (* per-(warm state, code) scalars — persisted as JSON lines next
         to the snapshots (%.17g round-trips every finite double), so a
         daemon restart does not repay every candidate's companion
         rate window; guarded by the same store.meta as the snapshots *)
  int_memo : (string, int) Hashtbl.t;
      (* session-only derived ints (the sampled timer's window-lo page
         geometry), keyed by kernel fingerprint *)
  masters : (string, Env.master) Hashtbl.t;
      (* session-only pristine environment images, keyed by
         (kernel, element count) — see Env.capture *)
  mutex : Mutex.t;
  mutable n_hit : int;  (* answered from memory *)
  mutable n_disk : int;  (* answered from a persisted snapshot *)
  mutable n_miss : int;  (* fresh warm-ups *)
  mutable n_inval : int;  (* persisted snapshot sets discarded on open *)
  mutable n_thit : int;  (* transients answered from the memo *)
  mutable n_tmiss : int;  (* transients that had to be measured *)
  mutable n_tload : int;  (* transients preloaded from disk on open *)
}

type stats = {
  hits : int;
  disk_loads : int;
  misses : int;
  invalidated : int;
  transient_hits : int;
  transient_misses : int;
  transients_loaded : int;
}

let meta_line t =
  Store.Json.render
    [ ("schema", Store.Json.N (float_of_int schema)); ("geometry", Store.Json.S t.geometry) ]

let read_meta path =
  match In_channel.with_open_text path In_channel.input_line with
  | None -> None
  | Some line -> (
      match Store.Json.parse line with
      | fields -> Some (Store.Json.num fields "schema", Store.Json.str fields "geometry")
      | exception _ -> None)

let write_meta t dir =
  let tmp = Filename.concat dir (meta_file ^ ".tmp") in
  Out_channel.with_open_text tmp (fun oc ->
      Out_channel.output_string oc (meta_line t);
      Out_channel.output_char oc '\n');
  Sys.rename tmp (Filename.concat dir meta_file)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let snapshot_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ckpt")

(* Wipe every persisted snapshot (and the transient memo derived from
   them): the meta told us they were produced under a different schema
   or machine geometry (or the meta itself is missing/corrupt, in
   which case nothing vouches for them). *)
let wipe t dir =
  List.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (snapshot_files dir);
  (try Sys.remove (Filename.concat dir transient_file) with Sys_error _ -> ());
  t.n_inval <- t.n_inval + 1

(* Transients persist as append-only JSON lines {"key":...,"v":...}.
   Duplicate keys are possible (concurrent writers race benignly on
   deterministic values); the last line wins, matching the in-memory
   replace semantics. *)
let load_transients t dir =
  let path = Filename.concat dir transient_file in
  if Sys.file_exists path then
    try
      In_channel.with_open_text path (fun ic ->
          let rec go () =
            match In_channel.input_line ic with
            | None -> ()
            | Some line ->
                (match Store.Json.parse line with
                | fields -> (
                    match (Store.Json.str fields "key", Store.Json.num fields "v") with
                    | Some k, Some v ->
                        Hashtbl.replace t.transients k v;
                        t.n_tload <- t.n_tload + 1
                    | _ -> ())
                | exception _ -> ());
                go ()
          in
          go ())
    with Sys_error _ -> ()

let append_transient t ~key v =
  match t.dir with
  | None -> ()
  | Some dir -> (
      try
        let path = Filename.concat dir transient_file in
        Out_channel.with_open_gen
          [ Open_append; Open_creat; Open_wronly ]
          0o644 path
          (fun oc ->
            Out_channel.output_string oc
              (Store.Json.render [ ("key", Store.Json.S key); ("v", Store.Json.N v) ]);
            Out_channel.output_char oc '\n')
      with Sys_error _ -> ())
(* best-effort like the snapshots: a failed write costs one future
   companion window *)

let create ?dir ~cfg () =
  let geometry = Store.digest [ "ckpt-geometry"; Config.geometry cfg ] in
  let t =
    {
      dir;
      machine = cfg.Config.name;
      geometry;
      tbl = Hashtbl.create 16;
      transients = Hashtbl.create 16;
      int_memo = Hashtbl.create 8;
      masters = Hashtbl.create 8;
      mutex = Mutex.create ();
      n_hit = 0;
      n_disk = 0;
      n_miss = 0;
      n_inval = 0;
      n_thit = 0;
      n_tmiss = 0;
      n_tload = 0;
    }
  in
  (match dir with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      let meta_ok =
        match read_meta (Filename.concat dir meta_file) with
        | Some (Some v, Some g) -> int_of_float v = schema && g = geometry
        | Some _ | None | (exception Sys_error _) -> false
      in
      if not meta_ok then begin
        if
          snapshot_files dir <> []
          || Sys.file_exists (Filename.concat dir transient_file)
        then wipe t dir;
        write_meta t dir
      end
      else load_transients t dir);
  t

let key t ~kernel ~context ~n =
  Store.digest [ "ckpt"; kernel; t.machine; context; string_of_int n ]

let file_of t key =
  match t.dir with None -> None | Some d -> Some (Filename.concat d (key ^ ".ckpt"))

(* Persisted snapshot = Marshal of (schema, geometry digest, snapshot).
   The geometry digest is embedded per file as well as in store.meta so
   a file copied between stores of different machines is still
   rejected. *)
let load_file t path : (Memsys.snapshot * float) option =
  match
    In_channel.with_open_bin path (fun ic ->
        (Marshal.from_channel ic : int * string * (Memsys.snapshot * float)))
  with
  | v, g, entry when v = schema && g = t.geometry -> Some entry
  | _ -> None
  | exception _ -> None

let save_file t path entry =
  try
    let tmp = path ^ ".tmp" in
    Out_channel.with_open_bin tmp (fun oc ->
        Marshal.to_channel oc (schema, t.geometry, entry) []);
    Sys.rename tmp path
  with Sys_error _ -> ()
(* persistence is best-effort: a failed write only costs a future warm-up *)

(* Bring [ms] to the warm state for [key]: restore a cached snapshot if
   one exists, otherwise run [warm] (which must leave [ms] fully warmed
   and returns the metadata float to store alongside) and capture it.
   Returns the entry's metadata.  Thread-safe: probe pools share one
   Ckpt across domains.  Concurrent misses on the same key may both run
   [warm] — warm-up is deterministic, so last-write-wins is benign. *)
let with_state t ~key ms ~warm =
  let cached =
    Mutex.lock t.mutex;
    let c = Hashtbl.find_opt t.tbl key in
    Mutex.unlock t.mutex;
    match c with
    | Some entry ->
        t.n_hit <- t.n_hit + 1;
        Some entry
    | None -> (
        match file_of t key with
        | None -> None
        | Some path -> (
            if not (Sys.file_exists path) then None
            else
              match load_file t path with
              | Some entry ->
                  t.n_disk <- t.n_disk + 1;
                  Mutex.lock t.mutex;
                  Hashtbl.replace t.tbl key entry;
                  Mutex.unlock t.mutex;
                  Some entry
              | None -> None))
  in
  match cached with
  | Some (snap, meta) ->
      Memsys.restore ms snap;
      meta
  | None ->
      t.n_miss <- t.n_miss + 1;
      let meta = warm ms in
      let entry = (Memsys.snapshot ms, meta) in
      Mutex.lock t.mutex;
      Hashtbl.replace t.tbl key entry;
      Mutex.unlock t.mutex;
      (match file_of t key with None -> () | Some path -> save_file t path entry);
      meta

let find_transient t ~key =
  Mutex.lock t.mutex;
  let v = Hashtbl.find_opt t.transients key in
  (match v with
  | Some _ -> t.n_thit <- t.n_thit + 1
  | None -> t.n_tmiss <- t.n_tmiss + 1);
  Mutex.unlock t.mutex;
  v

let set_transient t ~key v =
  Mutex.lock t.mutex;
  Hashtbl.replace t.transients key v;
  Mutex.unlock t.mutex;
  append_transient t ~key v
(* concurrent misses on one key both compute the same deterministic
   value, so last-write-wins is benign — same argument as with_state *)

(* The two session-only memos below share the deterministic-value
   argument: [f] is a pure function of the key, so racing computations
   agree and last-write-wins loses nothing.  [f] runs outside the lock
   (it builds environments). *)
let int_memo t ~key f =
  Mutex.lock t.mutex;
  let v = Hashtbl.find_opt t.int_memo key in
  Mutex.unlock t.mutex;
  match v with
  | Some v -> v
  | None ->
      let v = f () in
      Mutex.lock t.mutex;
      Hashtbl.replace t.int_memo key v;
      Mutex.unlock t.mutex;
      v

let master_memo t ~key f =
  Mutex.lock t.mutex;
  let v = Hashtbl.find_opt t.masters key in
  Mutex.unlock t.mutex;
  match v with
  | Some m -> m
  | None ->
      let m = f () in
      Mutex.lock t.mutex;
      Hashtbl.replace t.masters key m;
      Mutex.unlock t.mutex;
      m

let stats t =
  {
    hits = t.n_hit;
    disk_loads = t.n_disk;
    misses = t.n_miss;
    invalidated = t.n_inval;
    transient_hits = t.n_thit;
    transient_misses = t.n_tmiss;
    transients_loaded = t.n_tload;
  }

let geometry_digest t = t.geometry
