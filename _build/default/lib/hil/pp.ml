open Ast

let rec expr_prec = function
  | Int_lit _ | Fp_lit _ | Var _ | Load _ -> 3
  | Abs _ | Sqrt _ | Neg _ -> 2
  | Binop ((Mul | Div), _, _) -> 1
  | Binop ((Add | Sub), _, _) -> 0

and expr_to_string e =
  let rec go prec e =
    let s =
      match e with
      | Int_lit i -> string_of_int i
      | Fp_lit f ->
        let s = Printf.sprintf "%.17g" f in
        if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
        else s ^ ".0"
      | Var x -> x
      | Load (p, k) -> Printf.sprintf "%s[%d]" p k
      | Abs e -> "ABS " ^ go 3 e
      | Sqrt e -> "SQRT " ^ go 3 e
      | Neg e -> "-" ^ go 3 e
      | Binop (op, a, b) ->
        let p = expr_prec e in
        Printf.sprintf "%s %s %s" (go p a) (string_of_binop op) (go (p + 1) b)
    in
    if expr_prec e < prec then "(" ^ s ^ ")" else s
  in
  go 0 e

let rec stmt_to_string ?(indent = 0) stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Assign (x, e) -> Printf.sprintf "%s%s = %s;" pad x (expr_to_string e)
  | Assign_op (op, x, e) ->
    Printf.sprintf "%s%s %s= %s;" pad x (string_of_binop op) (expr_to_string e)
  | Store (p, k, e) -> Printf.sprintf "%s%s[%d] = %s;" pad p k (expr_to_string e)
  | Ptr_inc (p, k) ->
    if k >= 0 then Printf.sprintf "%s%s += %d;" pad p k
    else Printf.sprintf "%s%s -= %d;" pad p (-k)
  | Ptr_inc_var (p, v) -> Printf.sprintf "%s%s += %s;" pad p v
  | Loop lp ->
    let kw = if lp.loop_opt then "OPTLOOP" else "LOOP" in
    let step =
      (if lp.loop_step = 1 then "" else Printf.sprintf ", %d" lp.loop_step)
      ^ if lp.loop_speculate then " SPECULATE" else ""
    in
    let body =
      lp.loop_body
      |> List.map (stmt_to_string ~indent:(indent + 2))
      |> String.concat "\n"
    in
    Printf.sprintf "%s%s %s = %s, %s%s\n%sLOOP_BODY\n%s\n%sLOOP_END" pad kw lp.loop_var
      (expr_to_string lp.loop_from)
      (expr_to_string lp.loop_to)
      step pad body pad
  | If_goto (op, a, b, l) ->
    Printf.sprintf "%sIF (%s %s %s) GOTO %s;" pad (expr_to_string a) (string_of_cmpop op)
      (expr_to_string b) l
  | If_then (op, a, b, then_body, else_body) ->
    let block body =
      body |> List.map (stmt_to_string ~indent:(indent + 2)) |> String.concat "\n"
    in
    let else_part =
      if else_body = [] then "" else Printf.sprintf "\n%sELSE\n%s" pad (block else_body)
    in
    Printf.sprintf "%sIF (%s %s %s) THEN\n%s%s\n%sENDIF" pad (expr_to_string a)
      (string_of_cmpop op) (expr_to_string b) (block then_body) else_part pad
  | Goto l -> Printf.sprintf "%sGOTO %s;" pad l
  | Label l -> Printf.sprintf "%s%s:" pad l
  | Return None -> pad ^ "RETURN;"
  | Return (Some e) -> Printf.sprintf "%sRETURN %s;" pad (expr_to_string e)

let flag_to_string = function
  | Output -> "OUTPUT"
  | No_prefetch -> "NOPREFETCH"
  | May_alias -> "MAYALIAS"

let param_to_string p =
  let flags =
    match p.p_flags with
    | [] -> ""
    | fs -> " " ^ String.concat " " (List.map flag_to_string fs)
  in
  Printf.sprintf "%s : %s%s" p.p_name (string_of_ty p.p_ty) flags

let kernel_to_string k =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "KERNEL %s(%s)" k.k_name
       (String.concat ", " (List.map param_to_string k.k_params)));
  (match k.k_ret with
  | Some ty -> Buffer.add_string buf (" RETURNS " ^ string_of_ty ty)
  | None -> ());
  Buffer.add_char buf '\n';
  if k.k_locals <> [] then begin
    Buffer.add_string buf "VARS\n";
    List.iter
      (fun d ->
        let init =
          match d.d_init with
          | None -> ""
          | Some f ->
            let s = Printf.sprintf "%.17g" f in
            let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
            " = " ^ s
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s : %s%s;\n" (String.concat ", " d.d_names)
             (string_of_ty d.d_ty) init))
      k.k_locals
  end;
  Buffer.add_string buf "BEGIN\n";
  List.iter
    (fun s ->
      Buffer.add_string buf (stmt_to_string ~indent:2 s);
      Buffer.add_char buf '\n')
    k.k_body;
  Buffer.add_string buf "END\n";
  Buffer.contents buf
