let round_to sz v =
  match sz with
  | Instr.D -> v
  | Instr.S -> Int32.float_of_bits (Int32.bits_of_float v)

let swap ~x ~y =
  Array.iteri
    (fun i xi ->
      x.(i) <- y.(i);
      y.(i) <- xi)
    x

let scal sz ~alpha ~x =
  Array.iteri (fun i xi -> x.(i) <- round_to sz (xi *. alpha)) x

let copy ~x ~y = Array.blit x 0 y 0 (Array.length x)

let axpy sz ~alpha ~x ~y =
  Array.iteri (fun i xi -> y.(i) <- round_to sz (y.(i) +. round_to sz (alpha *. xi))) x

let dot sz ~x ~y =
  let acc = ref 0.0 in
  Array.iteri (fun i xi -> acc := round_to sz (!acc +. round_to sz (xi *. y.(i)))) x;
  !acc

let asum sz ~x =
  let acc = ref 0.0 in
  Array.iter (fun xi -> acc := round_to sz (!acc +. Float.abs xi)) x;
  !acc

let iamax ~x =
  let imax = ref 0 and amax = ref (-1.0) in
  Array.iteri
    (fun i xi ->
      let a = Float.abs xi in
      if a > !amax then begin
        amax := a;
        imax := i
      end)
    x;
  !imax
