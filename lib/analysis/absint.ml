(** Interval-with-stride abstract interpretation over the integer
    registers of a LIL function, built on the {!Dataflow} engine.

    Every GPR is mapped to an abstract value of the form
    [anchor + offset] where the anchor is either the absolute integers
    ([Abs], for values rooted in an [Ildi]) or the unknown entry value
    of a function parameter ([Sym p], for pointers and sizes).  The
    offset is an interval with a stride congruence: [offset] lies in
    [\[lo, hi\]] and [offset = lo (mod stride)] whenever [lo] is
    finite.  Pointer bumps inside a loop therefore converge to a value
    like [Sym x + \[0, +inf) stride 8] — "x plus a non-negative
    multiple of eight" — which is exactly what the dependence and
    bounds tests in {!Depend} consume.

    Termination: the interval join widens any bound it cannot keep
    exact to its infinity, {e except} that a finite lower (upper)
    bound may be inherited from a singleton operand — the loop-entry
    constant.  Singletons are only produced on acyclic paths (a join
    that grows a value is no longer a singleton), so each register's
    value can strictly grow only a bounded number of times and the
    worklist engine reaches its fixpoint without an explicit widening
    pass; the widening-termination tests in [test_depend.ml] exercise
    the adversarial cases. *)

type anchor = Abs | Sym of Reg.t

type bound = NegInf | Fin of int | PosInf

type ival = { anchor : anchor; lo : bound; hi : bound; stride : int }

type value = Top | Val of ival

let anchor_equal a b =
  match (a, b) with
  | Abs, Abs -> true
  | Sym x, Sym y -> Reg.equal x y
  | Abs, Sym _ | Sym _, Abs -> false

let const k = Val { anchor = Abs; lo = Fin k; hi = Fin k; stride = 0 }
let param r = Val { anchor = Sym r; lo = Fin 0; hi = Fin 0; stride = 0 }

let is_singleton = function
  | Val { lo = Fin a; hi = Fin b; _ } -> a = b
  | _ -> false

let value_equal a b =
  match (a, b) with
  | Top, Top -> true
  | Val x, Val y ->
    anchor_equal x.anchor y.anchor && x.lo = y.lo && x.hi = y.hi && x.stride = y.stride
  | Top, Val _ | Val _, Top -> false

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* ---------- bound arithmetic ---------- *)

let bound_add a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (x + y)
  | NegInf, PosInf | PosInf, NegInf -> invalid_arg "Absint.bound_add"
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf

let bound_neg = function NegInf -> PosInf | PosInf -> NegInf | Fin k -> Fin (-k)

let bound_mul k = function
  | Fin x -> Fin (k * x)
  | b -> if k > 0 then b else if k < 0 then bound_neg b else Fin 0

let bound_min a b =
  match (a, b) with
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, x | x, PosInf -> x
  | Fin x, Fin y -> Fin (min x y)

let bound_max a b =
  match (a, b) with
  | PosInf, _ | _, PosInf -> PosInf
  | NegInf, x | x, NegInf -> x
  | Fin x, Fin y -> Fin (max x y)

let bound_le a b =
  match (a, b) with
  | NegInf, _ | _, PosInf -> true
  | _, NegInf | PosInf, _ -> false
  | Fin x, Fin y -> x <= y

(* ---------- value arithmetic (abstract transfer helpers) ---------- *)

(** Stride of the union of two offset sets: congruent to both strides
    and to the difference of any two representatives. *)
let join_stride x y =
  let diff =
    match (x.lo, y.lo) with
    | Fin a, Fin b -> abs (a - b)
    | _ ->
      (match (x.hi, y.hi) with Fin a, Fin b -> abs (a - b) | _ -> 0)
  in
  gcd (gcd x.stride y.stride) diff

let add v1 v2 =
  match (v1, v2) with
  | Top, _ | _, Top -> Top
  | Val x, Val y -> (
    match (x.anchor, y.anchor) with
    | Sym _, Sym _ -> Top
    | _ ->
      let anchor = match x.anchor with Abs -> y.anchor | a -> a in
      Val
        {
          anchor;
          lo = bound_add x.lo y.lo;
          hi = bound_add x.hi y.hi;
          stride = gcd x.stride y.stride;
        })

let neg = function
  | Top -> Top
  | Val x -> (
    match x.anchor with
    | Sym _ -> Top
    | Abs -> Val { x with lo = bound_neg x.hi; hi = bound_neg x.lo })

(** [sub v1 v2]; two values rooted at the {e same} symbolic anchor
    cancel to an absolute difference. *)
let sub v1 v2 =
  match (v1, v2) with
  | Val x, Val y when anchor_equal x.anchor y.anchor && x.anchor <> Abs ->
    add
      (Val { x with anchor = Abs })
      (neg (Val { y with anchor = Abs }))
  | _ -> add v1 (neg v2)

let mul_const k = function
  | Top -> Top
  | Val _ when k = 0 -> const 0
  | Val x -> (
    match x.anchor with
    | Sym _ -> Top
    | Abs ->
      let lo = bound_mul k x.lo and hi = bound_mul k x.hi in
      Val
        {
          anchor = Abs;
          lo = bound_min lo hi;
          hi = bound_max lo hi;
          stride = abs (k * x.stride);
        })

(** Is every concretization of [x] contained in [y]? *)
let leq x y =
  anchor_equal x.anchor y.anchor
  && bound_le y.lo x.lo && bound_le x.hi y.hi
  && (y.stride = 0
      && x.stride = 0
      && (match (x.lo, y.lo) with Fin a, Fin b -> a = b | _ -> true)
     ||
     y.stride <> 0
     && x.stride mod y.stride = 0
     &&
     match (x.lo, y.lo) with
     | Fin a, Fin b -> (a - b) mod y.stride = 0
     | _ -> true)

(** The widening join described in the module comment. *)
let join_value v1 v2 =
  match (v1, v2) with
  | Top, _ | _, Top -> Top
  | Val x, Val y ->
    if not (anchor_equal x.anchor y.anchor) then Top
    else if leq x y then v2
    else if leq y x then v1
    else
      let stride = join_stride x y in
      let keep_min kept other =
        (* A lowered finite bound survives only when it comes from a
           singleton (the loop-entry constant); anything else widens. *)
        if kept = other then kept
        else if
          bound_le kept other
          && (is_singleton (Val x) && kept = x.lo
             || is_singleton (Val y) && kept = y.lo)
        then kept
        else NegInf
      in
      let keep_max kept other =
        if kept = other then kept
        else if
          bound_le other kept
          && (is_singleton (Val x) && kept = x.hi
             || is_singleton (Val y) && kept = y.hi)
        then kept
        else PosInf
      in
      let lo = keep_min (bound_min x.lo y.lo) (bound_max x.lo y.lo) in
      let hi = keep_max (bound_max x.hi y.hi) (bound_min x.hi y.hi) in
      Val { anchor = x.anchor; lo; hi; stride }

(* ---------- the dataflow domain: GPR id -> value ---------- *)

module Imap = Map.Make (Int)

module Domain = struct
  (** [Unreached] is the engine's bottom; a missing key in an [Env]
      means [Top] (the register holds something unanalyzable). *)
  type t = Unreached | Env of value Imap.t

  let bottom = Unreached

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Env x, Env y -> Imap.equal value_equal x y
    | Unreached, Env _ | Env _, Unreached -> false

  let join a b =
    match (a, b) with
    | Unreached, v | v, Unreached -> v
    | Env x, Env y ->
      Env
        (Imap.merge
           (fun _ vx vy ->
             match (vx, vy) with
             | Some vx, Some vy -> (
               match join_value vx vy with Top -> None | v -> Some v)
             | _ -> None)
           x y)
end

module Engine = Dataflow.Make (Domain)

type t = { result : Engine.result; func : Cfg.func }

let env_get env (r : Reg.t) =
  if r.Reg.cls <> Reg.Gpr then Top
  else match Imap.find_opt r.Reg.id env with Some v -> v | None -> Top

let set env (r : Reg.t) v =
  match v with Top -> Imap.remove r.Reg.id env | _ -> Imap.add r.Reg.id v env

let eval_operand env = function
  | Instr.Oimm k -> const k
  | Instr.Oreg r -> env_get env r

let eval_mem env (m : Instr.mem) =
  let base = env_get env m.Instr.base in
  let index =
    match m.Instr.index with
    | None -> const 0
    | Some idx -> mul_const m.Instr.scale (env_get env idx)
  in
  add (add base index) (const m.Instr.disp)

(** Abstract transfer of one instruction. *)
let transfer_instr env i =
  match i with
  | Instr.Ildi (d, k) -> set env d (const k)
  | Instr.Imov (d, s) -> set env d (env_get env s)
  | Instr.Iop (op, d, a, b) ->
    let va = env_get env a and vb = eval_operand env b in
    let v =
      match op with
      | Instr.Iadd -> add va vb
      | Instr.Isub -> sub va vb
      | Instr.Imul -> (
        match (va, vb) with
        | _, Val { anchor = Abs; lo = Fin k; hi = Fin k'; _ } when k = k' -> mul_const k va
        | Val { anchor = Abs; lo = Fin k; hi = Fin k'; _ }, _ when k = k' -> mul_const k vb
        | _ -> Top)
      | Instr.Ishl -> (
        match vb with
        | Val { anchor = Abs; lo = Fin k; hi = Fin k'; _ } when k = k' && k >= 0 && k < 30 ->
          mul_const (1 lsl k) va
        | _ -> Top)
      | Instr.Iand | Instr.Ior | Instr.Ishr -> Top
    in
    set env d v
  | Instr.Lea (d, m) -> set env d (eval_mem env m)
  | Instr.Ild (d, _) | Instr.Vmovmsk (_, d, _) -> set env d Top
  | i ->
    (* FP instructions never define a GPR; be safe anyway. *)
    List.fold_left
      (fun env (r : Reg.t) -> if r.Reg.cls = Reg.Gpr then set env r Top else env)
      env (Instr.defs i)

let transfer_term env = function
  | Block.Br { lhs; dec; _ } when dec > 0 ->
    set env lhs (sub (env_get env lhs) (const dec))
  | _ -> env

(** After this many visits of one block, the transfer output is
    widened against the previous output: any bound still changing goes
    to its infinity (absorbing), so the fixpoint is reached even where
    the precision-keeping join of {!join_value} would oscillate.
    Well-behaved kernels converge in a handful of visits and never
    feel it. *)
let widen_after = 16

let widen_value prev v =
  match (prev, v) with
  | Top, _ | _, Top -> Top
  | Val x, Val y ->
    if not (anchor_equal x.anchor y.anchor) then Top
    else
      Val
        {
          anchor = x.anchor;
          lo = (if x.lo = y.lo then x.lo else NegInf);
          hi = (if x.hi = y.hi then x.hi else PosInf);
          stride = join_stride x y;
        }

let widen_env prev out =
  match (prev, out) with
  | Domain.Unreached, v | v, Domain.Unreached -> v
  | Domain.Env p, Domain.Env o ->
    Domain.Env
      (Imap.merge
         (fun _ pv ov ->
           match (pv, ov) with
           | Some pv, Some ov -> (
             match widen_value pv ov with Top -> None | v -> Some v)
           | None, _ | _, None -> None (* Top is absorbing *))
         p o)

let analyze (f : Cfg.func) =
  let visits : (string, int * Domain.t) Hashtbl.t = Hashtbl.create 16 in
  let transfer (b : Block.t) inn =
    let out =
      match inn with
      | Domain.Unreached ->
        (* An unreached block stays unreached until a predecessor flows
           into it; transferring bottom must yield bottom or the entry
           fact would leak into dead code. *)
        Domain.Unreached
      | Domain.Env env ->
        let env = List.fold_left transfer_instr env b.Block.instrs in
        Domain.Env (transfer_term env b.Block.term)
    in
    match Hashtbl.find_opt visits b.Block.label with
    | Some (n, prev) when n >= widen_after ->
      let w = widen_env prev out in
      Hashtbl.replace visits b.Block.label (n + 1, w);
      w
    | Some (n, _) ->
      Hashtbl.replace visits b.Block.label (n + 1, out);
      out
    | None ->
      Hashtbl.add visits b.Block.label (1, out);
      out
  in
  let boundary =
    Domain.Env
      (List.fold_left
         (fun env (_, (r : Reg.t)) ->
           if r.Reg.cls = Reg.Gpr then Imap.add r.Reg.id (param r) env else env)
         Imap.empty f.Cfg.params)
  in
  let result = Engine.run ~direction:Dataflow.Forward ~boundary ~transfer f in
  { result; func = f }

(** Abstract value of [r] at the entry of block [label]. *)
let at_entry t label (r : Reg.t) =
  match Engine.entry_value t.result label with
  | Domain.Unreached -> Top
  | Domain.Env env -> env_get env r

(** Abstract value of [r] at the exit of block [label]. *)
let at_exit t label (r : Reg.t) =
  match Engine.exit_value t.result label with
  | Domain.Unreached -> Top
  | Domain.Env env -> env_get env r

(** Environment at the entry of block [label], for flow-sensitive
    walks inside a block ([None] when the block is unreached). *)
let env_at_entry t label =
  match Engine.entry_value t.result label with
  | Domain.Unreached -> None
  | Domain.Env env -> Some env

let to_string = function
  | Top -> "T"
  | Val { anchor; lo; hi; stride } ->
    let b = function NegInf -> "-inf" | PosInf -> "+inf" | Fin k -> string_of_int k in
    Printf.sprintf "%s[%s,%s]/%d"
      (match anchor with Abs -> "" | Sym r -> Reg.to_string r ^ "+")
      (b lo) (b hi) stride
