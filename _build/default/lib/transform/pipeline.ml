open Ifko_codegen

let snapshot (compiled : Lower.compiled) =
  let func = Cfg.copy compiled.Lower.func in
  let loopnest =
    Option.map
      (fun (ln : Loopnest.t) ->
        Loopnest.
          {
            preheader = ln.preheader;
            header = ln.header;
            latch = ln.latch;
            mid = ln.mid;
            exit = ln.exit;
            cleanup = ln.cleanup;
            cnt = ln.cnt;
            index = ln.index;
            step = ln.step;
            per_iter = ln.per_iter;
            vectorized = ln.vectorized;
            unrolled = ln.unrolled;
            lc_fused = ln.lc_fused;
            speculate = ln.speculate;
            template = ln.template;
          })
      compiled.Lower.loopnest
  in
  { compiled with Lower.func; loopnest }

let protected_labels (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> []
  | Some ln ->
    let fixed =
      [ ln.Loopnest.preheader; ln.Loopnest.header; ln.Loopnest.latch; ln.Loopnest.mid;
        ln.Loopnest.exit ]
    in
    (match ln.Loopnest.cleanup with
    | Some (h, l) -> h :: l :: fixed
    | None -> fixed)

let repeatable ?(protect = []) (f : Cfg.func) =
  let rec go n =
    let changed =
      let c1 = Copyprop.run f in
      let c2 = Peephole.run f in
      let c3 = Deadcode.run f in
      let c4 = Branchopt.run ~protect f in
      c1 || c2 || c3 || c4
    in
    if changed && n < 20 then go (n + 1) else n + 1
  in
  go 0

let apply ?(skip_regalloc = false) ~line_bytes (compiled : Lower.compiled) (params : Params.t) =
  let c = snapshot compiled in
  let f = c.Lower.func in
  (* Fundamental transformations, fixed order. *)
  if params.Params.sv then Simd.apply c;
  if params.Params.unroll > 1 then Unroll.apply c params.Params.unroll;
  if params.Params.cisc then Ciscidx.apply c;
  if params.Params.lc then Loopctl.apply c;
  if params.Params.ae > 1 then Accexp.apply c params.Params.ae;
  if params.Params.bf > 0 then Blockfetch.apply c params.Params.bf;
  if params.Params.prefetch <> [] then
    Prefetch_xform.apply c ~line_bytes params.Params.prefetch;
  if params.Params.wnt then Ntwrite.apply c;
  (* Repeatable block to fixed point, then allocation, then a final
     cleanup of any trivialities the spill code introduced. *)
  ignore (repeatable ~protect:(protected_labels c) f : int);
  (* Final unprotected control-flow cleanup: nothing needs the loop
     bookkeeping labels any more, so the body can absorb the latch
     (removing a jump per iteration).  The loop-nest labels in [c] may
     go stale here; only the code matters from this point on. *)
  ignore (Branchopt.run f : bool);
  Validate.check f;
  if not skip_regalloc then begin
    Regalloc.run f;
    ignore (Peephole.run f : bool);
    Validate.check_physical f
  end;
  c
