open Ifko_hil
module P = Ifko_transform.Params

(* ---------- kernel shrinking ---------- *)

let expr_shrinks = function
  | Ast.Binop (_, a, b) -> [ a; b ]
  | Ast.Abs a | Ast.Sqrt a | Ast.Neg a -> [ a ]
  | Ast.Int_lit _ | Ast.Fp_lit _ | Ast.Var _ | Ast.Load _ -> []

(* Every way to replace one statement by a (usually smaller) statement
   list: removal, branch flattening, one-step expression shrinks. *)
let rec stmt_shrinks (s : Ast.stmt) : Ast.stmt list list =
  match s with
  | Ast.Loop lp ->
    ([] :: List.map (fun b -> [ Ast.Loop { lp with Ast.loop_body = b } ]) (body_shrinks lp.Ast.loop_body))
    @ (if lp.Ast.loop_speculate then [ [ Ast.Loop { lp with Ast.loop_speculate = false } ] ] else [])
  | Ast.If_then (op, a, b, t, e) ->
    [ []; t; e ]
    @ List.map (fun t' -> [ Ast.If_then (op, a, b, t', e) ]) (body_shrinks t)
    @ List.map (fun e' -> [ Ast.If_then (op, a, b, t, e') ]) (body_shrinks e)
  | Ast.Assign (x, e) -> [] :: List.map (fun e' -> [ Ast.Assign (x, e') ]) (expr_shrinks e)
  | Ast.Assign_op (op, x, e) ->
    [] :: List.map (fun e' -> [ Ast.Assign_op (op, x, e') ]) (expr_shrinks e)
  | Ast.Store (p, k, e) -> [] :: List.map (fun e' -> [ Ast.Store (p, k, e') ]) (expr_shrinks e)
  | Ast.Ptr_inc _ | Ast.Ptr_inc_var _ | Ast.If_goto _ | Ast.Goto _ | Ast.Label _
  | Ast.Return _ ->
    [ [] ]

and body_shrinks (body : Ast.stmt list) : Ast.stmt list list =
  List.concat
    (List.mapi
       (fun i s ->
         let before = List.filteri (fun j _ -> j < i) body in
         let after = List.filteri (fun j _ -> j > i) body in
         List.map (fun repl -> before @ repl @ after) (stmt_shrinks s))
       body)

(* Names referenced anywhere in a statement list (reads, writes, loop
   bounds and indices) — declarations of anything else can go. *)
let referenced (body : Ast.stmt list) =
  let used = Hashtbl.create 16 in
  let mark n = Hashtbl.replace used n () in
  let rec expr = function
    | Ast.Var x -> mark x
    | Ast.Load (p, _) -> mark p
    | Ast.Binop (_, a, b) -> expr a; expr b
    | Ast.Abs e | Ast.Sqrt e | Ast.Neg e -> expr e
    | Ast.Int_lit _ | Ast.Fp_lit _ -> ()
  in
  let rec stmt = function
    | Ast.Assign (x, e) | Ast.Assign_op (_, x, e) -> mark x; expr e
    | Ast.Store (p, _, e) -> mark p; expr e
    | Ast.Ptr_inc (p, _) -> mark p
    | Ast.Ptr_inc_var (p, v) -> mark p; mark v
    | Ast.Loop lp ->
      mark lp.Ast.loop_var;
      expr lp.Ast.loop_from;
      expr lp.Ast.loop_to;
      List.iter stmt lp.Ast.loop_body
    | Ast.If_goto (_, a, b, _) -> expr a; expr b
    | Ast.If_then (_, a, b, t, e) -> expr a; expr b; List.iter stmt t; List.iter stmt e
    | Ast.Goto _ | Ast.Label _ -> ()
    | Ast.Return (Some e) -> expr e
    | Ast.Return None -> ()
  in
  List.iter stmt body;
  used

let prune (k : Ast.kernel) =
  let used = referenced k.Ast.k_body in
  let keep n = Hashtbl.mem used n in
  {
    k with
    Ast.k_params = List.filter (fun (p : Ast.param) -> keep p.Ast.p_name) k.Ast.k_params;
    k_locals =
      List.filter_map
        (fun (d : Ast.decl) ->
          match List.filter keep d.Ast.d_names with
          | [] -> None
          | names -> Some { d with Ast.d_names = names })
        k.Ast.k_locals;
  }

let kernel_candidates (k : Ast.kernel) =
  List.map (fun body -> prune { k with Ast.k_body = body }) (body_shrinks k.Ast.k_body)

(* ---------- parameter shrinking ---------- *)

let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs

let params_candidates (p : P.t) =
  let cands = ref [] in
  let add c = if c <> p then cands := c :: !cands in
  if p.P.sv then add { p with P.sv = false };
  if p.P.wnt then add { p with P.wnt = false };
  if p.P.cisc then add { p with P.cisc = false };
  if p.P.bf <> 0 then add { p with P.bf = 0 };
  if p.P.prefetch <> [] then begin
    add { p with P.prefetch = [] };
    if List.length p.P.prefetch > 1 then
      List.iteri (fun i _ -> add { p with P.prefetch = remove_nth i p.P.prefetch }) p.P.prefetch
  end;
  if p.P.ae <> 0 then begin
    add { p with P.ae = 0 };
    if p.P.ae > 3 then add { p with P.ae = p.P.ae / 2 }
  end;
  if p.P.lc then add { p with P.lc = false };
  if p.P.unroll <> 1 then begin
    add { p with P.unroll = 1 };
    if p.P.unroll > 2 then add { p with P.unroll = p.P.unroll / 2 }
  end;
  List.rev !cands

(* ---------- the greedy loop ---------- *)

let minimize ?(max_attempts = 400) ~fails kernel params =
  let attempts = ref max_attempts in
  let still_fails k p =
    if !attempts <= 0 then false
    else begin
      decr attempts;
      try fails k p with _ -> false
    end
  in
  let rec go k p =
    let candidate =
      let rec first = function
        | [] -> None
        | `Point p' :: rest -> if still_fails k p' then Some (k, p') else first rest
        | `Kernel k' :: rest -> if still_fails k' p then Some (k', p) else first rest
      in
      first
        (List.map (fun x -> `Point x) (params_candidates p)
        @ List.map (fun x -> `Kernel x) (kernel_candidates k))
    in
    match candidate with
    | Some (k', p') when !attempts > 0 -> go k' p'
    | Some (k', p') -> (k', p')
    | None -> (k, p)
  in
  go kernel params
