open Ifko_transform

type probe = Params.t -> float
type batch_map = (Params.t -> float) -> Params.t list -> float list

type t = {
  name : string;
  propose : unit -> Params.t list;
  observe : (Params.t * float) list -> unit;
  best : unit -> Params.t * float;
  contributions : unit -> (string * float) list;
}

type result = {
  best : Params.t;
  best_perf : float;
  start_perf : float;
  contributions : (string * float) list;
  evaluations : int;
  probes_to_best : int;
}

(* Explicit left-to-right map, so the sequential path has a defined
   probe order to be bit-identical with. *)
let seq_map f xs = List.rev (List.rev_map f xs)

(* The shared propose/observe loop.  Every strategy runs through here:
   the loop owns the memo cache (one probe per distinct point, ever),
   the evaluation counter, and the probes-to-best accounting; the
   strategy owns candidate generation and winner selection.

   A proposed batch is deduplicated against the cache (and against
   itself) in proposal order, the fresh remainder is evaluated through
   [map_batch] — concurrently, when the driver supplies a domain
   pool — and the full batch with its values is handed back to the
   strategy in proposal order.  Winner selection therefore never
   depends on evaluation completion order, which is what makes any
   order-preserving [map_batch] bit-identical to the sequential one. *)
let run ?(map_batch = seq_map) ~init ~(make : init_perf:float -> t) probe =
  let cache : (Params.t, float) Hashtbl.t = Hashtbl.create 64 in
  let evals = ref 0 in
  let top = ref neg_infinity in
  let top_at = ref 0 in
  let note v =
    incr evals;
    if v > !top then begin
      top := v;
      top_at := !evals
    end
  in
  let init_perf = probe init in
  Hashtbl.replace cache init init_perf;
  note init_perf;
  let strat = make ~init_perf in
  let rec loop () =
    match strat.propose () with
    | [] -> ()
    | batch ->
      let batched = Hashtbl.create 8 in
      let fresh =
        List.filter
          (fun p ->
            if Hashtbl.mem cache p || Hashtbl.mem batched p then false
            else begin
              Hashtbl.replace batched p ();
              true
            end)
          batch
      in
      let vals = map_batch probe fresh in
      List.iter2
        (fun p v ->
          Hashtbl.replace cache p v;
          note v)
        fresh vals;
      strat.observe (List.map (fun p -> (p, Hashtbl.find cache p)) batch);
      loop ()
  in
  loop ();
  let best, best_perf = strat.best () in
  {
    best;
    best_perf;
    start_perf = init_perf;
    contributions = strat.contributions ();
    evaluations = !evals;
    probes_to_best = !top_at;
  }
