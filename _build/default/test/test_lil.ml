(* LIL IR tests: def/use bookkeeping, register renaming, block/CFG
   helpers and the structural validator. *)

let gpr i = Reg.virt Reg.Gpr i
let xmm i = Reg.virt Reg.Xmm i
let mem ?(disp = 0) ?index ?(scale = 1) base = Instr.mk_mem ?index ~scale ~disp base

let reg = Alcotest.testable (fun fmt r -> Format.pp_print_string fmt (Reg.to_string r)) Reg.equal

let test_defs_uses () =
  let i = Instr.Fop (Instr.D, Instr.Fadd, xmm 0, xmm 1, xmm 2) in
  Alcotest.(check (list reg)) "defs" [ xmm 0 ] (Instr.defs i);
  Alcotest.(check (list reg)) "uses" [ xmm 1; xmm 2 ] (Instr.uses i);
  let st = Instr.Fst (Instr.S, mem ~index:(gpr 2) (gpr 1), xmm 3) in
  Alcotest.(check (list reg)) "store defs nothing" [] (Instr.defs st);
  Alcotest.(check bool) "store uses value+addr" true
    (List.for_all (fun r -> List.exists (Reg.equal r) (Instr.uses st)) [ xmm 3; gpr 1; gpr 2 ]);
  let pf = Instr.Prefetch (Instr.Nta, mem (gpr 4)) in
  Alcotest.(check (list reg)) "prefetch uses base" [ gpr 4 ] (Instr.uses pf);
  Alcotest.(check bool) "prefetch is not a load" false (Instr.is_load pf);
  Alcotest.(check bool) "fopm is a load" true
    (Instr.is_load (Instr.Fopm (Instr.D, Instr.Fmul, xmm 0, xmm 1, mem (gpr 0))));
  Alcotest.(check bool) "vstnt is a store" true
    (Instr.is_store (Instr.Vstnt (Instr.D, mem (gpr 0), xmm 0)))

let test_map_regs () =
  let subst r = if Reg.equal r (gpr 1) then gpr 9 else r in
  let i = Instr.Iop (Instr.Iadd, gpr 1, gpr 1, Instr.Oreg (gpr 2)) in
  (match Instr.map_regs subst i with
  | Instr.Iop (Instr.Iadd, d, a, Instr.Oreg b) ->
    Alcotest.(check reg) "dst renamed" (gpr 9) d;
    Alcotest.(check reg) "src renamed" (gpr 9) a;
    Alcotest.(check reg) "other preserved" (gpr 2) b
  | _ -> Alcotest.fail "shape changed");
  match Instr.map_regs_uses_only subst i with
  | Instr.Iop (Instr.Iadd, d, a, _) ->
    Alcotest.(check reg) "dst untouched" (gpr 1) d;
    Alcotest.(check reg) "use renamed" (gpr 9) a
  | _ -> Alcotest.fail "shape changed"

let test_term_helpers () =
  let br =
    Block.Br
      { cmp = Instr.Ge; lhs = gpr 0; rhs = Instr.Oimm 4; ifso = "a"; ifnot = "b"; dec = 4 }
  in
  Alcotest.(check (list string)) "succs" [ "a"; "b" ] (Block.successors br);
  Alcotest.(check (list reg)) "fused br defines its counter" [ gpr 0 ] (Block.term_defs br);
  Alcotest.(check (list reg)) "uses" [ gpr 0 ] (Block.term_uses br);
  let renamed = Block.map_term_labels (fun l -> l ^ "!") br in
  Alcotest.(check (list string)) "relabel" [ "a!"; "b!" ] (Block.successors renamed);
  Alcotest.(check (list reg)) "ret uses" [ xmm 0 ] (Block.term_uses (Block.Ret (Some (xmm 0))))

let mk_func blocks =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <- blocks;
  Ifko_util.Ids.reserve f.Cfg.reg_ids 100;
  f

let test_cfg_helpers () =
  let b1 = Block.make "entry" ~term:(Block.Jmp "exit") in
  let b2 = Block.make "exit" ~term:(Block.Ret None) in
  let f = mk_func [ b1; b2 ] in
  Alcotest.(check string) "entry" "entry" (Cfg.entry f).Block.label;
  Alcotest.(check bool) "find" true (Cfg.find_block f "exit" <> None);
  let preds = Cfg.predecessors f in
  Alcotest.(check (list string)) "preds of exit" [ "entry" ]
    (Option.value ~default:[] (Hashtbl.find_opt preds "exit"));
  Cfg.insert_after f ~after:"entry" [ Block.make "mid" ~term:(Block.Jmp "exit") ];
  Alcotest.(check (list string)) "order" [ "entry"; "mid"; "exit" ]
    (List.map (fun b -> b.Block.label) f.Cfg.blocks);
  let copy = Cfg.copy f in
  (Cfg.find_block_exn copy "mid").Block.term <- Block.Ret None;
  Alcotest.(check bool) "copy is deep" true
    ((Cfg.find_block_exn f "mid").Block.term = Block.Jmp "exit")

let test_alloc_slot () =
  let f = mk_func [ Block.make "entry" ~term:(Block.Ret None) ] in
  Alcotest.(check int) "slot 0" 0 (Cfg.alloc_slot f);
  Alcotest.(check int) "slot 1 is 16 bytes on" 16 (Cfg.alloc_slot f);
  Alcotest.(check int) "count" 2 f.Cfg.frame_slots

let expect_invalid f =
  match Validate.check f with
  | exception Validate.Invalid _ -> ()
  | () -> Alcotest.fail "expected Validate.Invalid"

let test_validate_ok () =
  let f =
    mk_func
      [ Block.make "entry"
          ~instrs:[ Instr.Fld (Instr.D, xmm 0, mem (gpr 0)) ]
          ~term:(Block.Ret (Some (xmm 0)));
      ]
  in
  Validate.check f

let test_validate_unknown_label () =
  expect_invalid (mk_func [ Block.make "entry" ~term:(Block.Jmp "missing") ])

let test_validate_class () =
  expect_invalid
    (mk_func
       [ Block.make "entry"
           ~instrs:[ Instr.Fld (Instr.D, gpr 0, mem (gpr 1)) ]
           ~term:(Block.Ret None);
       ])

let test_validate_scale () =
  expect_invalid
    (mk_func
       [ Block.make "entry"
           ~instrs:[ Instr.Fld (Instr.D, xmm 0, mem ~index:(gpr 1) ~scale:3 (gpr 0)) ]
           ~term:(Block.Ret None);
       ])

let test_validate_lane () =
  expect_invalid
    (mk_func
       [ Block.make "entry"
           ~instrs:[ Instr.Vextract (Instr.D, xmm 0, xmm 1, 2) ]
           ~term:(Block.Ret None);
       ])

let test_validate_no_ret () =
  expect_invalid (mk_func [ Block.make "entry" ~term:(Block.Jmp "entry") ])

let test_validate_duplicate_label () =
  expect_invalid
    (mk_func [ Block.make "entry" ~term:(Block.Ret None); Block.make "entry" ~term:(Block.Ret None) ])

let test_validate_physical () =
  let f =
    mk_func
      [ Block.make "entry"
          ~instrs:[ Instr.Imov (gpr 3, gpr 4) ]
          ~term:(Block.Ret None);
      ]
  in
  match Validate.check_physical f with
  | exception Validate.Invalid _ -> ()
  | () -> Alcotest.fail "virtual registers must not pass check_physical"

let test_pp_smoke () =
  let f =
    mk_func
      [ Block.make "entry"
          ~instrs:
            [ Instr.Vopm (Instr.S, Instr.Fmul, xmm 0, xmm 1, mem ~disp:32 (gpr 0));
              Instr.Prefetch (Instr.T1, mem (gpr 0));
            ]
          ~term:(Block.Ret None);
      ]
  in
  let s = Cfg.to_string f in
  Alcotest.(check bool) "mentions mulps" true (Test_util.contains s "mulps");
  Alcotest.(check bool) "mentions prefetcht1" true (Test_util.contains s "prefetcht1")

let suite =
  [ Alcotest.test_case "defs/uses" `Quick test_defs_uses;
    Alcotest.test_case "map_regs" `Quick test_map_regs;
    Alcotest.test_case "terminators" `Quick test_term_helpers;
    Alcotest.test_case "cfg helpers" `Quick test_cfg_helpers;
    Alcotest.test_case "frame slots" `Quick test_alloc_slot;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate unknown label" `Quick test_validate_unknown_label;
    Alcotest.test_case "validate reg class" `Quick test_validate_class;
    Alcotest.test_case "validate scale" `Quick test_validate_scale;
    Alcotest.test_case "validate lane" `Quick test_validate_lane;
    Alcotest.test_case "validate no ret" `Quick test_validate_no_ret;
    Alcotest.test_case "validate duplicate label" `Quick test_validate_duplicate_label;
    Alcotest.test_case "validate physical" `Quick test_validate_physical;
    Alcotest.test_case "asm printer" `Quick test_pp_smoke;
  ]
