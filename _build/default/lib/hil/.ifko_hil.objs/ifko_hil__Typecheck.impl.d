lib/hil/typecheck.ml: Ast List Printf String
