(* Register allocation tests: physical-file discipline, spill
   correctness under pressure, and parameter binding survival. *)
open Ifko_blas
open Ifko_transform

let test_all_kernels_high_pressure () =
  (* very high unroll + AE forces spills somewhere; code must stay
     correct and strictly within the architectural file *)
  List.iter
    (fun id ->
      let compiled = Hil_sources.compile id in
      let d = Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze compiled) in
      let params = { d with Params.unroll = 16; ae = 8; prefetch = [] } in
      let c = Pipeline.apply ~line_bytes:128 compiled params in
      Validate.check_physical c.Ifko_codegen.Lower.func;
      let env = Workload.make_env id ~seed:21 99 in
      let expect = Workload.expectation id ~seed:21 99 in
      let tol = Workload.tolerance id ~n:99 in
      match
        Ifko_sim.Verify.check ~tol ~ret_fsize:id.Defs.prec c.Ifko_codegen.Lower.func env
          expect
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s under pressure: %s" (Defs.name id) e)
    Defs.all

let test_spills_happen () =
  (* unrolled iamax carries enough integer state to spill *)
  let id = { Defs.routine = Defs.Iamax; prec = Instr.S } in
  let compiled = Hil_sources.compile id in
  let d = Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze compiled) in
  let c = Pipeline.apply ~line_bytes:128 compiled { d with Params.unroll = 16 } in
  Alcotest.(check bool) "frame slots allocated" true
    (c.Ifko_codegen.Lower.func.Cfg.frame_slots > 0)

let test_no_spills_when_easy () =
  let id = { Defs.routine = Defs.Copy; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let d = Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze compiled) in
  let c = Pipeline.apply ~line_bytes:128 compiled { d with Params.unroll = 2; prefetch = [] } in
  Alcotest.(check int) "no spills for small copy" 0 c.Ifko_codegen.Lower.func.Cfg.frame_slots

let test_params_rebound () =
  let id = { Defs.routine = Defs.Axpy; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let d = Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze compiled) in
  let c = Pipeline.apply ~line_bytes:128 compiled d in
  let f = c.Ifko_codegen.Lower.func in
  Alcotest.(check (list string)) "parameter names preserved" [ "N"; "alpha"; "X"; "Y" ]
    (List.map fst f.Cfg.params);
  List.iter
    (fun (_, (r : Reg.t)) ->
      Alcotest.(check bool) "params physical" true r.Reg.phys)
    f.Cfg.params;
  (* distinct same-class parameter registers *)
  let gprs =
    List.filter_map
      (fun (_, (r : Reg.t)) -> if r.Reg.cls = Reg.Gpr then Some r.Reg.id else None)
      f.Cfg.params
  in
  Alcotest.(check int) "gpr params distinct" (List.length gprs)
    (List.length (List.sort_uniq compare gprs))

let suite =
  [ Alcotest.test_case "all kernels under pressure" `Slow test_all_kernels_high_pressure;
    Alcotest.test_case "spills happen" `Quick test_spills_happen;
    Alcotest.test_case "no gratuitous spills" `Quick test_no_spills_when_easy;
    Alcotest.test_case "params rebound" `Quick test_params_rebound;
  ]
