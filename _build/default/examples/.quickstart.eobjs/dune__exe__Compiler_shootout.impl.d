examples/compiler_shootout.ml: Array Defs Ifko Ifko_eval Ifko_util List Printf String Sys
