lib/transform/ntwrite.ml: Block Cfg Ifko_codegen Instr List Lower Reg
