(** Geometry-keyed pool of {!Memsys} instances.

    The timers borrow machines instead of constructing one per
    measurement; {!Memsys.reset} / {!Memsys.restore} are bit-identical
    to fresh construction, so pooling is observably free.  Thread-safe:
    the pool is shared across domains (the parallel probe pool borrows
    concurrently).

    {b Contract}: {!release} does not clean the instance, and
    {!acquire} may return one in an arbitrary prior state — callers
    must reset or restore before reading anything from it.  Every
    timer path already does this (it must even on a fresh instance, to
    select its cache context), so the pool adds no work to the hot
    path. *)

val acquire : Config.t -> Memsys.t
(** A machine for this config: pooled if one with identical
    [Config.geometry] is available, freshly created otherwise.  State
    is arbitrary until the caller resets/restores. *)

val release : Memsys.t -> unit
(** Return an instance to its geometry's pool (dropped when the pool
    is full).  The instance must no longer be used by the caller.
    Safe to call on an instance left mid-simulation by an exception. *)

val with_machine : Config.t -> (Memsys.t -> 'a) -> 'a
(** [acquire]/[release] bracket, releasing on exceptions too. *)

type stats = { acquires : int; creates : int; pooled : int }

val stats : unit -> stats
(** Process-lifetime counters: total acquires, how many missed the
    pool and constructed, and instances currently pooled. *)

val clear : unit -> unit
(** Drop every pooled instance and reset the {!stats} counters (tests
    use this to force cold paths and assert on counts in isolation). *)
