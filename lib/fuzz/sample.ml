open Ifko_transform
module Rng = Ifko_util.Rng

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

let point rng ~line_bytes ~(report : Ifko_analysis.Report.t) =
  let unroll = pick rng [ 0; 1; 1; 2; 2; 3; 4; 4; 5; 6; 8; 12; 16; 17 ] in
  let kinds = [ Instr.Nta; Instr.T0; Instr.T1; Instr.W ] in
  let prefetch =
    List.filter_map
      (fun (m : Ifko_analysis.Ptrinfo.moving) ->
        let name = m.Ifko_analysis.Ptrinfo.array.Ifko_codegen.Lower.a_name in
        match Rng.int rng 4 with
        | 0 -> None
        | 1 ->
          Some (name, { Params.pf_ins = Some (pick rng kinds); pf_dist = 2 * line_bytes })
        | _ ->
          Some
            ( name,
              {
                Params.pf_ins = Some (pick rng kinds);
                pf_dist = pick rng [ 0; 1; 64; 128; 256; 640; 2048; 1 lsl 20 ];
              } ))
      report.Ifko_analysis.Report.prefetch_arrays
  in
  {
    Params.sv =
      (if report.Ifko_analysis.Report.vectorizable then Rng.int rng 10 < 6
       else Rng.int rng 10 < 2);
    unroll;
    lc = Rng.int rng 2 = 0;
    ae = pick rng [ 0; 0; 0; 1; 2; 2; 3; 4; 6; 8 ];
    wnt = Rng.int rng 10 < 3;
    bf = pick rng [ 0; 0; 0; 0; 0; 2048; 4096 ];
    cisc = Rng.int rng 8 = 0;
    prefetch;
  }
