lib/transform/unroll.ml: Block Cfg Edit Hashtbl Ifko_analysis Ifko_codegen Instr List Loopnest Lower Printf Ptrinfo Reg
