lib/transform/regalloc.mli: Cfg
