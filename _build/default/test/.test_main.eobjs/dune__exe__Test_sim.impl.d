test/test_sim.ml: Alcotest Block Bytes Cfg Float Ifko_analysis Ifko_blas Ifko_machine Ifko_search Ifko_sim Ifko_transform Instr Int32 List Printf Reg Test_util
