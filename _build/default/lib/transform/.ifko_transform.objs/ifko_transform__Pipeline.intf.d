lib/transform/pipeline.mli: Cfg Ifko_codegen Params
