lib/sim/timer.mli: Cfg Env Ifko_machine Instr
