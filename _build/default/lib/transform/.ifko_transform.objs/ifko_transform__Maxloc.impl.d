lib/transform/maxloc.ml: Array Block Cfg Edit Ifko_codegen Instr List Loopnest Lower Option Reg
