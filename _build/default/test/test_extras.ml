(* Tests for the extended BLAS (rot, nrm2, strided dot/axpy) and the
   SQRT / runtime-stride front-end features they exercise. *)
open Ifko_blas

let verify ?(incx = 1) ?(incy = 1) id func =
  List.iter
    (fun n ->
      let env = Extras.make_env id ~seed:91 ~incx ~incy n in
      let expect = Extras.expectation id ~seed:91 ~incx ~incy n in
      let tol = Extras.tolerance id ~n in
      match Ifko_sim.Verify.check ~tol ~ret_fsize:id.Extras.prec func env expect with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s inc=(%d,%d) n=%d: %s" (Extras.name id) incx incy n e)
    [ 0; 1; 2; 17; 64; 333 ]

let test_naive_correct () =
  List.iter (fun id -> verify id (Extras.compile id).Ifko_codegen.Lower.func) Extras.all

let test_strided_correct () =
  List.iter
    (fun routine ->
      List.iter
        (fun (incx, incy) ->
          let id = { Extras.routine; prec = Instr.D } in
          verify ~incx ~incy id (Extras.compile id).Ifko_codegen.Lower.func)
        [ (2, 1); (1, 3); (2, 3); (4, 4) ])
    [ Extras.Dot_strided; Extras.Axpy_strided ]

let test_transformed_correct () =
  (* full pipeline at an aggressive point, all extras *)
  List.iter
    (fun id ->
      let compiled = Extras.compile id in
      let d =
        Ifko_transform.Params.default ~line_bytes:128
          (Ifko_analysis.Report.analyze compiled)
      in
      let c =
        Ifko_transform.Pipeline.apply ~line_bytes:128 compiled
          { d with Ifko_transform.Params.unroll = 8; ae = 3 }
      in
      Validate.check_physical c.Ifko_codegen.Lower.func;
      verify id c.Ifko_codegen.Lower.func)
    Extras.all

let test_strided_transformed () =
  (* unrolling a strided loop must re-execute the LEA per copy *)
  let id = { Extras.routine = Extras.Dot_strided; prec = Instr.D } in
  let compiled = Extras.compile id in
  let d =
    Ifko_transform.Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze compiled)
  in
  let c =
    Ifko_transform.Pipeline.apply ~line_bytes:128 compiled
      { d with Ifko_transform.Params.unroll = 4; lc = true }
  in
  verify ~incx:3 ~incy:2 id c.Ifko_codegen.Lower.func

let test_vectorizability () =
  let vec routine =
    (Ifko_analysis.Vecinfo.analyze (Extras.compile { Extras.routine; prec = Instr.S }))
      .Ifko_analysis.Vecinfo.vectorizable
  in
  Alcotest.(check bool) "rot vectorizes" true (vec Extras.Rot);
  Alcotest.(check bool) "nrm2 vectorizes" true (vec Extras.Nrm2);
  Alcotest.(check bool) "strided dot does not" false (vec Extras.Dot_strided);
  Alcotest.(check bool) "strided axpy does not" false (vec Extras.Axpy_strided)

let test_sqrt_semantics () =
  (* the SQRT operator end to end, single-precision rounding included *)
  let src =
    {|KERNEL t(N : int, X : ptr single) RETURNS single
VARS r : single;
BEGIN
  r = SQRT X[0];
  RETURN r;
END|}
  in
  let c =
    Ifko_codegen.Lower.lower (Ifko_hil.Typecheck.check (Ifko_hil.Parser.parse_kernel src))
  in
  let env = Ifko_sim.Env.create () in
  Ifko_sim.Env.bind_int env "N" 1;
  Ifko_sim.Env.alloc_array env "X" Instr.S 1;
  Ifko_sim.Env.set_elem env "X" 0 2.0;
  match (Ifko_sim.Exec.run ~ret_fsize:Instr.S c.Ifko_codegen.Lower.func env).Ifko_sim.Exec.ret with
  | Some (Ifko_sim.Exec.Rfp v) ->
    Alcotest.(check (float 0.0)) "binary32 sqrt(2)"
      (Int32.float_of_bits (Int32.bits_of_float (Float.sqrt 2.0)))
      v
  | _ -> Alcotest.fail "no result"

let test_nrm2_tunes () =
  (* the tuning loop works on the extended routines too *)
  let id = { Extras.routine = Extras.Nrm2; prec = Instr.D } in
  let compiled = Extras.compile id in
  let cfg = Ifko_machine.Config.p4e in
  let spec = Extras.timer_spec id ~seed:91 in
  let test func =
    (try
       verify id func;
       true
     with _ -> false)
  in
  let tuned =
    Ifko_search.Driver.tune ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000
      ~flops_per_n:2.0 ~test compiled
  in
  Alcotest.(check bool) "tuning improves nrm2" true
    (tuned.Ifko_search.Driver.ifko_mflops > tuned.Ifko_search.Driver.fko_mflops);
  Alcotest.(check bool) "nrm2 tracks asum-like rates" true
    (tuned.Ifko_search.Driver.ifko_mflops > 1000.0)

let prop_rot_random_params =
  QCheck.Test.make ~name:"rot: any parameter point is correct" ~count:10
    QCheck.(triple bool (int_range 1 12) (int_range 0 6))
    (fun (sv, unroll, ae) ->
      let id = { Extras.routine = Extras.Rot; prec = Instr.S } in
      let compiled = Extras.compile id in
      let d =
        Ifko_transform.Params.default ~line_bytes:128
          (Ifko_analysis.Report.analyze compiled)
      in
      let c =
        Ifko_transform.Pipeline.apply ~line_bytes:128 compiled
          { d with Ifko_transform.Params.sv; unroll; ae }
      in
      verify id c.Ifko_codegen.Lower.func;
      true)

let suite =
  [ Alcotest.test_case "naive correct" `Quick test_naive_correct;
    Alcotest.test_case "strided correct" `Quick test_strided_correct;
    Alcotest.test_case "transformed correct" `Quick test_transformed_correct;
    Alcotest.test_case "strided transformed" `Quick test_strided_transformed;
    Alcotest.test_case "vectorizability" `Quick test_vectorizability;
    Alcotest.test_case "SQRT semantics" `Quick test_sqrt_semantics;
    Alcotest.test_case "nrm2 tunes" `Slow test_nrm2_tunes;
    QCheck_alcotest.to_alcotest prop_rot_random_params;
  ]
