test/test_search.ml: Alcotest Defs Hashtbl Hil_sources Ifko_analysis Ifko_blas Ifko_machine Ifko_search Ifko_sim Ifko_transform Instr List Params Validate Workload
