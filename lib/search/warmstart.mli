(** Store-warmed starts: seed a search with the winning points of
    similar past tunes.

    Every completed tune journals a {e tune-level} entry carrying the
    winning point, the kernel name and the kernel's analysis
    fingerprint ({!Ifko_analysis.Report.features}).  Before a new tune
    starts, the journal is scanned for donors, ranked by fingerprint
    distance, and the nearest winners are adapted into the target
    kernel's parameter space and injected as the strategy's opening
    batch — a daemon that has tuned [daxpy] starts [dscal] near the
    optimum.

    Invalidation is structural, not temporal: entries without a
    fingerprint (pre-dating it, or corrupt) are skipped; fingerprints
    are pure analysis outputs, so editing a kernel changes its features
    and re-ranks donors automatically; and {!adapt} clamps every axis
    to the target's legality-pruned candidates, so a stale donor can
    cost at most a few wasted probes, never a wrong result. *)

type donor = {
  d_kernel : string;  (** donor kernel's name (reporting only) *)
  d_feat : (string * float) list;  (** its analysis fingerprint *)
  d_params : Ifko_transform.Params.t;  (** its winning point *)
  d_mflops : float;  (** performance it reached *)
}

val feat_json : (string * float) list -> Ifko_store.Store.Json.value
(** Render a fingerprint as the JSON object tune entries embed. *)

val feat_of_json : Ifko_store.Store.Json.value -> (string * float) list option

val donor_of_entry :
  params:string -> prov:string -> Ifko_store.Store.outcome -> donor option
(** Parse one journal entry into a donor: requires a [Timed] tune-level
    entry ({!Ifko_store.Store.is_tune_prov}) whose params JSON carries
    ["best"], ["kernel"] and ["feat"].  Anything else — probe entries,
    pre-fingerprint tunes, corrupt JSON — yields [None]. *)

val donors_of_store : Ifko_store.Store.t -> donor list
(** All donors in the journal, in the store's deterministic
    sorted-key order. *)

val distance : (string * float) list -> (string * float) list -> float
(** Scale-free squared distance over the union of feature names
    (absent names read as 0), so differently-versioned fingerprints
    still compare on their shared prefix. *)

val adapt :
  ?extensions:bool ->
  cfg:Ifko_machine.Config.t ->
  report:Ifko_analysis.Report.t ->
  init:Ifko_transform.Params.t ->
  donor ->
  Ifko_transform.Params.t
(** Re-express a donor's winning point in the target kernel's space:
    positional prefetch remap onto the target's arrays, distances
    snapped to the target machine's grid, and every legality-pruned
    axis clamped back to the target default. *)

val seeds :
  ?extensions:bool ->
  ?k:int ->
  cfg:Ifko_machine.Config.t ->
  report:Ifko_analysis.Report.t ->
  init:Ifko_transform.Params.t ->
  feat:(string * float) list ->
  donor list ->
  Ifko_transform.Params.t list
(** The [k] (default 2) nearest donors by {!distance} to [feat],
    adapted and deduplicated, in rank order (ties broken by kernel
    name, then canonical point — fully deterministic).  The result is
    what a strategy probes as its warm opening batch. *)
