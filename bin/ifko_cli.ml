(* The ifko command-line interface.

   Subcommands:
     ifko analyze  FILE            -- FKO's analysis report for a HIL kernel
     ifko compile  FILE [flags]    -- one FKO invocation; prints assembly
     ifko lint     FILE [flags]    -- static checks + per-pass validation
     ifko tune     FILE [flags]    -- the full iterative/empirical search
                                      (--store PATH resumes/persists results,
                                       --jobs N evaluates probes in parallel)
     ifko fuzz     [flags]         -- differential fuzzing of the pipeline
                                      (--replay PATH re-runs saved reproducers)
     ifko sim      FILE [flags]    -- one simulator run, both engines checked
                                      bit-for-bit (--profile: fast-path coverage,
                                      superblock fusion, cycle attribution)
     ifko store    stat/compact/clear PATH -- tuning-store maintenance

   Timing requires knowing how to build workloads for the kernel's
   parameters; the CLI binds every `ptr` parameter to a fresh random
   vector of length N, every int parameter to N, and every fp parameter
   to 0.77 — matching the library's BLAS workloads. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Fuzz reproducers carry an already-parsed kernel; everything else is
   HIL source.  Accepting both lets `ifko lint` sweep the checked-in
   corpus with the same invocation as the example kernels. *)
let load path =
  if Filename.check_suffix path ".repro" then
    (Ifko.Fuzz.Corpus.read path).Ifko.Fuzz.Corpus.kernel
    |> Ifko.Hil.Typecheck.check |> Ifko.Lower.lower
  else Ifko.compile_source (read_file path)

let machine_of = function
  | "p4e" -> Ifko_machine.Config.p4e
  | "opteron" -> Ifko_machine.Config.opteron
  | other -> failwith (Printf.sprintf "unknown machine %S (p4e|opteron)" other)

let context_of = function
  | "oc" -> Ifko_sim.Timer.Out_of_cache
  | "l2" -> Ifko_sim.Timer.In_l2
  | other -> failwith (Printf.sprintf "unknown context %S (oc|l2)" other)

(* Workloads and testers for arbitrary user kernels live in
   {!Ifko.Generic}, shared with the serve daemon — both must build the
   exact same seeded workload or their store keys would not agree. *)
let generic_spec = Ifko.Generic.spec
let generic_test = Ifko.Generic.test

(* ---- analyze ---- *)

let analyze_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let compiled = load file in
    print_string (Ifko.Report.to_string (Ifko.analyze compiled))
  in
  Cmd.v (Cmd.info "analyze" ~doc:"print FKO's analysis report for a HIL kernel")
    Term.(const run $ file)

(* ---- compile ---- *)

let machine_arg =
  Arg.(value & opt string "p4e" & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"p4e or opteron")

let fidelity_of = function
  | s -> (
    match Ifko_sim.Timer.fidelity_of_string s with
    | Some f -> f
    | None -> failwith (Printf.sprintf "unknown fidelity %S (full|sampled)" s))

let sv_arg = Arg.(value & opt bool true & info [ "sv" ] ~doc:"SIMD vectorization")
let ur_arg = Arg.(value & opt int 0 & info [ "ur" ] ~doc:"unroll factor (0 = default)")
let ae_arg = Arg.(value & opt int 0 & info [ "ae" ] ~doc:"accumulator expansion")
let wnt_arg = Arg.(value & opt bool false & info [ "wnt" ] ~doc:"non-temporal writes")

let pf_arg =
  Arg.(value & opt int (-1) & info [ "pf-dist" ] ~doc:"prefetch distance in bytes (-1 = default)")

(* The parameter point the compile/lint flags select, starting from
   FKO's defaults for this kernel on this machine. *)
let point_of_flags ~cfg compiled sv ur ae wnt pf_dist =
  let d = Ifko.default_params ~cfg compiled in
  {
    d with
    Ifko.Params.sv = sv && d.Ifko.Params.sv;
    unroll = (if ur > 0 then ur else d.Ifko.Params.unroll);
    ae;
    wnt;
    prefetch =
      (if pf_dist < 0 then d.Ifko.Params.prefetch
       else
         List.map
           (fun (a, (s : Ifko.Params.pf_param)) -> (a, { s with Ifko.Params.pf_dist }))
           d.Ifko.Params.prefetch);
  }

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file machine sv ur ae wnt pf_dist =
    let cfg = machine_of machine in
    let compiled = load file in
    let params = point_of_flags ~cfg compiled sv ur ae wnt pf_dist in
    let func = Ifko.compile_point ~cfg compiled params in
    Printf.printf "; machine %s, parameters %s\n%s" cfg.Ifko.Config.name
      (Ifko.Params.to_string params) (Cfg.to_string func)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"run FKO once at a parameter point and print the assembly")
    Term.(const run $ file $ machine_arg $ sv_arg $ ur_arg $ ae_arg $ wnt_arg $ pf_arg)

(* ---- lint ---- *)

let lint_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let no_pipeline =
    Arg.(value & flag & info [ "no-pipeline" ] ~doc:"lint only the lowered kernel; skip per-pass validation")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"also print info-severity diagnostics")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "machine-readable output: one JSON array of diagnostic objects (severity, \
             code, pass, block, instr, message).  Exit 0 when clean, 1 when any \
             warning- or error-severity diagnostic was found, 2 on an internal \
             failure (a pass broke the kernel, unreadable input)")
  in
  let run file machine sv ur ae wnt pf_dist no_pipeline verbose json =
    (* --json contract: diagnostics are data, failures of the tool
       itself are exit 2 — scripts can tell "kernel has findings" from
       "lint could not run". *)
    let internal_error msg =
      if json then print_endline "[]";
      Printf.eprintf "lint: %s\n" msg;
      exit 2
    in
    match
      let cfg = machine_of machine in
      let compiled = load file in
      (cfg, compiled)
    with
    | exception e -> internal_error (Printexc.to_string e)
    | cfg, compiled -> (
      let line_bytes = cfg.Ifko.Config.prefetchable_line in
      let shown diags =
        if verbose || json then diags
        else
          List.filter (fun (d : Ifko.Diag.t) -> d.Ifko.Diag.severity <> Ifko.Diag.Info) diags
      in
      let print_diags diags =
        if not json then
          match shown diags with
          | [] -> ()
          | ds -> print_endline (Ifko.Diag.list_to_string ds)
      in
      (* Stage 1: the lowered kernel itself. *)
      let lowered = Ifko.Lint.check ~pass:"lowering" ~line_bytes compiled in
      print_diags lowered;
      (* Stage 2: the full pipeline at the selected parameter point, with
         lint + translation validation after every pass. *)
      let pipeline =
        if no_pipeline then Ok []
        else begin
          let params = point_of_flags ~cfg compiled sv ur ae wnt pf_dist in
          let check = Ifko.Passcheck.generic ~line_bytes compiled in
          let skips = ref [] in
          match
            Ifko.Pipeline.apply ~check ~on_skip:(fun d -> skips := d :: !skips)
              ~line_bytes compiled params
          with
          | exception Ifko.Passcheck.Pass_failed { pass; failure } ->
            Error
              (Printf.sprintf "pass %s broke the kernel: %s" pass
                 (Ifko.Passcheck.failure_to_string failure))
          | c ->
            let final = Ifko.Lint.check ~pass:"pipeline" ~line_bytes c in
            print_diags (List.rev !skips @ final);
            if not json then
              Printf.printf "%s: every pass validated at point %s\n"
                compiled.Ifko.Lower.source.Ifko.Hil.Ast.k_name
                (Ifko.Params.to_string params);
            Ok (List.rev !skips @ final)
        end
      in
      match pipeline with
      | Error msg ->
        if json then print_endline (Ifko.Diag.list_to_json lowered);
        internal_error msg
      | Ok final ->
        let all = lowered @ final in
        if json then print_endline (Ifko.Diag.list_to_json all);
        let findings =
          List.exists (fun (d : Ifko.Diag.t) -> d.Ifko.Diag.severity <> Ifko.Diag.Info) all
        in
        if json then exit (if findings then 1 else 0)
        else begin
          let errors = not (Ifko.Diag.is_clean all) in
          Printf.printf "lint: %s\n" (if errors then "errors found" else "clean");
          if errors then exit 1
        end)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "run the static-analysis suite on a HIL kernel, then validate every \
          transformation pass (lint + translation validation) at a parameter point")
    Term.(
      const run $ file $ machine_arg $ sv_arg $ ur_arg $ ae_arg $ wnt_arg $ pf_arg
      $ no_pipeline $ verbose $ json)

(* ---- tune ---- *)

let tune_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let context =
    Arg.(value & opt string "oc" & info [ "c"; "context" ] ~docv:"CTX" ~doc:"oc or l2")
  in
  let n = Arg.(value & opt int 80000 & info [ "n" ] ~doc:"problem size to tune for") in
  let flops =
    Arg.(value & opt float 2.0 & info [ "flops-per-n" ] ~doc:"FLOPs per element for MFLOPS")
  in
  let asm = Arg.(value & flag & info [ "S"; "asm" ] ~doc:"print the tuned assembly") in
  let check =
    Arg.(
      value & flag
      & info [ "check-each-pass" ]
          ~doc:
            "validate every transformation pass of every probed point (lint + \
             translation validation); the tune aborts naming the offending pass")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"PATH"
          ~doc:
            "persistent tuning store (JSON-lines journal): probe outcomes are \
             journaled as they are computed and repeat probes — including those of a \
             previously killed tune — are answered from it")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "evaluate probe batches on $(docv) worker domains; results are \
             bit-identical to --jobs 1")
  in
  let seed_arg =
    Arg.(
      value & opt int 20050614
      & info [ "seed" ] ~docv:"SEED" ~doc:"workload seed (part of the store key)")
  in
  let fidelity_arg =
    Arg.(
      value & opt string "full"
      & info [ "fidelity" ] ~docv:"FID"
          ~doc:
            "timing fidelity for every probe: $(b,full) (the bit-identical reference) \
             or $(b,sampled) (page-window steady-state extrapolation; the default \
             point is first timed both ways and the tune silently reverts to full \
             fidelity when the sampled estimate misses the 1% error budget)")
  in
  let strategy_arg =
    Arg.(
      value & opt string "linesearch"
      & info [ "strategy" ] ~docv:"STRAT"
          ~doc:
            "search strategy: $(b,linesearch) (the paper's modified line search, the \
             default) or $(b,surrogate) (model-based search reaching comparable \
             MFLOPS in far fewer probes)")
  in
  let warm_arg =
    Arg.(
      value & flag
      & info [ "warm-start" ]
          ~doc:
            "seed the search with the winning points of the nearest past tunes found \
             in --store's journal (no store or no usable donors: clean cold start)")
  in
  let run file machine context n flops_per_n asm check_each_pass store_path jobs seed
      fidelity strategy warm_start =
    let cfg = machine_of machine in
    let context = context_of context in
    let fidelity = fidelity_of fidelity in
    let strategy =
      match Ifko.Driver.strategy_of_string strategy with
      | Ok s -> s
      | Error msg -> failwith msg
    in
    let compiled = load file in
    let spec = generic_spec ~seed compiled in
    let store = Option.map (Ifko.Store.open_ ~seed) store_path in
    let tuned =
      Ifko.tune ~check_each_pass ~strategy ~warm_start ?store ~jobs ~seed ~fidelity ~cfg
        ~context ~spec ~n ~flops_per_n ~test:(generic_test compiled spec) compiled
    in
    (match store with
    | Some st ->
      Printf.printf "store %s: %d probes answered from the journal, %d computed\n"
        (Ifko.Store.path st) (Ifko.Store.hits st) (Ifko.Store.misses st);
      Ifko.Store.close st
    | None -> ());
    print_string (Ifko.Report.to_string tuned.Ifko.Driver.report);
    Printf.printf "\nFKO default point : %8.1f MFLOPS  (%s)\n"
      tuned.Ifko.Driver.fko_mflops
      (Ifko.Params.to_string tuned.Ifko.Driver.default_params);
    Printf.printf "ifko tuned point  : %8.1f MFLOPS  (%s)\n" tuned.Ifko.Driver.ifko_mflops
      (Ifko.Params.to_string tuned.Ifko.Driver.best_params);
    Printf.printf "speedup %.2fx over FKO in %d evaluations (best found at probe %d)\n"
      (tuned.Ifko.Driver.ifko_mflops /. Float.max 1e-9 tuned.Ifko.Driver.fko_mflops)
      tuned.Ifko.Driver.evaluations tuned.Ifko.Driver.probes_to_best;
    (match (fidelity, tuned.Ifko.Driver.fidelity_used, tuned.Ifko.Driver.calibration_error)
     with
    | Ifko.Timer.Full, _, _ -> ()
    | _, Ifko.Timer.Sampled, Some err ->
      Printf.printf "fidelity: sampled (calibration error %.3f%% of full)\n" (err *. 100.0)
    | _, Ifko.Timer.Full, Some err ->
      Printf.printf "fidelity: full (sampled missed the error budget: %.3f%%)\n"
        (err *. 100.0)
    | _, Ifko.Timer.Full, None ->
      print_endline "fidelity: full (sampled fell back during calibration)"
    | _, Ifko.Timer.Sampled, None -> ());
    List.iter
      (fun (dim, ratio) ->
        if ratio > 1.0001 then Printf.printf "  %-7s %+.1f%%\n" dim ((ratio -. 1.0) *. 100.0))
      tuned.Ifko.Driver.contributions;
    if asm then print_string (Cfg.to_string tuned.Ifko.Driver.best_func)
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"iteratively and empirically tune a HIL kernel")
    Term.(
      const run $ file $ machine_arg $ context $ n $ flops $ asm $ check $ store_arg
      $ jobs_arg $ seed_arg $ fidelity_arg $ strategy_arg $ warm_arg)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"deterministic fuzz seed")
  in
  let count_arg =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"number of kernels to generate")
  in
  let max_size_arg =
    Arg.(
      value & opt int 5
      & info [ "max-size" ] ~docv:"K" ~doc:"maximum idioms per generated loop body")
  in
  let points_arg =
    Arg.(
      value & opt int 3
      & info [ "points-per-kernel" ] ~docv:"P" ~doc:"parameter points probed per kernel")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"write shrunk reproducers into $(docv) (content-addressed file names)")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check-each-pass" ]
          ~doc:
            "additionally validate every pipeline pass of every probed point (lint + \
             translation validation) — slower, catches bugs even when the final \
             output happens to agree")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:
            "instead of fuzzing, re-run the reproducer file (or every *.repro in the \
             directory) $(docv) against the current pipeline")
  in
  let cross_check_arg =
    Arg.(
      value & flag
      & info [ "cross-check" ]
          ~doc:
            "tighten the oracle against the dependence analysis: kernels whose \
             references are proven independent must agree bit-exactly on array \
             contents (the reduction return keeps its ULP budget); a divergence \
             convicts a transform or the independence claim itself")
  in
  let check_fidelity_arg =
    Arg.(
      value & flag
      & info [ "check-fidelity" ]
          ~doc:
            "with --replay: additionally time every reproducer kernel under sampled \
             fidelity and assert the escape-hatch contract — each kernel either \
             matches full fidelity within the 1% error budget or provably falls \
             back to full fidelity (bit-identical cycles, reason reported)")
  in
  (* The escape-hatch contract, checked per reproducer: sampled timing
     must either agree with full fidelity within [budget] or have
     fallen back to it (in which case the cycles are bit-identical by
     construction, which is re-asserted rather than assumed). *)
  let fidelity_contract ~cfg ~budget path =
    match
      let case = Ifko.Fuzz.Corpus.read path in
      let compiled =
        case.Ifko.Fuzz.Corpus.kernel |> Ifko.Hil.Typecheck.check |> Ifko.Lower.lower
      in
      let func =
        match Ifko.compile_point ~cfg compiled case.Ifko.Fuzz.Corpus.params with
        | func -> func
        | exception _ ->
          (* the recorded point no longer compiles (pipeline evolved);
             the default point still exercises the kernel's shape *)
          Ifko.compile_point ~cfg compiled (Ifko.default_params ~cfg compiled)
      in
      let spec = generic_spec ~seed:0 compiled in
      let cf = Ifko_sim.Exec.compile func in
      let context = Ifko_sim.Timer.Out_of_cache and n = 80000 in
      let full = Ifko_sim.Timer.measure_ext ~cfg ~context ~spec ~n cf in
      let s =
        Ifko_sim.Timer.measure_ext ~fidelity:Ifko_sim.Timer.Sampled ~cfg ~context ~spec ~n
          cf
      in
      (full, s)
    with
    | exception e -> Error (Printf.sprintf "could not time: %s" (Printexc.to_string e))
    | full, s -> (
      match s.Ifko_sim.Timer.m_fallback with
      | Some reason ->
        if s.Ifko_sim.Timer.m_cycles = full.Ifko_sim.Timer.m_cycles then
          Ok (Printf.sprintf "fell back to full fidelity (%s)" reason)
        else Error (Printf.sprintf "fallback (%s) is not bit-identical to full" reason)
      | None ->
        let err =
          Float.abs (s.Ifko_sim.Timer.m_cycles -. full.Ifko_sim.Timer.m_cycles)
          /. Float.max 1e-9 full.Ifko_sim.Timer.m_cycles
        in
        if err <= budget then Ok (Printf.sprintf "%.3f%% error" (err *. 100.0))
        else
          Error
            (Printf.sprintf "sampled error %.3f%% exceeds the %.1f%% budget"
               (err *. 100.0) (budget *. 100.0)))
  in
  let run machine seed count max_size points_per_kernel corpus check_each_pass cross_check
      replay check_fidelity =
    let cfg = machine_of machine in
    match replay with
    | Some path ->
      let results =
        if Sys.file_exists path && Sys.is_directory path then
          Ifko.Fuzz.replay_dir ~check_each_pass ~cfg path
        else [ (path, Ifko.Fuzz.replay ~check_each_pass ~cfg path) ]
      in
      let failed = ref 0 in
      List.iter
        (fun (p, r) ->
          match r with
          | Ok () -> Printf.printf "ok   %s\n" p
          | Error e ->
            incr failed;
            Printf.printf "FAIL %s: %s\n" p e)
        results;
      Printf.printf "replay: %d reproducers, %d failing\n" (List.length results) !failed;
      if check_fidelity then begin
        let budget = 0.01 in
        let fidelity_failed = ref 0 in
        List.iter
          (fun (p, _) ->
            match fidelity_contract ~cfg ~budget p with
            | Ok detail -> Printf.printf "fidelity ok   %s (%s)\n" p detail
            | Error e ->
              incr fidelity_failed;
              Printf.printf "fidelity FAIL %s: %s\n" p e)
          results;
        Printf.printf "fidelity: %d reproducers, %d violating the escape-hatch contract\n"
          (List.length results) !fidelity_failed;
        failed := !failed + !fidelity_failed
      end;
      if !failed > 0 then exit 1
    | None ->
      if check_fidelity then failwith "--check-fidelity requires --replay";
      let stats =
        Ifko.Fuzz.run ~points_per_kernel ~max_size ~check_each_pass ~cross_check ?corpus
          ~log:print_endline ~cfg ~seed ~count ()
      in
      print_endline (Ifko.Fuzz.stats_to_string stats);
      if stats.Ifko.Fuzz.bugs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "differentially fuzz the transformation pipeline: generate random well-typed \
          kernels, probe random parameter points, compare simulated results against \
          the untransformed lowering, shrink and persist any divergence")
    Term.(
      const run $ machine_arg $ seed_arg $ count_arg $ max_size_arg $ points_arg
      $ corpus_arg $ check $ cross_check_arg $ replay_arg $ check_fidelity_arg)

(* ---- sim ---- *)

let sim_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let context =
    Arg.(value & opt string "oc" & info [ "c"; "context" ] ~docv:"CTX" ~doc:"oc or l2")
  in
  let n = Arg.(value & opt int 8192 & info [ "n" ] ~doc:"problem size to simulate") in
  let untimed =
    Arg.(value & flag & info [ "untimed" ] ~doc:"architectural semantics only, no timing model")
  in
  let engine =
    Arg.(
      value & opt string "both"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "threaded, walker, or both (run the pre-decoded engine and the reference \
             tree-walker and check they agree bit-for-bit)")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "report fast-path coverage, superblock fusion, per-component \
             cycle-attribution counters, and setup-vs-simulate wall-time \
             attribution (arena/env/restore/exec) for a timed run")
  in
  let seed_arg =
    Arg.(value & opt int 20050614 & info [ "seed" ] ~docv:"SEED" ~doc:"workload seed")
  in
  let compare_fidelity =
    Arg.(
      value & flag
      & info [ "compare-fidelity" ]
          ~doc:
            "time the kernel under both full and sampled fidelity and report cycles, \
             relative error and the simulated-work ratio; exit 1 when the sampled \
             estimate neither meets the error budget nor falls back to full fidelity")
  in
  let budget_arg =
    Arg.(
      value & opt float 0.01
      & info [ "error-budget" ] ~docv:"FRAC"
          ~doc:"relative cycle-error budget for --compare-fidelity (default 0.01)")
  in
  let run file machine sv ur ae wnt pf_dist context n untimed engine profile seed
      compare_fidelity budget =
    let cfg = machine_of machine in
    let context = context_of context in
    let compiled = load file in
    let params = point_of_flags ~cfg compiled sv ur ae wnt pf_dist in
    let func = Ifko.compile_point ~cfg compiled params in
    let cf = Ifko_sim.Exec.compile func in
    let spec = generic_spec ~seed compiled in
    (* Mirrors Timer.run_once, but keeps the memory system around so the
       profile counters can be reported afterwards. *)
    let run_engine exec_fn =
      let env = spec.Ifko_sim.Timer.make_env n in
      if untimed then (exec_fn ?timing:None env, None)
      else begin
        let ms = Ifko_machine.Memsys.create cfg in
        (match context with
        | Ifko_sim.Timer.Out_of_cache -> Ifko_machine.Memsys.reset ms ~flush:true
        | Ifko_sim.Timer.In_l2 ->
          Ifko_machine.Memsys.reset ms ~flush:true;
          Ifko_sim.Env.iter_array_lines env ~line:cfg.Ifko.Config.l2.Ifko.Config.line
            (fun addr -> Ifko_machine.Memsys.warm_l2 ms ~addr));
        (exec_fn ?timing:(Some (cfg, ms)) env, Some ms)
      end
    in
    let threaded ?timing env =
      Ifko_sim.Exec.exec ?timing ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize cf env
    in
    let walker ?timing env =
      Ifko_sim.Exec.run_reference ?timing ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize func env
    in
    let show name (r : Ifko_sim.Exec.result) =
      Printf.printf "  %-8s %d instrs, %d uops%s%s\n" name r.Ifko_sim.Exec.instr_count
        r.Ifko_sim.Exec.uop_count
        (if untimed then "" else Printf.sprintf ", %.1f cycles" r.Ifko_sim.Exec.cycles)
        (match r.Ifko_sim.Exec.ret with
        | None -> ""
        | Some (Ifko_sim.Exec.Rint i) -> Printf.sprintf ", ret %d" i
        | Some (Ifko_sim.Exec.Rfp f) -> Printf.sprintf ", ret %.17g" f)
    in
    Printf.printf "%s: n=%d, %s, %s, %s\n"
      compiled.Ifko.Lower.source.Ifko.Hil.Ast.k_name n cfg.Ifko.Config.name
      (if untimed then "untimed" else Ifko_sim.Timer.context_name context)
      (Ifko.Params.to_string params);
    let result, ms =
      match engine with
      | "threaded" ->
        let r, ms = run_engine threaded in
        show "threaded" r;
        (r, ms)
      | "walker" ->
        let r, ms = run_engine walker in
        show "walker" r;
        (r, ms)
      | "both" ->
        let r, ms = run_engine threaded in
        let r_ref, _ = run_engine walker in
        show "threaded" r;
        if r = r_ref then print_endline "  walker   identical (bit-identity check passed)"
        else begin
          show "walker" r_ref;
          prerr_endline "engines disagree: threaded result differs from the reference walker";
          Stdlib.exit 1
        end;
        (r, ms)
      | other -> failwith (Printf.sprintf "unknown engine %S (threaded|walker|both)" other)
    in
    ignore (result : Ifko_sim.Exec.result);
    if profile then begin
      let blocks, fused = Ifko_sim.Exec.fusion cf in
      Printf.printf "  profile:\n";
      Printf.printf "    superblocks: %d fused bodies covering %d instrs\n" blocks fused;
      match ms with
      | None -> print_endline "    (memory-system counters require a timed run)"
      | Some ms ->
        let p = Ifko_machine.Memsys.profile ms in
        let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
        Printf.printf "    loads  %d (fast-path %.1f%%)  stores %d (fast-path %.1f%%)\n"
          p.Ifko_machine.Memsys.loads
          (pct p.Ifko_machine.Memsys.fast_loads p.Ifko_machine.Memsys.loads)
          p.Ifko_machine.Memsys.stores
          (pct p.Ifko_machine.Memsys.fast_stores p.Ifko_machine.Memsys.stores);
        Printf.printf "    L1 %d hits / %d misses   L2 %d hits / %d misses\n"
          p.Ifko_machine.Memsys.l1_hits p.Ifko_machine.Memsys.l1_misses
          p.Ifko_machine.Memsys.l2_hits p.Ifko_machine.Memsys.l2_misses;
        Printf.printf
          "    demand misses %d (%.1f cycles total latency)   bus cycles %.1f\n"
          p.Ifko_machine.Memsys.demand_misses p.Ifko_machine.Memsys.demand_cycles
          p.Ifko_machine.Memsys.bus_cycles;
        Printf.printf "    sw prefetch %d issued / %d dropped   hw prefetch %d issued\n"
          p.Ifko_machine.Memsys.sw_pf_issued p.Ifko_machine.Memsys.sw_pf_dropped
          p.Ifko_machine.Memsys.hw_pf_issued
    end;
    (* Setup-vs-simulate wall-time attribution rides the timer, so run
       one timer measurement under the profile instrument (the engines
       above execute directly and have no setup floor to attribute). *)
    if profile && not untimed then begin
      Ifko_sim.Timer.profile_reset ();
      Ifko_sim.Timer.profile_enable true;
      ignore (Ifko_sim.Timer.measure_ext ~cfg ~context ~spec ~n cf
              : Ifko_sim.Timer.measurement);
      Ifko_sim.Timer.profile_enable false;
      let a = Ifko_sim.Timer.profile () in
      let per s = 1e6 *. s /. float_of_int (max 1 a.Ifko_sim.Timer.at_measures) in
      Printf.printf
        "    wall-time attribution (%d measurement%s): arena %.1f us, env %.1f us, \
         restore %.1f us, exec %.1f us per measure\n"
        a.Ifko_sim.Timer.at_measures
        (if a.Ifko_sim.Timer.at_measures = 1 then "" else "s")
        (per a.Ifko_sim.Timer.at_arena_s) (per a.Ifko_sim.Timer.at_env_s)
        (per a.Ifko_sim.Timer.at_restore_s) (per a.Ifko_sim.Timer.at_exec_s)
    end;
    if compare_fidelity then begin
      if untimed then failwith "--compare-fidelity requires a timed run (drop --untimed)";
      let full = Ifko_sim.Timer.measure_ext ~cfg ~context ~spec ~n cf in
      let s =
        Ifko_sim.Timer.measure_ext ~fidelity:Ifko_sim.Timer.Sampled ~cfg ~context ~spec ~n
          cf
      in
      Printf.printf "  fidelity comparison (error budget %.2f%%):\n" (budget *. 100.0);
      Printf.printf "    full     %14.1f cycles  (%d elements simulated)\n"
        full.Ifko_sim.Timer.m_cycles full.Ifko_sim.Timer.m_elems;
      match s.Ifko_sim.Timer.m_fallback with
      | Some reason ->
        Printf.printf "    sampled  %14.1f cycles  (fell back to full fidelity: %s)\n"
          s.Ifko_sim.Timer.m_cycles reason;
        if s.Ifko_sim.Timer.m_cycles <> full.Ifko_sim.Timer.m_cycles then begin
          prerr_endline "the fallback is not bit-identical to full fidelity";
          Stdlib.exit 1
        end
      | None ->
        let err =
          Float.abs (s.Ifko_sim.Timer.m_cycles -. full.Ifko_sim.Timer.m_cycles)
          /. Float.max 1e-9 full.Ifko_sim.Timer.m_cycles
        in
        Printf.printf
          "    sampled  %14.1f cycles  (%d elements, %.3f%% error, %.1fx less simulated \
           work)\n"
          s.Ifko_sim.Timer.m_cycles s.Ifko_sim.Timer.m_elems (err *. 100.0)
          (float_of_int full.Ifko_sim.Timer.m_elems
          /. float_of_int (max 1 s.Ifko_sim.Timer.m_elems));
        if err > budget then begin
          Printf.eprintf "sampled error %.3f%% exceeds the %.2f%% budget\n" (err *. 100.0)
            (budget *. 100.0);
          Stdlib.exit 1
        end
    end
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "run a HIL kernel on the simulator at a parameter point; by default both \
          execution engines run and their results are checked bit-for-bit; --profile \
          reports fast-path coverage, superblock fusion and cycle attribution")
    Term.(
      const run $ file $ machine_arg $ sv_arg $ ur_arg $ ae_arg $ wnt_arg $ pf_arg
      $ context $ n $ untimed $ engine $ profile $ seed_arg $ compare_fidelity
      $ budget_arg)

(* ---- store ---- *)

let store_cmd =
  let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH") in
  (* `stat` and `compact` accept either a single journal file or a
     serve shard directory (store.meta + shard-NN.jsonl). *)
  let shard_dir p = Sys.file_exists p && Sys.is_directory p in
  let stat =
    let json =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:
              "machine-readable output: one JSON object with every field always \
               present ([Diag.to_json] conventions); shard directories add a \
               per_shard array of per-journal objects")
    in
    let run p json =
      if shard_dir p then
        match Ifko.Serve.Shard_store.stat_of_dir p with
        | None ->
          Printf.eprintf "%s: not a shard store (no valid store.meta)\n" p;
          Stdlib.exit 1
        | Some s ->
          if json then print_endline (Ifko.Serve.Shard_store.stat_json s)
          else begin
            Printf.printf "%s: %d shards, %d entries, %d bytes" s.Ifko.Serve.Shard_store.sh_dir
              (List.length s.Ifko.Serve.Shard_store.sh_shards)
              s.Ifko.Serve.Shard_store.sh_entries s.Ifko.Serve.Shard_store.sh_bytes;
            if s.Ifko.Serve.Shard_store.sh_corrupt > 0 then
              Printf.printf ", %d corrupt lines" s.Ifko.Serve.Shard_store.sh_corrupt;
            if s.Ifko.Serve.Shard_store.sh_torn > 0 then
              Printf.printf ", %d torn lines" s.Ifko.Serve.Shard_store.sh_torn;
            print_newline ();
            List.iter
              (fun st -> print_string (Ifko.Store.stat_to_string st))
              s.Ifko.Serve.Shard_store.sh_shards;
            List.iter
              (fun c ->
                Printf.printf "ckpt-%s: %d warm-state snapshots, %d transients\n"
                  c.Ifko.Serve.Shard_store.ck_machine
                  c.Ifko.Serve.Shard_store.ck_snapshots
                  c.Ifko.Serve.Shard_store.ck_transients)
              s.Ifko.Serve.Shard_store.sh_ckpts
          end
      else if not (Sys.file_exists p) then begin
        Printf.eprintf "%s: no store\n" p;
        Stdlib.exit 1
      end
      else if json then begin
        let st = Ifko.Store.open_ p in
        let s = Ifko.Store.stat st in
        Ifko.Store.close st;
        print_endline (Ifko.Store.stat_json s)
      end
      else print_string (Ifko.Store.stat_string p)
    in
    Cmd.v
      (Cmd.info "stat" ~doc:"summarize a tuning-store journal or shard directory")
      Term.(const run $ path_arg $ json)
  in
  let compact =
    Cmd.v
      (Cmd.info "compact"
         ~doc:"rewrite the journal(s) with one record per key (atomic rename)")
      Term.(
        const (fun p ->
            if shard_dir p then begin
              let st = Ifko.Serve.Shard_store.open_ p in
              Ifko.Serve.Shard_store.compact st;
              let s = Ifko.Serve.Shard_store.stat st in
              Ifko.Serve.Shard_store.close st;
              print_endline (Ifko.Serve.Shard_store.stat_json s)
            end
            else if not (Sys.file_exists p) then begin
              Printf.eprintf "%s: no store\n" p;
              Stdlib.exit 1
            end
            else begin
              let st = Ifko.Store.open_ p in
              Ifko.Store.compact st;
              Ifko.Store.close st;
              print_string (Ifko.Store.stat_string p)
            end)
        $ path_arg)
  in
  let clear =
    Cmd.v
      (Cmd.info "clear" ~doc:"delete the journal")
      Term.(const Ifko.Store.clear $ path_arg)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"maintain a persistent tuning store")
    [ stat; compact; clear ]

(* ---- serve / query ---- *)

let listen_args =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")
  in
  let port =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc:"TCP port")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with --port)")
  in
  let listen socket port host =
    match (socket, port) with
    | Some path, None -> `Unix path
    | None, Some port -> `Tcp (host, port)
    | Some _, Some _ -> failwith "--socket and --port are mutually exclusive"
    | None, None -> failwith "one of --socket PATH or --port PORT is required"
  in
  Term.(const listen $ socket $ port $ host)

let serve_cmd =
  let store_dir =
    Arg.(
      value & opt string "ifko-store"
      & info [ "store-dir" ] ~docv:"DIR"
          ~doc:"shard-store directory (created on first run)")
  in
  let shards =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "journal shards when creating the store (an existing store keeps its \
             geometry)")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "shared worker-domain pool: every in-flight tune's probe batches run on \
             these $(docv) domains; replies stay bit-identical to --jobs 1")
  in
  let replica =
    Arg.(
      value & flag
      & info [ "replica" ]
          ~doc:
            "share the store directory with other daemons: appends stay safe \
             (single-line O_APPEND writes) and lookup misses re-read the journal \
             tail before being conceded")
  in
  let max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-store-bytes" ] ~docv:"BYTES"
          ~doc:"evict oldest entries when the store exceeds $(docv)")
  in
  let max_age =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-store-age" ] ~docv:"SECONDS"
          ~doc:"evict entries not re-journaled within $(docv) seconds")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"no event log on stderr") in
  let run listen store_dir shards jobs replica max_bytes max_age quiet =
    let log =
      if quiet then ignore else fun line -> Printf.eprintf "ifko serve: %s\n%!" line
    in
    Ifko.Serve.Server.run
      { Ifko.Serve.Server.listen; store_dir; shards; jobs; replica; max_bytes;
        max_age; log }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "run the tuning daemon: newline-delimited JSON over a Unix or TCP socket \
          (tune, lookup, stat, compact, shutdown), concurrent clients multiplexed \
          onto one sharded probe store and one domain pool")
    Term.(
      const run $ listen_args $ store_dir $ shards $ jobs $ replica $ max_bytes
      $ max_age $ quiet)

let query_cmd =
  let fail msg =
    Printf.eprintf "ifko query: %s\n" msg;
    Stdlib.exit 1
  in
  let tune_args_term =
    let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
    let context =
      Arg.(value & opt string "oc" & info [ "c"; "context" ] ~docv:"CTX" ~doc:"oc or l2")
    in
    let n = Arg.(value & opt int 80000 & info [ "n" ] ~doc:"problem size") in
    let flops =
      Arg.(
        value & opt float 2.0 & info [ "flops-per-n" ] ~doc:"FLOPs per element for MFLOPS")
    in
    let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"workload seed") in
    let check =
      Arg.(value & flag & info [ "check-each-pass" ] ~doc:"per-pass validation of every probe")
    in
    let strategy =
      Arg.(
        value & opt string "linesearch"
        & info [ "strategy" ] ~docv:"STRAT" ~doc:"linesearch (default) or surrogate")
    in
    let warm =
      Arg.(
        value & flag
        & info [ "warm-start" ]
            ~doc:"seed the search from the daemon's past tunes of similar kernels")
    in
    let build file machine context n flops_per_n seed check strategy warm_start =
      { Ifko.Serve.Proto.kernel = read_file file; machine; context; n; seed;
        flops_per_n; check; strategy; warm_start }
    in
    Term.(
      const build $ file $ machine_arg $ context $ n $ flops $ seed $ check $ strategy
      $ warm)
  in
  let print_reply verb (r : Ifko.Serve.Proto.tune_reply) =
    Printf.printf "%s: %8.1f MFLOPS (fko %.1f, %d evaluations, %s)\nbest: %s\n" verb
      r.Ifko.Serve.Proto.mflops r.Ifko.Serve.Proto.fko_mflops
      r.Ifko.Serve.Proto.evaluations
      (if r.Ifko.Serve.Proto.hit then "cache hit" else "computed")
      r.Ifko.Serve.Proto.best
  in
  let tune =
    let run listen args =
      Ifko.Serve.Client.with_client listen (fun c ->
          match Ifko.Serve.Client.tune c args with
          | Ok r -> print_reply "tune" r
          | Error msg -> fail msg)
    in
    Cmd.v
      (Cmd.info "tune" ~doc:"tune a HIL kernel on the daemon")
      Term.(const run $ listen_args $ tune_args_term)
  in
  let lookup =
    let run listen args =
      Ifko.Serve.Client.with_client listen (fun c ->
          match Ifko.Serve.Client.lookup c args with
          | Ok (Some r) -> print_reply "lookup" r
          | Ok None ->
            print_endline "miss";
            Stdlib.exit 1
          | Error msg -> fail msg)
    in
    Cmd.v
      (Cmd.info "lookup"
         ~doc:"query the daemon's result cache (never computes; exit 1 on a miss)")
      Term.(const run $ listen_args $ tune_args_term)
  in
  let stat =
    let run listen =
      Ifko.Serve.Client.with_client listen (fun c ->
          match Ifko.Serve.Client.stat c with
          | Ok fields -> print_endline (Ifko.Serve.Proto.Json.render fields)
          | Error msg -> fail msg)
    in
    Cmd.v (Cmd.info "stat" ~doc:"print the daemon's statistics as JSON")
      Term.(const run $ listen_args)
  in
  let simple name doc op =
    let run listen =
      Ifko.Serve.Client.with_client listen (fun c ->
          match op c with Ok () -> print_endline "ok" | Error msg -> fail msg)
    in
    Cmd.v (Cmd.info name ~doc) Term.(const run $ listen_args)
  in
  Cmd.group
    (Cmd.info "query" ~doc:"talk to a running ifko serve daemon")
    [ tune; lookup; stat;
      simple "compact" "evict per the daemon's bounds and compact every shard"
        Ifko.Serve.Client.compact;
      simple "shutdown" "stop the daemon gracefully" Ifko.Serve.Client.shutdown;
    ]

let () =
  let doc = "iterative floating point kernel optimizer (paper reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ifko" ~doc)
          [ analyze_cmd; compile_cmd; lint_cmd; tune_cmd; fuzz_cmd; sim_cmd; store_cmd;
            serve_cmd; query_cmd ]))
