lib/util/table.mli:
