(** Set-associative cache with true-LRU replacement and write-back /
    write-allocate policy.

    Lookups never allocate: the surrounding {!Memsys} decides when a
    line is actually installed (demand fills arrive only after the
    memory latency has elapsed, so installation is explicit), and what
    each event costs. *)

type t

val validate : Config.cache_level -> unit
(** Raises [Invalid_argument] unless the geometry is well-formed: line
    size a power of two, associativity at least one, and a
    power-of-two number of sets (size divisible by [line * assoc]).
    Every shift/mask in this module relies on these invariants, so
    ill-formed geometries are rejected up front instead of silently
    mis-indexing. *)

val create : Config.cache_level -> t
(** Validates the geometry (see {!validate}), then builds the cache. *)

val line_bytes : t -> int

val line_base : t -> int -> int
(** [line_base t addr] is the base address of the line containing
    [addr] (a shift/mask when the line size is a power of two). *)

val access : t -> addr:int -> write:bool -> bool
(** [access t ~addr ~write] is [true] on a hit (updating LRU and the
    dirty bit).  On a miss nothing changes except the statistics. *)

val hit_mru : t -> int -> write:bool -> bool
(** [hit_mru t addr ~write] checks only the set's most-recently-used
    way.  On a match it performs exactly the state updates [access]
    performs on a hit (hit counter, dirty bit, LRU) and returns
    [true]; otherwise it returns [false] having changed {e nothing} —
    the caller must fall back to the general path.  One compare on the
    common steady-state hit; never observably different from calling
    [access]. *)

val probe : t -> addr:int -> bool
(** Non-destructive presence test (no LRU update, no statistics). *)

val insert : t -> addr:int -> write:bool -> int option
(** Install the line containing [addr] (marking it dirty when [write]).
    Returns the byte address of a dirty line that had to be evicted, if
    any.  Installing a present line just updates LRU/dirty. *)

val insert_new : t -> addr:int -> write:bool -> int option
(** [insert] for a line the caller has proven absent: skips the
    present-line probe.  Observably identical to [insert] whenever the
    line is indeed not cached. *)

val invalidate : t -> addr:int -> bool
(** Drop the line if present; returns whether it was dirty. *)

val flush : t -> unit
(** Empty the cache (the timers' out-of-cache context).  Also clears
    the MRU way filter. *)

val clear_mru : t -> unit
(** Reset the per-set MRU way hints (keeping contents).  Part of
    {!Memsys.reset}'s contract even when the caches are not flushed:
    acceleration state never survives a reset. *)

val dirty_lines : t -> int
(** Number of valid dirty lines currently held. *)

type snapshot
(** A copy of the cache's full observable state (contents, LRU stamps,
    clock, touched-way log, statistics), tagged with its geometry.
    When the touched-way log shows only a small fraction of the cache
    is valid, the snapshot stores just those ways, making capture and
    restore O(touched) instead of O(ways) — the representations are
    observably indistinguishable. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Put the captured state back (the target may hold arbitrary prior
    contents of the same geometry).  Restoring is observably identical
    to replaying whatever access sequence produced the snapshot.
    @raise Invalid_argument when the snapshot was taken from a cache of
    different geometry (line size, set count or associativity). *)

val stats : t -> int * int
(** [(hits, misses)] accumulated by {!access}. *)

val reset_stats : t -> unit
