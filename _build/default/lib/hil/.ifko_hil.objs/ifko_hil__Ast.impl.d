lib/hil/ast.ml:
