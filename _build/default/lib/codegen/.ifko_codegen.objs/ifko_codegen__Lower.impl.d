lib/codegen/lower.ml: Ast Block Cfg Hashtbl Ifko_hil Instr List Loopnest Option Printf Reg Typecheck
