type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = int64 g }

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* mask to 62 bits so the value is a non-negative OCaml int *)
  let v = Int64.to_int (Int64.logand (int64 g) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let uniform g =
  (* 53 high-quality bits into the mantissa. *)
  let bits = Int64.shift_right_logical (int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float g x = uniform g *. x

let sign_float g x =
  let v = float g x in
  if int g 2 = 0 then v else -.v
