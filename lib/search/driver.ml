open Ifko_machine

type tuned = {
  report : Ifko_analysis.Report.t;
  default_params : Ifko_transform.Params.t;
  best_params : Ifko_transform.Params.t;
  fko_mflops : float;
  ifko_mflops : float;
  best_func : Cfg.func;
  contributions : (string * float) list;
  evaluations : int;
  probes_to_best : int;
  fidelity_used : Ifko_sim.Timer.fidelity;
  calibration_error : float option;
}

type strategy = Linesearch | Surrogate

let strategy_to_string = function Linesearch -> "linesearch" | Surrogate -> "surrogate"

let strategy_of_string = function
  | "linesearch" -> Ok Linesearch
  | "surrogate" -> Ok Surrogate
  | s -> Error (Printf.sprintf "unknown strategy %S (expected linesearch or surrogate)" s)

let compile_point ?check ~cfg compiled params =
  let c =
    Ifko_transform.Pipeline.apply ?check ~line_bytes:cfg.Config.prefetchable_line compiled
      params
  in
  c.Ifko_codegen.Lower.func

(* Small deterministic workloads for per-pass translation validation:
   a remainder-heavy size and one spanning several unrolled bodies. *)
let check_sizes = [ 5; 34 ]

(* Everything a probe outcome depends on, rendered for content
   addressing: the untransformed lowered LIL plus the array metadata
   the transformations and the prefetch search consume.  Editing the
   kernel source changes this, so stale store entries simply miss. *)
let kernel_fingerprint (compiled : Ifko_codegen.Lower.compiled) =
  let arrays =
    String.concat ";"
      (List.map
         (fun (a : Ifko_codegen.Lower.array_param) ->
           Printf.sprintf "%s:%s%s%s" a.Ifko_codegen.Lower.a_name
             (match a.Ifko_codegen.Lower.a_elem with Instr.S -> "s" | Instr.D -> "d")
             (if a.Ifko_codegen.Lower.a_output then ":out" else "")
             ((if a.Ifko_codegen.Lower.a_noprefetch then ":nopf" else "")
             ^ if a.Ifko_codegen.Lower.a_mayalias then ":alias" else ""))
         compiled.Ifko_codegen.Lower.arrays)
  in
  Printf.sprintf "%s\n%s\n%s"
    compiled.Ifko_codegen.Lower.source.Ifko_hil.Ast.k_name arrays
    (Cfg.to_string compiled.Ifko_codegen.Lower.func)

let score = function
  | Ifko_store.Store.Timed { mflops; _ } -> mflops
  | Ifko_store.Store.Test_failed | Ifko_store.Store.Illegal -> neg_infinity

let tune ?(extensions = false) ?(check_each_pass = false) ?(strategy = Linesearch)
    ?(warm_start = false) ?donors ?store ?cache ?pool ?(jobs = 1) ?(seed = 0)
    ?(fidelity = Ifko_sim.Timer.Full) ?(error_budget = 0.01) ?ckpt ?codecache ~cfg
    ~context ~spec ~n ~flops_per_n ~test compiled =
  let report = Ifko_analysis.Report.analyze compiled in
  let default_params =
    Ifko_transform.Params.default ~line_bytes:cfg.Config.prefetchable_line report
  in
  let check =
    if not check_each_pass then None
    else
      Some
        (Ifko_transform.Passcheck.of_envs ~line_bytes:cfg.Config.prefetchable_line
           ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize
           (List.map (fun n () -> spec.Ifko_sim.Timer.make_env n) check_sizes))
  in
  let kernel = kernel_fingerprint compiled in
  let prov =
    Printf.sprintf "%s@%s/%s/n=%d"
      compiled.Ifko_codegen.Lower.source.Ifko_hil.Ast.k_name cfg.Config.name
      (Ifko_sim.Timer.context_name context) n
  in
  (* One warm-state checkpoint cache per tune unless the caller shares
     a longer-lived one: every probe point of this tune re-derives the
     same post-warm-up memory state, so the in-L2 warm loop runs once
     and every later probe restores the snapshot.  The checkpoint tag
     carries the workload seed on top of the kernel fingerprint: warm
     states (and the environment masters cached with them) embed the
     seeded workload data, so a shared or persisted cache must never
     serve one seed's state to another. *)
  let ckpt = match ckpt with Some c -> c | None -> Ifko_sim.Ckpt.create ~cfg () in
  let tckpt = (ckpt, Printf.sprintf "%s|seed=%d" kernel seed) in
  (* Compiled candidates are produced (and their semantic test run)
     exactly once per (kernel, machine, params, check, seed) through
     the single-flight codecache: the calibration point is not
     recompiled by the first probe, the winner is not recompiled —
     unchecked — at the end, and callers that pass a longer-lived
     cache (multi-size sweeps, fidelity comparisons, the serve daemon)
     share candidates across whole tunes. *)
  let codecache = match codecache with Some c -> c | None -> Codecache.create () in
  let candidate params =
    Codecache.find_or_compile codecache
      ~key:
        (Codecache.key ~kernel ~machine:cfg.Config.name
           ~params:(Ifko_transform.Params.canonical params) ~check:check_each_pass ~seed)
      (fun () ->
        match compile_point ?check ~cfg compiled params with
        | exception (Ifko_transform.Passcheck.Pass_failed _ as broken) ->
          raise broken (* fail fast: a transform miscompiled this point *)
        | exception _ -> Codecache.Illegal (* an illegal point is just skipped *)
        | func ->
          if not (test func) then Codecache.Test_failed
          else Codecache.Compiled (func, Ifko_sim.Exec.compile func))
  in
  (* Per-kernel error-budget calibration: before a sampled tune starts,
     the default point is timed both ways.  If the sampled estimate
     misses full fidelity by more than [error_budget] (relative), or
     the sampled path already fell back on its own confidence checks,
     the whole tune runs at full fidelity — the tune-level half of the
     bit-identity escape hatch.  (Probes are ranked by these timings,
     so a kernel the linear model cannot capture must not be searched
     with it.) *)
  let fidelity_used, calibration_error =
    match fidelity with
    | Ifko_sim.Timer.Full -> (Ifko_sim.Timer.Full, None)
    | Ifko_sim.Timer.Sampled -> (
      match candidate default_params with
      | Codecache.Illegal | Codecache.Test_failed -> (Ifko_sim.Timer.Full, None)
      | Codecache.Compiled (_, cf) -> (
        let full = Ifko_sim.Timer.measure_compiled ~ckpt:tckpt ~cfg ~context ~spec ~n cf in
        let s =
          Ifko_sim.Timer.measure_ext ~fidelity:Ifko_sim.Timer.Sampled ~ckpt:tckpt ~cfg
            ~context ~spec ~n cf
        in
        match s.Ifko_sim.Timer.m_fallback with
        | Some _ -> (Ifko_sim.Timer.Full, None)
        | None ->
          let err =
            Float.abs (s.Ifko_sim.Timer.m_cycles -. full) /. Float.max 1e-9 full
          in
          ((if err <= error_budget then Ifko_sim.Timer.Sampled else Ifko_sim.Timer.Full),
           Some err)))
  in
  let compute params =
    match candidate params with
    | Codecache.Illegal -> Ifko_store.Store.Illegal
    | Codecache.Test_failed -> Ifko_store.Store.Test_failed
    | Codecache.Compiled (_, cf) ->
      (* decoded once per candidate (and shared through the codecache);
         the timer reuses the threaded code across extrapolation
         samples and reps *)
      let cycles =
        Ifko_sim.Timer.measure_compiled ~fidelity:fidelity_used ~ckpt:tckpt ~cfg ~context
          ~spec ~n cf
      in
      Ifko_store.Store.Timed
        { cycles; mflops = Ifko_sim.Timer.mflops ~cfg ~flops_per_n ~n ~cycles }
  in
  (* [cache] generalizes the plain store: the serve daemon passes the
     sharded store's single-flight memoizer here, so concurrent tunes
     of the same kernel share in-flight probe computations. *)
  let cached =
    match cache with
    | Some c -> c
    | None ->
      fun ~key ~params ~prov f -> Ifko_store.Store.cached ?store ~key ~params ~prov f
  in
  let probe params =
    let key =
      Ifko_store.Store.probe_key ~kernel ~machine:cfg.Config.name
        ~context:(Ifko_sim.Timer.context_name context) ~n ~seed ~check:check_each_pass
        ?fidelity:
          (match fidelity_used with
          | Ifko_sim.Timer.Full -> None
          | Ifko_sim.Timer.Sampled -> Some "sampled")
        ~params:(Ifko_transform.Params.canonical params) ()
    in
    score
      (cached ~key ~params:(Ifko_transform.Params.to_string params) ~prov (fun () ->
           compute params))
  in
  (* Warm-start seeds: the nearest past tunes' winners, adapted into
     this kernel's space.  Donors come from the caller (the serve
     daemon scans its sharded store) or, by default, from the plain
     probe store's journal; no store, no donors — a clean cold start,
     not an error. *)
  let feat = Ifko_analysis.Report.features report in
  let warm =
    if not warm_start then []
    else
      let donors =
        match donors with
        | Some ds -> ds
        | None -> (
          match store with Some st -> Warmstart.donors_of_store st | None -> [])
      in
      Warmstart.seeds ~extensions ~cfg ~report ~init:default_params ~feat donors
  in
  let make ~init_perf =
    match strategy with
    | Linesearch ->
      Linesearch.strategy ~extensions ~warm ~cfg ~report ~init:default_params ~init_perf
        ()
    | Surrogate ->
      Surrogate.strategy ~extensions ~warm ~seed ~cfg ~report ~init:default_params
        ~init_perf ()
  in
  let search map_batch =
    match map_batch with
    | None -> Strategy.run ~init:default_params ~make probe
    | Some map_batch -> Strategy.run ~map_batch ~init:default_params ~make probe
  in
  let result =
    match pool with
    | Some pool -> search (Some (fun f xs -> Ifko_par.Par.Pool.map pool f xs))
    | None ->
      if jobs <= 1 then search None
      else
        Ifko_par.Par.Pool.with_pool ~jobs (fun pool ->
            search (Some (fun f xs -> Ifko_par.Par.Pool.map pool f xs)))
  in
  let best = result.Strategy.best in
  (* Journal the tune-level result (winner + analysis fingerprint) so
     later tunes of similar kernels can warm-start from it.  Guarded by
     find_entry/add, which leave the hit/miss counters alone: those
     count probe traffic only. *)
  (match store with
  | None -> ()
  | Some st ->
    let tkey =
      Ifko_store.Store.tune_key
        ?strategy:
          (match strategy with
          | Linesearch -> None
          | s -> Some (strategy_to_string s))
        ~kernel ~machine:cfg.Config.name
        ~context:(Ifko_sim.Timer.context_name context) ~n ~seed ~check:check_each_pass
        ~flops_per_n ()
    in
    if Ifko_store.Store.find_entry st ~key:tkey = None then begin
      let params_json =
        Ifko_store.Store.Json.render
          [ ("best", Ifko_store.Store.Json.S (Ifko_transform.Params.canonical best));
            ("fko", Ifko_store.Store.Json.N result.Strategy.start_perf);
            ( "evals",
              Ifko_store.Store.Json.N (float_of_int result.Strategy.evaluations) );
            ( "kernel",
              Ifko_store.Store.Json.S
                compiled.Ifko_codegen.Lower.source.Ifko_hil.Ast.k_name );
            ("feat", Warmstart.feat_json feat);
          ]
      in
      Ifko_store.Store.add st ~key:tkey ~params:params_json ~prov:("tune " ^ prov)
        (Ifko_store.Store.Timed
           { mflops = result.Strategy.best_perf; cycles = 0.0 })
    end);
  let best_func =
    (* cache hit when any probe of this run compiled the winner; a
       store-answered run compiles it here once, under the same
       per-pass checking regime *)
    match candidate best with
    | Codecache.Compiled (func, _) -> func
    | Codecache.Illegal | Codecache.Test_failed -> compile_point ?check ~cfg compiled best
  in
  {
    report;
    default_params;
    best_params = best;
    fko_mflops = result.Strategy.start_perf;
    ifko_mflops = result.Strategy.best_perf;
    best_func;
    contributions = result.Strategy.contributions;
    evaluations = result.Strategy.evaluations;
    probes_to_best = result.Strategy.probes_to_best;
    fidelity_used;
    calibration_error;
  }
