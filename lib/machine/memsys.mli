(** The memory system: two cache levels, a bandwidth-limited memory
    bus, an MSHR-limited miss pipe, a page-bounded hardware stream
    prefetcher, software prefetch, and the non-temporal store path.

    All functions take and return times in cycles (floats).  The CPU
    model calls [load]/[store]/[nt_store]/[prefetch] with the current
    dispatch time and uses the returned completion time for dependent
    instructions; bandwidth and miss-parallelism limits emerge from the
    evolving bus and MSHR state. *)

type t

val create : Config.t -> t

val config : t -> Config.t
(** The machine description this instance was built from (what
    {!Arena} keys its pools on). *)

val reset : t -> flush:bool -> unit
(** Zero the clock-dependent state (bus, MSHRs, in-flight fills,
    prefetch streams, statistics); additionally empty both caches when
    [flush] is set — the timers' out-of-cache context. *)

val load : t -> addr:int -> now:float -> float
(** Completion time of a load whose line contains [addr]. *)

val store : t -> addr:int -> now:float -> unit
(** Regular (write-allocate) store: generates read-for-ownership
    traffic on miss and dirty-writeback traffic on eviction, but never
    stalls the pipeline (store-buffer semantics). *)

(** {2 Unboxed calling convention}

    The simulator calls [load]/[store] once per simulated memory
    instruction, and a float argument or return value crossing a module
    boundary is boxed on every call.  The [_io] variants move both
    times through a reusable float array instead: write the dispatch
    time at index [io_now], call, read the completion time at [io_ret].
    Semantically identical to the labelled functions above. *)

val io : t -> float array
val io_now : int
val io_ret : int

val load_io : t -> int -> unit
(** [load t ~addr] with [now] read from [io_now] and the completion
    time written to [io_ret]. *)

val store_io : t -> int -> unit
(** [store t ~addr] with [now] read from [io_now]. *)

val nt_store_io : t -> bytes:int -> int -> unit
(** [nt_store] with [now] read from [io_now]. *)

val prefetch_io : t -> kind:Instr.pf_kind -> int -> unit
(** [prefetch] with [now] read from [io_now]. *)

val nt_store : t -> addr:int -> bytes:int -> now:float -> unit
(** Non-temporal store: write-combining traffic straight to memory, no
    allocation, no read-for-ownership; pays the configured penalty when
    the line is cached (it must be invalidated and flushed). *)

val prefetch : t -> kind:Instr.pf_kind -> addr:int -> now:float -> unit
(** Software prefetch.  Dropped silently when the bus is backed up by
    more than the configured slack, as real implementations do. *)

val warm_l2 : t -> addr:int -> unit
(** Install the line containing [addr] in L2 without any timing effect
    (the timers' in-L2 context setup). *)

val warm_all : t -> addr:int -> unit
(** Install in both levels (used to model a fully warm working set). *)

val bus_backlog : t -> now:float -> float
(** How many cycles of transfers are queued on the bus. *)

val drain_time : t -> now:float -> float
(** Time at which all queued bus traffic has drained; timing runs end
    no earlier than this (outstanding writebacks are real work). *)

val pending_writeback_cost : t -> float
(** Bus cycles needed to write back every dirty line still cached; the
    out-of-cache timers add this to the measured cycles so that store
    traffic is charged at its steady-state rate regardless of whether
    the sampled problem size exceeds L2. *)

val stats : t -> string
(** Human-readable hit/miss/drop counters (for the CLI's -v mode). *)

(** {2 Profiling}

    Fast-path coverage and cycle-attribution counters, accumulated
    since the last {!reset}.  The counters are always maintained (two
    int bumps per memory operation); the [--profile] flags in the
    bench driver and [ifko sim] only control reporting. *)

type profile = {
  loads : int;  (** total [load]/[load_io] calls *)
  stores : int;
  fast_loads : int;  (** loads served entirely by the open-coded fast path *)
  fast_stores : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  demand_misses : int;  (** demand fetches that went to memory *)
  demand_cycles : float;  (** latency cycles those fetches cost (arrival - request) *)
  bus_cycles : float;  (** total bus cycles claimed (transfers + turnarounds) *)
  sw_pf_issued : int;
  sw_pf_dropped : int;
  hw_pf_issued : int;
}

val profile : t -> profile

(** {2 Warm-state checkpointing}

    A snapshot is a deep copy of the entire mutable state (both caches,
    bus clocks, MSHR ring, in-flight fills, prefetch streams, the NT
    write-combining buffer, and all statistics counters).  Restoring it
    into a memory system of the same configuration is observably
    identical to replaying the access sequence that produced it — the
    timers use this to capture the post-warm-up state once per
    (kernel, context, N) and reuse it across every probe point of a
    tune.  Snapshots are plain data (safe to [Marshal]); restores never
    alias the snapshot's mutable internals. *)

type snapshot

val snapshot : t -> snapshot

val rebase : t -> unit
(** Translate every absolute timestamp (bus frontier, MSHR completion
    times, in-flight fill arrivals) so the consumption frontier reads
    0.  The model only compares and differences times, so this leaves
    all future behavior exactly as it would have unfolded — it merely
    re-expresses the state in the clock base of a fresh [Exec] run.
    The sampled timer rebases a just-warmed (or just-restored) state so
    the detailed window continues the warm-up as one long run. *)

val restore : t -> snapshot -> unit
(** @raise Invalid_argument when the snapshot's structural shape
    (cache geometry, MSHR capacity, prefetch stream count) does not
    match the target.  Same-shape-but-different-timing configurations
    are not detected here; callers key snapshots by a digest of the
    full machine configuration (see [Ckpt] in lib/sim). *)
