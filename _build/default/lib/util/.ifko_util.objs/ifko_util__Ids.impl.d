lib/util/ids.ml:
