(** The optimization space the iterative search explores.

    The analysis phase (together with any user mark-up) establishes the
    space: vectorizability gates SV, detected accumulators gate AE, the
    prefetch-target arrays each get an (instruction, distance) pair,
    and the machine's line size anchors the distance grid. *)

open Ifko_machine

(** Candidate unroll factors, bounded by the reported maximum safe
    unrolling and pruned entirely when the legality oracle would refuse
    the transform anyway (probing refused points wastes simulator
    time — the pipeline compiles them unchanged). *)
let unroll_candidates (report : Ifko_analysis.Report.t) =
  if report.Ifko_analysis.Report.legal_unroll <> Ok () then [ 1 ]
  else
    List.filter
      (fun u -> u <= report.Ifko_analysis.Report.max_unroll)
      [ 1; 2; 3; 4; 5; 8; 12; 16; 24; 32; 64; 128 ]

(** Candidate accumulator counts ([0] = off); pointless without any
    accumulator. *)
let ae_candidates (report : Ifko_analysis.Report.t) =
  if report.Ifko_analysis.Report.accumulators = [] then [ 0 ]
  else [ 0; 2; 3; 4; 5; 6; 8 ]

(** Prefetch instruction flavours available on the machine ([W] is the
    3DNow! prefetch, absent on the P4E-like machine). *)
let pf_ins_candidates (cfg : Config.t) =
  let base = [ None; Some Instr.Nta; Some Instr.T0; Some Instr.T1 ] in
  if cfg.Config.name = "Opteron" then base @ [ Some Instr.W ] else base

(** Prefetch distance grid in bytes: multiples of the prefetchable line
    size up to 2 KiB and a few beyond, as in the paper's Table 3. *)
let pf_dist_candidates (cfg : Config.t) =
  let line = cfg.Config.prefetchable_line in
  List.sort_uniq compare
    (List.filter_map
       (fun k ->
         let d = k * line in
         if d <= 4096 then Some d else None)
       [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 14; 16; 20; 24; 30; 32 ])

let wnt_candidates (report : Ifko_analysis.Report.t) =
  if
    report.Ifko_analysis.Report.output_arrays = []
    || report.Ifko_analysis.Report.legal_wnt <> Ok ()
  then [ false ]
  else [ false; true ]

let sv_candidates (report : Ifko_analysis.Report.t) =
  if
    report.Ifko_analysis.Report.vectorizable
    && report.Ifko_analysis.Report.legal_sv = Ok ()
  then [ true; false ]
  else [ false ]

(* ---- extension dimensions (paper future work; see Params) ---- *)

(** Block-fetch block sizes tried when the extended search is enabled. *)
let bf_candidates ~extensions (report : Ifko_analysis.Report.t) =
  if extensions && report.Ifko_analysis.Report.prefetch_arrays <> [] then
    [ 0; 2048; 4096; 8192 ]
  else [ 0 ]

(** CISC two-array indexing on/off under the extended search. *)
let cisc_candidates ~extensions (report : Ifko_analysis.Report.t) =
  if extensions && List.length report.Ifko_analysis.Report.prefetch_arrays >= 2 then
    [ false; true ]
  else [ false ]
