examples/context_adaptation.ml: Defs Hil_sources Ifko Instr List Printf Workload
