lib/blas/workload.mli: Defs Ifko_sim
