(* Transformation tests.

   The central property: for EVERY kernel and ANY parameter point, the
   fully transformed (and register-allocated) code computes the same
   results as the reference implementation.  Structural tests then pin
   down what each transformation is supposed to do to the code. *)
open Ifko_blas
open Ifko_transform

let compile id = Hil_sources.compile id

let apply ?(line = 128) id params = Pipeline.apply ~line_bytes:line (compile id) params

let verify_params ?(sizes = [ 0; 1; 2; 3; 31; 32; 64; 257 ]) id params =
  let c = apply id params in
  List.iter
    (fun n ->
      let env = Workload.make_env id ~seed:9 n in
      let expect = Workload.expectation id ~seed:9 n in
      let tol = Workload.tolerance id ~n in
      match
        Ifko_sim.Verify.check ~tol ~ret_fsize:id.Defs.prec c.Ifko_codegen.Lower.func env
          expect
      with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s %s n=%d: %s" (Defs.name id) (Params.to_string params) n e)
    sizes

let default_for id =
  Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze (compile id))

(* ---------- the big property ---------- *)

let params_gen id =
  let open QCheck.Gen in
  let d = default_for id in
  let* sv = bool in
  let* unroll = oneofl [ 1; 2; 3; 4; 5; 8; 16 ] in
  let* lc = bool in
  let* ae = oneofl [ 0; 2; 3; 4; 8 ] in
  let* wnt = bool in
  let* pf_on = bool in
  let* kind = oneofl [ Instr.Nta; Instr.T0; Instr.T1; Instr.W ] in
  let* dist = oneofl [ 0; 64; 128; 640; 2048 ] in
  let* bf = oneofl [ 0; 0; 0; 2048; 4096 ] in
  let* cisc = oneofl [ false; false; false; true ] in
  return
    {
      Params.sv;
      unroll;
      lc;
      ae;
      wnt;
      prefetch =
        (if pf_on then
           List.map
             (fun (a, _) -> (a, { Params.pf_ins = Some kind; pf_dist = dist }))
             d.Params.prefetch
         else []);
      bf;
      cisc;
    }

let prop_any_point_correct id =
  QCheck.Test.make
    ~name:(Printf.sprintf "any parameter point is correct: %s" (Defs.name id))
    ~count:12
    (QCheck.make (params_gen id) ~print:Params.to_string)
    (fun params ->
      verify_params ~sizes:[ 0; 1; 7; 65; 130 ] id params;
      true)

let properties = List.map prop_any_point_correct Defs.all

(* ---------- per-transformation structure ---------- *)

let count_instrs pred (f : Cfg.func) =
  List.fold_left
    (fun acc b -> acc + List.length (List.filter pred b.Block.instrs))
    0 f.Cfg.blocks

let test_simd_vectorizes () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.S } in
  let d = default_for id in
  let c = apply id { d with Params.sv = true; unroll = 1; ae = 0; prefetch = []; wnt = false } in
  let f = c.Ifko_codegen.Lower.func in
  Alcotest.(check bool) "has vector loads" true
    (count_instrs (function Instr.Vld _ -> true | _ -> false) f > 0);
  Alcotest.(check bool) "has a horizontal reduce" true
    (count_instrs (function Instr.Vreduce _ -> true | _ -> false) f = 1);
  (* per_iter multiplied by the vector length *)
  match c.Ifko_codegen.Lower.loopnest with
  | Some ln -> Alcotest.(check int) "per_iter = veclen" 4 ln.Ifko_codegen.Loopnest.per_iter
  | None -> Alcotest.fail "loopnest lost"

let test_simd_refuses_iamax () =
  let id = { Defs.routine = Defs.Iamax; prec = Instr.S } in
  let d = default_for id in
  Alcotest.(check bool) "default does not request SV" false d.Params.sv;
  (* even if requested, SV must refuse *)
  let c = apply id { d with Params.sv = true; prefetch = [] } in
  Alcotest.(check int) "no vector instructions" 0
    (count_instrs
       (function Instr.Vld _ | Instr.Vop _ | Instr.Vst _ -> true | _ -> false)
       c.Ifko_codegen.Lower.func)

let test_unroll_folds_displacements () =
  let id = { Defs.routine = Defs.Copy; prec = Instr.D } in
  let d = default_for id in
  let c = apply id { d with Params.sv = false; unroll = 4; prefetch = []; wnt = false; ae = 0 } in
  let f = c.Ifko_codegen.Lower.func in
  (* the unrolled body should contain loads at distinct displacements
     and exactly one bump per pointer *)
  let disps = ref [] in
  Cfg.iter_instrs f (fun i ->
      match i with Instr.Fld (_, _, m) -> disps := m.Instr.disp :: !disps | _ -> ());
  Alcotest.(check bool) "displacements 0,8,16,24 present" true
    (List.for_all (fun d -> List.mem d !disps) [ 0; 8; 16; 24 ]);
  match c.Ifko_codegen.Lower.loopnest with
  | Some ln ->
    Alcotest.(check int) "per_iter" 4 ln.Ifko_codegen.Loopnest.per_iter;
    Alcotest.(check bool) "cleanup materialized" true
      (ln.Ifko_codegen.Loopnest.cleanup <> None)
  | None -> Alcotest.fail "loopnest lost"

let test_unroll_control_flow_body () =
  (* iamax unrolls by block duplication *)
  let id = { Defs.routine = Defs.Iamax; prec = Instr.D } in
  let d = default_for id in
  let before = apply id { d with Params.unroll = 1; prefetch = [] } in
  let after = apply id { d with Params.unroll = 8; prefetch = [] } in
  Alcotest.(check bool) "more blocks when unrolled" true
    (List.length after.Ifko_codegen.Lower.func.Cfg.blocks
    > List.length before.Ifko_codegen.Lower.func.Cfg.blocks);
  verify_params id { d with Params.unroll = 8; prefetch = [] }

let test_lc_fuses () =
  let id = { Defs.routine = Defs.Scal; prec = Instr.D } in
  let d = default_for id in
  let with_lc = apply id { d with Params.lc = true; prefetch = [] } in
  let fused (f : Cfg.func) =
    List.exists
      (fun b -> match b.Block.term with Block.Br { dec; _ } -> dec > 0 | _ -> false)
      f.Cfg.blocks
  in
  Alcotest.(check bool) "fused countdown present" true (fused with_lc.Ifko_codegen.Lower.func);
  let without = apply id { d with Params.lc = false; prefetch = [] } in
  Alcotest.(check bool) "no fusion without LC" false (fused without.Ifko_codegen.Lower.func)

let test_ae_rotates_accumulators () =
  let id = { Defs.routine = Defs.Asum; prec = Instr.D } in
  let d = default_for id in
  let c =
    Pipeline.apply ~line_bytes:128 ~skip_regalloc:true (compile id)
      { d with Params.sv = false; unroll = 8; ae = 4; prefetch = []; lc = false }
  in
  let f = c.Ifko_codegen.Lower.func in
  (* distinct destination registers of the accumulating adds *)
  let dests = ref Reg.Set.empty in
  Cfg.iter_instrs f (fun i ->
      match i with
      | Instr.Fop (_, Instr.Fadd, dreg, a, _) when Reg.equal dreg a ->
        dests := Reg.Set.add dreg !dests
      | _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "%d accumulators in flight" (Reg.Set.cardinal !dests))
    true
    (Reg.Set.cardinal !dests >= 4)

let test_ae_clamped_without_unroll () =
  (* one add per iteration: AE must clamp to nothing *)
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let d = default_for id in
  verify_params id { d with Params.sv = false; unroll = 1; ae = 8; prefetch = [] }

let test_prefetch_inserted () =
  let id = { Defs.routine = Defs.Axpy; prec = Instr.D } in
  let d = default_for id in
  let c = apply id d in
  let n_pf =
    count_instrs (function Instr.Prefetch _ -> true | _ -> false) c.Ifko_codegen.Lower.func
  in
  (* default unroll 16, vectorized x2 = 32 doubles = 256 bytes per
     iteration per array = two 128-byte lines each: 4 prefetches *)
  Alcotest.(check int) "prefetches for both arrays" 4 n_pf;
  let c64 = Pipeline.apply ~line_bytes:64 (compile id) d in
  Alcotest.(check int) "smaller line, more prefetches" 8
    (count_instrs (function Instr.Prefetch _ -> true | _ -> false) c64.Ifko_codegen.Lower.func)

let test_wnt_rewrites_stores () =
  let id = { Defs.routine = Defs.Copy; prec = Instr.S } in
  let d = default_for id in
  let c = apply id { d with Params.wnt = true } in
  let f = c.Ifko_codegen.Lower.func in
  Alcotest.(check bool) "nt stores present" true
    (count_instrs (function Instr.Vstnt _ | Instr.Fstnt _ -> true | _ -> false) f > 0);
  (* the X array of copy is input-only: its loads must be untouched *)
  let c2 = apply { Defs.routine = Defs.Dot; prec = Instr.S } { d with Params.wnt = true } in
  Alcotest.(check int) "no outputs, no nt stores" 0
    (count_instrs
       (function Instr.Vstnt _ | Instr.Fstnt _ -> true | _ -> false)
       c2.Ifko_codegen.Lower.func)

(* ---------- repeatable transformations ---------- *)

let gpr i = Reg.virt Reg.Gpr i
let xmm i = Reg.virt Reg.Xmm i
let mem ?(disp = 0) base = Instr.mk_mem ~disp base

let test_copyprop () =
  let b =
    Block.make "entry"
      ~instrs:
        [ Instr.Ildi (gpr 0, 5);
          Instr.Imov (gpr 1, gpr 0);
          Instr.Iop (Instr.Iadd, gpr 2, gpr 1, Instr.Oreg (gpr 1));
        ]
      ~term:(Block.Ret (Some (gpr 2)))
  in
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <- [ b ];
  Alcotest.(check bool) "changed" true (Copyprop.run f);
  (match b.Block.instrs with
  | [ _; _; Instr.Iop (Instr.Iadd, _, a, Instr.Oreg b') ] ->
    Alcotest.(check bool) "uses propagated to the source" true
      (Reg.equal a (gpr 0) && Reg.equal b' (gpr 0))
  | _ -> Alcotest.fail "unexpected shape");
  (* a redefinition must kill the copy *)
  let b2 =
    Block.make "entry"
      ~instrs:
        [ Instr.Imov (gpr 1, gpr 0);
          Instr.Ildi (gpr 0, 9);
          Instr.Imov (gpr 2, gpr 1);
        ]
      ~term:(Block.Ret (Some (gpr 2)))
  in
  let f2 = Cfg.create ~name:"t" ~params:[] in
  f2.Cfg.blocks <- [ b2 ];
  ignore (Copyprop.run f2 : bool);
  match b2.Block.instrs with
  | [ _; _; Instr.Imov (_, src) ] ->
    Alcotest.(check bool) "stale copy not propagated" true (Reg.equal src (gpr 1))
  | _ -> Alcotest.fail "unexpected shape"

let test_deadcode () =
  let b =
    Block.make "entry"
      ~instrs:
        [ Instr.Ildi (gpr 0, 5);
          Instr.Ildi (gpr 1, 6); (* dead *)
          Instr.Fldi (Instr.D, xmm 0, 1.0); (* dead *)
          Instr.Fst (Instr.D, mem (gpr 0), xmm 1); (* store: kept *)
        ]
      ~term:(Block.Ret (Some (gpr 0)))
  in
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <- [ b ];
  Alcotest.(check bool) "changed" true (Deadcode.run f);
  Alcotest.(check int) "two instrs remain" 2 (List.length b.Block.instrs)

let test_faint_code () =
  (* self-updating register used nowhere else dies even in a loop *)
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry" ~instrs:[ Instr.Ildi (gpr 0, 10); Instr.Ildi (gpr 1, 0) ]
        ~term:(Block.Jmp "loop");
      Block.make "loop"
        ~instrs:[ Instr.Iop (Instr.Iadd, gpr 1, gpr 1, Instr.Oimm 1) ]
        ~term:
          (Block.Br
             { cmp = Instr.Ge; lhs = gpr 0; rhs = Instr.Oimm 1; ifso = "loop"; ifnot = "out";
               dec = 1 });
      Block.make "out" ~term:(Block.Ret None);
    ];
  ignore (Deadcode.run f : bool);
  Alcotest.(check int) "faint self-update removed" 0
    (List.length (Cfg.find_block_exn f "loop").Block.instrs)

let test_peephole_folds () =
  let b =
    Block.make "entry"
      ~instrs:
        [ Instr.Fld (Instr.D, xmm 1, mem ~disp:8 (gpr 0));
          Instr.Fop (Instr.D, Instr.Fmul, xmm 2, xmm 0, xmm 1);
        ]
      ~term:(Block.Ret (Some (xmm 2)))
  in
  let f = Cfg.create ~name:"t" ~params:[ ("A", gpr 0) ] in
  f.Cfg.blocks <- [ b ];
  Alcotest.(check bool) "changed" true (Peephole.run f);
  match b.Block.instrs with
  | [ Instr.Fopm (Instr.D, Instr.Fmul, _, _, m) ] ->
    Alcotest.(check int) "memory operand kept" 8 m.Instr.disp
  | _ -> Alcotest.fail "load not folded"

let test_peephole_no_fold_when_live () =
  (* the loaded value is used twice: folding would lose it *)
  let b =
    Block.make "entry"
      ~instrs:
        [ Instr.Fld (Instr.D, xmm 1, mem (gpr 0));
          Instr.Fop (Instr.D, Instr.Fmul, xmm 2, xmm 0, xmm 1);
          Instr.Fop (Instr.D, Instr.Fadd, xmm 3, xmm 2, xmm 1);
        ]
      ~term:(Block.Ret (Some (xmm 3)))
  in
  let f = Cfg.create ~name:"t" ~params:[ ("A", gpr 0) ] in
  f.Cfg.blocks <- [ b ];
  ignore (Peephole.run f : bool);
  Alcotest.(check int) "three instrs stay" 3 (List.length b.Block.instrs)

let test_branchopt () =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry" ~term:(Block.Jmp "hop");
      Block.make "hop" ~term:(Block.Jmp "work");
      Block.make "work" ~instrs:[ Instr.Ildi (gpr 0, 1) ] ~term:(Block.Ret (Some (gpr 0)));
      Block.make "dead" ~term:(Block.Ret None);
    ];
  ignore (Branchopt.run f : bool);
  ignore (Branchopt.run f : bool);
  Alcotest.(check int) "merged to a single block" 1 (List.length f.Cfg.blocks);
  Alcotest.(check string) "entry stays" "entry" (Cfg.entry f).Block.label

let test_branchopt_protect () =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry" ~term:(Block.Jmp "keepme");
      Block.make "keepme" ~instrs:[ Instr.Ildi (gpr 0, 1) ] ~term:(Block.Ret (Some (gpr 0)));
    ];
  ignore (Branchopt.run ~protect:[ "keepme" ] f : bool);
  Alcotest.(check int) "protected label not merged" 2 (List.length f.Cfg.blocks)

let test_pipeline_validates_physical () =
  List.iter
    (fun id ->
      let d = default_for id in
      let c = apply id { d with Params.unroll = 8; ae = 3 } in
      Validate.check_physical c.Ifko_codegen.Lower.func)
    Defs.all

let suite =
  List.map QCheck_alcotest.to_alcotest properties
  @ [ Alcotest.test_case "SV vectorizes dot" `Quick test_simd_vectorizes;
      Alcotest.test_case "SV refuses iamax" `Quick test_simd_refuses_iamax;
      Alcotest.test_case "UR folds displacements" `Quick test_unroll_folds_displacements;
      Alcotest.test_case "UR with control flow" `Quick test_unroll_control_flow_body;
      Alcotest.test_case "LC fuses countdown" `Quick test_lc_fuses;
      Alcotest.test_case "AE rotates accumulators" `Quick test_ae_rotates_accumulators;
      Alcotest.test_case "AE clamps without unroll" `Quick test_ae_clamped_without_unroll;
      Alcotest.test_case "PF inserted per line" `Quick test_prefetch_inserted;
      Alcotest.test_case "WNT rewrites stores" `Quick test_wnt_rewrites_stores;
      Alcotest.test_case "copy propagation" `Quick test_copyprop;
      Alcotest.test_case "dead code" `Quick test_deadcode;
      Alcotest.test_case "faint code" `Quick test_faint_code;
      Alcotest.test_case "peephole folds loads" `Quick test_peephole_folds;
      Alcotest.test_case "peephole keeps live loads" `Quick test_peephole_no_fold_when_live;
      Alcotest.test_case "branch cleanup" `Quick test_branchopt;
      Alcotest.test_case "branch cleanup protection" `Quick test_branchopt_protect;
      Alcotest.test_case "pipeline emits physical code" `Quick test_pipeline_validates_physical;
    ]
