open Ifko_blas
open Ifko_machine

type candidate = {
  cand_name : string;
  assembly : bool;
  build : cfg:Config.t -> pf:(Instr.pf_kind * int) option -> wnt:bool -> Cfg.func;
}

(* ---------- C-with-inline-prefetch candidates (via the backend) ---------- *)

let pipeline_candidate ~name ~sv ~unroll ~ae ~two_array id =
  let build ~cfg ~pf ~wnt =
    let compiled = Hil_sources.compile id in
    let report = Ifko_analysis.Report.analyze compiled in
    let prefetch =
      match pf with
      | None -> []
      | Some (kind, dist) ->
        List.map
          (fun (m : Ifko_analysis.Ptrinfo.moving) ->
            ( m.Ifko_analysis.Ptrinfo.array.Ifko_codegen.Lower.a_name,
              { Ifko_transform.Params.pf_ins = Some kind; pf_dist = dist } ))
          report.Ifko_analysis.Report.prefetch_arrays
    in
    let params =
      {
        Ifko_transform.Params.sv = sv && report.Ifko_analysis.Report.vectorizable;
        unroll;
        lc = true;
        ae;
        prefetch;
        wnt = wnt && report.Ifko_analysis.Report.output_arrays <> [];
        bf = 0;
        cisc = false;
      }
    in
    (* Hand-tuned code gets the two-array-indexing idiom FKO lacks; it
       must be applied before register allocation, so replicate the
       pipeline staging here. *)
    let c = Ifko_transform.Pipeline.snapshot compiled in
    if params.Ifko_transform.Params.sv then ignore (Ifko_transform.Simd.apply c : (unit, _) result);
    if unroll > 1 then ignore (Ifko_transform.Unroll.apply c unroll : (unit, _) result);
    if params.Ifko_transform.Params.prefetch <> [] then
      Ifko_transform.Prefetch_xform.apply c
        ~line_bytes:cfg.Config.prefetchable_line params.Ifko_transform.Params.prefetch;
    if params.Ifko_transform.Params.wnt then ignore (Ifko_transform.Ntwrite.apply c : (unit, _) result);
    if two_array then Atlas_idioms.two_array_indexing c;
    Ifko_transform.Loopctl.apply c;
    if ae > 1 then ignore (Ifko_transform.Accexp.apply c ae : (unit, _) result);
    let f = c.Ifko_codegen.Lower.func in
    ignore
      (Ifko_transform.Pipeline.repeatable
         ~protect:
           (match c.Ifko_codegen.Lower.loopnest with
           | Some ln ->
             [ ln.Ifko_codegen.Loopnest.preheader; ln.Ifko_codegen.Loopnest.header;
               ln.Ifko_codegen.Loopnest.latch; ln.Ifko_codegen.Loopnest.mid;
               ln.Ifko_codegen.Loopnest.exit ]
             @ (match ln.Ifko_codegen.Loopnest.cleanup with
               | Some (h, l) -> [ h; l ]
               | None -> [])
           | None -> [])
         f
        : int);
    ignore (Ifko_transform.Branchopt.run f : bool);
    Ifko_transform.Regalloc.run f;
    Validate.check_physical f;
    f
  in
  { cand_name = name; assembly = false; build }

(* ---------- all-assembly: block-fetch copy ---------- *)

(* AMD's block-fetch technique: fetch a whole block with one load per
   cache line, then copy it with non-temporal stores.  Batching all
   reads then all writes amortizes the bus turnaround that interleaved
   copying pays per line. *)
let block_fetch_copy id ~cfg ~pf:_ ~wnt:_ =
  let eb = Instr.fsize_bytes id.Defs.prec in
  let sz = id.Defs.prec in
  ignore cfg;
  let block_bytes = 4096 in
  let block_elems = block_bytes / eb in
  let f = Cfg.create ~name:(Defs.name id ^ "_bf") ~params:[] in
  let cnt = Cfg.fresh_reg f Reg.Gpr in
  let x = Cfg.fresh_reg f Reg.Gpr in
  let y = Cfg.fresh_reg f Reg.Gpr in
  let f = { f with Cfg.params = [ ("N", cnt); ("X", x); ("Y", y) ] } in
  let v = Array.init 4 (fun _ -> Cfg.fresh_reg f Reg.Xmm) in
  let t = Cfg.fresh_reg f Reg.Xmm in
  let c2 = Cfg.fresh_reg f Reg.Gpr in
  let mem ?(disp = 0) base = Instr.mk_mem ~disp base in
  (* entry *)
  let entry = Block.make "entry" ~term:(Block.Jmp "bfh") in
  (* block loop head *)
  let bfh =
    Block.make "bfh"
      ~term:
        (Block.Br
           { cmp = Instr.Lt; lhs = cnt; rhs = Instr.Oimm block_elems; ifso = "tailh";
             ifnot = "bfetch"; dec = 0 })
  in
  (* fetch phase: one load per 64-byte line of the block *)
  let fetch_instrs =
    List.init (block_bytes / 64) (fun k -> Instr.Fld (sz, t, mem ~disp:(k * 64) x))
  in
  let bfetch =
    Block.make "bfetch" ~instrs:(fetch_instrs @ [ Instr.Ildi (c2, block_bytes / 128) ])
      ~term:(Block.Jmp "cbody")
  in
  (* copy phase: 128 bytes per iteration, non-temporal stores *)
  let copy_instrs =
    List.concat
      (List.init 8 (fun j ->
           let d = j * 16 in
           [ Instr.Vld (sz, v.(j mod 4), mem ~disp:d x);
             Instr.Vstnt (sz, mem ~disp:d y, v.(j mod 4));
           ]))
    @ [ Instr.Iop (Instr.Iadd, x, x, Instr.Oimm 128);
        Instr.Iop (Instr.Iadd, y, y, Instr.Oimm 128);
      ]
  in
  let cbody =
    Block.make "cbody" ~instrs:copy_instrs
      ~term:
        (Block.Br
           { cmp = Instr.Ge; lhs = c2; rhs = Instr.Oimm 1; ifso = "cbody"; ifnot = "bfend";
             dec = 1 })
  in
  let bfend =
    Block.make "bfend"
      ~instrs:[ Instr.Iop (Instr.Isub, cnt, cnt, Instr.Oimm block_elems) ]
      ~term:(Block.Jmp "bfh")
  in
  (* scalar tail *)
  let tailh =
    Block.make "tailh"
      ~term:
        (Block.Br
           { cmp = Instr.Lt; lhs = cnt; rhs = Instr.Oimm 1; ifso = "done"; ifnot = "tb";
             dec = 0 })
  in
  let tb =
    Block.make "tb"
      ~instrs:
        [ Instr.Fld (sz, t, mem x);
          Instr.Fst (sz, mem y, t);
          Instr.Iop (Instr.Iadd, x, x, Instr.Oimm eb);
          Instr.Iop (Instr.Iadd, y, y, Instr.Oimm eb);
          Instr.Iop (Instr.Isub, cnt, cnt, Instr.Oimm 1);
        ]
      ~term:(Block.Jmp "tailh")
  in
  let done_ = Block.make "done" ~term:(Block.Ret None) in
  f.Cfg.blocks <- [ entry; bfh; bfetch; cbody; bfend; tailh; tb; done_ ];
  Ifko_transform.Regalloc.run f;
  Validate.check_physical f;
  f

(* ---------- all-assembly: compare-mask vectorized iamax ---------- *)

let vectorized_iamax id ~cfg ~pf ~wnt:_ =
  let eb = Instr.fsize_bytes id.Defs.prec in
  let sz = id.Defs.prec in
  ignore cfg;
  let veclen = Instr.lanes sz in
  let blk = 4 * veclen in
  let blkb = blk * eb in
  let f = Cfg.create ~name:(Defs.name id ^ "_sse") ~params:[] in
  let cnt = Cfg.fresh_reg f Reg.Gpr in
  let x = Cfg.fresh_reg f Reg.Gpr in
  let f = { f with Cfg.params = [ ("N", cnt); ("X", x) ] } in
  let iblk = Cfg.fresh_reg f Reg.Gpr in
  let imax = Cfg.fresh_reg f Reg.Gpr in
  let msk = Cfg.fresh_reg f Reg.Gpr in
  let j = Cfg.fresh_reg f Reg.Gpr in
  let amax = Cfg.fresh_reg f Reg.Xmm in
  let bmax = Cfg.fresh_reg f Reg.Xmm in
  let xs = Cfg.fresh_reg f Reg.Xmm in
  let xa = Cfg.fresh_reg f Reg.Xmm in
  let v = Array.init 4 (fun _ -> Cfg.fresh_reg f Reg.Xmm) in
  let m01 = v.(0) and m23 = v.(2) in
  let mem ?(disp = 0) ?index ?(scale = 1) base = Instr.mk_mem ?index ~scale ~disp base in
  let entry =
    Block.make "entry"
      ~instrs:
        [ Instr.Fldi (sz, amax, -1.0);
          Instr.Vldi (sz, bmax, -1.0);
          Instr.Ildi (imax, 0);
          Instr.Ildi (iblk, 0);
        ]
      ~term:(Block.Jmp "vh")
  in
  let vh =
    Block.make "vh"
      ~term:
        (Block.Br
           { cmp = Instr.Lt; lhs = cnt; rhs = Instr.Oimm blk; ifso = "th"; ifnot = "vb";
             dec = 0 })
  in
  let vb_instrs =
    (match pf with
    | Some (kind, dist) -> [ Instr.Prefetch (kind, mem ~disp:dist x) ]
    | None -> [])
    @ List.concat
        (List.init 4 (fun k ->
             [ Instr.Vld (sz, v.(k), mem ~disp:(k * 16) x);
               Instr.Vabs (sz, v.(k), v.(k));
             ]))
    @ [ Instr.Vop (sz, Instr.Fmax, m01, v.(0), v.(1));
        Instr.Vop (sz, Instr.Fmax, m23, v.(2), v.(3));
        Instr.Vop (sz, Instr.Fmax, m01, m01, m23);
        Instr.Vcmp (sz, Instr.Gt, m23, m01, bmax);
        Instr.Vmovmsk (sz, msk, m23);
      ]
  in
  let vb =
    Block.make "vb" ~instrs:vb_instrs
      ~term:
        (Block.Br
           { cmp = Instr.Ne; lhs = msk; rhs = Instr.Oimm 0; ifso = "rescan"; ifnot = "vnext";
             dec = 0 })
  in
  let vnext =
    Block.make "vnext"
      ~instrs:
        [ Instr.Iop (Instr.Iadd, x, x, Instr.Oimm blkb);
          Instr.Iop (Instr.Iadd, iblk, iblk, Instr.Oimm blk);
          Instr.Iop (Instr.Isub, cnt, cnt, Instr.Oimm blk);
        ]
      ~term:(Block.Jmp "vh")
  in
  (* scalar rescan of the triggering block preserves first-index
     semantics exactly *)
  let rescan = Block.make "rescan" ~instrs:[ Instr.Ildi (j, 0) ] ~term:(Block.Jmp "rb") in
  let rb =
    Block.make "rb"
      ~instrs:
        [ Instr.Fld (sz, xs, mem ~index:j ~scale:eb x);
          Instr.Fabs (sz, xa, xs);
        ]
      ~term:
        (Block.Fbr
           { fsize = sz; cmp = Instr.Gt; lhs = xa; rhs = amax; ifso = "upd"; ifnot = "rnext" })
  in
  let upd =
    Block.make "upd"
      ~instrs:
        [ Instr.Fmov (sz, amax, xa);
          Instr.Vbcast (sz, bmax, amax);
          Instr.Iop (Instr.Iadd, imax, iblk, Instr.Oreg j);
        ]
      ~term:(Block.Jmp "rnext")
  in
  let rnext =
    Block.make "rnext"
      ~instrs:[ Instr.Iop (Instr.Iadd, j, j, Instr.Oimm 1) ]
      ~term:
        (Block.Br
           { cmp = Instr.Lt; lhs = j; rhs = Instr.Oimm blk; ifso = "rb"; ifnot = "vnext";
             dec = 0 })
  in
  (* scalar tail *)
  let th =
    Block.make "th"
      ~term:
        (Block.Br
           { cmp = Instr.Lt; lhs = cnt; rhs = Instr.Oimm 1; ifso = "done"; ifnot = "tb";
             dec = 0 })
  in
  let tb =
    Block.make "tb"
      ~instrs:
        [ Instr.Fld (sz, xs, mem x);
          Instr.Fabs (sz, xa, xs);
        ]
      ~term:
        (Block.Fbr
           { fsize = sz; cmp = Instr.Gt; lhs = xa; rhs = amax; ifso = "tupd"; ifnot = "tnext" })
  in
  let tupd =
    Block.make "tupd"
      ~instrs:[ Instr.Fmov (sz, amax, xa); Instr.Imov (imax, iblk) ]
      ~term:(Block.Jmp "tnext")
  in
  let tnext =
    Block.make "tnext"
      ~instrs:
        [ Instr.Iop (Instr.Iadd, x, x, Instr.Oimm eb);
          Instr.Iop (Instr.Iadd, iblk, iblk, Instr.Oimm 1);
          Instr.Iop (Instr.Isub, cnt, cnt, Instr.Oimm 1);
        ]
      ~term:(Block.Jmp "th")
  in
  let done_ = Block.make "done" ~term:(Block.Ret (Some imax)) in
  f.Cfg.blocks <- [ entry; vh; vb; vnext; rescan; rb; upd; rnext; th; tb; tupd; tnext; done_ ];
  Ifko_transform.Regalloc.run f;
  Validate.check_physical f;
  f

(* ---------- the collection ---------- *)

let candidates (id : Defs.kernel_id) =
  let base =
    [ pipeline_candidate ~name:"c_ref" ~sv:false ~unroll:4 ~ae:0 ~two_array:false id;
      pipeline_candidate ~name:"c_unroll" ~sv:false ~unroll:8 ~ae:3 ~two_array:false id;
      pipeline_candidate ~name:"sse" ~sv:true ~unroll:8 ~ae:4 ~two_array:true id;
      pipeline_candidate ~name:"sse_ur16" ~sv:true ~unroll:16 ~ae:2 ~two_array:true id;
    ]
  in
  match id.Defs.routine with
  | Defs.Copy ->
    base
    @ [ { cand_name = "block_fetch"; assembly = true; build = block_fetch_copy id } ]
  | Defs.Iamax ->
    base @ [ { cand_name = "sse_mask"; assembly = true; build = vectorized_iamax id } ]
  | Defs.Swap | Defs.Scal | Defs.Axpy | Defs.Dot | Defs.Asum -> base
