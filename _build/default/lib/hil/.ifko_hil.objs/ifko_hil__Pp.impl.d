lib/hil/pp.ml: Ast Buffer List Printf String
