lib/lil/block.ml: Instr Option Printf Reg
