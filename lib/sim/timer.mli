(** Kernel timers.

    Mirrors the paper's methodology on top of the simulator: each
    timing is repeated and the minimum taken (the simulator is
    deterministic, so this guards the harness rather than noise), and
    two usage contexts are supported — operands out of cache (caches
    flushed before each trial) and operands preloaded into L2.

    Large out-of-cache problems are measured by simulating two smaller,
    page-aligned problem sizes in steady state and extrapolating the
    cycle count linearly; {!val-exact} and the extrapolated path agree
    to well under a percent on streaming kernels (checked in the test
    suite and by the ablation bench).

    {2 Fidelity}

    [Full] fidelity is the default and is bit-identical to what every
    earlier version computed.  [Sampled] fidelity replaces the
    extrapolation pair with three short windows: a warm-up window
    ({!sampled_warm_pages} pages) that drives the memory system to
    steady state and is checkpointed once per kernel and shared across
    every probe point and problem size, a detailed window
    ({!sampled_win_pages} pages) that continues the warm-up as one long
    run, and a one-page cold window anchoring the candidate's start-up
    intercept.  The first time a candidate meets a warm state, a longer
    companion window ({!sampled_rate_pages} pages) resumes from the
    same state; the pair's difference yields the candidate's steady
    per-element rate with the code-dependent resume transient cancelled
    exactly, and the transient is memoized so every later measurement
    needs only the short window.  Per-probe simulated work drops from
    [sample_lo + sample_hi] elements to three pages in the steady
    state.

    The in-L2 context is served by a cache-resident variant of the
    same scheme: the warm-up installs the window environment's lines
    in L2 first (exactly as the full in-L2 path installs the whole
    working set) and windows use raw cycles with no writeback charges,
    matching the full path's conventions.  It applies only while the
    full working set fits in L2 — beyond capacity the measurement
    falls back with reason ["in-l2-context"].

    A bit-identity escape hatch reverts to full fidelity and records
    the reason whenever a confidence check fails: no array operands,
    an over-capacity in-L2 working set, tiny N, non-positive window
    cycles, or a steady rate inconsistent with the cold window
    (["no-steady-state"]).  Callers that need the error budget enforced
    per kernel calibrate one point both ways first — see
    [Driver.tune]. *)

type context = Out_of_cache | In_l2

val context_name : context -> string

type spec = {
  make_env : int -> Env.t;  (** environment builder for a problem size *)
  ret_fsize : Instr.fsize;
}

type fidelity = Full | Sampled

val fidelity_name : fidelity -> string
val fidelity_of_string : string -> fidelity option

type measurement = {
  m_cycles : float;
  m_fidelity : fidelity;  (** the fidelity that actually produced the cycles *)
  m_fallback : string option;
      (** why a [Sampled] request fell back to full fidelity, if it did *)
  m_elems : int;  (** elements simulated per repetition (the work proxy) *)
}

val exact :
  cfg:Ifko_machine.Config.t -> context:context -> spec:spec -> n:int -> Cfg.func -> float
(** Simulate the full problem of size [n]; returns cycles. *)

val measure :
  ?reps:int ->
  ?fidelity:fidelity ->
  ?ckpt:Ckpt.t * string ->
  cfg:Ifko_machine.Config.t ->
  context:context ->
  spec:spec ->
  n:int ->
  Cfg.func ->
  float
(** Cycle count for problem size [n] under [context], using
    steady-state extrapolation for large out-of-cache problems.
    [reps] repeats each timing and keeps the minimum (default 1 — the
    simulator is deterministic).  [fidelity] defaults to [Full], which
    is bit-identical to the historical behavior.  [ckpt] is the
    warm-state checkpoint cache paired with the kernel fingerprint the
    snapshots are keyed by; it accelerates the in-L2 warm-up and never
    changes any result.  Compiles the function once and reuses the
    decoded form across samples and reps. *)

val measure_compiled :
  ?reps:int ->
  ?fidelity:fidelity ->
  ?ckpt:Ckpt.t * string ->
  cfg:Ifko_machine.Config.t ->
  context:context ->
  spec:spec ->
  n:int ->
  Exec.compiled ->
  float
(** {!measure} for already-compiled code — for callers that time the
    same candidate in several contexts or at several sizes. *)

val measure_ext :
  ?reps:int ->
  ?fidelity:fidelity ->
  ?ckpt:Ckpt.t * string ->
  cfg:Ifko_machine.Config.t ->
  context:context ->
  spec:spec ->
  n:int ->
  Exec.compiled ->
  measurement
(** {!measure_compiled} returning the full measurement record: the
    fidelity that actually ran, the fallback reason when the sampled
    escape hatch fired, and the simulated-element count the cycles
    were derived from. *)

val sampled_window_lo : spec -> int
(** Elements in one 4 KiB page of the kernel's widest array element —
    the sampled-fidelity window unit (0 when the kernel binds no
    arrays, which forces the full-fidelity fallback). *)

val sampled_warm_pages : int
(** Warm-up window length, in {!sampled_window_lo} units. *)

val sampled_win_pages : int
(** Detailed window length, in {!sampled_window_lo} units (even, so
    period-two page alternation averages out). *)

val sampled_rate_pages : int
(** Length of the longer companion window run once per (warm state,
    candidate) to separate the steady rate from the resume transient;
    the rate span [sampled_rate_pages - sampled_win_pages] is an even
    page count for the same alternation-cancelling reason. *)

val mflops :
  cfg:Ifko_machine.Config.t -> flops_per_n:float -> n:int -> cycles:float -> float
(** Convert cycles to the MFLOPS the paper reports. *)

(** {2 Wall-time attribution}

    Setup-vs-simulate breakdown of measurement wall time, for
    [bench --profile] and [ifko sim --profile]: the sampled fidelity's
    wall-clock win depends on the fixed per-measure floor (machine
    acquire, environment materialize, warm-state restore), and this
    instrument makes a floor regression visible.  Disabled by default
    (no clock reads on the hot path); safe across domains. *)

type attribution = {
  at_arena_s : float;  (** acquiring/releasing pooled machines *)
  at_env_s : float;  (** building, materializing and scrubbing environments *)
  at_restore_s : float;  (** snapshot capture/restore and warm-state plumbing *)
  at_exec_s : float;  (** inside [Exec.exec] — the actual simulation *)
  at_measures : int;  (** measurements attributed *)
}

val profile_enable : bool -> unit
val profile_reset : unit -> unit
val profile : unit -> attribution
