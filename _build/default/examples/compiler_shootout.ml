(* One kernel, every tuning method (a single cell of the paper's
   Figures 2/3):

     dune exec examples/compiler_shootout.exe -- [kernel] [machine]

   e.g.  dune exec examples/compiler_shootout.exe -- daxpy opteron *)

open Ifko.Blas

let () =
  let kernel = if Array.length Sys.argv > 1 then Sys.argv.(1) else "daxpy" in
  let machine = if Array.length Sys.argv > 2 then Sys.argv.(2) else "p4e" in
  let id =
    match List.find_opt (fun k -> Defs.name k = kernel) Defs.all with
    | Some id -> id
    | None ->
      Printf.eprintf "unknown kernel %S; one of: %s\n" kernel
        (String.concat " " (List.map Defs.name Defs.all));
      exit 2
  in
  let cfg =
    match machine with
    | "p4e" -> Ifko.Config.p4e
    | "opteron" -> Ifko.Config.opteron
    | other ->
      Printf.eprintf "unknown machine %S (p4e|opteron)\n" other;
      exit 2
  in
  Printf.printf "%s on the simulated %s, N=80000, out of cache\n%!" (Defs.name id)
    cfg.Ifko.Config.name;
  let study =
    Ifko_eval.Eval.run_study ~kernels:[ id ]
      ~progress:(fun _ -> ())
      ~cfg ~context:Ifko.Timer.Out_of_cache ~n:80000 ~seed:2005 ()
  in
  let r = List.hd study.Ifko_eval.Eval.results in
  Printf.printf "(ATLAS selected its %S implementation%s)\n\n"
    r.Ifko_eval.Eval.atlas_candidate
    (if r.Ifko_eval.Eval.display_name <> Defs.name id then ", an all-assembly kernel" else "");
  List.iter
    (fun m ->
      let v = List.assoc m r.Ifko_eval.Eval.mflops in
      Printf.printf "  %-9s %8.1f MFLOPS  %5.1f%%  |%s|\n" (Ifko_eval.Eval.method_name m) v
        (Ifko_eval.Eval.percent r m)
        (Ifko_util.Table.bar ~width:40 ~frac:(Ifko_eval.Eval.percent r m /. 100.0)))
    Ifko_eval.Eval.methods;
  if not r.Ifko_eval.Eval.verified then
    print_endline "WARNING: some method computed wrong answers!"
