(** Speculative vectorization of max-with-index reductions.

    The paper's remaining open problem: neither FKO nor icc vectorizes
    iamax automatically, and "it seems almost certain that we can
    overcome this problem in a narrow way, for instance by having the
    user supply us with markup indicating how to address the
    dependency".  This transformation is that narrow way: when the
    tunable loop carries the [SPECULATE] mark-up and its body is the
    canonical max-with-index idiom

    {v
    x = P[0];  x = ABS x;          (ABS optional)
    IF (x > amax) THEN amax = x; imax = i; ENDIF
    P += 1;
    v}

    the loop is rewritten with the compare-mask scheme the hand-tuned
    assembly uses: blocks of [4*veclen] elements are reduced with
    vector max against a broadcast of the current maximum; only when
    the lane mask fires (logarithmically often on random data) does a
    scalar re-scan of the block run, preserving exact first-index
    semantics.  The original scalar loop remains as the tail. *)

open Ifko_codegen

type pattern = {
  ptr : Reg.t;
  sz : Instr.fsize;
  has_abs : bool;
  amax : Reg.t;
  imax : Reg.t;
}

(* Match the lowered shape of the idiom: entry (load, optional abs,
   compare-branch), then-block (update amax and imax from the index),
   empty else-block, join (single pointer bump). *)
let recognize (f : Cfg.func) (ln : Loopnest.t) =
  match (Loopnest.body_labels f ln, ln.Loopnest.index) with
  | [ _; _; _; _ ], Some index when ln.Loopnest.step = 1 -> (
    let entry_label =
      match (Cfg.find_block_exn f ln.Loopnest.header).Block.term with
      | Block.Br { ifnot; _ } -> ifnot
      | _ -> ""
    in
    match Cfg.find_block f entry_label with
    | None -> None
    | Some entry -> (
      let loaded =
        match entry.Block.instrs with
        | [ Instr.Fld (sz, x, m) ] when m.Instr.index = None && m.Instr.disp = 0 ->
          Some (sz, x, m.Instr.base, false)
        | [ Instr.Fld (sz, t, m); Instr.Fabs (sz', x, t') ]
          when sz = sz' && Reg.equal t t' && m.Instr.index = None && m.Instr.disp = 0 ->
          Some (sz, x, m.Instr.base, true)
        | _ -> None
      in
      match (loaded, entry.Block.term) with
      | ( Some (sz, x, ptr, has_abs),
          Block.Fbr { cmp = Instr.Gt; lhs; rhs = amax; ifso; ifnot; _ } )
        when Reg.equal lhs x -> (
        match (Cfg.find_block f ifso, Cfg.find_block f ifnot) with
        | Some then_b, Some else_b -> (
          match (then_b.Block.instrs, then_b.Block.term, else_b.Block.instrs, else_b.Block.term)
          with
          | ( [ Instr.Fmov (_, amax', x'); Instr.Imov (imax, idx) ],
              Block.Jmp join1,
              [],
              Block.Jmp join2 )
            when join1 = join2 && Reg.equal amax' amax && Reg.equal x' x
                 && Reg.equal idx index -> (
            match Cfg.find_block f join1 with
            | Some join_b -> (
              match (join_b.Block.instrs, join_b.Block.term) with
              | [ Instr.Iop (Instr.Iadd, p1, p2, Instr.Oimm eb) ], Block.Jmp l
                when l = ln.Loopnest.latch && Reg.equal p1 ptr && Reg.equal p2 ptr
                     && eb = Instr.fsize_bytes sz ->
                Some { ptr; sz; has_abs; amax; imax }
              | _ -> None)
            | None -> None)
          | _ -> None)
        | _ -> None)
      | _ -> None))
  | _ -> None

(* Emit the compare-mask block loop in front of the scalar loop. *)
let rewrite (f : Cfg.func) (ln : Loopnest.t) (p : pattern) =
  let sz = p.sz in
  let eb = Instr.fsize_bytes sz in
  let veclen = Instr.lanes sz in
  let blk = 4 * veclen in
  let blkb = blk * eb in
  let cnt = ln.Loopnest.cnt in
  let index = Option.get ln.Loopnest.index in
  let mem ?(disp = 0) ?index ?(scale = 1) base = Instr.mk_mem ?index ~scale ~disp base in
  let bmax = Cfg.fresh_reg f Reg.Xmm in
  let v = Array.init 4 (fun _ -> Cfg.fresh_reg f Reg.Xmm) in
  let xs = Cfg.fresh_reg f Reg.Xmm in
  let xa = Cfg.fresh_reg f Reg.Xmm in
  let msk = Cfg.fresh_reg f Reg.Gpr in
  let j = Cfg.fresh_reg f Reg.Gpr in
  let mxh = Cfg.fresh_label f "mx_head" in
  let mxb = Cfg.fresh_label f "mx_body" in
  let mxn = Cfg.fresh_label f "mx_next" in
  let rescan = Cfg.fresh_label f "mx_rescan" in
  let rb = Cfg.fresh_label f "mx_rb" in
  let upd = Cfg.fresh_label f "mx_upd" in
  let rn = Cfg.fresh_label f "mx_rn" in
  let abs_or_move k =
    if p.has_abs then Instr.Vabs (sz, v.(k), v.(k)) else Instr.Vmov (sz, v.(k), v.(k))
  in
  let head =
    Block.make mxh
      ~term:
        (Block.Br
           { cmp = Instr.Lt; lhs = cnt; rhs = Instr.Oimm blk; ifso = ln.Loopnest.header;
             ifnot = mxb; dec = 0 })
  in
  let body =
    Block.make mxb
      ~instrs:
        (List.concat (List.init 4 (fun k -> [ Instr.Vld (sz, v.(k), mem ~disp:(k * 16) p.ptr); abs_or_move k ]))
        @ [ Instr.Vop (sz, Instr.Fmax, v.(0), v.(0), v.(1));
            Instr.Vop (sz, Instr.Fmax, v.(2), v.(2), v.(3));
            Instr.Vop (sz, Instr.Fmax, v.(0), v.(0), v.(2));
            Instr.Vcmp (sz, Instr.Gt, v.(1), v.(0), bmax);
            Instr.Vmovmsk (sz, msk, v.(1));
          ])
      ~term:
        (Block.Br
           { cmp = Instr.Ne; lhs = msk; rhs = Instr.Oimm 0; ifso = rescan; ifnot = mxn;
             dec = 0 })
  in
  let next =
    Block.make mxn
      ~instrs:
        [ Instr.Iop (Instr.Iadd, p.ptr, p.ptr, Instr.Oimm blkb);
          Instr.Iop (Instr.Iadd, index, index, Instr.Oimm blk);
          Instr.Iop (Instr.Isub, cnt, cnt, Instr.Oimm blk);
        ]
      ~term:(Block.Jmp mxh)
  in
  let rescan_b = Block.make rescan ~instrs:[ Instr.Ildi (j, 0) ] ~term:(Block.Jmp rb) in
  let rb_b =
    Block.make rb
      ~instrs:
        ([ Instr.Fld (sz, xs, mem ~index:j ~scale:eb p.ptr) ]
        @ if p.has_abs then [ Instr.Fabs (sz, xa, xs) ] else [ Instr.Fmov (sz, xa, xs) ])
      ~term:
        (Block.Fbr
           { fsize = sz; cmp = Instr.Gt; lhs = xa; rhs = p.amax; ifso = upd; ifnot = rn })
  in
  let upd_b =
    Block.make upd
      ~instrs:
        [ Instr.Fmov (sz, p.amax, xa);
          Instr.Vbcast (sz, bmax, p.amax);
          Instr.Iop (Instr.Iadd, p.imax, index, Instr.Oreg j);
        ]
      ~term:(Block.Jmp rn)
  in
  let rn_b =
    Block.make rn
      ~instrs:[ Instr.Iop (Instr.Iadd, j, j, Instr.Oimm 1) ]
      ~term:
        (Block.Br { cmp = Instr.Lt; lhs = j; rhs = Instr.Oimm blk; ifso = rb; ifnot = mxn; dec = 0 })
  in
  (* broadcast the incoming maximum, route the preheader through the
     block loop, and leave the scalar loop as the tail *)
  let preheader = Cfg.find_block_exn f ln.Loopnest.preheader in
  Edit.append_instrs preheader [ Instr.Vbcast (sz, bmax, p.amax) ];
  preheader.Block.term <-
    Block.map_term_labels
      (fun l -> if l = ln.Loopnest.header then mxh else l)
      preheader.Block.term;
  Cfg.insert_after f ~after:ln.Loopnest.preheader
    [ head; body; next; rescan_b; rb_b; upd_b; rn_b ]

(** [try_apply compiled] rewrites the loop when the [SPECULATE] mark-up
    licenses it and the body matches the idiom; returns whether it
    fired. *)
let try_apply (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | Some ln when ln.Loopnest.speculate -> (
    match recognize compiled.Lower.func ln with
    | Some p ->
      rewrite compiled.Lower.func ln p;
      true
    | None -> false)
  | _ -> false
