exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_class what (r : Reg.t) cls =
  if r.Reg.cls <> cls then
    fail "%s: register %s should be %s" what (Reg.to_string r)
      (match cls with Reg.Gpr -> "a GPR" | Reg.Xmm -> "an XMM register")

let check_mem what (m : Instr.mem) =
  check_class what m.Instr.base Reg.Gpr;
  Option.iter (fun idx -> check_class what idx Reg.Gpr) m.Instr.index;
  (match m.Instr.scale with
  | 1 | 2 | 4 | 8 -> ()
  | s -> fail "%s: invalid scale %d" what s)

let check_instr instr =
  let what = Instr.to_string instr in
  let gpr r = check_class what r Reg.Gpr in
  let xmm r = check_class what r Reg.Xmm in
  let mem m = check_mem what m in
  match instr with
  | Instr.Ild (d, m) ->
    gpr d;
    mem m
  | Ist (m, s) ->
    gpr s;
    mem m
  | Imov (d, s) ->
    gpr d;
    gpr s
  | Ildi (d, _) -> gpr d
  | Iop (_, d, a, b) ->
    gpr d;
    gpr a;
    (match b with Oreg r -> gpr r | Oimm _ -> ())
  | Lea (d, m) ->
    gpr d;
    mem m
  | Fld (_, d, m) | Vld (_, d, m) ->
    xmm d;
    mem m
  | Fst (_, m, s) | Fstnt (_, m, s) | Vst (_, m, s) | Vstnt (_, m, s) ->
    xmm s;
    mem m
  | Fmov (_, d, s)
  | Vmov (_, d, s)
  | Vbcast (_, d, s)
  | Fabs (_, d, s)
  | Fsqrt (_, d, s)
  | Fneg (_, d, s)
  | Vabs (_, d, s)
  | Vsqrt (_, d, s) ->
    xmm d;
    xmm s
  | Fldi (_, d, _) | Vldi (_, d, _) -> xmm d
  | Fop (_, _, d, a, b) | Vop (_, _, d, a, b) | Vcmp (_, _, d, a, b) ->
    xmm d;
    xmm a;
    xmm b
  | Fopm (_, _, d, a, m) | Vopm (_, _, d, a, m) ->
    xmm d;
    xmm a;
    mem m
  | Vmovmsk (_, d, s) ->
    gpr d;
    xmm s
  | Vextract (sz, d, s, lane) ->
    xmm d;
    xmm s;
    if lane < 0 || lane >= Instr.lanes sz then
      fail "%s: lane %d out of range for precision" what lane
  | Vreduce (_, _, d, s) ->
    xmm d;
    xmm s
  | Touch (_, m) | Prefetch (_, m) -> mem m
  | Nop -> ()

let check_term labels b =
  let what = Printf.sprintf "block %s terminator" b.Block.label in
  List.iter
    (fun l -> if not (Hashtbl.mem labels l) then fail "%s: unknown target %S" what l)
    (Block.successors b.Block.term);
  match b.Block.term with
  | Block.Br { lhs; rhs; dec; _ } ->
    check_class what lhs Reg.Gpr;
    (match rhs with Instr.Oreg r -> check_class what r Reg.Gpr | Instr.Oimm _ -> ());
    if dec < 0 then fail "%s: negative fused decrement" what
  | Block.Fbr { lhs; rhs; _ } ->
    check_class what lhs Reg.Xmm;
    check_class what rhs Reg.Xmm
  | Block.Jmp _ | Block.Ret _ -> ()

let check (f : Cfg.func) =
  if f.Cfg.blocks = [] then fail "function %s has no blocks" f.Cfg.fname;
  (* Label set as a hash table: the duplicate scan and the successor
     checks in [check_term] are O(1) per lookup instead of O(blocks). *)
  let labels = Hashtbl.create (List.length f.Cfg.blocks) in
  List.iter
    (fun b ->
      let l = b.Block.label in
      if Hashtbl.mem labels l then fail "duplicate block label %S" l;
      Hashtbl.add labels l ())
    f.Cfg.blocks;
  List.iter
    (fun b ->
      List.iter check_instr b.Block.instrs;
      check_term labels b)
    f.Cfg.blocks;
  let has_ret =
    List.exists
      (fun b -> match b.Block.term with Block.Ret _ -> true | _ -> false)
      f.Cfg.blocks
  in
  if not has_ret then fail "function %s never returns" f.Cfg.fname

let check_physical (f : Cfg.func) =
  check f;
  Reg.Set.iter
    (fun (r : Reg.t) ->
      if not r.Reg.phys then fail "virtual register %s survived allocation" (Reg.to_string r);
      let limit =
        match r.Reg.cls with
        | Reg.Gpr -> 8 (* 6 allocatable + frame/stack pointers *)
        | Reg.Xmm -> Reg.allocatable Reg.Xmm
      in
      if r.Reg.id < 0 || r.Reg.id >= limit then
        fail "register %s outside the architectural file" (Reg.to_string r))
    (Cfg.all_regs f)
