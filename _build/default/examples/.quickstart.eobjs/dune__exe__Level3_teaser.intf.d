examples/level3_teaser.mli:
