(** Accumulator expansion (AE).

    A loop that accumulates into a single register serializes on the
    floating-point add latency: each add must wait for the previous
    one.  AE breaks the dependence by rotating the adds of the
    (unrolled, possibly vectorized) body over [k] accumulators, which
    are summed back into the original register in the [mid] block
    before the scalar cleanup runs.

    The transformation applies to every scalar reported by
    {!Ifko_analysis.Accuminfo} on the {e current} body, so it composes
    with SV (vector accumulators) and UR (more adds to rotate over).
    [k] is clamped to the number of adds present. *)

open Ifko_codegen
open Ifko_analysis

let apply (compiled : Lower.compiled) k =
  match compiled.Lower.loopnest with
  | None -> Ok ()
  | Some _ when k <= 1 -> Ok ()
  | Some ln -> (
    match Legality.accexp (Legality.analyze compiled) with
    | Error d -> Error d
    | Ok () ->
    let f = compiled.Lower.func in
    let accums = Accuminfo.analyze compiled in
    let body_labels = Loopnest.body_labels f ln in
    let preheader = Cfg.find_block_exn f ln.Loopnest.preheader in
    let mid = Cfg.find_block_exn f ln.Loopnest.mid in
    List.iter
      (fun (a : Accuminfo.accum) ->
        let k = min k a.Accuminfo.adds in
        if k > 1 then begin
          let r = a.Accuminfo.reg and sz = a.Accuminfo.fsize in
          (* Is [r] used as a vector (SV ran) or a scalar accumulator? *)
          let vectorial = ref false in
          List.iter
            (fun l ->
              List.iter
                (fun i ->
                  match i with
                  | Instr.Vop (_, _, d, _, _) when Reg.equal d r -> vectorial := true
                  | Instr.Vopm (_, _, d, _, _) when Reg.equal d r -> vectorial := true
                  | _ -> ())
                (Cfg.find_block_exn f l).Block.instrs)
            body_labels;
          let extras = List.init (k - 1) (fun _ -> Cfg.fresh_reg f Reg.Xmm) in
          let ring = Array.of_list (r :: extras) in
          (* Zero-initialize the extra accumulators in the preheader. *)
          Edit.append_instrs preheader
            (List.map
               (fun e ->
                 if !vectorial then Instr.Vldi (sz, e, 0.0) else Instr.Fldi (sz, e, 0.0))
               extras);
          (* Rotate the accumulating adds over the ring. *)
          let occurrence = ref 0 in
          let rewrite i =
            let rotate d a =
              if Reg.equal d r && Reg.equal a r then begin
                let nth = ring.(!occurrence mod k) in
                incr occurrence;
                Some nth
              end
              else None
            in
            match i with
            | Instr.Fop (sz', Instr.Fadd, d, a, b) -> (
              match rotate d a with
              | Some acc -> Instr.Fop (sz', Instr.Fadd, acc, acc, b)
              | None -> i)
            | Instr.Fopm (sz', Instr.Fadd, d, a, m) -> (
              match rotate d a with
              | Some acc -> Instr.Fopm (sz', Instr.Fadd, acc, acc, m)
              | None -> i)
            | Instr.Vop (sz', Instr.Fadd, d, a, b) -> (
              match rotate d a with
              | Some acc -> Instr.Vop (sz', Instr.Fadd, acc, acc, b)
              | None -> i)
            | Instr.Vopm (sz', Instr.Fadd, d, a, m) -> (
              match rotate d a with
              | Some acc -> Instr.Vopm (sz', Instr.Fadd, acc, acc, m)
              | None -> i)
            | i -> i
          in
          List.iter
            (fun l ->
              let b = Cfg.find_block_exn f l in
              b.Block.instrs <- List.map rewrite b.Block.instrs)
            body_labels;
          (* Fold the extras back into [r] before any vector reduction
             already queued in the mid block. *)
          Edit.prepend_instrs mid
            (List.map
               (fun e ->
                 if !vectorial then Instr.Vop (sz, Instr.Fadd, r, r, e)
                 else Instr.Fop (sz, Instr.Fadd, r, r, e))
               extras)
        end)
      accums;
    Ok ())
