type t = {
  live_in : (string, Reg.Set.t) Hashtbl.t;
  live_out : (string, Reg.Set.t) Hashtbl.t;
}

let get tbl label = Option.value ~default:Reg.Set.empty (Hashtbl.find_opt tbl label)

(* use/def summary of a whole block: [uses] are registers read before
   any write inside the block; [defs] are all registers written. *)
let block_summary (b : Block.t) =
  let uses = ref Reg.Set.empty and defs = ref Reg.Set.empty in
  let use r = if not (Reg.Set.mem r !defs) then uses := Reg.Set.add r !uses in
  let def r = defs := Reg.Set.add r !defs in
  List.iter
    (fun i ->
      List.iter use (Instr.uses i);
      List.iter def (Instr.defs i))
    b.Block.instrs;
  List.iter use (Block.term_uses b.Block.term);
  List.iter def (Block.term_defs b.Block.term);
  (!uses, !defs)

let compute (f : Cfg.func) =
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let summaries =
    List.map (fun b -> (b.Block.label, (b, block_summary b))) f.Cfg.blocks
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Iterate in reverse block order for fast convergence. *)
    List.iter
      (fun (label, (b, (uses, defs))) ->
        let out =
          List.fold_left
            (fun acc succ -> Reg.Set.union acc (get live_in succ))
            Reg.Set.empty
            (Block.successors b.Block.term)
        in
        let inn = Reg.Set.union uses (Reg.Set.diff out defs) in
        if not (Reg.Set.equal out (get live_out label)) then begin
          Hashtbl.replace live_out label out;
          changed := true
        end;
        if not (Reg.Set.equal inn (get live_in label)) then begin
          Hashtbl.replace live_in label inn;
          changed := true
        end)
      (List.rev summaries)
  done;
  { live_in; live_out }

let live_in t label = get t.live_in label
let live_out t label = get t.live_out label

let live_before_each t (b : Block.t) =
  (* Walk backward accumulating liveness, then reverse. *)
  let after_term = live_out t b.Block.label in
  let at_term =
    Reg.Set.union
      (Reg.Set.of_list (Block.term_uses b.Block.term))
      (Reg.Set.diff after_term (Reg.Set.of_list (Block.term_defs b.Block.term)))
  in
  let rec go live acc = function
    | [] -> acc
    | i :: before ->
      let live' =
        Reg.Set.union
          (Reg.Set.of_list (Instr.uses i))
          (Reg.Set.diff live (Reg.Set.of_list (Instr.defs i)))
      in
      go live' ((i, live) :: acc) before
  in
  go at_term [] (List.rev b.Block.instrs)
