lib/analysis/ptrinfo.ml: Block Cfg Ifko_codegen Instr List Loopnest Lower Reg
