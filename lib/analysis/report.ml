open Ifko_codegen

type t = {
  kernel_name : string;
  has_opt_loop : bool;
  vectorizable : bool;
  vec_reason : string;
  precision : Instr.fsize option;
  max_unroll : int;
  accumulators : Accuminfo.accum list;
  prefetch_arrays : Ptrinfo.moving list;
  output_arrays : string list;
  gpr_pressure : int;
  xmm_pressure : int;
  dependence : Depend.t;
  legal_sv : (unit, string) result;
  legal_unroll : (unit, string) result;
  legal_wnt : (unit, string) result;
}

let verdict = function
  | Ok () -> Ok ()
  | Error (d : Diag.t) -> Error d.Diag.message

let analyze (compiled : Lower.compiled) =
  let vec = Vecinfo.analyze compiled in
  let gpr_pressure, xmm_pressure = Lint.max_pressure compiled.Lower.func in
  let leg = Legality.analyze compiled in
  {
    kernel_name = compiled.Lower.source.Ifko_hil.Ast.k_name;
    has_opt_loop = compiled.Lower.loopnest <> None;
    vectorizable = vec.Vecinfo.vectorizable;
    vec_reason = vec.Vecinfo.reason;
    precision = vec.Vecinfo.precision;
    max_unroll = vec.Vecinfo.max_unroll;
    accumulators = Accuminfo.analyze compiled;
    prefetch_arrays = Ptrinfo.prefetch_targets compiled;
    output_arrays =
      List.filter_map
        (fun (a : Lower.array_param) -> if a.Lower.a_output then Some a.Lower.a_name else None)
        compiled.Lower.arrays;
    gpr_pressure;
    xmm_pressure;
    dependence = Legality.depend leg;
    legal_sv = verdict (Legality.vectorize leg);
    legal_unroll = verdict (Legality.unroll leg);
    legal_wnt = verdict (Legality.ntwrite leg);
  }

(* The kernel fingerprint the warm-start seeder matches on: a fixed,
   named, ordered numeric summary of what the analyses learned.  Two
   kernels with close vectors (daxpy/dscal) have similar optimization
   landscapes, so one's winning point is a good opening probe for the
   other.  Derived only from analysis results — never from measured
   performance — so it is stable across machines and simulator
   fidelities. *)
let features t =
  let b v = if v then 1.0 else 0.0 in
  let ok = function Ok () -> 1.0 | Error _ -> 0.0 in
  let f = float_of_int in
  let elt_bytes =
    match t.precision with Some Instr.S -> 4 | Some Instr.D -> 8 | None -> 0
  in
  let moving = t.prefetch_arrays in
  let total get = List.fold_left (fun acc m -> acc + get m) 0 moving in
  let count pred = List.length (List.filter pred moving) in
  let dep = t.dependence in
  [
    ("vectorizable", b t.vectorizable);
    ("elt_bytes", f elt_bytes);
    ("max_unroll", f t.max_unroll);
    ("accumulators", f (List.length t.accumulators));
    ("arrays", f (List.length moving));
    ("loads", f (total (fun m -> m.Ptrinfo.loads)));
    ("stores", f (total (fun m -> m.Ptrinfo.stores)));
    ("outputs", f (List.length t.output_arrays));
    ("stride_unit", f (count (fun m -> abs m.Ptrinfo.stride = elt_bytes)));
    ("stride_neg", f (count (fun m -> m.Ptrinfo.stride < 0)));
    ("gpr_pressure", f t.gpr_pressure);
    ("xmm_pressure", f t.xmm_pressure);
    ("legal_sv", ok t.legal_sv);
    ("legal_unroll", ok t.legal_unroll);
    ("legal_wnt", ok t.legal_wnt);
    ("dep_pairs", f (List.length dep.Depend.pairs));
    ("dep_blocking", f (List.length (Depend.blocking dep)));
  ]

let to_string t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "kernel           : %s\n" t.kernel_name;
  add "tunable loop     : %s\n" (if t.has_opt_loop then "yes" else "no");
  (if t.vectorizable then add "SIMD vectorizable: yes\n"
   else add "SIMD vectorizable: no (%s)\n" t.vec_reason);
  (match t.precision with
  | Some sz ->
    add "precision        : %s\n" (match sz with Instr.S -> "single" | Instr.D -> "double")
  | None -> ());
  add "max safe unroll  : %d\n" t.max_unroll;
  add "accumulators     : %d\n" (List.length t.accumulators);
  add "register pressure: %d GPR, %d XMM\n" t.gpr_pressure t.xmm_pressure;
  let legal what = function
    | Ok () -> add "%s: yes\n" what
    | Error why -> add "%s: no (%s)\n" what why
  in
  legal "SV legal         " t.legal_sv;
  legal "UR legal         " t.legal_unroll;
  legal "WNT legal        " t.legal_wnt;
  (let dep = t.dependence in
   if dep.Depend.has_loop then begin
     let blocking = Depend.blocking dep in
     add "dependence       : %d accesses, %d pairs, %d blocking\n"
       (List.length dep.Depend.accesses)
       (List.length dep.Depend.pairs)
       (List.length blocking);
     List.iter
       (fun (p : Depend.pair) ->
         add "  carried        : %s -> %s: %s\n"
           (Depend.access_name p.Depend.src)
           (Depend.access_name p.Depend.dst)
           (Depend.relation_to_string p.Depend.relation))
       blocking
   end);
  add "output arrays    : %s\n"
    (if t.output_arrays = [] then "-" else String.concat ", " t.output_arrays);
  List.iter
    (fun (m : Ptrinfo.moving) ->
      add "prefetch array   : %s (stride %+d B/iter, %d loads, %d stores)\n"
        m.Ptrinfo.array.Lower.a_name m.Ptrinfo.stride m.Ptrinfo.loads m.Ptrinfo.stores)
    t.prefetch_arrays;
  Buffer.contents buf
