(** Control-flow cleanup: branch chaining, useless-jump and
    useless-label elimination, and basic-block merging — "which, when
    applied together, merge basic blocks (critical after extensive
    loop unrolling)" (paper, Section 2.2.4). *)

(* Follow chains of empty blocks ending in unconditional jumps. *)
let rec resolve f seen label =
  if List.mem label seen then label
  else
    match Cfg.find_block f label with
    | Some { Block.instrs = []; term = Block.Jmp next; _ } ->
      resolve f (label :: seen) next
    | _ -> label

let thread_jumps (f : Cfg.func) =
  let changed = ref false in
  List.iter
    (fun b ->
      let retarget l =
        let l' = resolve f [ b.Block.label ] l in
        if l' <> l then changed := true;
        l'
      in
      b.Block.term <- Block.map_term_labels retarget b.Block.term)
    f.Cfg.blocks;
  !changed

let drop_unreachable (f : Cfg.func) =
  let reachable = Hashtbl.create 16 in
  let rec walk label =
    if not (Hashtbl.mem reachable label) then begin
      Hashtbl.replace reachable label ();
      match Cfg.find_block f label with
      | Some b -> List.iter walk (Block.successors b.Block.term)
      | None -> ()
    end
  in
  walk (Cfg.entry f).Block.label;
  let before = List.length f.Cfg.blocks in
  f.Cfg.blocks <- List.filter (fun b -> Hashtbl.mem reachable b.Block.label) f.Cfg.blocks;
  List.length f.Cfg.blocks <> before

(* Merge [a -> Jmp b] when [b] has exactly one predecessor and is not
   protected (loop-structure labels must survive for later passes). *)
let merge_blocks (f : Cfg.func) ~protect =
  let changed = ref false in
  let preds = Cfg.predecessors f in
  let pred_count l = List.length (Option.value ~default:[] (Hashtbl.find_opt preds l)) in
  let rec merge_into (a : Block.t) =
    match a.Block.term with
    | Block.Jmp next
      when next <> a.Block.label
           && (not (List.mem next protect))
           && pred_count next = 1 -> (
      match Cfg.find_block f next with
      | Some b ->
        a.Block.instrs <- a.Block.instrs @ b.Block.instrs;
        a.Block.term <- b.Block.term;
        Cfg.remove_block f next;
        changed := true;
        merge_into a
      | None -> ())
    | _ -> ()
  in
  (* Iterate by label and re-fetch: merging removes blocks, and a block
     already absorbed elsewhere must not steal its successor. *)
  List.iter
    (fun label ->
      match Cfg.find_block f label with Some b -> merge_into b | None -> ())
    (List.map (fun b -> b.Block.label) f.Cfg.blocks);
  !changed

let run ?(protect = []) (f : Cfg.func) =
  let c1 = thread_jumps f in
  let c2 = drop_unreachable f in
  let c3 = merge_blocks f ~protect in
  c1 || c2 || c3
