let available_jobs () = Domain.recommended_domain_count ()

module Pool = struct
  type task = unit -> unit

  type t = {
    jobs : int;
    mutex : Mutex.t;
    work : Condition.t;  (** workers wait here for tasks (or shutdown) *)
    finished : Condition.t;  (** submitters wait here for their batch *)
    queue : task Queue.t;
    mutable stop : bool;
    mutable workers : unit Domain.t array;
  }

  let rec worker pool =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* shutdown *)
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      worker pool
    end

  let create ~jobs =
    let jobs = max 1 (min jobs 64) in
    let pool =
      {
        jobs;
        mutex = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        queue = Queue.create ();
        stop = false;
        workers = [||];
      }
    in
    if jobs > 1 then
      pool.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
    pool

  let jobs t = t.jobs

  (* Tasks never raise: each writes an Ok/Error slot, and the submitter
     re-raises the lowest-index Error once the batch has settled, so
     failure behaviour does not depend on scheduling.

     Each batch carries its own [remaining] counter, so several
     submitters — e.g. the serve daemon's concurrent tune requests —
     can feed one pool at once: a submitter wakes as soon as *its*
     tasks are done, while the workers interleave everyone's tasks. *)
  let run t n f =
    if n <= 0 then [||]
    else if t.jobs <= 1 || n = 1 then begin
      let results = Array.make n (f 0) in
      for i = 1 to n - 1 do
        results.(i) <- f i
      done;
      results
    end
    else begin
      let slots = Array.make n None in
      let remaining = ref n in
      let task i () =
        let r = try Ok (f i) with e -> Error e in
        Mutex.lock t.mutex;
        slots.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (task i) t.queue
      done;
      Condition.broadcast t.work;
      (* The submitter helps while its batch is outstanding, instead of
         parking: it pops and runs queued tasks — its own or another
         submitter's — and only waits when the queue is drained.  This
         adds the submitting thread to the worker set (one more lane
         for everyone's compilations) and lets concurrent tunes' probe
         batches merge into one shared work stream.  Results are
         written to input-indexed slots, so helping never affects
         outputs. *)
      while !remaining > 0 do
        if not (Queue.is_empty t.queue) then begin
          let task = Queue.pop t.queue in
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex
        end
        else Condition.wait t.finished t.mutex
      done;
      Mutex.unlock t.mutex;
      for i = 0 to n - 1 do
        match slots.(i) with Some (Error e) -> raise e | _ -> ()
      done;
      Array.init n (fun i ->
          match slots.(i) with Some (Ok v) -> v | _ -> assert false)
    end

  let map t f xs =
    let arr = Array.of_list xs in
    Array.to_list (run t (Array.length arr) (fun i -> f arr.(i)))

  let shutdown t =
    if t.workers <> [||] then begin
      Mutex.lock t.mutex;
      t.stop <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.workers;
      t.workers <- [||]
    end

  let with_pool ~jobs f =
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let map ~jobs f xs = Pool.with_pool ~jobs (fun p -> Pool.map p f xs)
