(** Peephole optimizations.

    Exploits the fact that the modelled ISA, like x86, is not a true
    load/store architecture: folding a load into the memory operand of
    the arithmetic instruction that consumes it frees a register —
    which matters when the ISA exposes only eight (paper,
    Section 2.2.4).  Also cleans trivial identities left by lowering
    and earlier transformations. *)

open Ifko_analysis

(* Fold [Fld t, m; ...; Fop op d, a, t] into [Fopm op d, a, m] when [t]
   has exactly that one use in the block, is not live out, and neither
   [t] nor [m]'s address registers are redefined in between (stores in
   between block the fold: they might alias [m]). *)
let fold_loads (b : Block.t) live_out =
  let changed = ref false in
  let arr = Array.of_list b.Block.instrs in
  let n = Array.length arr in
  let killed = Array.make n false in
  let uses_count r =
    let c = ref 0 in
    Array.iteri
      (fun i instr ->
        if not killed.(i) then
          List.iter (fun u -> if Reg.equal u r then incr c) (Instr.uses instr))
      arr;
    List.iter (fun u -> if Reg.equal u r then incr c) (Block.term_uses b.Block.term);
    !c
  in
  for i = 0 to n - 1 do
    if not killed.(i) then
      match arr.(i) with
      | (Instr.Fld (sz, t, m) | Instr.Vld (sz, t, m)) when not (Reg.Set.mem t live_out) ->
        let vector = match arr.(i) with Instr.Vld _ -> true | _ -> false in
        if uses_count t = 1 then begin
          (* find the single use; check the window is clean *)
          let rec scan j blocked =
            if j >= n || blocked then ()
            else if killed.(j) then scan (j + 1) blocked
            else
              let instr = arr.(j) in
              let defs = Instr.defs instr in
              let clobbers =
                List.exists
                  (fun d ->
                    Reg.equal d t || Reg.equal d m.Instr.base
                    || match m.Instr.index with Some x -> Reg.equal d x | None -> false)
                  defs
              in
              match instr with
              | Instr.Fop (sz', op, d, a, u)
                when (not vector) && sz' = sz && Reg.equal u t && not (Reg.equal a t) ->
                arr.(j) <- Instr.Fopm (sz', op, d, a, m);
                killed.(i) <- true;
                changed := true
              | Instr.Vop (sz', op, d, a, u)
                when vector && sz' = sz && Reg.equal u t && not (Reg.equal a t) ->
                arr.(j) <- Instr.Vopm (sz', op, d, a, m);
                killed.(i) <- true;
                changed := true
              | instr ->
                let blocked' =
                  clobbers || Instr.is_store instr
                  || List.exists (Reg.equal t) (Instr.uses instr)
                in
                scan (j + 1) blocked'
          in
          scan (i + 1) false
        end
      | _ -> ()
  done;
  if !changed then begin
    b.Block.instrs <-
      List.filteri (fun i _ -> not killed.(i)) (Array.to_list arr)
  end;
  !changed

(* Trivial identities. *)
let simplify (b : Block.t) =
  let changed = ref false in
  b.Block.instrs <-
    List.filter_map
      (fun i ->
        match i with
        | Instr.Iop (Instr.Iadd, d, s, Instr.Oimm 0) when Reg.equal d s ->
          changed := true;
          None
        | Instr.Iop (Instr.Isub, d, s, Instr.Oimm 0) when Reg.equal d s ->
          changed := true;
          None
        | Instr.Imov (d, s) when Reg.equal d s ->
          changed := true;
          None
        | Instr.Fmov (_, d, s) when Reg.equal d s ->
          changed := true;
          None
        | Instr.Vmov (_, d, s) when Reg.equal d s ->
          changed := true;
          None
        | Instr.Nop ->
          changed := true;
          None
        | i -> Some i)
      b.Block.instrs;
  !changed

let run (f : Cfg.func) =
  let live = Liveness.compute f in
  List.fold_left
    (fun acc b ->
      let c1 = fold_loads b (Liveness.live_out live b.Block.label) in
      let c2 = simplify b in
      acc || c1 || c2)
    false f.Cfg.blocks
