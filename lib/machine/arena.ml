(* Geometry-keyed pool of Memsys instances.

   A Memsys.t for a 1 MB L2 is ~300 KB of arrays, and the timers used
   to build one per measurement — for the sampled fidelity path that
   construction became a dominant share of the fixed per-measure floor.
   Instances carry no identity beyond their mutable state, and
   [Memsys.reset ~flush] / [Memsys.restore] are verified bit-identical
   to fresh construction (including internal scan order), so a borrowed
   instance behaves exactly like a new one once the caller has put it
   in a known state.

   Contract: [release] does NOT clean the instance — every timer path
   already begins by resetting or restoring into the machine (it must,
   even on a fresh instance, to pick its context), so scrubbing here
   would be pure waste.  The flip side: [acquire] returns an instance
   in an arbitrary prior state, and callers must not read from it
   before that reset/restore.  Exceptions mid-measure are safe to
   release too (Fun.protect in the timers): a trapped instance is
   arbitrary state like any other, and the next reset re-establishes
   the invariant.

   Pools are keyed by [Config.geometry] — the same canonical string the
   checkpoint store uses — so two configs share instances exactly when
   every timing-relevant parameter agrees.  The pool is bounded per
   geometry; beyond that instances are simply dropped for the GC. *)

let max_pooled_per_geometry = 32

type stats = { acquires : int; creates : int; pooled : int }

let mutex = Mutex.create ()
let pools : (string, Memsys.t list ref) Hashtbl.t = Hashtbl.create 7
let n_pooled = ref 0
let n_acquires = ref 0
let n_creates = ref 0

let acquire cfg =
  let key = Config.geometry cfg in
  Mutex.lock mutex;
  incr n_acquires;
  let reused =
    match Hashtbl.find_opt pools key with
    | Some ({ contents = m :: rest } as cell) ->
      cell := rest;
      decr n_pooled;
      Some m
    | _ ->
      incr n_creates;
      None
  in
  Mutex.unlock mutex;
  match reused with Some m -> m | None -> Memsys.create cfg

let release m =
  let key = Config.geometry (Memsys.config m) in
  Mutex.lock mutex;
  let cell =
    match Hashtbl.find_opt pools key with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.add pools key cell;
      cell
  in
  if List.length !cell < max_pooled_per_geometry then begin
    cell := m :: !cell;
    incr n_pooled
  end;
  Mutex.unlock mutex

let with_machine cfg f =
  let m = acquire cfg in
  Fun.protect ~finally:(fun () -> release m) (fun () -> f m)

let stats () =
  Mutex.lock mutex;
  let s = { acquires = !n_acquires; creates = !n_creates; pooled = !n_pooled } in
  Mutex.unlock mutex;
  s

let clear () =
  Mutex.lock mutex;
  Hashtbl.reset pools;
  n_pooled := 0;
  n_acquires := 0;
  n_creates := 0;
  Mutex.unlock mutex
