examples/context_adaptation.mli:
