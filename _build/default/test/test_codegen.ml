(* Lowering tests: canonical loop shape, metadata, and executable
   correctness of the naive (untransformed) code. *)
open Ifko_blas

let compile id = Hil_sources.compile id

let test_lower_all_validates () =
  List.iter
    (fun id -> Validate.check (compile id).Ifko_codegen.Lower.func)
    Defs.all

let test_loopnest_present () =
  List.iter
    (fun id ->
      let c = compile id in
      Alcotest.(check bool)
        (Defs.name id ^ " has loopnest")
        true
        (c.Ifko_codegen.Lower.loopnest <> None))
    Defs.all

let test_canonical_shape () =
  let c = compile { Defs.routine = Defs.Dot; prec = Instr.D } in
  let f = c.Ifko_codegen.Lower.func in
  match c.Ifko_codegen.Lower.loopnest with
  | None -> Alcotest.fail "no loopnest"
  | Some ln ->
    List.iter
      (fun l ->
        Alcotest.(check bool) (l ^ " exists") true (Cfg.find_block f l <> None))
      [ ln.Ifko_codegen.Loopnest.preheader; ln.Ifko_codegen.Loopnest.header;
        ln.Ifko_codegen.Loopnest.latch; ln.Ifko_codegen.Loopnest.mid;
        ln.Ifko_codegen.Loopnest.exit ];
    Alcotest.(check int) "per_iter starts at 1" 1 ln.Ifko_codegen.Loopnest.per_iter;
    Alcotest.(check int) "dot body is one block" 1
      (List.length (Ifko_codegen.Loopnest.body_labels f ln));
    (* header guards with a < comparison on the countdown register *)
    (match (Cfg.find_block_exn f ln.Ifko_codegen.Loopnest.header).Block.term with
    | Block.Br { cmp = Instr.Lt; lhs; rhs = Instr.Oimm 1; _ } ->
      Alcotest.(check bool) "counts the countdown reg" true
        (Reg.equal lhs ln.Ifko_codegen.Loopnest.cnt)
    | _ -> Alcotest.fail "header shape");
    Alcotest.(check bool) "template captured" true
      (ln.Ifko_codegen.Loopnest.template <> [])

let test_iamax_natural_loop_includes_newmax () =
  let c = compile { Defs.routine = Defs.Iamax; prec = Instr.S } in
  let f = c.Ifko_codegen.Lower.func in
  match c.Ifko_codegen.Lower.loopnest with
  | None -> Alcotest.fail "no loopnest"
  | Some ln ->
    let body = Ifko_codegen.Loopnest.body_labels f ln in
    Alcotest.(check bool) "multi-block body" true (List.length body > 2);
    Alcotest.(check bool) "NEWMAX inside the natural loop" true
      (List.mem "NEWMAX" body)

let test_arrays_metadata () =
  let c = compile { Defs.routine = Defs.Axpy; prec = Instr.S } in
  let arrays = c.Ifko_codegen.Lower.arrays in
  Alcotest.(check int) "two arrays" 2 (List.length arrays);
  let y = List.find (fun (a : Ifko_codegen.Lower.array_param) -> a.Ifko_codegen.Lower.a_name = "Y") arrays in
  Alcotest.(check bool) "Y is output" true y.Ifko_codegen.Lower.a_output;
  let x = List.find (fun (a : Ifko_codegen.Lower.array_param) -> a.Ifko_codegen.Lower.a_name = "X") arrays in
  Alcotest.(check bool) "X is input" false x.Ifko_codegen.Lower.a_output;
  Alcotest.(check bool) "single precision" true (x.Ifko_codegen.Lower.a_elem = Instr.S)

(* The naive lowering must already compute correct results. *)
let test_naive_execution_all () =
  List.iter
    (fun id ->
      List.iter
        (fun n ->
          let env = Workload.make_env id ~seed:3 n in
          let expect = Workload.expectation id ~seed:3 n in
          let tol = Workload.tolerance id ~n in
          match
            Ifko_sim.Verify.check ~tol ~ret_fsize:id.Defs.prec
              (compile id).Ifko_codegen.Lower.func env expect
          with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Printf.sprintf "%s n=%d: %s" (Defs.name id) n e))
        [ 0; 1; 2; 17 ])
    Defs.all

let test_lower_rejects_int_division () =
  let src =
    {|KERNEL t(N : int) RETURNS int
VARS a : int;
BEGIN
  a = N / 2;
  RETURN a;
END|}
  in
  match
    Ifko_codegen.Lower.lower (Ifko_hil.Typecheck.check (Ifko_hil.Parser.parse_kernel src))
  with
  | exception Ifko_codegen.Lower.Error _ -> ()
  | _ -> Alcotest.fail "integer division should be rejected"

let test_descending_loop_trip () =
  (* LOOP i = N, 0, -1 runs exactly N times *)
  let src =
    {|KERNEL t(N : int, X : ptr double OUTPUT)
VARS x : double;
BEGIN
  OPTLOOP i = N, 0, -1
  LOOP_BODY
    x = X[0];
    x = x + 1.0;
    X[0] = x;
    X += 1;
  LOOP_END
END|}
  in
  let c =
    Ifko_codegen.Lower.lower (Ifko_hil.Typecheck.check (Ifko_hil.Parser.parse_kernel src))
  in
  let env = Ifko_sim.Env.create () in
  Ifko_sim.Env.bind_int env "N" 5;
  Ifko_sim.Env.alloc_array env "X" Instr.D 8;
  Ifko_sim.Env.fill env "X" (fun i -> float_of_int i);
  ignore (Ifko_sim.Exec.run c.Ifko_codegen.Lower.func env : Ifko_sim.Exec.result);
  for i = 0 to 7 do
    let expect = if i < 5 then float_of_int i +. 1.0 else float_of_int i in
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "X[%d]" i)
      expect
      (Ifko_sim.Env.get_elem env "X" i)
  done

let test_scoped_if_semantics () =
  (* if/else diamond including the else branch *)
  let src =
    {|KERNEL t(N : int, X : ptr double OUTPUT)
VARS x : double;
BEGIN
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    IF (x < 0.0) THEN
      x = 0.0 - x;
    ELSE
      x = x * 2.0;
    ENDIF
    X[0] = x;
    X += 1;
  LOOP_END
END|}
  in
  let c =
    Ifko_codegen.Lower.lower (Ifko_hil.Typecheck.check (Ifko_hil.Parser.parse_kernel src))
  in
  let env = Ifko_sim.Env.create () in
  Ifko_sim.Env.bind_int env "N" 6;
  Ifko_sim.Env.alloc_array env "X" Instr.D 6;
  Ifko_sim.Env.fill env "X" (fun i -> if i mod 2 = 0 then -.float_of_int i else float_of_int i);
  ignore (Ifko_sim.Exec.run c.Ifko_codegen.Lower.func env : Ifko_sim.Exec.result);
  for i = 0 to 5 do
    let expect = if i mod 2 = 0 then float_of_int i else 2.0 *. float_of_int i in
    Alcotest.(check (float 1e-12)) (Printf.sprintf "X[%d]" i) expect
      (Ifko_sim.Env.get_elem env "X" i)
  done

let test_straightforward_iamax_agrees () =
  (* the scoped-if iamax computes the same answers as Figure 6(b) *)
  List.iter
    (fun prec ->
      let id = { Defs.routine = Defs.Iamax; prec } in
      let a = Hil_sources.compile id and b = Hil_sources.compile_straightforward id in
      List.iter
        (fun n ->
          let run c =
            let env = Workload.make_env id ~seed:8 n in
            (Ifko_sim.Exec.run ~ret_fsize:prec c.Ifko_codegen.Lower.func env).Ifko_sim.Exec.ret
          in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d same index" n)
            true
            (run a = run b))
        [ 0; 1; 2; 33; 400 ])
    [ Instr.S; Instr.D ]

let suite =
  [ Alcotest.test_case "lowered code validates" `Quick test_lower_all_validates;
    Alcotest.test_case "loopnest present" `Quick test_loopnest_present;
    Alcotest.test_case "canonical loop shape" `Quick test_canonical_shape;
    Alcotest.test_case "iamax natural loop" `Quick test_iamax_natural_loop_includes_newmax;
    Alcotest.test_case "array metadata" `Quick test_arrays_metadata;
    Alcotest.test_case "naive execution correct" `Quick test_naive_execution_all;
    Alcotest.test_case "int division rejected" `Quick test_lower_rejects_int_division;
    Alcotest.test_case "descending loop trips" `Quick test_descending_loop_trip;
    Alcotest.test_case "scoped if semantics" `Quick test_scoped_if_semantics;
    Alcotest.test_case "straightforward iamax" `Quick test_straightforward_iamax_agrees;
  ]
