(** Loop-control optimization (LC).

    Rearranges the loop's control so the per-iteration overhead drops
    from three micro-operations (counter subtract, compare-and-branch
    in the header, jump back) to a single fused count-down-and-branch
    at the bottom of the loop — the x86 [sub/jcc] macro-fusion (or
    [dec/jnz]) idiom.  The header test is kept as a one-time guard, so
    the transformation is always legal on the canonical loop shape.

    Applied to the main loop and, when present, the scalar cleanup
    loop. *)

open Ifko_codegen

(* Invert one canonical loop given its header and latch labels and the
   per-iteration consumption [k]. *)
let invert f ~header ~latch ~cnt k =
  let header_block = Cfg.find_block_exn f header in
  match header_block.Block.term with
  | Block.Br { cmp = Instr.Lt; lhs; rhs = Instr.Oimm _; ifso = exit_l; ifnot = entry; dec = 0 }
    when Reg.equal lhs cnt -> (
    let latch_block = Cfg.find_block_exn f latch in
    match latch_block.Block.term with
    | Block.Jmp back when back = header ->
      (* Drop the counter subtract from the latch; fuse it into the
         back branch.  The index update (if any) stays. *)
      latch_block.Block.instrs <-
        List.filter
          (fun i ->
            match i with
            | Instr.Iop (Instr.Isub, d, s, Instr.Oimm _)
              when Reg.equal d cnt && Reg.equal s cnt -> false
            | _ -> true)
          latch_block.Block.instrs;
      latch_block.Block.term <-
        Block.Br
          { cmp = Instr.Ge; lhs = cnt; rhs = Instr.Oimm k; ifso = entry; ifnot = exit_l; dec = k };
      true
    | _ -> false)
  | _ -> false

let apply (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> ()
  | Some ln ->
    let f = compiled.Lower.func in
    let fused =
      invert f ~header:ln.Loopnest.header ~latch:ln.Loopnest.latch ~cnt:ln.Loopnest.cnt
        ln.Loopnest.per_iter
    in
    (match ln.Loopnest.cleanup with
    | Some (cheader, clatch) ->
      ignore (invert f ~header:cheader ~latch:clatch ~cnt:ln.Loopnest.cnt 1 : bool)
    | None -> ());
    if fused then ln.Loopnest.lc_fused <- true
