(* Key-prefix-sharded probe store: N independent Store journals in one
   directory, each with its own mutex, so concurrent writers (the
   daemon's in-flight tunes, or several replica daemons) never contend
   on a single journal.  Keys are hex MD5 digests, so the first byte is
   uniform and `first_byte mod shards` balances the shards.

   On top of the shards sits a single-flight table: when several
   concurrent tunes miss on the *same* key, one computes and the rest
   wait for its result instead of duplicating the (expensive) probe.

   Layout of a store directory:
     store.meta       {"ifko_shard_store":1,"shards":N}
     shard-00.jsonl   Store journals (header + entries)
     ...
   The shard count is fixed at creation and read back from store.meta —
   opening with a different ?shards simply follows the directory, so
   keys keep hashing to the journal that holds them. *)

module Store = Ifko_store.Store
module Json = Store.Json

type cell = { mutable outcome : Store.outcome option }

type t = {
  dir : string;
  replica : bool;
  shards : Store.t array;
  mu : Mutex.t;  (* guards counters and the flight table *)
  cv : Condition.t;
  flight : (string, cell) Hashtbl.t;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable join_count : int;  (* cached calls answered by joining a flight *)
}

let meta_file dir = Filename.concat dir "store.meta"
let shard_file dir i = Filename.concat dir (Printf.sprintf "shard-%02d.jsonl" i)

let read_meta dir =
  let path = meta_file dir in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let line = try input_line ic with End_of_file -> "" in
    close_in_noerr ic;
    match Json.parse line with
    | exception Json.Bad -> None
    | fields ->
      (match (Json.num fields "ifko_shard_store", Json.num fields "shards") with
      | Some _, Some n when n >= 1.0 -> Some (int_of_float n)
      | _ -> None)
  end

let write_meta dir ~shards =
  let oc = open_out_bin (meta_file dir) in
  output_string oc
    (Json.render
       [ ("ifko_shard_store", Json.N 1.0); ("shards", Json.N (float_of_int shards)) ]
    ^ "\n");
  close_out oc

let open_ ?seed ?(shards = 8) ?(replica = false) ?clock dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Shard_store.open_: %s exists and is not a directory" dir);
  let shards =
    match read_meta dir with
    | Some n -> n (* the directory knows its own geometry *)
    | None ->
      let shards = max 1 (min shards 256) in
      write_meta dir ~shards;
      shards
  in
  {
    dir;
    replica;
    shards = Array.init shards (fun i -> Store.open_ ?seed ?clock (shard_file dir i));
    mu = Mutex.create ();
    cv = Condition.create ();
    flight = Hashtbl.create 32;
    hit_count = 0;
    miss_count = 0;
    join_count = 0;
  }

let close t = Array.iter Store.close t.shards
let dir t = t.dir
let shard_count t = Array.length t.shards

(* Keys are hex MD5; fall back to a generic hash for foreign keys. *)
let shard_index t key =
  let b =
    if String.length key >= 2 then
      match int_of_string_opt ("0x" ^ String.sub key 0 2) with
      | Some b -> b
      | None -> Hashtbl.hash key land 0xff
    else Hashtbl.hash key land 0xff
  in
  b mod Array.length t.shards

let shard t key = t.shards.(shard_index t key)

let count_hit t hit =
  Mutex.lock t.mu;
  if hit then t.hit_count <- t.hit_count + 1 else t.miss_count <- t.miss_count + 1;
  Mutex.unlock t.mu

(* Replica mode: a miss may just mean another daemon journaled the
   entry after we loaded — fold in the journal's new lines and retry
   once before conceding the miss. *)
let find_entry_nocount t ~key =
  let sh = shard t key in
  match Store.find_entry sh ~key with
  | Some _ as r -> r
  | None when t.replica ->
    Store.refresh sh;
    Store.find_entry sh ~key
  | None -> None

let find_entry t ~key =
  let r = find_entry_nocount t ~key in
  count_hit t (r <> None);
  r

let find t ~key = Option.map (fun (o, _, _) -> o) (find_entry t ~key)

let add t ~key ~params ~prov outcome = Store.add (shard t key) ~key ~params ~prov outcome

(* Read-only fold over every shard in index order (each shard folds in
   sorted-key order), so the scan is deterministic for a given set of
   entries regardless of which daemon appended them. *)
let fold_entries t ~init ~f =
  Array.fold_left (fun acc sh -> Store.fold_entries sh ~init:acc ~f) init t.shards

(* Single-flight memoization: the first misser of a key computes it,
   concurrent missers of the same key block until the leader finishes
   and share its outcome.  If the leader dies, one waiter takes over
   (recursing re-checks the store first, so nothing is lost).  This is
   what makes N clients tuning the same cold kernel cost one tune. *)
let rec cached t ~key ~params ~prov f =
  match find_entry_nocount t ~key with
  | Some (o, _, _) ->
    count_hit t true;
    o
  | None ->
    Mutex.lock t.mu;
    (match Hashtbl.find_opt t.flight key with
    | Some c ->
      t.join_count <- t.join_count + 1;
      let rec wait () =
        match c.outcome with
        | Some o ->
          t.hit_count <- t.hit_count + 1;
          Mutex.unlock t.mu;
          o
        | None ->
          if not (Hashtbl.mem t.flight key) then begin
            (* leader failed; take over *)
            Mutex.unlock t.mu;
            cached t ~key ~params ~prov f
          end
          else begin
            Condition.wait t.cv t.mu;
            wait ()
          end
      in
      wait ()
    | None ->
      let c = { outcome = None } in
      Hashtbl.add t.flight key c;
      t.miss_count <- t.miss_count + 1;
      Mutex.unlock t.mu;
      let finish () =
        Hashtbl.remove t.flight key;
        Condition.broadcast t.cv
      in
      (match f () with
      | exception e ->
        Mutex.lock t.mu;
        finish ();
        Mutex.unlock t.mu;
        raise e
      | o ->
        add t ~key ~params ~prov o;
        Mutex.lock t.mu;
        c.outcome <- Some o;
        finish ();
        Mutex.unlock t.mu;
        o))

let hits t = t.hit_count
let misses t = t.miss_count
let joins t = t.join_count
let entries t = Array.fold_left (fun acc sh -> acc + Store.entries sh) 0 t.shards

let refresh t = if t.replica then Array.iter Store.refresh t.shards

let compact t = Array.iter Store.compact t.shards

(* Size budget splits evenly across shards — hex-digest keys spread
   uniformly, so per-shard budgets approximate the global one without
   any cross-shard coordination (each shard evicts under its own
   mutex). *)
let evict ?max_bytes ?max_age ~now t =
  let per_shard = Option.map (fun b -> max 1 (b / Array.length t.shards)) max_bytes in
  Array.fold_left
    (fun acc sh -> acc + Store.evict ?max_bytes:per_shard ?max_age ~now sh)
    0 t.shards

type ckpt_stat = { ck_machine : string; ck_snapshots : int; ck_transients : int }

type stat = {
  sh_dir : string;
  sh_shards : Store.stat list;
  sh_entries : int;
  sh_bytes : int;
  sh_corrupt : int;
  sh_torn : int;
  sh_hits : int;
  sh_misses : int;
  sh_joins : int;
  sh_ckpts : ckpt_stat list;
}

(* The serve daemon persists warm-state checkpoints next to the shards
   (one ckpt-<machine> directory each: <key>.ckpt blobs plus a
   transients.jsonl of resume-transient scalars).  Counting them here
   makes `ifko store stat` show how much warm-up/transient work a
   daemon restart will be able to skip. *)
let ckpt_stats_of_dir dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list entries
  |> List.filter_map (fun name ->
         let path = Filename.concat dir name in
         if String.length name > 5 && String.sub name 0 5 = "ckpt-" && Sys.is_directory path
         then begin
           let files = try Sys.readdir path with Sys_error _ -> [||] in
           let snapshots =
             Array.fold_left
               (fun acc f -> if Filename.check_suffix f ".ckpt" then acc + 1 else acc)
               0 files
           in
           let transients =
             match open_in (Filename.concat path "transients.jsonl") with
             | exception Sys_error _ -> 0
             | ic ->
               let n = ref 0 in
               (try
                  while true do
                    ignore (input_line ic);
                    incr n
                  done
                with End_of_file -> ());
               close_in ic;
               !n
           in
           Some
             { ck_machine = String.sub name 5 (String.length name - 5);
               ck_snapshots = snapshots; ck_transients = transients }
         end
         else None)
  |> List.sort (fun a b -> compare a.ck_machine b.ck_machine)

let stat t =
  let shards = Array.to_list (Array.map Store.stat t.shards) in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 shards in
  Mutex.lock t.mu;
  let hits = t.hit_count and misses = t.miss_count and joins = t.join_count in
  Mutex.unlock t.mu;
  {
    sh_dir = t.dir;
    sh_shards = shards;
    sh_entries = sum (fun s -> s.Store.st_entries);
    sh_bytes = sum (fun s -> s.Store.st_bytes);
    sh_corrupt = sum (fun s -> s.Store.st_corrupt);
    sh_torn = sum (fun s -> s.Store.st_torn);
    sh_hits = hits;
    sh_misses = misses;
    sh_joins = joins;
    sh_ckpts = ckpt_stats_of_dir t.dir;
  }

(* Same conventions as Store.stat_json / Diag.to_json: every field
   always present, one object (here with a per-shard array inside). *)
let stat_fields s =
  [ ("dir", Json.S s.sh_dir);
    ("shards", Json.N (float_of_int (List.length s.sh_shards)));
    ("entries", Json.N (float_of_int s.sh_entries));
    ("bytes", Json.N (float_of_int s.sh_bytes));
    ("corrupt_lines", Json.N (float_of_int s.sh_corrupt));
    ("torn_lines", Json.N (float_of_int s.sh_torn));
    ("hits", Json.N (float_of_int s.sh_hits));
    ("misses", Json.N (float_of_int s.sh_misses));
    ("inflight_joins", Json.N (float_of_int s.sh_joins));
    ("per_shard", Json.A (List.map (fun st -> Json.O (Store.stat_fields st)) s.sh_shards));
    ( "ckpt_dirs",
      Json.A
        (List.map
           (fun c ->
             Json.O
               [ ("machine", Json.S c.ck_machine);
                 ("snapshots", Json.N (float_of_int c.ck_snapshots));
                 ("transients", Json.N (float_of_int c.ck_transients));
               ])
           s.sh_ckpts) );
  ]

let stat_json s = Json.render (stat_fields s)

(* Directory-level summary without a live daemon (for `ifko store stat`
   on a shard directory). *)
let stat_of_dir dir =
  match read_meta dir with
  | None -> None
  | Some _ ->
    let t = open_ dir in
    let s = stat t in
    close t;
    Some s
