(** Persistent, content-addressed store of empirical tuning results.

    Every probed point of the search costs a full FKO invocation plus a
    verification run and a simulated timing — the expensive part of the
    whole framework.  This store makes those results durable: the key
    is a digest of everything the outcome depends on (the lowered LIL
    kernel, the machine configuration, the timing context, the problem
    size, the workload seed and the parameter point), the value is the
    probe outcome with provenance.

    On disk the store is an append-only JSON-lines journal: one header
    line recording the schema version and workload seed, then one
    self-contained record per probed point.  Appends are a single
    flushed write of one complete line under a mutex, so worker domains
    can share one handle — and, because the file is opened with
    [O_APPEND], several {e processes} can append to the same journal
    (replica mode; see {!refresh}).  A crash mid-write leaves at most
    one torn trailing line, which the loader tolerates (corrupt or
    truncated lines are counted and skipped, never fatal).  [compact]
    rewrites the journal with one record per key (last wins) via a temp
    file + atomic rename. *)

(** Minimal JSON used for the journal and the serve protocol: the
    writer emits flat objects of string/number/bool fields; the parser
    accepts nested objects and arrays too. *)
module Json : sig
  type value =
    | S of string
    | N of float
    | B of bool
    | Null
    | O of (string * value) list
    | A of value list

  val render : (string * value) list -> string
  (** One-line rendering of an object (no trailing newline). *)

  val render_value : value -> string

  val number : float -> string
  (** The number format [render] uses: integral floats print as
      integers, everything else as [%.17g] (bit-exact round-trip). *)

  exception Bad

  val parse : string -> (string * value) list
  (** Parse one line holding exactly one object.
      @raise Bad on anything else. *)

  val str : (string * value) list -> string -> string option
  val num : (string * value) list -> string -> float option
  val bool : (string * value) list -> string -> bool option
end

(** Outcome of one probe, as journaled. *)
type outcome =
  | Timed of { mflops : float; cycles : float }
      (** compiled, verified, timed; [mflops] is derived from [cycles]
          but both are stored so either view reloads exactly *)
  | Test_failed  (** compiled but computed wrong answers *)
  | Illegal  (** the pipeline rejected the parameter point *)

type t
(** An open store: the in-memory index plus the append channel. *)

val open_ : ?seed:int -> ?clock:(unit -> float) -> string -> t
(** [open_ ?seed ?clock path] loads the journal at [path] (creating it,
    with a header recording [seed], if absent).  Corrupt lines are
    skipped and counted, so a journal truncated by a crash loads fine.
    [clock] (e.g. [Unix.time]) timestamps every subsequent {!add} for
    the age-based {!evict} policy; the default clock stamps 0 and emits
    no timestamp field, keeping offline journals byte-deterministic. *)

val close : t -> unit
(** Flush and close the append channel.  Further [add]s reopen it. *)

val path : t -> string

val seed : t -> int option
(** The workload seed recorded in the journal header, if any. *)

val find : t -> key:string -> outcome option
(** Thread-safe lookup; maintains the {!hits}/{!misses} counters. *)

val find_entry : t -> key:string -> (outcome * string * string) option
(** Like {!find} but returns [(outcome, params, prov)] and does {e not}
    touch the hit/miss counters — for callers (the serve layer) that
    keep their own service-level counters. *)

val is_tune_prov : string -> bool
(** Whether a provenance string marks a {e tune-level} entry (a whole
    search's result, journaled with a ["tune "] prefix by the driver
    and the serve daemon) rather than a single probe. *)

val fold_entries :
  t ->
  init:'a ->
  f:('a -> key:string -> params:string -> prov:string -> outcome -> 'a) ->
  'a
(** Read-only fold over every live entry in sorted-key order (a
    deterministic scan regardless of journal append order).  The table
    is snapshotted under the mutex and folded outside it, so [f] may
    itself use the store. *)

val iter_tunes :
  t ->
  f:(key:string -> params:string -> prov:string -> mflops:float -> unit) ->
  unit
(** Visit the timed tune-level entries only ({!is_tune_prov} plus a
    [Timed] outcome) — the warm-start seeder's donor scan. *)

val add : t -> key:string -> params:string -> prov:string -> outcome -> unit
(** Thread-safe insert + journal append (one flushed line).  [params]
    and [prov] are human-readable provenance (the parameter point and
    "kernel\@machine/context/N"); they do not affect lookup. *)

val cached : ?store:t -> key:string -> params:string -> prov:string ->
  (unit -> outcome) -> outcome
(** [cached ?store ~key ... f] is [f ()] memoized through the store;
    with [?store] absent it is just [f ()]. *)

val refresh : t -> unit
(** Fold in any complete journal lines appended past the already-loaded
    prefix — records written by {e other processes} sharing the file in
    replica mode.  A trailing line still missing its newline is another
    writer's append in flight and is left for the next refresh; a file
    that shrank (compacted by another replica) is reloaded whole. *)

val hits : t -> int
(** [find]s answered from the store since [open_]. *)

val misses : t -> int
(** [find]s that missed since [open_]. *)

val entries : t -> int
(** Distinct keys currently held. *)

val corrupt : t -> int
(** Journal lines skipped as unusable during loading: {!torn} plus the
    mid-file corrupt lines. *)

val torn : t -> int
(** The subset of {!corrupt} that was a newline-less trailing line —
    the signature of a crash mid-append. *)

val bytes : t -> int
(** Current journal size in bytes (0 if the file is gone). *)

val compact : t -> unit
(** Rewrite the journal as header + one line per key, atomically
    (temp file in the same directory, then rename).  Not safe while
    another replica process is appending — serialize compaction through
    one designated writer (the serve daemon does). *)

val evict : ?max_bytes:int -> ?max_age:float -> now:float -> t -> int
(** [evict ?max_bytes ?max_age ~now t] applies the retention policy and
    compacts if anything was dropped; returns the number of entries
    evicted.  [max_age] drops entries stamped before [now - max_age]
    (entries journaled without a timestamp count as arbitrarily old);
    [max_bytes] then drops oldest-first — ordered by (timestamp, load
    order) — until the compacted journal would fit.  Same replica
    caveat as {!compact}. *)

(** {2 Keys}

    Keys are hex MD5 digests of a canonical encoding of the inputs.
    Content addressing gives invalidation for free: editing the kernel
    changes its lowered LIL, hence the digest, hence the key. *)

val digest : string list -> string
(** Digest of a list of fields (length-prefixed, so field boundaries
    cannot alias). *)

val probe_key :
  kernel:string ->
  machine:string ->
  context:string ->
  n:int ->
  seed:int ->
  check:bool ->
  ?fidelity:string ->
  params:string ->
  unit ->
  string
(** Key of one search probe.  [kernel] is the lowered-LIL rendering of
    the untransformed function (plus array metadata), [params] the
    canonical parameter-point encoding ({!Ifko_transform.Params.canonical}),
    [check] whether per-pass validation was on (it changes how broken
    points surface).  [fidelity] names a non-default timing fidelity;
    omitting it reproduces every key minted before the fidelity axis
    existed, so old journals remain valid (and sampled results can
    never be served to a full-fidelity caller or vice versa). *)

val timing_key :
  kind:string ->
  func:string ->
  machine:string ->
  context:string ->
  n:int ->
  seed:int ->
  string
(** Key of a raw timing of an already-built function ([func] is its
    LIL rendering) — used to journal the ATLAS-search and
    compiler-model baseline timings. [kind] namespaces the caller. *)

val tune_key :
  ?strategy:string ->
  kernel:string ->
  machine:string ->
  context:string ->
  n:int ->
  seed:int ->
  check:bool ->
  flops_per_n:float ->
  unit ->
  string
(** Key of one {e complete tune} — the service-level result the serve
    daemon caches on top of the per-probe entries.  [kernel] is the
    {!Ifko_search.Driver.kernel_fingerprint}; [flops_per_n] is included
    because it scales the reported MFLOPS.  [strategy] names a
    non-default search strategy; omit it for the default linesearch so
    every key minted before the strategy axis existed stays valid (and
    the strategies' results never alias). *)

(** {2 Statistics} *)

type stat = {
  st_path : string;
  st_entries : int;
  st_tunes : int;  (** tune-level entries ({!is_tune_prov}) *)
  st_probes : int;  (** the rest: per-probe and raw-timing entries *)
  st_timed : int;
  st_failed : int;
  st_illegal : int;
  st_corrupt : int;  (** mid-file unparseable lines (excludes torn) *)
  st_torn : int;  (** newline-less unparseable trailing line *)
  st_bytes : int;
  st_seed : int option;
  st_hits : int;
  st_misses : int;
}

val stat : t -> stat
(** Snapshot of a live handle (thread-safe). *)

val stat_fields : stat -> (string * Json.value) list
(** The [stat] object's fields, for embedding into larger JSON
    documents (the shard store aggregates these per shard). *)

val stat_json : stat -> string
(** One flat JSON object, [Diag.to_json]-style: every field present,
    [null] for an absent seed. *)

val stat_to_string : stat -> string

(** {2 Maintenance (on a path, without a live handle)} *)

val stat_string : string -> string
(** Human-readable summary of the journal at a path: entry and outcome
    counts, corrupt/torn lines, header seed, file size. *)

val clear : string -> unit
(** Delete the journal file if it exists. *)
