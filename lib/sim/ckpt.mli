(** Content-addressed cache of post-warm-up memory-system snapshots.

    The in-L2 timing context runs a warm-up loop before every measured
    run; the resulting memory-system state depends only on
    (kernel fingerprint, machine, context, N) — never on the transform
    parameters being probed.  A [Ckpt.t] captures that state once
    ({!Ifko_machine.Memsys.snapshot}) and blits it back for every later
    probe of the same tune, which is observably identical to re-running
    the warm-up (verified by the bit-identity tests).

    Invalidation mirrors the probe store's content addressing:
    - a {e kernel edit} changes the fingerprint, hence the key;
    - a {e cache-geometry (or any machine-parameter) change} changes
      the geometry digest recorded in the persistence directory's
      [store.meta], which wipes all persisted snapshots on open;
    - a {e stale or hand-edited store.meta} (wrong schema, unparsable,
      missing) likewise discards everything rather than trusting it.

    All three therefore force a fresh warm-up, never a wrong reuse. *)

type t

type stats = {
  hits : int;  (** warm states answered from memory *)
  disk_loads : int;  (** warm states answered from a persisted snapshot *)
  misses : int;  (** fresh warm-ups run (then captured) *)
  invalidated : int;  (** persisted snapshot sets discarded on open *)
}

val create : ?dir:string -> cfg:Ifko_machine.Config.t -> unit -> t
(** In-memory checkpoint cache for machine [cfg]; with [dir], snapshots
    also persist there (one [<key>.ckpt] Marshal blob per key plus a
    [store.meta] recording the schema version and geometry digest).
    Persistence is best-effort: I/O failures only cost future
    warm-ups. *)

val key : t -> kernel:string -> context:string -> n:int -> string
(** Digest of (kernel fingerprint, machine name, context, N). *)

val with_state :
  t -> key:string -> Ifko_machine.Memsys.t -> warm:(Ifko_machine.Memsys.t -> float) -> float
(** Bring the memory system to the warm state for [key]: restore the
    cached snapshot when one exists, otherwise run [warm] (which must
    leave the system fully warmed) and capture the result.  Returns the
    entry's metadata float — [warm]'s return value, stored alongside
    the snapshot at creation (today's warm loops all return 0; the slot
    keeps room for warm-up-time measurements).  Per-candidate scalars
    belong in {!find_transient}/{!set_transient}, never here: one
    tune's probe points share a snapshot while running different code.
    Safe to share across domains. *)

val find_transient : t -> key:string -> float option
(** Look up a per-(warm state, compiled code) scalar — the sampled
    timer memoizes each candidate's resume-transient here, keyed by
    (snapshot key, code digest), so one tune prices each distinct
    candidate's restart cost exactly once.  Session-only: transients
    are never persisted (recomputing one costs two short windows,
    and the snapshot files stay pure machine state). *)

val set_transient : t -> key:string -> float -> unit
(** Record a transient.  Values are deterministic functions of their
    key, so concurrent writers racing on one key are benign. *)

val stats : t -> stats
val geometry_digest : t -> string
