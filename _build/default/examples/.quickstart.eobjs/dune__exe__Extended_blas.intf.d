examples/extended_blas.mli:
