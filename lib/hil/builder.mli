(** Combinators for constructing HIL kernels programmatically.

    Used by tests and by generated workloads; the BLAS kernels shipped
    with the library are written in concrete syntax instead so the
    front end is exercised end to end. *)

open Ast

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val i : int -> expr
val f : float -> expr
val v : string -> expr
val ld : string -> int -> expr
val abs : expr -> expr
val sqrt : expr -> expr
val neg : expr -> expr

val ( <-- ) : string -> expr -> stmt
(** [x <-- e] is the assignment [x = e]. *)

val ( +<- ) : string -> expr -> stmt
(** [x +<- e] is [x += e]. *)

val ( *<- ) : string -> expr -> stmt
(** [x *<- e] is [x *= e]. *)

val store : string -> int -> expr -> stmt
val ptr_inc : string -> int -> stmt
val ptr_inc_var : string -> string -> stmt

val loop :
  ?opt:bool -> ?speculate:bool -> ?step:int -> string -> from:expr -> to_:expr ->
  stmt list -> stmt
(** [loop ~opt:true "i" ~from ~to_ body] builds an (opt-)loop. *)

val if_goto : cmpop -> expr -> expr -> string -> stmt

val if_then : ?else_:stmt list -> cmpop -> expr -> expr -> stmt list -> stmt
(** [if_then op a b then_body] is the scoped conditional
    [IF (a op b) THEN then_body ELSE else_ ENDIF].
    @param else_ the else branch (default empty) *)

val goto : string -> stmt
val label : string -> stmt
val return : expr option -> stmt

val param : ?flags:flag list -> string -> ty -> param
val locals : ?init:float -> string list -> ty -> decl

val kernel :
  name:string -> params:param list -> ?locals:decl list -> ?ret:ty -> stmt list -> kernel
