lib/baselines/atlas_idioms.ml: Ifko_transform
