lib/transform/pipeline.ml: Accexp Blockfetch Branchopt Cfg Ciscidx Copyprop Deadcode Ifko_codegen Loopctl Loopnest Lower Ntwrite Option Params Peephole Prefetch_xform Regalloc Simd Unroll Validate
