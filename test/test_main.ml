(* The aggregated test runner: `dune runtest` executes every suite. *)

let () =
  Alcotest.run "ifko"
    [ ("util", Test_util.suite);
      ("hil", Test_hil.suite);
      ("lil", Test_lil.suite);
      ("codegen", Test_codegen.suite);
      ("analysis", Test_analysis.suite);
      ("lint", Test_lint.suite);
      ("depend", Test_depend.suite);
      ("machine", Test_machine.suite);
      ("sim", Test_sim.suite);
      ("ckpt", Test_ckpt.suite);
      ("exec-compiled", Test_exec_compiled.suite);
      ("transform", Test_transform.suite);
      ("regalloc", Test_regalloc.suite);
      ("par", Test_par.suite);
      ("store", Test_store.suite);
      ("search", Test_search.suite);
      ("serve", Test_serve.suite);
      ("extensions", Test_extensions.suite);
      ("fuzz", Test_fuzz.suite);
      ("extras", Test_extras.suite);
      ("blas", Test_blas.suite);
      ("baselines", Test_baselines.suite);
      ("integration", Test_integration.suite);
    ]
