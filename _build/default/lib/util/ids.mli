(** Fresh-identifier generation.

    Several IR layers (virtual registers, basic-block labels, temporaries)
    need unique integer identifiers.  A generator is an isolated mutable
    counter so that independent compilations do not interfere and tests
    remain deterministic. *)

type t
(** A fresh-identifier generator. *)

val create : ?start:int -> unit -> t
(** [create ()] returns a generator whose first identifier is [start]
    (default [0]). *)

val next : t -> int
(** [next g] returns the next identifier and advances [g]. *)

val peek : t -> int
(** [peek g] returns the identifier [next] would return, without
    advancing [g]. *)

val reserve : t -> int -> unit
(** [reserve g n] ensures every identifier later produced by [g] is
    [>= n].  Used when splicing externally numbered entities into a
    function. *)
