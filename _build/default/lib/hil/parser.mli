(** Recursive-descent parser for HIL kernels.

    Concrete syntax (comments run from [#] or [//] to end of line):
    {v
    KERNEL ddot(N : int, X : ptr double, Y : ptr double) RETURNS double
    VARS
      dot : double = 0.0;
      x, y : double;
    BEGIN
      OPTLOOP i = 0, N
      LOOP_BODY
        x = X[0];
        y = Y[0];
        dot += x * y;
        X += 1;
        Y += 1;
      LOOP_END
      RETURN dot;
    END
    v}

    [OPTLOOP] is the mark-up flagging the loop for empirical tuning;
    pointer parameters accept the [OUTPUT], [NOPREFETCH] and [MAYALIAS]
    flags after their type. *)

exception Error of string * int
(** [Error (message, line)] on syntax errors. *)

val parse_kernel : string -> Ast.kernel
(** Parse a complete kernel from source text.  The result is
    syntactically well-formed but not yet checked; run
    {!Typecheck.check} before lowering. *)
