open Ifko_machine

type context = Out_of_cache | In_l2

let context_name = function Out_of_cache -> "out-of-cache" | In_l2 -> "in-L2"

type spec = { make_env : int -> Env.t; ret_fsize : Instr.fsize }

(* One simulation of pre-decoded code: the kernel is compiled once per
   candidate (by [measure]/[exact]) and reused across contexts, sample
   sizes and reps. *)
let run_once ~cfg ~context ~spec ~n cf =
  let env = spec.make_env n in
  let ms = Memsys.create cfg in
  (match context with
  | Out_of_cache -> Memsys.reset ms ~flush:true
  | In_l2 ->
    Memsys.reset ms ~flush:true;
    Env.iter_array_lines env ~line:cfg.Config.l2.Config.line (fun addr ->
        Memsys.warm_l2 ms ~addr));
  let result = Exec.exec ~timing:(cfg, ms) ~ret_fsize:spec.ret_fsize cf env in
  match context with
  | Out_of_cache -> result.Exec.cycles +. Memsys.pending_writeback_cost ms
  | In_l2 -> result.Exec.cycles

let exact ~cfg ~context ~spec ~n func = run_once ~cfg ~context ~spec ~n (Exec.compile func)

(* Problem sizes for the steady-state extrapolation: multiples of the
   number of elements in a 4 KiB page for either precision, so page
   effects (hardware-prefetcher retraining) appear in both samples at
   the same per-element rate. *)
let sample_lo = 4096
let sample_hi = 8192

let measure_compiled ?(reps = 1) ~cfg ~context ~spec ~n cf =
  let once n = run_once ~cfg ~context ~spec ~n cf in
  let one_rep () =
    match context with
    | In_l2 -> once n
    | Out_of_cache ->
      if n <= sample_hi then once n
      else begin
        let c_lo = once sample_lo and c_hi = once sample_hi in
        let rate = (c_hi -. c_lo) /. float_of_int (sample_hi - sample_lo) in
        c_hi +. (rate *. float_of_int (n - sample_hi))
      end
  in
  let rec repeat best k = if k = 0 then best else repeat (Float.min best (one_rep ())) (k - 1) in
  let first = one_rep () in
  repeat first (max 0 (reps - 1))

let measure ?reps ~cfg ~context ~spec ~n func =
  measure_compiled ?reps ~cfg ~context ~spec ~n (Exec.compile func)

let mflops ~cfg ~flops_per_n ~n ~cycles =
  Ifko_util.Stats.mflops
    ~flops:(flops_per_n *. float_of_int n)
    ~cycles ~ghz:cfg.Config.ghz
