(* Checkpointed warm-up and sampled-fidelity tests: memory-system
   snapshot/restore/rebase semantics, the content-addressed checkpoint
   cache (including every invalidation path), and the sampled timer's
   accuracy and bit-identity escape hatch. *)
open Ifko_machine

let cfg = Config.p4e
let seed = 20050614

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let temp_dir () =
  let d = Filename.temp_file "ifko_ckpt_test" "" in
  Sys.remove d;
  d

let compiled_default id =
  let compiled = Ifko_blas.Hil_sources.compile id in
  let report = Ifko_analysis.Report.analyze compiled in
  let params =
    Ifko_transform.Params.default ~line_bytes:cfg.Config.prefetchable_line report
  in
  let func = Ifko_search.Driver.compile_point ~cfg compiled params in
  (compiled, Ifko_sim.Exec.compile func)

let ddot = { Ifko_blas.Defs.routine = Ifko_blas.Defs.Dot; prec = Instr.D }

(* ---------- Memsys snapshot / restore / rebase ---------- *)

(* a deterministic access mix: strided loads with some stores, enough
   to populate both cache levels, the MSHRs and the prefetch streams *)
let prefix ms =
  for i = 0 to 127 do
    ignore (Memsys.load ms ~addr:(i * 64) ~now:(float_of_int (i * 5)) : float);
    if i land 3 = 0 then Memsys.store ms ~addr:(65536 + (i * 64)) ~now:(float_of_int (i * 5))
  done

let continuation ~base ms =
  List.init 48 (fun i ->
      Memsys.load ms ~addr:(262144 + (i * 64)) ~now:(base +. float_of_int (i * 4)) -. base)

let test_snapshot_restore_replay () =
  let ms = Memsys.create cfg in
  Memsys.reset ms ~flush:true;
  prefix ms;
  let snap = Memsys.snapshot ms in
  let first = continuation ~base:1000.0 ms in
  Memsys.restore ms snap;
  let second = continuation ~base:1000.0 ms in
  Alcotest.(check (list (float 0.0))) "restore replays bit-identically" first second;
  (* the snapshot must be a deep copy: trashing the restored machine
     and restoring again still reproduces the original continuation *)
  Memsys.reset ms ~flush:true;
  prefix ms;
  prefix ms;
  Memsys.restore ms snap;
  let third = continuation ~base:1000.0 ms in
  Alcotest.(check (list (float 0.0))) "snapshot survives machine reuse" first third

let test_restore_shape_mismatch () =
  let ms = Memsys.create cfg in
  Memsys.reset ms ~flush:true;
  let snap = Memsys.snapshot ms in
  let other = Memsys.create Config.opteron in
  match Memsys.restore other snap with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "restoring a P4E snapshot into an Opteron machine must raise"

let test_rebase_translates () =
  (* after [rebase] every internal timestamp lives in one clean clock
     base, so a continuation behaves the same no matter when it starts:
     the model only compares and differences times.  (If rebase left
     any component — an MSHR entry, a fill arrival — in the old base,
     the two starting offsets would interact with it differently.) *)
  let ms = Memsys.create cfg in
  Memsys.reset ms ~flush:true;
  prefix ms;
  Memsys.rebase ms;
  let snap = Memsys.snapshot ms in
  let at0 = continuation ~base:0.0 ms in
  Memsys.restore ms snap;
  let at4096 = continuation ~base:4096.0 ms in
  Alcotest.(check (list (float 1e-6))) "rebased state is translation invariant" at0 at4096;
  (* a second rebase of an already-rebased state is a no-op *)
  Memsys.restore ms snap;
  Memsys.rebase ms;
  let again = continuation ~base:0.0 ms in
  Alcotest.(check (list (float 0.0))) "rebase is idempotent" at0 again

(* ---------- Ckpt invalidation ---------- *)

let warm_tagged tag ms =
  Memsys.reset ms ~flush:true;
  for i = 0 to 63 do
    Memsys.warm_l2 ms ~addr:(i * 64)
  done;
  tag

let test_key_content_addressing () =
  let c = Ifko_sim.Ckpt.create ~cfg () in
  let k = Ifko_sim.Ckpt.key c ~kernel:"dot-v1" ~context:"in-L2" ~n:1024 in
  let edited = Ifko_sim.Ckpt.key c ~kernel:"dot-v2" ~context:"in-L2" ~n:1024 in
  let other_ctx = Ifko_sim.Ckpt.key c ~kernel:"dot-v1" ~context:"out-of-cache" ~n:1024 in
  let other_n = Ifko_sim.Ckpt.key c ~kernel:"dot-v1" ~context:"in-L2" ~n:2048 in
  Alcotest.(check bool) "kernel edit changes the key" false (k = edited);
  Alcotest.(check bool) "context changes the key" false (k = other_ctx);
  Alcotest.(check bool) "n changes the key" false (k = other_n);
  (* a kernel edit therefore forces a fresh warm-up *)
  let ms = Memsys.create cfg in
  let m1 = Ifko_sim.Ckpt.with_state c ~key:k ms ~warm:(warm_tagged 1.0) in
  let m2 = Ifko_sim.Ckpt.with_state c ~key:edited ms ~warm:(warm_tagged 2.0) in
  let m3 = Ifko_sim.Ckpt.with_state c ~key:k ms ~warm:(warm_tagged 3.0) in
  Alcotest.(check (float 0.0)) "first key warms fresh" 1.0 m1;
  Alcotest.(check (float 0.0)) "edited kernel warms fresh" 2.0 m2;
  Alcotest.(check (float 0.0)) "original key hits" 1.0 m3;
  let s = Ifko_sim.Ckpt.stats c in
  Alcotest.(check int) "two fresh warm-ups" 2 s.Ifko_sim.Ckpt.misses;
  Alcotest.(check int) "one memory hit" 1 s.Ifko_sim.Ckpt.hits

let test_disk_round_trip () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c1 = Ifko_sim.Ckpt.create ~dir ~cfg () in
      let ms = Memsys.create cfg in
      let key = Ifko_sim.Ckpt.key c1 ~kernel:"k" ~context:"in-L2" ~n:512 in
      let meta = Ifko_sim.Ckpt.with_state c1 ~key ms ~warm:(warm_tagged 3.25) in
      Alcotest.(check (float 0.0)) "miss returns the warm metadata" 3.25 meta;
      let reference = continuation ~base:0.0 ms in
      (* a second cache over the same directory answers from disk, with
         the same metadata and observably the same machine state *)
      let c2 = Ifko_sim.Ckpt.create ~dir ~cfg () in
      let ms2 = Memsys.create cfg in
      let key2 = Ifko_sim.Ckpt.key c2 ~kernel:"k" ~context:"in-L2" ~n:512 in
      Alcotest.(check string) "keys are stable across instances" key key2;
      let meta2 = Ifko_sim.Ckpt.with_state c2 ~key:key2 ms2 ~warm:(warm_tagged 9.9) in
      Alcotest.(check (float 0.0)) "disk hit preserves the delta payload" 3.25 meta2;
      let s = Ifko_sim.Ckpt.stats c2 in
      Alcotest.(check int) "answered from disk" 1 s.Ifko_sim.Ckpt.disk_loads;
      Alcotest.(check int) "no fresh warm-up" 0 s.Ifko_sim.Ckpt.misses;
      Alcotest.(check (list (float 0.0))) "restored state is bit-identical" reference
        (continuation ~base:0.0 ms2))

let test_geometry_change_invalidates () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c1 = Ifko_sim.Ckpt.create ~dir ~cfg () in
      let ms = Memsys.create cfg in
      let key = Ifko_sim.Ckpt.key c1 ~kernel:"k" ~context:"in-L2" ~n:512 in
      ignore (Ifko_sim.Ckpt.with_state c1 ~key ms ~warm:(warm_tagged 1.0) : float);
      (* a different machine (cache geometry included) wipes the
         persisted snapshots and forces a fresh warm-up *)
      let c2 = Ifko_sim.Ckpt.create ~dir ~cfg:Config.opteron () in
      Alcotest.(check bool) "geometry digests differ" false
        (Ifko_sim.Ckpt.geometry_digest c1 = Ifko_sim.Ckpt.geometry_digest c2);
      Alcotest.(check int) "persisted snapshots discarded" 1
        (Ifko_sim.Ckpt.stats c2).Ifko_sim.Ckpt.invalidated;
      let ms2 = Memsys.create Config.opteron in
      let key2 = Ifko_sim.Ckpt.key c2 ~kernel:"k" ~context:"in-L2" ~n:512 in
      let meta = Ifko_sim.Ckpt.with_state c2 ~key:key2 ms2 ~warm:(warm_tagged 7.0) in
      Alcotest.(check (float 0.0)) "fresh warm-up ran" 7.0 meta;
      Alcotest.(check int) "counted as a miss" 1
        (Ifko_sim.Ckpt.stats c2).Ifko_sim.Ckpt.misses)

let test_stale_meta_invalidates () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c1 = Ifko_sim.Ckpt.create ~dir ~cfg () in
      let ms = Memsys.create cfg in
      let key = Ifko_sim.Ckpt.key c1 ~kernel:"k" ~context:"in-L2" ~n:512 in
      ignore (Ifko_sim.Ckpt.with_state c1 ~key ms ~warm:(warm_tagged 1.0) : float);
      (* hand-edit the meta: nothing vouches for the snapshots now *)
      Out_channel.with_open_text (Filename.concat dir "store.meta") (fun oc ->
          Out_channel.output_string oc "not json\n");
      let c2 = Ifko_sim.Ckpt.create ~dir ~cfg () in
      Alcotest.(check int) "stale meta discards snapshots" 1
        (Ifko_sim.Ckpt.stats c2).Ifko_sim.Ckpt.invalidated;
      let ms2 = Memsys.create cfg in
      let meta = Ifko_sim.Ckpt.with_state c2 ~key ms2 ~warm:(warm_tagged 4.5) in
      Alcotest.(check (float 0.0)) "fresh warm-up ran" 4.5 meta;
      Alcotest.(check int) "counted as a miss" 1
        (Ifko_sim.Ckpt.stats c2).Ifko_sim.Ckpt.misses)

let test_transients_disk_round_trip () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c1 = Ifko_sim.Ckpt.create ~dir ~cfg () in
      (* keys mimic the sampled timer's snap_key ^ ":" ^ code_digest *)
      Ifko_sim.Ckpt.set_transient c1 ~key:"warm:cand-a" 12.625;
      Ifko_sim.Ckpt.set_transient c1 ~key:"warm:cand-b" (-3.0e-7);
      (* a value that needs the full %.17g precision to round-trip *)
      Ifko_sim.Ckpt.set_transient c1 ~key:"warm:cand-c" (1.0 /. 3.0);
      (* a second cache over the same directory preloads them *)
      let c2 = Ifko_sim.Ckpt.create ~dir ~cfg () in
      Alcotest.(check int) "three transients reloaded" 3
        (Ifko_sim.Ckpt.stats c2).Ifko_sim.Ckpt.transients_loaded;
      Alcotest.(check (option (float 0.0))) "value a survives the disk"
        (Some 12.625)
        (Ifko_sim.Ckpt.find_transient c2 ~key:"warm:cand-a");
      Alcotest.(check (option (float 0.0))) "value b survives the disk"
        (Some (-3.0e-7))
        (Ifko_sim.Ckpt.find_transient c2 ~key:"warm:cand-b");
      Alcotest.(check (option (float 0.0))) "%.17g round-trip is exact"
        (Some (1.0 /. 3.0))
        (Ifko_sim.Ckpt.find_transient c2 ~key:"warm:cand-c");
      Alcotest.(check int) "reloads answer as transient hits" 3
        (Ifko_sim.Ckpt.stats c2).Ifko_sim.Ckpt.transient_hits;
      (* the memo lives under the store.meta guard: a geometry change
         wipes it with the snapshots *)
      let c3 = Ifko_sim.Ckpt.create ~dir ~cfg:Config.opteron () in
      Alcotest.(check int) "geometry change drops the transients" 0
        (Ifko_sim.Ckpt.stats c3).Ifko_sim.Ckpt.transients_loaded;
      Alcotest.(check (option (float 0.0))) "no stale transient survives" None
        (Ifko_sim.Ckpt.find_transient c3 ~key:"warm:cand-a"))

(* ---------- sampled fidelity ---------- *)

let measure_ext ?fidelity ?ckpt ~context ~n cf =
  let spec = Ifko_blas.Workload.timer_spec ddot ~seed in
  Ifko_sim.Timer.measure_ext ?fidelity ?ckpt ~cfg ~context ~spec ~n cf

let test_sampled_accuracy () =
  let _, cf = compiled_default ddot in
  let full = measure_ext ~context:Ifko_sim.Timer.Out_of_cache ~n:80000 cf in
  let s =
    measure_ext ~fidelity:Ifko_sim.Timer.Sampled ~context:Ifko_sim.Timer.Out_of_cache
      ~n:80000 cf
  in
  Alcotest.(check bool) "no fallback on a streaming kernel" true
    (s.Ifko_sim.Timer.m_fallback = None);
  let err =
    Float.abs (s.Ifko_sim.Timer.m_cycles -. full.Ifko_sim.Timer.m_cycles)
    /. full.Ifko_sim.Timer.m_cycles
  in
  if err > 0.01 then
    Alcotest.failf "sampled error %.2f%% exceeds the 1%% budget" (100.0 *. err);
  (* the >=5x work bar holds in the steady state: warm state captured
     and transient memoized, as on every probe after a tune's first *)
  let ckpt = Ifko_sim.Ckpt.create ~cfg () in
  let steady () =
    measure_ext ~fidelity:Ifko_sim.Timer.Sampled
      ~ckpt:(ckpt, "ddot")
      ~context:Ifko_sim.Timer.Out_of_cache ~n:80000 cf
  in
  let first = steady () in
  let hot = steady () in
  Alcotest.(check bool) "first sight simulates more than a hot probe" true
    (first.Ifko_sim.Timer.m_elems > hot.Ifko_sim.Timer.m_elems);
  if hot.Ifko_sim.Timer.m_elems * 5 > full.Ifko_sim.Timer.m_elems then
    Alcotest.failf "sampled work %d elems is not >=5x under full's %d"
      hot.Ifko_sim.Timer.m_elems full.Ifko_sim.Timer.m_elems

let test_sampled_ckpt_bit_identity () =
  let _, cf = compiled_default ddot in
  let plain =
    measure_ext ~fidelity:Ifko_sim.Timer.Sampled ~context:Ifko_sim.Timer.Out_of_cache
      ~n:80000 cf
  in
  let ckpt = Ifko_sim.Ckpt.create ~cfg () in
  let with_ckpt () =
    measure_ext ~fidelity:Ifko_sim.Timer.Sampled
      ~ckpt:(ckpt, "ddot")
      ~context:Ifko_sim.Timer.Out_of_cache ~n:80000 cf
  in
  let miss = with_ckpt () in
  let hit = with_ckpt () in
  Alcotest.(check (float 0.0)) "checkpoint miss path is bit-identical"
    plain.Ifko_sim.Timer.m_cycles miss.Ifko_sim.Timer.m_cycles;
  Alcotest.(check (float 0.0)) "checkpoint hit path is bit-identical"
    plain.Ifko_sim.Timer.m_cycles hit.Ifko_sim.Timer.m_cycles;
  let s = Ifko_sim.Ckpt.stats ckpt in
  Alcotest.(check int) "warm-up ran once" 1 s.Ifko_sim.Ckpt.misses;
  Alcotest.(check int) "then hit" 1 s.Ifko_sim.Ckpt.hits;
  (* one warm state serves every problem size of a tune *)
  let other_n = with_ckpt () in
  ignore other_n;
  let bigger =
    measure_ext ~fidelity:Ifko_sim.Timer.Sampled
      ~ckpt:(ckpt, "ddot")
      ~context:Ifko_sim.Timer.Out_of_cache ~n:160000 cf
  in
  Alcotest.(check bool) "bigger n still sampled" true
    (bigger.Ifko_sim.Timer.m_fidelity = Ifko_sim.Timer.Sampled);
  Alcotest.(check int) "no extra warm-up for another n" 1
    (Ifko_sim.Ckpt.stats ckpt).Ifko_sim.Ckpt.misses

let test_sampled_fallbacks () =
  let _, cf = compiled_default ddot in
  (* tiny n: the windows would cover most of the problem *)
  let tiny =
    measure_ext ~fidelity:Ifko_sim.Timer.Sampled ~context:Ifko_sim.Timer.Out_of_cache
      ~n:1024 cf
  in
  Alcotest.(check (option string)) "tiny-n reason" (Some "tiny-n")
    tiny.Ifko_sim.Timer.m_fallback;
  Alcotest.(check bool) "fell back to full" true
    (tiny.Ifko_sim.Timer.m_fidelity = Ifko_sim.Timer.Full);
  let full = measure_ext ~context:Ifko_sim.Timer.Out_of_cache ~n:1024 cf in
  Alcotest.(check (float 0.0)) "fallback is bit-identical to full"
    full.Ifko_sim.Timer.m_cycles tiny.Ifko_sim.Timer.m_cycles;
  (* small in-L2 problems hit the tiny-n hatch like out-of-cache ones *)
  let l2 = measure_ext ~fidelity:Ifko_sim.Timer.Sampled ~context:Ifko_sim.Timer.In_l2 ~n:1024 cf in
  Alcotest.(check (option string)) "in-L2 tiny reason" (Some "tiny-n")
    l2.Ifko_sim.Timer.m_fallback;
  let l2_full = measure_ext ~context:Ifko_sim.Timer.In_l2 ~n:1024 cf in
  Alcotest.(check (float 0.0)) "in-L2 fallback is bit-identical"
    l2_full.Ifko_sim.Timer.m_cycles l2.Ifko_sim.Timer.m_cycles;
  (* an in-L2 working set over L2 capacity cannot use the
     cache-resident window scheme: ddot double at n=80000 is 1.28 MB
     against the P4E's 1 MB L2 *)
  let l2_big =
    measure_ext ~fidelity:Ifko_sim.Timer.Sampled ~context:Ifko_sim.Timer.In_l2 ~n:80000 cf
  in
  Alcotest.(check (option string)) "in-L2 capacity reason" (Some "in-l2-context")
    l2_big.Ifko_sim.Timer.m_fallback;
  let l2_big_full = measure_ext ~context:Ifko_sim.Timer.In_l2 ~n:80000 cf in
  Alcotest.(check (float 0.0)) "in-L2 capacity fallback is bit-identical"
    l2_big_full.Ifko_sim.Timer.m_cycles l2_big.Ifko_sim.Timer.m_cycles

(* the cache-resident window scheme: an in-L2 working set that fits L2
   (ddot double at n=40000 is 640 KB against the P4E's 1 MB L2) is
   sampled rather than falling back, and stays inside the same 1%
   accuracy budget as the out-of-cache path *)
let test_sampled_in_l2_accuracy () =
  let _, cf = compiled_default ddot in
  let full = measure_ext ~context:Ifko_sim.Timer.In_l2 ~n:40000 cf in
  let s = measure_ext ~fidelity:Ifko_sim.Timer.Sampled ~context:Ifko_sim.Timer.In_l2 ~n:40000 cf in
  Alcotest.(check (option string)) "no fallback when the set fits L2" None
    s.Ifko_sim.Timer.m_fallback;
  Alcotest.(check bool) "measured at sampled fidelity" true
    (s.Ifko_sim.Timer.m_fidelity = Ifko_sim.Timer.Sampled);
  let err =
    Float.abs (s.Ifko_sim.Timer.m_cycles -. full.Ifko_sim.Timer.m_cycles)
    /. full.Ifko_sim.Timer.m_cycles
  in
  if err > 0.01 then
    Alcotest.failf "in-L2 sampled error %.2f%% exceeds the 1%% budget" (100.0 *. err);
  Alcotest.(check bool) "sampled simulates less work than full" true
    (s.Ifko_sim.Timer.m_elems < full.Ifko_sim.Timer.m_elems)

let test_l2_ckpt_bit_identity () =
  let _, cf = compiled_default ddot in
  let plain = measure_ext ~context:Ifko_sim.Timer.In_l2 ~n:1024 cf in
  let ckpt = Ifko_sim.Ckpt.create ~cfg () in
  let m1 = measure_ext ~ckpt:(ckpt, "ddot") ~context:Ifko_sim.Timer.In_l2 ~n:1024 cf in
  let m2 = measure_ext ~ckpt:(ckpt, "ddot") ~context:Ifko_sim.Timer.In_l2 ~n:1024 cf in
  Alcotest.(check (float 0.0)) "in-L2 ckpt miss is bit-identical"
    plain.Ifko_sim.Timer.m_cycles m1.Ifko_sim.Timer.m_cycles;
  Alcotest.(check (float 0.0)) "in-L2 ckpt hit is bit-identical"
    plain.Ifko_sim.Timer.m_cycles m2.Ifko_sim.Timer.m_cycles;
  Alcotest.(check int) "one warm-up, one hit" 1 (Ifko_sim.Ckpt.stats ckpt).Ifko_sim.Ckpt.hits

let test_driver_sampled_tune () =
  let compiled = Ifko_blas.Hil_sources.compile ddot in
  let spec = Ifko_blas.Workload.timer_spec ddot ~seed in
  let tune fidelity =
    Ifko_search.Driver.tune ~seed ~fidelity ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec
      ~n:80000 ~flops_per_n:2.0
      ~test:(fun _ -> true)
      compiled
  in
  let s = tune Ifko_sim.Timer.Sampled in
  Alcotest.(check bool) "tuned with sampled fidelity" true
    (s.Ifko_search.Driver.fidelity_used = Ifko_sim.Timer.Sampled);
  (match s.Ifko_search.Driver.calibration_error with
  | None -> Alcotest.fail "sampled tune must record its calibration error"
  | Some e ->
    if e > 0.01 then Alcotest.failf "calibration error %.3f%% over budget" (100.0 *. e));
  Alcotest.(check bool) "found a sensible point" true
    (s.Ifko_search.Driver.ifko_mflops >= s.Ifko_search.Driver.fko_mflops);
  let f = tune Ifko_sim.Timer.Full in
  Alcotest.(check bool) "full tune records Full" true
    (f.Ifko_search.Driver.fidelity_used = Ifko_sim.Timer.Full
    && f.Ifko_search.Driver.calibration_error = None)

(* iamax is the suite's irregular kernel: rare data-dependent max
   updates make its per-element rate non-stationary, so the sampled
   windows misestimate it (~2.8% at the default point — over the 1%
   budget).  The tune-level calibration must catch that and demote the
   whole tune to full fidelity, keeping the measured error on
   record. *)
let test_driver_demotes_irregular () =
  let isamax = { Ifko_blas.Defs.routine = Ifko_blas.Defs.Iamax; prec = Instr.S } in
  let compiled = Ifko_blas.Hil_sources.compile isamax in
  let spec = Ifko_blas.Workload.timer_spec isamax ~seed in
  let s =
    Ifko_search.Driver.tune ~seed ~fidelity:Ifko_sim.Timer.Sampled ~cfg
      ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000 ~flops_per_n:1.0
      ~test:(fun _ -> true)
      compiled
  in
  Alcotest.(check bool) "irregular kernel demoted to full fidelity" true
    (s.Ifko_search.Driver.fidelity_used = Ifko_sim.Timer.Full);
  match s.Ifko_search.Driver.calibration_error with
  | None -> Alcotest.fail "demotion must keep the measured calibration error"
  | Some e ->
    if e <= 0.01 then
      Alcotest.failf "expected an over-budget calibration error, got %.3f%%" (100.0 *. e)

let suite =
  [ Alcotest.test_case "snapshot-restore replay" `Quick test_snapshot_restore_replay;
    Alcotest.test_case "restore shape mismatch" `Quick test_restore_shape_mismatch;
    Alcotest.test_case "rebase time translation" `Quick test_rebase_translates;
    Alcotest.test_case "key content addressing" `Quick test_key_content_addressing;
    Alcotest.test_case "disk round trip" `Quick test_disk_round_trip;
    Alcotest.test_case "geometry change invalidates" `Quick test_geometry_change_invalidates;
    Alcotest.test_case "stale meta invalidates" `Quick test_stale_meta_invalidates;
    Alcotest.test_case "transients disk round trip" `Quick test_transients_disk_round_trip;
    Alcotest.test_case "sampled accuracy" `Quick test_sampled_accuracy;
    Alcotest.test_case "sampled in-L2 accuracy" `Quick test_sampled_in_l2_accuracy;
    Alcotest.test_case "sampled ckpt bit-identity" `Quick test_sampled_ckpt_bit_identity;
    Alcotest.test_case "sampled fallbacks" `Quick test_sampled_fallbacks;
    Alcotest.test_case "in-L2 ckpt bit-identity" `Quick test_l2_ckpt_bit_identity;
    Alcotest.test_case "driver sampled tune" `Quick test_driver_sampled_tune;
    Alcotest.test_case "driver demotes irregular kernel" `Quick test_driver_demotes_irregular;
  ]
