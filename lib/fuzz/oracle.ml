open Ifko_codegen
module Rng = Ifko_util.Rng
module V = Ifko_sim.Verify

type verdict =
  | Agree
  | Rejected of string
  | Mismatch of { size : int; detail : string }

let default_sizes = [ 0; 1; 2; 3; 5; 8; 17; 34 ]

let ret_fsize (compiled : Lower.compiled) =
  match compiled.Lower.ret_ty with
  | Some (Ifko_hil.Ast.Fp Ifko_hil.Ast.Single) -> Instr.S
  | Some (Ifko_hil.Ast.Fp Ifko_hil.Ast.Double) -> Instr.D
  | Some _ | None -> (
    match compiled.Lower.arrays with a :: _ -> a.Lower.a_elem | [] -> Instr.D)

let make_env ~seed (compiled : Lower.compiled) n =
  let len = (2 * n) + 32 in
  let bytes =
    max (1 lsl 20) ((List.length compiled.Lower.arrays * len * 8) + (1 lsl 16))
  in
  let env = Ifko_sim.Env.create ~mem_bytes:bytes () in
  let rng = Rng.create (seed + (31 * n) + 17) in
  List.iter
    (fun (p : Ifko_hil.Ast.param) ->
      let name = p.Ifko_hil.Ast.p_name in
      match p.Ifko_hil.Ast.p_ty with
      | Ifko_hil.Ast.Int -> Ifko_sim.Env.bind_int env name n
      | Ifko_hil.Ast.Fp fp ->
        let sz =
          match fp with Ifko_hil.Ast.Single -> Instr.S | Ifko_hil.Ast.Double -> Instr.D
        in
        Ifko_sim.Env.bind_fp env name sz (Rng.sign_float rng 2.0)
      | Ifko_hil.Ast.Ptr fp ->
        let sz =
          match fp with Ifko_hil.Ast.Single -> Instr.S | Ifko_hil.Ast.Double -> Instr.D
        in
        Ifko_sim.Env.alloc_array env name sz len;
        Ifko_sim.Env.fill env name (fun _ -> Rng.sign_float rng 1.0))
    compiled.Lower.source.Ifko_hil.Ast.k_params;
  env

(* ULP budgets for reduction outputs: generous enough for any legal
   reassociation of the oracle's small problem sizes, tight enough that
   a wrong element, trip count or index diverges by orders of magnitude
   more (see DESIGN.md section 10). *)
let red_floor = function Instr.S -> 1e-3 | Instr.D -> 1e-6
let red_ulps = 65536L

let fp_ok ~tolerant fsize a b =
  if tolerant then V.close_reduction ~fsize ~ulps:red_ulps ~abs_floor:(red_floor fsize) a b
  else V.exact_fp a b

let compare_point ~tolerant ~strict_arrays ~rfs (compiled : Lower.compiled) env_ref env_opt
    (r_ref : Ifko_sim.Exec.result) (r_opt : Ifko_sim.Exec.result) =
  let mismatch = ref None in
  let note msg = if !mismatch = None then mismatch := Some msg in
  (match (r_ref.Ifko_sim.Exec.ret, r_opt.Ifko_sim.Exec.ret) with
  | None, None -> ()
  | Some (Ifko_sim.Exec.Rint a), Some (Ifko_sim.Exec.Rint b) ->
    if a <> b then note (Printf.sprintf "return: ref=%d got=%d" a b)
  | Some (Ifko_sim.Exec.Rfp a), Some (Ifko_sim.Exec.Rfp b) ->
    if not (fp_ok ~tolerant rfs a b) then
      note (Printf.sprintf "return: ref=%.17g got=%.17g" a b)
  | Some _, Some _ -> note "return: kind mismatch"
  | Some _, None -> note "return: transformed kernel returned nothing"
  | None, Some _ -> note "return: transformed kernel returned a value");
  (* When the dependence analysis proved every array reference
     independent, no legal transform may reassociate array contents —
     only the scalar reduction return can change shape.  The
     cross-check mode exploits that: array comparison drops to
     bit-exactness, so any tolerance-masked divergence convicts either
     a transform or the independence claim itself. *)
  let array_tolerant = tolerant && not strict_arrays in
  List.iter
    (fun (a : Lower.array_param) ->
      if !mismatch = None then begin
        let name = a.Lower.a_name in
        let xr = Ifko_sim.Env.to_array env_ref name in
        let xo = Ifko_sim.Env.to_array env_opt name in
        Array.iteri
          (fun i r ->
            if !mismatch = None && not (fp_ok ~tolerant:array_tolerant a.Lower.a_elem r xo.(i))
            then
              note (Printf.sprintf "array %s[%d]: ref=%.17g got=%.17g" name i r xo.(i)))
          xr
      end)
    compiled.Lower.arrays;
  !mismatch

let check ?(check_each_pass = false) ?(strict_arrays = false) ?inject
    ?(sizes = default_sizes) ~cfg ~seed (compiled : Lower.compiled)
    (params : Ifko_transform.Params.t) =
  let line_bytes = cfg.Ifko_machine.Config.prefetchable_line in
  let tolerant = Gen.has_fp_reduction compiled.Lower.source in
  let check =
    if check_each_pass then Some (Ifko_transform.Passcheck.generic ~line_bytes compiled)
    else None
  in
  match Ifko_transform.Pipeline.apply ?check ?inject ~line_bytes compiled params with
  | exception Ifko_transform.Passcheck.Pass_failed { pass; failure } ->
    Mismatch
      {
        size = -1;
        detail =
          Printf.sprintf "pass %s broke the kernel: %s" pass
            (Ifko_transform.Passcheck.failure_to_string failure);
      }
  | exception e -> Rejected (Printexc.to_string e)
  | opt ->
    let rfs = ret_fsize compiled in
    (* Decode each side once; the compiled form is reused across every
       oracle size. *)
    let cf_ref = Ifko_sim.Exec.compile compiled.Lower.func in
    let cf_opt = Ifko_sim.Exec.compile opt.Lower.func in
    let rec go = function
      | [] -> Agree
      | n :: rest -> (
        let env_ref = make_env ~seed compiled n in
        let env_opt = make_env ~seed compiled n in
        match Ifko_sim.Exec.exec ~ret_fsize:rfs cf_ref env_ref with
        | exception Ifko_sim.Exec.Trap m ->
          Rejected (Printf.sprintf "reference trap at n=%d: %s" n m)
        | r_ref -> (
          match Ifko_sim.Exec.exec ~ret_fsize:rfs cf_opt env_opt with
          | exception Ifko_sim.Exec.Trap m ->
            Mismatch { size = n; detail = Printf.sprintf "trap: %s" m }
          | r_opt -> (
            match
              compare_point ~tolerant ~strict_arrays ~rfs compiled env_ref env_opt r_ref
                r_opt
            with
            | Some detail -> Mismatch { size = n; detail }
            | None -> go rest)))
    in
    go sizes
