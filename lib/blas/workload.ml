open Defs

let alpha = 0.77

let vector ~seed ~which ~prec n =
  let rng = Ifko_util.Rng.create (seed + (which * 7919)) in
  Array.init n (fun _ -> Ref_impl.round_to prec (Ifko_util.Rng.sign_float rng 1.0))

(* The timers rebuild the same few environments thousands of times per
   tune (per probe point, per sample size), and drawing the input
   vectors afresh dominated environment construction.  The draws are a
   pure function of (seed, which, prec, n), so memoize them.  Entries
   are handed out read-only: [make_env] copies them into the simulated
   memory and [expectation] (which mutates its vectors in place) keeps
   calling [vector] directly. *)
let vector_cache : (int * int * Instr.fsize * int, float array) Hashtbl.t =
  Hashtbl.create 32

let vector_mutex = Mutex.create ()

let vector_memo ~seed ~which ~prec n =
  let key = (seed, which, prec, n) in
  Mutex.lock vector_mutex;
  let v =
    match Hashtbl.find_opt vector_cache key with
    | Some v -> v
    | None ->
      let v = vector ~seed ~which ~prec n in
      (* the cache is bounded by the handful of window sizes a run
         uses; drop everything if it somehow grows past that *)
      if Hashtbl.length vector_cache > 256 then Hashtbl.reset vector_cache;
      Hashtbl.replace vector_cache key v;
      v
  in
  Mutex.unlock vector_mutex;
  v

let mem_bytes_for ~prec n =
  (* two arrays, page alignment slack, stack, prefetch headroom; the
     floor only binds for small (window-sized) problems, where a big
     flat allocation would be pure memset overhead.  Array addresses
     are independent of the total size, so cycle counts are too. *)
  let bytes = n * Instr.fsize_bytes prec in
  max (1 lsl 18) ((2 * bytes) + (1 lsl 16))

let make_env ({ routine; prec } as id) ~seed n =
  ignore id;
  let env = Ifko_sim.Env.create ~mem_bytes:(mem_bytes_for ~prec n) () in
  Ifko_sim.Env.bind_int env "N" n;
  if has_alpha routine then Ifko_sim.Env.bind_fp env "alpha" prec alpha;
  Ifko_sim.Env.alloc_array env "X" prec n;
  let x = vector_memo ~seed ~which:1 ~prec n in
  Ifko_sim.Env.fill env "X" (fun i -> x.(i));
  if has_y routine then begin
    Ifko_sim.Env.alloc_array env "Y" prec n;
    let y = vector_memo ~seed ~which:2 ~prec n in
    Ifko_sim.Env.fill env "Y" (fun i -> y.(i))
  end;
  env

let timer_spec id ~seed =
  {
    Ifko_sim.Timer.make_env = (fun n -> make_env id ~seed n);
    ret_fsize = id.prec;
  }

let expectation ({ routine; prec } as id) ~seed n =
  ignore id;
  let x = vector ~seed ~which:1 ~prec n in
  let y = if has_y routine then vector ~seed ~which:2 ~prec n else [||] in
  match routine with
  | Swap ->
    Ref_impl.swap ~x ~y;
    { Ifko_sim.Verify.arrays = [ ("X", x); ("Y", y) ]; ret = None }
  | Scal ->
    Ref_impl.scal prec ~alpha ~x;
    { Ifko_sim.Verify.arrays = [ ("X", x) ]; ret = None }
  | Copy ->
    Ref_impl.copy ~x ~y;
    { Ifko_sim.Verify.arrays = [ ("X", x); ("Y", y) ]; ret = None }
  | Axpy ->
    Ref_impl.axpy prec ~alpha ~x ~y;
    { Ifko_sim.Verify.arrays = [ ("X", x); ("Y", y) ]; ret = None }
  | Dot ->
    let d = Ref_impl.dot prec ~x ~y in
    { Ifko_sim.Verify.arrays = [ ("X", x); ("Y", y) ]; ret = Some (Ifko_sim.Exec.Rfp d) }
  | Asum ->
    let s = Ref_impl.asum prec ~x in
    { Ifko_sim.Verify.arrays = [ ("X", x) ]; ret = Some (Ifko_sim.Exec.Rfp s) }
  | Iamax ->
    let i = Ref_impl.iamax ~x in
    { Ifko_sim.Verify.arrays = [ ("X", x) ]; ret = Some (Ifko_sim.Exec.Rint i) }

let tolerance { routine; prec } ~n =
  let base = match prec with Instr.S -> 2e-6 | Instr.D -> 1e-12 in
  match routine with
  | Dot | Asum -> base *. Float.max 16.0 (sqrt (float_of_int (max 1 n))) *. 16.0
  | Swap | Scal | Copy | Axpy | Iamax -> base *. 16.0
