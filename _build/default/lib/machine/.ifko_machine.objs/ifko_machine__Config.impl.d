lib/machine/config.ml: Instr
