(** The differential oracle.

    For a lowered kernel and one parameter point, the full
    {!Ifko_transform.Pipeline.apply} result is executed on seeded
    workloads over a ladder of problem sizes and compared against the
    untransformed lowering — the semantic reference for arbitrary
    generated kernels.  Comparison is exact (IEEE equality, NaN==NaN)
    for kernels without floating-point reductions (copies, swaps,
    element-wise maps, integer results), and ULP-tolerant with an
    absolute near-zero floor where vectorization or accumulator
    expansion may legitimately reassociate a reduction
    ({!Gen.has_fp_reduction}, {!Ifko_sim.Verify.close_reduction}). *)

type verdict =
  | Agree  (** every size matched *)
  | Rejected of string
      (** the pipeline refused the point (boundary/illegal parameter),
          or the reference itself trapped — not a miscompilation *)
  | Mismatch of { size : int; detail : string }
      (** differential divergence, a trap in the transformed kernel, or
          a per-pass validation failure ([size = -1]) — a compiler bug *)

val default_sizes : int list
(** The problem-size ladder: 0 and 1 (degenerate trips), small primes,
    and sizes spanning several unrolled/vectorized bodies plus cleanup
    remainders. *)

val make_env : seed:int -> Ifko_codegen.Lower.compiled -> int -> Ifko_sim.Env.t
(** Deterministic workload from the kernel's own signature: int
    parameters bound to the problem size, fp scalars to a seeded random
    value, arrays to seeded random vectors over-allocated (2n + 32
    elements) so strided kernels stay in bounds. *)

val check :
  ?check_each_pass:bool ->
  ?strict_arrays:bool ->
  ?inject:string * (Ifko_codegen.Lower.compiled -> unit) ->
  ?sizes:int list ->
  cfg:Ifko_machine.Config.t ->
  seed:int ->
  Ifko_codegen.Lower.compiled ->
  Ifko_transform.Params.t ->
  verdict
(** Run the differential check.  [check_each_pass] additionally runs
    the lint + translation-validation suite after every pipeline pass
    ({!Ifko_transform.Passcheck.generic}); a [Pass_failed] surfaces as
    [Mismatch] naming the pass.  [strict_arrays] compares array
    contents bit-exactly even for reduction kernels — sound exactly
    when {!Ifko_analysis.Depend} proved every array reference
    independent, which is the fuzzer's cross-check of that claim.
    [inject] is test-only fault injection forwarded to
    {!Ifko_transform.Pipeline.apply}. *)
