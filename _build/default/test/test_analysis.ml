(* Analysis tests: liveness on hand-built CFGs, vectorizability
   verdicts, accumulator and moving-pointer detection, and the report
   the search consumes. *)
open Ifko_blas
open Ifko_analysis

let gpr i = Reg.virt Reg.Gpr i
let xmm i = Reg.virt Reg.Xmm i
let mem base = Instr.mk_mem base

let test_liveness_straightline () =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:
          [ Instr.Ildi (gpr 0, 1);
            Instr.Ildi (gpr 1, 2);
            Instr.Iop (Instr.Iadd, gpr 2, gpr 0, Instr.Oreg (gpr 1));
          ]
        ~term:(Block.Ret (Some (gpr 2)));
    ];
  let live = Liveness.compute f in
  Alcotest.(check bool) "nothing live into entry" true
    (Reg.Set.is_empty (Liveness.live_in live "entry"));
  let per = Liveness.live_before_each live (Cfg.entry f) in
  (match per with
  | [ (_, l1); (_, l2); (_, l3) ] ->
    Alcotest.(check bool) "g0 live after its def" true (Reg.Set.mem (gpr 0) l1);
    Alcotest.(check bool) "g0,g1 live before add" true
      (Reg.Set.mem (gpr 0) l2 && Reg.Set.mem (gpr 1) l2);
    Alcotest.(check bool) "only g2 lives to the ret" true
      (Reg.Set.mem (gpr 2) l3 && not (Reg.Set.mem (gpr 0) l3))
  | _ -> Alcotest.fail "3 instrs expected")

let test_liveness_loop () =
  (* a loop-carried register must be live throughout the loop *)
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry" ~instrs:[ Instr.Ildi (gpr 0, 10); Instr.Ildi (gpr 1, 0) ]
        ~term:(Block.Jmp "head");
      Block.make "head"
        ~term:
          (Block.Br
             { cmp = Instr.Lt; lhs = gpr 0; rhs = Instr.Oimm 1; ifso = "out"; ifnot = "body";
               dec = 0 });
      Block.make "body"
        ~instrs:
          [ Instr.Iop (Instr.Iadd, gpr 1, gpr 1, Instr.Oimm 1);
            Instr.Iop (Instr.Isub, gpr 0, gpr 0, Instr.Oimm 1);
          ]
        ~term:(Block.Jmp "head");
      Block.make "out" ~term:(Block.Ret (Some (gpr 1)));
    ];
  let live = Liveness.compute f in
  Alcotest.(check bool) "accumulator live into head" true
    (Reg.Set.mem (gpr 1) (Liveness.live_in live "head"));
  Alcotest.(check bool) "counter live into body" true
    (Reg.Set.mem (gpr 0) (Liveness.live_in live "body"));
  Alcotest.(check bool) "counter dead after exit" true
    (not (Reg.Set.mem (gpr 0) (Liveness.live_in live "out")))

let vec id = Vecinfo.analyze (Hil_sources.compile id)

let test_vectorizable_verdicts () =
  List.iter
    (fun id ->
      let v = vec id in
      let expected = id.Defs.routine <> Defs.Iamax in
      Alcotest.(check bool)
        (Printf.sprintf "%s vectorizable=%b" (Defs.name id) expected)
        expected v.Vecinfo.vectorizable)
    Defs.all

let test_iamax_reason () =
  let v = vec { Defs.routine = Defs.Iamax; prec = Instr.D } in
  Alcotest.(check bool) "reason mentions control flow" true
    (Test_util.contains v.Vecinfo.reason "control flow")

let test_vec_classes () =
  let v = vec { Defs.routine = Defs.Axpy; prec = Instr.S } in
  let count cls = List.length (List.filter (fun (_, c) -> c = cls) v.Vecinfo.classes) in
  Alcotest.(check int) "alpha is the only invariant" 1 (count Vecinfo.Invariant);
  Alcotest.(check int) "no reductions in axpy" 0 (count Vecinfo.Reduction);
  let vdot = vec { Defs.routine = Defs.Dot; prec = Instr.S } in
  Alcotest.(check int) "dot has one reduction" 1
    (List.length (List.filter (fun (_, c) -> c = Vecinfo.Reduction) vdot.Vecinfo.classes))

let test_accumulators () =
  let accs id = Accuminfo.analyze (Hil_sources.compile id) in
  Alcotest.(check int) "dot has one accumulator" 1
    (List.length (accs { Defs.routine = Defs.Dot; prec = Instr.D }));
  Alcotest.(check int) "asum has one accumulator" 1
    (List.length (accs { Defs.routine = Defs.Asum; prec = Instr.S }));
  Alcotest.(check int) "swap has none" 0
    (List.length (accs { Defs.routine = Defs.Swap; prec = Instr.D }));
  Alcotest.(check int) "copy has none" 0
    (List.length (accs { Defs.routine = Defs.Copy; prec = Instr.D }))

let test_ptrinfo () =
  let moving = Ptrinfo.analyze (Hil_sources.compile { Defs.routine = Defs.Axpy; prec = Instr.D }) in
  Alcotest.(check int) "two moving arrays" 2 (List.length moving);
  List.iter
    (fun (m : Ptrinfo.moving) ->
      Alcotest.(check int) "stride is one double" 8 m.Ptrinfo.stride)
    moving;
  let y = List.find (fun m -> m.Ptrinfo.array.Ifko_codegen.Lower.a_name = "Y") moving in
  Alcotest.(check int) "y loads" 1 y.Ptrinfo.loads;
  Alcotest.(check int) "y stores" 1 y.Ptrinfo.stores

let test_noprefetch_markup () =
  let src =
    {|KERNEL t(N : int, X : ptr double NOPREFETCH, Y : ptr double OUTPUT)
VARS x : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    Y[0] = x;
    X += 1;
    Y += 1;
  LOOP_END
END|}
  in
  let c =
    Ifko_codegen.Lower.lower (Ifko_hil.Typecheck.check (Ifko_hil.Parser.parse_kernel src))
  in
  let targets = Ptrinfo.prefetch_targets c in
  Alcotest.(check (list string)) "only Y is a prefetch target" [ "Y" ]
    (List.map (fun m -> m.Ptrinfo.array.Ifko_codegen.Lower.a_name) targets)

let test_report () =
  let r = Report.analyze (Hil_sources.compile { Defs.routine = Defs.Dot; prec = Instr.S }) in
  Alcotest.(check bool) "vectorizable" true r.Report.vectorizable;
  Alcotest.(check (list string)) "no outputs" [] r.Report.output_arrays;
  Alcotest.(check int) "two prefetch arrays" 2 (List.length r.Report.prefetch_arrays);
  let s = Report.to_string r in
  Alcotest.(check bool) "renders" true (Test_util.contains s "SIMD vectorizable: yes");
  let r2 = Report.analyze (Hil_sources.compile { Defs.routine = Defs.Swap; prec = Instr.S }) in
  Alcotest.(check bool) "swap outputs X and Y" true
    (List.sort compare r2.Report.output_arrays = [ "X"; "Y" ])

let suite =
  [ Alcotest.test_case "liveness straightline" `Quick test_liveness_straightline;
    Alcotest.test_case "liveness loop" `Quick test_liveness_loop;
    Alcotest.test_case "vectorizable verdicts" `Quick test_vectorizable_verdicts;
    Alcotest.test_case "iamax reason" `Quick test_iamax_reason;
    Alcotest.test_case "scalar classes" `Quick test_vec_classes;
    Alcotest.test_case "accumulators" `Quick test_accumulators;
    Alcotest.test_case "moving pointers" `Quick test_ptrinfo;
    Alcotest.test_case "NOPREFETCH markup" `Quick test_noprefetch_markup;
    Alcotest.test_case "analysis report" `Quick test_report;
  ]
