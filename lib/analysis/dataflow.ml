(** A generic iterative dataflow engine over LIL control-flow graphs.

    Analyses are parameterized by a join-semilattice [DOMAIN] and run
    either [Forward] (values flow entry -> exit along CFG edges) or
    [Backward] (exit -> entry).  The engine is worklist-based: a block
    is re-transferred only when the value on its incoming side changed,
    so sparse CFG updates converge without re-sweeping the whole
    function.  {!Liveness} and the {!Lint} checkers are built on it. *)

type direction = Forward | Backward

module type DOMAIN = sig
  type t

  val bottom : t
  (** The identity of {!join}; also the value assumed on the incoming
      side of blocks the analysis has not reached yet. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Make (D : DOMAIN) = struct
  type result = {
    at_entry : (string, D.t) Hashtbl.t;  (** value at each block's entry *)
    at_exit : (string, D.t) Hashtbl.t;  (** value at each block's exit *)
  }

  let get tbl label = Option.value ~default:D.bottom (Hashtbl.find_opt tbl label)
  let entry_value r label = get r.at_entry label
  let exit_value r label = get r.at_exit label

  (** [run ~direction ~boundary ~transfer f] iterates [transfer] to a
      fixpoint.  [transfer b v] maps the value on [b]'s incoming side
      (entry when forward, exit when backward) to the outgoing side.
      [boundary] is the value entering the CFG: joined into the entry
      block's input when forward, into every [Ret] block's output when
      backward. *)
  let run ~direction ?(boundary = D.bottom) ~transfer (f : Cfg.func) =
    let n = List.length f.Cfg.blocks in
    let at_entry = Hashtbl.create n and at_exit = Hashtbl.create n in
    let preds = Cfg.predecessors f in
    let succs b = Block.successors b.Block.term in
    let by_label = Hashtbl.create n in
    List.iter (fun b -> Hashtbl.replace by_label b.Block.label b) f.Cfg.blocks;
    let entry_label =
      match f.Cfg.blocks with [] -> None | b :: _ -> Some b.Block.label
    in
    (* Worklist: a queue plus a membership flag so a block is enqueued
       at most once between visits.  Seeded with every block in an
       order matching the direction, for fast first-sweep convergence. *)
    let queue = Queue.create () in
    let queued = Hashtbl.create n in
    let enqueue label =
      if Hashtbl.mem by_label label && not (Hashtbl.mem queued label) then begin
        Hashtbl.replace queued label ();
        Queue.add label queue
      end
    in
    let seed =
      match direction with
      | Forward -> f.Cfg.blocks
      | Backward -> List.rev f.Cfg.blocks
    in
    List.iter (fun b -> enqueue b.Block.label) seed;
    while not (Queue.is_empty queue) do
      let label = Queue.pop queue in
      Hashtbl.remove queued label;
      let b = Hashtbl.find by_label label in
      match direction with
      | Forward ->
        let inn =
          List.fold_left
            (fun acc p -> D.join acc (get at_exit p))
            (if entry_label = Some label then boundary else D.bottom)
            (Option.value ~default:[] (Hashtbl.find_opt preds label))
        in
        Hashtbl.replace at_entry label inn;
        let out = transfer b inn in
        if not (D.equal out (get at_exit label)) then begin
          Hashtbl.replace at_exit label out;
          List.iter enqueue (succs b)
        end
      | Backward ->
        let out =
          List.fold_left
            (fun acc s -> D.join acc (get at_entry s))
            (match b.Block.term with Block.Ret _ -> boundary | _ -> D.bottom)
            (succs b)
        in
        Hashtbl.replace at_exit label out;
        let inn = transfer b out in
        if not (D.equal inn (get at_entry label)) then begin
          Hashtbl.replace at_entry label inn;
          List.iter enqueue
            (Option.value ~default:[] (Hashtbl.find_opt preds label))
        end
    done;
    { at_entry; at_exit }
end

(** The workhorse domain: sets of registers under union (liveness,
    reaching definitions as a may-analysis, ...). *)
module Reg_set_domain = struct
  type t = Reg.Set.t

  let bottom = Reg.Set.empty
  let equal = Reg.Set.equal
  let join = Reg.Set.union
end

(** A must-analysis domain over register sets: the join is
    intersection, with [Top] standing for "no path reached yet" (the
    intersection identity).  Used by the def-before-use checker. *)
module Reg_must_domain = struct
  type t = Top | Known of Reg.Set.t

  let bottom = Top

  let equal a b =
    match (a, b) with
    | Top, Top -> true
    | Known x, Known y -> Reg.Set.equal x y
    | Top, Known _ | Known _, Top -> false

  let join a b =
    match (a, b) with
    | Top, v | v, Top -> v
    | Known x, Known y -> Known (Reg.Set.inter x y)
end
