(** SIMD-vectorizability analysis of the tunable loop.

    The analysis is deliberately conservative, mirroring FKO's: a loop
    qualifies only if its body is a single straight-line block of
    same-precision FP operations over unit-stride ascending arrays,
    whose cross-iteration scalars are all add-reductions.  In
    particular the compare-and-branch reduction of [iamax] is rejected
    — reproducing the paper's result that neither FKO nor icc
    vectorizes it while hand-tuned assembly does. *)

type scalar_class =
  | Reduction  (** add-accumulator; becomes a vector accumulator *)
  | Invariant  (** read-only in the loop; broadcast once *)
  | Temp  (** defined before use each iteration; widened in place *)

type t = {
  vectorizable : bool;
  reason : string;  (** why not, when [vectorizable = false] *)
  precision : Instr.fsize option;
  classes : (Reg.t * scalar_class) list;
  max_unroll : int;
      (** maximum safe unrolling reported to the search *)
}

val analyze : Ifko_codegen.Lower.compiled -> t
(** Analyze the (not yet transformed) compiled kernel. *)
