(* Tuning-store tests: content-addressed keys (and their invalidation
   on kernel edits), journal round-trips, truncated/corrupt-journal
   recovery, compaction, and concurrent writers from the domain pool. *)

module Store = Ifko_store.Store

let tmp_store () =
  let path = Filename.temp_file "ifko_store_test" ".jsonl" in
  Sys.remove path;
  path

let read_lines path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)

let append_raw path s =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc s;
  close_out oc

let outcome : Store.outcome Alcotest.testable =
  Alcotest.testable
    (fun fmt o ->
      match o with
      | Store.Timed { mflops; cycles } ->
        Format.fprintf fmt "Timed(%.17g,%.17g)" mflops cycles
      | Store.Test_failed -> Format.fprintf fmt "Test_failed"
      | Store.Illegal -> Format.fprintf fmt "Illegal")
    ( = )

let test_keys () =
  let key ?(kernel = "lil-A") ?(machine = "P4E") ?(n = 80000) ?(seed = 7) ?(check = false)
      ?fidelity ?(params = "p1") () =
    Store.probe_key ~kernel ~machine ~context:"out-of-cache" ~n ~seed ~check ?fidelity
      ~params ()
  in
  Alcotest.(check string) "deterministic" (key ()) (key ());
  List.iter
    (fun (label, other) ->
      Alcotest.(check bool) (label ^ " changes the key") false (key () = other))
    [ ("kernel edit", key ~kernel:"lil-B" ());
      ("machine", key ~machine:"Opteron" ());
      ("problem size", key ~n:1024 ());
      ("workload seed", key ~seed:8 ());
      ("per-pass checking", key ~check:true ());
      ("parameter point", key ~params:"p2" ());
      ("sampled fidelity", key ~fidelity:"sampled" ());
    ];
  (* sampled keys are themselves deterministic and distinct per fidelity *)
  Alcotest.(check string) "sampled deterministic" (key ~fidelity:"sampled" ())
    (key ~fidelity:"sampled" ());
  Alcotest.(check bool) "fidelities do not alias" false
    (key ~fidelity:"sampled" () = key ~fidelity:"exact" ());
  (* length-prefixed digesting: shifting a boundary must not alias *)
  Alcotest.(check bool) "no field-boundary aliasing" false
    (Store.digest [ "ab"; "c" ] = Store.digest [ "a"; "bc" ])

let test_round_trip () =
  let path = tmp_store () in
  let st = Store.open_ ~seed:42 path in
  Alcotest.(check (option int)) "seed in header" (Some 42) (Store.seed st);
  let mflops = 1234.5678901234567 in
  Store.add st ~key:"k-timed" ~params:"SV:N" ~prov:"ddot@P4E" (Store.Timed { mflops; cycles = 9.75e6 });
  Store.add st ~key:"k-fail" ~params:"" ~prov:"" Store.Test_failed;
  Store.add st ~key:"k-illegal" ~params:"" ~prov:"" Store.Illegal;
  Store.close st;
  let st2 = Store.open_ path in
  Alcotest.(check (option int)) "seed survives reopen" (Some 42) (Store.seed st2);
  Alcotest.(check int) "entries" 3 (Store.entries st2);
  Alcotest.(check int) "no corrupt lines" 0 (Store.corrupt st2);
  Alcotest.(check (option outcome)) "timed reloads bit-identically"
    (Some (Store.Timed { mflops; cycles = 9.75e6 }))
    (Store.find st2 ~key:"k-timed");
  Alcotest.(check (option outcome)) "test-failed" (Some Store.Test_failed)
    (Store.find st2 ~key:"k-fail");
  Alcotest.(check (option outcome)) "illegal" (Some Store.Illegal)
    (Store.find st2 ~key:"k-illegal");
  Alcotest.(check (option outcome)) "miss" None (Store.find st2 ~key:"absent");
  Alcotest.(check int) "hit counter" 3 (Store.hits st2);
  Alcotest.(check int) "miss counter" 1 (Store.misses st2);
  Store.close st2;
  Store.clear path

let test_escaping () =
  let path = tmp_store () in
  let st = Store.open_ path in
  let key = "odd \"key\"\twith\nnewline \\ backslash" in
  Store.add st ~key ~params:"p \"q\"\n" ~prov:"x\\y" Store.Illegal;
  Store.close st;
  let st2 = Store.open_ path in
  Alcotest.(check int) "no corrupt lines" 0 (Store.corrupt st2);
  Alcotest.(check (option outcome)) "escaped key round-trips" (Some Store.Illegal)
    (Store.find st2 ~key);
  Store.close st2;
  Store.clear path

let test_truncated_journal_recovery () =
  let path = tmp_store () in
  let st = Store.open_ ~seed:1 path in
  Store.add st ~key:"a" ~params:"" ~prov:"" (Store.Timed { mflops = 1.0; cycles = 2.0 });
  Store.add st ~key:"b" ~params:"" ~prov:"" Store.Test_failed;
  Store.close st;
  (* a crash mid-append leaves a torn trailing line *)
  append_raw path "{\"k\":\"c\",\"o\":\"timed\",\"mflo";
  let st2 = Store.open_ path in
  Alcotest.(check int) "intact entries survive" 2 (Store.entries st2);
  Alcotest.(check int) "torn line counted" 1 (Store.corrupt st2);
  (* the store stays appendable after recovery *)
  Store.add st2 ~key:"d" ~params:"" ~prov:"" Store.Illegal;
  Store.close st2;
  let st3 = Store.open_ path in
  Alcotest.(check int) "append after recovery persisted" 3 (Store.entries st3);
  Alcotest.(check (option outcome)) "new entry" (Some Store.Illegal)
    (Store.find st3 ~key:"d");
  Store.close st3;
  Store.clear path

let test_corrupt_middle_line () =
  let path = tmp_store () in
  let st = Store.open_ path in
  Store.add st ~key:"a" ~params:"" ~prov:"" Store.Illegal;
  Store.close st;
  append_raw path "complete garbage, not json\n";
  append_raw path "{\"k\":\"b\",\"o\":\"timed\",\"mflops\":3.5,\"cycles\":7,\"params\":\"\",\"prov\":\"\"}\n";
  let st2 = Store.open_ path in
  Alcotest.(check int) "good lines around the bad one load" 2 (Store.entries st2);
  Alcotest.(check int) "bad line counted" 1 (Store.corrupt st2);
  Alcotest.(check (option outcome)) "record after the bad line loads"
    (Some (Store.Timed { mflops = 3.5; cycles = 7.0 }))
    (Store.find st2 ~key:"b");
  Store.close st2;
  Store.clear path

(* The stat report splits skipped lines into the two classes a replica
   operator needs to tell apart: mid-file corruption (data loss) and a
   torn trailing line (a crash — or another writer — mid-append). *)
let test_stat_torn_vs_corrupt () =
  let path = tmp_store () in
  let st = Store.open_ ~seed:5 path in
  Store.add st ~key:"a" ~params:"" ~prov:"" (Store.Timed { mflops = 1.0; cycles = 2.0 });
  Store.close st;
  append_raw path "mid-file garbage\n";
  append_raw path "{\"k\":\"b\",\"o\":\"illegal\",\"params\":\"\",\"prov\":\"\"}\n";
  append_raw path "{\"k\":\"c\",\"o\":\"timed\",\"mflo" (* truncated mid-line *);
  let st2 = Store.open_ path in
  let s = Store.stat st2 in
  Alcotest.(check int) "entries" 2 s.Store.st_entries;
  Alcotest.(check int) "one corrupt (mid-file) line" 1 s.Store.st_corrupt;
  Alcotest.(check int) "one torn (trailing) line" 1 s.Store.st_torn;
  Alcotest.(check int) "corrupt() stays the total skipped" 2 (Store.corrupt st2);
  Alcotest.(check int) "torn accessor" 1 (Store.torn st2);
  (* the JSON stat carries both counters, always present *)
  let fields = Store.Json.parse (Store.stat_json s) in
  Alcotest.(check (option (float 0.0))) "corrupt_lines in json" (Some 1.0)
    (Store.Json.num fields "corrupt_lines");
  Alcotest.(check (option (float 0.0))) "torn_lines in json" (Some 1.0)
    (Store.Json.num fields "torn_lines");
  Alcotest.(check (option (float 0.0))) "seed in json" (Some 5.0)
    (Store.Json.num fields "seed");
  Store.close st2;
  Store.clear path

(* The read-only iteration API the warm-start seeder scans with:
   fold_entries walks every entry in sorted-key order (deterministic
   regardless of append order), iter_tunes yields only timed tune-level
   entries, and the stat report splits the tune/probe populations. *)
let test_fold_and_tunes () =
  let path = tmp_store () in
  let st = Store.open_ ~seed:3 path in
  (* appended out of key order on purpose *)
  Store.add st ~key:"zz-probe" ~params:"SV:N" ~prov:"ddot@P4E"
    (Store.Timed { mflops = 10.0; cycles = 1.0 });
  Store.add st ~key:"mm-tune" ~params:"{\"best\":\"...\"}" ~prov:"tune ddot@P4E"
    (Store.Timed { mflops = 20.0; cycles = 2.0 });
  Store.add st ~key:"aa-probe" ~params:"" ~prov:"ddot@P4E" Store.Test_failed;
  Store.add st ~key:"nn-tune-failed" ~params:"" ~prov:"tune dasum@P4E" Store.Illegal;
  Alcotest.(check bool) "tune prov classifier" true (Store.is_tune_prov "tune ddot@P4E");
  Alcotest.(check bool) "probe prov is not a tune" false (Store.is_tune_prov "ddot@P4E");
  let keys =
    Store.fold_entries st ~init:[] ~f:(fun acc ~key ~params:_ ~prov:_ _ -> key :: acc)
  in
  Alcotest.(check (list string)) "fold_entries walks in sorted-key order"
    [ "aa-probe"; "mm-tune"; "nn-tune-failed"; "zz-probe" ]
    (List.rev keys);
  let tunes = ref [] in
  Store.iter_tunes st ~f:(fun ~key ~params:_ ~prov ~mflops ->
      tunes := (key, prov, mflops) :: !tunes);
  Alcotest.(check (list (triple string string (float 0.0))))
    "iter_tunes yields only the timed tune entries"
    [ ("mm-tune", "tune ddot@P4E", 20.0) ]
    !tunes;
  let s = Store.stat st in
  Alcotest.(check int) "stat: two tune entries" 2 s.Store.st_tunes;
  Alcotest.(check int) "stat: two probe entries" 2 s.Store.st_probes;
  Alcotest.(check int) "tunes + probes = entries" s.Store.st_entries
    (s.Store.st_tunes + s.Store.st_probes);
  (* the split survives a reopen (it is recomputed from the journal) *)
  Store.close st;
  let st2 = Store.open_ path in
  let s2 = Store.stat st2 in
  Alcotest.(check int) "tunes after reopen" 2 s2.Store.st_tunes;
  Alcotest.(check int) "probes after reopen" 2 s2.Store.st_probes;
  Store.close st2;
  Store.clear path

let test_evict () =
  let path = tmp_store () in
  let now = ref 100.0 in
  let st = Store.open_ ~clock:(fun () -> !now) path in
  Store.add st ~key:"old" ~params:"" ~prov:"" (Store.Timed { mflops = 1.0; cycles = 0.0 });
  now := 900.0;
  Store.add st ~key:"new" ~params:"" ~prov:"" (Store.Timed { mflops = 2.0; cycles = 0.0 });
  Alcotest.(check int) "age bound drops only the old entry" 1
    (Store.evict ~max_age:500.0 ~now:1000.0 st);
  Alcotest.(check (option outcome)) "old evicted" None (Store.find st ~key:"old");
  Alcotest.(check (option outcome)) "live entry preserved"
    (Some (Store.Timed { mflops = 2.0; cycles = 0.0 }))
    (Store.find st ~key:"new");
  (* eviction compacted the journal: the dropped entry is gone on disk *)
  Store.close st;
  let st2 = Store.open_ path in
  Alcotest.(check int) "survivor persisted" 1 (Store.entries st2);
  (* size bound: oldest-first until under budget *)
  for i = 0 to 9 do
    Store.add st2
      ~key:(Printf.sprintf "k%d" i)
      ~params:"" ~prov:""
      (Store.Timed { mflops = float_of_int i; cycles = 0.0 })
  done;
  let before = Store.bytes st2 in
  let dropped = Store.evict ~max_bytes:(before / 2) ~now:2000.0 st2 in
  Alcotest.(check bool) "dropped some" true (dropped > 0);
  Alcotest.(check bool) "kept some" true (Store.entries st2 > 0);
  Alcotest.(check bool) "under budget" true (Store.bytes st2 <= before / 2);
  (* entries without timestamps count as arbitrarily old: the k*
     entries (journaled under the default clock) go before "new",
     which still carries its ts=900 stamp from the first handle *)
  Alcotest.(check (option outcome)) "oldest untimestamped evicted first" None
    (Store.find st2 ~key:"k0");
  Alcotest.(check bool) "timestamped entry outlives them" true
    (Store.find st2 ~key:"new" <> None);
  Store.close st2;
  Store.clear path

let test_tune_key () =
  let key ?strategy ?(n = 100) ?(flops = 2.0) () =
    Store.tune_key ?strategy ~kernel:"fp" ~machine:"P4E" ~context:"out-of-cache" ~n
      ~seed:0 ~check:false ~flops_per_n:flops ()
  in
  Alcotest.(check string) "deterministic" (key ()) (key ());
  Alcotest.(check bool) "flops_per_n changes the key" false (key () = key ~flops:3.0 ());
  Alcotest.(check bool) "n changes the key" false (key () = key ~n:200 ());
  Alcotest.(check bool) "strategy changes the key" false
    (key () = key ~strategy:"surrogate" ());
  (* tune keys never collide with probe keys of the same inputs *)
  Alcotest.(check bool) "disjoint from probe keys" false
    (key ()
    = Store.probe_key ~kernel:"fp" ~machine:"P4E" ~context:"out-of-cache" ~n:100 ~seed:0
        ~check:false ~params:"" ())

let test_compact () =
  let path = tmp_store () in
  let st = Store.open_ ~seed:9 path in
  (* rewrite the same key several times: the journal grows, the index
     keeps the last value *)
  for i = 1 to 5 do
    Store.add st ~key:"hot" ~params:"" ~prov:""
      (Store.Timed { mflops = float_of_int i; cycles = 1.0 })
  done;
  Store.add st ~key:"cold" ~params:"" ~prov:"" Store.Test_failed;
  Alcotest.(check int) "journal has one line per append" 7 (List.length (read_lines path));
  Store.compact st;
  Alcotest.(check int) "compacted to header + one line per key" 3
    (List.length (read_lines path));
  (* the handle stays usable after the atomic rename *)
  Store.add st ~key:"late" ~params:"" ~prov:"" Store.Illegal;
  Store.close st;
  let st2 = Store.open_ path in
  Alcotest.(check int) "entries preserved" 3 (Store.entries st2);
  Alcotest.(check (option int)) "header seed preserved" (Some 9) (Store.seed st2);
  Alcotest.(check (option outcome)) "last write wins"
    (Some (Store.Timed { mflops = 5.0; cycles = 1.0 }))
    (Store.find st2 ~key:"hot");
  Alcotest.(check (option outcome)) "append after compact persisted" (Some Store.Illegal)
    (Store.find st2 ~key:"late");
  Store.close st2;
  Store.clear path;
  Alcotest.(check bool) "clear removes the journal" false (Sys.file_exists path)

let test_concurrent_writers () =
  let path = tmp_store () in
  let st = Store.open_ path in
  let n = 200 in
  let _ : unit list =
    Ifko_par.Par.map ~jobs:4
      (fun i ->
        Store.add st ~key:(Printf.sprintf "key-%03d" i) ~params:"" ~prov:""
          (Store.Timed { mflops = float_of_int i; cycles = float_of_int (2 * i) }))
      (List.init n (fun i -> i))
  in
  Store.close st;
  let st2 = Store.open_ path in
  Alcotest.(check int) "every domain's appends persisted" n (Store.entries st2);
  Alcotest.(check int) "no interleaving corrupted a line" 0 (Store.corrupt st2);
  for i = 0 to n - 1 do
    Alcotest.(check (option outcome)) "value intact"
      (Some (Store.Timed { mflops = float_of_int i; cycles = float_of_int (2 * i) }))
      (Store.find st2 ~key:(Printf.sprintf "key-%03d" i))
  done;
  Store.close st2;
  Store.clear path

let suite =
  [ Alcotest.test_case "content-addressed keys" `Quick test_keys;
    Alcotest.test_case "journal round-trip" `Quick test_round_trip;
    Alcotest.test_case "escaping round-trip" `Quick test_escaping;
    Alcotest.test_case "truncated-journal recovery" `Quick test_truncated_journal_recovery;
    Alcotest.test_case "corrupt middle line" `Quick test_corrupt_middle_line;
    Alcotest.test_case "stat splits torn from corrupt" `Quick test_stat_torn_vs_corrupt;
    Alcotest.test_case "fold_entries and iter_tunes" `Quick test_fold_and_tunes;
    Alcotest.test_case "age- and size-bounded eviction" `Quick test_evict;
    Alcotest.test_case "tune keys" `Quick test_tune_key;
    Alcotest.test_case "compaction" `Quick test_compact;
    Alcotest.test_case "concurrent writers" `Quick test_concurrent_writers;
  ]
