(** ATLAS's hand-tuned Level 1 BLAS kernel collection.

    ATLAS ships, for every routine, a set of laboriously hand-tuned
    implementations — mostly ANSI C with inline-assembly prefetch, plus
    a few all-assembly kernels — and empirically selects among them at
    install time.  This module reproduces that collection:

    - the C-based candidates are modelled as fixed high-level-tuned
      parameter points (source-level unrolling, accumulator splitting,
      inline prefetch) compiled through the same backend;
    - the all-assembly candidates ([assembly = true], shown with a [*]
      suffix in the figures, as in the paper) use techniques FKO does
      not implement: CISC two-array indexing, AMD-style block fetch for
      [copy], and the compare-mask SIMD vectorization of [iamax] that
      neither FKO nor icc performs automatically. *)

type candidate = {
  cand_name : string;
  assembly : bool;
  build :
    cfg:Ifko_machine.Config.t ->
    pf:(Instr.pf_kind * int) option ->
    wnt:bool ->
    Cfg.func;
}

val candidates : Ifko_blas.Defs.kernel_id -> candidate list
(** The implementations ATLAS's search considers for one routine. *)
