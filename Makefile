# Convenience targets; `make check` is what CI runs.

.PHONY: all build test fmt check bench simbench fuzz

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting check: `dune build @fmt` requires ocamlformat, which not
# every environment has — skip with a notice rather than fail there.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

check: build fmt test

bench:
	dune exec bench/main.exe

# Simulator-throughput report: interpreted MIPS of the reference
# walker vs. the threaded-code engine on every BLAS kernel, with
# fast-path coverage and cycle attribution, guarded against the
# committed results (>15% geomean regression fails the target; the
# baseline is read before the results file is rewritten).
simbench:
	dune exec bench/main.exe -- --exp simbench --no-store --profile \
		--baseline BENCH_results.json

# Deterministic fuzz smoke (CI runs the same seed; the nightly
# workflow explores a fresh date-derived seed at a larger budget).
fuzz:
	dune exec bin/ifko_cli.exe -- fuzz --seed 42 --count 200
