(** The differential fuzzing loop: generate → sample → compare →
    shrink → persist.

    Everything is deterministic from [seed]: the kernel stream, the
    sampled parameter points, the workloads the oracle runs, and hence
    the full log/corpus output — two runs with equal arguments are
    byte-identical.  Replaying the corpus turns every bug the fuzzer
    ever found into an ordinary regression test ([test/test_fuzz.ml]
    registers one alcotest case per reproducer). *)

type stats = {
  kernels : int;  (** kernels generated *)
  points : int;  (** parameter points probed *)
  agree : int;  (** differentially verified points *)
  rejected : int;  (** points the pipeline refused (boundary values) *)
  gen_failed : int;  (** generated kernels that failed to lower — always 0
                         unless the generator itself regressed *)
  cross_checked : int;
      (** points compared with bit-exact arrays because {!run}'s
          [cross_check] was on and {!Ifko_analysis.Depend} proved the
          kernel's references independent *)
  bugs : (Corpus.case * string) list;  (** shrunk failures, latest first *)
  written : string list;  (** reproducer paths written, latest first *)
}

val stats_to_string : stats -> string
(** One-line deterministic summary. *)

val compile : Ifko_hil.Ast.kernel -> Ifko_codegen.Lower.compiled
(** Typecheck, lower, and lint-gate a kernel; raises if any stage
    reports an error.  The lint gate keeps the shrinker honest: a
    candidate whose statement removal orphans a variable into a
    read-before-write (undefined behaviour) is invalid, not a smaller
    bug. *)

val run :
  ?points_per_kernel:int ->
  ?max_size:int ->
  ?check_each_pass:bool ->
  ?cross_check:bool ->
  ?corpus:string ->
  ?inject:string * (Ifko_codegen.Lower.compiled -> unit) ->
  ?sizes:int list ->
  ?log:(string -> unit) ->
  cfg:Ifko_machine.Config.t ->
  seed:int ->
  count:int ->
  unit ->
  stats
(** Fuzz [count] kernels at [points_per_kernel] (default 3) parameter
    points each.  Each mismatch is shrunk ({!Shrink.minimize}) and, when
    [corpus] names a directory, written there as a reproducer.
    [cross_check] tightens the oracle against the dependence analysis:
    whenever {!Ifko_analysis.Depend} proves every reference of a
    kernel independent, array contents must agree bit-exactly (the
    reduction return keeps its ULP budget) — a divergence convicts
    either a transform or the independence claim, and is persisted to
    the corpus like any other bug.  [inject] forwards test-only fault
    injection to every pipeline invocation, including the shrinker's —
    so the minimized reproducer still triggers the injected bug.  [log]
    receives progress lines (bugs, generator failures); it never
    receives timestamps, keeping output deterministic. *)

val replay :
  ?check_each_pass:bool ->
  ?sizes:int list ->
  cfg:Ifko_machine.Config.t ->
  string ->
  (unit, string) result
(** Re-run one reproducer file through the current pipeline.  [Ok] if
    the kernel now verifies differentially at the recorded point (or
    the pipeline now cleanly rejects the point); [Error] with the
    mismatch otherwise. *)

val replay_dir :
  ?check_each_pass:bool ->
  ?sizes:int list ->
  cfg:Ifko_machine.Config.t ->
  string ->
  (string * (unit, string) result) list
(** {!replay} every [*.repro] in a directory, sorted by path. *)
