lib/transform/branchopt.ml: Block Cfg Hashtbl List Option
