open Ifko_transform

type probe = Params.t -> float

type result = {
  best : Params.t;
  best_perf : float;
  start_perf : float;
  contributions : (string * float) list;
  evaluations : int;
}

type batch_map = (Params.t -> float) -> Params.t list -> float list

(* The search as data: a plan of per-dimension groups, each a sequence
   of sweeps.  A sweep receives the current incumbent and yields the
   variant batch to measure — the incumbent advances between sweeps, so
   later sweeps of a group see earlier winners, exactly like the old
   one-array-at-a-time prefetch walk.  [Begin]/[End] bracket a tuned
   dimension for the per-dimension contribution accounting. *)
type op =
  | Begin of string
  | Sweep of (Params.t -> Params.t list)
  | End

let plan ?(extensions = false) ?(warm = []) ~cfg ~report ~init () =
  let arrays = List.map fst init.Params.prefetch in
  let group name sweeps = (Begin name :: List.map (fun f -> Sweep f) sweeps) @ [ End ] in
  (* Warm-start points (winners of nearest-neighbor past tunes) are an
     extra opening sweep: they can only advance the incumbent.  An
     empty list leaves the plan — and the probe sequence — exactly as
     before the strategy refactor. *)
  (if warm = [] then [] else group "WARM" [ (fun _ -> warm) ])
  (* SV: confirm the default choice (cheap: two points). *)
  @ group "SV"
      [ (fun cur ->
          List.map (fun sv -> { cur with Params.sv = sv }) (Space.sv_candidates report));
      ]
  (* WNT *)
  @ group "WNT"
      [ (fun cur ->
          List.map (fun wnt -> { cur with Params.wnt }) (Space.wnt_candidates report));
      ]
  (* Prefetch distance, one array at a time (including "no prefetch"
     via the instruction dimension below). *)
  @ group "PF DST"
      (List.map
         (fun name cur ->
           List.map (Space.set_pf_dist cur name) (Space.pf_dist_candidates cfg))
         arrays)
  (* Prefetch instruction flavour per array. *)
  @ group "PF INS"
      (List.map
         (fun name cur ->
           List.map (Space.set_pf_ins cur name) (Space.pf_ins_candidates cfg))
         arrays)
  (* Unrolling. *)
  @ group "UR"
      [ (fun cur ->
          List.map
            (fun u -> { cur with Params.unroll = u })
            (Space.unroll_candidates report));
      ]
  (* Accumulator expansion. *)
  @ group "AE"
      [ (fun cur ->
          List.map (fun ae -> { cur with Params.ae = ae }) (Space.ae_candidates report));
      ]
  (* Extension dimensions (paper future work), when enabled. *)
  @ (if not extensions then []
     else
       group "BF"
         [ (fun cur ->
             List.map
               (fun bf -> { cur with Params.bf = bf })
               (Space.bf_candidates ~extensions report));
         ]
       @ group "CISC"
           [ (fun cur ->
               List.map
                 (fun cisc -> { cur with Params.cisc })
                 (Space.cisc_candidates ~extensions report));
           ])
  (* Restricted 2-D refinement over the known UR x AE interaction. *)
  @ group "UR*AE"
      [ (fun cur ->
          let u0 = cur.Params.unroll in
          let urs =
            List.sort_uniq compare
              (List.filter
                 (fun u -> u >= 1 && u <= report.Ifko_analysis.Report.max_unroll)
                 [ u0 / 2; u0; u0 * 2 ])
          in
          let aes = List.filter (fun a -> a = 0 || a >= 2) (Space.ae_candidates report) in
          List.concat_map
            (fun u ->
              List.map (fun ae -> { cur with Params.unroll = u; Params.ae = ae }) aes)
            urs);
      ]
  (* Re-polish the prefetch pair after the computational shape settled
     (a second, shorter pass — the "defacto expert system / search
     hybrid" the paper describes): UR and AE change how many issue
     slots prefetch costs, so both the instruction (including "none")
     and the distance are revisited. *)
  @ group "PF2"
      (List.concat_map
         (fun name ->
           [ (fun cur ->
               List.map (Space.set_pf_ins cur name) (Space.pf_ins_candidates cfg));
             (fun cur ->
               List.map (Space.set_pf_dist cur name) (Space.pf_dist_candidates cfg));
           ])
         arrays)

(* The modified line search as a {!Strategy.t}.  The incumbent advances
   by a sequential left-to-right strict-[>] fold over each observed
   batch, exactly as the original one-at-a-time loop did: the first
   candidate wins ties, so the trajectory does not depend on the
   parallelism degree, and the default plan's probe sequence stays
   bit-identical to the pre-strategy sweep. *)
let strategy ?(extensions = false) ?(warm = []) ~cfg ~report ~init ~init_perf () =
  let cur = ref init in
  let cur_perf = ref init_perf in
  let todo = ref (plan ~extensions ~warm ~cfg ~report ~init ()) in
  let contributions = ref [] in
  let open_group = ref None in
  let rec propose () =
    match !todo with
    | [] -> []
    | Begin name :: rest ->
      todo := rest;
      open_group := Some (name, !cur_perf);
      propose ()
    | End :: rest ->
      todo := rest;
      (match !open_group with
      | Some (name, before) ->
        let ratio = if before > 0.0 then !cur_perf /. before else 1.0 in
        contributions := (name, ratio) :: !contributions;
        open_group := None
      | None -> ());
      propose ()
    | Sweep f :: rest -> (
      todo := rest;
      match f !cur with [] -> propose () | variants -> variants)
  in
  let observe vals =
    List.iter
      (fun (p, v) ->
        if v > !cur_perf then begin
          cur := p;
          cur_perf := v
        end)
      vals
  in
  {
    Strategy.name = "linesearch";
    propose;
    observe;
    best = (fun () -> (!cur, !cur_perf));
    contributions = (fun () -> List.rev !contributions);
  }

let run ?(extensions = false) ?(map_batch = Strategy.seq_map) ~cfg ~report ~init probe =
  let r =
    Strategy.run ~map_batch ~init
      ~make:(fun ~init_perf -> strategy ~extensions ~cfg ~report ~init ~init_perf ())
      probe
  in
  {
    best = r.Strategy.best;
    best_perf = r.Strategy.best_perf;
    start_perf = r.Strategy.start_perf;
    contributions = r.Strategy.contributions;
    evaluations = r.Strategy.evaluations;
  }
