(** Reference semantics of the surveyed BLAS, precision-faithful.

    These are the oracles the tester compares compiled kernels against.
    For single precision every arithmetic result is rounded to 32 bits,
    so the reference tracks what SSE hardware computes; reductions use
    plain left-to-right order — the tester's tolerance absorbs the
    reassociation introduced by vectorization and accumulator
    expansion. *)

val round_to : Instr.fsize -> float -> float
(** Round a value to the given precision. *)

val swap : x:float array -> y:float array -> unit
val scal : Instr.fsize -> alpha:float -> x:float array -> unit
val copy : x:float array -> y:float array -> unit
val axpy : Instr.fsize -> alpha:float -> x:float array -> y:float array -> unit
val dot : Instr.fsize -> x:float array -> y:float array -> float
val asum : Instr.fsize -> x:float array -> float

val iamax : x:float array -> int
(** Index of the first element of maximum absolute value (0-based), 0
    for the empty vector — matching the kernel's strict-[>] update. *)
