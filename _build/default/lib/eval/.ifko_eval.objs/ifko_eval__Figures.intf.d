lib/eval/figures.mli: Eval
