lib/search/linesearch.mli: Ifko_analysis Ifko_machine Ifko_transform
