(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section on the simulated machines.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- --exp fig2   -- one experiment
     dune exec bench/main.exe -- --quick      -- double precision only
     dune exec bench/main.exe -- --bechamel   -- Bechamel micro-benchmarks
                                                 of the harness machinery
     --store PATH   persistent tuning store (default BENCH_store.jsonl;
                    a second run is answered mostly from the journal)
     --no-store     disable the store
     --jobs N       parallel probe evaluation (bit-identical results)
     --json PATH    machine-readable run report (default BENCH_results.json)
     --profile      per-kernel fast-path coverage, superblock fusion and
                    cycle-attribution counters in the simbench experiment
     --baseline P   read geomean speedups and full-fidelity cycles from
                    a previous results file (before anything is
                    overwritten); fail the run if the fresh simbench
                    geomeans regress by more than 15%, if sampled
                    fidelity misses its cycle-error budget against this
                    run or against the baseline's full-fidelity cycles,
                    if the sampled work ratio falls under 5x, if the
                    sampled wall speedup falls under 3.5x, or if
                    sampled us/measure regresses >20% vs the baseline
     --delta-md P   write a baseline-vs-current markdown table to P
                    (CI appends it to the GitHub job summary)

   Experiments: table1 table2 fig2 fig3 fig4 fig5a fig5b table3 fig7
                opteron_l2 ablations simbench servebench all *)

open Ifko_blas
open Ifko_machine

let seed = 20050614 (* ICPP 2005 *)

let quick = ref false
let selected : string list ref = ref []
let bechamel_mode = ref false
let store_path = ref (Some "BENCH_store.jsonl")
let json_path = ref "BENCH_results.json"
let jobs = ref 1
let store : Ifko_store.Store.t option ref = ref None
let profile_mode = ref false

(* Geomeans (and, when the file has them, per-kernel full-fidelity
   cycle counts) of a previous run, captured at argument-parse time —
   before this run overwrites the results file.  The fidelity fields
   are optional so results files from before the sampled timer still
   work as baselines for the throughput gates. *)
type baseline_data = {
  b_untimed : float;
  b_timed : float;
  b_fid_err : float option; (* geomean_cycle_err_pct *)
  b_fid_speedup : float option; (* geomean_sampled_speedup *)
  b_fid_work : float option; (* geomean_work_ratio *)
  b_fid_us : float option; (* geomean_sampled_us_per_measure *)
  b_full_us : float option; (* geomean_full_us_per_measure *)
  b_full_cycles : (string * float) list; (* per-kernel full-fidelity cycles *)
}

let baseline : baseline_data option ref = ref None
let delta_md : string option ref = ref None

let kernels () =
  if !quick then List.filter (fun k -> k.Defs.prec = Instr.D) Defs.all else Defs.all

(* Studies are expensive; compute each (machine, context) pair once per
   process — and, through the store, once per journal. *)
let study_cache : (string, Ifko_eval.Eval.study) Hashtbl.t = Hashtbl.create 4

let study ~cfg ~context ~n =
  let key = Printf.sprintf "%s/%s/%d" cfg.Config.name (Ifko_sim.Timer.context_name context) n in
  match Hashtbl.find_opt study_cache key with
  | Some s -> s
  | None ->
    Printf.printf "... running study %s (%d kernels)\n%!" key (List.length (kernels ()));
    let s =
      Ifko_eval.Eval.run_study ~kernels:(kernels ())
        ~progress:(fun line -> Printf.printf "      %s\n%!" line)
        ?store:!store ~jobs:!jobs ~cfg ~context ~n ~seed ()
    in
    Hashtbl.replace study_cache key s;
    s

let p4e_oc () = study ~cfg:Config.p4e ~context:Ifko_sim.Timer.Out_of_cache ~n:80000
let opteron_oc () = study ~cfg:Config.opteron ~context:Ifko_sim.Timer.Out_of_cache ~n:80000
let p4e_l2 () = study ~cfg:Config.p4e ~context:Ifko_sim.Timer.In_l2 ~n:1024
let opteron_l2 () = study ~cfg:Config.opteron ~context:Ifko_sim.Timer.In_l2 ~n:1024

(* ---------- experiments ---------- *)

let exp_table1 () = print_string (Ifko_eval.Figures.table1 ())
let exp_table2 () = print_string (Ifko_eval.Figures.table2 ())

let exp_fig2 () =
  print_string
    (Ifko_eval.Figures.relative_figure
       ~title:
         "Figure 2. Relative speedups of various tuning methods on P4E, N=80000, out-of-cache"
       (p4e_oc ()))

let exp_fig3 () =
  print_string
    (Ifko_eval.Figures.relative_figure
       ~title:
         "Figure 3. Relative speedups of various tuning methods on Opteron, N=80000, out-of-cache"
       (opteron_oc ()))

let exp_fig4 () =
  print_string
    (Ifko_eval.Figures.relative_figure
       ~title:
         "Figure 4. Relative speedups of various tuning methods on P4E, N=1024, in-L2 cache"
       (p4e_l2 ()))

let exp_fig5a () = print_string (Ifko_eval.Figures.fig5a (p4e_oc ()) (opteron_oc ()))
let exp_fig5b () = print_string (Ifko_eval.Figures.fig5b ~oc:(p4e_oc ()) ~l2:(p4e_l2 ()))

let contexts_for_table3 () =
  [ ("P4E, out-of-cache", p4e_oc ());
    ("Opteron, out-of-cache", opteron_oc ());
    ("P4E, in-L2 cache", p4e_l2 ());
  ]

let exp_table3 () = print_string (Ifko_eval.Figures.table3 (contexts_for_table3 ()))
let exp_fig7 () = print_string (Ifko_eval.Figures.fig7 (contexts_for_table3 ()))

let exp_opteron_l2 () = print_string (Ifko_eval.Figures.opteron_l2_note (opteron_l2 ()))

(* ---------- ablations (design choices DESIGN.md calls out) ---------- *)

let ablation_search () =
  (* 1-D pure line search vs. the relaxed search with 2-D refinement *)
  print_endline "Ablation 1: pure 1-D line search vs. modified line search (P4E, oc)";
  let cfg = Config.p4e in
  List.iter
    (fun id ->
      let compiled = Hil_sources.compile id in
      let spec = Workload.timer_spec id ~seed in
      let flops_per_n = Defs.flops_per_n id.Defs.routine in
      let test _ = true in
      let tuned =
        Ifko_search.Driver.tune ?store:!store ~jobs:!jobs ~seed ~cfg
          ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000 ~flops_per_n ~test compiled
      in
      (* the pure-1-D result is the state before the UR*AE / PF2 refinements *)
      let pure_1d =
        List.fold_left
          (fun acc (dim, ratio) ->
            if dim = "UR*AE" || dim = "PF2" then acc else acc *. ratio)
          tuned.Ifko_search.Driver.fko_mflops tuned.Ifko_search.Driver.contributions
      in
      Printf.printf "  %-7s pure-1D=%.0f  modified=%.0f MFLOPS  (refinement %+.1f%%, %d evals)\n"
        (Defs.name id) pure_1d tuned.Ifko_search.Driver.ifko_mflops
        (100.0 *. ((tuned.Ifko_search.Driver.ifko_mflops /. Float.max 1e-9 pure_1d) -. 1.0))
        tuned.Ifko_search.Driver.evaluations)
    [ { Defs.routine = Defs.Dot; prec = Instr.D };
      { Defs.routine = Defs.Asum; prec = Instr.S };
    ]

let ablation_prefetch_model () =
  print_endline
    "Ablation 2: model-default prefetch distance (2*L) vs. empirically tuned (P4E, oc)";
  let cfg = Config.p4e in
  List.iter
    (fun id ->
      let compiled = Hil_sources.compile id in
      let report = Ifko_analysis.Report.analyze compiled in
      let d = Ifko_transform.Params.default ~line_bytes:cfg.Config.prefetchable_line report in
      let spec = Workload.timer_spec id ~seed in
      let flops = Defs.flops_per_n id.Defs.routine in
      let time p =
        let f = Ifko_search.Driver.compile_point ~cfg compiled p in
        match
          Ifko_store.Store.cached ?store:!store
            ~key:
              (Ifko_store.Store.timing_key ~kind:"ablation2" ~func:(Cfg.to_string f)
                 ~machine:cfg.Config.name ~context:"out-of-cache" ~n:80000 ~seed)
            ~params:(Ifko_transform.Params.to_string p)
            ~prov:(Printf.sprintf "ablation2:%s" (Defs.name id))
            (fun () ->
              let cycles =
                Ifko_sim.Timer.measure ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec
                  ~n:80000 f
              in
              Ifko_store.Store.Timed
                { cycles;
                  mflops = Ifko_sim.Timer.mflops ~cfg ~flops_per_n:flops ~n:80000 ~cycles
                })
        with
        | Ifko_store.Store.Timed { mflops; _ } -> mflops
        | _ -> neg_infinity
      in
      let best =
        List.fold_left
          (fun acc dist ->
            let p =
              { d with
                Ifko_transform.Params.prefetch =
                  List.map
                    (fun (a, (s : Ifko_transform.Params.pf_param)) ->
                      (a, { s with Ifko_transform.Params.pf_dist = dist }))
                    d.Ifko_transform.Params.prefetch
              }
            in
            Float.max acc (time p))
          0.0 [ 512; 1024; 1536; 2048 ]
      in
      Printf.printf "  %-7s 2*L default=%.0f  tuned distance=%.0f MFLOPS (%+.0f%%)\n"
        (Defs.name id) (time d) best
        (100.0 *. ((best /. Float.max 1e-9 (time d)) -. 1.0)))
    [ { Defs.routine = Defs.Scal; prec = Instr.D };
      { Defs.routine = Defs.Asum; prec = Instr.D };
      { Defs.routine = Defs.Axpy; prec = Instr.D };
    ]

let ablation_repeatable () =
  print_endline "Ablation 3: repeatable-transformation block, one pass vs. fixpoint";
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let report = Ifko_analysis.Report.analyze compiled in
  let p =
    { (Ifko_transform.Params.default ~line_bytes:128 report) with
      Ifko_transform.Params.unroll = 16;
      ae = 4
    }
  in
  let c = Ifko_transform.Pipeline.snapshot compiled in
  ignore (Ifko_transform.Simd.apply c : (unit, _) result);
  ignore (Ifko_transform.Unroll.apply c p.Ifko_transform.Params.unroll : (unit, _) result);
  Ifko_transform.Loopctl.apply c;
  ignore (Ifko_transform.Accexp.apply c p.Ifko_transform.Params.ae : (unit, _) result);
  let f = c.Ifko_codegen.Lower.func in
  let count_instrs () =
    List.fold_left (fun a b -> a + List.length b.Block.instrs) 0 f.Cfg.blocks
  in
  let before = count_instrs () in
  let one_pass =
    let (_ : bool) = Ifko_transform.Copyprop.run f in
    let (_ : bool) = Ifko_transform.Peephole.run f in
    let (_ : bool) = Ifko_transform.Deadcode.run f in
    let (_ : bool) = Ifko_transform.Branchopt.run f in
    count_instrs ()
  in
  let iters = Ifko_transform.Pipeline.repeatable f in
  Printf.printf
    "  ddot UR=16 AE=4: %d instrs naive, %d after one pass, %d after fixpoint (%d rounds)\n"
    before one_pass (count_instrs ()) iters

let ablation_extrapolation () =
  print_endline "Ablation 4: timer steady-state extrapolation vs. full simulation";
  let cfg = Config.p4e in
  List.iter
    (fun id ->
      let compiled = Hil_sources.compile id in
      let report = Ifko_analysis.Report.analyze compiled in
      let d = Ifko_transform.Params.default ~line_bytes:cfg.Config.prefetchable_line report in
      let f = Ifko_search.Driver.compile_point ~cfg compiled d in
      let spec = Workload.timer_spec id ~seed in
      let n = 80000 in
      let cached_cycles kind run =
        match
          Ifko_store.Store.cached ?store:!store
            ~key:
              (Ifko_store.Store.timing_key ~kind ~func:(Cfg.to_string f)
                 ~machine:cfg.Config.name ~context:"out-of-cache" ~n ~seed)
            ~params:kind
            ~prov:(Printf.sprintf "ablation4:%s" (Defs.name id))
            (fun () -> Ifko_store.Store.Timed { cycles = run (); mflops = 0.0 })
        with
        | Ifko_store.Store.Timed { cycles; _ } -> cycles
        | _ -> nan
      in
      let extrap =
        cached_cycles "ablation4-extrap" (fun () ->
            Ifko_sim.Timer.measure ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n f)
      in
      let exact =
        cached_cycles "ablation4-exact" (fun () ->
            Ifko_sim.Timer.exact ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n f)
      in
      Printf.printf "  %-7s extrapolated=%.0f exact=%.0f cycles (error %+.2f%%)\n"
        (Defs.name id) extrap exact
        (100.0 *. ((extrap -. exact) /. exact)))
    [ { Defs.routine = Defs.Dot; prec = Instr.D };
      { Defs.routine = Defs.Copy; prec = Instr.S };
    ]

let ablation_future_work () =
  print_endline
    "Ablation 5: the paper's future-work transformations close the hand-tuned gaps";
  let cfg = Config.p4e in
  let id = { Defs.routine = Defs.Copy; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let spec = Workload.timer_spec id ~seed in
  let test _ = true in
  let tune ~extensions =
    (Ifko_search.Driver.tune ~extensions ?store:!store ~jobs:!jobs ~seed ~cfg
       ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000 ~flops_per_n:1.0 ~test compiled)
      .Ifko_search.Driver.ifko_mflops
  in
  let published = tune ~extensions:false in
  let extended = tune ~extensions:true in
  let atlas =
    (Ifko_baselines.Atlas_search.select ?store:!store ~cfg
       ~context:Ifko_sim.Timer.Out_of_cache ~n:80000 ~seed id)
      .Ifko_baselines.Atlas_search.mflops
  in
  Printf.printf
    "  dcopy P4E oc: published ifko=%.0f, hand-tuned dcopy*=%.0f, ifko+block-fetch=%.0f MFLOPS\n"
    published atlas extended;
  Printf.printf "  (the block-fetch extension recovers %+.0f%% of ifko's gap to dcopy*)\n"
    (100.0 *. (extended -. published) /. Float.max 1.0 (atlas -. published));
  (* the SPECULATE mark-up vs. the hand-vectorized isamax* *)
  let idv = { Defs.routine = Defs.Iamax; prec = Instr.S } in
  let specv = Workload.timer_spec idv ~seed in
  let tune_iamax compiled =
    (Ifko_search.Driver.tune ?store:!store ~jobs:!jobs ~seed ~cfg
       ~context:Ifko_sim.Timer.Out_of_cache ~spec:specv ~n:80000 ~flops_per_n:2.0 ~test
       compiled)
      .Ifko_search.Driver.ifko_mflops
  in
  let scalar = tune_iamax (Hil_sources.compile idv) in
  let speculative = tune_iamax (Hil_sources.compile_speculative idv) in
  let atlas_iamax =
    (Ifko_baselines.Atlas_search.select ?store:!store ~cfg
       ~context:Ifko_sim.Timer.Out_of_cache ~n:80000 ~seed idv)
      .Ifko_baselines.Atlas_search.mflops
  in
  Printf.printf
    "  isamax P4E oc: published ifko=%.0f, hand-tuned isamax*=%.0f, ifko+SPECULATE=%.0f MFLOPS\n"
    scalar atlas_iamax speculative

let exp_ablations () =
  ablation_search ();
  ablation_prefetch_model ();
  ablation_repeatable ();
  ablation_extrapolation ();
  ablation_future_work ()

(* ---------- simulator throughput (simbench) ---------- *)

(* Interpreted-instructions-per-second of the two execution engines on
   every BLAS kernel at its tuned default point: the reference
   tree-walking interpreter vs. the pre-decoded threaded-code engine,
   untimed (pure semantics) and timed (full pipeline model).  The
   compiled engine decodes once outside the measurement loop — exactly
   how Timer/Driver/Oracle use it. *)

type simbench_row = {
  sb_kernel : string;
  sb_ref_untimed : float; (* MIPS *)
  sb_new_untimed : float;
  sb_ref_timed : float;
  sb_new_timed : float;
  (* fast-path coverage accumulated over the timed threaded reps *)
  sb_loads : int;
  sb_fast_loads : int;
  sb_stores : int;
  sb_fast_stores : int;
  (* superblock fusion (static per compiled kernel) *)
  sb_blocks : int;
  sb_fused_instrs : int;
}

let simbench_rows : simbench_row list ref = ref []
let simbench_n = 8192

(* Sampled-vs-full fidelity comparison, folded into simbench so one
   `make simbench` regenerates every number CI gates on.  Cycle error is
   deterministic (the simulator is); the wall-clock speedup rides the
   same steady-state rate loop as the engine rows.  [fd_work_ratio] is
   the deterministic work proxy — simulated elements per measurement,
   full over sampled — which the gate enforces so a loaded CI host
   cannot flake it. *)
type fidelity_row = {
  fd_kernel : string;
  fd_full_cycles : float;
  fd_sampled_cycles : float;
  fd_err_pct : float; (* |sampled - full| / full * 100, this run *)
  fd_work_ratio : float; (* full elems / sampled elems per measurement *)
  fd_speedup : float; (* wall-clock: full seconds-per-measure / sampled *)
  fd_full_us : float; (* wall microseconds per full measurement *)
  fd_samp_us : float; (* wall microseconds per sampled measurement *)
  fd_floor_us : float; (* sampled setup floor: arena + env + restore us/measure *)
  fd_fallback : string option; (* escape-hatch reason, when it fired *)
}

let fidelity_rows : fidelity_row list ref = ref []
let fidelity_n = 80000
let error_budget_pct = 1.0

let exp_simbench () =
  let cfg = Config.p4e in
  let n = simbench_n in
  let min_time = if !quick then 0.1 else 0.4 in
  (* steady-state rate: one warm-up run, then repeat until [min_time]
     has elapsed; returns interpreted MIPS *)
  let rate run =
    let (_ : int) = run () in
    let t0 = Unix.gettimeofday () in
    let instrs = ref 0 and elapsed = ref 0.0 in
    while !elapsed < min_time do
      instrs := !instrs + run ();
      elapsed := Unix.gettimeofday () -. t0
    done;
    float_of_int !instrs /. !elapsed /. 1e6
  in
  Printf.printf "Simulator throughput, P4E default points, N=%d (interpreted MIPS)\n" n;
  Printf.printf "  %-7s %14s %14s %8s %14s %14s %8s\n" "kernel" "walker-untimed"
    "threaded-untimed" "speedup" "walker-timed" "threaded-timed" "speedup";
  let rows =
    List.map
      (fun id ->
        let compiled = Hil_sources.compile id in
        let report = Ifko_analysis.Report.analyze compiled in
        let params =
          Ifko_transform.Params.default ~line_bytes:cfg.Config.prefetchable_line report
        in
        let func = Ifko_search.Driver.compile_point ~cfg compiled params in
        let cf = Ifko_sim.Exec.compile func in
        let spec = Workload.timer_spec id ~seed in
        let env = spec.Ifko_sim.Timer.make_env n in
        let rfs = spec.Ifko_sim.Timer.ret_fsize in
        let ms = Ifko_machine.Memsys.create cfg in
        let timing () =
          Ifko_machine.Memsys.reset ms ~flush:true;
          (cfg, ms)
        in
        (* Memsys.reset clears the profile counters, so coverage is
           accumulated per repetition during the timed threaded phase. *)
        let loads = ref 0 and fast_loads = ref 0 in
        let stores = ref 0 and fast_stores = ref 0 in
        let demand = ref 0 and demand_cy = ref 0.0 and bus_cy = ref 0.0 in
        let sw_pf = ref 0 and sw_drop = ref 0 and hw_pf = ref 0 in
        let timed_threaded () =
          let r = Ifko_sim.Exec.exec ~timing:(timing ()) ~ret_fsize:rfs cf env in
          let p = Memsys.profile ms in
          loads := !loads + p.Memsys.loads;
          fast_loads := !fast_loads + p.Memsys.fast_loads;
          stores := !stores + p.Memsys.stores;
          fast_stores := !fast_stores + p.Memsys.fast_stores;
          demand := !demand + p.Memsys.demand_misses;
          demand_cy := !demand_cy +. p.Memsys.demand_cycles;
          bus_cy := !bus_cy +. p.Memsys.bus_cycles;
          sw_pf := !sw_pf + p.Memsys.sw_pf_issued;
          sw_drop := !sw_drop + p.Memsys.sw_pf_dropped;
          hw_pf := !hw_pf + p.Memsys.hw_pf_issued;
          r.Ifko_sim.Exec.instr_count
        in
        let blocks, fused_instrs = Ifko_sim.Exec.fusion cf in
        let ref_untimed =
          rate (fun () ->
              (Ifko_sim.Exec.run_reference ~ret_fsize:rfs func env)
                .Ifko_sim.Exec.instr_count)
        in
        let new_untimed =
          rate (fun () ->
              (Ifko_sim.Exec.exec ~ret_fsize:rfs cf env).Ifko_sim.Exec.instr_count)
        in
        let ref_timed =
          rate (fun () ->
              (Ifko_sim.Exec.run_reference ~timing:(timing ()) ~ret_fsize:rfs func env)
                .Ifko_sim.Exec.instr_count)
        in
        let new_timed = rate timed_threaded in
        let row =
          {
            sb_kernel = Defs.name id;
            sb_ref_untimed = ref_untimed;
            sb_new_untimed = new_untimed;
            sb_ref_timed = ref_timed;
            sb_new_timed = new_timed;
            sb_loads = !loads;
            sb_fast_loads = !fast_loads;
            sb_stores = !stores;
            sb_fast_stores = !fast_stores;
            sb_blocks = blocks;
            sb_fused_instrs = fused_instrs;
          }
        in
        Printf.printf "  %-7s %14.1f %16.1f %7.1fx %14.1f %14.1f %7.1fx\n" row.sb_kernel
          row.sb_ref_untimed row.sb_new_untimed
          (row.sb_new_untimed /. row.sb_ref_untimed)
          row.sb_ref_timed row.sb_new_timed
          (row.sb_new_timed /. row.sb_ref_timed);
        if !profile_mode then begin
          let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
          Printf.printf
            "          fast-path: loads %.1f%% of %d, stores %.1f%% of %d; fusion: %d \
             bodies / %d instrs\n"
            (pct !fast_loads !loads) !loads (pct !fast_stores !stores) !stores blocks
            fused_instrs;
          Printf.printf
            "          attribution: %d demand misses (%.2e cy), bus %.2e cy, sw-pf \
             %d issued / %d dropped, hw-pf %d\n"
            !demand !demand_cy !bus_cy !sw_pf !sw_drop !hw_pf
        end;
        row)
      (kernels ())
  in
  let geo f = Ifko_util.Stats.geomean (List.map f rows) in
  Printf.printf "  geomean speedup: %.1fx untimed, %.1fx timed\n"
    (geo (fun r -> r.sb_new_untimed /. r.sb_ref_untimed))
    (geo (fun r -> r.sb_new_timed /. r.sb_ref_timed));
  simbench_rows := rows;
  (* sampled-vs-full fidelity: every kernel at its default point,
     out-of-cache N=80000 — the tuning driver's hot measurement.  Each
     kernel gets a fresh checkpoint cache, exactly as Driver.tune
     allocates one per tune; the warm-up therefore amortizes across the
     timed repetitions the same way it amortizes across probe points. *)
  Printf.printf "\n  Sampled vs full fidelity, out-of-cache, N=%d\n" fidelity_n;
  Printf.printf "  %-7s %14s %14s %8s %6s %8s %8s  %s\n" "kernel" "full-cycles"
    "sampled-cycles" "err%" "work" "speedup" "us/meas" "fallback";
  let frows =
    List.map
      (fun id ->
        let compiled = Hil_sources.compile id in
        let report = Ifko_analysis.Report.analyze compiled in
        let params =
          Ifko_transform.Params.default ~line_bytes:cfg.Config.prefetchable_line report
        in
        let func = Ifko_search.Driver.compile_point ~cfg compiled params in
        let cf = Ifko_sim.Exec.compile func in
        let spec = Workload.timer_spec id ~seed in
        let ckpt = Ifko_sim.Ckpt.create ~cfg () in
        let measure fid =
          Ifko_sim.Timer.measure_ext ~fidelity:fid
            ~ckpt:(ckpt, Defs.name id)
            ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:fidelity_n cf
        in
        let m_full = measure Ifko_sim.Timer.Full in
        (* prime the checkpoint (warm-up + transient pair), then report
           the steady-state call — what every probe after a tune's
           first sees; cycles are bit-identical either way *)
        ignore (measure Ifko_sim.Timer.Sampled : Ifko_sim.Timer.measurement);
        let m_samp = measure Ifko_sim.Timer.Sampled in
        (* seconds per measurement, steady state: the calls above
           already created the checkpoint *)
        let secs fid =
          let t0 = Unix.gettimeofday () in
          let k = ref 0 and elapsed = ref 0.0 in
          while !elapsed < min_time do
            ignore (measure fid : Ifko_sim.Timer.measurement);
            incr k;
            elapsed := Unix.gettimeofday () -. t0
          done;
          (!elapsed /. float_of_int !k, !k)
        in
        let t_full, _ = secs Ifko_sim.Timer.Full in
        (* the sampled loop runs under the wall-time attribution
           instrument: the setup floor (arena + env + restore per
           measurement) is what the pooling layers exist to shrink,
           and the JSON gate watches it *)
        Ifko_sim.Timer.profile_reset ();
        Ifko_sim.Timer.profile_enable true;
        let t_samp, k_samp = secs Ifko_sim.Timer.Sampled in
        Ifko_sim.Timer.profile_enable false;
        let attr = Ifko_sim.Timer.profile () in
        let per_call s = 1e6 *. s /. float_of_int k_samp in
        let row =
          {
            fd_kernel = Defs.name id;
            fd_full_cycles = m_full.Ifko_sim.Timer.m_cycles;
            fd_sampled_cycles = m_samp.Ifko_sim.Timer.m_cycles;
            fd_err_pct =
              100.0
              *. Float.abs (m_samp.Ifko_sim.Timer.m_cycles -. m_full.Ifko_sim.Timer.m_cycles)
              /. m_full.Ifko_sim.Timer.m_cycles;
            fd_work_ratio =
              float_of_int m_full.Ifko_sim.Timer.m_elems
              /. float_of_int m_samp.Ifko_sim.Timer.m_elems;
            fd_speedup = t_full /. t_samp;
            fd_full_us = t_full *. 1e6;
            fd_samp_us = t_samp *. 1e6;
            fd_floor_us =
              per_call
                (attr.Ifko_sim.Timer.at_arena_s +. attr.Ifko_sim.Timer.at_env_s
               +. attr.Ifko_sim.Timer.at_restore_s);
            fd_fallback = m_samp.Ifko_sim.Timer.m_fallback;
          }
        in
        Printf.printf "  %-7s %14.0f %14.0f %7.3f%% %5.1fx %7.1fx %7.1f  %s\n" row.fd_kernel
          row.fd_full_cycles row.fd_sampled_cycles row.fd_err_pct row.fd_work_ratio
          row.fd_speedup row.fd_samp_us
          (Option.value row.fd_fallback ~default:"-");
        if !profile_mode then
          Printf.printf
            "          attribution: arena %.1f us, env %.1f us, restore %.1f us, exec \
             %.1f us per sampled measure (floor %.1f us)\n"
            (per_call attr.Ifko_sim.Timer.at_arena_s)
            (per_call attr.Ifko_sim.Timer.at_env_s)
            (per_call attr.Ifko_sim.Timer.at_restore_s)
            (per_call attr.Ifko_sim.Timer.at_exec_s)
            row.fd_floor_us;
        row)
      (kernels ())
  in
  let fgeo f = Ifko_util.Stats.geomean (List.map f frows) in
  Printf.printf
    "  geomean: cycle error %.3f%% (budget %.1f%%), work ratio %.2fx, wall speedup %.2fx, \
     %.1f us/measure (floor %.1f us)\n"
    (fgeo (fun r -> r.fd_err_pct))
    error_budget_pct
    (fgeo (fun r -> r.fd_work_ratio))
    (fgeo (fun r -> r.fd_speedup))
    (fgeo (fun r -> r.fd_samp_us))
    (fgeo (fun r -> r.fd_floor_us));
  fidelity_rows := frows

(* ---------- servebench: load generator against the tuning daemon ---------- *)

module Serve_proto = Ifko_serve.Proto
module Serve_server = Ifko_serve.Server
module Serve_client = Ifko_serve.Client

type servebench_summary = {
  sv_clients : int;
  sv_jobs : int;
  sv_workpoints : int;
  sv_requests : int; (* warm phase *)
  sv_throughput : float; (* warm requests per second *)
  sv_p50_ms : float;
  sv_p95_ms : float;
  sv_p99_ms : float;
  sv_hit_rate : float; (* warm phase *)
  sv_cold_seconds : float;
  sv_bit_identical : bool;
}

let servebench : servebench_summary option ref = ref None

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let exp_servebench () =
  (* Hot workpoints occupy the head of the zipf distribution and are all
     tuned during the cold phase; the tail points are reached only
     through the skewed sampler, so the warm phase still sees a few
     genuine misses (a lookup on a never-tuned point, or the one tune
     that first computes it) without dropping under the 90%% bar. *)
  let dk routine = { Defs.routine; prec = Instr.D } in
  let hot_kernels =
    List.map dk
      (if !quick then [ Defs.Dot; Defs.Asum ]
       else [ Defs.Dot; Defs.Asum; Defs.Axpy; Defs.Copy; Defs.Scal ])
  in
  let hot_ns = if !quick then [ 400 ] else [ 400; 800 ] in
  let point id n =
    { (Serve_proto.default_args ~kernel:(Hil_sources.source id)) with
      Serve_proto.n;
      seed;
      flops_per_n = Defs.flops_per_n id.Defs.routine;
    }
  in
  let hot = List.concat_map (fun id -> List.map (point id) hot_ns) hot_kernels in
  let tail =
    List.map
      (fun id -> point id 240)
      (if !quick then [ dk Defs.Dot ] else [ dk Defs.Dot; dk Defs.Asum ])
  in
  let points = Array.of_list (hot @ tail) in
  let clients = if !quick then 3 else 4 in
  let warm_requests = if !quick then 600 else 3000 in
  let daemon_jobs = max 2 !jobs in
  (* zipf(1.1) over workpoint ranks *)
  let weights =
    Array.init (Array.length points) (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) 1.1)
  in
  let cum = Array.make (Array.length weights) 0.0 in
  let _ =
    Array.fold_left
      (fun (i, acc) w ->
        let acc = acc +. w in
        cum.(i) <- acc;
        (i + 1, acc))
      (0, 0.0) weights
  in
  let total_w = cum.(Array.length cum - 1) in
  let pick rng =
    let x = Ifko_util.Rng.float rng total_w in
    let rec find i = if x <= cum.(i) || i = Array.length cum - 1 then i else find (i + 1) in
    points.(find 0)
  in
  (* in-process daemon on a temp Unix socket *)
  let store_dir = Filename.temp_file "ifko_servebench" "" in
  Sys.remove store_dir;
  let sock = store_dir ^ ".sock" in
  let listen = `Unix sock in
  let config =
    { (Serve_server.default_config ~store_dir listen) with
      Serve_server.jobs = daemon_jobs;
      shards = 4;
    }
  in
  let ready_m = Mutex.create () and ready_cv = Condition.create () and up = ref false in
  let daemon =
    Thread.create
      (fun () ->
        Serve_server.run
          ~ready:(fun () ->
            Mutex.lock ready_m;
            up := true;
            Condition.signal ready_cv;
            Mutex.unlock ready_m)
          config)
      ()
  in
  Mutex.lock ready_m;
  while not !up do
    Condition.wait ready_cv ready_m
  done;
  Mutex.unlock ready_m;
  Fun.protect
    ~finally:(fun () ->
      (try Serve_client.with_client listen (fun c -> ignore (Serve_client.shutdown c))
       with _ -> ());
      Thread.join daemon;
      rm_rf store_dir)
    (fun () ->
      Printf.printf "Tuning service: %d clients, %d workpoints, jobs=%d, 4 shards\n%!"
        clients (Array.length points) daemon_jobs;
      (* cold phase: the hot set is tuned once, split across clients *)
      let t0 = Unix.gettimeofday () in
      let cold_threads =
        Array.init clients (fun ci ->
            Thread.create
              (fun () ->
                Serve_client.with_client listen (fun c ->
                    List.iteri
                      (fun i a ->
                        if i mod clients = ci then
                          match Serve_client.tune c a with
                          | Ok _ -> ()
                          | Error e -> failwith ("servebench cold tune: " ^ e))
                      hot))
              ())
      in
      Array.iter Thread.join cold_threads;
      let cold_seconds = Unix.gettimeofday () -. t0 in
      Printf.printf "  cold phase: %d tunes in %.1f s\n%!" (List.length hot) cold_seconds;
      (* bit-identity spot check: the daemon's cached replies for the two
         hottest points must equal a sequential, storeless Driver.tune *)
      let identical =
        List.for_all
          (fun (a : Serve_proto.tune_args) ->
            let compiled =
              a.Serve_proto.kernel |> Ifko_hil.Parser.parse_kernel
              |> Ifko_hil.Typecheck.check |> Ifko_codegen.Lower.lower
            in
            let spec = Ifko_search.Generic.spec ~seed:a.Serve_proto.seed compiled in
            let t =
              Ifko_search.Driver.tune ~seed:a.Serve_proto.seed ~cfg:Config.p4e
                ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:a.Serve_proto.n
                ~flops_per_n:a.Serve_proto.flops_per_n
                ~test:(Ifko_search.Generic.test compiled spec)
                compiled
            in
            match Serve_client.with_client listen (fun c -> Serve_client.lookup c a) with
            | Ok (Some r) ->
              r.Serve_proto.best
              = Ifko_transform.Params.canonical t.Ifko_search.Driver.best_params
              && Int64.bits_of_float r.Serve_proto.mflops
                 = Int64.bits_of_float t.Ifko_search.Driver.ifko_mflops
              && Int64.bits_of_float r.Serve_proto.fko_mflops
                 = Int64.bits_of_float t.Ifko_search.Driver.fko_mflops
              && r.Serve_proto.evaluations = t.Ifko_search.Driver.evaluations
            | Ok None | Error _ -> false)
          (List.filteri (fun i _ -> i < 2) hot)
      in
      if not identical then begin
        Printf.eprintf "servebench: daemon replies are not bit-identical to Driver.tune\n";
        exit 1
      end;
      Printf.printf "  bit-identity vs sequential Driver.tune: ok\n%!";
      (* warm phase: zipf-skewed mix, 70%% lookups / 30%% tunes *)
      let per_client = warm_requests / clients in
      let lat = Array.init clients (fun _ -> ref []) in
      let hits = Array.make clients 0 and misses = Array.make clients 0 in
      let t1 = Unix.gettimeofday () in
      let warm_threads =
        Array.init clients (fun ci ->
            Thread.create
              (fun () ->
                let rng = Ifko_util.Rng.create (seed + (7919 * (ci + 1))) in
                Serve_client.with_client listen (fun c ->
                    for _ = 1 to per_client do
                      let a = pick rng in
                      let tune = Ifko_util.Rng.uniform rng < 0.3 in
                      let r0 = Unix.gettimeofday () in
                      let hit =
                        if tune then
                          match Serve_client.tune c a with
                          | Ok r -> r.Serve_proto.hit
                          | Error e -> failwith ("servebench warm tune: " ^ e)
                        else
                          match Serve_client.lookup c a with
                          | Ok (Some r) -> r.Serve_proto.hit
                          | Ok None -> false
                          | Error e -> failwith ("servebench warm lookup: " ^ e)
                      in
                      lat.(ci) := (Unix.gettimeofday () -. r0) :: !(lat.(ci));
                      if hit then hits.(ci) <- hits.(ci) + 1
                      else misses.(ci) <- misses.(ci) + 1
                    done))
              ())
      in
      Array.iter Thread.join warm_threads;
      let warm_seconds = Unix.gettimeofday () -. t1 in
      let requests = per_client * clients in
      let all_lat = Array.of_list (List.concat_map ( ! ) (Array.to_list lat)) in
      Array.sort compare all_lat;
      let p50 = 1000.0 *. percentile all_lat 50.0 in
      let p95 = 1000.0 *. percentile all_lat 95.0 in
      let p99 = 1000.0 *. percentile all_lat 99.0 in
      let hit_total = Array.fold_left ( + ) 0 hits in
      let hit_rate = float_of_int hit_total /. float_of_int requests in
      let throughput = float_of_int requests /. warm_seconds in
      Printf.printf
        "  warm phase: %d requests in %.2f s — %.0f req/s, p50 %.2f ms, p95 %.2f ms, \
         p99 %.2f ms, hit rate %.1f%%\n"
        requests warm_seconds throughput p50 p95 p99 (100.0 *. hit_rate);
      if hit_rate < 0.9 then begin
        Printf.eprintf "servebench: warm hit rate %.3f below the 0.90 bar\n" hit_rate;
        exit 1
      end;
      servebench :=
        Some
          {
            sv_clients = clients;
            sv_jobs = daemon_jobs;
            sv_workpoints = Array.length points;
            sv_requests = requests;
            sv_throughput = throughput;
            sv_p50_ms = p50;
            sv_p95_ms = p95;
            sv_p99_ms = p99;
            sv_hit_rate = hit_rate;
            sv_cold_seconds = cold_seconds;
            sv_bit_identical = identical;
          })

(* ---------- searchbench: probes-to-best per search strategy ---------- *)

(* The strategies race on probes-to-best: the 1-based evaluation index
   at which the tune's final winner was first measured.  Three runs per
   kernel at the same workpoint — the paper's line search (the
   baseline), the cold surrogate, and the surrogate warm-started from a
   donor store holding each kernel's own tune at half the problem size
   (the canonical warm scenario: "tuned yesterday at another N").  The
   simulator is deterministic, so every column is exactly reproducible
   and the gates below cannot flake. *)
type searchbench_row = {
  se_kernel : string;
  se_line_probes : int; (* linesearch probes-to-best *)
  se_line_evals : int;
  se_line_best : float; (* MFLOPS *)
  se_surr_probes : int; (* cold surrogate *)
  se_surr_evals : int;
  se_surr_best : float;
  se_warm_probes : int; (* store-warmed surrogate *)
  se_warm_evals : int;
  se_warm_best : float;
}

let searchbench_rows : searchbench_row list ref = ref []
let searchbench_n = 2000
let searchbench_donor_n = 1000

let exp_searchbench () =
  let cfg = Config.p4e in
  let context = Ifko_sim.Timer.Out_of_cache in
  let n = if !quick then 800 else searchbench_n in
  let donor_n = if !quick then 400 else searchbench_donor_n in
  (* same tester Eval builds: exact-ish against the reference on sizes
     that exercise remainder loops *)
  let make_test id =
    let sizes = [ 0; 1; 5; 63; 64; 257 ] in
    fun func ->
      let cf = Ifko_sim.Exec.compile func in
      List.for_all
        (fun n ->
          let env = Workload.make_env id ~seed:(seed + 1) n in
          let expect = Workload.expectation id ~seed:(seed + 1) n in
          let tol = Workload.tolerance id ~n in
          Ifko_sim.Verify.check_compiled ~tol ~ret_fsize:id.Defs.prec cf env expect = Ok ())
        sizes
  in
  let tune ?strategy ?(warm_start = false) ?donors ?store id ~n =
    let compiled = Hil_sources.compile id in
    let spec = Workload.timer_spec id ~seed in
    Ifko_search.Driver.tune ?strategy ~warm_start ?donors ?store ~jobs:!jobs ~seed ~cfg
      ~context ~spec ~n
      ~flops_per_n:(Defs.flops_per_n id.Defs.routine)
      ~test:(make_test id) compiled
  in
  (* donor phase: a line-search tune of every kernel at donor_n,
     journaled into a throwaway store — Driver.tune records a
     tune-level entry (winner + analysis fingerprint) for each *)
  let store_file = Filename.temp_file "ifko_searchbench" ".jsonl" in
  let dstore = Ifko_store.Store.open_ ~seed store_file in
  let donors =
    Fun.protect
      ~finally:(fun () ->
        Ifko_store.Store.close dstore;
        Sys.remove store_file)
      (fun () ->
        Printf.printf "Donor store: line-search tunes at N=%d\n%!" donor_n;
        List.iter
          (fun id -> ignore (tune ~store:dstore id ~n:donor_n : Ifko_search.Driver.tuned))
          (kernels ());
        Ifko_search.Warmstart.donors_of_store dstore)
  in
  Printf.printf "Search strategies, P4E out-of-cache, N=%d (%d donors)\n" n
    (List.length donors);
  Printf.printf "  %-7s | %-17s | %-25s | %s\n" "kernel" "linesearch" "surrogate (cold)"
    "surrogate (warm)";
  Printf.printf "  %-7s | %6s %10s | %6s %10s %7s | %6s %10s %7s\n" "" "probes" "mflops"
    "probes" "mflops" "ratio" "probes" "mflops" "ratio";
  let rows =
    List.map
      (fun id ->
        let line = tune id ~n in
        let surr = tune ~strategy:Ifko_search.Driver.Surrogate id ~n in
        let warm =
          tune ~strategy:Ifko_search.Driver.Surrogate ~warm_start:true ~donors id ~n
        in
        let row =
          {
            se_kernel = Defs.name id;
            se_line_probes = line.Ifko_search.Driver.probes_to_best;
            se_line_evals = line.Ifko_search.Driver.evaluations;
            se_line_best = line.Ifko_search.Driver.ifko_mflops;
            se_surr_probes = surr.Ifko_search.Driver.probes_to_best;
            se_surr_evals = surr.Ifko_search.Driver.evaluations;
            se_surr_best = surr.Ifko_search.Driver.ifko_mflops;
            se_warm_probes = warm.Ifko_search.Driver.probes_to_best;
            se_warm_evals = warm.Ifko_search.Driver.evaluations;
            se_warm_best = warm.Ifko_search.Driver.ifko_mflops;
          }
        in
        Printf.printf "  %-7s | %6d %10.1f | %6d %10.1f %6.2fx | %6d %10.1f %6.2fx\n"
          row.se_kernel row.se_line_probes row.se_line_best row.se_surr_probes
          row.se_surr_best
          (float_of_int row.se_surr_probes /. float_of_int row.se_line_probes)
          row.se_warm_probes row.se_warm_best
          (float_of_int row.se_warm_probes /. float_of_int row.se_surr_probes);
        row)
      (kernels ())
  in
  let geo f = Ifko_util.Stats.geomean (List.map f rows) in
  let probe_ratio =
    geo (fun r -> float_of_int r.se_surr_probes /. float_of_int r.se_line_probes)
  in
  let warm_ratio =
    geo (fun r -> float_of_int r.se_warm_probes /. float_of_int r.se_surr_probes)
  in
  let best_ratio = geo (fun r -> r.se_surr_best /. r.se_line_best) in
  Printf.printf
    "  geomean: surrogate %.2fx linesearch probes-to-best at %.3fx its MFLOPS; warm \
     start %.2fx the cold surrogate's probes-to-best\n"
    probe_ratio best_ratio warm_ratio;
  (* the CI gates: the surrogate must reach linesearch-level MFLOPS in
     well under its probes, and warm starts must halve the surrogate's
     own cold probes-to-best *)
  if probe_ratio > 0.6 then begin
    Printf.eprintf
      "searchbench: surrogate probes-to-best geomean %.2fx linesearch exceeds the 0.6x \
       bar\n"
      probe_ratio;
    exit 1
  end;
  if best_ratio < 0.999 then begin
    Printf.eprintf
      "searchbench: surrogate MFLOPS geomean fell to %.4fx of linesearch (same-or-better \
       bar)\n"
      best_ratio;
    exit 1
  end;
  if warm_ratio > 0.5 then begin
    Printf.eprintf
      "searchbench: warm-start probes-to-best geomean %.2fx of cold exceeds the 0.5x bar\n"
      warm_ratio;
    exit 1
  end;
  searchbench_rows := rows

(* ---------- bechamel micro-benchmarks of the harness machinery ---------- *)

let bechamel_tests () =
  let open Bechamel in
  let ddot = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let compiled = Hil_sources.compile ddot in
  let report = Ifko_analysis.Report.analyze compiled in
  let params = Ifko_transform.Params.default ~line_bytes:128 report in
  let func = Ifko_search.Driver.compile_point ~cfg:Config.p4e compiled params in
  let spec = Workload.timer_spec ddot ~seed in
  (* one Test.make per table/figure family, exercising the machinery
     that regenerates it *)
  Test.make_grouped ~name:"ifko" ~fmt:"%s %s"
    [ Test.make ~name:"table1-render"
        (Staged.stage (fun () -> ignore (Ifko_eval.Figures.table1 () : string)));
      Test.make ~name:"fig2-compile-point"
        (Staged.stage (fun () ->
             ignore
               (Ifko_search.Driver.compile_point ~cfg:Config.p4e compiled params : Cfg.func)));
      Test.make ~name:"fig2-oc-timing-n80000"
        (Staged.stage (fun () ->
             ignore
               (Ifko_sim.Timer.measure ~cfg:Config.p4e ~context:Ifko_sim.Timer.Out_of_cache
                  ~spec ~n:80000 func
                 : float)));
      Test.make ~name:"fig4-l2-timing-n1024"
        (Staged.stage (fun () ->
             ignore
               (Ifko_sim.Timer.measure ~cfg:Config.p4e ~context:Ifko_sim.Timer.In_l2 ~spec
                  ~n:1024 func
                 : float)));
      Test.make ~name:"table3-analysis"
        (Staged.stage (fun () ->
             ignore (Ifko_analysis.Report.analyze compiled : Ifko_analysis.Report.t)));
    ]

let run_bechamel () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-45s %14.1f ns/run\n" name est
      | _ -> Printf.printf "%-45s (no estimate)\n" name)
    results

(* ---------- driver ---------- *)

let experiments =
  [ ("table1", exp_table1); ("table2", exp_table2); ("fig2", exp_fig2); ("fig3", exp_fig3);
    ("fig4", exp_fig4); ("fig5a", exp_fig5a); ("fig5b", exp_fig5b); ("table3", exp_table3);
    ("fig7", exp_fig7); ("opteron_l2", exp_opteron_l2); ("ablations", exp_ablations);
    ("simbench", exp_simbench); ("servebench", exp_servebench);
    ("searchbench", exp_searchbench);
  ]

(* Per-experiment record for BENCH_results.json: wall-clock plus the
   store traffic the experiment generated (misses = probes actually
   compiled/verified/timed this run; hits = answered from the journal). *)
type exp_stats = { exp_name : string; seconds : float; exp_hits : int; exp_misses : int }

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_results_json ~path ~total_seconds (stats : exp_stats list) =
  let oc = open_out path in
  let rate h m = if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m) in
  Printf.fprintf oc "{\n  \"schema\": 1,\n  \"quick\": %b,\n  \"jobs\": %d,\n" !quick !jobs;
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  (match !store with
  | Some st ->
    Printf.fprintf oc "  \"store\": \"%s\",\n" (json_escape (Ifko_store.Store.path st));
    Printf.fprintf oc "  \"store_entries\": %d,\n" (Ifko_store.Store.entries st)
  | None -> Printf.fprintf oc "  \"store\": null,\n");
  (match !simbench_rows with
  | [] -> ()
  | rows ->
    let geo f = Ifko_util.Stats.geomean (List.map f rows) in
    Printf.fprintf oc "  \"simbench\": {\n";
    Printf.fprintf oc "    \"machine\": \"P4E\",\n    \"n\": %d,\n" simbench_n;
    Printf.fprintf oc "    \"geomean_speedup_untimed\": %.2f,\n"
      (geo (fun r -> r.sb_new_untimed /. r.sb_ref_untimed));
    Printf.fprintf oc "    \"geomean_speedup_timed\": %.2f,\n"
      (geo (fun r -> r.sb_new_timed /. r.sb_ref_timed));
    (match !fidelity_rows with
    | [] -> ()
    | frows ->
      let fgeo f = Ifko_util.Stats.geomean (List.map f frows) in
      Printf.fprintf oc "    \"fidelity\": {\n";
      Printf.fprintf oc "      \"n\": %d,\n      \"error_budget_pct\": %.2f,\n" fidelity_n
        error_budget_pct;
      Printf.fprintf oc "      \"geomean_cycle_err_pct\": %.4f,\n"
        (fgeo (fun r -> r.fd_err_pct));
      Printf.fprintf oc "      \"geomean_work_ratio\": %.2f,\n"
        (fgeo (fun r -> r.fd_work_ratio));
      Printf.fprintf oc "      \"geomean_sampled_speedup\": %.2f,\n"
        (fgeo (fun r -> r.fd_speedup));
      Printf.fprintf oc "      \"geomean_full_us_per_measure\": %.2f,\n"
        (fgeo (fun r -> r.fd_full_us));
      Printf.fprintf oc "      \"geomean_sampled_us_per_measure\": %.2f,\n"
        (fgeo (fun r -> r.fd_samp_us));
      Printf.fprintf oc "      \"geomean_floor_us_per_measure\": %.2f,\n"
        (fgeo (fun r -> r.fd_floor_us));
      Printf.fprintf oc "      \"kernels\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "        {\"fid_kernel\": \"%s\", \"fid_full_cycles\": %.1f, \
             \"fid_sampled_cycles\": %.1f, \"fid_err_pct\": %.4f, \
             \"fid_work_ratio\": %.2f, \"fid_speedup\": %.2f, \"fid_full_us\": %.2f, \
             \"fid_samp_us\": %.2f, \"fid_floor_us\": %.2f, \"fid_fallback\": %s}%s\n"
            (json_escape r.fd_kernel) r.fd_full_cycles r.fd_sampled_cycles r.fd_err_pct
            r.fd_work_ratio r.fd_speedup r.fd_full_us r.fd_samp_us r.fd_floor_us
            (match r.fd_fallback with
            | None -> "null"
            | Some s -> Printf.sprintf "\"%s\"" (json_escape s))
            (if i = List.length frows - 1 then "" else ","))
        frows;
      Printf.fprintf oc "      ]\n    },\n");
    Printf.fprintf oc "    \"kernels\": [\n";
    List.iteri
      (fun i r ->
        let frac a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
        Printf.fprintf oc
          "      {\"kernel\": \"%s\", \"walker_untimed_mips\": %.2f, \
           \"threaded_untimed_mips\": %.2f, \"walker_timed_mips\": %.2f, \
           \"threaded_timed_mips\": %.2f, \"fast_load_frac\": %.4f, \
           \"fast_store_frac\": %.4f, \"fused_blocks\": %d, \"fused_instrs\": %d}%s\n"
          (json_escape r.sb_kernel) r.sb_ref_untimed r.sb_new_untimed r.sb_ref_timed
          r.sb_new_timed
          (frac r.sb_fast_loads r.sb_loads)
          (frac r.sb_fast_stores r.sb_stores)
          r.sb_blocks r.sb_fused_instrs
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "    ]\n  },\n");
  (match !servebench with
  | None -> ()
  | Some s ->
    Printf.fprintf oc "  \"servebench\": {\n";
    Printf.fprintf oc "    \"clients\": %d,\n    \"jobs\": %d,\n    \"shards\": 4,\n"
      s.sv_clients s.sv_jobs;
    Printf.fprintf oc "    \"workpoints\": %d,\n    \"warm_requests\": %d,\n"
      s.sv_workpoints s.sv_requests;
    Printf.fprintf oc "    \"throughput_rps\": %.1f,\n" s.sv_throughput;
    Printf.fprintf oc "    \"p50_ms\": %.3f,\n    \"p95_ms\": %.3f,\n    \"p99_ms\": %.3f,\n"
      s.sv_p50_ms s.sv_p95_ms s.sv_p99_ms;
    Printf.fprintf oc "    \"hit_rate\": %.4f,\n" s.sv_hit_rate;
    Printf.fprintf oc "    \"cold_seconds\": %.3f,\n" s.sv_cold_seconds;
    Printf.fprintf oc "    \"bit_identical\": %b\n  },\n" s.sv_bit_identical);
  (match !searchbench_rows with
  | [] -> ()
  | rows ->
    let geo f = Ifko_util.Stats.geomean (List.map f rows) in
    Printf.fprintf oc "  \"searchbench\": {\n";
    Printf.fprintf oc "    \"machine\": \"P4E\",\n    \"n\": %d,\n    \"donor_n\": %d,\n"
      (if !quick then 800 else searchbench_n)
      (if !quick then 400 else searchbench_donor_n);
    Printf.fprintf oc "    \"geomean_surrogate_probe_ratio\": %.4f,\n"
      (geo (fun r -> float_of_int r.se_surr_probes /. float_of_int r.se_line_probes));
    Printf.fprintf oc "    \"geomean_surrogate_mflops_ratio\": %.4f,\n"
      (geo (fun r -> r.se_surr_best /. r.se_line_best));
    Printf.fprintf oc "    \"geomean_warm_probe_ratio\": %.4f,\n"
      (geo (fun r -> float_of_int r.se_warm_probes /. float_of_int r.se_surr_probes));
    Printf.fprintf oc "    \"kernels\": [\n";
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "      {\"kernel\": \"%s\", \"linesearch_probes_to_best\": %d, \
           \"linesearch_evaluations\": %d, \"linesearch_mflops\": %.1f, \
           \"surrogate_probes_to_best\": %d, \"surrogate_evaluations\": %d, \
           \"surrogate_mflops\": %.1f, \"warm_probes_to_best\": %d, \
           \"warm_evaluations\": %d, \"warm_mflops\": %.1f}%s\n"
          (json_escape r.se_kernel) r.se_line_probes r.se_line_evals r.se_line_best
          r.se_surr_probes r.se_surr_evals r.se_surr_best r.se_warm_probes r.se_warm_evals
          r.se_warm_best
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "    ]\n  },\n");
  Printf.fprintf oc "  \"total_seconds\": %.3f,\n  \"experiments\": [\n" total_seconds;
  List.iteri
    (fun i s ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"seconds\": %.3f, \"probes_computed\": %d, \
         \"store_hits\": %d, \"hit_rate\": %.4f}%s\n"
        (json_escape s.exp_name) s.seconds s.exp_misses s.exp_hits
        (rate s.exp_hits s.exp_misses)
        (if i = List.length stats - 1 then "" else ","))
    stats;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

(* Pull the simbench geomeans (and the fidelity block, when present)
   out of a previous results file.  The writer above is the only
   producer, so a targeted scan is enough — no JSON parser in the
   toolchain's stdlib. *)
let read_baseline path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let find_from needle start =
    let rec find i =
      if i + String.length needle > String.length s then None
      else if String.sub s i (String.length needle) = needle then
        Some (i + String.length needle)
      else find (i + 1)
    in
    find start
  in
  let number_at i =
    let j = ref i in
    while !j < String.length s && (s.[!j] = ' ' || s.[!j] = '\n') do incr j done;
    let k = ref !j in
    while
      !k < String.length s
      && (match s.[!k] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
    do
      incr k
    done;
    (float_of_string (String.sub s !j (!k - !j)), !k)
  in
  let field_opt key =
    Option.map
      (fun i -> fst (number_at i))
      (find_from (Printf.sprintf "\"%s\":" key) 0)
  in
  let field key =
    match field_opt key with
    | Some v -> v
    | None -> failwith (Printf.sprintf "%s: no %S field (not a results file?)" path key)
  in
  let full_cycles =
    let rec scan start acc =
      match find_from "\"fid_kernel\": \"" start with
      | None -> List.rev acc
      | Some i -> (
        let j = String.index_from s i '"' in
        let name = String.sub s i (j - i) in
        match find_from "\"fid_full_cycles\":" j with
        | None -> List.rev acc
        | Some k ->
          let v, next = number_at k in
          scan next ((name, v) :: acc))
    in
    scan 0 []
  in
  {
    b_untimed = field "geomean_speedup_untimed";
    b_timed = field "geomean_speedup_timed";
    b_fid_err = field_opt "geomean_cycle_err_pct";
    b_fid_speedup = field_opt "geomean_sampled_speedup";
    b_fid_work = field_opt "geomean_work_ratio";
    b_fid_us = field_opt "geomean_sampled_us_per_measure";
    b_full_us = field_opt "geomean_full_us_per_measure";
    b_full_cycles = full_cycles;
  }

(* Baseline-vs-current table for the CI job summary (--delta-md).
   Written before the gates run, so a failing run still uploads the
   table that explains the failure. *)
let write_delta_md path =
  let oc = open_out path in
  Printf.fprintf oc "### simbench: baseline vs current\n\n";
  Printf.fprintf oc "| metric | baseline | current | delta |\n";
  Printf.fprintf oc "|---|---:|---:|---:|\n";
  let row name fmt base fresh =
    let b = match base with None -> "—" | Some v -> Printf.sprintf fmt v in
    let d =
      match base with
      | Some bv when bv <> 0.0 -> Printf.sprintf "%+.1f%%" (100.0 *. ((fresh /. bv) -. 1.0))
      | _ -> "—"
    in
    Printf.fprintf oc "| %s | %s | %s | %s |\n" name b (Printf.sprintf fmt fresh) d
  in
  (match !simbench_rows with
  | [] -> ()
  | rows ->
    let geo f = Ifko_util.Stats.geomean (List.map f rows) in
    let base = !baseline in
    row "engine speedup, untimed (geomean)" "%.2fx"
      (Option.map (fun b -> b.b_untimed) base)
      (geo (fun r -> r.sb_new_untimed /. r.sb_ref_untimed));
    row "engine speedup, timed (geomean)" "%.2fx"
      (Option.map (fun b -> b.b_timed) base)
      (geo (fun r -> r.sb_new_timed /. r.sb_ref_timed)));
  (match !fidelity_rows with
  | [] -> ()
  | frows ->
    let fgeo f = Ifko_util.Stats.geomean (List.map f frows) in
    let base = !baseline in
    row "sampled cycle error (geomean)" "%.3f%%"
      (Option.bind base (fun b -> b.b_fid_err))
      (fgeo (fun r -> r.fd_err_pct));
    row "sampled wall speedup (geomean)" "%.2fx"
      (Option.bind base (fun b -> b.b_fid_speedup))
      (fgeo (fun r -> r.fd_speedup));
    row "sampled work ratio (geomean)" "%.2fx"
      (Option.bind base (fun b -> b.b_fid_work))
      (fgeo (fun r -> r.fd_work_ratio));
    row "sampled us/measure (geomean)" "%.1f"
      (Option.bind base (fun b -> b.b_fid_us))
      (fgeo (fun r -> r.fd_samp_us));
    row "sampled setup floor us (geomean)" "%.1f" None
      (fgeo (fun r -> r.fd_floor_us)));
  close_out oc

(* The simbench gates, run against the baseline captured at
   argument-parse time (CI points --baseline at the committed results
   file):

   - engine throughput: a >15% geomean drop on either the untimed or
     timed rate fails the run — the threshold rides well above the
     scheduler noise a busy host adds to wall-clock rates;
   - sampled accuracy: the fresh sampled cycles must stay within the
     error budget of full fidelity, both against this run's own full
     measurements and against the committed baseline's per-kernel
     full-fidelity cycles (the simulator is deterministic, so the
     latter only drifts when codegen changed — regenerate the
     baseline in that case);
   - sampled work: the deterministic simulated-elements ratio must
     hold the >=5x bar, so the Amdahl win cannot silently erode;
   - sampled wall clock: the geomean wall speedup must hold the >=3.5x
     bar (full and sampled share the host back to back, so the ratio is
     load-tolerant), and the absolute sampled us/measure must not
     regress >20% against the baseline — the per-measure setup floor
     (arena acquire, env materialize, restore) is what the pooling
     layers bought, and this is the gate that keeps it bought. *)
let check_baseline () =
  Option.iter write_delta_md !delta_md;
  let failed = ref false in
  (match (!baseline, !simbench_rows) with
  | None, _ | _, [] -> ()
  | Some b, rows ->
    let geo f = Ifko_util.Stats.geomean (List.map f rows) in
    let untimed = geo (fun r -> r.sb_new_untimed /. r.sb_ref_untimed) in
    let timed = geo (fun r -> r.sb_new_timed /. r.sb_ref_timed) in
    let check name fresh base =
      Printf.printf "baseline %s: %.2fx now vs %.2fx before (%+.1f%%)\n" name fresh base
        (100.0 *. ((fresh /. base) -. 1.0));
      fresh < 0.85 *. base
    in
    let bad_untimed = check "untimed" untimed b.b_untimed in
    let bad_timed = check "timed" timed b.b_timed in
    if bad_untimed || bad_timed then begin
      Printf.eprintf "simbench geomean regressed by more than 15%% against the baseline\n";
      failed := true
    end);
  (match !fidelity_rows with
  | [] -> ()
  | frows ->
    let fgeo f = Ifko_util.Stats.geomean (List.map f frows) in
    let err = fgeo (fun r -> r.fd_err_pct) in
    let work = fgeo (fun r -> r.fd_work_ratio) in
    let speedup = fgeo (fun r -> r.fd_speedup) in
    let us = fgeo (fun r -> r.fd_samp_us) in
    Printf.printf
      "fidelity: geomean cycle error %.3f%% (budget %.2f%%), work ratio %.2fx, wall \
       speedup %.2fx, %.1f us/measure\n"
      err error_budget_pct work speedup us;
    if err > error_budget_pct then begin
      Printf.eprintf "sampled fidelity exceeds the %.2f%% error budget vs this run's full \
                      simulation\n"
        error_budget_pct;
      failed := true
    end;
    if work < 5.0 then begin
      Printf.eprintf "sampled fidelity work ratio %.2fx fell under the 5x bar\n" work;
      failed := true
    end;
    (* wall-clock, but full and sampled time the same host back to back,
       so the ratio holds the bar with plenty of margin even when the
       host is loaded *)
    if speedup < 3.5 then begin
      Printf.eprintf "sampled wall speedup %.2fx fell under the 3.5x bar\n" speedup;
      failed := true
    end;
    (match !baseline with
    | Some { b_fid_us = Some base_us; b_full_us = Some base_full; _ } ->
      (* normalize by the full-fidelity wall ratio: the full path's
         per-measure time scales with host speed (and legitimate
         simulator-throughput changes, which the engine gates watch
         separately), so what remains is a genuine sampled-path
         regression — the setup floor growing back *)
      let host = fgeo (fun r -> r.fd_full_us) /. base_full in
      let norm = us /. Float.max 1e-9 host in
      Printf.printf
        "fidelity us/measure: %.1f now (%.1f host-normalized) vs %.1f baseline (%+.1f%%)\n"
        us norm base_us
        (100.0 *. ((norm /. base_us) -. 1.0));
      if norm > 1.2 *. base_us then begin
        Printf.eprintf
          "sampled us/measure regressed by more than 20%% against the baseline (the \
           per-measure setup floor grew)\n";
        failed := true
      end
    | _ -> ());
    match !baseline with
    | Some b when b.b_full_cycles <> [] ->
      let matched =
        List.filter_map
          (fun r ->
            Option.map (fun base -> (r, base)) (List.assoc_opt r.fd_kernel b.b_full_cycles))
          frows
      in
      if matched <> [] then begin
        let gm f = Ifko_util.Stats.geomean (List.map f matched) in
        let base_err =
          gm (fun (r, base) -> 100.0 *. Float.abs (r.fd_sampled_cycles -. base) /. base)
        in
        let drift =
          gm (fun (r, base) -> 100.0 *. Float.abs (r.fd_full_cycles -. base) /. base)
        in
        Printf.printf
          "fidelity vs committed baseline: geomean sampled error %.3f%%, full-cycle drift \
           %.3f%% (%d kernels)\n"
          base_err drift (List.length matched);
        if base_err > error_budget_pct then begin
          Printf.eprintf
            "sampled cycles exceed the %.2f%% budget against the committed full-fidelity \
             baseline%s\n"
            error_budget_pct
            (if drift > 0.1 then
               " (full cycles drifted too — codegen changed; regenerate BENCH_results.json)"
             else "");
          failed := true
        end
      end
    | _ -> ());
  if !failed then exit 1

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--bechamel" :: rest ->
      bechamel_mode := true;
      parse rest
    | "--exp" :: name :: rest ->
      selected := !selected @ [ name ];
      parse rest
    | "--store" :: path :: rest ->
      store_path := Some path;
      parse rest
    | "--no-store" :: rest ->
      store_path := None;
      parse rest
    | "--jobs" :: n :: rest ->
      jobs := int_of_string n;
      parse rest
    | "--json" :: path :: rest ->
      json_path := path;
      parse rest
    | "--profile" :: rest ->
      profile_mode := true;
      parse rest
    | "--baseline" :: path :: rest ->
      baseline := Some (read_baseline path);
      parse rest
    | "--delta-md" :: path :: rest ->
      delta_md := Some path;
      parse rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !bechamel_mode then run_bechamel ()
  else begin
    store := Option.map (Ifko_store.Store.open_ ~seed) !store_path;
    let to_run =
      match !selected with
      | [] | [ "all" ] -> List.map fst experiments
      | l -> l
    in
    let t0 = Unix.gettimeofday () in
    let stats =
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f ->
            Printf.printf "\n================ %s ================\n%!" name;
            let h0, m0 =
              match !store with
              | Some st -> (Ifko_store.Store.hits st, Ifko_store.Store.misses st)
              | None -> (0, 0)
            in
            let start = Unix.gettimeofday () in
            f ();
            let seconds = Unix.gettimeofday () -. start in
            let h1, m1 =
              match !store with
              | Some st -> (Ifko_store.Store.hits st, Ifko_store.Store.misses st)
              | None -> (0, 0)
            in
            print_newline ();
            { exp_name = name; seconds; exp_hits = h1 - h0; exp_misses = m1 - m0 }
          | None ->
            Printf.eprintf "unknown experiment %S (known: %s)\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
        to_run
    in
    let total_seconds = Unix.gettimeofday () -. t0 in
    write_results_json ~path:!json_path ~total_seconds stats;
    (match !store with
    | Some st ->
      Printf.printf "store %s: %d entries, %d hits / %d computed this run\n"
        (Ifko_store.Store.path st) (Ifko_store.Store.entries st) (Ifko_store.Store.hits st)
        (Ifko_store.Store.misses st);
      Ifko_store.Store.close st
    | None -> ());
    Printf.printf "results written to %s (%.1f s total)\n" !json_path total_seconds;
    check_baseline ()
  end
