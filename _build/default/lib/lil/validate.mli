(** Structural invariant checker for LIL functions.

    Run after lowering and after every transformation in the test
    suite; a validation failure indicates a compiler bug, never a user
    error. *)

exception Invalid of string

val check : Cfg.func -> unit
(** Checks that:
    - block labels are unique and every branch targets an existing block;
    - register classes are consistent per instruction (e.g. FP ops only
      name [Xmm] registers, memory bases/indices are [Gpr]);
    - vector lane indices are in range for their precision;
    - [Br] decrements are non-negative and scales are 1, 2, 4 or 8;
    - at least one block ends in [Ret].
    @raise Invalid with a diagnostic on the first violation. *)

val check_physical : Cfg.func -> unit
(** After register allocation: additionally checks that every register
    is physical and within the architectural file (6 allocatable GPRs
    plus frame/stack pointers, 8 XMM).
    @raise Invalid on violation. *)
