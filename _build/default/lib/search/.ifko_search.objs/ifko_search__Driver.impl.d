lib/search/driver.ml: Cfg Config Ifko_analysis Ifko_codegen Ifko_machine Ifko_sim Ifko_transform Linesearch
