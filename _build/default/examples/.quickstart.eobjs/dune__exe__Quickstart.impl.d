examples/quickstart.ml: Cfg Ifko Instr List Printf
