open Ast

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let i n = Int_lit n
let f x = Fp_lit x
let v x = Var x
let ld p k = Load (p, k)
let abs e = Abs e
let sqrt e = Sqrt e
let neg e = Neg e
let ( <-- ) x e = Assign (x, e)
let ( +<- ) x e = Assign_op (Add, x, e)
let ( *<- ) x e = Assign_op (Mul, x, e)
let store p k e = Store (p, k, e)
let ptr_inc p k = Ptr_inc (p, k)
let ptr_inc_var p v = Ptr_inc_var (p, v)

let loop ?(opt = false) ?(speculate = false) ?(step = 1) var ~from ~to_ body =
  Loop
    {
      loop_var = var;
      loop_from = from;
      loop_to = to_;
      loop_step = step;
      loop_body = body;
      loop_opt = opt;
      loop_speculate = speculate;
    }

let if_goto op a b l = If_goto (op, a, b, l)
let if_then ?(else_:stmt list = []) op a b then_body = If_then (op, a, b, then_body, else_)
let goto l = Goto l
let label l = Label l
let return e = Return e
let param ?(flags = []) name ty = { p_name = name; p_ty = ty; p_flags = flags }
let locals ?init names ty = { d_names = names; d_ty = ty; d_init = init }

let kernel ~name ~params ?(locals = []) ?ret body =
  { k_name = name; k_params = params; k_locals = locals; k_ret = ret; k_body = body }
