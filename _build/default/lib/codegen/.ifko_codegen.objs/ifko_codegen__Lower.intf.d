lib/codegen/lower.mli: Cfg Ifko_hil Instr Loopnest Reg
