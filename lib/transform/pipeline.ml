open Ifko_codegen

let snapshot (compiled : Lower.compiled) =
  let func = Cfg.copy compiled.Lower.func in
  let loopnest =
    Option.map
      (fun (ln : Loopnest.t) ->
        Loopnest.
          {
            preheader = ln.preheader;
            header = ln.header;
            latch = ln.latch;
            mid = ln.mid;
            exit = ln.exit;
            cleanup = ln.cleanup;
            cnt = ln.cnt;
            index = ln.index;
            step = ln.step;
            per_iter = ln.per_iter;
            vectorized = ln.vectorized;
            unrolled = ln.unrolled;
            lc_fused = ln.lc_fused;
            speculate = ln.speculate;
            template = ln.template;
          })
      compiled.Lower.loopnest
  in
  { compiled with Lower.func; loopnest }

let protected_labels (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> []
  | Some ln ->
    let fixed =
      [ ln.Loopnest.preheader; ln.Loopnest.header; ln.Loopnest.latch; ln.Loopnest.mid;
        ln.Loopnest.exit ]
    in
    (match ln.Loopnest.cleanup with
    | Some (h, l) -> h :: l :: fixed
    | None -> fixed)

(** Maximum rounds of the repeatable block before giving up on the
    fixpoint. *)
let max_repeat = 20

(** [repeatable ?on_pass f] runs the repeatable transformations to a
    fixpoint; [on_pass] is invoked with a pass name after every
    sub-pass that changed the function (the per-pass checking hook).
    If the fixpoint is not reached within {!max_repeat} rounds a
    diagnostic is emitted on stderr instead of stopping silently. *)
let repeatable ?on_pass ?(protect = []) (f : Cfg.func) =
  let notify name = match on_pass with Some cb -> cb name | None -> () in
  let sub round name run =
    let changed = run f in
    if changed then notify (Printf.sprintf "%s (round %d)" name round);
    changed
  in
  let rec go n =
    let c1 = sub n "copyprop" Copyprop.run in
    let c2 = sub n "peephole" Peephole.run in
    let c3 = sub n "deadcode" Deadcode.run in
    let c4 = sub n "branchopt" (Branchopt.run ~protect) in
    let changed = c1 || c2 || c3 || c4 in
    if changed && n < max_repeat then go (n + 1)
    else begin
      if changed then
        prerr_endline
          (Ifko_analysis.Diag.to_string
             (Ifko_analysis.Diag.warning "IFK009"
                "repeatable transforms on %s still changing after %d rounds; fixpoint \
                 not reached"
                f.Cfg.fname max_repeat));
      n + 1
    end
  in
  go 0

(** [apply ?check ?inject ~line_bytes compiled params] is one FKO
    invocation: the fundamental transformations in fixed order, the
    repeatable block to a fixpoint, register allocation.

    With [?check] (a {!Passcheck.t}), the lint suite and translation
    validation run after {e each} pass, raising
    {!Passcheck.Pass_failed} naming the first pass that broke an
    invariant.  [?inject] is fault injection for testing that
    machinery: [(pass, break)] runs [break] on the compiled kernel
    right after the named pass, simulating a bug in it.

    A transform may refuse its requested parameters when the
    {!Ifko_analysis.Legality} oracle cannot prove it safe; the point
    then compiles {e without} that transform and [?on_skip] receives
    the rejection diagnostic (IFK012) so callers can log or surface
    it. *)
let apply ?(skip_regalloc = false) ?check ?inject ?on_skip ~line_bytes
    (compiled : Lower.compiled) (params : Params.t) =
  let c = snapshot compiled in
  let f = c.Lower.func in
  let reference =
    Option.map (fun ck -> Passcheck.capture ck ~pass:"lowering" c) check
  in
  let checked pass =
    (match inject with
    | Some (target, break) when target = pass -> break c
    | _ -> ());
    match (check, reference) with
    | Some ck, Some reference -> Passcheck.verify ck ~pass ~reference c
    | _ -> ()
  in
  let fundamental pass enabled run =
    if enabled then begin
      (match run () with
      | Ok () -> ()
      | Error d -> (
        match on_skip with
        | Some cb -> cb d
        | None -> ()));
      checked pass
    end
  in
  let ok run () = run (); Ok () in
  (* Fundamental transformations, fixed order. *)
  fundamental "SV" params.Params.sv (fun () -> Simd.apply c);
  fundamental "UR" (params.Params.unroll > 1) (fun () -> Unroll.apply c params.Params.unroll);
  fundamental "CISC" params.Params.cisc (ok (fun () -> Ciscidx.apply c));
  fundamental "LC" params.Params.lc (ok (fun () -> Loopctl.apply c));
  fundamental "AE" (params.Params.ae > 1) (fun () -> Accexp.apply c params.Params.ae);
  fundamental "BF" (params.Params.bf > 0) (ok (fun () -> Blockfetch.apply c params.Params.bf));
  fundamental "PF"
    (params.Params.prefetch <> [])
    (ok (fun () -> Prefetch_xform.apply c ~line_bytes params.Params.prefetch));
  fundamental "WNT" params.Params.wnt (fun () -> Ntwrite.apply c);
  (* Repeatable block to fixed point, then allocation, then a final
     cleanup of any trivialities the spill code introduced. *)
  let on_pass = if check = None then None else Some checked in
  ignore (repeatable ?on_pass ~protect:(protected_labels c) f : int);
  (* Final unprotected control-flow cleanup: nothing needs the loop
     bookkeeping labels any more, so the body can absorb the latch
     (removing a jump per iteration).  The loop-nest labels in [c] may
     go stale here; only the code matters from this point on. *)
  ignore (Branchopt.run f : bool);
  checked "branchopt (final)";
  Validate.check f;
  if not skip_regalloc then begin
    Regalloc.run f;
    checked "regalloc";
    ignore (Peephole.run f : bool);
    checked "peephole (post-regalloc)";
    Validate.check_physical f
  end;
  c
