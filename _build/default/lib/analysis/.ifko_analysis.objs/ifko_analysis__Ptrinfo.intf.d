lib/analysis/ptrinfo.mli: Ifko_codegen
