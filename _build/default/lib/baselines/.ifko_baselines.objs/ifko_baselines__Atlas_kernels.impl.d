lib/baselines/atlas_kernels.ml: Array Atlas_idioms Block Cfg Config Defs Hil_sources Ifko_analysis Ifko_blas Ifko_codegen Ifko_machine Ifko_transform Instr List Reg Validate
