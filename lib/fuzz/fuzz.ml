open Ifko_codegen
module Rng = Ifko_util.Rng

type stats = {
  kernels : int;
  points : int;
  agree : int;
  rejected : int;
  gen_failed : int;
  cross_checked : int;
  bugs : (Corpus.case * string) list;
  written : string list;
}

let stats_to_string s =
  Printf.sprintf
    "fuzz: kernels=%d points=%d agree=%d rejected=%d gen-failed=%d cross-checked=%d \
     bugs=%d"
    s.kernels s.points s.agree s.rejected s.gen_failed s.cross_checked
    (List.length s.bugs)

(* Typecheck, lower, and lint-gate a kernel.  The lint gate matters for
   the shrinker: statement removal can orphan a variable into a
   read-before-write (undefined behaviour, where the reference and the
   transformed code may legitimately disagree), and such a candidate
   must count as invalid rather than as a minimal "bug". *)
let compile k =
  let c = Lower.lower (Ifko_hil.Typecheck.check k) in
  let diags = Ifko_analysis.Lint.check ~pass:"fuzz" c in
  if not (Ifko_analysis.Diag.is_clean diags) then
    failwith
      ("unsound kernel: "
      ^ Ifko_analysis.Diag.list_to_string (Ifko_analysis.Diag.errors diags));
  c

(* Sound bit-exact array comparison requires that no transform may
   reorder the stores the reference performs — exactly what
   {!Ifko_analysis.Depend} claims when every pair is independent. *)
let provably_independent (compiled : Lower.compiled) =
  Ifko_analysis.Depend.all_independent (Ifko_analysis.Depend.analyze compiled)

let run ?(points_per_kernel = 3) ?(max_size = 5) ?(check_each_pass = false)
    ?(cross_check = false) ?corpus ?inject ?sizes ?(log = ignore) ~cfg ~seed ~count () =
  let master = Rng.create seed in
  let line_bytes = cfg.Ifko_machine.Config.prefetchable_line in
  let stats =
    ref
      {
        kernels = 0;
        points = 0;
        agree = 0;
        rejected = 0;
        gen_failed = 0;
        cross_checked = 0;
        bugs = [];
        written = [];
      }
  in
  for i = 0 to count - 1 do
    let krng = Rng.split master in
    let kernel = Gen.kernel krng ~name:(Printf.sprintf "fz%d" i) ~max_size in
    stats := { !stats with kernels = !stats.kernels + 1 };
    match compile kernel with
    | exception e ->
      log (Printf.sprintf "gen-failed fz%d: %s" i (Printexc.to_string e));
      stats := { !stats with gen_failed = !stats.gen_failed + 1 }
    | compiled ->
      let report = Ifko_analysis.Report.analyze compiled in
      let strict_arrays = cross_check && provably_independent compiled in
      if strict_arrays then
        stats := { !stats with cross_checked = !stats.cross_checked + points_per_kernel };
      for _p = 0 to points_per_kernel - 1 do
        let params = Sample.point krng ~line_bytes ~report in
        stats := { !stats with points = !stats.points + 1 };
        match
          Oracle.check ~check_each_pass ~strict_arrays ?inject ?sizes ~cfg ~seed compiled
            params
        with
        | Oracle.Agree -> stats := { !stats with agree = !stats.agree + 1 }
        | Oracle.Rejected _ -> stats := { !stats with rejected = !stats.rejected + 1 }
        | Oracle.Mismatch { size; detail } ->
          let fails k p =
            match compile k with
            | exception _ -> false
            | c -> (
              (* the shrunk candidate earns strictness from its own
                 dependence analysis, not the original's *)
              let strict_arrays = cross_check && provably_independent c in
              match
                Oracle.check ~check_each_pass ~strict_arrays ?inject ?sizes ~cfg ~seed c p
              with
              | Oracle.Mismatch _ -> true
              | Oracle.Agree | Oracle.Rejected _ -> false)
          in
          let k', p' = Shrink.minimize ~fails kernel params in
          let fingerprint =
            match compile k' with
            | exception _ -> "unavailable"
            | c -> Cfg.fingerprint c.Lower.func
          in
          let case =
            {
              Corpus.kernel = k';
              params = p';
              meta =
                [
                  ("seed", string_of_int seed);
                  ("kernel-index", string_of_int i);
                  ("machine", cfg.Ifko_machine.Config.name);
                  ("lil-fingerprint", fingerprint);
                  ("detail", detail);
                  ("size", string_of_int size);
                ]
                @ (if strict_arrays then [ ("cross-check", "bit-exact") ] else []);
            }
          in
          log
            (Printf.sprintf "BUG fz%d size=%d %s (params %s)" i size detail
               (Ifko_transform.Params.canonical p'));
          stats := { !stats with bugs = (case, detail) :: !stats.bugs };
          (match corpus with
          | None -> ()
          | Some dir ->
            let path = Corpus.write ~dir case in
            if not (List.mem path !stats.written) then begin
              log (Printf.sprintf "wrote %s" path);
              stats := { !stats with written = path :: !stats.written }
            end)
      done
  done;
  !stats

let replay ?(check_each_pass = false) ?sizes ~cfg path =
  let case = Corpus.read path in
  let seed =
    match List.assoc_opt "seed" case.Corpus.meta with
    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
    | None -> 0
  in
  match compile case.Corpus.kernel with
  | exception e ->
    Error (Printf.sprintf "reproducer no longer compiles: %s" (Printexc.to_string e))
  | compiled -> (
    (* A reproducer found under cross-check replays at the same
       strictness — but only if its kernel still proves independent
       (the analysis may have tightened since it was written). *)
    let strict_arrays =
      List.mem_assoc "cross-check" case.Corpus.meta && provably_independent compiled
    in
    match
      Oracle.check ~check_each_pass ~strict_arrays ?sizes ~cfg ~seed compiled
        case.Corpus.params
    with
    | Oracle.Agree | Oracle.Rejected _ -> Ok ()
    | Oracle.Mismatch { size; detail } ->
      Error (Printf.sprintf "mismatch at n=%d: %s" size detail))

let replay_dir ?check_each_pass ?sizes ~cfg dir =
  List.map
    (fun path -> (path, replay ?check_each_pass ?sizes ~cfg path))
    (Corpus.files ~dir)
