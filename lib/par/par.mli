(** Domain-based parallel evaluation with deterministic result order.

    The empirical search spends essentially all of its time in probe
    evaluation (compile + verify + time); probes are pure with respect
    to each other — every probe snapshots the kernel and builds its own
    {!Ifko_sim.Env}/{!Ifko_machine.Memsys} state — so whole candidate
    batches can be evaluated concurrently.  This module provides the
    substrate: a persistent pool of worker domains and an order-
    preserving [map], so callers get bit-identical results regardless
    of [jobs] (results come back in submission order; ties are then
    broken exactly as in the sequential code).

    Exceptions raised by tasks are re-raised in the submitting domain;
    when several tasks of one batch fail, the {e lowest-index} failure
    is chosen, so even error behaviour is deterministic. *)

val available_jobs : unit -> int
(** The runtime's recommended domain count for this machine. *)

module Pool : sig
  type t
  (** A pool of worker domains.  With [jobs <= 1] no domains are
      spawned and every batch runs inline in the submitting domain —
      the two paths are observationally identical for pure tasks.

      Batches may be submitted concurrently from several domains or
      threads (the serve daemon multiplexes every in-flight tune's
      probe batches onto one pool): each batch completes independently,
      and its submitter wakes as soon as its own tasks are done.
      While a batch is outstanding its submitter {e helps}, executing
      queued tasks (its own or other submitters') instead of parking —
      concurrent tunes' probe batches merge into one shared work
      stream with one extra lane.  Helping never affects outputs:
      results are written to input-indexed slots. *)

  val create : jobs:int -> t
  (** [create ~jobs] clamps [jobs] to [\[1, 64\]] and, when [jobs > 1],
      spawns [jobs] worker domains that sleep until work arrives. *)

  val jobs : t -> int
  (** The (clamped) parallelism degree. *)

  val run : t -> int -> (int -> 'a) -> 'a array
  (** [run t n f] evaluates [f 0 .. f (n-1)] (concurrently when the
      pool has workers) and returns the results indexed by input:
      [(run t n f).(i) = f i].  Re-raises the lowest-index exception
      after the whole batch has settled. *)

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Order-preserving parallel [List.map] built on {!run}. *)

  val shutdown : t -> unit
  (** Stop and join the worker domains.  Idempotent.  The pool must be
      idle (no batch in flight). *)

  val with_pool : jobs:int -> (t -> 'a) -> 'a
  (** [with_pool ~jobs f] runs [f] on a fresh pool and shuts the pool
      down afterwards, whether [f] returns or raises. *)
end

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [Pool.with_pool ~jobs (fun p -> Pool.map p f xs)]. *)
