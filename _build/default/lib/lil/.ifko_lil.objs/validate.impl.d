lib/lil/validate.ml: Block Cfg Instr List Option Printf Reg
