type routine = Rot | Nrm2 | Dot_strided | Axpy_strided

type kernel_id = { routine : routine; prec : Instr.fsize }

let all =
  List.concat_map
    (fun routine -> [ { routine; prec = Instr.S }; { routine; prec = Instr.D } ])
    [ Rot; Nrm2; Dot_strided; Axpy_strided ]

let name { routine; prec } =
  let p = match prec with Instr.S -> "s" | Instr.D -> "d" in
  match routine with
  | Rot -> p ^ "rot"
  | Nrm2 -> p ^ "nrm2"
  | Dot_strided -> p ^ "dot_inc"
  | Axpy_strided -> p ^ "axpy_inc"

let flops_per_n = function Rot -> 4.0 | Nrm2 -> 2.0 | Dot_strided -> 2.0 | Axpy_strided -> 2.0

let prec_name = function Instr.S -> "single" | Instr.D -> "double"

let source ({ routine; prec } as id) =
  let p = prec_name prec in
  let n = name id in
  match routine with
  | Rot ->
    (* x' = c*x + s*y ; y' = c*y - s*x *)
    Printf.sprintf
      {|KERNEL %s(N : int, c : %s, s : %s, X : ptr %s OUTPUT, Y : ptr %s OUTPUT)
VARS
  x, y, tx, ty : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    tx = c * x + s * y;
    ty = c * y - s * x;
    X[0] = tx;
    Y[0] = ty;
    X += 1;
    Y += 1;
  LOOP_END
END
|}
      n p p p p p
  | Nrm2 ->
    Printf.sprintf
      {|KERNEL %s(N : int, X : ptr %s) RETURNS %s
VARS
  ssq : %s = 0.0;
  x : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    ssq += x * x;
    X += 1;
  LOOP_END
  ssq = SQRT ssq;
  RETURN ssq;
END
|}
      n p p p p
  | Dot_strided ->
    Printf.sprintf
      {|KERNEL %s(N : int, X : ptr %s, incx : int, Y : ptr %s, incy : int) RETURNS %s
VARS
  dot : %s = 0.0;
  x, y : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    dot += x * y;
    X += incx;
    Y += incy;
  LOOP_END
  RETURN dot;
END
|}
      n p p p p p
  | Axpy_strided ->
    Printf.sprintf
      {|KERNEL %s(N : int, alpha : %s, X : ptr %s, incx : int, Y : ptr %s OUTPUT, incy : int)
VARS
  x, y : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    y += alpha * x;
    Y[0] = y;
    X += incx;
    Y += incy;
  LOOP_END
END
|}
      n p p p p

let compile id =
  source id |> Ifko_hil.Parser.parse_kernel |> Ifko_hil.Typecheck.check
  |> Ifko_codegen.Lower.lower

(* rotation coefficients: a normalized (c, s) pair *)
let rot_c = 0.8
let rot_s = 0.6

let vector ~seed ~which ~prec n =
  let rng = Ifko_util.Rng.create (seed + (which * 7919)) in
  Array.init n (fun _ -> Ref_impl.round_to prec (Ifko_util.Rng.sign_float rng 1.0))

let make_env ({ routine; prec } as id) ~seed ?(incx = 1) ?(incy = 1) n =
  ignore id;
  let phys inc = max 1 (n * inc) in
  let bytes = (phys incx + phys incy) * Instr.fsize_bytes prec in
  let env = Ifko_sim.Env.create ~mem_bytes:(max (1 lsl 20) (bytes + (1 lsl 16))) () in
  Ifko_sim.Env.bind_int env "N" n;
  (match routine with
  | Rot ->
    Ifko_sim.Env.bind_fp env "c" prec rot_c;
    Ifko_sim.Env.bind_fp env "s" prec rot_s
  | Axpy_strided -> Ifko_sim.Env.bind_fp env "alpha" prec Workload.alpha
  | Nrm2 | Dot_strided -> ());
  (match routine with
  | Dot_strided | Axpy_strided ->
    Ifko_sim.Env.bind_int env "incx" incx;
    Ifko_sim.Env.bind_int env "incy" incy
  | Rot | Nrm2 -> ());
  Ifko_sim.Env.alloc_array env "X" prec (phys incx);
  let x = vector ~seed ~which:1 ~prec (phys incx) in
  Ifko_sim.Env.fill env "X" (fun i -> x.(i));
  (match routine with
  | Rot | Dot_strided | Axpy_strided ->
    Ifko_sim.Env.alloc_array env "Y" prec (phys incy);
    let y = vector ~seed ~which:2 ~prec (phys incy) in
    Ifko_sim.Env.fill env "Y" (fun i -> y.(i))
  | Nrm2 -> ());
  env

let expectation ({ routine; prec } as id) ~seed ?(incx = 1) ?(incy = 1) n =
  ignore id;
  let phys inc = max 1 (n * inc) in
  let x = vector ~seed ~which:1 ~prec (phys incx) in
  let r32 = Ref_impl.round_to prec in
  match routine with
  | Rot ->
    let y = vector ~seed ~which:2 ~prec (phys incy) in
    for i = 0 to n - 1 do
      let xi = x.(i) and yi = y.(i) in
      x.(i) <- r32 (r32 (rot_c *. xi) +. r32 (rot_s *. yi));
      y.(i) <- r32 (r32 (rot_c *. yi) -. r32 (rot_s *. xi))
    done;
    { Ifko_sim.Verify.arrays = [ ("X", x); ("Y", y) ]; ret = None }
  | Nrm2 ->
    let ssq = ref 0.0 in
    for i = 0 to n - 1 do
      ssq := r32 (!ssq +. r32 (x.(i) *. x.(i)))
    done;
    { Ifko_sim.Verify.arrays = [ ("X", x) ];
      ret = Some (Ifko_sim.Exec.Rfp (r32 (Float.sqrt !ssq)))
    }
  | Dot_strided ->
    let y = vector ~seed ~which:2 ~prec (phys incy) in
    let dot = ref 0.0 in
    for i = 0 to n - 1 do
      dot := r32 (!dot +. r32 (x.(i * incx) *. y.(i * incy)))
    done;
    { Ifko_sim.Verify.arrays = [ ("X", x); ("Y", y) ];
      ret = Some (Ifko_sim.Exec.Rfp !dot)
    }
  | Axpy_strided ->
    let y = vector ~seed ~which:2 ~prec (phys incy) in
    for i = 0 to n - 1 do
      y.(i * incy) <- r32 (y.(i * incy) +. r32 (Workload.alpha *. x.(i * incx)))
    done;
    { Ifko_sim.Verify.arrays = [ ("X", x); ("Y", y) ]; ret = None }

let tolerance { routine; prec } ~n =
  let base = match prec with Instr.S -> 2e-6 | Instr.D -> 1e-12 in
  match routine with
  | Nrm2 | Dot_strided -> base *. Float.max 16.0 (sqrt (float_of_int (max 1 n))) *. 16.0
  | Rot | Axpy_strided -> base *. 16.0

let timer_spec id ~seed =
  { Ifko_sim.Timer.make_env = (fun n -> make_env id ~seed n); ret_fsize = id.prec }
