(** Accumulator detection.

    An accumulator is a scalar FP register that, inside the tunable
    loop, is {e exclusively} the target of floating-point adds of the
    form [r <- r + t] (register or memory second operand) and is never
    otherwise read or written there.  These are the paper's "list of
    all scalars that are valid targets for accumulator expansion", and
    double as the reduction variables the SIMD vectorizer must handle
    specially. *)

type accum = { reg : Reg.t; fsize : Instr.fsize; adds : int }
(** [adds] is the number of accumulating adds per loop iteration. *)

val analyze : Ifko_codegen.Lower.compiled -> accum list
(** Accumulators of the current main loop ([[]] without a tunable
    loop). *)
