type expectation = {
  arrays : (string * float array) list;
  ret : Exec.ret_val option;
}

let close ?(tol = 1e-5) a b =
  let diff = Float.abs (a -. b) in
  diff <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check ?(tol = 1e-5) ~ret_fsize func env expectation =
  match Exec.run ~ret_fsize func env with
  | exception Exec.Trap msg -> Error (Printf.sprintf "trap: %s" msg)
  | result -> (
    let mismatch = ref None in
    let note msg = if !mismatch = None then mismatch := Some msg in
    List.iter
      (fun (name, expected) ->
        let got = Env.to_array env name in
        if Array.length got <> Array.length expected then
          note (Printf.sprintf "array %s: length %d, expected %d" name (Array.length got)
                  (Array.length expected))
        else
          Array.iteri
            (fun i e ->
              if !mismatch = None && not (close ~tol e got.(i)) then
                note (Printf.sprintf "array %s[%d]: got %.17g, expected %.17g" name i got.(i) e))
            expected)
      expectation.arrays;
    (match (expectation.ret, result.Exec.ret) with
    | None, _ -> ()
    | Some (Exec.Rint e), Some (Exec.Rint g) ->
      if e <> g then note (Printf.sprintf "return: got %d, expected %d" g e)
    | Some (Exec.Rfp e), Some (Exec.Rfp g) ->
      if not (close ~tol e g) then note (Printf.sprintf "return: got %.17g, expected %.17g" g e)
    | Some _, Some _ -> note "return: kind mismatch"
    | Some _, None -> note "return: kernel returned nothing");
    match !mismatch with None -> Ok () | Some msg -> Error msg)
