lib/blas/extras.ml: Array Float Ifko_codegen Ifko_hil Ifko_sim Ifko_util Instr List Printf Ref_impl Workload
