(** Machine descriptions for the cycle-approximate simulator.

    Two configurations model the paper's evaluation platforms.  The
    parameters are not a die-shot reproduction; they encode the
    qualitative properties the paper's analysis rests on:

    - the P4E-like machine has a fast clock but a bus that delivers few
      bytes per cycle, so streaming kernels are strongly bus-bound and
      the MLP (miss-level-parallelism) limit keeps demand misses from
      saturating the bus without prefetch;
    - the Opteron-like machine has a slower clock with an on-die memory
      controller: lower latency, more bytes per cycle, hence less
      bus-bound — which is why the paper finds more headroom for
      empirical prefetch tuning there;
    - non-temporal stores avoid the read-for-ownership and the
      (inefficient) dirty-writeback path on the P4E-like bus, but on
      the Opteron-like machine they carry a penalty whenever the target
      line is also cached (the paper: "non-temporal writes result in
      significant overhead unless the operand is write only");
    - the Opteron-like core splits 16-byte vector operations into two
      8-byte halves (as the K8 did), halving the SIMD advantage;
    - the hardware prefetcher runs a bounded number of lines ahead and
      does not cross 4 KiB page boundaries, leaving the gap software
      prefetch fills. *)

type cache_level = {
  size : int;  (** bytes *)
  line : int;  (** bytes *)
  assoc : int;
  latency : int;  (** load-to-use cycles on a hit *)
}

type t = {
  name : string;
  ghz : float;
  issue_width : int;  (** micro-ops issued per cycle *)
  rob_size : int;
      (** reorder-buffer capacity in micro-ops: issue stalls when the
          µop this many slots back has not completed.  This is what
          bounds how far demand misses can overlap — and hence why
          software prefetch (which needs no ROB residency for its data)
          can run much further ahead *)
  l1 : cache_level;
  l2 : cache_level;
  mem_latency : int;  (** cycles from request to first use *)
  bus_bytes_per_cycle : float;  (** sustained memory bandwidth *)
  mshrs : int;  (** maximum outstanding demand misses *)
  fadd_lat : int;
  fmul_lat : int;
  fdiv_lat : int;
  vec_uops : int;  (** µops per 16-byte vector operation (1 or 2) *)
  hw_prefetch_ahead : int;  (** lines the stream prefetcher runs ahead *)
  hw_prefetch_streams : int;
  wnt_read_penalty : float;
      (** extra bus cycles when a non-temporal store hits a cached line *)
  wb_extra : float;
      (** dirty-writeback bus-occupancy multiplier (FSB burst overhead) *)
  branch_misp_penalty : int;
  prefetchable_line : int;
      (** the paper's L: line size of the first prefetchable cache *)
  bus_turnaround : float;
      (** extra bus cycles when a transfer switches direction between
          read and write: DRAM/FSB turnaround.  Amortizing it is what
          AMD's block-fetch technique (used by ATLAS's hand-tuned
          [dcopy*]) is about. *)
  pf_queue : int;
      (** capacity of the prefetch request queue: software prefetches
          are dropped while this many prefetched lines are still in
          flight.  Under bus saturation arrivals slow down, the queue
          stays full and prefetches get discarded — the paper's
          "architectures simply ignore prefetch instructions in this
          case". *)
  pf_latency_factor : float;
      (** prefetch requests (hardware and software) are lowest-priority
          at the memory controller and lose arbitration to demand
          reads, so a prefetched line arrives this factor later than a
          demand fetch would.  This is what bounds the fixed-ahead
          hardware prefetcher's throughput and what the empirically
          tuned software-prefetch distance must out-run. *)
}

(** 2.8 GHz Pentium-4E-like configuration. *)
let p4e =
  {
    name = "P4E";
    ghz = 2.8;
    issue_width = 3;
    rob_size = 126;
    l1 = { size = 16 * 1024; line = 64; assoc = 8; latency = 4 };
    l2 = { size = 1024 * 1024; line = 128; assoc = 8; latency = 22 };
    mem_latency = 360;
    bus_bytes_per_cycle = 2.3;
    mshrs = 8;
    fadd_lat = 5;
    fmul_lat = 7;
    fdiv_lat = 38;
    vec_uops = 1;
    hw_prefetch_ahead = 3;
    hw_prefetch_streams = 8;
    wnt_read_penalty = 4.0;
    wb_extra = 1.35;
    branch_misp_penalty = 24;
    prefetchable_line = 128;
    bus_turnaround = 18.0;
    pf_queue = 32;
    pf_latency_factor = 2.2;
  }

(** 1.6 GHz Opteron-like configuration. *)
let opteron =
  {
    name = "Opteron";
    ghz = 1.6;
    issue_width = 3;
    rob_size = 72;
    l1 = { size = 64 * 1024; line = 64; assoc = 2; latency = 3 };
    l2 = { size = 1024 * 1024; line = 64; assoc = 16; latency = 16 };
    mem_latency = 130;
    bus_bytes_per_cycle = 4.0;
    mshrs = 8;
    fadd_lat = 4;
    fmul_lat = 4;
    fdiv_lat = 20;
    vec_uops = 2;
    hw_prefetch_ahead = 3;
    hw_prefetch_streams = 8;
    wnt_read_penalty = 40.0;
    wb_extra = 1.0;
    branch_misp_penalty = 12;
    prefetchable_line = 64;
    bus_turnaround = 4.0;
    pf_queue = 48;
    pf_latency_factor = 1.9;
  }

let all = [ p4e; opteron ]

(** Canonical rendering of every parameter that can influence the
    memory system's state or timing.  Warm-state checkpoints (Ckpt in
    lib/sim) embed this in their on-disk metadata: change any cache
    geometry or bus/latency parameter and persisted snapshots are
    invalidated rather than silently reused. *)
let geometry t =
  let lvl l = Printf.sprintf "%d/%d/%d/%d" l.size l.line l.assoc l.latency in
  Printf.sprintf
    "%s ghz=%.17g iw=%d rob=%d l1=%s l2=%s mem=%d bus=%.17g mshrs=%d \
     fp=%d/%d/%d vu=%d hwpf=%d/%d wnt=%.17g wb=%.17g bmp=%d pl=%d \
     turn=%.17g pfq=%d pff=%.17g"
    t.name t.ghz t.issue_width t.rob_size (lvl t.l1) (lvl t.l2) t.mem_latency
    t.bus_bytes_per_cycle t.mshrs t.fadd_lat t.fmul_lat t.fdiv_lat t.vec_uops
    t.hw_prefetch_ahead t.hw_prefetch_streams t.wnt_read_penalty t.wb_extra
    t.branch_misp_penalty t.prefetchable_line t.bus_turnaround t.pf_queue
    t.pf_latency_factor

(** Elements of [fsize] per line of the first prefetchable cache — the
    paper's L_e, used for FKO's default unroll factor. *)
let elems_per_line t fsize = t.prefetchable_line / Instr.fsize_bytes fsize
