open Ifko_codegen

type t = {
  kernel_name : string;
  has_opt_loop : bool;
  vectorizable : bool;
  vec_reason : string;
  precision : Instr.fsize option;
  max_unroll : int;
  accumulators : Accuminfo.accum list;
  prefetch_arrays : Ptrinfo.moving list;
  output_arrays : string list;
  gpr_pressure : int;
  xmm_pressure : int;
}

let analyze (compiled : Lower.compiled) =
  let vec = Vecinfo.analyze compiled in
  let gpr_pressure, xmm_pressure = Lint.max_pressure compiled.Lower.func in
  {
    kernel_name = compiled.Lower.source.Ifko_hil.Ast.k_name;
    has_opt_loop = compiled.Lower.loopnest <> None;
    vectorizable = vec.Vecinfo.vectorizable;
    vec_reason = vec.Vecinfo.reason;
    precision = vec.Vecinfo.precision;
    max_unroll = vec.Vecinfo.max_unroll;
    accumulators = Accuminfo.analyze compiled;
    prefetch_arrays = Ptrinfo.prefetch_targets compiled;
    output_arrays =
      List.filter_map
        (fun (a : Lower.array_param) -> if a.Lower.a_output then Some a.Lower.a_name else None)
        compiled.Lower.arrays;
    gpr_pressure;
    xmm_pressure;
  }

let to_string t =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "kernel           : %s\n" t.kernel_name;
  add "tunable loop     : %s\n" (if t.has_opt_loop then "yes" else "no");
  (if t.vectorizable then add "SIMD vectorizable: yes\n"
   else add "SIMD vectorizable: no (%s)\n" t.vec_reason);
  (match t.precision with
  | Some sz ->
    add "precision        : %s\n" (match sz with Instr.S -> "single" | Instr.D -> "double")
  | None -> ());
  add "max safe unroll  : %d\n" t.max_unroll;
  add "accumulators     : %d\n" (List.length t.accumulators);
  add "register pressure: %d GPR, %d XMM\n" t.gpr_pressure t.xmm_pressure;
  add "output arrays    : %s\n"
    (if t.output_arrays = [] then "-" else String.concat ", " t.output_arrays);
  List.iter
    (fun (m : Ptrinfo.moving) ->
      add "prefetch array   : %s (stride %+d B/iter, %d loads, %d stores)\n"
        m.Ptrinfo.array.Lower.a_name m.Ptrinfo.stride m.Ptrinfo.loads m.Ptrinfo.stores)
    t.prefetch_arrays;
  Buffer.contents buf
