(* Search tests: the modified line search on synthetic objectives, its
   memoization, and the end-to-end driver on a real kernel. *)
open Ifko_blas
open Ifko_transform

let report_for id = Ifko_analysis.Report.analyze (Hil_sources.compile id)

let test_space_gates () =
  let dot = report_for { Defs.routine = Defs.Dot; prec = Instr.D } in
  let iamax = report_for { Defs.routine = Defs.Iamax; prec = Instr.D } in
  Alcotest.(check (list bool)) "dot can disable SV" [ true; false ]
    (Ifko_search.Space.sv_candidates dot);
  Alcotest.(check (list bool)) "iamax never vectorizes" [ false ]
    (Ifko_search.Space.sv_candidates iamax);
  Alcotest.(check (list int)) "no accumulators, no AE" [ 0 ]
    (Ifko_search.Space.ae_candidates (report_for { Defs.routine = Defs.Copy; prec = Instr.D }));
  Alcotest.(check bool) "W prefetch only on Opteron" true
    (List.mem (Some Instr.W) (Ifko_search.Space.pf_ins_candidates Ifko_machine.Config.opteron)
    && not (List.mem (Some Instr.W) (Ifko_search.Space.pf_ins_candidates Ifko_machine.Config.p4e)));
  Alcotest.(check (list bool)) "no outputs, no WNT" [ false ]
    (Ifko_search.Space.wnt_candidates dot)

(* Synthetic objective: reward a specific parameter combination; the
   search must find it from the default starting point. *)
let test_linesearch_finds_optimum () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let report = report_for id in
  let cfg = Ifko_machine.Config.p4e in
  let init = Params.default ~line_bytes:128 report in
  let evals = ref 0 in
  let probe (p : Params.t) =
    incr evals;
    let score = ref 100.0 in
    if p.Params.unroll = 8 then score := !score +. 50.0;
    if p.Params.ae = 3 then score := !score +. 25.0;
    (match List.assoc_opt "X" p.Params.prefetch with
    | Some { Params.pf_ins = ins; pf_dist = dist } ->
      if ins = Some Instr.T0 then score := !score +. 40.0;
      if dist = 1280 then score := !score +. 40.0
    | None -> ());
    if not p.Params.wnt then score := !score +. 5.0;
    !score
  in
  let r = Ifko_search.Linesearch.run ~cfg ~report ~init probe in
  Alcotest.(check int) "finds UR" 8 r.Ifko_search.Linesearch.best.Params.unroll;
  Alcotest.(check int) "finds AE" 3 r.Ifko_search.Linesearch.best.Params.ae;
  (match List.assoc "X" r.Ifko_search.Linesearch.best.Params.prefetch with
  | { Params.pf_ins = Some Instr.T0; pf_dist = 1280 } -> ()
  | _ -> Alcotest.fail "prefetch optimum missed");
  Alcotest.(check (float 1e-9)) "best score" 260.0 r.Ifko_search.Linesearch.best_perf;
  Alcotest.(check int) "eval accounting" !evals r.Ifko_search.Linesearch.evaluations

let test_linesearch_memoizes () =
  let id = { Defs.routine = Defs.Asum; prec = Instr.S } in
  let report = report_for id in
  let init = Params.default ~line_bytes:128 report in
  let seen = Hashtbl.create 64 in
  let dup = ref 0 in
  let probe p =
    if Hashtbl.mem seen p then incr dup else Hashtbl.replace seen p ();
    1.0
  in
  let r = Ifko_search.Linesearch.run ~cfg:Ifko_machine.Config.p4e ~report ~init probe in
  Alcotest.(check int) "no duplicate probes" 0 !dup;
  Alcotest.(check bool) "a real search happened" true (r.Ifko_search.Linesearch.evaluations > 20)

let test_linesearch_contributions_multiply () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let report = report_for id in
  let init = Params.default ~line_bytes:128 report in
  let probe (p : Params.t) =
    1.0 +. (0.1 *. float_of_int p.Params.unroll) +. if p.Params.wnt then -0.5 else 0.0
  in
  let r = Ifko_search.Linesearch.run ~cfg:Ifko_machine.Config.p4e ~report ~init probe in
  let product =
    List.fold_left (fun acc (_, ratio) -> acc *. ratio) 1.0
      r.Ifko_search.Linesearch.contributions
  in
  Alcotest.(check (float 1e-6)) "contributions compose to the total"
    (r.Ifko_search.Linesearch.best_perf /. r.Ifko_search.Linesearch.start_perf)
    product

let test_driver_improves_and_verifies () =
  let id = { Defs.routine = Defs.Asum; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let cfg = Ifko_machine.Config.p4e in
  let spec = Workload.timer_spec id ~seed:13 in
  let rejected = ref 0 in
  let test func =
    let env = Workload.make_env id ~seed:17 77 in
    let expect = Workload.expectation id ~seed:17 77 in
    let ok =
      Ifko_sim.Verify.check ~tol:(Workload.tolerance id ~n:77) ~ret_fsize:id.Defs.prec func
        env expect
      = Ok ()
    in
    if not ok then incr rejected;
    ok
  in
  let tuned =
    Ifko_search.Driver.tune ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000
      ~flops_per_n:2.0 ~test compiled
  in
  Alcotest.(check int) "no candidate computed wrong answers" 0 !rejected;
  Alcotest.(check bool) "search never loses to the default" true
    (tuned.Ifko_search.Driver.ifko_mflops >= tuned.Ifko_search.Driver.fko_mflops);
  Alcotest.(check bool) "asum gains from tuning on P4E" true
    (tuned.Ifko_search.Driver.ifko_mflops > 1.2 *. tuned.Ifko_search.Driver.fko_mflops);
  Validate.check_physical tuned.Ifko_search.Driver.best_func

let test_driver_rejects_wrong_answers () =
  (* a tester that rejects everything forces the search to keep the
     default point *)
  let id = { Defs.routine = Defs.Scal; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let spec = Workload.timer_spec id ~seed:13 in
  let tuned =
    Ifko_search.Driver.tune ~cfg:Ifko_machine.Config.p4e ~context:Ifko_sim.Timer.Out_of_cache
      ~spec ~n:80000 ~flops_per_n:1.0
      ~test:(fun _ -> false)
      compiled
  in
  Alcotest.(check bool) "nothing accepted" true
    (tuned.Ifko_search.Driver.ifko_mflops = neg_infinity
    || tuned.Ifko_search.Driver.ifko_mflops = tuned.Ifko_search.Driver.fko_mflops)

(* ---- parallel evaluation and the persistent store ---- *)

let params_t : Params.t Alcotest.testable =
  Alcotest.testable (fun fmt p -> Format.pp_print_string fmt (Params.canonical p)) ( = )

(* The synthetic objective used for the parallel/sequential comparison:
   pure (no shared state), so it can run on worker domains. *)
let synthetic_probe (p : Params.t) =
  let score = ref (10.0 +. (0.7 *. float_of_int p.Params.unroll)) in
  if p.Params.ae = 4 then score := !score +. 11.0;
  if p.Params.sv then score := !score +. 3.0;
  (match List.assoc_opt "X" p.Params.prefetch with
  | Some { Params.pf_ins = Some Instr.T1; pf_dist } ->
    score := !score +. (float_of_int pf_dist /. 100.0)
  | _ -> ());
  !score

let test_linesearch_parallel_matches_sequential () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let report = report_for id in
  let cfg = Ifko_machine.Config.p4e in
  let init = Params.default ~line_bytes:128 report in
  let seq = Ifko_search.Linesearch.run ~cfg ~report ~init synthetic_probe in
  let par =
    Ifko_par.Par.Pool.with_pool ~jobs:4 (fun pool ->
        Ifko_search.Linesearch.run
          ~map_batch:(fun f xs -> Ifko_par.Par.Pool.map pool f xs)
          ~cfg ~report ~init synthetic_probe)
  in
  Alcotest.check params_t "same best point" seq.Ifko_search.Linesearch.best
    par.Ifko_search.Linesearch.best;
  Alcotest.(check (float 0.0)) "same best perf" seq.Ifko_search.Linesearch.best_perf
    par.Ifko_search.Linesearch.best_perf;
  Alcotest.(check int) "same evaluation count" seq.Ifko_search.Linesearch.evaluations
    par.Ifko_search.Linesearch.evaluations

(* A real end-to-end tune, sequential vs. 4 worker domains: the paper's
   whole search must come out bit-identical. *)
let test_driver_jobs_bit_identical () =
  let id = { Defs.routine = Defs.Asum; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let cfg = Ifko_machine.Config.p4e in
  let spec = Workload.timer_spec id ~seed:13 in
  let tune ~jobs =
    Ifko_search.Driver.tune ~jobs ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000
      ~flops_per_n:1.0
      ~test:(fun _ -> true)
      compiled
  in
  let t1 = tune ~jobs:1 and t4 = tune ~jobs:4 in
  Alcotest.check params_t "same best_params" t1.Ifko_search.Driver.best_params
    t4.Ifko_search.Driver.best_params;
  Alcotest.(check (float 0.0)) "same MFLOPS" t1.Ifko_search.Driver.ifko_mflops
    t4.Ifko_search.Driver.ifko_mflops;
  Alcotest.(check int) "same evaluations" t1.Ifko_search.Driver.evaluations
    t4.Ifko_search.Driver.evaluations;
  Alcotest.(check (list (pair string (float 0.0)))) "same contributions"
    t1.Ifko_search.Driver.contributions t4.Ifko_search.Driver.contributions

let with_tmp_store_path f =
  let path = Filename.temp_file "ifko_search_store" ".jsonl" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> Ifko_store.Store.clear path) (fun () -> f path)

let read_lines path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)

(* A tune killed mid-search leaves a journal of completed probes; a
   resumed tune must re-evaluate only what is missing and land on the
   same answer.  Simulated by truncating the journal to its first half
   (exactly the on-disk state of a mid-search kill — the append order
   is the probe order). *)
let test_driver_store_resume () =
  let id = { Defs.routine = Defs.Scal; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let cfg = Ifko_machine.Config.p4e in
  let spec = Workload.timer_spec id ~seed:13 in
  let tune ?store () =
    Ifko_search.Driver.tune ?store ~seed:13 ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec
      ~n:80000 ~flops_per_n:1.0
      ~test:(fun _ -> true)
      compiled
  in
  let plain = tune () in
  with_tmp_store_path (fun path ->
      (* cold run: every probe is computed and journaled *)
      let st = Ifko_store.Store.open_ ~seed:13 path in
      let cold = tune ~store:st () in
      let cold_misses = Ifko_store.Store.misses st in
      Alcotest.(check int) "cold run computes every distinct point"
        cold.Ifko_search.Driver.evaluations cold_misses;
      Alcotest.(check int) "cold run hits nothing" 0 (Ifko_store.Store.hits st);
      Alcotest.check params_t "store does not change the answer"
        plain.Ifko_search.Driver.best_params cold.Ifko_search.Driver.best_params;
      Alcotest.(check (float 0.0)) "store does not change the MFLOPS"
        plain.Ifko_search.Driver.ifko_mflops cold.Ifko_search.Driver.ifko_mflops;
      Ifko_store.Store.close st;
      (* warm rerun: everything is answered from the journal *)
      let st2 = Ifko_store.Store.open_ path in
      let warm = tune ~store:st2 () in
      Alcotest.(check int) "warm rerun recomputes nothing" 0 (Ifko_store.Store.misses st2);
      Alcotest.(check int) "warm rerun is all journal hits"
        warm.Ifko_search.Driver.evaluations (Ifko_store.Store.hits st2);
      Alcotest.check params_t "warm best_params identical"
        cold.Ifko_search.Driver.best_params warm.Ifko_search.Driver.best_params;
      Alcotest.(check (float 0.0)) "warm MFLOPS identical"
        cold.Ifko_search.Driver.ifko_mflops warm.Ifko_search.Driver.ifko_mflops;
      Alcotest.(check int) "warm evaluations identical"
        cold.Ifko_search.Driver.evaluations warm.Ifko_search.Driver.evaluations;
      Ifko_store.Store.close st2;
      (* kill mid-search: keep the header and the first half of the
         journaled probes, resume from there *)
      (match read_lines path with
      | header :: entries ->
        let keep = List.filteri (fun i _ -> i < List.length entries / 2) entries in
        let oc = open_out_bin path in
        List.iter (fun l -> output_string oc (l ^ "\n")) (header :: keep);
        close_out oc
      | [] -> Alcotest.fail "journal is empty");
      let st3 = Ifko_store.Store.open_ path in
      let resumed = tune ~store:st3 () in
      Alcotest.(check bool) "resume re-evaluates only the lost tail" true
        (Ifko_store.Store.misses st3 > 0 && Ifko_store.Store.misses st3 < cold_misses);
      Alcotest.(check int) "journaled points are not re-evaluated"
        (cold_misses - Ifko_store.Store.misses st3)
        (Ifko_store.Store.hits st3);
      Alcotest.check params_t "resumed best_params identical"
        cold.Ifko_search.Driver.best_params resumed.Ifko_search.Driver.best_params;
      Alcotest.(check (float 0.0)) "resumed MFLOPS identical"
        cold.Ifko_search.Driver.ifko_mflops resumed.Ifko_search.Driver.ifko_mflops;
      Ifko_store.Store.close st3)

(* A store keyed on one kernel must miss for an edited kernel: tuning
   ddot against a journal full of dasum results computes everything. *)
let test_store_invalidation_on_kernel_edit () =
  let cfg = Ifko_machine.Config.p4e in
  let tune ~store id =
    let compiled = Hil_sources.compile id in
    let spec = Workload.timer_spec id ~seed:13 in
    Ifko_search.Driver.tune ~store ~seed:13 ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec
      ~n:80000 ~flops_per_n:1.0
      ~test:(fun _ -> true)
      compiled
  in
  with_tmp_store_path (fun path ->
      let st = Ifko_store.Store.open_ ~seed:13 path in
      let a = tune ~store:st { Defs.routine = Defs.Asum; prec = Instr.D } in
      let after_a = Ifko_store.Store.misses st in
      Alcotest.(check int) "first kernel all computed" a.Ifko_search.Driver.evaluations
        after_a;
      let b = tune ~store:st { Defs.routine = Defs.Dot; prec = Instr.D } in
      Alcotest.(check int) "different kernel shares nothing"
        (after_a + b.Ifko_search.Driver.evaluations)
        (Ifko_store.Store.misses st);
      Ifko_store.Store.close st)

(* ---- the compile-once probe cache ---- *)

module Codecache = Ifko_search.Codecache

let cc_result_tag = function
  | Codecache.Illegal -> "illegal"
  | Codecache.Test_failed -> "test-failed"
  | Codecache.Compiled _ -> "compiled"

let test_codecache_dedup () =
  let cc = Codecache.create () in
  let k r = Codecache.key ~kernel:"dot-v1" ~machine:"P4E" ~params:r ~check:false ~seed:7 in
  Alcotest.(check bool) "check flag changes the key" false
    (Codecache.key ~kernel:"k" ~machine:"m" ~params:"p" ~check:true ~seed:7
    = Codecache.key ~kernel:"k" ~machine:"m" ~params:"p" ~check:false ~seed:7);
  Alcotest.(check bool) "seed changes the key" false
    (Codecache.key ~kernel:"k" ~machine:"m" ~params:"p" ~check:false ~seed:7
    = Codecache.key ~kernel:"k" ~machine:"m" ~params:"p" ~check:false ~seed:8);
  let runs = ref 0 in
  let compute r () = incr runs; r in
  (* every result constructor is cached, including the failures — an
     illegal or test-failed point must not be re-attempted per probe *)
  let r1 = Codecache.find_or_compile cc ~key:(k "a") (compute Codecache.Illegal) in
  let r2 = Codecache.find_or_compile cc ~key:(k "a") (compute Codecache.Test_failed) in
  Alcotest.(check string) "second probe of a hits the cache" (cc_result_tag r1) (cc_result_tag r2);
  let r3 = Codecache.find_or_compile cc ~key:(k "b") (compute Codecache.Test_failed) in
  Alcotest.(check string) "distinct params compute fresh" "test-failed" (cc_result_tag r3);
  Alcotest.(check int) "two computations for two keys" 2 !runs;
  let s = Codecache.stats cc in
  Alcotest.(check int) "one hit" 1 s.Codecache.hits;
  Alcotest.(check int) "two misses" 2 s.Codecache.misses;
  (* an exception (a pass-check failure must fail the tune) is never
     cached: the key is released and the next caller computes *)
  (match Codecache.find_or_compile cc ~key:(k "c") (fun () -> failwith "pass check") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "compute exception must propagate");
  let r4 = Codecache.find_or_compile cc ~key:(k "c") (compute Codecache.Illegal) in
  Alcotest.(check string) "failed compute was not cached" "illegal" (cc_result_tag r4)

let test_codecache_single_flight () =
  let cc = Codecache.create () in
  let key = Codecache.key ~kernel:"k" ~machine:"m" ~params:"p" ~check:false ~seed:0 in
  let runs = Atomic.make 0 in
  let compute () =
    Atomic.incr runs;
    Unix.sleepf 0.02;
    Codecache.Test_failed
  in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Codecache.find_or_compile cc ~key compute))
  in
  let results = List.map Domain.join domains in
  Alcotest.(check int) "concurrent misses computed once" 1 (Atomic.get runs);
  List.iter
    (fun r -> Alcotest.(check string) "every waiter sees the result" "test-failed" (cc_result_tag r))
    results

let test_driver_codecache_reuse () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let cfg = Ifko_machine.Config.p4e in
  let spec = Workload.timer_spec id ~seed:13 in
  let tune ?codecache () =
    Ifko_search.Driver.tune ?codecache ~seed:13 ~fidelity:Ifko_sim.Timer.Sampled ~cfg
      ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000 ~flops_per_n:2.0
      ~test:(fun _ -> true)
      compiled
  in
  let fresh = tune () in
  let cc = Codecache.create () in
  let first = tune ~codecache:cc () in
  let after_first = Codecache.stats cc in
  let second = tune ~codecache:cc () in
  let after_second = Codecache.stats cc in
  Alcotest.(check params_t) "shared cache changes nothing (params)"
    fresh.Ifko_search.Driver.best_params second.Ifko_search.Driver.best_params;
  Alcotest.(check (float 0.0)) "shared cache changes nothing (rate)"
    fresh.Ifko_search.Driver.ifko_mflops second.Ifko_search.Driver.ifko_mflops;
  Alcotest.(check int) "a repeated tune compiles nothing new"
    after_first.Codecache.misses after_second.Codecache.misses;
  Alcotest.(check bool) "a repeated tune hits for every candidate" true
    (after_second.Codecache.hits >= after_first.Codecache.misses);
  ignore first

(* ---- strategies: bit-identity, determinism, warm starts ---- *)

(* The pre-refactor modified line search, written out as the original
   one-dimension-at-a-time loop over the Space candidates.  This is the
   committed reference the strategy-based {!Linesearch} must stay
   bit-identical to: same probe memoization, same strict-[>] first-wins
   fold, same dimension order. *)
let legacy_sweep ~cfg ~report ~init probe =
  let memo = Hashtbl.create 64 in
  let evals = ref 0 in
  let eval p =
    let c = Params.canonical p in
    match Hashtbl.find_opt memo c with
    | Some v -> v
    | None ->
      incr evals;
      let v = probe p in
      Hashtbl.replace memo c v;
      v
  in
  let start = eval init in
  let cur = ref init in
  let cur_perf = ref start in
  let contributions = ref [] in
  let sweep variants =
    List.iter
      (fun p ->
        let v = eval p in
        if v > !cur_perf then begin
          cur := p;
          cur_perf := v
        end)
      variants
  in
  let dim name sweeps =
    let before = !cur_perf in
    List.iter (fun f -> sweep (f !cur)) sweeps;
    contributions :=
      (name, if before > 0.0 then !cur_perf /. before else 1.0) :: !contributions
  in
  let module Space = Ifko_search.Space in
  let arrays = List.map fst init.Params.prefetch in
  dim "SV"
    [ (fun cur -> List.map (fun sv -> { cur with Params.sv }) (Space.sv_candidates report)) ];
  dim "WNT"
    [ (fun cur -> List.map (fun wnt -> { cur with Params.wnt }) (Space.wnt_candidates report));
    ];
  dim "PF DST"
    (List.map
       (fun name cur -> List.map (Space.set_pf_dist cur name) (Space.pf_dist_candidates cfg))
       arrays);
  dim "PF INS"
    (List.map
       (fun name cur -> List.map (Space.set_pf_ins cur name) (Space.pf_ins_candidates cfg))
       arrays);
  dim "UR"
    [ (fun cur ->
        List.map (fun u -> { cur with Params.unroll = u }) (Space.unroll_candidates report));
    ];
  dim "AE"
    [ (fun cur -> List.map (fun ae -> { cur with Params.ae }) (Space.ae_candidates report)) ];
  dim "UR*AE"
    [ (fun cur ->
        let u0 = cur.Params.unroll in
        let urs =
          List.sort_uniq compare
            (List.filter
               (fun u -> u >= 1 && u <= report.Ifko_analysis.Report.max_unroll)
               [ u0 / 2; u0; u0 * 2 ])
        in
        let aes = List.filter (fun a -> a = 0 || a >= 2) (Space.ae_candidates report) in
        List.concat_map
          (fun u -> List.map (fun ae -> { cur with Params.unroll = u; Params.ae = ae }) aes)
          urs);
    ];
  dim "PF2"
    (List.concat_map
       (fun name ->
         [ (fun cur -> List.map (Space.set_pf_ins cur name) (Space.pf_ins_candidates cfg));
           (fun cur -> List.map (Space.set_pf_dist cur name) (Space.pf_dist_candidates cfg));
         ])
       arrays);
  (!cur, !cur_perf, start, List.rev !contributions, !evals)

let test_linesearch_matches_legacy_sweep () =
  let cfg = Ifko_machine.Config.p4e in
  List.iter
    (fun id ->
      let report = report_for id in
      let init = Params.default ~line_bytes:128 report in
      let best, best_perf, start_perf, contributions, evals =
        legacy_sweep ~cfg ~report ~init synthetic_probe
      in
      let r = Ifko_search.Linesearch.run ~cfg ~report ~init synthetic_probe in
      Alcotest.check params_t "same best point" best r.Ifko_search.Linesearch.best;
      Alcotest.(check (float 0.0)) "same best perf" best_perf
        r.Ifko_search.Linesearch.best_perf;
      Alcotest.(check (float 0.0)) "same start perf" start_perf
        r.Ifko_search.Linesearch.start_perf;
      Alcotest.(check int) "same evaluation count" evals
        r.Ifko_search.Linesearch.evaluations;
      Alcotest.(check (list (pair string (float 0.0)))) "same contributions" contributions
        r.Ifko_search.Linesearch.contributions)
    [ { Defs.routine = Defs.Dot; prec = Instr.D };
      { Defs.routine = Defs.Asum; prec = Instr.S };
      { Defs.routine = Defs.Iamax; prec = Instr.D };
      { Defs.routine = Defs.Copy; prec = Instr.S };
    ]

(* The surrogate's proposal stream must be a pure function of its seed:
   the same search on 1, 4 and 8 worker domains probes the same points
   and lands on the same answer, bit for bit. *)
let test_surrogate_jobs_deterministic () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let report = report_for id in
  let cfg = Ifko_machine.Config.p4e in
  let init = Params.default ~line_bytes:128 report in
  let run ?map_batch () =
    Ifko_search.Strategy.run ?map_batch ~init
      ~make:(fun ~init_perf ->
        Ifko_search.Surrogate.strategy ~seed:42 ~cfg ~report ~init ~init_perf ())
      synthetic_probe
  in
  let seq = run () in
  Alcotest.(check bool) "a real search happened" true (seq.Ifko_search.Strategy.evaluations > 8);
  List.iter
    (fun jobs ->
      let par =
        Ifko_par.Par.Pool.with_pool ~jobs (fun pool ->
            run ~map_batch:(fun f xs -> Ifko_par.Par.Pool.map pool f xs) ())
      in
      let label fmt = Printf.sprintf "%s at jobs=%d" fmt jobs in
      Alcotest.check params_t (label "same best") seq.Ifko_search.Strategy.best
        par.Ifko_search.Strategy.best;
      Alcotest.(check (float 0.0)) (label "same best perf")
        seq.Ifko_search.Strategy.best_perf par.Ifko_search.Strategy.best_perf;
      Alcotest.(check int) (label "same evaluations")
        seq.Ifko_search.Strategy.evaluations par.Ifko_search.Strategy.evaluations;
      Alcotest.(check int) (label "same probes-to-best")
        seq.Ifko_search.Strategy.probes_to_best par.Ifko_search.Strategy.probes_to_best)
    [ 4; 8 ]

(* Warm-start plumbing at the unit level: journal entries parse into
   donors only when they are well-formed tune entries, and seeding
   ranks by fingerprint distance. *)
let test_warmstart_donors () =
  let module W = Ifko_search.Warmstart in
  let dot = report_for { Defs.routine = Defs.Dot; prec = Instr.D } in
  let asum = report_for { Defs.routine = Defs.Asum; prec = Instr.D } in
  let init = Params.default ~line_bytes:128 dot in
  let feat r = Ifko_analysis.Report.features r in
  let entry best =
    Ifko_store.Store.Json.render
      [ ("best", Ifko_store.Store.Json.S (Params.canonical best));
        ("fko", Ifko_store.Store.Json.N 100.0);
        ("evals", Ifko_store.Store.Json.N 50.0);
        ("kernel", Ifko_store.Store.Json.S "dasum");
        ("feat", W.feat_json (feat asum));
      ]
  in
  let timed = Ifko_store.Store.Timed { mflops = 500.0; cycles = 0.0 } in
  let donor_params = { init with Params.unroll = 8; ae = 4 } in
  (* well-formed tune entry parses *)
  (match W.donor_of_entry ~params:(entry donor_params) ~prov:"tune dasum@P4E" timed with
  | Some d ->
    Alcotest.(check string) "donor kernel" "dasum" d.W.d_kernel;
    Alcotest.check params_t "donor point" donor_params d.W.d_params;
    Alcotest.(check (float 0.0)) "donor mflops" 500.0 d.W.d_mflops
  | None -> Alcotest.fail "well-formed tune entry must parse");
  (* probe entries, corrupt JSON, and failures never become donors *)
  Alcotest.(check bool) "probe prov skipped" true
    (W.donor_of_entry ~params:(entry donor_params) ~prov:"dasum@P4E" timed = None);
  Alcotest.(check bool) "corrupt JSON skipped" true
    (W.donor_of_entry ~params:"{not json" ~prov:"tune x" timed = None);
  Alcotest.(check bool) "unparseable point skipped" true
    (W.donor_of_entry
       ~params:
         (Ifko_store.Store.Json.render
            [ ("best", Ifko_store.Store.Json.S "garbage");
              ("kernel", Ifko_store.Store.Json.S "x");
              ("feat", W.feat_json []);
            ])
       ~prov:"tune x" timed
    = None);
  Alcotest.(check bool) "failed tune skipped" true
    (W.donor_of_entry ~params:(entry donor_params) ~prov:"tune x" Ifko_store.Store.Test_failed
    = None);
  (* seeding ranks by fingerprint distance: a donor with the target's
     own fingerprint outranks a far one *)
  let near = { W.d_kernel = "twin"; d_feat = feat dot; d_params = donor_params; d_mflops = 1.0 } in
  let far_params = { init with Params.unroll = 2 } in
  let far = { W.d_kernel = "other"; d_feat = feat asum; d_params = far_params; d_mflops = 9.0 } in
  (match W.seeds ~k:1 ~cfg:Ifko_machine.Config.p4e ~report:dot ~init ~feat:(feat dot) [ far; near ] with
  | [ s ] -> Alcotest.check params_t "nearest donor seeds first" donor_params s
  | l -> Alcotest.failf "expected 1 seed, got %d" (List.length l));
  Alcotest.(check bool) "identical fingerprints are at distance 0" true
    (W.distance (feat dot) (feat dot) = 0.0);
  Alcotest.(check bool) "different kernels are apart" true
    (W.distance (feat dot) (feat asum) > 0.0)

(* End-to-end warm start through the driver and the store: a tune of
   the same kernel at a smaller N journals a donor; the warm-started
   surrogate then opens at the donor's winner and halves (at least) its
   own cold probes-to-best.  An empty store — or one holding only
   garbage tune entries — must leave the search bit-identical to a
   cold start. *)
let test_driver_warm_start () =
  let id = { Defs.routine = Defs.Asum; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let cfg = Ifko_machine.Config.p4e in
  let spec = Workload.timer_spec id ~seed:13 in
  let tune ?strategy ?(warm_start = false) ?store ~n () =
    Ifko_search.Driver.tune ?strategy ~warm_start ?store ~seed:13 ~cfg
      ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n ~flops_per_n:1.0
      ~test:(fun _ -> true)
      compiled
  in
  let cold = tune ~strategy:Ifko_search.Driver.Surrogate ~n:2000 () in
  with_tmp_store_path (fun path ->
      (* donor: the same kernel tuned at half the problem size *)
      let st = Ifko_store.Store.open_ ~seed:13 path in
      ignore (tune ~store:st ~n:1000 () : Ifko_search.Driver.tuned);
      Alcotest.(check int) "donor tune journaled one tune entry" 1
        (Ifko_store.Store.stat st).Ifko_store.Store.st_tunes;
      let warm = tune ~strategy:Ifko_search.Driver.Surrogate ~warm_start:true ~store:st ~n:2000 () in
      Ifko_store.Store.close st;
      Alcotest.(check bool) "warm start halves probes-to-best" true
        (2 * warm.Ifko_search.Driver.probes_to_best
        <= cold.Ifko_search.Driver.probes_to_best);
      Alcotest.(check bool) "warm never loses to the default" true
        (warm.Ifko_search.Driver.ifko_mflops >= warm.Ifko_search.Driver.fko_mflops));
  (* empty store: a clean cold start, bit for bit *)
  with_tmp_store_path (fun path ->
      let st = Ifko_store.Store.open_ ~seed:13 path in
      let w = tune ~strategy:Ifko_search.Driver.Surrogate ~warm_start:true ~store:st ~n:2000 () in
      Ifko_store.Store.close st;
      Alcotest.check params_t "empty store: same point" cold.Ifko_search.Driver.best_params
        w.Ifko_search.Driver.best_params;
      Alcotest.(check (float 0.0)) "empty store: same MFLOPS"
        cold.Ifko_search.Driver.ifko_mflops w.Ifko_search.Driver.ifko_mflops;
      Alcotest.(check int) "empty store: same probes-to-best"
        cold.Ifko_search.Driver.probes_to_best w.Ifko_search.Driver.probes_to_best);
  (* corrupt tune entries: skipped, so still a clean cold start *)
  with_tmp_store_path (fun path ->
      let st = Ifko_store.Store.open_ ~seed:13 path in
      Ifko_store.Store.add st ~key:"junk1" ~params:"{not json" ~prov:"tune junk"
        (Ifko_store.Store.Timed { mflops = 1.0; cycles = 0.0 });
      Ifko_store.Store.add st ~key:"junk2" ~params:"{\"best\": 3}" ~prov:"tune junk"
        (Ifko_store.Store.Timed { mflops = 1.0; cycles = 0.0 });
      Alcotest.(check (list string)) "garbage yields no donors" []
        (List.map
           (fun d -> d.Ifko_search.Warmstart.d_kernel)
           (Ifko_search.Warmstart.donors_of_store st));
      let w = tune ~strategy:Ifko_search.Driver.Surrogate ~warm_start:true ~store:st ~n:2000 () in
      Ifko_store.Store.close st;
      Alcotest.check params_t "corrupt store: same point" cold.Ifko_search.Driver.best_params
        w.Ifko_search.Driver.best_params;
      Alcotest.(check int) "corrupt store: same probes-to-best"
        cold.Ifko_search.Driver.probes_to_best w.Ifko_search.Driver.probes_to_best)

let suite =
  [ Alcotest.test_case "space gating" `Quick test_space_gates;
    Alcotest.test_case "linesearch finds optimum" `Quick test_linesearch_finds_optimum;
    Alcotest.test_case "linesearch memoizes" `Quick test_linesearch_memoizes;
    Alcotest.test_case "contributions multiply" `Quick test_linesearch_contributions_multiply;
    Alcotest.test_case "driver improves and verifies" `Slow test_driver_improves_and_verifies;
    Alcotest.test_case "driver rejects wrong answers" `Quick test_driver_rejects_wrong_answers;
    Alcotest.test_case "codecache dedup and stats" `Quick test_codecache_dedup;
    Alcotest.test_case "codecache single flight" `Quick test_codecache_single_flight;
    Alcotest.test_case "driver codecache reuse" `Quick test_driver_codecache_reuse;
    Alcotest.test_case "linesearch parallel = sequential" `Quick
      test_linesearch_parallel_matches_sequential;
    Alcotest.test_case "linesearch matches legacy sweep" `Quick
      test_linesearch_matches_legacy_sweep;
    Alcotest.test_case "surrogate deterministic at jobs 1/4/8" `Quick
      test_surrogate_jobs_deterministic;
    Alcotest.test_case "warm-start donors" `Quick test_warmstart_donors;
    Alcotest.test_case "driver warm start" `Slow test_driver_warm_start;
  ]
