open Ifko_codegen

type moving = {
  array : Lower.array_param;
  stride : int;
  loads : int;
  stores : int;
}

type classified = {
  moving : moving list;
      (** arrays whose pointer advances only by constant self-increments *)
  irregular : Lower.array_param list;
      (** arrays whose pointer is redefined non-incrementally in the
          loop: no stride can be attributed, so prefetch and any other
          stride-trusting transform must skip them *)
  stale : bool;
      (** a loop nest was marked but its labels no longer resolve *)
}

let loop_blocks (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> []
  | Some ln ->
    let labels = (ln.Loopnest.header :: Loopnest.body_labels compiled.Lower.func ln) @ [ ln.Loopnest.latch ] in
    let blocks = List.filter_map (Cfg.find_block compiled.Lower.func) labels in
    (* The pipeline's final control-flow cleanup may merge the loop
       bookkeeping blocks away, leaving the loopnest labels stale.
       Partial information would misreport every stride as 0, so a
       stale loopnest is treated as no loop at all. *)
    if List.length blocks < List.length labels then [] else blocks

let classify (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | None -> { moving = []; irregular = []; stale = false }
  | Some _ ->
    match loop_blocks compiled with
    | [] -> { moving = []; irregular = []; stale = true }
    | blocks ->
    let stat (a : Lower.array_param) =
      let reg = a.Lower.a_reg in
      let stride = ref 0 and loads = ref 0 and stores = ref 0 in
      let irregular = ref false in
      let mem_touches (m : Instr.mem) =
        Reg.equal m.Instr.base reg
        || match m.Instr.index with Some idx -> Reg.equal idx reg | None -> false
      in
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              (match i with
              | Instr.Iop (Instr.Iadd, d, s, Instr.Oimm k)
                when Reg.equal d reg && Reg.equal s reg -> stride := !stride + k
              | Instr.Iop (Instr.Isub, d, s, Instr.Oimm k)
                when Reg.equal d reg && Reg.equal s reg -> stride := !stride - k
              | i -> if List.exists (Reg.equal reg) (Instr.defs i) then irregular := true);
              if Instr.is_load i && List.exists mem_touches (match i with
                  | Instr.Ild (_, m) | Instr.Fld (_, _, m) | Instr.Vld (_, _, m)
                  | Instr.Fopm (_, _, _, _, m) | Instr.Vopm (_, _, _, _, m) -> [ m ]
                  | _ -> []) then incr loads;
              if Instr.is_store i && List.exists mem_touches (match i with
                  | Instr.Ist (m, _) | Instr.Fst (_, m, _) | Instr.Fstnt (_, m, _)
                  | Instr.Vst (_, m, _) | Instr.Vstnt (_, m, _) -> [ m ]
                  | _ -> []) then incr stores)
            b.Block.instrs)
        blocks;
      if !irregular then Either.Right a
      else Either.Left { array = a; stride = !stride; loads = !loads; stores = !stores }
    in
    let moving, irregular = List.partition_map stat compiled.Lower.arrays in
    { moving; irregular; stale = false }

let analyze compiled = (classify compiled).moving

let stale compiled = (classify compiled).stale

let prefetch_targets compiled =
  analyze compiled
  |> List.filter (fun m -> m.stride <> 0 && not m.array.Lower.a_noprefetch)
