lib/transform/regalloc.ml: Block Cfg Fun Hashtbl Ifko_analysis Ifko_util Instr List Liveness Option Reg
