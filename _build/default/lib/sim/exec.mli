(** The LIL executor: architectural semantics plus (optionally) the
    cycle-approximate timing model.

    One walker implements both concerns so timing can never diverge
    from semantics: branch directions, addresses and values come from
    the same interpretation that the correctness tester checks.  The
    timing model is a greedy out-of-order scheduler — a width-limited
    front end, per-unit service times, register-ready times for true
    (read-after-write) dependencies only (register renaming removes
    the false ones, as on the modelled machines), memory completion
    times from {!Ifko_machine.Memsys}, and a one-bit branch
    predictor. *)

type ret_val = Rint of int | Rfp of float

type result = {
  ret : ret_val option;
  cycles : float;  (** 0 when run without timing *)
  instr_count : int;
  uop_count : int;
}

exception Trap of string
(** Raised on semantic violations: unaligned vector access, jump to a
    missing label, instruction budget exceeded.  A trap indicates a
    compiler bug, and the test suite treats it as such. *)

val run :
  ?timing:Ifko_machine.Config.t * Ifko_machine.Memsys.t ->
  ?max_instrs:int ->
  ?ret_fsize:Instr.fsize ->
  Cfg.func ->
  Env.t ->
  result
(** Execute [func] (virtual or physical registers both work) against
    [env].  Parameters are initialized from the environment's bindings
    by name; the frame pointer is set to the environment's stack.
    [ret_fsize] selects how a floating-point return register is read
    (default double).  Default [max_instrs] is 200 million. *)
