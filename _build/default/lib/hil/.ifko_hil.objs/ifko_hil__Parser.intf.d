lib/hil/parser.mli: Ast
