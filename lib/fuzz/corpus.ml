open Ifko_hil

type case = {
  kernel : Ast.kernel;
  params : Ifko_transform.Params.t;
  meta : (string * string) list;
}

(* Meta values may come from multi-line diagnostics; everything must
   stay on the comment line or the kernel source below is corrupted. *)
let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let to_string c =
  let b = Buffer.create 512 in
  Buffer.add_string b "# ifko-fuzz reproducer v1\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "# %s: %s\n" (one_line k) (one_line v)))
    c.meta;
  Buffer.add_string b ("PARAMS " ^ Ifko_transform.Params.canonical c.params ^ "\n");
  let src = Pp.kernel_to_string c.kernel in
  Buffer.add_string b src;
  if src = "" || src.[String.length src - 1] <> '\n' then Buffer.add_char b '\n';
  Buffer.contents b

let of_string s =
  let meta = ref [] and params = ref None in
  let src = Buffer.create 256 in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then begin
        let body = String.sub line 1 (String.length line - 1) in
        match String.index_opt body ':' with
        | Some i ->
          let k = String.trim (String.sub body 0 i) in
          let v = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
          meta := (k, v) :: !meta
        | None -> ()
      end
      else if String.length line >= 7 && String.sub line 0 7 = "PARAMS " then
        params :=
          Some
            (Ifko_transform.Params.of_canonical
               (String.trim (String.sub line 7 (String.length line - 7))))
      else begin
        Buffer.add_string src line;
        Buffer.add_char src '\n'
      end)
    (String.split_on_char '\n' s);
  match !params with
  | None -> failwith "corpus: missing PARAMS line"
  | Some p ->
    { kernel = Parser.parse_kernel (Buffer.contents src); params = p; meta = List.rev !meta }

let file_name c =
  let digest =
    Digest.to_hex
      (Digest.string
         (Ifko_transform.Params.canonical c.params ^ "\n" ^ Pp.kernel_to_string c.kernel))
  in
  Printf.sprintf "%s-%s.repro" c.kernel.Ast.k_name (String.sub digest 0 12)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write ~dir c =
  mkdir_p dir;
  let path = Filename.concat dir (file_name c) in
  let oc = open_out_bin path in
  output_string oc (to_string c);
  close_out oc;
  path

let read path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try of_string s
  with e -> failwith (Printf.sprintf "%s: %s" path (Printexc.to_string e))

let files ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
    |> List.map (Filename.concat dir)
