lib/lil/reg.ml: Array Map Printf Set
