(* Baseline tests: compiler models, ATLAS's hand-tuned candidates
   (including the all-assembly kernels), its install-time search, and
   the hand-tuning idioms. *)
open Ifko_blas
open Ifko_machine

let verify_func id func =
  List.iter
    (fun n ->
      let env = Workload.make_env id ~seed:31 n in
      let expect = Workload.expectation id ~seed:31 n in
      let tol = Workload.tolerance id ~n in
      match Ifko_sim.Verify.check ~tol ~ret_fsize:id.Defs.prec func env expect with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s n=%d: %s" (Defs.name id) n e)
    [ 0; 1; 2; 15; 64; 513; 1200 ]

let test_compiler_models_correct () =
  List.iter
    (fun (m : Ifko_baselines.Compiler_model.t) ->
      List.iter
        (fun id ->
          let compiled = Hil_sources.compile id in
          verify_func id
            (Ifko_baselines.Compiler_model.compile m ~cfg:Config.p4e
               ~context:Ifko_sim.Timer.Out_of_cache compiled))
        Defs.all)
    Ifko_baselines.Compiler_model.all

let test_gcc_never_vectorizes () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.S } in
  let f =
    Ifko_baselines.Compiler_model.compile Ifko_baselines.Compiler_model.gcc ~cfg:Config.p4e
      ~context:Ifko_sim.Timer.Out_of_cache (Hil_sources.compile id)
  in
  let has_vector = ref false in
  Cfg.iter_instrs f (fun i ->
      match i with Instr.Vld _ | Instr.Vop _ -> has_vector := true | _ -> ());
  Alcotest.(check bool) "gcc stays scalar" false !has_vector

let test_icc_prof_wnt_policy () =
  let id = { Defs.routine = Defs.Swap; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let report = Ifko_analysis.Report.analyze compiled in
  let oc =
    Ifko_baselines.Compiler_model.params Ifko_baselines.Compiler_model.icc_prof
      ~cfg:Config.opteron ~context:Ifko_sim.Timer.Out_of_cache report
  in
  Alcotest.(check bool) "profile applies WNT when streaming" true
    oc.Ifko_transform.Params.wnt;
  let l2 =
    Ifko_baselines.Compiler_model.params Ifko_baselines.Compiler_model.icc_prof
      ~cfg:Config.opteron ~context:Ifko_sim.Timer.In_l2 report
  in
  Alcotest.(check bool) "but not for cache-resident data" false
    l2.Ifko_transform.Params.wnt

let test_icc_prof_blind_wnt_hurts_on_opteron () =
  (* the paper's observation: icc+prof is many times slower than
     icc+ref on Opteron swap/axpy because of blind non-temporal
     stores *)
  let id = { Defs.routine = Defs.Swap; prec = Instr.S } in
  let compiled = Hil_sources.compile id in
  let cfg = Config.opteron in
  let spec = Workload.timer_spec id ~seed:31 in
  let time m =
    let f =
      Ifko_baselines.Compiler_model.compile m ~cfg ~context:Ifko_sim.Timer.Out_of_cache
        compiled
    in
    Ifko_sim.Timer.measure ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n:80000 f
  in
  let icc = time Ifko_baselines.Compiler_model.icc in
  let prof = time Ifko_baselines.Compiler_model.icc_prof in
  Alcotest.(check bool)
    (Printf.sprintf "icc+prof (%.0f cy) slower than icc (%.0f cy)" prof icc)
    true (prof > 1.3 *. icc)

let test_atlas_candidates_correct () =
  List.iter
    (fun id ->
      List.iter
        (fun (cand : Ifko_baselines.Atlas_kernels.candidate) ->
          List.iter
            (fun pf ->
              let f = cand.Ifko_baselines.Atlas_kernels.build ~cfg:Config.p4e ~pf ~wnt:false in
              Validate.check_physical f;
              verify_func id f)
            [ None; Some (Instr.Nta, 1024) ])
        (Ifko_baselines.Atlas_kernels.candidates id))
    Defs.all

let test_atlas_has_assembly_specials () =
  let names id =
    List.map
      (fun (c : Ifko_baselines.Atlas_kernels.candidate) -> c.Ifko_baselines.Atlas_kernels.cand_name)
      (Ifko_baselines.Atlas_kernels.candidates id)
  in
  Alcotest.(check bool) "copy has block fetch" true
    (List.mem "block_fetch" (names { Defs.routine = Defs.Copy; prec = Instr.D }));
  Alcotest.(check bool) "iamax has the mask kernel" true
    (List.mem "sse_mask" (names { Defs.routine = Defs.Iamax; prec = Instr.S }))

let test_atlas_search_picks_assembly_iamax () =
  let sel =
    Ifko_baselines.Atlas_search.select ~cfg:Config.p4e ~context:Ifko_sim.Timer.Out_of_cache
      ~n:80000 ~seed:31 { Defs.routine = Defs.Iamax; prec = Instr.S }
  in
  Alcotest.(check string) "vectorized assembly wins" "sse_mask"
    sel.Ifko_baselines.Atlas_search.candidate;
  Alcotest.(check string) "starred name" "isamax*" sel.Ifko_baselines.Atlas_search.kernel_name

let test_two_array_indexing_idiom () =
  let id = { Defs.routine = Defs.Copy; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let c = Ifko_transform.Pipeline.snapshot compiled in
  (match Ifko_transform.Unroll.apply c 4 with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Ifko_analysis.Diag.to_string d));
  Ifko_baselines.Atlas_idioms.two_array_indexing c;
  (* pointer bumps replaced by a single shared index update *)
  let f = c.Ifko_codegen.Lower.func in
  (match c.Ifko_codegen.Lower.loopnest with
  | None -> Alcotest.fail "loopnest"
  | Some ln ->
    let body =
      Cfg.find_block_exn f (List.hd (Ifko_codegen.Loopnest.body_labels f ln))
    in
    let bumps =
      List.length
        (List.filter
           (function Instr.Iop (Instr.Iadd, _, _, Instr.Oimm _) -> true | _ -> false)
           body.Block.instrs)
    in
    Alcotest.(check int) "one integer update per iteration" 1 bumps;
    let indexed =
      List.exists
        (function
          | Instr.Fld (_, _, m) | Instr.Fst (_, m, _) -> m.Instr.index <> None
          | _ -> false)
        body.Block.instrs
    in
    Alcotest.(check bool) "accesses use base+index" true indexed);
  (* semantics preserved, via a full pipeline finish *)
  ignore (Ifko_transform.Pipeline.repeatable f : int);
  Ifko_transform.Regalloc.run f;
  Validate.check_physical f;
  verify_func id f

let test_block_fetch_beats_ifko_copy_on_p4e () =
  (* the paper: the hand-tuned dcopy* (block fetch) is the technique
     FKO lacks; it must win on the P4E-like machine *)
  let id = { Defs.routine = Defs.Copy; prec = Instr.D } in
  let cfg = Config.p4e in
  let sel =
    Ifko_baselines.Atlas_search.select ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~n:80000
      ~seed:31 id
  in
  Alcotest.(check string) "block fetch selected" "block_fetch"
    sel.Ifko_baselines.Atlas_search.candidate

let suite =
  [ Alcotest.test_case "compiler models correct" `Slow test_compiler_models_correct;
    Alcotest.test_case "gcc never vectorizes" `Quick test_gcc_never_vectorizes;
    Alcotest.test_case "icc+prof WNT policy" `Quick test_icc_prof_wnt_policy;
    Alcotest.test_case "blind WNT hurts on Opteron" `Quick test_icc_prof_blind_wnt_hurts_on_opteron;
    Alcotest.test_case "ATLAS candidates correct" `Slow test_atlas_candidates_correct;
    Alcotest.test_case "ATLAS assembly specials" `Quick test_atlas_has_assembly_specials;
    Alcotest.test_case "ATLAS search picks isamax*" `Slow test_atlas_search_picks_assembly_iamax;
    Alcotest.test_case "two-array indexing idiom" `Quick test_two_array_indexing_idiom;
    Alcotest.test_case "block fetch wins dcopy on P4E" `Slow test_block_fetch_beats_ifko_copy_on_p4e;
  ]
