lib/sim/timer.ml: Config Env Exec Float Ifko_machine Ifko_util Instr Memsys
