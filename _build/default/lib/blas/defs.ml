(** The surveyed Level 1 BLAS (paper Table 1).

    The BLAS are vector-vector operations; the paper studies the most
    commonly used routines on contiguous real vectors in both
    precisions.  MFLOP rates use the per-element FLOP counts of
    Table 1 (copy and swap move data but are charged N FLOPs so rates
    remain comparable; asum and iamax are charged 2N). *)

type routine = Swap | Scal | Copy | Axpy | Dot | Asum | Iamax

type kernel_id = { routine : routine; prec : Instr.fsize }

let routines = [ Swap; Scal; Copy; Axpy; Dot; Asum; Iamax ]

(** All 14 studied kernels: single and double precision of each
    routine, in the paper's figure order. *)
let all =
  List.concat_map
    (fun routine -> [ { routine; prec = Instr.S }; { routine; prec = Instr.D } ])
    routines

let routine_base = function
  | Swap -> "swap"
  | Scal -> "scal"
  | Copy -> "copy"
  | Axpy -> "axpy"
  | Dot -> "dot"
  | Asum -> "asum"
  | Iamax -> "amax"

(** BLAS API name: precision prefix first, except [iamax] where the
    index-returning [i] comes first ([isamax]/[idamax]). *)
let name { routine; prec } =
  let p = match prec with Instr.S -> "s" | Instr.D -> "d" in
  match routine with Iamax -> "i" ^ p ^ "amax" | r -> p ^ routine_base r

(** FLOPs charged per element (paper Table 1). *)
let flops_per_n = function
  | Swap | Scal | Copy -> 1.0
  | Axpy | Dot | Asum | Iamax -> 2.0

(** Operation summary string (paper Table 1). *)
let summary = function
  | Swap -> "tmp=y[i]; y[i]=x[i]; x[i]=tmp"
  | Scal -> "x[i] *= alpha"
  | Copy -> "y[i] = x[i]"
  | Axpy -> "y[i] += alpha * x[i]"
  | Dot -> "dot += y[i] * x[i]"
  | Asum -> "sum += fabs(x[i])"
  | Iamax -> "index of max |x[i]|"

type ret_kind = Ret_none | Ret_fp | Ret_int

let ret_kind = function
  | Swap | Scal | Copy | Axpy -> Ret_none
  | Dot | Asum -> Ret_fp
  | Iamax -> Ret_int

(** Does the routine take a scalar [alpha] argument? *)
let has_alpha = function Scal | Axpy -> true | _ -> false

(** Does the routine take a second vector [Y]? *)
let has_y = function Swap | Copy | Axpy | Dot -> true | Scal | Asum | Iamax -> false

(** Arrays the routine writes. *)
let outputs = function
  | Swap -> [ "X"; "Y" ]
  | Scal -> [ "X" ]
  | Copy | Axpy -> [ "Y" ]
  | Dot | Asum | Iamax -> []
