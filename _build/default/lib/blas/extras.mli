(** Level 1 BLAS beyond the paper's surveyed set.

    The paper studies the seven most commonly used routines on
    contiguous vectors ("we study only the most commonly used of these
    routines", "we focus on the most commonly used (and optimizable)
    case first, the contiguous vectors").  A library a downstream user
    adopts needs the rest; this module adds:

    - [rot] — apply a Givens plane rotation (4N FLOPs, two in/out
      vectors, two scalar invariants);
    - [nrm2] — Euclidean norm via a square-root epilogue (this is what
      the [SQRT] HIL operator exists for);
    - strided variants of [dot] and [axpy] — runtime increments via the
      [p += inc] pointer update.  Strided loops compile and tune but
      deliberately fall outside the SIMD/prefetch fast paths (unit
      stride "the most optimizable case first", as the paper says).

    These kernels are not part of the reproduced figures; they ship
    with sources, references, workloads and tests like the core set. *)

type routine = Rot | Nrm2 | Dot_strided | Axpy_strided

type kernel_id = { routine : routine; prec : Instr.fsize }

val all : kernel_id list
val name : kernel_id -> string
val flops_per_n : routine -> float

val source : kernel_id -> string
(** HIL text. *)

val compile : kernel_id -> Ifko_codegen.Lower.compiled

val make_env : kernel_id -> seed:int -> ?incx:int -> ?incy:int -> int -> Ifko_sim.Env.t
(** Environment for a run over [n] {e logical} elements (strided
    kernels allocate [n * inc] physical elements). *)

val expectation :
  kernel_id -> seed:int -> ?incx:int -> ?incy:int -> int -> Ifko_sim.Verify.expectation

val tolerance : kernel_id -> n:int -> float

val timer_spec : kernel_id -> seed:int -> Ifko_sim.Timer.spec
(** Unit-stride timing spec, for tuning the contiguous fast path. *)
