(* Single-flight memo of compiled probe candidates.

   Producing a runnable candidate is three expensive steps — transform
   pipeline ([Pipeline.apply]), semantic test (reference-vs-candidate
   execution over several sizes), and decode ([Exec.compile]) — and
   the tuner repeats them for identical (kernel, params) pairs: the
   calibration point is recompiled by the first probe, a multi-size
   sweep recompiles every shared point per size, `--compare-fidelity`
   compiles each candidate once per fidelity, and concurrent serve
   tunes of one kernel compile the whole search trajectory once per
   tune.  The decoded closures are immutable (per-run state lives
   inside [Exec.exec]), so one compilation is safely shared across
   domains and across tunes.

   Keys must capture everything the outcome depends on: the kernel
   fingerprint, the machine (the pipeline consumes its line size), the
   canonical params, the per-pass-check flag, and the workload seed
   (the semantic test runs seeded workloads).  The provided compute
   function must be a pure function of that key — the same contract as
   the probe store's.

   Single-flight: concurrent misses on one key run the compute once,
   with the other callers blocking until the result lands.  A compute
   that raises (a [Passcheck.Pass_failed] must fail the tune, never be
   cached) clears the in-flight marker and wakes waiters to claim the
   key themselves. *)

type result =
  | Illegal
  | Test_failed
  | Compiled of Cfg.func * Ifko_sim.Exec.compiled

type cell = Done of result | Running

type t = {
  tbl : (string, cell) Hashtbl.t;
  mutex : Mutex.t;
  cond : Condition.t;
  max_entries : int;
  mutable n_hit : int;
  mutable n_miss : int;
}

type stats = { hits : int; misses : int }

let create ?(max_entries = 4096) () =
  {
    tbl = Hashtbl.create 64;
    mutex = Mutex.create ();
    cond = Condition.create ();
    max_entries;
    n_hit = 0;
    n_miss = 0;
  }

let key ~kernel ~machine ~params ~check ~seed =
  Ifko_store.Store.digest
    [
      "codecache";
      kernel;
      machine;
      params;
      (if check then "check" else "nocheck");
      string_of_int seed;
    ]

(* Evict only completed entries: wiping an in-flight marker would make
   its waiters recompute work that is already running.  The cap is a
   backstop for daemon lifetimes, far above any one tune's candidate
   count. *)
let evict_done t =
  let running =
    Hashtbl.fold (fun k c acc -> match c with Running -> (k, c) :: acc | Done _ -> acc)
      t.tbl []
  in
  Hashtbl.reset t.tbl;
  List.iter (fun (k, c) -> Hashtbl.add t.tbl k c) running

let find_or_compile t ~key f =
  Mutex.lock t.mutex;
  let rec claim () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Done r) ->
      t.n_hit <- t.n_hit + 1;
      Mutex.unlock t.mutex;
      `Hit r
    | Some Running ->
      Condition.wait t.cond t.mutex;
      claim ()
    | None ->
      t.n_miss <- t.n_miss + 1;
      if Hashtbl.length t.tbl >= t.max_entries then evict_done t;
      Hashtbl.replace t.tbl key Running;
      Mutex.unlock t.mutex;
      `Compute
  in
  match claim () with
  | `Hit r -> r
  | `Compute -> (
    match f () with
    | exception e ->
      Mutex.lock t.mutex;
      Hashtbl.remove t.tbl key;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      raise e
    | r ->
      Mutex.lock t.mutex;
      Hashtbl.replace t.tbl key (Done r);
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      r)

let stats t =
  Mutex.lock t.mutex;
  let s = { hits = t.n_hit; misses = t.n_miss } in
  Mutex.unlock t.mutex;
  s
