(* Static-analysis tests.

   Three layers, matching what the lint framework promises: (1) each
   checker fires exactly once on a hand-built CFG exhibiting exactly
   one defect, (2) the golden-clean sweep — every BLAS kernel at its
   default parameter point compiles without a single error-severity
   diagnostic, and (3) per-pass translation validation localizes a
   deliberately broken transform to the pass that broke it. *)
open Ifko_codegen
open Ifko_analysis
open Ifko_transform
open Ifko_blas

let g n = Reg.virt Reg.Gpr n
let x n = Reg.virt Reg.Xmm n

let mk_func ?(params = []) blocks =
  let f = Cfg.create ~name:"t" ~params in
  f.Cfg.blocks <- blocks;
  f

let with_code code diags = List.filter (fun d -> d.Diag.code = code) diags

let check_one what code diags =
  match with_code code diags with
  | [ _ ] -> ()
  | [] -> Alcotest.failf "%s: no %s diagnostic" what code
  | ds ->
    Alcotest.failf "%s: %d %s diagnostics:\n%s" what (List.length ds) code
      (Diag.list_to_string ds)

(* ---------- structural checkers (IFK001/IFK002) ---------- *)

let test_duplicate_label () =
  let f =
    mk_func
      [ Block.make ~term:(Block.Jmp "done") "entry";
        Block.make ~term:(Block.Ret None) "done";
        Block.make ~term:(Block.Ret None) "done"
      ]
  in
  check_one "duplicate label" "IFK001" (Lint.check_structure f)

let test_unknown_target () =
  let f =
    mk_func
      [ Block.make
          ~term:
            (Block.Br
               { cmp = Instr.Eq; lhs = g 0; rhs = Instr.Oimm 0; ifso = "missing";
                 ifnot = "done"; dec = 0 })
          "entry";
        Block.make ~term:(Block.Ret None) "done"
      ]
  in
  check_one "unknown branch target" "IFK001" (Lint.check_structure f)

let test_never_returns () =
  let f = mk_func [ Block.make ~term:(Block.Jmp "entry") "entry" ] in
  check_one "no return" "IFK001" (Lint.check_structure f)

let test_wrong_register_class () =
  let f =
    mk_func
      [ Block.make ~instrs:[ Instr.Imov (g 0, x 1) ] ~term:(Block.Ret None) "entry" ]
  in
  check_one "XMM operand to integer move" "IFK002" (Lint.check_structure f)

let test_structural_errors_mute_dataflow () =
  (* A broken CFG must not also drown the user in meaningless dataflow
     diagnostics: check_func reports the IFK001 and stops. *)
  let f = mk_func [ Block.make ~instrs:[ Instr.Imov (g 1, g 0) ] ~term:(Block.Jmp "entry") "entry" ] in
  let diags = Lint.check_func f in
  check_one "structure reported" "IFK001" diags;
  Alcotest.(check int) "dataflow checkers skipped" 0 (List.length (with_code "IFK003" diags))

(* ---------- def-before-use (IFK003) ---------- *)

let test_use_before_def () =
  let f =
    mk_func
      [ Block.make ~instrs:[ Instr.Imov (g 1, g 0) ] ~term:(Block.Ret None) "entry" ]
  in
  check_one "read of undefined register" "IFK003" (Lint.check_def_before_use f)

let test_params_are_defined () =
  let f =
    mk_func ~params:[ ("n", g 0) ]
      [ Block.make ~instrs:[ Instr.Imov (g 1, g 0) ] ~term:(Block.Ret None) "entry" ]
  in
  Alcotest.(check int) "parameter reads are fine" 0
    (List.length (Lint.check_def_before_use f))

let diamond ~def_in_both =
  (* entry branches; "left" defines g1, "right" only when [def_in_both];
     the join reads g1.  The must-analysis has to intersect over the
     incoming paths, not union. *)
  let br =
    Block.Br
      { cmp = Instr.Eq; lhs = g 0; rhs = Instr.Oimm 0; ifso = "left"; ifnot = "right";
        dec = 0 }
  in
  mk_func ~params:[ ("n", g 0) ]
    [ Block.make ~term:br "entry";
      Block.make ~instrs:[ Instr.Ildi (g 1, 1) ] ~term:(Block.Jmp "join") "left";
      Block.make
        ~instrs:(if def_in_both then [ Instr.Ildi (g 1, 2) ] else [])
        ~term:(Block.Jmp "join") "right";
      Block.make ~instrs:[ Instr.Imov (g 2, g 1) ] ~term:(Block.Ret None) "join"
    ]

let test_def_on_one_path_only () =
  check_one "definition missing on one path" "IFK003"
    (Lint.check_def_before_use (diamond ~def_in_both:false))

let test_def_on_all_paths () =
  Alcotest.(check int) "defined on every path" 0
    (List.length (Lint.check_def_before_use (diamond ~def_in_both:true)))

(* ---------- dead stores (IFK004) ---------- *)

let test_dead_store () =
  let f =
    mk_func
      [ Block.make
          ~instrs:[ Instr.Ildi (g 1, 42); Instr.Ildi (g 2, 7); Instr.Imov (g 3, g 2) ]
          ~term:(Block.Ret (Some (g 3)))
          "entry"
      ]
  in
  let diags = Lint.check_dead_stores f in
  (* g1 is never read; g2 and g3 are.  Dead stores warn, not error. *)
  check_one "unread definition" "IFK004" diags;
  Alcotest.(check bool) "warnings do not fail the kernel" true (Diag.is_clean diags)

(* ---------- unreachable blocks (IFK005) ---------- *)

let test_unreachable_block () =
  let f =
    mk_func
      [ Block.make ~term:(Block.Ret None) "entry";
        Block.make ~term:(Block.Ret None) "island"
      ]
  in
  check_one "orphan block" "IFK005" (Lint.check_reachability f)

(* ---------- register pressure (IFK008) ---------- *)

let test_register_pressure () =
  (* Nine simultaneously live XMM registers against a file of eight. *)
  let defs = List.init 9 (fun i -> Instr.Fldi (Instr.D, x i, float_of_int i)) in
  let sums =
    List.init 8 (fun i ->
        Instr.Fop (Instr.D, Instr.Fadd, x 9, (if i = 0 then x 0 else x 9), x (i + 1)))
  in
  let f =
    mk_func [ Block.make ~instrs:(defs @ sums) ~term:(Block.Ret (Some (x 9))) "entry" ]
  in
  check_one "pressure over the XMM file" "IFK008" (Lint.check_pressure f);
  let gpr, xmm = Lint.max_pressure f in
  Alcotest.(check (pair int int)) "max pressure" (0, 9) (gpr, xmm)

(* ---------- loop-aware checkers on real kernels (IFK006/IFK007) ---------- *)

let daxpy = { Defs.routine = Defs.Axpy; prec = Instr.D }

let point ?(sv = false) ?(unroll = 1) ?(prefetch = []) () =
  { Params.sv; unroll; lc = true; ae = 0; wnt = false; prefetch; bf = 0; cisc = false }

let test_vector_alignment () =
  (* Vectorize and unroll directly (no final control-flow cleanup), so
     the loopnest — and with it the moving-pointer map — stays live. *)
  let c = Hil_sources.compile daxpy in
  (match Simd.apply c with Ok () -> () | Error d -> Alcotest.fail (Diag.to_string d));
  (match Unroll.apply c 4 with Ok () -> () | Error d -> Alcotest.fail (Diag.to_string d));
  Alcotest.(check bool) "aligned code is clean" true
    (Diag.is_clean (Lint.check ~line_bytes:128 c));
  (* Knock one vector load off 16-byte alignment. *)
  let skewed = ref false in
  List.iter
    (fun b ->
      b.Block.instrs <-
        List.map
          (function
            | Instr.Vld (sz, d, m) when not !skewed ->
              skewed := true;
              Instr.Vld (sz, d, { m with Instr.disp = m.Instr.disp + 8 })
            | i -> i)
          b.Block.instrs)
    c.Lower.func.Cfg.blocks;
  Alcotest.(check bool) "a vector load was present" true !skewed;
  check_one "unaligned vector load" "IFK006" (Lint.check ~line_bytes:128 c)

let prefetch_at dist =
  let c = Hil_sources.compile daxpy in
  Prefetch_xform.apply c ~line_bytes:128
    [ ("X", { Params.pf_ins = Some Instr.Nta; pf_dist = dist }) ];
  Lint.check ~line_bytes:128 c

let test_prefetch_distance () =
  (* Distance 4 B is inside the current iteration (stride 8 B). *)
  check_one "prefetch inside current iteration" "IFK007" (prefetch_at 4);
  Alcotest.(check int) "sane distance is quiet" 0
    (List.length (with_code "IFK007" (prefetch_at 256)))

(* ---------- the golden-clean sweep ---------- *)

let default_for id = Params.default ~line_bytes:128 (Report.analyze (Hil_sources.compile id))

let test_golden_clean () =
  List.iter
    (fun id ->
      (* Keep registers virtual (skip_regalloc) so lint still sees the
         kernel the way the mid-pipeline checks do. *)
      let c =
        Pipeline.apply ~skip_regalloc:true ~line_bytes:128 (Hil_sources.compile id)
          (default_for id)
      in
      match Diag.errors (Lint.check ~line_bytes:128 c) with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s is not lint-clean at its default point:\n%s" (Defs.name id)
          (Diag.list_to_string errs))
    Defs.all

let test_every_pass_validates () =
  (* The full pipeline — regalloc included — under per-pass lint and
     translation validation, for every kernel at its default point. *)
  List.iter
    (fun id ->
      let compiled = Hil_sources.compile id in
      let check = Passcheck.generic ~line_bytes:128 compiled in
      try ignore (Pipeline.apply ~check ~line_bytes:128 compiled (default_for id))
      with Passcheck.Pass_failed _ as e ->
        Alcotest.failf "%s: %s" (Defs.name id)
          (Option.value ~default:"Pass_failed" (Passcheck.describe e)))
    Defs.all

(* ---------- localizing a deliberately broken transform ---------- *)

(* A "bug" in a transform: the first FP add it leaves behind silently
   becomes a subtract.  Injected right after UR via Pipeline.apply's
   [?inject] hook, translation validation must blame UR — not the
   passes that run later, and not the final result check. *)
let flip_first_fadd (c : Lower.compiled) =
  let flipped = ref false in
  List.iter
    (fun b ->
      b.Block.instrs <-
        List.map
          (function
            | Instr.Fop (sz, Instr.Fadd, d, a, b) when not !flipped ->
              flipped := true;
              Instr.Fop (sz, Instr.Fsub, d, a, b)
            | Instr.Vop (sz, Instr.Fadd, d, a, b) when not !flipped ->
              flipped := true;
              Instr.Vop (sz, Instr.Fsub, d, a, b)
            | i -> i)
          b.Block.instrs)
    c.Lower.func.Cfg.blocks;
  if not !flipped then Alcotest.fail "sabotage found no FP add to flip"

(* A different kind of bug: the transform emits a read of a register
   nothing ever defines.  The lint side of the checker catches this
   statically, before any execution. *)
let add_undefined_read (c : Lower.compiled) =
  let f = c.Lower.func in
  let undef = Cfg.fresh_reg f Reg.Gpr and dst = Cfg.fresh_reg f Reg.Gpr in
  match f.Cfg.blocks with
  | b :: _ -> b.Block.instrs <- Instr.Imov (dst, undef) :: b.Block.instrs
  | [] -> Alcotest.fail "kernel has no blocks"

let apply_broken ~pass break =
  let compiled = Hil_sources.compile daxpy in
  let check = Passcheck.generic ~line_bytes:128 compiled in
  match
    Pipeline.apply ~check ~inject:(pass, break) ~line_bytes:128 compiled
      (point ~sv:false ~unroll:4 ())
  with
  | _ -> Alcotest.failf "broken %s went undetected" pass
  | exception Passcheck.Pass_failed { pass = blamed; failure } -> (blamed, failure)

let test_localize_semantic_bug () =
  match apply_broken ~pass:"UR" flip_first_fadd with
  | "UR", Passcheck.Semantics _ -> ()
  | "UR", Passcheck.Lint ds ->
    Alcotest.failf "expected a semantic divergence, got lint errors:\n%s"
      (Diag.list_to_string ds)
  | blamed, _ -> Alcotest.failf "blamed %s instead of UR" blamed

let test_localize_lint_bug () =
  match apply_broken ~pass:"LC" add_undefined_read with
  | "LC", Passcheck.Lint errs ->
    check_one "the undefined read is what failed" "IFK003" errs;
    List.iter
      (fun d -> Alcotest.(check (option string)) "diag names the pass" (Some "LC") d.Diag.pass)
      errs
  | "LC", Passcheck.Semantics msg ->
    Alcotest.failf "expected lint errors, got a semantic failure: %s" msg
  | blamed, _ -> Alcotest.failf "blamed %s instead of LC" blamed

let suite =
  [ Alcotest.test_case "IFK001: duplicate block label" `Quick test_duplicate_label;
    Alcotest.test_case "IFK001: unknown branch target" `Quick test_unknown_target;
    Alcotest.test_case "IFK001: function never returns" `Quick test_never_returns;
    Alcotest.test_case "IFK002: wrong register class" `Quick test_wrong_register_class;
    Alcotest.test_case "broken structure mutes dataflow checkers" `Quick
      test_structural_errors_mute_dataflow;
    Alcotest.test_case "IFK003: use before any def" `Quick test_use_before_def;
    Alcotest.test_case "IFK003: parameters count as defined" `Quick test_params_are_defined;
    Alcotest.test_case "IFK003: def on one path only" `Quick test_def_on_one_path_only;
    Alcotest.test_case "IFK003: def on all paths is clean" `Quick test_def_on_all_paths;
    Alcotest.test_case "IFK004: dead store" `Quick test_dead_store;
    Alcotest.test_case "IFK005: unreachable block" `Quick test_unreachable_block;
    Alcotest.test_case "IFK008: register pressure" `Quick test_register_pressure;
    Alcotest.test_case "IFK006: vector alignment" `Quick test_vector_alignment;
    Alcotest.test_case "IFK007: prefetch distance" `Quick test_prefetch_distance;
    Alcotest.test_case "golden clean: all kernels, default point" `Quick test_golden_clean;
    Alcotest.test_case "every pass validates on every kernel" `Quick
      test_every_pass_validates;
    Alcotest.test_case "translation validation blames the broken pass" `Quick
      test_localize_semantic_bug;
    Alcotest.test_case "lint blames the broken pass" `Quick test_localize_lint_bug
  ]
