(** Random-but-well-typed HIL kernel generation.

    The generator covers the shapes the typechecker admits and the
    backend supports: a (usually [OPTLOOP]-marked) counted loop over
    mixed single/double arrays, element-wise maps (copy, scale, axpy,
    sqrt, division, scoped-if clipping), floating-point reductions
    (dot, asum, sum of squares), the conditional maxloc idiom (with
    occasional [SPECULATE] mark-up), integer trip counters, strided
    pointer advances (literal and runtime [Ptr_inc_var] strides), and
    optional scalar warm-up loops.  Everything is driven by one
    {!Ifko_util.Rng.t}, so equal seeds generate equal kernels.

    Kernels are valid by construction: they typecheck and lower (the
    test suite sweeps the generator to enforce this). *)

val kernel : Ifko_util.Rng.t -> name:string -> max_size:int -> Ifko_hil.Ast.kernel
(** [kernel rng ~name ~max_size] generates one kernel named [name]
    whose tunable-loop body holds at most [max_size] idioms (each
    idiom is 1-3 statements). *)

val has_fp_reduction : Ifko_hil.Ast.kernel -> bool
(** Whether the kernel accumulates into a floating-point variable
    inside a loop ([+=]/[*=] on an fp scalar) — the one case where
    vectorization and accumulator expansion legitimately reassociate
    arithmetic, so the differential oracle must compare ULP-tolerantly
    instead of exactly. *)
