test/test_blas.ml: Alcotest Array Defs Float Hil_sources Ifko_blas Ifko_codegen Ifko_sim Instr Int32 List QCheck QCheck_alcotest Ref_impl Workload
