lib/blas/workload.ml: Array Defs Float Ifko_sim Ifko_util Instr Ref_impl
