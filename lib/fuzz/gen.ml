open Ifko_hil
module B = Builder
module Rng = Ifko_util.Rng

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

(* One pointer parameter of the kernel under construction. *)
type arr = {
  a_name : string;
  a_prec : Ast.fptype;
  mutable a_out : bool;  (* stored through -> OUTPUT mark-up *)
  a_nopf : bool;
  a_stride : [ `Lit of int | `Var ];  (* per-iteration advance; `Var uses local "inc" *)
}

let kernel rng ~name ~max_size =
  let max_size = max 1 max_size in
  let arr_names = [| "X"; "Y"; "Z" |] in
  let n_arr = 1 + Rng.int rng 3 in
  let arrs =
    List.init n_arr (fun i ->
        {
          a_name = arr_names.(i);
          a_prec = (if Rng.int rng 2 = 0 then Ast.Double else Ast.Single);
          a_out = false;
          a_nopf = Rng.int rng 8 = 0;
          a_stride =
            (match Rng.int rng 12 with 0 -> `Var | 1 -> `Lit 2 | _ -> `Lit 1);
        })
  in
  let any_var_stride = List.exists (fun a -> a.a_stride = `Var) arrs in
  (* Locals and extra fp-scalar parameters, accumulated on demand. *)
  let locals : (string * Ast.ty * float option) list ref = ref [] in
  let extra_params : Ast.param list ref = ref [] in
  let add_local n ty init =
    if not (List.exists (fun (m, _, _) -> m = n) !locals) then
      locals := !locals @ [ (n, ty, init) ]
  in
  let alpha p =
    let n = match p with Ast.Single -> "alpha_s" | Ast.Double -> "alpha_d" in
    if not (List.exists (fun (q : Ast.param) -> q.Ast.p_name = n) !extra_params) then
      extra_params := !extra_params @ [ B.param n (Ast.Fp p) ];
    n
  in
  let tmp_id = ref 0 in
  let tmp p =
    let n = Printf.sprintf "t%d" !tmp_id in
    incr tmp_id;
    add_local n (Ast.Fp p) None;
    n
  in
  let acc p =
    let n = match p with Ast.Single -> "acc_s" | Ast.Double -> "acc_d" in
    add_local n (Ast.Fp p) (Some 0.0);
    n
  in
  (* Arrays referenced inside the tunable loop (need a pointer advance). *)
  let used : (string, arr) Hashtbl.t = Hashtbl.create 8 in
  let use a = Hashtbl.replace used a.a_name a in
  let partner a =
    match List.filter (fun b -> b.a_name <> a.a_name && b.a_prec = a.a_prec) arrs with
    | [] -> None
    | bs -> Some (pick rng bs)
  in
  let coef p =
    if Rng.int rng 2 = 0 then Ast.Var (alpha p)
    else Ast.Fp_lit (pick rng [ 0.5; 0.75; 1.25; -0.5; 2.0 ])
  in
  let up = Rng.int rng 10 < 7 in
  let maxloc_used = ref false in
  let cnt_used = ref false in
  let accs_used : Ast.fptype list ref = ref [] in
  let use_acc p =
    if not (List.mem p !accs_used) then accs_used := !accs_used @ [ p ];
    acc p
  in
  (* Each idiom is a self-contained, well-typed statement group over
     arrays of one precision. *)
  let idiom () =
    let a = pick rng arrs in
    use a;
    let p = a.a_prec in
    let dst_of b = (match b with Some b when Rng.int rng 2 = 0 -> b | _ -> a) in
    match Rng.int rng 10 with
    | 0 ->
      (* copy: t = A[0]; D[0] = t *)
      let t = tmp p and d = dst_of (partner a) in
      use d;
      d.a_out <- true;
      [ B.(t <-- ld a.a_name 0); B.store d.a_name 0 (B.v t) ]
    | 1 ->
      (* scale: t = A[0] * c; D[0] = t *)
      let t = tmp p and d = dst_of (partner a) in
      use d;
      d.a_out <- true;
      [ Ast.Assign (t, Ast.Binop (Ast.Mul, Ast.Load (a.a_name, 0), coef p));
        B.store d.a_name 0 (B.v t) ]
    | 2 ->
      (* axpy: t = A[0] * c; t = t + B[0]; B[0] = t *)
      let t = tmp p in
      let b = match partner a with Some b -> b | None -> a in
      use b;
      b.a_out <- true;
      [ Ast.Assign (t, Ast.Binop (Ast.Mul, Ast.Load (a.a_name, 0), coef p));
        Ast.Assign (t, Ast.Binop (Ast.Add, Ast.Var t, Ast.Load (b.a_name, 0)));
        B.store b.a_name 0 (B.v t) ]
    | 3 ->
      (* dot: acc += A[0] * B[0] *)
      let b = match partner a with Some b -> b | None -> a in
      use b;
      [ Ast.Assign_op
          (Ast.Add, use_acc p, Ast.Binop (Ast.Mul, Ast.Load (a.a_name, 0), Ast.Load (b.a_name, 0))) ]
    | 4 ->
      (* asum: acc += ABS A[0] *)
      [ Ast.Assign_op (Ast.Add, use_acc p, Ast.Abs (Ast.Load (a.a_name, 0))) ]
    | 5 ->
      (* sum of squares: t = A[0]; acc += t * t *)
      let t = tmp p in
      [ B.(t <-- ld a.a_name 0);
        Ast.Assign_op (Ast.Add, use_acc p, Ast.Binop (Ast.Mul, Ast.Var t, Ast.Var t)) ]
    | 6 ->
      (* sqrt map: t = SQRT (ABS A[0]); D[0] = t *)
      let t = tmp p and d = dst_of (partner a) in
      use d;
      d.a_out <- true;
      [ Ast.Assign (t, Ast.Sqrt (Ast.Abs (Ast.Load (a.a_name, 0))));
        B.store d.a_name 0 (B.v t) ]
    | 7 ->
      (* division map: t = A[0] / (ABS B[0] + 1.5); D[0] = t *)
      let t = tmp p in
      let b = match partner a with Some b -> b | None -> a in
      use b;
      let d = dst_of (Some b) in
      use d;
      d.a_out <- true;
      [ Ast.Assign
          ( t,
            Ast.Binop
              ( Ast.Div,
                Ast.Load (a.a_name, 0),
                Ast.Binop (Ast.Add, Ast.Abs (Ast.Load (b.a_name, 0)), Ast.Fp_lit 1.5) ) );
        B.store d.a_name 0 (B.v t) ]
    | 8 when up && not !maxloc_used ->
      (* conditional maxloc (the iamax idiom) *)
      maxloc_used := true;
      add_local "amax" (Ast.Fp p) (Some (-1.0));
      add_local "imax" Ast.Int (Some 0.0);
      let x = tmp p in
      [ B.(x <-- ld a.a_name 0);
        Ast.Assign (x, Ast.Abs (Ast.Var x));
        B.if_then Ast.Gt (B.v x) (B.v "amax")
          [ B.("amax" <-- v x); B.("imax" <-- v "i") ] ]
    | 8 ->
      (* trip counter: cnt += 1 *)
      cnt_used := true;
      add_local "cnt" Ast.Int (Some 0.0);
      [ Ast.Assign_op (Ast.Add, "cnt", Ast.Int_lit 1) ]
    | _ ->
      (* clip: t = A[0]; IF (t < 0.0) THEN t = -t [ELSE t = t * 0.5]; D[0] = t *)
      let t = tmp p and d = dst_of (partner a) in
      use d;
      d.a_out <- true;
      let else_ =
        if Rng.int rng 2 = 0 then []
        else [ Ast.Assign (t, Ast.Binop (Ast.Mul, Ast.Var t, Ast.Fp_lit 0.5)) ]
      in
      [ B.(t <-- ld a.a_name 0);
        B.if_then ~else_ Ast.Lt (B.v t) (Ast.Fp_lit 0.0) [ Ast.Assign (t, Ast.Neg (Ast.Var t)) ];
        B.store d.a_name 0 (B.v t) ]
  in
  let n_idioms = 1 + Rng.int rng max_size in
  let body_groups = List.init n_idioms (fun _ -> idiom ()) in
  (* Pointer advances, in declaration order of the arrays actually used. *)
  let advances =
    List.filter_map
      (fun a ->
        if not (Hashtbl.mem used a.a_name) then None
        else
          Some
            (match a.a_stride with
            | `Lit k -> B.ptr_inc a.a_name k
            | `Var -> B.ptr_inc_var a.a_name "inc"))
      arrs
  in
  let loop_body = List.concat body_groups @ advances in
  let opt = Rng.int rng 10 < 9 in
  let speculate = !maxloc_used && Rng.int rng 2 = 0 in
  let main_loop =
    if up then B.loop ~opt ~speculate "i" ~from:(B.i 0) ~to_:(B.v "N") loop_body
    else B.loop ~opt ~speculate ~step:(-1) "i" ~from:(B.v "N") ~to_:(B.i 0) loop_body
  in
  let preamble =
    (if any_var_stride then begin
       add_local "inc" Ast.Int None;
       [ Ast.Assign ("inc", Ast.Int_lit (1 + Rng.int rng 2)) ]
     end
     else [])
    @
    if Rng.int rng 7 = 0 then begin
      (* scalar warm-up loop: dead-ish code for the repeatable block *)
      add_local "pre" Ast.Int (Some 0.0);
      [ B.loop "w" ~from:(B.i 0) ~to_:(B.i 3) [ Ast.Assign_op (Ast.Add, "pre", Ast.Int_lit 1) ] ]
    end
    else []
  in
  (* Return value: one of the results the body produced, or nothing. *)
  let ret_candidates =
    (if !maxloc_used then [ ("imax", Ast.Int) ] else [])
    @ (if !cnt_used then [ ("cnt", Ast.Int) ] else [])
    @ List.map
        (fun p ->
          ((match p with Ast.Single -> "acc_s" | Ast.Double -> "acc_d"), Ast.Fp p))
        !accs_used
  in
  let ret =
    match ret_candidates with
    | [] -> None
    | cs -> if Rng.int rng 4 = 0 then None else Some (pick rng cs)
  in
  let body =
    preamble @ [ main_loop ]
    @ match ret with Some (r, _) -> [ B.return (Some (B.v r)) ] | None -> []
  in
  let params =
    B.param "N" Ast.Int
    :: List.map
         (fun a ->
           let flags =
             (if a.a_out then [ Ast.Output ] else [])
             @ if a.a_nopf then [ Ast.No_prefetch ] else []
           in
           B.param ~flags a.a_name (Ast.Ptr a.a_prec))
         arrs
    @ !extra_params
  in
  let locals =
    List.map (fun (n, ty, init) -> { Ast.d_names = [ n ]; d_ty = ty; d_init = init }) !locals
  in
  {
    Ast.k_name = name;
    k_params = params;
    k_locals = locals;
    k_ret = Option.map snd ret;
    k_body = body;
  }

let has_fp_reduction (k : Ast.kernel) =
  let fp = Hashtbl.create 8 in
  List.iter
    (fun (p : Ast.param) ->
      match p.Ast.p_ty with Ast.Fp _ -> Hashtbl.replace fp p.Ast.p_name () | _ -> ())
    k.Ast.k_params;
  List.iter
    (fun (d : Ast.decl) ->
      match d.Ast.d_ty with
      | Ast.Fp _ -> List.iter (fun n -> Hashtbl.replace fp n ()) d.Ast.d_names
      | _ -> ())
    k.Ast.k_locals;
  let rec stmt in_loop = function
    | Ast.Assign_op (_, x, _) -> in_loop && Hashtbl.mem fp x
    | Ast.Loop l -> List.exists (stmt true) l.Ast.loop_body
    | Ast.If_then (_, _, _, a, b) ->
      List.exists (stmt in_loop) a || List.exists (stmt in_loop) b
    | _ -> false
  in
  List.exists (stmt false) k.Ast.k_body
