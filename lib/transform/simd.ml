open Ifko_codegen
open Ifko_analysis

let applied (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | Some ln -> ln.Loopnest.vectorized <> None
  | None -> false

let apply (compiled : Lower.compiled) =
  let vec = Vecinfo.analyze compiled in
  match (compiled.Lower.loopnest, vec.Vecinfo.vectorizable, vec.Vecinfo.precision) with
  | None, _, _ -> Ok ()
  | Some _, false, _ | Some _, _, None ->
    (* the analysis refuses; the SPECULATE mark-up may still license
       the compare-mask vectorization of a max-with-index reduction *)
    ignore (Maxloc.try_apply compiled : bool);
    Ok ()
  | Some ln, true, Some sz -> (
    (* the shape is vectorizable; the dependence oracle has the final
       word (fail-closed: unproven independence refuses) *)
    match Legality.vectorize (Legality.analyze compiled) with
    | Error d -> Error d
    | Ok () ->
    let f = compiled.Lower.func in
    let veclen = Instr.lanes sz in
    (* The remainder of the trip count needs a scalar loop. *)
    Loopnest.materialize_cleanup f ln;
    let body_label =
      match Loopnest.body_labels f ln with
      | [ l ] -> l
      | _ -> invalid_arg "Simd.apply: vectorizable loop must have a single body block"
    in
    let body = Cfg.find_block_exn f body_label in
    let preheader = Cfg.find_block_exn f ln.Loopnest.preheader in
    let mid = Cfg.find_block_exn f ln.Loopnest.mid in
    (* Map every scalar Xmm register of the body to a vector register,
       with setup/teardown depending on its class. *)
    let mapping = Hashtbl.create 8 in
    let pre_instrs = ref [] and mid_instrs = ref [] in
    List.iter
      (fun (r, cls) ->
        let vr = Cfg.fresh_reg f Reg.Xmm in
        Hashtbl.replace mapping r.Reg.id vr;
        match cls with
        | Vecinfo.Reduction ->
          pre_instrs := Instr.Vldi (sz, vr, 0.0) :: !pre_instrs;
          let tmp = Cfg.fresh_reg f Reg.Xmm in
          mid_instrs :=
            !mid_instrs
            @ [ Instr.Vreduce (sz, Instr.Fadd, tmp, vr);
                Instr.Fop (sz, Instr.Fadd, r, r, tmp);
              ]
        | Vecinfo.Invariant -> pre_instrs := Instr.Vbcast (sz, vr, r) :: !pre_instrs
        | Vecinfo.Temp -> ())
      vec.Vecinfo.classes;
    let vreg r =
      match Hashtbl.find_opt mapping r.Reg.id with
      | Some vr when r.Reg.cls = Reg.Xmm -> vr
      | _ -> r
    in
    let widen i =
      match i with
      | Instr.Fld (s, d, m) -> Instr.Vld (s, vreg d, m)
      | Instr.Fst (s, m, r) -> Instr.Vst (s, m, vreg r)
      | Instr.Fstnt (s, m, r) -> Instr.Vstnt (s, m, vreg r)
      | Instr.Fmov (s, d, r) -> Instr.Vmov (s, vreg d, vreg r)
      | Instr.Fldi (s, d, c) -> Instr.Vldi (s, vreg d, c)
      | Instr.Fop (s, op, d, a, b) -> Instr.Vop (s, op, vreg d, vreg a, vreg b)
      | Instr.Fopm (s, op, d, a, m) -> Instr.Vopm (s, op, vreg d, vreg a, m)
      | Instr.Fabs (s, d, r) -> Instr.Vabs (s, vreg d, vreg r)
      | Instr.Fsqrt (s, d, r) -> Instr.Vsqrt (s, vreg d, vreg r)
      | Instr.Iop (Instr.Iadd, d, s', Instr.Oimm k) when Reg.equal d s' ->
        (* pointer bump: one vector iteration advances [veclen] elements *)
        Instr.Iop (Instr.Iadd, d, s', Instr.Oimm (k * veclen))
      | i -> i
    in
    body.Block.instrs <- List.map widen body.Block.instrs;
    (* Setup goes at the end of the preheader (its terminator jumps to
       the loop header); teardown at the front of the mid block, before
       anything a later transformation may have put there. *)
    preheader.Block.instrs <- preheader.Block.instrs @ List.rev !pre_instrs;
    Edit.prepend_instrs mid !mid_instrs;
    ln.Loopnest.per_iter <- ln.Loopnest.per_iter * veclen;
    ln.Loopnest.vectorized <- Some sz;
    Loopnest.refresh_loop_control f ln;
    Ok ())
