(** The ifko driver: analysis, iterative search, timers and testers
    wired together (the paper's Figure 1).

    For each probed parameter point the driver (1) invokes the FKO
    pipeline, (2) runs the tester against the reference results —
    points that compute wrong answers are discarded outright — and
    (3) times the survivor in the requested machine/context, feeding
    MFLOPS back to the modified line search. *)

(** Which search strategy drives the tune.  [Linesearch] (the default)
    is the paper's modified line search, bit-identical to the
    pre-strategy sweep; [Surrogate] is the model-based searcher
    ({!Surrogate}), reaching comparable MFLOPS in far fewer probes. *)
type strategy = Linesearch | Surrogate

val strategy_to_string : strategy -> string

val strategy_of_string : string -> (strategy, string) result
(** Inverse of {!strategy_to_string}; [Error] names the bad input (for
    CLI/protocol validation). *)

type tuned = {
  report : Ifko_analysis.Report.t;
  default_params : Ifko_transform.Params.t;
  best_params : Ifko_transform.Params.t;
  fko_mflops : float;  (** the default (un-searched) FKO point *)
  ifko_mflops : float;  (** the searched point *)
  best_func : Cfg.func;  (** fully compiled best kernel *)
  contributions : (string * float) list;  (** Figure-7 decomposition *)
  evaluations : int;
  probes_to_best : int;
      (** 1-based evaluation index at which [ifko_mflops] was first
          measured — the probes-to-best metric strategies race on *)
  fidelity_used : Ifko_sim.Timer.fidelity;
      (** the fidelity probes actually ran at: [Sampled] only when it
          was requested {e and} passed this kernel's calibration *)
  calibration_error : float option;
      (** relative sampled-vs-full cycle error of the default point
          (present only when a sampled tune reached calibration) *)
}

val compile_point :
  ?check:Ifko_transform.Passcheck.t ->
  cfg:Ifko_machine.Config.t ->
  Ifko_codegen.Lower.compiled ->
  Ifko_transform.Params.t ->
  Cfg.func
(** One FKO invocation at an explicit parameter point.  [check]
    enables per-pass lint + translation validation
    ({!Ifko_transform.Pipeline.apply}). *)

val kernel_fingerprint : Ifko_codegen.Lower.compiled -> string
(** The canonical rendering of a lowered kernel (name, array metadata,
    LIL text) that probe store keys digest: any source edit that could
    change a probe outcome changes this string. *)

val tune :
  ?extensions:bool ->
  ?check_each_pass:bool ->
  ?strategy:strategy ->
  ?warm_start:bool ->
  ?donors:Warmstart.donor list ->
  ?store:Ifko_store.Store.t ->
  ?cache:
    (key:string ->
    params:string ->
    prov:string ->
    (unit -> Ifko_store.Store.outcome) ->
    Ifko_store.Store.outcome) ->
  ?pool:Ifko_par.Par.Pool.t ->
  ?jobs:int ->
  ?seed:int ->
  ?fidelity:Ifko_sim.Timer.fidelity ->
  ?error_budget:float ->
  ?ckpt:Ifko_sim.Ckpt.t ->
  ?codecache:Codecache.t ->
  cfg:Ifko_machine.Config.t ->
  context:Ifko_sim.Timer.context ->
  spec:Ifko_sim.Timer.spec ->
  n:int ->
  flops_per_n:float ->
  test:(Cfg.func -> bool) ->
  Ifko_codegen.Lower.compiled ->
  tuned
(** Run the full iterative and empirical compilation of a lowered
    kernel for problem size [n] in the given machine and context.
    [extensions] also searches the future-work transformations (block
    fetch, CISC indexing); defaults to the paper's published FKO.

    [check_each_pass] runs the lint suite and translation validation
    after every transformation pass of every probed point: instead of
    silently discarding a miscompiled point (or worse, timing it), the
    tune fails fast with {!Ifko_transform.Passcheck.Pass_failed}
    naming the offending pass.

    [strategy] selects the searcher (default [Linesearch]; omitting it
    is bit-identical to the pre-strategy driver).  [warm_start] seeds
    the chosen strategy's opening batch with the winners of the
    nearest past tunes ({!Warmstart.seeds}): donors come from
    [?donors] when given, otherwise from [store]'s journal; with
    neither, the tune cold-starts cleanly.  A completed tune with a
    [store] journals its own tune-level entry (winner + analysis
    fingerprint) to feed future warm starts.

    [store] journals every probe outcome in a persistent
    content-addressed store and answers repeat probes from it, so a
    killed tune resumes without re-paying completed evaluations and a
    second identical tune costs only hash lookups.  [seed] must be the
    workload seed baked into [spec]/[test] — it is part of the store
    key, so results from differently seeded workloads never alias.

    [jobs] evaluates each line-search sweep's candidates concurrently
    on a domain pool.  Probes are mutually independent and tie-breaking
    stays sequential first-wins, so [~jobs:4] returns bit-identical
    [best_params], [ifko_mflops] and [evaluations] to [~jobs:1].

    [pool] substitutes an externally owned domain pool for the
    [jobs]-spawned one (which is then not created; [jobs] is ignored) —
    the serve daemon shares one pool across every in-flight tune, so
    concurrent requests' probe compilations batch onto the same
    workers.  [cache] overrides the [store] memoization with an
    arbitrary one (the daemon passes the sharded store's single-flight
    [cached]).  Neither affects results: probes are pure, so any
    combination of [store]/[cache]/[pool]/[jobs] is bit-identical to a
    sequential, storeless tune.

    [fidelity] selects the timing fidelity for every probe (default
    [Full], bit-identical to the historical behavior).  Requesting
    [Sampled] first calibrates: the default point is timed both ways,
    and if the sampled estimate misses full fidelity by more than
    [error_budget] (relative, default 0.01) — or the sampled path's own
    confidence checks already fell back — the whole tune runs at full
    fidelity.  [fidelity_used]/[calibration_error] report the outcome,
    and sampled probe outcomes are stored under fidelity-tagged keys so
    they never answer full-fidelity lookups.

    [ckpt] shares a warm-state checkpoint cache across tunes (the
    serve daemon passes a persistent per-machine one); by default each
    tune gets its own in-memory cache, so the in-L2 warm-up runs once
    per (kernel, context, N) and every later probe restores the
    snapshot — observably identical, just cheaper.  Checkpoint entries
    are tagged with [seed] on top of the kernel fingerprint, so a
    shared cache never serves one workload's warm state to another.

    [codecache] shares compiled candidates (transform + semantic test
    + decode, keyed by kernel/machine/params/check/seed) across tunes
    — the daemon passes one so concurrent tunes of a kernel compile
    each candidate once; by default the cache is per-tune, which still
    deduplicates the calibration point, the first probe and the
    winner's final compilation.  Like [cache]/[pool], it never affects
    results. *)
