(** Structured diagnostics for the static-analysis suite.

    Every checker in {!Lint} and every per-pass validation failure in
    the transformation pipeline reports through this type instead of
    raising on first failure, so a single run can surface everything
    that is wrong with a kernel and name the pass that introduced it.

    Diagnostic codes (stable, for tests and grepping):
    - [IFK001] malformed CFG (duplicate label, unknown branch target,
      missing return, empty function)
    - [IFK002] malformed instruction (operand register class, memory
      scale, vector lane range, negative fused decrement)
    - [IFK003] virtual register used before any definition reaches it
    - [IFK004] dead store: a register definition never read
    - [IFK005] block unreachable from the entry
    - [IFK006] 16-byte vector memory access that cannot be aligned
    - [IFK007] suspicious prefetch distance vs the loop's advance
    - [IFK008] register pressure exceeds the architectural file
    - [IFK009] repeatable-transform fixpoint not reached
    - [IFK010] provably out-of-bounds access: an unguarded affine
      reference reads or writes below its array base
    - [IFK011] overlapping write ranges: two stores (or one store
      across iterations) hit the same bytes
    - [IFK012] legality rejection: the {!Legality} oracle refused a
      requested transform (fail-closed; the point compiles without it)
    - [IFK013] array demoted from prefetch: its pointer moves
      irregularly, so no stride can be attributed
    - [IFK014] stride/interval contradiction between {!Ptrinfo}'s
      syntactic strides and {!Absint}'s inferred congruences — or
      stale loop-nest bookkeeping (info), which silently disables every
      loop-aware analysis *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  pass : string option;  (** transformation pass that produced the code *)
  block : string option;  (** block label the diagnostic anchors to *)
  instr : int option;  (** 0-based instruction index within the block *)
  message : string;
}

let make ?pass ?block ?instr severity code message =
  { severity; code; pass; block; instr; message }

let error ?pass ?block ?instr code fmt =
  Printf.ksprintf (make ?pass ?block ?instr Error code) fmt

let warning ?pass ?block ?instr code fmt =
  Printf.ksprintf (make ?pass ?block ?instr Warning code) fmt

let info ?pass ?block ?instr code fmt =
  Printf.ksprintf (make ?pass ?block ?instr Info code) fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(** Errors first, then warnings, then infos; stable within a rank so
    checkers' own ordering (block order) is preserved. *)
let sort diags =
  List.stable_sort (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity)) diags

let errors diags = List.filter (fun d -> d.severity = Error) diags
let is_clean diags = errors diags = []

let to_string d =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "%s[%s]" (severity_name d.severity) d.code);
  Option.iter (fun p -> Buffer.add_string buf (Printf.sprintf " after %s" p)) d.pass;
  (match (d.block, d.instr) with
  | Some b, Some i -> Buffer.add_string buf (Printf.sprintf " %s:%d" b i)
  | Some b, None -> Buffer.add_string buf (Printf.sprintf " %s" b)
  | None, _ -> ());
  Buffer.add_string buf ": ";
  Buffer.add_string buf d.message;
  Buffer.contents buf

let list_to_string diags =
  String.concat "\n" (List.map to_string (sort diags))

(* ---------- machine-readable output ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** One flat JSON object per diagnostic: [severity], [code], [pass],
    [block], [instr] (null when absent) and [message] — the contract of
    [ifko lint --json]. *)
let to_json d =
  let str_or_null = function
    | Some s -> Printf.sprintf "\"%s\"" (json_escape s)
    | None -> "null"
  in
  Printf.sprintf
    "{\"severity\":\"%s\",\"code\":\"%s\",\"pass\":%s,\"block\":%s,\"instr\":%s,\"message\":\"%s\"}"
    (severity_name d.severity) (json_escape d.code) (str_or_null d.pass)
    (str_or_null d.block)
    (match d.instr with Some i -> string_of_int i | None -> "null")
    (json_escape d.message)

let list_to_json diags =
  Printf.sprintf "[%s]" (String.concat "," (List.map to_json (sort diags)))
