test/test_extras.ml: Alcotest Extras Float Ifko_analysis Ifko_blas Ifko_codegen Ifko_hil Ifko_machine Ifko_search Ifko_sim Ifko_transform Instr Int32 List QCheck QCheck_alcotest Validate
