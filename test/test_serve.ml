(* Serve-daemon tests: protocol round-trips and malformed-request
   rejection, the sharded store (persistence, single-flight, eviction,
   replica reload-on-miss), and an end-to-end daemon on a Unix socket
   with concurrent clients whose replies must be bit-identical to a
   sequential, storeless Driver.tune. *)

module Store = Ifko_store.Store
module Json = Store.Json
module Proto = Ifko_serve.Proto
module Shard_store = Ifko_serve.Shard_store
module Server = Ifko_serve.Server
module Client = Ifko_serve.Client

let tmp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let ddot_src =
  Ifko_blas.Hil_sources.source { Ifko_blas.Defs.routine = Ifko_blas.Defs.Dot; prec = Instr.D }

let dasum_src =
  Ifko_blas.Hil_sources.source
    { Ifko_blas.Defs.routine = Ifko_blas.Defs.Asum; prec = Instr.D }

(* ---------------- protocol ---------------- *)

let test_proto_request_roundtrip () =
  let args =
    { Proto.kernel = "KERNEL k()\nwith \"quotes\" \\ and tabs\t"; machine = "opteron";
      context = "l2"; n = 1234; seed = 7; flops_per_n = 1.5; check = true;
      strategy = "surrogate"; warm_start = true }
  in
  List.iter
    (fun request ->
      let line = Proto.render_request { Proto.req_id = "r-1"; request } in
      Alcotest.(check bool) "one line" false (String.contains line '\n');
      match Proto.parse_request line with
      | Error (_, msg) -> Alcotest.failf "round-trip failed: %s" msg
      | Ok r ->
        Alcotest.(check string) "id" "r-1" r.Proto.req_id;
        Alcotest.(check bool) "request survives" true (r.Proto.request = request))
    [ Proto.Tune args; Proto.Lookup args; Proto.Stat; Proto.Compact; Proto.Shutdown ]

let test_proto_response_roundtrip () =
  let reply =
    { Proto.best = "sv=1;ur=4"; mflops = 1234.5678901234567; fko_mflops = 987.65432101;
      evaluations = 93; hit = false }
  in
  List.iter
    (fun r ->
      let line = Proto.render_response { Proto.resp_id = "c9-3"; reply = r } in
      match Proto.parse_response line with
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg
      | Ok p ->
        Alcotest.(check string) "id" "c9-3" p.Proto.resp_id;
        Alcotest.(check bool) "reply survives" true (p.Proto.reply = r))
    [ Proto.Tuned ("tune", reply);
      Proto.Tuned ("lookup", { reply with Proto.hit = true });
      Proto.Miss;
      Proto.Stats [ ("entries", Json.N 3.0); ("nested", Json.O [ ("a", Json.A [ Json.N 1.0; Json.Null ]) ]) ];
      Proto.Done "compact";
      Proto.Failed "no such machine";
    ]

(* Floats cross the wire at %.17g: the reply a client decodes must be
   the exact bits the daemon computed. *)
let test_proto_float_bits () =
  let mflops = 1.0 /. 3.0 *. 1e4 in
  let reply =
    { Proto.best = "x"; mflops; fko_mflops = 0.1 +. 0.2; evaluations = 1; hit = false }
  in
  match
    Proto.parse_response
      (Proto.render_response { Proto.resp_id = "i"; reply = Proto.Tuned ("tune", reply) })
  with
  | Ok { Proto.reply = Proto.Tuned (_, r); _ } ->
    Alcotest.(check bool) "mflops bit-identical" true
      (Int64.bits_of_float r.Proto.mflops = Int64.bits_of_float mflops);
    Alcotest.(check bool) "fko bit-identical" true
      (Int64.bits_of_float r.Proto.fko_mflops = Int64.bits_of_float (0.1 +. 0.2))
  | Ok _ -> Alcotest.fail "wrong reply shape"
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_proto_malformed () =
  let expect_err ?id line =
    match Proto.parse_request line with
    | Ok _ -> Alcotest.failf "accepted malformed line %S" line
    | Error (got_id, msg) ->
      Alcotest.(check bool) "has a message" true (String.length msg > 0);
      Option.iter (fun id -> Alcotest.(check string) "id recovered" id got_id) id
  in
  expect_err "not json at all";
  expect_err "{\"op\":\"tune\"}" (* missing kernel *);
  expect_err ~id:"x1" "{\"id\":\"x1\",\"op\":\"frobnicate\"}";
  expect_err ~id:"x2" "{\"id\":\"x2\"}" (* missing op *);
  expect_err ~id:"x3" "{\"id\":\"x3\",\"op\":\"tune\",\"kernel\":\"k\",\"n\":-5}";
  expect_err ~id:"x4" "{\"id\":\"x4\",\"op\":\"tune\",\"kernel\":\"k\",\"n\":\"big\"}";
  expect_err ~id:"x5" "{\"id\":\"x5\",\"op\":\"tune\",\"kernel\":\"   \"}";
  (* omitted optional fields fall back to the documented defaults *)
  match Proto.parse_request "{\"id\":\"ok\",\"op\":\"tune\",\"kernel\":\"K\"}" with
  | Ok { Proto.request = Proto.Tune a; _ } ->
    Alcotest.(check bool) "defaults" true (a = Proto.default_args ~kernel:"K")
  | _ -> Alcotest.fail "minimal tune request rejected"

(* ---------------- shard store ---------------- *)

let test_shard_persistence () =
  let dir = tmp_dir "ifko_shards" in
  let st = Shard_store.open_ ~shards:4 dir in
  Alcotest.(check int) "geometry" 4 (Shard_store.shard_count st);
  let keys = List.init 64 (fun i -> Store.digest [ "key"; string_of_int i ]) in
  List.iteri
    (fun i key ->
      Shard_store.add st ~key ~params:"p" ~prov:"t"
        (Store.Timed { mflops = float_of_int i; cycles = 0.0 }))
    keys;
  Shard_store.close st;
  (* journals actually spread: with 64 MD5 keys over 4 shards, every
     shard must hold something *)
  let sizes =
    List.init 4 (fun i ->
        let ic = open_in_bin (Filename.concat dir (Printf.sprintf "shard-%02d.jsonl" i)) in
        let n = in_channel_length ic in
        close_in ic;
        n)
  in
  List.iter (fun n -> Alcotest.(check bool) "shard non-trivial" true (n > 20)) sizes;
  (* reopen with a different ?shards: store.meta wins, keys still found *)
  let st2 = Shard_store.open_ ~shards:13 dir in
  Alcotest.(check int) "meta wins over argument" 4 (Shard_store.shard_count st2);
  Alcotest.(check int) "entries" 64 (Shard_store.entries st2);
  List.iteri
    (fun i key ->
      match Shard_store.find st2 ~key with
      | Some (Store.Timed { mflops; _ }) ->
        Alcotest.(check (float 0.0)) "value" (float_of_int i) mflops
      | _ -> Alcotest.fail "entry lost across reopen")
    keys;
  Alcotest.(check int) "hits counted" 64 (Shard_store.hits st2);
  Shard_store.close st2;
  rm_rf dir

let test_shard_single_flight () =
  let dir = tmp_dir "ifko_flight" in
  let st = Shard_store.open_ ~shards:2 dir in
  let key = Store.digest [ "shared" ] in
  let computes = Atomic.make 0 in
  let barrier = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    Thread.delay 0.05;
    (* slow, so the other threads pile onto the flight *)
    Store.Timed { mflops = 77.0; cycles = 0.0 }
  in
  let results = Array.make 8 None in
  let threads =
    Array.init 8 (fun i ->
        Thread.create
          (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < 8 do
              Thread.yield ()
            done;
            results.(i) <- Some (Shard_store.cached st ~key ~params:"" ~prov:"" compute))
          ())
  in
  Array.iter Thread.join threads;
  Alcotest.(check int) "computed exactly once" 1 (Atomic.get computes);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "every thread got the outcome" true
        (r = Some (Store.Timed { mflops = 77.0; cycles = 0.0 })))
    results;
  Alcotest.(check int) "one journal entry" 1 (Shard_store.entries st);
  Shard_store.close st;
  rm_rf dir

let test_shard_eviction () =
  let dir = tmp_dir "ifko_evict" in
  let now = ref 1000.0 in
  let st = Shard_store.open_ ~shards:2 ~clock:(fun () -> !now) dir in
  let old_keys = List.init 10 (fun i -> Store.digest [ "old"; string_of_int i ]) in
  let new_keys = List.init 10 (fun i -> Store.digest [ "new"; string_of_int i ]) in
  List.iter
    (fun key ->
      Shard_store.add st ~key ~params:"" ~prov:"" (Store.Timed { mflops = 1.0; cycles = 0.0 }))
    old_keys;
  now := 2000.0;
  List.iter
    (fun key ->
      Shard_store.add st ~key ~params:"" ~prov:"" (Store.Timed { mflops = 2.0; cycles = 0.0 }))
    new_keys;
  (* age bound: everything older than 500s at t=2100 goes *)
  let dropped = Shard_store.evict ~max_age:500.0 ~now:2100.0 st in
  Alcotest.(check int) "old generation evicted" 10 dropped;
  List.iter
    (fun key -> Alcotest.(check bool) "old gone" true (Shard_store.find st ~key = None))
    old_keys;
  List.iter
    (fun key ->
      Alcotest.(check bool) "live entries preserved" true (Shard_store.find st ~key <> None))
    new_keys;
  (* the eviction compacted: reopening sees the same picture *)
  Shard_store.close st;
  let st2 = Shard_store.open_ ~clock:(fun () -> !now) dir in
  Alcotest.(check int) "survivors persisted" 10 (Shard_store.entries st2);
  (* size bound: squeeze to a handful of entries *)
  let s = Shard_store.stat st2 in
  let dropped2 = Shard_store.evict ~max_bytes:(s.Shard_store.sh_bytes / 2) ~now:2200.0 st2 in
  Alcotest.(check bool) "size bound dropped something" true (dropped2 > 0);
  Alcotest.(check bool) "but not everything" true (Shard_store.entries st2 > 0);
  let s2 = Shard_store.stat st2 in
  Alcotest.(check bool) "bytes under budget" true
    (s2.Shard_store.sh_bytes <= s.Shard_store.sh_bytes / 2);
  Shard_store.close st2;
  rm_rf dir

let test_shard_replica_reload () =
  let dir = tmp_dir "ifko_replica" in
  let a = Shard_store.open_ ~shards:4 ~replica:true dir in
  let b = Shard_store.open_ ~replica:true dir in
  (* b opened before a wrote anything; the miss triggers a reload *)
  let key = Store.digest [ "cross-process" ] in
  Alcotest.(check bool) "cold miss" true (Shard_store.find b ~key = None);
  Shard_store.add a ~key ~params:"p" ~prov:"a" (Store.Timed { mflops = 5.5; cycles = 0.0 });
  (match Shard_store.find b ~key with
  | Some (Store.Timed { mflops; _ }) ->
    Alcotest.(check (float 0.0)) "reload-on-miss sees a's write" 5.5 mflops
  | _ -> Alcotest.fail "replica miss not reloaded");
  (* and the other direction *)
  let key2 = Store.digest [ "other-way" ] in
  Shard_store.add b ~key:key2 ~params:"" ~prov:"b" Store.Illegal;
  Alcotest.(check bool) "a sees b's write" true
    (Shard_store.find a ~key:key2 = Some Store.Illegal);
  Shard_store.close a;
  Shard_store.close b;
  rm_rf dir

let test_store_refresh_torn_tail () =
  (* refresh must not consume a torn (in-flight) tail: once the
     concurrent writer finishes the line, a later refresh loads it *)
  let path = Filename.temp_file "ifko_refresh" ".jsonl" in
  Sys.remove path;
  let a = Store.open_ path in
  let b = Store.open_ path in
  let line =
    "{\"k\":\"x\",\"o\":\"timed\",\"mflops\":1.5,\"cycles\":2,\"params\":\"\",\"prov\":\"\"}"
  in
  let half = String.length line / 2 in
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc (String.sub line 0 half);
  flush oc;
  Store.refresh b;
  Alcotest.(check bool) "half-written line invisible" true (Store.find b ~key:"x" = None);
  output_string oc (String.sub line half (String.length line - half) ^ "\n");
  close_out oc;
  Store.refresh b;
  Alcotest.(check bool) "completed line visible after refresh" true
    (Store.find b ~key:"x" = Some (Store.Timed { mflops = 1.5; cycles = 2.0 }));
  Store.close a;
  Store.close b;
  Store.clear path

(* ---------------- end-to-end daemon ---------------- *)

let with_daemon ?(jobs = 2) ?shards f =
  let dir = tmp_dir "ifko_served" in
  let sock = tmp_dir "ifko_sock" ^ ".sock" in
  let listen = `Unix sock in
  let config =
    { (Server.default_config ~store_dir:dir listen) with
      Server.jobs;
      shards = Option.value ~default:4 shards;
    }
  in
  let ready = Mutex.create () in
  let ready_cv = Condition.create () in
  let is_ready = ref false in
  let daemon =
    Thread.create
      (fun () ->
        Server.run
          ~ready:(fun () ->
            Mutex.lock ready;
            is_ready := true;
            Condition.signal ready_cv;
            Mutex.unlock ready)
          config)
      ()
  in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait ready_cv ready
  done;
  Mutex.unlock ready;
  Fun.protect
    ~finally:(fun () ->
      (* make sure the daemon dies even when the test body failed *)
      (try Client.with_client listen (fun c -> ignore (Client.shutdown c)) with _ -> ());
      Thread.join daemon;
      rm_rf dir)
    (fun () -> f listen)

(* The bit-identity contract: the daemon's reply equals a local
   sequential, storeless tune — same best point, same MFLOPS bits,
   same evaluation count — no matter how many clients raced. *)
let reference_tune src ~n ~seed ~flops_per_n =
  let compiled =
    src |> Ifko_hil.Parser.parse_kernel |> Ifko_hil.Typecheck.check
    |> Ifko_codegen.Lower.lower
  in
  let spec = Ifko_search.Generic.spec ~seed compiled in
  Ifko_search.Driver.tune ~seed ~cfg:Ifko_machine.Config.p4e
    ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n ~flops_per_n
    ~test:(Ifko_search.Generic.test compiled spec) compiled

let check_against_reference src (r : Proto.tune_reply) ~n ~seed ~flops_per_n =
  let t = reference_tune src ~n ~seed ~flops_per_n in
  Alcotest.(check string) "best point bit-identical"
    (Ifko_transform.Params.canonical t.Ifko_search.Driver.best_params)
    r.Proto.best;
  Alcotest.(check bool) "mflops bit-identical" true
    (Int64.bits_of_float t.Ifko_search.Driver.ifko_mflops
    = Int64.bits_of_float r.Proto.mflops);
  Alcotest.(check bool) "fko mflops bit-identical" true
    (Int64.bits_of_float t.Ifko_search.Driver.fko_mflops
    = Int64.bits_of_float r.Proto.fko_mflops);
  Alcotest.(check int) "evaluations" t.Ifko_search.Driver.evaluations r.Proto.evaluations

let test_daemon_tune_deterministic () =
  let n = 600 and seed = 3 and flops_per_n = 2.0 in
  let args = { (Proto.default_args ~kernel:ddot_src) with Proto.n; seed } in
  with_daemon (fun listen ->
      (* several clients race tunes of the same kernel plus a different
         one; every ddot reply must agree and match the reference *)
      let replies = Array.make 4 None in
      let threads =
        Array.init 4 (fun i ->
            Thread.create
              (fun () ->
                Client.with_client listen (fun c ->
                    let a =
                      if i = 3 then { args with Proto.kernel = dasum_src } else args
                    in
                    replies.(i) <- Some (Client.tune c a)))
              ())
      in
      Array.iter Thread.join threads;
      let oks =
        Array.to_list replies
        |> List.filteri (fun i _ -> i < 3)
        |> List.map (function
             | Some (Ok r) -> r
             | Some (Error e) -> Alcotest.failf "tune failed: %s" e
             | None -> Alcotest.fail "client did not finish")
      in
      (match oks with
      | first :: rest ->
        List.iter
          (fun (r : Proto.tune_reply) ->
            Alcotest.(check bool) "concurrent replies identical" true
              (r.Proto.best = first.Proto.best
              && Int64.bits_of_float r.Proto.mflops = Int64.bits_of_float first.Proto.mflops
              && r.Proto.evaluations = first.Proto.evaluations))
          rest;
        check_against_reference ddot_src first ~n ~seed ~flops_per_n
      | [] -> Alcotest.fail "no replies");
      (match replies.(3) with
      | Some (Ok r) -> check_against_reference dasum_src r ~n ~seed ~flops_per_n
      | _ -> Alcotest.fail "dasum tune failed");
      (* warm phase: lookup hits, tune comes back from the result cache *)
      Client.with_client listen (fun c ->
          (match Client.lookup c args with
          | Ok (Some r) ->
            Alcotest.(check bool) "warm lookup hits" true r.Proto.hit;
            check_against_reference ddot_src r ~n ~seed ~flops_per_n
          | Ok None -> Alcotest.fail "warm lookup missed"
          | Error e -> Alcotest.failf "lookup failed: %s" e);
          (match Client.tune c args with
          | Ok r -> Alcotest.(check bool) "warm tune is a cache hit" true r.Proto.hit
          | Error e -> Alcotest.failf "warm tune failed: %s" e);
          (* unknown kernel: lookups never compute *)
          match
            Client.lookup c { args with Proto.kernel = dasum_src; Proto.seed = 99 }
          with
          | Ok None -> ()
          | Ok (Some _) -> Alcotest.fail "lookup computed a cold result"
          | Error e -> Alcotest.failf "cold lookup failed: %s" e))

(* Two concurrent tunes of one kernel at different problem sizes: the
   tune-level single-flight cannot merge them (different keys), so any
   sharing happens in the daemon-wide codecache — candidate params are
   size-independent, so the batch compiles each candidate once.  The
   replies must still be bit-identical to sequential, storeless,
   cache-less local tunes, and the stat reply must surface how much
   compilation the batch skipped. *)
let test_daemon_shared_compile_batch () =
  let seed = 3 and flops_per_n = 2.0 in
  let n_of i = if i = 0 then 600 else 800 in
  with_daemon (fun listen ->
      let replies = Array.make 2 None in
      let threads =
        Array.init 2 (fun i ->
            Thread.create
              (fun () ->
                Client.with_client listen (fun c ->
                    let a =
                      { (Proto.default_args ~kernel:ddot_src) with Proto.n = n_of i; seed }
                    in
                    replies.(i) <- Some (Client.tune c a)))
              ())
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Some (Ok r) ->
            check_against_reference ddot_src r ~n:(n_of i) ~seed ~flops_per_n
          | Some (Error e) -> Alcotest.failf "tune %d failed: %s" i e
          | None -> Alcotest.failf "client %d did not finish" i)
        replies;
      Client.with_client listen (fun c ->
          match Client.stat c with
          | Error e -> Alcotest.failf "stat failed: %s" e
          | Ok fields ->
            let num obj k =
              match List.assoc_opt obj fields with
              | Some (Proto.Json.O o) -> (
                match List.assoc_opt k o with
                | Some (Proto.Json.N v) -> int_of_float v
                | _ -> Alcotest.failf "stat field %s.%s missing" obj k)
              | _ -> Alcotest.failf "stat object %s missing" obj
            in
            Alcotest.(check bool) "candidates were compiled" true
              (num "codecache" "misses" > 0);
            Alcotest.(check bool) "the sibling tune reused the batch" true
              (num "codecache" "hits" > 0);
            (* the warm-state checkpoint counters ride the same reply *)
            Alcotest.(check bool) "ckpt counters surfaced" true
              (num "ckpt" "misses" >= 0 && num "ckpt" "hits" >= 0)))

let test_daemon_protocol_errors () =
  with_daemon ~jobs:1 (fun listen ->
      match listen with
      | `Tcp _ -> assert false
      | `Unix path ->
        (* speak raw bytes: a garbage line must produce an error reply on
           the same connection, not a disconnect *)
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        output_string oc "this is not json\n";
        output_string oc "{\"id\":\"q1\",\"op\":\"nope\"}\n";
        output_string oc "{\"id\":\"q2\",\"op\":\"stat\"}\n";
        flush oc;
        (match Proto.parse_response (input_line ic) with
        | Ok { Proto.reply = Proto.Failed _; _ } -> ()
        | _ -> Alcotest.fail "garbage line not rejected with an error reply");
        (match Proto.parse_response (input_line ic) with
        | Ok { Proto.resp_id = "q1"; reply = Proto.Failed msg } ->
          Alcotest.(check bool) "message names the op" true
            (String.length msg > 0)
        | _ -> Alcotest.fail "unknown op not rejected with a correlated error");
        (match Proto.parse_response (input_line ic) with
        | Ok { Proto.resp_id = "q2"; reply = Proto.Stats fields } ->
          (match List.assoc_opt "server" fields with
          | Some (Json.O server) ->
            (match List.assoc_opt "errors" server with
            | Some (Json.N e) ->
              Alcotest.(check bool) "errors counted" true (e >= 2.0)
            | _ -> Alcotest.fail "no errors counter")
          | _ -> Alcotest.fail "no server object in stat")
        | _ -> Alcotest.fail "connection unusable after bad lines");
        Unix.close fd)

let test_daemon_replica_pair () =
  (* two daemons, one store directory: what one computes, the other
     serves from its result cache via reload-on-miss *)
  let dir = tmp_dir "ifko_repl_store" in
  let sock_a = tmp_dir "ifko_repl_a" ^ ".sock" in
  let sock_b = tmp_dir "ifko_repl_b" ^ ".sock" in
  let mk sock =
    { (Server.default_config ~store_dir:dir (`Unix sock)) with
      Server.replica = true;
      shards = 2;
      jobs = 1;
    }
  in
  let spawn config =
    let m = Mutex.create () and cv = Condition.create () and up = ref false in
    let th =
      Thread.create
        (fun () ->
          Server.run
            ~ready:(fun () ->
              Mutex.lock m;
              up := true;
              Condition.signal cv;
              Mutex.unlock m)
            config)
        ()
    in
    Mutex.lock m;
    while not !up do
      Condition.wait cv m
    done;
    Mutex.unlock m;
    th
  in
  let ta = spawn (mk sock_a) in
  let tb = spawn (mk sock_b) in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun sock ->
          try Client.with_client (`Unix sock) (fun c -> ignore (Client.shutdown c))
          with _ -> ())
        [ sock_a; sock_b ];
      Thread.join ta;
      Thread.join tb;
      rm_rf dir)
    (fun () ->
      let n = 400 and seed = 1 in
      let args = { (Proto.default_args ~kernel:ddot_src) with Proto.n; seed } in
      let computed =
        Client.with_client (`Unix sock_a) (fun c ->
            match Client.tune c args with
            | Ok r -> r
            | Error e -> Alcotest.failf "tune on a failed: %s" e)
      in
      Alcotest.(check bool) "a computed it" false computed.Proto.hit;
      Client.with_client (`Unix sock_b) (fun c ->
          match Client.lookup c args with
          | Ok (Some r) ->
            Alcotest.(check bool) "b's lookup hit a's result" true r.Proto.hit;
            Alcotest.(check string) "same best" computed.Proto.best r.Proto.best;
            Alcotest.(check bool) "same bits" true
              (Int64.bits_of_float computed.Proto.mflops
              = Int64.bits_of_float r.Proto.mflops)
          | Ok None -> Alcotest.fail "replica b missed a's result"
          | Error e -> Alcotest.failf "lookup on b failed: %s" e))

(* Warm starts through the daemon: tuning ddot journals a tune-level
   donor in the shard store; a warm-started surrogate tune of the
   related dasum then opens at ddot's adapted winner.  The reply must
   be bit-identical to a local warm tune seeded with the same donor —
   the daemon path (journal round-trip included) adds nothing and
   loses nothing. *)
let test_daemon_warm_start () =
  let n = 600 and seed = 3 and flops_per_n = 2.0 in
  let local ?strategy ?(warm_start = false) ?donors src =
    let compiled =
      src |> Ifko_hil.Parser.parse_kernel |> Ifko_hil.Typecheck.check
      |> Ifko_codegen.Lower.lower
    in
    let spec = Ifko_search.Generic.spec ~seed compiled in
    Ifko_search.Driver.tune ?strategy ~warm_start ?donors ~seed
      ~cfg:Ifko_machine.Config.p4e ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n
      ~flops_per_n
      ~test:(Ifko_search.Generic.test compiled spec)
      compiled
  in
  (* the local replica of the daemon's journal: ddot's surrogate winner
     as the one donor in the store *)
  let t_ddot = local ~strategy:Ifko_search.Driver.Surrogate ddot_src in
  let donor =
    { Ifko_search.Warmstart.d_kernel = "ddot";
      d_feat = Ifko_analysis.Report.features t_ddot.Ifko_search.Driver.report;
      d_params = t_ddot.Ifko_search.Driver.best_params;
      d_mflops = t_ddot.Ifko_search.Driver.ifko_mflops;
    }
  in
  let warm_ref =
    local ~strategy:Ifko_search.Driver.Surrogate ~warm_start:true ~donors:[ donor ]
      dasum_src
  in
  (* sanity: with one donor the warm search is genuinely different from
     a cold one (deterministic simulator, so this cannot flake) *)
  let cold_ref = local ~strategy:Ifko_search.Driver.Surrogate dasum_src in
  Alcotest.(check bool) "warm reference differs from cold" true
    (warm_ref.Ifko_search.Driver.evaluations <> cold_ref.Ifko_search.Driver.evaluations
    || warm_ref.Ifko_search.Driver.probes_to_best
       <> cold_ref.Ifko_search.Driver.probes_to_best);
  with_daemon (fun listen ->
      Client.with_client listen (fun c ->
          let args kernel =
            { (Proto.default_args ~kernel) with
              Proto.n;
              seed;
              strategy = "surrogate";
            }
          in
          (* donor phase: the daemon computes and journals ddot's tune *)
          (match Client.tune c (args ddot_src) with
          | Ok r -> Alcotest.(check bool) "ddot computed cold" false r.Proto.hit
          | Error e -> Alcotest.failf "ddot tune failed: %s" e);
          (* warm phase: dasum opens at ddot's adapted winner *)
          match Client.tune c { (args dasum_src) with Proto.warm_start = true } with
          | Error e -> Alcotest.failf "warm dasum tune failed: %s" e
          | Ok r ->
            Alcotest.(check string) "warm best bit-identical to local"
              (Ifko_transform.Params.canonical warm_ref.Ifko_search.Driver.best_params)
              r.Proto.best;
            Alcotest.(check bool) "warm mflops bit-identical" true
              (Int64.bits_of_float warm_ref.Ifko_search.Driver.ifko_mflops
              = Int64.bits_of_float r.Proto.mflops);
            Alcotest.(check bool) "fko mflops bit-identical" true
              (Int64.bits_of_float warm_ref.Ifko_search.Driver.fko_mflops
              = Int64.bits_of_float r.Proto.fko_mflops);
            Alcotest.(check int) "warm evaluations bit-identical"
              warm_ref.Ifko_search.Driver.evaluations r.Proto.evaluations))

let suite =
  [ Alcotest.test_case "proto: request round-trip" `Quick test_proto_request_roundtrip;
    Alcotest.test_case "proto: response round-trip" `Quick test_proto_response_roundtrip;
    Alcotest.test_case "proto: float bits survive the wire" `Quick test_proto_float_bits;
    Alcotest.test_case "proto: malformed requests rejected" `Quick test_proto_malformed;
    Alcotest.test_case "shards: persistence and geometry" `Quick test_shard_persistence;
    Alcotest.test_case "shards: single-flight dedup" `Quick test_shard_single_flight;
    Alcotest.test_case "shards: age and size eviction" `Quick test_shard_eviction;
    Alcotest.test_case "shards: replica reload-on-miss" `Quick test_shard_replica_reload;
    Alcotest.test_case "store: refresh skips torn tail" `Quick test_store_refresh_torn_tail;
    Alcotest.test_case "daemon: concurrent tunes bit-identical" `Quick
      test_daemon_tune_deterministic;
    Alcotest.test_case "daemon: shared compile batch" `Quick
      test_daemon_shared_compile_batch;
    Alcotest.test_case "daemon: protocol errors answered" `Quick
      test_daemon_protocol_errors;
    Alcotest.test_case "daemon: replica pair shares results" `Quick
      test_daemon_replica_pair;
    Alcotest.test_case "daemon: related kernels share warm starts" `Quick
      test_daemon_warm_start;
  ]
