lib/transform/unroll.mli: Ifko_codegen
