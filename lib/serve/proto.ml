(* The serve wire protocol: newline-delimited JSON, one request object
   per line in, one response object per line out, correlated by a
   client-chosen request id.  Numbers render through Store.Json
   (%.17g), so MFLOPS survive the wire bit-identically — the
   service-level determinism contract depends on it. *)

module Json = Ifko_store.Store.Json

type tune_args = {
  kernel : string;  (** HIL source text *)
  machine : string;  (** "p4e" | "opteron" *)
  context : string;  (** "oc" | "l2" *)
  n : int;
  seed : int;
  flops_per_n : float;
  check : bool;  (** per-pass validation of every probe *)
  strategy : string;  (** "linesearch" (default) | "surrogate" *)
  warm_start : bool;  (** seed the search from past tunes in the store *)
}

let default_args ~kernel =
  { kernel; machine = "p4e"; context = "oc"; n = 80000; seed = 0; flops_per_n = 2.0;
    check = false; strategy = "linesearch"; warm_start = false }

type request =
  | Tune of tune_args
  | Lookup of tune_args
  | Stat
  | Compact
  | Shutdown

type req = { req_id : string; request : request }

type tune_reply = {
  best : string;  (** canonical parameter point ({!Ifko_transform.Params.canonical}) *)
  mflops : float;
  fko_mflops : float;
  evaluations : int;
  hit : bool;  (** answered from the service-level result cache *)
}

type reply =
  | Tuned of string * tune_reply  (** op ("tune"/"lookup") * payload *)
  | Miss  (** lookup found nothing (lookups never compute) *)
  | Stats of (string * Json.value) list
  | Done of string  (** ack, echoing the op ("compact"/"shutdown") *)
  | Failed of string

type resp = { resp_id : string; reply : reply }

(* ---------------- rendering ---------------- *)

let args_fields (a : tune_args) =
  [ ("kernel", Json.S a.kernel);
    ("machine", Json.S a.machine);
    ("context", Json.S a.context);
    ("n", Json.N (float_of_int a.n));
    ("seed", Json.N (float_of_int a.seed));
    ("flops_per_n", Json.N a.flops_per_n);
    ("check", Json.B a.check);
    ("strategy", Json.S a.strategy);
    ("warm_start", Json.B a.warm_start);
  ]

let render_request { req_id; request } =
  let fields =
    match request with
    | Tune a -> ("op", Json.S "tune") :: args_fields a
    | Lookup a -> ("op", Json.S "lookup") :: args_fields a
    | Stat -> [ ("op", Json.S "stat") ]
    | Compact -> [ ("op", Json.S "compact") ]
    | Shutdown -> [ ("op", Json.S "shutdown") ]
  in
  Json.render (("id", Json.S req_id) :: fields)

let tune_reply_fields (r : tune_reply) =
  [ ("hit", Json.B r.hit);
    ("best", Json.S r.best);
    ("mflops", Json.N r.mflops);
    ("fko_mflops", Json.N r.fko_mflops);
    ("evaluations", Json.N (float_of_int r.evaluations));
  ]

let render_response { resp_id; reply } =
  let id = ("id", Json.S resp_id) in
  match reply with
  | Tuned (op, r) ->
    Json.render ((id :: [ ("ok", Json.B true); ("op", Json.S op) ]) @ tune_reply_fields r)
  | Miss ->
    Json.render [ id; ("ok", Json.B true); ("op", Json.S "lookup"); ("hit", Json.B false) ]
  | Stats fields ->
    Json.render [ id; ("ok", Json.B true); ("op", Json.S "stat"); ("stat", Json.O fields) ]
  | Done op -> Json.render [ id; ("ok", Json.B true); ("op", Json.S op) ]
  | Failed msg -> Json.render [ id; ("ok", Json.B false); ("error", Json.S msg) ]

(* ---------------- parsing ---------------- *)

(* Malformed input yields [Error msg], never an exception: the daemon
   turns it into an error reply, the client into a [Failed]-style
   result — a garbage line must not take either side down. *)

let parse_line line =
  match Json.parse line with
  | exception Json.Bad -> Error "malformed JSON (expected one object per line)"
  | fields -> Ok fields

let int_field fields name ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Json.N f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let num_field fields name ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Json.N f) -> Ok f
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let bool_field fields name ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Json.B b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let str_field fields name ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Json.S s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let ( let* ) = Result.bind

let parse_args fields =
  let* kernel =
    match Json.str fields "kernel" with
    | Some s when String.trim s <> "" -> Ok s
    | Some _ -> Error "field \"kernel\" must not be empty"
    | None -> Error "tune/lookup requires a \"kernel\" field (HIL source text)"
  in
  let d = default_args ~kernel in
  let* machine = str_field fields "machine" ~default:d.machine in
  let* context = str_field fields "context" ~default:d.context in
  let* n = int_field fields "n" ~default:d.n in
  let* () = if n > 0 then Ok () else Error "field \"n\" must be positive" in
  let* seed = int_field fields "seed" ~default:d.seed in
  let* flops_per_n = num_field fields "flops_per_n" ~default:d.flops_per_n in
  let* check = bool_field fields "check" ~default:d.check in
  (* Absent fields take defaults, so clients speaking the pre-strategy
     protocol keep working unchanged. *)
  let* strategy = str_field fields "strategy" ~default:d.strategy in
  let* () =
    match strategy with
    | "linesearch" | "surrogate" -> Ok ()
    | s -> Error (Printf.sprintf "unknown strategy %S (linesearch|surrogate)" s)
  in
  let* warm_start = bool_field fields "warm_start" ~default:d.warm_start in
  Ok { kernel; machine; context; n; seed; flops_per_n; check; strategy; warm_start }

let parse_request line =
  match parse_line line with
  | Error msg -> Error ("", msg)
  | Ok fields ->
  let req_id = Option.value ~default:"" (Json.str fields "id") in
  let wrap r = Result.map (fun request -> { req_id; request }) r in
  (* carry the id even through malformed-field errors, so the error
     reply can still be correlated *)
  Result.map_error
    (fun msg -> (req_id, msg))
    (match Json.str fields "op" with
    | None -> Error "missing \"op\" field"
    | Some "tune" -> wrap (Result.map (fun a -> Tune a) (parse_args fields))
    | Some "lookup" -> wrap (Result.map (fun a -> Lookup a) (parse_args fields))
    | Some "stat" -> wrap (Ok Stat)
    | Some "compact" -> wrap (Ok Compact)
    | Some "shutdown" -> wrap (Ok Shutdown)
    | Some op ->
      Error (Printf.sprintf "unknown op %S (tune|lookup|stat|compact|shutdown)" op))

let parse_tune_reply fields ~hit =
  let* best =
    match Json.str fields "best" with
    | Some s -> Ok s
    | None -> Error "missing \"best\" field"
  in
  let* mflops =
    match Json.num fields "mflops" with
    | Some f -> Ok f
    | None -> Error "missing \"mflops\" field"
  in
  let* fko_mflops = num_field fields "fko_mflops" ~default:0.0 in
  let* evaluations = int_field fields "evaluations" ~default:0 in
  Ok { best; mflops; fko_mflops; evaluations; hit }

let parse_response line =
  let* fields = parse_line line in
  let resp_id = Option.value ~default:"" (Json.str fields "id") in
  let* reply =
    match Json.bool fields "ok" with
    | None -> Error "missing \"ok\" field"
    | Some false ->
      Ok (Failed (Option.value ~default:"unknown error" (Json.str fields "error")))
    | Some true -> (
      match Json.str fields "op" with
      | None -> Error "missing \"op\" field"
      | Some ("tune" as op) ->
        let* hit = bool_field fields "hit" ~default:false in
        Result.map (fun r -> Tuned (op, r)) (parse_tune_reply fields ~hit)
      | Some ("lookup" as op) -> (
        let* hit = bool_field fields "hit" ~default:false in
        if not hit then Ok Miss
        else Result.map (fun r -> Tuned (op, r)) (parse_tune_reply fields ~hit:true))
      | Some "stat" -> (
        match List.assoc_opt "stat" fields with
        | Some (Json.O o) -> Ok (Stats o)
        | _ -> Error "missing or non-object \"stat\" field")
      | Some op -> Ok (Done op))
  in
  Ok { resp_id; reply }
