(* A Level 3 BLAS teaser, mirroring the paper's closing remark:

     "our initial timings show ifko already capable of improving even
      Level 3 BLAS performance more than icc or gcc, but due to the
      lack of outer-loop specialized transformations we are presently
      not competitive with the best Level 3 hand-tuned kernels."

   We build DGEMM (C += A*B, column-major) the classical axpy way: its
   innermost operation is a daxpy over a column of C, so the whole
   matrix multiply costs M*N*K inner FLOPs = K*N calls of daxpy(M).
   Tuning only that inner kernel with ifko improves gemm exactly as
   much as it improves daxpy — and leaves the cache-blocking headroom
   (the "outer-loop specialized transformations") untouched, which is
   what a hand-tuned GEMM exploits.

     dune exec examples/level3_teaser.exe
*)

open Ifko.Blas

let m, n, k = (512, 512, 512)

let () =
  let cfg = Ifko.Config.p4e in
  let id = { Defs.routine = Defs.Axpy; prec = Instr.D } in
  let compiled = Hil_sources.compile id in
  let spec = Workload.timer_spec id ~seed:2005 in
  Printf.printf
    "DGEMM %dx%dx%d built on daxpy: %d inner calls of daxpy(M=%d), data out of cache\n\n" m n
    k (n * k) m;

  (* cycles per daxpy(M) call for each tuning method *)
  let per_call_cycles func =
    Ifko.Timer.measure ~cfg ~context:Ifko.Timer.Out_of_cache ~spec ~n:m func
  in
  let report name cycles =
    let total = cycles *. float_of_int (n * k) in
    let flops = 2.0 *. float_of_int m *. float_of_int (n * k) in
    Printf.printf "  %-22s %8.1f cycles/call  -> gemm at %8.1f MFLOPS\n%!" name cycles
      (Ifko_util.Stats.mflops ~flops ~cycles:total ~ghz:cfg.Ifko.Config.ghz)
  in

  List.iter
    (fun (mdl : Ifko.Baselines.Compiler_model.t) ->
      let func =
        Ifko.Baselines.Compiler_model.compile mdl ~cfg ~context:Ifko.Timer.Out_of_cache
          compiled
      in
      report (mdl.Ifko.Baselines.Compiler_model.name ^ " inner kernel") (per_call_cycles func))
    [ Ifko.Baselines.Compiler_model.gcc; Ifko.Baselines.Compiler_model.icc ];

  let tuned =
    Ifko.tune ~cfg ~context:Ifko.Timer.Out_of_cache ~spec ~n:m ~flops_per_n:2.0
      ~test:(fun _ -> true) compiled
  in
  report "ifko inner kernel" (per_call_cycles tuned.Ifko.Driver.best_func);

  print_newline ();
  print_endline
    "As in the paper: tuning the inner kernel beats the native compilers on Level 3 too,";
  print_endline
    "but a competitive GEMM additionally needs outer-loop transformations (cache blocking,";
  print_endline
    "copying to contiguous storage) that are outside FKO's inner-loop scope — each daxpy";
  print_endline
    "call here streams its operands from memory, where a blocked GEMM would reuse them";
  print_endline "from cache thousands of times."
