(** The `ifko serve` daemon.

    A socket server (Unix-domain or TCP) speaking the newline-delimited
    JSON protocol of {!Proto}: one systhread per connection, all
    in-flight tunes multiplexed onto one sharded probe store
    ({!Shard_store}) and one shared domain pool, with whole-tune results
    cached as store entries under {!Ifko_store.Store.tune_key}.

    Determinism contract: a [tune] reply is bit-identical to a local,
    sequential, storeless {!Ifko_search.Driver.tune} of the same
    request, whatever the daemon's [jobs]/[shards] settings, whichever
    client asked first, and whether the reply was computed or served
    from cache. *)

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : listen;
  store_dir : string;  (** shard directory, created on first run *)
  shards : int;  (** only used when creating the directory *)
  jobs : int;  (** shared domain pool size; 1 = no pool *)
  replica : bool;  (** several daemons share [store_dir] *)
  max_bytes : int option;  (** whole-store eviction budget *)
  max_age : float option;  (** seconds; older entries are evictable *)
  log : string -> unit;  (** one line per event; [ignore] to silence *)
}

val default_config : store_dir:string -> listen -> config
(** 8 shards, jobs 1, no replica, no bounds, silent. *)

val machine_of : string -> (Ifko_machine.Config.t, string) result
(** ["p4e" | "opteron"]. *)

val context_of : string -> (Ifko_sim.Timer.context, string) result
(** ["oc" | "l2"]. *)

val run : ?clock:(unit -> float) -> ?ready:(unit -> unit) -> config -> unit
(** Bind, listen, and serve until a [shutdown] request (or a fatal
    accept error).  Blocks the calling thread; spawn it in a
    {!Thread.t} to run in-process (the bench and tests do).  [ready]
    fires once the socket is listening.  [clock] (default
    [Unix.gettimeofday]) stamps store entries for age-bounded eviction
    and feeds the uptime statistic — tests pass a fake clock.

    Shutdown is graceful: the listener closes first, every connection
    finishes the request it is processing and is then half-closed, and
    [run] returns when the last connection thread exits (Unix socket
    path unlinked, store and pool released).

    In a replica group, configure eviction bounds on {e one} daemon
    only: compaction rewrites journals in place, which is safe against
    concurrent [O_APPEND] writers only when a single process compacts
    (see DESIGN.md §13). *)
