(** ASCII table rendering for the benchmark harness.

    The paper's evaluation is presented as tables and bar charts; the
    bench executable reproduces each as a fixed-width text table so the
    rows/series can be compared against the paper directly. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> string list -> t
(** [create ~title headers] starts a table with one column per header.
    Columns default to right alignment except the first. *)

val set_align : t -> int -> align -> unit
(** Override the alignment of column [i] (0-based). *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are headers. *)

val add_sep : t -> unit
(** Append a horizontal separator row. *)

val render : t -> string
(** Render the table, including title, header rule, and outer frame. *)

val cell_f1 : float -> string
(** Format a float with one decimal digit, the convention used in every
    reproduced table. *)

val cell_pct : float -> string
(** Format a percentage with one decimal digit. *)

val bar : width:int -> frac:float -> string
(** [bar ~width ~frac] renders a horizontal bar filling [frac] (clamped
    to [0,1]) of [width] characters — used to echo the paper's bar
    charts in text form. *)
