test/test_machine.ml: Alcotest Cache Config Float Ifko_machine Instr Memsys Printf
