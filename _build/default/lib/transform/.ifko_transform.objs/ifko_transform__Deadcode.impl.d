lib/transform/deadcode.ml: Block Cfg Hashtbl Ifko_analysis Instr List Liveness Reg
