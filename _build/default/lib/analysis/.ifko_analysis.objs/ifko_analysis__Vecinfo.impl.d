lib/analysis/vecinfo.ml: Accuminfo Block Cfg Ifko_codegen Instr List Liveness Loopnest Lower Ptrinfo Reg
