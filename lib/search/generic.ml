(* Generic workload builder and tester for arbitrary user kernels,
   derived from the kernel's own signature.  Shared by `ifko tune`,
   `ifko sim` and the serve daemon so that every entry point produces
   the same workloads — and therefore the same content-addressed store
   keys — for the same (kernel, seed). *)

(* [seed] makes the random vectors reproducible — and is the seed the
   tuning store keys on, so journaled results never alias across
   workloads.  Every `ptr` parameter binds to a fresh random vector of
   length N, every int parameter to N, every fp parameter to 0.77 —
   matching the library's BLAS workloads. *)
let spec ?(seed = 0) (compiled : Ifko_codegen.Lower.compiled) =
  let prec =
    match compiled.Ifko_codegen.Lower.arrays with
    | a :: _ -> a.Ifko_codegen.Lower.a_elem
    | [] -> Instr.D
  in
  let make_env n =
    let bytes =
      max (1 lsl 20)
        ((List.length compiled.Ifko_codegen.Lower.arrays * n * 8) + (1 lsl 16))
    in
    let env = Ifko_sim.Env.create ~mem_bytes:bytes () in
    let rng = Ifko_util.Rng.create (seed + (31 * n) + 17) in
    List.iter
      (fun (p : Ifko_hil.Ast.param) ->
        match p.Ifko_hil.Ast.p_ty with
        | Ifko_hil.Ast.Int -> Ifko_sim.Env.bind_int env p.Ifko_hil.Ast.p_name n
        | Ifko_hil.Ast.Fp fp ->
          Ifko_sim.Env.bind_fp env p.Ifko_hil.Ast.p_name
            (match fp with Ifko_hil.Ast.Single -> Instr.S | Ifko_hil.Ast.Double -> Instr.D)
            0.77
        | Ifko_hil.Ast.Ptr fp ->
          let sz =
            match fp with Ifko_hil.Ast.Single -> Instr.S | Ifko_hil.Ast.Double -> Instr.D
          in
          Ifko_sim.Env.alloc_array env p.Ifko_hil.Ast.p_name sz n;
          Ifko_sim.Env.fill env p.Ifko_hil.Ast.p_name (fun _ ->
              Ifko_util.Rng.sign_float rng 1.0))
      compiled.Ifko_codegen.Lower.source.Ifko_hil.Ast.k_params;
    env
  in
  { Ifko_sim.Timer.make_env; ret_fsize = prec }

(* The untransformed lowering is the semantic reference for arbitrary
   user kernels.  The reference side is decoded once per tune, each
   candidate once per test — not once per test size. *)
let test (compiled : Ifko_codegen.Lower.compiled) spec =
  let cf_ref = Ifko_sim.Exec.compile compiled.Ifko_codegen.Lower.func in
  fun func ->
    let cf_opt = Ifko_sim.Exec.compile func in
    List.for_all
      (fun n ->
        let env_ref = spec.Ifko_sim.Timer.make_env n in
        let env_opt = spec.Ifko_sim.Timer.make_env n in
        match
          ( Ifko_sim.Exec.exec ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize cf_ref env_ref,
            Ifko_sim.Exec.exec ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize cf_opt env_opt )
        with
        | exception Ifko_sim.Exec.Trap _ -> false
        | r_ref, r_opt ->
          let rets_ok =
            match (r_ref.Ifko_sim.Exec.ret, r_opt.Ifko_sim.Exec.ret) with
            | None, None -> true
            | Some (Ifko_sim.Exec.Rint a), Some (Ifko_sim.Exec.Rint b) -> a = b
            | Some (Ifko_sim.Exec.Rfp a), Some (Ifko_sim.Exec.Rfp b) ->
              Ifko_sim.Verify.close ~tol:1e-4 a b
            | _ -> false
          in
          rets_ok
          && List.for_all
               (fun (a : Ifko_codegen.Lower.array_param) ->
                 let xa = Ifko_sim.Env.to_array env_ref a.Ifko_codegen.Lower.a_name in
                 let xb = Ifko_sim.Env.to_array env_opt a.Ifko_codegen.Lower.a_name in
                 Array.for_all2 (fun u v -> Ifko_sim.Verify.close ~tol:1e-4 u v) xa xb)
               compiled.Ifko_codegen.Lower.arrays)
      [ 0; 1; 7; 130 ]
