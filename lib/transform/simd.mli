(** SIMD vectorization (SV).

    Transforms the tunable loop from scalar to 16-byte-vector
    instructions when {!Ifko_analysis.Vecinfo} proves it legal.  The
    instruction count in the loop stays the same but each iteration
    now computes [veclen] elements (4 single / 2 double), "similar to
    unrolling by the vector length" as the paper puts it.  A scalar
    cleanup loop consumes the remainder iterations and reduction
    accumulators are summed into their scalar originals in the [mid]
    block. *)

val apply :
  Ifko_codegen.Lower.compiled -> (unit, Ifko_analysis.Diag.t) result
(** Vectorize in place.  The {!Ifko_analysis.Legality} oracle has the
    final word: a kernel whose references cannot be proven free of
    carried dependences is refused with the rejection diagnostic
    (fail-closed).  When the conservative analysis refuses but the
    loop carries the [SPECULATE] mark-up, {!Maxloc.try_apply} is given
    a chance (the paper's user-assisted path for iamax).  No-op when
    neither applies or there is no tunable loop. *)

val applied : Ifko_codegen.Lower.compiled -> bool
(** Whether the compiled kernel's loop is currently vectorized. *)
