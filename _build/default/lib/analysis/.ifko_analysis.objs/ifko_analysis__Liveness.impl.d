lib/analysis/liveness.ml: Block Cfg Hashtbl Instr List Option Reg
