(** The LIL lint suite: dataflow-based static checkers producing
    {!Diag} diagnostics instead of first-failure exceptions.

    The search pays for every point it times; a transform bug that
    produces a wrong-but-runnable kernel silently corrupts the whole
    tuning run.  These checkers catch the cheap-to-detect breakages
    statically — before any simulation — and the pipeline can run them
    after every pass ({!Pipeline.apply}'s [~check] mode) to name the
    exact transform that broke an invariant.

    Checkers (codes documented in {!Diag}):
    - CFG well-formedness: labels, branch targets, return, operand
      register classes, memory scales, vector lanes (IFK001/IFK002) —
      the collected-diagnostics form of {!Validate.check}
    - def-before-use of virtual registers, as a forward must-analysis
      on the {!Dataflow} engine (IFK003)
    - dead stores: register definitions never read (IFK004)
    - blocks unreachable from the entry (IFK005)
    - 16-byte vector accesses whose displacement or per-iteration
      stride breaks alignment (IFK006)
    - prefetch distances that are useless (behind the moving pointer)
      or absurd (tens of lines ahead) (IFK007)
    - per-block register-pressure estimates against the architectural
      file, reported back to the search (IFK008)
    - provable out-of-bounds accesses, via {!Depend}'s affine forms
      (IFK010)
    - overlapping write ranges, from {!Depend}'s distance/direction
      vectors (IFK011)
    - arrays silently demoted from prefetch by irregular pointer
      motion (IFK013)
    - stride/interval contradictions between {!Ptrinfo} and {!Absint},
      and stale loop-nest bookkeeping (IFK014) *)

open Ifko_codegen

(* ---------- CFG and instruction well-formedness (IFK001/IFK002) ---------- *)

let class_name = function Reg.Gpr -> "a GPR" | Reg.Xmm -> "an XMM register"

let check_instr_classes ?pass ~block ~instr i =
  let diags = ref [] in
  let bad fmt =
    Printf.ksprintf
      (fun msg ->
        diags :=
          Diag.error ?pass ~block ~instr "IFK002" "%s: %s" (Instr.to_string i) msg :: !diags)
      fmt
  in
  let want cls (r : Reg.t) =
    if r.Reg.cls <> cls then bad "register %s should be %s" (Reg.to_string r) (class_name cls)
  in
  let gpr = want Reg.Gpr and xmm = want Reg.Xmm in
  let mem (m : Instr.mem) =
    gpr m.Instr.base;
    Option.iter gpr m.Instr.index;
    match m.Instr.scale with
    | 1 | 2 | 4 | 8 -> ()
    | s -> bad "invalid scale %d" s
  in
  (match i with
  | Instr.Ild (d, m) -> gpr d; mem m
  | Ist (m, s) -> gpr s; mem m
  | Imov (d, s) -> gpr d; gpr s
  | Ildi (d, _) -> gpr d
  | Iop (_, d, a, b) ->
    gpr d;
    gpr a;
    (match b with Instr.Oreg r -> gpr r | Instr.Oimm _ -> ())
  | Lea (d, m) -> gpr d; mem m
  | Fld (_, d, m) | Vld (_, d, m) -> xmm d; mem m
  | Fst (_, m, s) | Fstnt (_, m, s) | Vst (_, m, s) | Vstnt (_, m, s) -> xmm s; mem m
  | Fmov (_, d, s)
  | Vmov (_, d, s)
  | Vbcast (_, d, s)
  | Fabs (_, d, s)
  | Fsqrt (_, d, s)
  | Fneg (_, d, s)
  | Vabs (_, d, s)
  | Vsqrt (_, d, s)
  | Vreduce (_, _, d, s) -> xmm d; xmm s
  | Fldi (_, d, _) | Vldi (_, d, _) -> xmm d
  | Fop (_, _, d, a, b) | Vop (_, _, d, a, b) | Vcmp (_, _, d, a, b) ->
    xmm d; xmm a; xmm b
  | Fopm (_, _, d, a, m) | Vopm (_, _, d, a, m) -> xmm d; xmm a; mem m
  | Vmovmsk (_, d, s) -> gpr d; xmm s
  | Vextract (sz, d, s, lane) ->
    xmm d;
    xmm s;
    if lane < 0 || lane >= Instr.lanes sz then
      bad "lane %d out of range for precision" lane
  | Touch (_, m) | Prefetch (_, m) -> mem m
  | Nop -> ());
  List.rev !diags

let check_structure ?pass (f : Cfg.func) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if f.Cfg.blocks = [] then
    add (Diag.error ?pass "IFK001" "function %s has no blocks" f.Cfg.fname)
  else begin
    let labels = Hashtbl.create (List.length f.Cfg.blocks) in
    List.iter
      (fun b ->
        let l = b.Block.label in
        if Hashtbl.mem labels l then
          add (Diag.error ?pass ~block:l "IFK001" "duplicate block label %S" l)
        else Hashtbl.add labels l ())
      f.Cfg.blocks;
    List.iter
      (fun b ->
        let block = b.Block.label in
        List.iteri
          (fun instr i -> List.iter add (check_instr_classes ?pass ~block ~instr i))
          b.Block.instrs;
        List.iter
          (fun l ->
            if not (Hashtbl.mem labels l) then
              add (Diag.error ?pass ~block "IFK001" "terminator targets unknown block %S" l))
          (Block.successors b.Block.term);
        match b.Block.term with
        | Block.Br { lhs; rhs; dec; _ } ->
          if lhs.Reg.cls <> Reg.Gpr then
            add
              (Diag.error ?pass ~block "IFK002" "branch compares %s which is not a GPR"
                 (Reg.to_string lhs));
          (match rhs with
          | Instr.Oreg r when r.Reg.cls <> Reg.Gpr ->
            add
              (Diag.error ?pass ~block "IFK002" "branch compares %s which is not a GPR"
                 (Reg.to_string r))
          | Instr.Oreg _ | Instr.Oimm _ -> ());
          if dec < 0 then
            add (Diag.error ?pass ~block "IFK002" "negative fused decrement %d" dec)
        | Block.Fbr { lhs; rhs; _ } ->
          List.iter
            (fun (r : Reg.t) ->
              if r.Reg.cls <> Reg.Xmm then
                add
                  (Diag.error ?pass ~block "IFK002" "FP branch compares %s which is not XMM"
                     (Reg.to_string r)))
            [ lhs; rhs ]
        | Block.Jmp _ | Block.Ret _ -> ())
      f.Cfg.blocks;
    let has_ret =
      List.exists
        (fun b -> match b.Block.term with Block.Ret _ -> true | _ -> false)
        f.Cfg.blocks
    in
    if not has_ret then
      add (Diag.error ?pass "IFK001" "function %s never returns" f.Cfg.fname)
  end;
  List.rev !diags

(* ---------- def-before-use of virtual registers (IFK003) ---------- *)

module Must = Dataflow.Make (Dataflow.Reg_must_domain)

let check_def_before_use ?pass (f : Cfg.func) =
  let open Dataflow.Reg_must_domain in
  let block_defs (b : Block.t) =
    List.fold_left
      (fun acc i -> List.fold_left (fun acc r -> Reg.Set.add r acc) acc (Instr.defs i))
      Reg.Set.empty b.Block.instrs
    |> fun s ->
    List.fold_left (fun acc r -> Reg.Set.add r acc) s (Block.term_defs b.Block.term)
  in
  let transfer b = function
    | Top -> Top
    | Known s -> Known (Reg.Set.union s (block_defs b))
  in
  let boundary =
    Known
      (Reg.Set.add Reg.frame_ptr
         (Reg.Set.add Reg.stack_ptr
            (Reg.Set.of_list (List.map snd f.Cfg.params))))
  in
  let r = Must.run ~direction:Dataflow.Forward ~boundary ~transfer f in
  let diags = ref [] and reported = ref Reg.Set.empty in
  let use ~block ~instr what defined reg =
    if
      (not reg.Reg.phys)
      && (not (Reg.Set.mem reg defined))
      && not (Reg.Set.mem reg !reported)
    then begin
      reported := Reg.Set.add reg !reported;
      diags :=
        Diag.error ?pass ~block ?instr "IFK003"
          "%s reads %s, but no definition reaches it" what (Reg.to_string reg)
        :: !diags
    end
  in
  List.iter
    (fun b ->
      let block = b.Block.label in
      match Must.entry_value r block with
      | Top -> () (* unreachable; IFK005 reports it *)
      | Known entry ->
        let defined = ref entry in
        List.iteri
          (fun idx i ->
            List.iter (use ~block ~instr:(Some idx) (Instr.to_string i) !defined) (Instr.uses i);
            List.iter (fun d -> defined := Reg.Set.add d !defined) (Instr.defs i))
          b.Block.instrs;
        List.iter
          (use ~block ~instr:None "terminator" !defined)
          (Block.term_uses b.Block.term))
    f.Cfg.blocks;
  List.rev !diags

(* ---------- dead stores (IFK004) ---------- *)

let check_dead_stores ?pass (f : Cfg.func) =
  let live = Liveness.compute f in
  let diags = ref [] in
  List.iter
    (fun b ->
      List.iteri
        (fun idx (i, live_after) ->
          match Instr.defs i with
          | [ d ] when (not d.Reg.phys) && not (Reg.Set.mem d live_after) ->
            diags :=
              Diag.warning ?pass ~block:b.Block.label ~instr:idx "IFK004"
                "%s defines %s, which is never read" (Instr.to_string i) (Reg.to_string d)
              :: !diags
          | _ -> ())
        (Liveness.live_before_each live b))
    f.Cfg.blocks;
  List.rev !diags

(* ---------- unreachable blocks (IFK005) ---------- *)

let check_reachability ?pass (f : Cfg.func) =
  match f.Cfg.blocks with
  | [] -> []
  | entry :: _ ->
    let reached = Hashtbl.create 16 in
    let by_label = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace by_label b.Block.label b) f.Cfg.blocks;
    let rec walk label =
      if not (Hashtbl.mem reached label) then begin
        Hashtbl.replace reached label ();
        match Hashtbl.find_opt by_label label with
        | Some b -> List.iter walk (Block.successors b.Block.term)
        | None -> ()
      end
    in
    walk entry.Block.label;
    List.filter_map
      (fun b ->
        if Hashtbl.mem reached b.Block.label then None
        else
          Some
            (Diag.warning ?pass ~block:b.Block.label "IFK005"
               "block is unreachable from the entry"))
      f.Cfg.blocks

(* ---------- register pressure (IFK008) ---------- *)

let count_classes set =
  Reg.Set.fold
    (fun (r : Reg.t) (g, x) ->
      match r.Reg.cls with Reg.Gpr -> (g + 1, x) | Reg.Xmm -> (g, x + 1))
    set (0, 0)

(** [pressure f] estimates, per block, the maximum number of
    simultaneously live GPR and XMM registers at any instruction
    boundary — the quantity register allocation has to fit into the
    architectural file, and what the search wants to know before
    committing to an unroll/accumulator point. *)
let pressure (f : Cfg.func) =
  let live = Liveness.compute f in
  List.map
    (fun b ->
      let worst =
        List.fold_left
          (fun (g, x) (_, set) ->
            let g', x' = count_classes set in
            (max g g', max x x'))
          (count_classes (Liveness.live_in live b.Block.label))
          (Liveness.live_before_each live b)
      in
      (b.Block.label, worst))
    f.Cfg.blocks

(** Function-wide maximum of {!pressure}: [(gpr, xmm)]. *)
let max_pressure (f : Cfg.func) =
  List.fold_left
    (fun (g, x) (_, (g', x')) -> (max g g', max x x'))
    (0, 0) (pressure f)

let check_pressure ?pass (f : Cfg.func) =
  List.filter_map
    (fun (label, (g, x)) ->
      let over_gpr = g > Reg.allocatable Reg.Gpr
      and over_xmm = x > Reg.allocatable Reg.Xmm in
      if over_gpr || over_xmm then
        Some
          (Diag.info ?pass ~block:label "IFK008"
             "register pressure %d GPR / %d XMM exceeds the file (%d/%d): spills likely" g x
             (Reg.allocatable Reg.Gpr) (Reg.allocatable Reg.Xmm))
      else None)
    (pressure f)

(* ---------- loop-aware checkers (IFK006/IFK007) ---------- *)

(** Map from a moving array's pointer register to its name and
    per-iteration advance in bytes, via {!Ptrinfo}. *)
let moving_by_reg (compiled : Lower.compiled) =
  List.map
    (fun (m : Ptrinfo.moving) ->
      (m.Ptrinfo.array.Lower.a_reg, (m.Ptrinfo.array.Lower.a_name, m.Ptrinfo.stride)))
    (Ptrinfo.analyze compiled)

let vector_mem = function
  | Instr.Vld (_, _, m) | Instr.Vst (_, m, _) | Instr.Vstnt (_, m, _)
  | Instr.Vopm (_, _, _, _, m) -> Some m
  | _ -> None

(** Simulated arrays are 16-byte aligned and their pointers advance by
    the loop stride, so an aligned 16-byte access stays aligned iff the
    displacement and the stride are both multiples of 16.  A violation
    is an error: the simulator (like real SSE [movaps]) faults on it.

    Only the loopnest blocks the stride was measured over are checked —
    a sibling loop (e.g. the speculative maxloc vector loop, whose
    pointer advances a full block per trip) moves the same register at
    a different rate, so the stride says nothing about it. *)
let check_vector_alignment ?pass moving (blocks : Block.t list) =
  let diags = ref [] in
  (* One diagnostic per array: an unrolled loop repeats the same broken
     access once per copy, and repeating the finding drowns the rest. *)
  let seen = Hashtbl.create 4 in
  List.iter
    (fun b ->
      List.iteri
        (fun idx i ->
          match vector_mem i with
          | Some m when m.Instr.index = None -> (
            match List.assoc_opt m.Instr.base moving with
            | Some (name, _) when Hashtbl.mem seen name -> ()
            | Some (name, stride) ->
              let emit fmt =
                Printf.ksprintf
                  (fun msg ->
                    Hashtbl.replace seen name ();
                    diags :=
                      Diag.error ?pass ~block:b.Block.label ~instr:idx "IFK006" "%s: %s"
                        (Instr.to_string i) msg
                      :: !diags)
                  fmt
              in
              if m.Instr.disp mod 16 <> 0 then
                emit "16-byte access to %s at displacement %d is unaligned" name
                  m.Instr.disp
              else if stride mod 16 <> 0 then
                emit
                  "%s advances %d B/iteration, so this 16-byte access drifts off \
                   alignment"
                  name stride
            | None -> ())
          | Some _ | None -> ())
        b.Block.instrs)
    blocks;
  List.rev !diags

(** A prefetch is useful when it lands ahead of the moving pointer by
    at least one iteration's advance and no more than a few dozen cache
    lines (past that the line is evicted again before use).  Scoped to
    the loopnest blocks for the same reason as IFK006. *)
let check_prefetch_distance ?pass ?line_bytes moving (blocks : Block.t list) =
  let diags = ref [] in
  (* Like IFK006: one diagnostic per array, not one per unrolled copy. *)
  let seen = Hashtbl.create 4 in
  List.iter
    (fun b ->
      List.iteri
        (fun idx i ->
          match i with
          | Instr.Prefetch (_, m) when m.Instr.index = None -> (
            match List.assoc_opt m.Instr.base moving with
            | Some (name, _) when Hashtbl.mem seen name -> ()
            | Some (name, stride) ->
              let dist = m.Instr.disp in
              let warn fmt =
                Printf.ksprintf
                  (fun msg ->
                    Hashtbl.replace seen name ();
                    diags :=
                      Diag.warning ?pass ~block:b.Block.label ~instr:idx "IFK007" "%s: %s"
                        (Instr.to_string i) msg
                      :: !diags)
                  fmt
              in
              if stride = 0 then warn "prefetches %s, which never advances" name
              else if dist <= 0 then
                warn "prefetch distance %d B is behind the moving pointer %s" dist name
              else if dist < abs stride then
                warn
                  "prefetch distance %d B is inside the current iteration of %s (advance \
                   %d B)"
                  dist name (abs stride)
              else
                Option.iter
                  (fun line ->
                    if dist > 32 * line then
                      warn
                        "prefetch distance %d B for %s is more than 32 lines (%d B) ahead"
                        dist name (32 * line))
                  line_bytes
            | None -> ())
          | _ -> ())
        b.Block.instrs)
    blocks;
  List.rev !diags

(* ---------- dependence-based checkers (IFK010-IFK014) ---------- *)

(** Provable out-of-bounds (IFK010, error).  An affine access touches
    bytes [stride*i + disp .. +width) from its array base; HIL arrays
    start at their pointer parameter, so any iteration reaching a
    negative offset reads or writes memory the kernel does not own.
    Guarded accesses are excluded — a conditional body may never
    execute the reference on the offending iteration — as are
    non-faulting prefetches.  Fires only when some executed iteration
    provably goes below the base: the first one (any [stride >= 0] with
    [disp < 0]) or, for descending accesses with a known trip count,
    the last. *)
let check_bounds ?pass (dep : Depend.t) =
  if dep.Depend.trips = Some 0 then []
  else
    List.filter_map
      (fun (a : Depend.access) ->
        match a.Depend.affine with
        | Some { Depend.stride; disp }
          when a.Depend.faulting && not a.Depend.guarded ->
          let worst =
            if stride >= 0 then Some (disp, 0)
            else
              match dep.Depend.trips with
              | Some u when u > 0 -> Some ((stride * (u - 1)) + disp, u - 1)
              | _ -> None
          in
          (match worst with
          | Some (off, iter) when off < 0 ->
            Some
              (Diag.error ?pass ~block:a.Depend.block ~instr:a.Depend.instr "IFK010"
                 "%s reaches byte %d, %d B before the array base, on iteration %d"
                 (Depend.access_name a) off (-off) iter)
          | _ -> None)
        | _ -> None)
      dep.Depend.accesses

(** Overlapping write ranges (IFK011, warning).  Two stores — or one
    store re-visiting bytes across iterations — proven to hit the same
    memory.  Legal, but it serializes the stores and usually signals a
    kernel bug, so the search wants to know. *)
let check_write_overlap ?pass (dep : Depend.t) =
  List.filter_map
    (fun (p : Depend.pair) ->
      if not (p.Depend.src.Depend.store && p.Depend.dst.Depend.store) then None
      else
        match p.Depend.relation with
        | Depend.Dependent _ ->
          Some
            (Diag.warning ?pass ~block:p.Depend.src.Depend.block
               ~instr:p.Depend.src.Depend.instr "IFK011" "%s and %s overlap: %s"
               (Depend.access_name p.Depend.src)
               (Depend.access_name p.Depend.dst)
               (Depend.relation_to_string p.Depend.relation))
        | Depend.Independent | Depend.Unknown _ -> None)
    dep.Depend.pairs

(** Arrays silently demoted from prefetch (IFK013, info).  {!Ptrinfo}
    drops arrays whose pointer moves irregularly; the prefetch
    transform then skips them without a word.  Surface the demotion so
    a kernel author who expected the array to be prefetched learns why
    it is not. *)
let check_prefetch_demotion ?pass (cls : Ptrinfo.classified) =
  List.filter_map
    (fun (a : Lower.array_param) ->
      if a.Lower.a_noprefetch then None
      else
        Some
          (Diag.info ?pass "IFK013"
             "array %s: pointer is redefined non-incrementally in the loop; demoted from \
              prefetch"
             a.Lower.a_name))
    cls.Ptrinfo.irregular

(** Stride/interval contradictions and stale bookkeeping (IFK014).
    A disagreement between {!Ptrinfo}'s syntactic strides and
    {!Absint}'s congruences means one analysis is being fooled
    (warning); stale loop-nest labels mean every loop-aware analysis
    silently sees "no loop" (info — expected after the pipeline's
    final cleanup, alarming on a fresh kernel). *)
let check_stride_consistency ?pass (compiled : Lower.compiled)
    (cls : Ptrinfo.classified) =
  let stale =
    if cls.Ptrinfo.stale then
      [ Diag.info ?pass "IFK014"
          "loop-nest labels are stale: loop-aware checkers and transforms are disabled" ]
    else []
  in
  stale
  @ List.map
      (fun ((m : Ptrinfo.moving), reason) ->
        Diag.warning ?pass "IFK014" "array %s: %s" m.Ptrinfo.array.Lower.a_name reason)
      (Depend.stride_contradictions compiled)

(* ---------- entry points ---------- *)

(** [check_func f] runs every checker that needs only the CFG.  If the
    structure itself is broken (IFK001 errors) the dataflow checkers
    are skipped — their results would be meaningless. *)
let check_func ?pass (f : Cfg.func) =
  let structure = check_structure ?pass f in
  if not (Diag.is_clean structure) then structure
  else
    structure
    @ check_def_before_use ?pass f
    @ check_dead_stores ?pass f
    @ check_reachability ?pass f
    @ check_pressure ?pass f

(** [check ?line_bytes compiled] is {!check_func} plus the loop-aware
    checkers that need to know which pointers move and by how much. *)
let check ?pass ?line_bytes (compiled : Lower.compiled) =
  let f = compiled.Lower.func in
  let base = check_func ?pass f in
  if not (Diag.is_clean base) then base
  else
    let moving = moving_by_reg compiled in
    let loop = Ptrinfo.loop_blocks compiled in
    let cls = Ptrinfo.classify compiled in
    let dep = Depend.analyze compiled in
    base
    @ check_vector_alignment ?pass moving loop
    @ check_prefetch_distance ?pass ?line_bytes moving loop
    @ check_bounds ?pass dep
    @ check_write_overlap ?pass dep
    @ check_prefetch_demotion ?pass cls
    @ check_stride_consistency ?pass compiled cls
