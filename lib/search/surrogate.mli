(** The surrogate-model searcher: a batched Bayesian-style strategy
    that replaces most probes with model predictions.

    Parameter points are encoded as per-axis-normalized vectors over
    the live (not legality-pruned) {!Space.axes}.  A distance-weighted
    k-nearest-neighbor regressor predicts the performance (mean and
    spread) of unprobed points; an expected-improvement acquisition
    ranks a candidate pool — one-axis neighbors of the incumbent, the
    UR x AE cross, and uniform random exploration — and the top [batch]
    points are proposed together, keeping a domain pool saturated.

    Determinism: the batch width is a fixed constant (never derived
    from [--jobs]), the threaded {!Ifko_util.Rng} is consumed only
    inside [propose], and all float ties break on the canonical point
    string — so the probe sequence and the winner are a pure function
    of the seed and the kernel, at any parallelism degree.

    The search stops after [rounds] model generations, or once
    [patience] consecutive generations fail to improve the incumbent. *)

val default_batch : int  (** 8 *)

val default_rounds : int  (** 16 *)

val default_patience : int  (** 2 *)

val strategy :
  ?extensions:bool ->
  ?warm:Ifko_transform.Params.t list ->
  ?batch:int ->
  ?rounds:int ->
  ?patience:int ->
  seed:int ->
  cfg:Ifko_machine.Config.t ->
  report:Ifko_analysis.Report.t ->
  init:Ifko_transform.Params.t ->
  init_perf:float ->
  unit ->
  Strategy.t
(** Make the strategy.  [warm] points (from {!Warmstart.seeds}) are
    proposed as the opening batch before any model round and enter the
    model as ordinary observations.  Failed probes ([-inf]) are clamped
    to 0 in the model fit, so a refused point cannot poison the
    neighborhood means, while incumbent tracking uses the true
    values. *)
