test/test_codegen.ml: Alcotest Block Cfg Defs Hil_sources Ifko_blas Ifko_codegen Ifko_hil Ifko_sim Instr List Printf Reg Validate Workload
