lib/search/linesearch.ml: Hashtbl Ifko_analysis Ifko_transform List Params Space
