(** Block-local forward copy propagation.

    Replaces uses of a copied register with its source until either
    side is redefined.  Run inside the repeatable-optimization block
    (paper Section 2.2.4), where it synergizes with dead-code
    elimination: propagation turns the copy dead, elimination removes
    it. *)

let run_block (b : Block.t) =
  let changed = ref false in
  (* active copies: dst id -> src reg *)
  let copies : (int, Reg.t) Hashtbl.t = Hashtbl.create 8 in
  let kill (r : Reg.t) =
    Hashtbl.remove copies r.Reg.id;
    (* any copy whose source is [r] dies too *)
    let stale =
      Hashtbl.fold (fun d s acc -> if Reg.equal s r then d :: acc else acc) copies []
    in
    List.iter (Hashtbl.remove copies) stale
  in
  let subst (r : Reg.t) =
    match Hashtbl.find_opt copies r.Reg.id with
    | Some s when s.Reg.cls = r.Reg.cls ->
      changed := true;
      s
    | _ -> r
  in
  let new_instrs =
    List.map
      (fun i ->
        let i' = Instr.map_regs_uses_only subst i in
        List.iter kill (Instr.defs i');
        (match i' with
        | Instr.Imov (d, s) | Instr.Fmov (_, d, s) | Instr.Vmov (_, d, s) ->
          if not (Reg.equal d s) then Hashtbl.replace copies d.Reg.id s
        | _ -> ());
        i')
      b.Block.instrs
  in
  b.Block.instrs <- new_instrs;
  (* Propagate into the terminator too — but never rename the counter a
     fused branch writes. *)
  b.Block.term <-
    (match b.Block.term with
    | Block.Br t when t.dec > 0 ->
      Block.Br
        { t with rhs = (match t.rhs with Instr.Oreg r -> Instr.Oreg (subst r) | imm -> imm) }
    | t -> Block.map_term_regs subst t);
  !changed

let run (f : Cfg.func) = List.fold_left (fun acc b -> run_block b || acc) false f.Cfg.blocks
