lib/lil/cfg.ml: Block Buffer Hashtbl Ifko_util Instr List Option Printf Reg String
