lib/hil/builder.mli: Ast
