(** Empirically tunable parameters of the fundamental transformations.

    One value of this record describes one point in the optimization
    space the iterative search explores.  FKO's built-in defaults (the
    paper's Section 2.3) are produced by {!default}: SV on, WNT off,
    [prefetchnta] at distance [2*L] on every prefetchable array,
    unrolling to one cache line of elements, AE off. *)

(** Prefetch setting for one array: instruction flavour and distance in
    bytes ahead of the current position ([None] = no prefetch). *)
type pf_param = { pf_ins : Instr.pf_kind option; pf_dist : int }

type t = {
  sv : bool;  (** SIMD-vectorize the tunable loop *)
  unroll : int;  (** unroll factor [N_u >= 1] *)
  lc : bool;  (** optimize loop control (fused count-down branch) *)
  ae : int;  (** accumulator expansion: number of accumulators, [<= 1] = off *)
  prefetch : (string * pf_param) list;  (** per array name *)
  wnt : bool;  (** non-temporal writes on the output arrays *)
  bf : int;
      (** block fetch: block size in bytes, [0] = off.  A paper
          future-work extension — FKO as published lacks it, so the
          defaults and the reproduction studies keep it off. *)
  cisc : bool;
      (** CISC two-array indexing — likewise an extension (the paper's
          hand-tuned kernels have it; published FKO does not). *)
}

let no_prefetch = { pf_ins = None; pf_dist = 0 }

(** [default ~line_bytes report] is FKO's default parameter point for a
    kernel with the given analysis report, on a machine whose first
    prefetchable cache has [line_bytes]-byte lines. *)
let default ~line_bytes (report : Ifko_analysis.Report.t) =
  let elem_bytes =
    match report.Ifko_analysis.Report.precision with
    | Some sz -> Instr.fsize_bytes sz
    | None -> 8
  in
  {
    sv =
      report.Ifko_analysis.Report.vectorizable
      && report.Ifko_analysis.Report.legal_sv = Ok ();
    unroll = max 1 (line_bytes / elem_bytes);
    lc = true;
    ae = 0;
    prefetch =
      List.map
        (fun (m : Ifko_analysis.Ptrinfo.moving) ->
          ( m.Ifko_analysis.Ptrinfo.array.Ifko_codegen.Lower.a_name,
            { pf_ins = Some Instr.Nta; pf_dist = 2 * line_bytes } ))
        report.Ifko_analysis.Report.prefetch_arrays;
    wnt = false;
    bf = 0;
    cisc = false;
  }

let pf_kind_to_string = function
  | Instr.Nta -> "nta"
  | Instr.T0 -> "t0"
  | Instr.T1 -> "t1"
  | Instr.W -> "w"

let pf_to_string = function
  | { pf_ins = None; _ } -> "none:0"
  | { pf_ins = Some k; pf_dist } -> Printf.sprintf "%s:%d" (pf_kind_to_string k) pf_dist

(** Canonical full encoding of a parameter point, for content-addressed
    store keys: unlike {!to_string} (a display format) it includes every
    field — notably [lc] — so two points are equal iff their canonical
    strings are. *)
let canonical t =
  let b v = if v then "1" else "0" in
  Printf.sprintf "sv=%s;ur=%d;lc=%s;ae=%d;wnt=%s;bf=%d;cisc=%s;pf=%s" (b t.sv) t.unroll
    (b t.lc) t.ae (b t.wnt) t.bf (b t.cisc)
    (String.concat ","
       (List.map
          (fun (a, p) -> Printf.sprintf "%s:%s" a (pf_to_string p))
          (List.sort (fun (a, _) (b, _) -> compare a b) t.prefetch)))

(** [of_canonical s] parses a {!canonical} rendering back into a
    parameter point — the inverse the fuzz-corpus reproducer files rely
    on ([of_canonical (canonical p) = p] for every [p]; checked in the
    test suite).  @raise Failure on malformed input. *)
let of_canonical s =
  let err fmt = Printf.ksprintf failwith fmt in
  let field kv =
    match String.index_opt kv '=' with
    | Some i -> (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
    | None -> err "Params.of_canonical: missing '=' in %S" kv
  in
  let fields = List.map field (String.split_on_char ';' s) in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> err "Params.of_canonical: missing field %S in %S" k s
  in
  let bool_of k v =
    match v with "1" -> true | "0" -> false | _ -> err "Params.of_canonical: bad %s=%S" k v
  in
  let int_of k v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> err "Params.of_canonical: bad %s=%S" k v
  in
  let pf_of entry =
    match String.split_on_char ':' entry with
    | [ name; kind; dist ] ->
      let pf_ins =
        match kind with
        | "none" -> None
        | "nta" -> Some Instr.Nta
        | "t0" -> Some Instr.T0
        | "t1" -> Some Instr.T1
        | "w" -> Some Instr.W
        | _ -> err "Params.of_canonical: bad prefetch kind %S" kind
      in
      (name, { pf_ins; pf_dist = int_of "pf_dist" dist })
    | _ -> err "Params.of_canonical: bad prefetch entry %S" entry
  in
  {
    sv = bool_of "sv" (get "sv");
    unroll = int_of "ur" (get "ur");
    lc = bool_of "lc" (get "lc");
    ae = int_of "ae" (get "ae");
    wnt = bool_of "wnt" (get "wnt");
    bf = int_of "bf" (get "bf");
    cisc = bool_of "cisc" (get "cisc");
    prefetch =
      (match get "pf" with
      | "" -> []
      | pf -> List.map pf_of (String.split_on_char ',' pf));
  }

(** Render in the style of the paper's Table 3:
    ["SV:WNT  pfX pfY  UR:AE"]. *)
let to_string t =
  let yn b = if b then "Y" else "N" in
  let pf =
    match t.prefetch with
    | [] -> "-"
    | ps -> String.concat " " (List.map (fun (a, p) -> a ^ "=" ^ pf_to_string p) ps)
  in
  let ext =
    (if t.bf > 0 then Printf.sprintf " bf=%d" t.bf else "")
    ^ if t.cisc then " cisc" else ""
  in
  Printf.sprintf "%s:%s %s %d:%d%s" (yn t.sv) (yn t.wnt) pf t.unroll t.ae ext
