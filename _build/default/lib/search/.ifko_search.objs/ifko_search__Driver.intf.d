lib/search/driver.mli: Cfg Ifko_analysis Ifko_codegen Ifko_machine Ifko_sim Ifko_transform
