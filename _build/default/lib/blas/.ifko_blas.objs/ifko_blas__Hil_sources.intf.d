lib/blas/hil_sources.mli: Defs Ifko_codegen
