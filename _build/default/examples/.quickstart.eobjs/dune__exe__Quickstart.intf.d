examples/quickstart.mli:
